package exp

import (
	"pnn/internal/geo"
	"pnn/internal/query"
	"pnn/internal/space"
	"pnn/internal/uncertain"
)

// Example1 recomputes the paper's worked example (Figure 1) with the exact
// possible-world engine: P∃NN(o2) = 0.25, P∀NN(o1) = 0.75, and the PCNN
// probabilities behind the result {(o1, {1,2,3}), (o2, {2,3})} at τ = 0.1.
func Example1(Config) (*Table, error) {
	pts := []geo.Point{{X: 1}, {X: 2}, {X: 3}, {X: 4}} // s1..s4
	sp, err := space.New(pts, nil)
	if err != nil {
		return nil, err
	}
	o1 := query.WorldObject{
		Paths: []uncertain.Path{
			{Start: 1, States: []int32{1, 0, 0}},
			{Start: 1, States: []int32{1, 2, 0}},
			{Start: 1, States: []int32{1, 2, 2}},
		},
		Probs: []float64{0.5, 0.25, 0.25},
	}
	o2 := query.WorldObject{
		Paths: []uncertain.Path{
			{Start: 1, States: []int32{2, 1, 1}},
			{Start: 1, States: []int32{2, 3, 3}},
		},
		Probs: []float64{0.5, 0.5},
	}
	objs := []query.WorldObject{o1, o2}
	q := query.StateQuery(geo.Point{})

	res, err := query.ExactNN(sp, objs, q, 1, 3, 100)
	if err != nil {
		return nil, err
	}
	p23, err := query.ExactForAllProb(sp, objs, q, 1, []int{2, 3}, 100)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Example 1 (Figure 1): exact possible-world probabilities",
		Note:   "paper values: P∃NN(o2)=0.25, P∀NN(o1)=0.75, P∀NN(o2,{2,3})=0.125 ≥ τ=0.1",
		Header: []string{"quantity", "computed", "paper"},
	}
	t.AddRow("P∀NN(o1, {1,2,3})", f3(res.ForAll[0]), "0.750")
	t.AddRow("P∃NN(o1, {1,2,3})", f3(res.Exists[0]), "1.000")
	t.AddRow("P∀NN(o2, {1,2,3})", f3(res.ForAll[1]), "0.000")
	t.AddRow("P∃NN(o2, {1,2,3})", f3(res.Exists[1]), "0.250")
	t.AddRow("P∀NN(o2, {2,3})", f3(p23), "0.125")
	return t, nil
}
