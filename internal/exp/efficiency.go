package exp

import (
	"fmt"
	"math/rand"

	"pnn/internal/datagen"
	"pnn/internal/query"
	"pnn/internal/ustree"
)

// The efficiency experiments (Figures 6-9) measure, per parameter setting:
//
//	TS — time to initialize the trajectory sampler (adapt the a-posteriori
//	     models of the refinement set),
//	FA — time to sample and evaluate the P∀NNQ,
//	EX — time to sample and evaluate the P∃NNQ,
//	|C(q)| and |I(q)| — candidate and influence set sizes.
//
// Queries use uniformly drawn query states and an interval placed inside
// the database horizon, as in Section 7.

type effPoint struct {
	label       string
	ts, fa, ex  float64 // milliseconds
	cands, infl float64
}

// runEfficiency executes cfg.Queries queries against one dataset and
// averages the measurements. TS is the one-off sampler initialization of
// the whole database ("this phase can be performed once and used for all
// queries", Section 7.1); FA and EX are per-query sampling/evaluation.
func runEfficiency(ds *datagen.Dataset, cfg Config, intervalLen int, rng *rand.Rand) (effPoint, error) {
	tree, err := ustree.Build(ds.Space, ds.Objects, nil)
	if err != nil {
		return effPoint{}, err
	}
	eng := query.NewEngine(tree, cfg.Samples)
	prep, err := eng.PrepareAll()
	if err != nil {
		return effPoint{}, err
	}
	pt := effPoint{ts: prep.Seconds() * 1000}
	for qi := 0; qi < cfg.Queries; qi++ {
		qs := datagen.RandomQueryState(ds.Space, rng)
		q := query.StateQuery(ds.Space.Point(qs))
		// Anchor the interval on a random alive object so queries do not
		// land in empty time regions.
		o := ds.Objects[rng.Intn(len(ds.Objects))]
		ts := o.First().T + 1
		te := ts + intervalLen - 1
		if te >= o.Last().T {
			te = o.Last().T - 1
		}
		if te < ts {
			te = ts
		}
		_, stFA, err := eng.ForAllNN(q, ts, te, 0, rng)
		if err != nil {
			return effPoint{}, err
		}
		_, stEX, err := eng.ExistsNN(q, ts, te, 0, rng)
		if err != nil {
			return effPoint{}, err
		}
		pt.fa += stFA.RefineTime.Seconds() * 1000
		pt.ex += stEX.RefineTime.Seconds() * 1000
		pt.cands += float64(stFA.Candidates)
		pt.infl += float64(stFA.Influencers)
	}
	n := float64(cfg.Queries)
	pt.fa /= n
	pt.ex /= n
	pt.cands /= n
	pt.infl /= n
	return pt, nil
}

func efficiencyTable(title, param string, pts []effPoint) *Table {
	t := &Table{
		Title:  title,
		Note:   "times in ms per query; counts averaged over queries",
		Header: []string{param, "TS(ms)", "FA(ms)", "EX(ms)", "|C(q)|", "|I(q)|"},
	}
	for _, p := range pts {
		t.AddRow(p.label, ms(p.ts), ms(p.fa), ms(p.ex), f1(p.cands), f1(p.infl))
	}
	return t
}

// Fig6 varies the number of states N at constant branching factor: larger
// spaces make adaptation costlier (TS grows) but pruning sharper (|C|,
// |I| shrink), so refinement gets cheaper.
func Fig6(cfg Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	sizes := cfg.sweep3(
		[3]int{600, 2000, 6000},
		[3]int{2000, 10000, 50000},
		[3]int{10000, 100000, 500000})
	objects := cfg.pick(150, 1000, 10000)
	var pts []effPoint
	for _, n := range sizes {
		dcfg := datagen.DefaultSyntheticConfig()
		dcfg.States = n
		dcfg.Objects = objects
		ds, err := datagen.Synthetic(dcfg, rng)
		if err != nil {
			return nil, err
		}
		pt, err := runEfficiency(ds, cfg, 10, rng)
		if err != nil {
			return nil, err
		}
		pt.label = fmt.Sprintf("%d", n)
		pts = append(pts, pt)
	}
	return efficiencyTable("Fig 6: varying number of states N", "N", pts), nil
}

// Fig7 varies the branching factor b: more transitions per state raise
// both adaptation and refinement cost and enlarge influence sets.
func Fig7(cfg Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var pts []effPoint
	for _, b := range []float64{6, 8, 10} {
		dcfg := datagen.DefaultSyntheticConfig()
		dcfg.Branching = b
		dcfg.States = cfg.pick(2000, 10000, 100000)
		dcfg.Objects = cfg.pick(200, 1000, 10000)
		ds, err := datagen.Synthetic(dcfg, rng)
		if err != nil {
			return nil, err
		}
		pt, err := runEfficiency(ds, cfg, 10, rng)
		if err != nil {
			return nil, err
		}
		pt.label = fmt.Sprintf("%.0f", b)
		pts = append(pts, pt)
	}
	return efficiencyTable("Fig 7: varying branching factor b", "b", pts), nil
}

// Fig8 varies the database size |D|: more objects mean more candidates and
// influencers, hence costlier refinement.
func Fig8(cfg Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	sizes := cfg.sweep3(
		[3]int{60, 200, 500},
		[3]int{200, 1000, 2000},
		[3]int{1000, 10000, 20000})
	var pts []effPoint
	for _, d := range sizes {
		dcfg := datagen.DefaultSyntheticConfig()
		dcfg.Objects = d
		dcfg.States = cfg.pick(2000, 10000, 100000)
		ds, err := datagen.Synthetic(dcfg, rng)
		if err != nil {
			return nil, err
		}
		pt, err := runEfficiency(ds, cfg, 10, rng)
		if err != nil {
			return nil, err
		}
		pt.label = fmt.Sprintf("%d", d)
		pts = append(pts, pt)
	}
	return efficiencyTable("Fig 8: varying database size |D|", "|D|", pts), nil
}

// Fig9 repeats the |D| sweep on the taxi dataset (the T-Drive substitute):
// the smaller, denser state space yields more candidates and influencers
// than the synthetic network at equal |D|.
func Fig9(cfg Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	sizes := cfg.sweep3(
		[3]int{60, 200, 500},
		[3]int{200, 1000, 2000},
		[3]int{1000, 10000, 20000})
	states := cfg.pick(1500, 7000, 68902)
	var pts []effPoint
	for _, d := range sizes {
		tcfg := datagen.DefaultTaxiConfig()
		tcfg.States = states
		tcfg.Taxis = d
		tcfg.TrainTraces = cfg.pick(300, 3000, 10000)
		ds, err := datagen.Taxi(tcfg, rng)
		if err != nil {
			return nil, err
		}
		pt, err := runEfficiency(ds, cfg, 10, rng)
		if err != nil {
			return nil, err
		}
		pt.label = fmt.Sprintf("%d", d)
		pts = append(pts, pt)
	}
	return efficiencyTable("Fig 9: taxi data, varying |D|", "|D|", pts), nil
}
