package exp

import (
	"fmt"
	"math/rand"

	"pnn/internal/datagen"
	"pnn/internal/query"
	"pnn/internal/ustree"
)

// The PCNN experiments (Figures 13, 14) measure the continuous query: TS
// (model adaptation) time, SA (sampling + Apriori lattice) time, and the
// number of returned timestamp sets.

type pcnnPoint struct {
	label   string
	ts, sa  float64 // ms
	sets    float64 // qualifying sets (paper's unprocessed result size)
	maximal float64 // maximal sets actually returned
}

func runPCNN(ds *datagen.Dataset, cfg Config, tau float64, rng *rand.Rand) (pcnnPoint, error) {
	tree, err := ustree.Build(ds.Space, ds.Objects, nil)
	if err != nil {
		return pcnnPoint{}, err
	}
	eng := query.NewEngine(tree, cfg.Samples)
	prep, err := eng.PrepareAll()
	if err != nil {
		return pcnnPoint{}, err
	}
	pt := pcnnPoint{ts: prep.Seconds() * 1000}
	for qi := 0; qi < cfg.Queries; qi++ {
		qs := datagen.RandomQueryState(ds.Space, rng)
		q := query.StateQuery(ds.Space.Point(qs))
		o := ds.Objects[rng.Intn(len(ds.Objects))]
		ts := o.First().T + 1
		te := ts + 9
		if te >= o.Last().T {
			te = o.Last().T - 1
		}
		if te < ts {
			te = ts
		}
		res, st, err := eng.CNN(q, ts, te, tau, rng)
		if err != nil {
			return pcnnPoint{}, err
		}
		pt.sa += st.RefineTime.Seconds() * 1000
		pt.sets += float64(st.LatticeSets)
		pt.maximal += float64(len(res))
	}
	n := float64(cfg.Queries)
	pt.sa /= n
	pt.sets /= n
	pt.maximal /= n
	return pt, nil
}

// Fig13 varies |D| for PCNN queries at τ=0.5: adaptation time grows with
// the number of relevant objects while more pruners shrink the per-object
// probability of long intervals, reducing the returned sets.
func Fig13(cfg Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	sizes := cfg.sweep3(
		[3]int{60, 200, 500},
		[3]int{200, 1000, 2000},
		[3]int{1000, 10000, 20000})
	t := &Table{
		Title:  "Fig 13: PCNN vs database size |D| (tau = 0.5)",
		Note:   "TS = model adaptation, SA = sampling + Apriori lattice; sets counted before maximality filtering",
		Header: []string{"|D|", "TS(ms)", "SA(ms)", "#timestamp sets", "#maximal"},
	}
	for _, d := range sizes {
		dcfg := datagen.DefaultSyntheticConfig()
		dcfg.Objects = d
		dcfg.States = cfg.pick(2000, 10000, 100000)
		// Halve the horizon so enough objects are alive simultaneously to
		// create NN contention; without it one certain winner trivializes
		// the lattice.
		dcfg.Horizon = 2 * dcfg.Lifetime
		ds, err := datagen.Synthetic(dcfg, rng)
		if err != nil {
			return nil, err
		}
		pt, err := runPCNN(ds, cfg, 0.5, rand.New(rand.NewSource(cfg.Seed+7)))
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", d), ms(pt.ts), ms(pt.sa), f1(pt.sets), f1(pt.maximal))
	}
	return t, nil
}

// Fig14 varies τ: small thresholds blow up the qualifying lattice (the
// Apriori candidate sets grow toward 2^|T|), large ones shrink results.
func Fig14(cfg Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	dcfg := datagen.DefaultSyntheticConfig()
	dcfg.States = cfg.pick(2000, 10000, 100000)
	dcfg.Objects = cfg.pick(200, 1000, 10000)
	dcfg.Horizon = 2 * dcfg.Lifetime // concurrent objects → NN contention
	ds, err := datagen.Synthetic(dcfg, rng)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Fig 14: PCNN vs probability threshold tau",
		Note:   "TS = model adaptation, SA = sampling + Apriori lattice; identical query workload per row",
		Header: []string{"tau", "TS(ms)", "SA(ms)", "#timestamp sets", "#maximal"},
	}
	for _, tau := range []float64{0.1, 0.5, 0.9} {
		// Reseed per row so every tau faces the same query workload; the
		// sweep then isolates the effect of the threshold.
		pt, err := runPCNN(ds, cfg, tau, rand.New(rand.NewSource(cfg.Seed+7)))
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.1f", tau), ms(pt.ts), ms(pt.sa), f1(pt.sets), f1(pt.maximal))
	}
	return t, nil
}
