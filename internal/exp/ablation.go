package exp

import (
	"math/rand"
	"strconv"
	"time"

	"pnn/internal/datagen"
	"pnn/internal/query"
	"pnn/internal/ustree"
)

// Ablation measures the design choices DESIGN.md §6 calls out, on one
// synthetic database: the UST-tree filter step (on/off), the sample budget
// (fixed vs. Hoeffding-sized), and query parallelism. Results are average
// per-query refinement times over cfg.Queries P∀NN queries.
func Ablation(cfg Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	dcfg := datagen.DefaultSyntheticConfig()
	dcfg.States = cfg.pick(2000, 10000, 100000)
	dcfg.Objects = cfg.pick(200, 1000, 10000)
	ds, err := datagen.Synthetic(dcfg, rng)
	if err != nil {
		return nil, err
	}
	tree, err := ustree.Build(ds.Space, ds.Objects, nil)
	if err != nil {
		return nil, err
	}

	type variant struct {
		name  string
		setup func() *query.Engine
	}
	variants := []variant{
		{"baseline (filter, fixed samples)", func() *query.Engine {
			return query.NewEngine(tree, cfg.Samples)
		}},
		{"no UST filter", func() *query.Engine {
			e := query.NewEngine(tree, cfg.Samples)
			e.DisablePruning()
			return e
		}},
		{"hoeffding eps=0.02", func() *query.Engine {
			return query.NewEngine(tree, query.RequiredSamples(0.02, 0.05))
		}},
		{"hoeffding eps=0.05", func() *query.Engine {
			return query.NewEngine(tree, query.RequiredSamples(0.05, 0.05))
		}},
		{"parallel x4", func() *query.Engine {
			e := query.NewEngine(tree, cfg.Samples)
			e.SetParallelism(4)
			return e
		}},
	}

	// Fixed query workload shared by every variant.
	type qspec struct {
		q      query.Query
		ts, te int
	}
	var qs []qspec
	for i := 0; i < cfg.Queries*3; i++ {
		o := ds.Objects[rng.Intn(len(ds.Objects))]
		ts := o.First().T + 1
		te := ts + 9
		if te >= o.Last().T {
			te = o.Last().T - 1
		}
		if te < ts {
			te = ts
		}
		qs = append(qs, qspec{
			q:  query.StateQuery(ds.Space.Point(datagen.RandomQueryState(ds.Space, rng))),
			ts: ts, te: te,
		})
	}

	t := &Table{
		Title:  "Ablation: filter step, sample budget, parallelism",
		Note:   "average per-query refine time over a fixed P∀NN workload",
		Header: []string{"variant", "worlds", "refine(ms)", "|I(q)| avg"},
	}
	for _, v := range variants {
		eng := v.setup()
		if _, err := eng.PrepareAll(); err != nil {
			return nil, err
		}
		var total time.Duration
		var infl float64
		qrng := rand.New(rand.NewSource(cfg.Seed + 99))
		for _, sp := range qs {
			_, st, err := eng.ForAllNN(sp.q, sp.ts, sp.te, 0, qrng)
			if err != nil {
				return nil, err
			}
			total += st.RefineTime
			infl += float64(st.Influencers)
		}
		n := float64(len(qs))
		t.AddRow(v.name,
			itoa(eng.SampleCount()),
			ms(total.Seconds()*1000/n),
			f1(infl/n))
	}
	return t, nil
}

func itoa(v int) string { return strconv.Itoa(v) }
