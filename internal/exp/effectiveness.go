package exp

import (
	"fmt"
	"math/rand"

	"pnn/internal/datagen"
	"pnn/internal/inference"
	"pnn/internal/uncertain"
)

// Fig12 reproduces the model-adaptation effectiveness study on the taxi
// dataset: for held-out ground-truth positions, the expected distance
// between each model's predicted distribution and the true position, per
// time offset inside a 30-tic window (three observation gaps at l = 10).
//
// Models compared (Section 7.1 "Effectiveness of the Forward-Backward
// Model"):
//
//	NO  — a-priori chain from the first observation, later ones ignored
//	F   — forward-filtered only (observations up to t)
//	FB  — forward-backward posterior (this paper)
//	U   — uniform over the reachability diamond (cylinders/beads-style)
//	FBU — forward-backward over a uniformized chain
//
// Expected shape: NO ≫ U > F > FBU ≥ FB, with F spiking right before
// observations and FB staying low throughout.
func Fig12(cfg Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	tcfg := datagen.DefaultTaxiConfig()
	tcfg.States = cfg.pick(1500, 4000, 68902)
	tcfg.Taxis = cfg.pick(25, 60, 200)
	tcfg.TrainTraces = cfg.pick(300, 3000, 10000)
	tcfg.ObsInterval = 10
	tcfg.Lifetime = 30
	tcfg.Horizon = 31
	ds, err := datagen.Taxi(tcfg, rng)
	if err != nil {
		return nil, err
	}

	const window = 30
	sums := map[string][]float64{}
	counts := make([]int, window+1)
	names := []string{"NO", "F", "FB", "U", "FBU"}
	for _, n := range names {
		sums[n] = make([]float64, window+1)
	}
	reach := uncertain.NewReach()
	for i, o := range ds.Objects {
		truth := ds.Truth[i]
		m, err := inference.Adapt(o)
		if err != nil {
			return nil, err
		}
		u, err := inference.NewUniformDiamondModel(o, reach)
		if err != nil {
			return nil, err
		}
		fbu, err := inference.FBUModel(o)
		if err != nil {
			return nil, err
		}
		models := map[string]inference.MarginalModel{
			"NO":  inference.NewNoObservationModel(o),
			"F":   inference.ForwardModel{M: m},
			"FB":  inference.PosteriorModel{M: m},
			"U":   u,
			"FBU": fbu,
		}
		for off := 0; off <= window; off++ {
			t := o.First().T + off
			if t > o.Last().T {
				break
			}
			trueState, ok := truth.At(t)
			if !ok {
				continue
			}
			truePt := ds.Space.Point(trueState)
			distTo := func(s int) float64 { return ds.Space.Point(s).Dist(truePt) }
			for _, n := range names {
				sums[n][off] += inference.ExpectedError(models[n], t, distTo)
			}
			counts[off]++
		}
	}

	t := &Table{
		Title:  "Fig 12: mean location error of adapted models over time (taxi data)",
		Note:   "expected distance to held-out ground truth; observations every 10 tics",
		Header: []string{"t", "NO", "F", "FB", "U", "FBU"},
	}
	for off := 0; off <= window; off++ {
		if counts[off] == 0 {
			continue
		}
		n := float64(counts[off])
		t.AddRow(fmt.Sprintf("%d", off),
			f3(sums["NO"][off]/n), f3(sums["F"][off]/n), f3(sums["FB"][off]/n),
			f3(sums["U"][off]/n), f3(sums["FBU"][off]/n))
	}
	return t, nil
}

// MeanColumn averages a numeric column of a Fig12-style table; exported
// for shape assertions in tests and EXPERIMENTS.md generation.
func MeanColumn(t *Table, col string) float64 {
	idx := -1
	for i, h := range t.Header {
		if h == col {
			idx = i
		}
	}
	if idx < 0 {
		panic("exp: unknown column " + col)
	}
	var sum float64
	for _, row := range t.Rows {
		var v float64
		fmt.Sscanf(row[idx], "%f", &v)
		sum += v
	}
	return sum / float64(len(t.Rows))
}
