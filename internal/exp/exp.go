// Package exp regenerates every experiment of the paper's evaluation
// (Section 7): one runner per figure, each producing a Table whose rows
// mirror the series the paper plots. Absolute numbers differ from the
// paper's C++/i7-870 testbed; the shapes (who wins, growth directions,
// crossovers) are what the runners — and the assertions in exp_test.go —
// reproduce.
package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Config scales the experiments. The zero value is not usable; call
// DefaultConfig (seconds per figure) or PaperConfig (paper-scale
// parameters, minutes per figure).
type Config struct {
	Paper   bool  // use paper-scale workloads
	Tiny    bool  // use minimal workloads (tests and benchmarks)
	Samples int   // sampled worlds per query (paper: 10 000)
	Queries int   // queries averaged per setting
	Seed    int64 // master seed; every run is reproducible
}

// TinyConfig returns a minimal configuration for tests and benchmarks:
// smallest workloads that still exhibit the figures' shapes.
func TinyConfig() Config {
	return Config{Tiny: true, Samples: 400, Queries: 2, Seed: 1}
}

// sweep3 picks the three sweep values for a figure by scale.
func (c Config) sweep3(tiny, def, paper [3]int) [3]int {
	switch {
	case c.Paper:
		return paper
	case c.Tiny:
		return tiny
	default:
		return def
	}
}

// pick chooses a single int parameter by scale.
func (c Config) pick(tiny, def, paper int) int {
	switch {
	case c.Paper:
		return paper
	case c.Tiny:
		return tiny
	default:
		return def
	}
}

// DefaultConfig returns the scaled-down configuration used by `go test`
// and the benchmarks: roughly 5-10× smaller than the paper's defaults.
func DefaultConfig() Config {
	return Config{Samples: 2000, Queries: 3, Seed: 1}
}

// PaperConfig restores the paper's workload sizes (|S|=100k, |D|=10k,
// 10k samples). Figures take minutes each at this scale.
func PaperConfig() Config {
	return Config{Paper: true, Samples: 10000, Queries: 5, Seed: 1}
}

// Table is one experiment's output: a titled header plus formatted rows.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
		return err
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Note); err != nil {
			return err
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	return tw.Flush()
}

// WriteCSV emits the table as CSV (header first).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Cell looks a value up by header name for test assertions; it panics on
// unknown columns (a test bug, not a data condition).
func (t *Table) Cell(row int, col string) string {
	for i, h := range t.Header {
		if h == col {
			return t.Rows[row][i]
		}
	}
	panic("exp: unknown column " + col)
}

// Runner is a named experiment.
type Runner struct {
	Name string
	Desc string
	Run  func(Config) (*Table, error)
}

// Runners lists every reproducible experiment in paper order.
func Runners() []Runner {
	return []Runner{
		{"example1", "Figure 1 worked example: exact P∃NN/P∀NN/PCNN", Example1},
		{"fig6", "CPU time and candidate counts vs number of states N", Fig6},
		{"fig7", "CPU time and candidate counts vs branching factor b", Fig7},
		{"fig8", "CPU time and candidate counts vs database size |D|", Fig8},
		{"fig9", "taxi data: CPU time and candidate counts vs |D|", Fig9},
		{"fig10", "sample attempts per valid trajectory vs #observations", Fig10},
		{"fig11", "estimation bias: sampling (SA) vs snapshot (SS) against reference", Fig11},
		{"fig12", "model adaptation effectiveness: mean error of NO/F/FB/U/FBU", Fig12},
		{"fig13", "PCNN: runtime and result cardinality vs |D|", Fig13},
		{"fig14", "PCNN: runtime and result cardinality vs tau", Fig14},
		{"ablation", "design-choice ablations: filter step, sample budget, parallelism", Ablation},
	}
}

// Find returns the runner with the given name.
func Find(name string) (Runner, bool) {
	for _, r := range Runners() {
		if r.Name == name {
			return r, true
		}
	}
	return Runner{}, false
}

func ms(d float64) string { return fmt.Sprintf("%.1f", d) }

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
