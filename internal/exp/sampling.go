package exp

import (
	"fmt"
	"math"
	"math/rand"

	"pnn/internal/inference"
	"pnn/internal/markov"
	"pnn/internal/query"
	"pnn/internal/space"
	"pnn/internal/uncertain"
	"pnn/internal/ustree"
)

// Fig10 reproduces the sampling-efficiency experiment: the expected number
// of trajectory draws required to obtain ONE sample consistent with all
// observations, as a function of the number of observations. TS1 (full-
// trajectory rejection) grows exponentially, TS2 (segment-wise rejection)
// linearly, and the forward-backward sampler needs exactly one draw by
// construction. Expected counts are computed analytically by exact forward
// propagation; an empirical column validates them where affordable.
func Fig10(cfg Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	sp, err := space.Synthetic(1200, 8, rng)
	if err != nil {
		return nil, err
	}
	chain, err := markov.NewHomogeneous(sp.TransitionMatrix(0.5))
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:  "Fig 10: sample attempts per valid trajectory vs #observations",
		Note:   "TS1 = full-trajectory rejection, TS2 = segment-wise, FB = forward-backward (this paper)",
		Header: []string{"#obs", "TS1(expected)", "TS2(expected)", "TS1(empirical)", "FB"},
	}
	maxObs := 5
	if cfg.Paper {
		maxObs = 7
	}
	for nObs := 2; nObs <= maxObs; nObs++ {
		// Average the analytic expectations over several random objects.
		var ts1Sum, ts2Sum, empSum float64
		var empCount int
		const reps = 5
		for r := 0; r < reps; r++ {
			o, err := randomObject(sp, chain, rng, nObs, 4)
			if err != nil {
				return nil, err
			}
			e1, e2 := inference.ExpectedRejectionCost(o)
			ts1Sum += e1
			ts2Sum += e2
			// Empirical check only while the expectation is affordable.
			if e1 < 5000 {
				res, err := inference.RejectionSample(o, rng, 1<<22)
				if err == nil {
					empSum += float64(res.Attempts)
					empCount++
				}
			}
		}
		emp := "-"
		if empCount > 0 {
			emp = f1(empSum / float64(empCount))
		}
		t.AddRow(fmt.Sprintf("%d", nObs), f1(ts1Sum/reps), f1(ts2Sum/reps), emp, "1.0")
	}
	return t, nil
}

// walkObject builds an object whose ground truth is a chain random walk of
// the given lifetime starting at `start`, observed every `gap` tics —
// consistent by construction.
func walkObject(sp *space.Space, chain markov.Chain, rng *rand.Rand, id, start, lifetime, gap int) (*uncertain.Object, error) {
	cur := start
	states := []int{cur}
	m := chain.At(0)
	for len(states) <= lifetime {
		cols, vals := m.Row(cur)
		u := rng.Float64()
		acc := 0.0
		next := int(cols[len(cols)-1])
		for k, v := range vals {
			acc += v
			if u <= acc {
				next = int(cols[k])
				break
			}
		}
		cur = next
		states = append(states, cur)
	}
	var obs []uncertain.Observation
	for t := 0; t <= lifetime; t += gap {
		obs = append(obs, uncertain.Observation{T: t, State: states[t]})
	}
	if (lifetime % gap) != 0 {
		obs = append(obs, uncertain.Observation{T: lifetime, State: states[lifetime]})
	}
	return uncertain.NewObject(id, obs, chain)
}

// randomObject builds an object with nObs observations spaced `gap` tics
// apart along a random network walk (so observations are always
// consistent).
func randomObject(sp *space.Space, chain markov.Chain, rng *rand.Rand, nObs, gap int) (*uncertain.Object, error) {
	lifetime := (nObs - 1) * gap
	// Random walk under the chain itself guarantees consistency.
	cur := rng.Intn(sp.Len())
	states := []int{cur}
	m := chain.At(0)
	for len(states) <= lifetime {
		cols, vals := m.Row(cur)
		u := rng.Float64()
		acc := 0.0
		next := int(cols[len(cols)-1])
		for k, v := range vals {
			acc += v
			if u <= acc {
				next = int(cols[k])
				break
			}
		}
		cur = next
		states = append(states, cur)
	}
	var obs []uncertain.Observation
	for k := 0; k < nObs; k++ {
		obs = append(obs, uncertain.Observation{T: k * gap, State: states[k*gap]})
	}
	return uncertain.NewObject(0, obs, chain)
}

// Fig11 reproduces the effectiveness scatter plot: against a high-sample
// reference (REF), the paper's sampler (SA) is unbiased while the snapshot
// estimator (SS, [19]) underestimates P∀NN and overestimates P∃NN. The
// table reports mean signed deviation from REF over many random queries.
func Fig11(cfg Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	scenarios := cfg.pick(4, 6, 12)
	refSamples := cfg.pick(30000, 80000, 1000000)
	saSamples := cfg.Samples
	if cfg.Paper {
		saSamples = 10000
	}

	// One shared space and chain; per scenario a handful of objects
	// clustered around the query anchor, so NN probabilities are
	// genuinely fractional (v = 0.2-style slack comes from random walks).
	sp, err := space.Synthetic(1200, 8, rng)
	if err != nil {
		return nil, err
	}
	chain, err := markov.NewHomogeneous(sp.TransitionMatrix(0.5))
	if err != nil {
		return nil, err
	}

	var saAllErr, ssAllErr, saExErr, ssExErr []float64
	for sc := 0; sc < scenarios; sc++ {
		anchor := rng.Intn(sp.Len())
		anchorPt := sp.Point(anchor)
		nearby := sp.StatesWithin(anchorPt, 0.08)
		var objs []*uncertain.Object
		for id := 0; id < 5; id++ {
			start := nearby[rng.Intn(len(nearby))]
			o, err := walkObject(sp, chain, rng, id, start, 30, 10)
			if err != nil {
				return nil, err
			}
			objs = append(objs, o)
		}
		tree, err := ustree.Build(sp, objs, nil)
		if err != nil {
			return nil, err
		}
		dsObjects := objs
		q := query.StateQuery(anchorPt)
		ts, te := 12, 16 // |T| = 5 as in the paper

		ref := query.NewEngine(tree, refSamples)
		refAll, _, err := ref.ForAllNN(q, ts, te, 0, rng)
		if err != nil {
			return nil, err
		}
		refEx, _, err := ref.ExistsNN(q, ts, te, 0, rng)
		if err != nil {
			return nil, err
		}

		sa := query.NewEngine(tree, saSamples)
		saAll, _, err := sa.ForAllNN(q, ts, te, 0, rng)
		if err != nil {
			return nil, err
		}
		saEx, _, err := sa.ExistsNN(q, ts, te, 0, rng)
		if err != nil {
			return nil, err
		}

		var models []*inference.Model
		for _, o := range dsObjects {
			m, err := inference.Adapt(o)
			if err != nil {
				return nil, err
			}
			models = append(models, m)
		}
		ss := query.NewSnapshotEstimator(sp, models)
		ssAll := ss.ForAllNN(q, ts, te)
		ssEx := ss.ExistsNN(q, ts, te)

		asMap := func(rs []query.Result) map[int]float64 {
			m := map[int]float64{}
			for _, r := range rs {
				m[r.Obj] = r.Prob
			}
			return m
		}
		refAllM, refExM := asMap(refAll), asMap(refEx)
		saAllM, saExM := asMap(saAll), asMap(saEx)
		for oi := range dsObjects {
			if refAllM[oi] > 0.001 {
				saAllErr = append(saAllErr, saAllM[oi]-refAllM[oi])
				ssAllErr = append(ssAllErr, ssAll[oi]-refAllM[oi])
			}
			if refExM[oi] > 0.001 {
				saExErr = append(saExErr, saExM[oi]-refExM[oi])
				ssExErr = append(ssExErr, ssEx[oi]-refExM[oi])
			}
		}
	}
	t := &Table{
		Title:  "Fig 11: estimation bias against reference probabilities",
		Note:   "mean signed deviation from REF; SA ≈ 0, SS < 0 for ∀ and > 0 for ∃",
		Header: []string{"estimator", "semantics", "mean bias", "mean |error|", "points"},
	}
	add := func(name, sem string, errs []float64) {
		var sum, abs float64
		for _, e := range errs {
			sum += e
			abs += math.Abs(e)
		}
		n := float64(len(errs))
		if n == 0 {
			n = 1
		}
		t.AddRow(name, sem, f3(sum/n), f3(abs/n), fmt.Sprintf("%d", len(errs)))
	}
	add("SA", "P∀NN", saAllErr)
	add("SS", "P∀NN", ssAllErr)
	add("SA", "P∃NN", saExErr)
	add("SS", "P∃NN", ssExErr)
	return t, nil
}
