package exp

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// skipHeavy gates the multi-second experiment regenerations out of the
// short tier: `go test -short` (the blocking CI job) stays fast, while the
// full suite — and CI's non-blocking full job — still runs everything.
func skipHeavy(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("heavy experiment regeneration; run without -short")
	}
}

// num parses a table cell as float for shape assertions.
func num(t *testing.T, table *Table, row int, col string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(table.Cell(row, col), 64)
	if err != nil {
		t.Fatalf("cell (%d, %s) = %q not numeric: %v", row, col, table.Cell(row, col), err)
	}
	return v
}

func TestExample1Exact(t *testing.T) {
	table, err := Example1(TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Every computed value must equal the paper's value exactly (they are
	// rational numbers with small denominators).
	for i, row := range table.Rows {
		if row[1] != row[2] {
			t.Errorf("row %d (%s): computed %s != paper %s", i, row[0], row[1], row[2])
		}
	}
}

func TestFig6Shape(t *testing.T) {
	skipHeavy(t)
	table, err := Fig6(TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(table.Rows))
	}
	// Pruning sharpens with N: candidates and influencers shrink (or stay
	// equal) from the smallest to the largest state space.
	if num(t, table, 0, "|I(q)|") < num(t, table, 2, "|I(q)|") {
		t.Errorf("influence set should shrink with N: %s vs %s",
			table.Cell(0, "|I(q)|"), table.Cell(2, "|I(q)|"))
	}
	// Candidates never exceed influencers.
	for r := 0; r < 3; r++ {
		if num(t, table, r, "|C(q)|") > num(t, table, r, "|I(q)|") {
			t.Errorf("row %d: |C| > |I|", r)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	skipHeavy(t)
	table, err := Fig8(TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// More objects → more influencers and higher sampler-init cost.
	if num(t, table, 2, "|I(q)|") < num(t, table, 0, "|I(q)|") {
		t.Errorf("influencers should grow with |D|: %s vs %s",
			table.Cell(0, "|I(q)|"), table.Cell(2, "|I(q)|"))
	}
	if num(t, table, 2, "TS(ms)") < num(t, table, 0, "TS(ms)") {
		t.Errorf("TS should grow with |D|")
	}
}

func TestFig10Shape(t *testing.T) {
	table, err := Fig10(TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	n := len(table.Rows)
	if n < 3 {
		t.Fatalf("want >= 3 rows, got %d", n)
	}
	// TS1 grows much faster than TS2 from 2 observations to the maximum.
	ts1Growth := num(t, table, n-1, "TS1(expected)") / num(t, table, 0, "TS1(expected)")
	ts2Growth := num(t, table, n-1, "TS2(expected)") / num(t, table, 0, "TS2(expected)")
	if ts1Growth <= ts2Growth {
		t.Errorf("TS1 growth %v should exceed TS2 growth %v", ts1Growth, ts2Growth)
	}
	// FB is always exactly one draw.
	for r := 0; r < n; r++ {
		if table.Cell(r, "FB") != "1.0" {
			t.Errorf("FB column must be 1.0, got %s", table.Cell(r, "FB"))
		}
	}
}

func TestFig11Shape(t *testing.T) {
	table, err := Fig11(TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Rows: SA/∀, SS/∀, SA/∃, SS/∃.
	saAll := num(t, table, 0, "mean bias")
	ssAll := num(t, table, 1, "mean bias")
	saEx := num(t, table, 2, "mean bias")
	ssEx := num(t, table, 3, "mean bias")
	if abs(saAll) > 0.03 || abs(saEx) > 0.03 {
		t.Errorf("SA should be (nearly) unbiased: ∀ %v, ∃ %v", saAll, saEx)
	}
	if ssAll >= -0.005 {
		t.Errorf("SS must underestimate P∀NN, bias = %v", ssAll)
	}
	if ssEx <= 0.005 {
		t.Errorf("SS must overestimate P∃NN, bias = %v", ssEx)
	}
	// SS absolute error exceeds SA's.
	if num(t, table, 1, "mean |error|") <= num(t, table, 0, "mean |error|") {
		t.Error("SS ∀ error should exceed SA ∀ error")
	}
}

func TestFig12Shape(t *testing.T) {
	table, err := Fig12(TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) < 20 {
		t.Fatalf("expected a row per tic, got %d", len(table.Rows))
	}
	no := MeanColumn(table, "NO")
	f := MeanColumn(table, "F")
	fb := MeanColumn(table, "FB")
	u := MeanColumn(table, "U")
	fbu := MeanColumn(table, "FBU")
	// The paper's ordering: NO worst; U worse than the adapted models;
	// FB best; FBU between FB and U; F worse than FB.
	if !(no > u && u > fb && f > fb) {
		t.Errorf("ordering violated: NO=%v U=%v F=%v FBU=%v FB=%v", no, u, f, fbu, fb)
	}
	if fbu < fb-1e-9 {
		t.Errorf("FBU (%v) should not beat FB (%v)", fbu, fb)
	}
	// At observation tics (0, 10, 20, 30) every observation-aware model
	// has (near) zero error.
	for _, r := range []int{0} {
		if v := num(t, table, r, "FB"); v > 1e-9 {
			t.Errorf("FB error at an observation = %v", v)
		}
	}
}

func TestFig13Fig14Shape(t *testing.T) {
	skipHeavy(t)
	cfg := TinyConfig()
	t13, err := Fig13(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if num(t, t13, 2, "TS(ms)") < num(t, t13, 0, "TS(ms)") {
		t.Error("Fig13: TS should grow with |D|")
	}
	t14, err := Fig14(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Result cardinality shrinks as tau grows.
	if num(t, t14, 0, "#timestamp sets") < num(t, t14, 2, "#timestamp sets") {
		t.Errorf("Fig14: sets at τ=0.1 (%s) should be >= sets at τ=0.9 (%s)",
			t14.Cell(0, "#timestamp sets"), t14.Cell(2, "#timestamp sets"))
	}
}

func TestAblationShape(t *testing.T) {
	skipHeavy(t)
	table, err := Ablation(TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 5 {
		t.Fatalf("want 5 variants, got %d", len(table.Rows))
	}
	// The unfiltered variant must refine at least as many influencers as
	// the baseline (row 0 = baseline, row 1 = no filter).
	if num(t, table, 1, "|I(q)| avg") < num(t, table, 0, "|I(q)| avg") {
		t.Errorf("no-filter influencers (%s) below baseline (%s)",
			table.Cell(1, "|I(q)| avg"), table.Cell(0, "|I(q)| avg"))
	}
	// Hoeffding eps=0.05 needs fewer worlds than eps=0.02.
	if num(t, table, 3, "worlds") >= num(t, table, 2, "worlds") {
		t.Error("looser accuracy must need fewer worlds")
	}
}

func TestTableRendering(t *testing.T) {
	table := &Table{
		Title:  "demo",
		Note:   "a note",
		Header: []string{"a", "b"},
	}
	table.AddRow("1", "2")
	table.AddRow("3", "4")
	var buf bytes.Buffer
	if err := table.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "a note", "1", "4"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := table.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "a,b\n1,2\n3,4\n" {
		t.Errorf("CSV = %q", got)
	}
	if table.Cell(1, "b") != "4" {
		t.Errorf("Cell = %s", table.Cell(1, "b"))
	}
}

func TestRunnersRegistry(t *testing.T) {
	rs := Runners()
	if len(rs) != 11 {
		t.Fatalf("expected 11 runners, got %d", len(rs))
	}
	seen := map[string]bool{}
	for _, r := range rs {
		if seen[r.Name] {
			t.Errorf("duplicate runner %s", r.Name)
		}
		seen[r.Name] = true
		if r.Run == nil || r.Desc == "" {
			t.Errorf("runner %s incomplete", r.Name)
		}
	}
	if _, ok := Find("fig6"); !ok {
		t.Error("Find(fig6) failed")
	}
	if _, ok := Find("nope"); ok {
		t.Error("Find(nope) should fail")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
