package sub

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeEval builds an EvalFunc over a mutable "database": version and
// answer are read atomically, influencers/region are fixed per call.
type fakeDB struct {
	version atomic.Int64
	answer  atomic.Int64
}

func (db *fakeDB) eval(influencers []int, region any) EvalFunc {
	return func() Eval {
		a := db.answer.Load()
		return Eval{
			Version:     db.version.Load(),
			Influencers: influencers,
			Region:      region,
			Payload:     a,
			Fingerprint: uint64(a),
		}
	}
}

func collect(t *testing.T, s *Subscription, n int) []Event {
	t.Helper()
	var out []Event
	for len(out) < n {
		select {
		case e, ok := <-s.Events():
			if !ok {
				t.Fatalf("channel closed after %d events, want %d", len(out), n)
			}
			out = append(out, e)
		case <-time.After(2 * time.Second):
			t.Fatalf("timed out after %d events, want %d", len(out), n)
		}
	}
	return out
}

func TestSubscribeInitialEventAndIndex(t *testing.T) {
	db := &fakeDB{}
	db.version.Store(1)
	r := NewRegistry(2)
	defer r.Close()

	s := r.Subscribe(db.eval([]int{7, 9}, "region"), Delivery{}, "meta")
	ev := collect(t, s, 1)[0]
	if ev.Seq != 1 || ev.Version != 1 || ev.Bye {
		t.Fatalf("initial event = %+v, want seq 1 version 1", ev)
	}
	if got := s.Info(); got.Influencers != 2 || got.Meta != "meta" {
		t.Fatalf("Info = %+v, want 2 influencers, meta kept", got)
	}

	// A write to an indexed object re-evaluates without a touch test; a
	// write to anything else consults the region.
	db.version.Store(2)
	r.NotifyWrite(7, func(any) bool { t.Fatal("indexed object must not touch-test"); return false })
	if !r.WaitIdle(2 * time.Second) {
		t.Fatal("registry did not quiesce")
	}
	ev = collect(t, s, 1)[0]
	if ev.Seq != 2 || ev.Version != 2 {
		t.Fatalf("re-evaluation event = %+v, want seq 2 version 2", ev)
	}

	db.version.Store(3)
	tested := false
	r.NotifyWrite(100, func(region any) bool {
		tested = true
		if region != "region" {
			t.Errorf("touch saw region %v", region)
		}
		return false
	})
	if !r.WaitIdle(2 * time.Second) {
		t.Fatal("registry did not quiesce")
	}
	if !tested {
		t.Fatal("unindexed write skipped the touch test")
	}
	select {
	case e := <-s.Events():
		t.Fatalf("untouched subscription received %+v", e)
	default:
	}
	st := r.Stats()
	if st.Evaluations != 2 || st.TouchTests != 1 {
		t.Fatalf("stats = %+v, want 2 evaluations, 1 touch test", st)
	}
}

func TestNotifySkipsUntouchedSubscriptions(t *testing.T) {
	db := &fakeDB{}
	db.version.Store(1)
	r := NewRegistry(2)
	defer r.Close()

	near := r.Subscribe(db.eval([]int{1}, "near"), Delivery{}, nil)
	far := r.Subscribe(db.eval([]int{2}, "far"), Delivery{}, nil)
	collect(t, near, 1)
	collect(t, far, 1)

	db.version.Store(2)
	r.NotifyWrite(50, func(region any) bool { return region == "near" })
	if !r.WaitIdle(2 * time.Second) {
		t.Fatal("registry did not quiesce")
	}
	if ev := collect(t, near, 1)[0]; ev.Version != 2 {
		t.Fatalf("near got %+v, want version 2", ev)
	}
	select {
	case e := <-far.Events():
		t.Fatalf("far subscription received %+v", e)
	default:
	}
	if st := r.Stats(); st.Affected != 1 {
		t.Fatalf("Affected = %d, want 1", st.Affected)
	}
}

func TestOnChangeOnlySuppressesEqualAnswers(t *testing.T) {
	db := &fakeDB{}
	db.version.Store(1)
	db.answer.Store(42)
	r := NewRegistry(1)
	defer r.Close()

	s := r.Subscribe(db.eval([]int{1}, "r"), Delivery{OnChangeOnly: true}, nil)
	collect(t, s, 1)

	// Same answer at a newer version: suppressed.
	db.version.Store(2)
	r.NotifyWrite(1, nil)
	r.WaitIdle(2 * time.Second)
	select {
	case e := <-s.Events():
		t.Fatalf("unchanged answer emitted %+v", e)
	default:
	}
	// Changed answer: emitted.
	db.version.Store(3)
	db.answer.Store(43)
	r.NotifyWrite(1, nil)
	r.WaitIdle(2 * time.Second)
	if ev := collect(t, s, 1)[0]; ev.Version != 3 || ev.Payload != int64(43) {
		t.Fatalf("changed answer event = %+v", ev)
	}
	if st := r.Stats(); st.Skipped != 1 {
		t.Fatalf("Skipped = %d, want 1", st.Skipped)
	}
}

func TestMinIntervalCoalescesToLatest(t *testing.T) {
	db := &fakeDB{}
	db.version.Store(1)
	db.answer.Store(1)
	r := NewRegistry(1)
	defer r.Close()

	s := r.Subscribe(db.eval([]int{1}, "r"), Delivery{MinInterval: 50 * time.Millisecond}, nil)
	collect(t, s, 1) // opens the interval window

	// Two rapid updates inside the interval: only the latest survives.
	for v := int64(2); v <= 3; v++ {
		db.version.Store(v)
		db.answer.Store(v * 10)
		r.NotifyWrite(1, nil)
		r.WaitIdle(2 * time.Second)
	}
	ev := collect(t, s, 1)[0]
	if ev.Version != 3 || ev.Payload != int64(30) {
		t.Fatalf("coalesced event = %+v, want the latest (version 3)", ev)
	}
	select {
	case e := <-s.Events():
		t.Fatalf("intermediate update leaked: %+v", e)
	case <-time.After(80 * time.Millisecond):
	}
}

func TestQueueOverflowDropsOldestNotWriter(t *testing.T) {
	db := &fakeDB{}
	db.version.Store(1)
	r := NewRegistry(1)
	defer r.Close()

	s := r.Subscribe(db.eval([]int{1}, "r"), Delivery{QueueCap: 2}, nil)
	// Nobody reads: pile up 5 answers into a 2-slot queue.
	for v := int64(2); v <= 6; v++ {
		db.version.Store(v)
		r.NotifyWrite(1, nil)
		if !r.WaitIdle(2 * time.Second) {
			t.Fatal("registry did not quiesce — the writer path blocked on a full queue")
		}
	}
	evs := collect(t, s, 2)
	last := evs[1]
	if last.Version != 6 {
		t.Fatalf("newest queued event has version %d, want 6", last.Version)
	}
	if last.Dropped != 4 {
		t.Fatalf("Dropped = %d, want 4 (6 emitted into 2 slots)", last.Dropped)
	}
	if st := r.Stats(); st.Dropped != 4 {
		t.Fatalf("registry Dropped = %d, want 4", st.Dropped)
	}
}

func TestUnsubscribeAndCloseSendBye(t *testing.T) {
	db := &fakeDB{}
	db.version.Store(1)
	r := NewRegistry(1)

	a := r.Subscribe(db.eval([]int{1}, "r"), Delivery{}, nil)
	b := r.Subscribe(db.eval([]int{2}, "r"), Delivery{}, nil)
	collect(t, a, 1)
	collect(t, b, 1)

	if !r.Unsubscribe(a.ID()) {
		t.Fatal("Unsubscribe(a) = false")
	}
	if r.Unsubscribe(a.ID()) {
		t.Fatal("second Unsubscribe(a) = true")
	}
	ev := collect(t, a, 1)[0]
	if !ev.Bye || ev.Seq != 2 {
		t.Fatalf("after Unsubscribe got %+v, want bye seq 2", ev)
	}
	if _, ok := <-a.Events(); ok {
		t.Fatal("channel still open after bye")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}

	r.Close()
	ev = collect(t, b, 1)[0]
	if !ev.Bye {
		t.Fatalf("after Close got %+v, want bye", ev)
	}
	if _, ok := <-b.Events(); ok {
		t.Fatal("channel still open after registry close")
	}
	// Idempotent.
	r.Close()
}

func TestVersionsMonotoneUnderConcurrentWrites(t *testing.T) {
	db := &fakeDB{}
	db.version.Store(1)
	r := NewRegistry(4)
	defer r.Close()

	const subs = 8
	var wg sync.WaitGroup
	for i := 0; i < subs; i++ {
		s := r.Subscribe(db.eval([]int{i}, "r"), Delivery{QueueCap: 4}, nil)
		wg.Add(1)
		go func(s *Subscription) {
			defer wg.Done()
			lastSeq, lastVer := int64(0), int64(0)
			for e := range s.Events() {
				if e.Seq <= lastSeq {
					t.Errorf("sub %d: seq %d after %d", s.ID(), e.Seq, lastSeq)
				}
				lastSeq = e.Seq
				if e.Bye {
					continue
				}
				if e.Version <= lastVer {
					t.Errorf("sub %d: version %d after %d", s.ID(), e.Version, lastVer)
				}
				lastVer = e.Version
			}
		}(s)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				db.version.Add(1)
				r.NotifyWrite(i%subs, func(any) bool { return i%3 == 0 })
			}
		}()
	}
	// Writers finish, evaluations drain, subscriptions close, readers
	// see bye + closed channels.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	time.Sleep(50 * time.Millisecond)
	r.WaitIdle(5 * time.Second)
	r.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("consumers did not drain after Close")
	}
}
