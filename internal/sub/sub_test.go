package sub

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeEval builds an EvalFunc over a mutable "database": version and
// answer are read atomically, influencers/region are fixed per call.
type fakeDB struct {
	version atomic.Int64
	answer  atomic.Int64
}

func (db *fakeDB) eval(influencers []int, region any) EvalFunc {
	return func() Eval {
		a := db.answer.Load()
		return Eval{
			Version:     db.version.Load(),
			Influencers: influencers,
			Region:      region,
			Payload:     a,
			Fingerprint: uint64(a),
		}
	}
}

func collect(t *testing.T, s *Subscription, n int) []Event {
	t.Helper()
	var out []Event
	for len(out) < n {
		select {
		case e, ok := <-s.Events():
			if !ok {
				t.Fatalf("channel closed after %d events, want %d", len(out), n)
			}
			out = append(out, e)
		case <-time.After(2 * time.Second):
			t.Fatalf("timed out after %d events, want %d", len(out), n)
		}
	}
	return out
}

func TestSubscribeInitialEventAndIndex(t *testing.T) {
	db := &fakeDB{}
	db.version.Store(1)
	r := NewRegistry(2)
	defer r.Close()

	s := r.Subscribe(db.eval([]int{7, 9}, "region"), Delivery{}, "meta")
	ev := collect(t, s, 1)[0]
	if ev.Seq != 1 || ev.Version != 1 || ev.Bye {
		t.Fatalf("initial event = %+v, want seq 1 version 1", ev)
	}
	if got := s.Info(); got.Influencers != 2 || got.Meta != "meta" {
		t.Fatalf("Info = %+v, want 2 influencers, meta kept", got)
	}

	// A write to an indexed object re-evaluates without a touch test; a
	// write to anything else consults the region.
	db.version.Store(2)
	r.NotifyWrite(7, func(any) bool { t.Fatal("indexed object must not touch-test"); return false })
	if !r.WaitIdle(2 * time.Second) {
		t.Fatal("registry did not quiesce")
	}
	ev = collect(t, s, 1)[0]
	if ev.Seq != 2 || ev.Version != 2 {
		t.Fatalf("re-evaluation event = %+v, want seq 2 version 2", ev)
	}

	db.version.Store(3)
	tested := false
	r.NotifyWrite(100, func(region any) bool {
		tested = true
		if region != "region" {
			t.Errorf("touch saw region %v", region)
		}
		return false
	})
	if !r.WaitIdle(2 * time.Second) {
		t.Fatal("registry did not quiesce")
	}
	if !tested {
		t.Fatal("unindexed write skipped the touch test")
	}
	select {
	case e := <-s.Events():
		t.Fatalf("untouched subscription received %+v", e)
	default:
	}
	st := r.Stats()
	if st.Evaluations != 2 || st.TouchTests != 1 {
		t.Fatalf("stats = %+v, want 2 evaluations, 1 touch test", st)
	}
}

func TestNotifySkipsUntouchedSubscriptions(t *testing.T) {
	db := &fakeDB{}
	db.version.Store(1)
	r := NewRegistry(2)
	defer r.Close()

	near := r.Subscribe(db.eval([]int{1}, "near"), Delivery{}, nil)
	far := r.Subscribe(db.eval([]int{2}, "far"), Delivery{}, nil)
	collect(t, near, 1)
	collect(t, far, 1)

	db.version.Store(2)
	r.NotifyWrite(50, func(region any) bool { return region == "near" })
	if !r.WaitIdle(2 * time.Second) {
		t.Fatal("registry did not quiesce")
	}
	if ev := collect(t, near, 1)[0]; ev.Version != 2 {
		t.Fatalf("near got %+v, want version 2", ev)
	}
	select {
	case e := <-far.Events():
		t.Fatalf("far subscription received %+v", e)
	default:
	}
	if st := r.Stats(); st.Affected != 1 {
		t.Fatalf("Affected = %d, want 1", st.Affected)
	}
}

func TestOnChangeOnlySuppressesEqualAnswers(t *testing.T) {
	db := &fakeDB{}
	db.version.Store(1)
	db.answer.Store(42)
	r := NewRegistry(1)
	defer r.Close()

	s := r.Subscribe(db.eval([]int{1}, "r"), Delivery{OnChangeOnly: true}, nil)
	collect(t, s, 1)

	// Same answer at a newer version: suppressed.
	db.version.Store(2)
	r.NotifyWrite(1, nil)
	r.WaitIdle(2 * time.Second)
	select {
	case e := <-s.Events():
		t.Fatalf("unchanged answer emitted %+v", e)
	default:
	}
	// Changed answer: emitted.
	db.version.Store(3)
	db.answer.Store(43)
	r.NotifyWrite(1, nil)
	r.WaitIdle(2 * time.Second)
	if ev := collect(t, s, 1)[0]; ev.Version != 3 || ev.Payload != int64(43) {
		t.Fatalf("changed answer event = %+v", ev)
	}
	if st := r.Stats(); st.Skipped != 1 {
		t.Fatalf("Skipped = %d, want 1", st.Skipped)
	}
}

func TestMinIntervalCoalescesToLatest(t *testing.T) {
	db := &fakeDB{}
	db.version.Store(1)
	db.answer.Store(1)
	r := NewRegistry(1)
	defer r.Close()

	s := r.Subscribe(db.eval([]int{1}, "r"), Delivery{MinInterval: 50 * time.Millisecond}, nil)
	collect(t, s, 1) // opens the interval window

	// Two rapid updates inside the interval: only the latest survives.
	for v := int64(2); v <= 3; v++ {
		db.version.Store(v)
		db.answer.Store(v * 10)
		r.NotifyWrite(1, nil)
		r.WaitIdle(2 * time.Second)
	}
	ev := collect(t, s, 1)[0]
	if ev.Version != 3 || ev.Payload != int64(30) {
		t.Fatalf("coalesced event = %+v, want the latest (version 3)", ev)
	}
	select {
	case e := <-s.Events():
		t.Fatalf("intermediate update leaked: %+v", e)
	case <-time.After(80 * time.Millisecond):
	}
}

func TestQueueOverflowDropsOldestNotWriter(t *testing.T) {
	db := &fakeDB{}
	db.version.Store(1)
	r := NewRegistry(1)
	defer r.Close()

	s := r.Subscribe(db.eval([]int{1}, "r"), Delivery{QueueCap: 2}, nil)
	// Nobody reads: pile up 5 answers into a 2-slot queue.
	for v := int64(2); v <= 6; v++ {
		db.version.Store(v)
		r.NotifyWrite(1, nil)
		if !r.WaitIdle(2 * time.Second) {
			t.Fatal("registry did not quiesce — the writer path blocked on a full queue")
		}
	}
	evs := collect(t, s, 2)
	last := evs[1]
	if last.Version != 6 {
		t.Fatalf("newest queued event has version %d, want 6", last.Version)
	}
	if last.Dropped != 4 {
		t.Fatalf("Dropped = %d, want 4 (6 emitted into 2 slots)", last.Dropped)
	}
	if st := r.Stats(); st.Dropped != 4 {
		t.Fatalf("registry Dropped = %d, want 4", st.Dropped)
	}
}

func TestUnsubscribeAndCloseSendBye(t *testing.T) {
	db := &fakeDB{}
	db.version.Store(1)
	r := NewRegistry(1)

	a := r.Subscribe(db.eval([]int{1}, "r"), Delivery{}, nil)
	b := r.Subscribe(db.eval([]int{2}, "r"), Delivery{}, nil)
	collect(t, a, 1)
	collect(t, b, 1)

	if !r.Unsubscribe(a.ID()) {
		t.Fatal("Unsubscribe(a) = false")
	}
	if r.Unsubscribe(a.ID()) {
		t.Fatal("second Unsubscribe(a) = true")
	}
	ev := collect(t, a, 1)[0]
	if !ev.Bye || ev.Seq != 2 {
		t.Fatalf("after Unsubscribe got %+v, want bye seq 2", ev)
	}
	if _, ok := <-a.Events(); ok {
		t.Fatal("channel still open after bye")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}

	r.Close()
	ev = collect(t, b, 1)[0]
	if !ev.Bye {
		t.Fatalf("after Close got %+v, want bye", ev)
	}
	if _, ok := <-b.Events(); ok {
		t.Fatal("channel still open after registry close")
	}
	// Idempotent.
	r.Close()
}

func TestVersionsMonotoneUnderConcurrentWrites(t *testing.T) {
	db := &fakeDB{}
	db.version.Store(1)
	r := NewRegistry(4)
	defer r.Close()

	const subs = 8
	var wg sync.WaitGroup
	for i := 0; i < subs; i++ {
		s := r.Subscribe(db.eval([]int{i}, "r"), Delivery{QueueCap: 4}, nil)
		wg.Add(1)
		go func(s *Subscription) {
			defer wg.Done()
			lastSeq, lastVer := int64(0), int64(0)
			for e := range s.Events() {
				if e.Seq <= lastSeq {
					t.Errorf("sub %d: seq %d after %d", s.ID(), e.Seq, lastSeq)
				}
				lastSeq = e.Seq
				if e.Bye {
					continue
				}
				if e.Version <= lastVer {
					t.Errorf("sub %d: version %d after %d", s.ID(), e.Version, lastVer)
				}
				lastVer = e.Version
			}
		}(s)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				db.version.Add(1)
				r.NotifyWrite(i%subs, func(any) bool { return i%3 == 0 })
			}
		}()
	}
	// Writers finish, evaluations drain, subscriptions close, readers
	// see bye + closed channels.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	time.Sleep(50 * time.Millisecond)
	r.WaitIdle(5 * time.Second)
	r.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("consumers did not drain after Close")
	}
}

// groupEval returns a GroupEvalFunc that answers every member with the
// database's current version and threads an int counter through the
// key's carry-over state (nil -> 1 -> 2 -> ...).
func (db *fakeDB) groupEval(record func(n int, state any), gate func()) GroupEvalFunc {
	return func(key string, metas []any, state any) ([]Eval, any) {
		if record != nil {
			record(len(metas), state)
		}
		if gate != nil {
			gate()
		}
		v := db.version.Load()
		evals := make([]Eval, len(metas))
		for i := range evals {
			evals[i] = Eval{Version: v, Influencers: []int{1}, Region: "r", Payload: v, Fingerprint: uint64(v)}
		}
		next := 1
		if n, ok := state.(int); ok {
			next = n + 1
		}
		return evals, next
	}
}

// TestUnsubscribeRacingSweep unsubscribes a group member between a
// write marking it dirty and the delayed sweep draining it: the sweep
// must evaluate only the surviving member, and the removed one sees
// exactly its terminal bye.
func TestUnsubscribeRacingSweep(t *testing.T) {
	db := &fakeDB{}
	db.version.Store(1)
	r := New(Options{Workers: 1, SweepInterval: 100 * time.Millisecond, GroupEval: db.groupEval(nil, nil)})
	defer r.Close()

	a := r.SubscribeKeyed("k", nil, Delivery{}, "a")
	b := r.SubscribeKeyed("k", nil, Delivery{}, "b")
	collect(t, a, 1)
	collect(t, b, 1)

	db.version.Store(2)
	r.NotifyWrite(1, nil) // both dirty, sweep armed 100ms out
	if !r.Unsubscribe(b.ID()) {
		t.Fatal("Unsubscribe(b) = false")
	}
	if ev := collect(t, b, 1)[0]; !ev.Bye {
		t.Fatalf("unsubscribed member got %+v, want bye", ev)
	}
	if _, ok := <-b.Events(); ok {
		t.Fatal("channel open after bye")
	}
	if !r.WaitIdle(2 * time.Second) {
		t.Fatal("registry did not quiesce")
	}
	if ev := collect(t, a, 1)[0]; ev.Version != 2 {
		t.Fatalf("surviving member got %+v, want version 2", ev)
	}
	st := r.Stats()
	if st.Evaluations != 3 {
		t.Fatalf("Evaluations = %d, want 3 (two initial + one single-member sweep pass)", st.Evaluations)
	}
	if st.Sweeps != 1 || st.Groups != 0 {
		t.Fatalf("stats = %+v, want 1 sweep, 0 grouped passes (the group shrank to one)", st)
	}
}

// TestQueueOverflowUnderGroupedBurst is the drop-oldest contract on the
// grouped path: a burst of writes against a two-member group with tiny
// queues evicts the oldest answers per member, never blocks the writer,
// and each grouped pass still counts as one evaluation.
func TestQueueOverflowUnderGroupedBurst(t *testing.T) {
	db := &fakeDB{}
	db.version.Store(1)
	r := New(Options{Workers: 1, GroupEval: db.groupEval(nil, nil)})
	defer r.Close()

	a := r.SubscribeKeyed("k", nil, Delivery{QueueCap: 2}, "a")
	b := r.SubscribeKeyed("k", nil, Delivery{QueueCap: 2}, "b")
	collect(t, a, 1)
	collect(t, b, 1)

	// Nobody reads: 5 grouped re-evaluations into 2-slot queues.
	for v := int64(2); v <= 6; v++ {
		db.version.Store(v)
		r.NotifyWrite(1, nil)
		if !r.WaitIdle(2 * time.Second) {
			t.Fatal("registry did not quiesce — a full member queue blocked the sweep")
		}
	}
	for _, s := range []*Subscription{a, b} {
		evs := collect(t, s, 2)
		if last := evs[1]; last.Version != 6 || last.Dropped != 3 {
			t.Fatalf("sub %d newest event = %+v, want version 6 with 3 dropped", s.ID(), last)
		}
	}
	st := r.Stats()
	if st.Evaluations != 7 || st.Groups != 5 {
		t.Fatalf("stats = %+v, want 7 evaluation passes of which 5 grouped", st)
	}
	if st.Dropped != 6 {
		t.Fatalf("Dropped = %d, want 6 (3 per member)", st.Dropped)
	}
}

// TestGroupStateChurnAndCleanup pins the carry-over state lifecycle
// under membership churn: state threads pass-to-pass while the key is
// live (including a member subscribing while a grouped pass is in
// flight, and one unsubscribing mid-pass), and the last unsubscribe
// deletes it so a fresh same-key subscription starts from nil.
func TestGroupStateChurnAndCleanup(t *testing.T) {
	db := &fakeDB{}
	db.version.Store(1)
	type call struct {
		n     int
		state any
	}
	var mu sync.Mutex
	var calls []call
	var blockOn atomic.Bool
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	ge := db.groupEval(
		func(n int, state any) {
			mu.Lock()
			calls = append(calls, call{n, state})
			mu.Unlock()
		},
		func() {
			if blockOn.CompareAndSwap(true, false) {
				entered <- struct{}{}
				<-release
			}
		})
	r := New(Options{Workers: 1, GroupEval: ge})
	defer r.Close()

	a := r.SubscribeKeyed("k", nil, Delivery{QueueCap: 8}, "a")
	b := r.SubscribeKeyed("k", nil, Delivery{QueueCap: 8}, "b")
	collect(t, a, 1)
	collect(t, b, 1)
	mu.Lock()
	if len(calls) != 2 || calls[0].state != nil || calls[1].state != 1 {
		t.Fatalf("initial calls = %+v, want state nil then 1", calls)
	}
	mu.Unlock()

	// A grouped pass blocks in flight; meanwhile one member leaves and
	// a new one joins the key.
	blockOn.Store(true)
	db.version.Store(2)
	r.NotifyWrite(1, nil)
	<-entered
	if !r.Unsubscribe(b.ID()) {
		t.Fatal("Unsubscribe(b) = false")
	}
	c := r.SubscribeKeyed("k", nil, Delivery{QueueCap: 8}, "c")
	close(release)
	if !r.WaitIdle(2 * time.Second) {
		t.Fatal("registry did not quiesce")
	}
	if ev := collect(t, b, 1)[0]; !ev.Bye {
		t.Fatalf("mid-pass unsubscribed member got %+v, want bye only", ev)
	}
	if ev := collect(t, a, 1)[0]; ev.Version != 2 {
		t.Fatalf("member a got %+v, want the in-flight pass at version 2", ev)
	}
	if ev := collect(t, c, 1)[0]; ev.Version != 2 {
		t.Fatalf("joining member got %+v, want its initial answer at version 2", ev)
	}
	// c subscribed while the pass held the state; its initial call must
	// still see a live int (2 from b's initial pass), not nil.
	mu.Lock()
	if n := len(calls); calls[n-1].state == nil && calls[n-2].state == nil {
		t.Fatalf("mid-churn calls lost the carried state: %+v", calls)
	}
	mu.Unlock()

	// Last member out deletes the key's state: a fresh subscription
	// starts from nil again.
	r.Unsubscribe(a.ID())
	r.Unsubscribe(c.ID())
	d := r.SubscribeKeyed("k", nil, Delivery{QueueCap: 8}, "d")
	collect(t, d, 1)
	mu.Lock()
	if last := calls[len(calls)-1]; last.state != nil {
		t.Fatalf("post-cleanup call state = %v, want nil", last.state)
	}
	mu.Unlock()
	_ = d
}

// TestRegistryAccessorsAndSweepToggles covers the read surface (Get,
// List, Meta) plus the runtime toggles: a pending invalidation drains
// immediately when the sweep interval drops to zero, and with grouping
// disabled a keyed pair evaluates as two single-member passes (state
// still carried).
func TestRegistryAccessorsAndSweepToggles(t *testing.T) {
	db := &fakeDB{}
	db.version.Store(1)
	r := New(Options{Workers: 1, SweepInterval: time.Hour, GroupEval: db.groupEval(nil, nil)})
	defer r.Close()

	a := r.SubscribeKeyed("k", nil, Delivery{QueueCap: 8}, "meta-a")
	b := r.SubscribeKeyed("k", nil, Delivery{QueueCap: 8}, "meta-b")
	collect(t, a, 1)
	collect(t, b, 1)
	if a.Meta() != "meta-a" {
		t.Fatalf("Meta = %v", a.Meta())
	}
	if got, ok := r.Get(a.ID()); !ok || got != a {
		t.Fatalf("Get(%d) = %v, %v", a.ID(), got, ok)
	}
	if _, ok := r.Get(9999); ok {
		t.Fatal("Get(9999) found a subscription")
	}
	if infos := r.List(); len(infos) != 2 || infos[0].ID != a.ID() || infos[1].ID != b.ID() {
		t.Fatalf("List = %+v, want [a b] ascending", infos)
	}

	// An hour-long sweep interval parks the write in the pending set;
	// dropping the interval to zero drains it immediately.
	db.version.Store(2)
	r.NotifyWrite(1, nil)
	select {
	case e := <-a.Events():
		t.Fatalf("write swept before the interval elapsed: %+v", e)
	case <-time.After(20 * time.Millisecond):
	}
	r.SetSweepInterval(0)
	if !r.WaitIdle(2 * time.Second) {
		t.Fatal("registry did not quiesce after the immediate drain")
	}
	if ev := collect(t, a, 1)[0]; ev.Version != 2 {
		t.Fatalf("drained event = %+v, want version 2", ev)
	}
	collect(t, b, 1)
	grouped := r.Stats()
	if grouped.Groups == 0 || grouped.Sweeps == 0 {
		t.Fatalf("stats = %+v, want a grouped pass from the drained sweep", grouped)
	}

	// Grouping off: the same write shape costs one pass per member.
	r.SetGrouping(false)
	db.version.Store(3)
	r.NotifyWrite(1, nil)
	if !r.WaitIdle(2 * time.Second) {
		t.Fatal("registry did not quiesce with grouping disabled")
	}
	st := r.Stats()
	if st.Evaluations-grouped.Evaluations != 2 {
		t.Fatalf("ungrouped write cost %d passes, want 2", st.Evaluations-grouped.Evaluations)
	}
	if st.Groups != grouped.Groups {
		t.Fatalf("Groups advanced to %d with grouping disabled", st.Groups)
	}
	collect(t, a, 1)
	collect(t, b, 1)
}
