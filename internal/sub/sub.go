// Package sub keeps standing queries alive over a live PNN database:
// a registry of subscriptions, each a re-runnable evaluation closure
// plus delivery state, re-evaluated incrementally as writes arrive.
//
// The core idea is inverting the UST-tree filter step. Every
// evaluation reports its influence region — the influencer object IDs
// it sampled and the per-timestep pruning thresholds (see
// shard.Influence). The registry maintains the inverse map
// object → subscriptions, so a write to object o re-runs only
//
//   - subscriptions whose last influencer set contains o (index hit), and
//   - subscriptions whose influence region o's NEW state touches
//     (a rectangle sweep against the stored thresholds).
//
// Everything else provably keeps its answer: an object strictly
// outside the thresholds at every window time cannot be among the k
// nearest at any time, and because per-row sampling is keyed by
// (seed, object ID), the unchanged influencer rows re-draw identical
// worlds. Per-update work is proportional to affected subscriptions,
// not registered subscriptions.
//
// On top of the selective index the registry amortizes two further
// costs. Subscriptions registered with a compatibility key
// (SubscribeKeyed) that share the key are re-evaluated as ONE group by
// the registry's GroupEval hook — cost per sweep scales with distinct
// keys touched, not subscriptions touched — and each key carries an
// opaque state value handed from one group evaluation to the next (the
// facade stores the group's adaptive early-stop point there). Writes
// themselves are coalesced: NotifyWrite only classifies and marks, and
// a sweep scheduler drains the accumulated dirty set once per
// SweepInterval, so a burst of writes pays for one grouped sweep.
//
// The package is payload-agnostic — evaluation closures, result
// payloads, regions, keys and group state are opaque — so it sits
// below the pnn facade without an import cycle.
package sub

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Delivery configures how a subscription's events reach its consumer.
type Delivery struct {
	// Transport is bookkeeping for the API layer ("sse" or "poll"); the
	// registry treats both identically.
	Transport string
	// MinInterval rate-limits emission: after an event is emitted,
	// further answers are coalesced (latest wins) until the interval
	// elapses. Zero emits every answer.
	MinInterval time.Duration
	// OnChangeOnly suppresses events whose answer fingerprint equals the
	// previously accepted one. The initial answer always emits.
	OnChangeOnly bool
	// QueueCap bounds the event queue (default 16, minimum 1). When the
	// consumer lags, the oldest queued event is dropped — never the
	// writer blocked — and the drop is surfaced on the next event's
	// Dropped counter.
	QueueCap int
}

const defaultQueueCap = 16

// Event is one delivered subscription result.
type Event struct {
	// SubID identifies the subscription.
	SubID int64
	// Seq increases by one per emitted event of the subscription,
	// starting at 1 for the initial answer.
	Seq int64
	// Version is the snapshot version the payload was evaluated at.
	// Versions are strictly monotone per subscription.
	Version int64
	// Dropped is the cumulative number of events lost to queue overflow
	// so far, so consumers can detect gaps without blocking writers.
	Dropped int64
	// Bye marks the terminal event: the subscription is closed and the
	// channel will be closed right after. Payload is nil.
	Bye bool
	// Payload is the evaluation result, opaque to this package.
	Payload any
}

// Eval is the result of one evaluation of a standing query.
type Eval struct {
	// Version is the snapshot version evaluated.
	Version int64
	// Influencers are the object IDs whose possible worlds the answer
	// sampled; the registry inverts them into the object→subs index.
	Influencers []int
	// Region describes the query's influence region for the write-path
	// touch test, opaque to this package. A nil Region keeps the
	// previous one (and a subscription that never reported one is
	// conservatively affected by every write).
	Region any
	// Payload is the answer to deliver.
	Payload any
	// Fingerprint condenses the answer for OnChangeOnly comparison.
	Fingerprint uint64
	// BudgetReused marks an evaluation that started from a previously
	// proven adaptive budget (group-state reuse) instead of escalating
	// from the first round; counted in Stats.ReusedBudget.
	BudgetReused bool
}

// EvalFunc re-evaluates a standing query against the current snapshot.
// It must be safe for concurrent use with other subscriptions' funcs.
type EvalFunc func() Eval

// GroupEvalFunc re-evaluates every member of one compatibility group in
// a single pass. metas holds the members' Subscribe metas in ascending
// subscription-ID order; the returned evals must align with it. state
// is the key's opaque carry-over from the previous group evaluation
// (nil on the first); the returned newState replaces it — return state
// unchanged to keep it, nil to leave it as-is. It must be safe for
// concurrent use across distinct keys.
type GroupEvalFunc func(key string, metas []any, state any) (evals []Eval, newState any)

// TouchFunc tests whether a just-written object may intersect a
// subscription's influence region. It is resolved once per write (not
// per subscription) by the registry's caller.
type TouchFunc func(region any) bool

// Stats are cumulative registry counters. Evaluations vs Affected is
// the fanout scoreboard: with N standing subscriptions and W writes,
// full per-sub re-evaluation would cost N·W passes; selective
// invalidation schedules only Affected, and grouping folds those into
// Evaluations passes (a group of n compatible subscriptions counts 1).
type Stats struct {
	Active       int   // currently registered subscriptions
	Notifies     int64 // writes seen
	TouchTests   int64 // region tests run (index misses only)
	Affected     int64 // subscription re-evaluations scheduled by writes
	Evaluations  int64 // evaluation passes actually run (incl. initial; a grouped pass counts once)
	Sweeps       int64 // invalidation sweeps drained (each covers >= 1 write)
	Groups       int64 // grouped passes that covered > 1 subscription
	ReusedBudget int64 // passes that started from a reused adaptive budget
	Emitted      int64 // events handed to consumers (excl. bye)
	Dropped      int64 // events lost to queue overflow
	Skipped      int64 // answers suppressed by OnChangeOnly
}

// Info is a point-in-time description of one subscription.
type Info struct {
	ID          int64
	Delivery    Delivery
	Meta        any
	Seq         int64
	LastVersion int64
	Dropped     int64
	Influencers int
}

// Subscription is one standing query. Consumers read Events; the
// registry owns everything else.
type Subscription struct {
	id   int64
	d    Delivery
	meta any
	eval EvalFunc
	reg  *Registry

	events chan Event

	// Emission state, guarded by emu (never held while evaluating).
	emu      sync.Mutex
	seq      int64
	lastVer  int64
	lastFP   uint64
	emitted  bool
	dropped  int64
	closed   bool
	lastEmit time.Time
	pending  *Event
	timer    *time.Timer

	// Scheduling state, guarded by the registry mutex.
	key         string // compatibility-group key; "" = never grouped
	region      any
	influencers map[int]struct{}
	dirty       bool
	queued      bool
	running     bool
	removed     bool
}

// ID returns the registry-assigned subscription ID.
func (s *Subscription) ID() int64 { return s.id }

// Events returns the subscription's event stream. The channel is
// closed after the terminal Bye event.
func (s *Subscription) Events() <-chan Event { return s.events }

// Meta returns the opaque value attached at Subscribe time.
func (s *Subscription) Meta() any { return s.meta }

// Info returns a point-in-time description of the subscription.
func (s *Subscription) Info() Info {
	s.reg.mu.Lock()
	nInf := len(s.influencers)
	s.reg.mu.Unlock()
	s.emu.Lock()
	defer s.emu.Unlock()
	return Info{
		ID:          s.id,
		Delivery:    s.d,
		Meta:        s.meta,
		Seq:         s.seq,
		LastVersion: s.lastVer,
		Dropped:     s.dropped,
		Influencers: nInf,
	}
}

// Options tunes a Registry.
type Options struct {
	// Workers sizes the evaluation pool (minimum 1).
	Workers int
	// GroupEval, when set, evaluates all members of a compatibility
	// group (SubscribeKeyed) in one pass. When nil, keyed subscriptions
	// fall back to their per-sub EvalFunc.
	GroupEval GroupEvalFunc
	// SweepInterval bounds how long a write's invalidations may sit in
	// the pending set before a sweep drains them, grouped; further
	// writes inside the window join the same sweep. Zero (or negative)
	// sweeps immediately on every write — the pre-sweep behavior.
	SweepInterval time.Duration
}

// unit is one queue entry: the members of a compatibility group drained
// together by a sweep, evaluated in a single pass. Ungrouped
// subscriptions ride in single-member units.
type unit struct {
	subs []*Subscription
}

// Registry owns every standing subscription: the inverted
// object→subscriptions index consulted on each write, the pending
// dirty set its sweep scheduler drains into a FIFO of grouped
// evaluation units, and the worker pool that re-evaluates them.
// Writers only classify and mark — evaluation is asynchronous, so the
// ingest path never waits for sampling.
type Registry struct {
	workers   int
	groupEval GroupEvalFunc

	mu            sync.Mutex
	cond          *sync.Cond // queue non-empty or closing
	subs          map[int64]*Subscription
	index         map[int]map[int64]struct{} // object ID -> subscription IDs
	queue         []*unit
	pending       map[int64]*Subscription // dirty, awaiting the next sweep
	sweepTimer    *time.Timer             // non-nil while a sweep is scheduled
	sweepInterval time.Duration
	grouping      bool
	groupStates   map[string]any // key -> opaque GroupEval carry-over
	keyCount      map[string]int // live subscriptions per key
	nextID        int64
	closed        bool
	wg            sync.WaitGroup

	notifies    atomic.Int64
	touchTests  atomic.Int64
	affected    atomic.Int64
	evaluations atomic.Int64
	sweeps      atomic.Int64
	groups      atomic.Int64
	reused      atomic.Int64
	emitted     atomic.Int64
	droppedN    atomic.Int64
	skipped     atomic.Int64
}

// NewRegistry returns an empty registry whose evaluations run on
// `workers` goroutines (minimum 1), with grouping disabled and
// immediate (per-write) sweeps — the historical behavior.
func NewRegistry(workers int) *Registry {
	return New(Options{Workers: workers})
}

// New returns an empty registry configured by opts.
func New(opts Options) *Registry {
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	r := &Registry{
		workers:       workers,
		groupEval:     opts.GroupEval,
		sweepInterval: opts.SweepInterval,
		grouping:      true,
		subs:          make(map[int64]*Subscription),
		index:         make(map[int]map[int64]struct{}),
		pending:       make(map[int64]*Subscription),
		groupStates:   make(map[string]any),
		keyCount:      make(map[string]int),
	}
	r.cond = sync.NewCond(&r.mu)
	for i := 0; i < workers; i++ {
		r.wg.Add(1)
		go r.worker()
	}
	return r
}

// SetSweepInterval changes the sweep scheduler's bounded delay. A
// non-positive d drains any pending invalidations immediately and makes
// future writes sweep per write.
func (r *Registry) SetSweepInterval(d time.Duration) {
	r.mu.Lock()
	r.sweepInterval = d
	if d <= 0 {
		if r.sweepTimer != nil {
			r.sweepTimer.Stop()
			r.sweepTimer = nil
		}
		r.drainPendingLocked()
	}
	r.mu.Unlock()
}

// SetGrouping toggles grouped evaluation of keyed subscriptions.
// Disabled, every sweep enqueues single-member units (the per-sub
// baseline the fanout benchmark compares against); GroupEval still runs
// them, so key state carries over either way.
func (r *Registry) SetGrouping(enabled bool) {
	r.mu.Lock()
	r.grouping = enabled
	r.mu.Unlock()
}

// Subscribe registers a standing query and synchronously runs its
// initial evaluation, so the first event (seq 1) is queued before
// Subscribe returns and no write published afterwards can be missed:
// the subscription enters the registry before it evaluates, and a
// concurrent NotifyWrite either marks it dirty (re-evaluated right
// after) or is already visible in the snapshot the evaluation reads.
// meta is returned verbatim by Info for API-layer listings.
func (r *Registry) Subscribe(eval EvalFunc, d Delivery, meta any) *Subscription {
	return r.SubscribeKeyed("", eval, d, meta)
}

// SubscribeKeyed is Subscribe with a compatibility-group key: when the
// registry has a GroupEval hook, all dirty subscriptions sharing a
// non-empty key are re-evaluated together as one pass per sweep, and
// the key's opaque state value carries from each pass to the next. The
// key must imply compatibility — members receive answers from one
// shared evaluation, so two requests may share a key only if a grouped
// pass answers each byte-identically to its own single pass. An empty
// key never groups.
func (r *Registry) SubscribeKeyed(key string, eval EvalFunc, d Delivery, meta any) *Subscription {
	if d.QueueCap <= 0 {
		d.QueueCap = defaultQueueCap
	}
	if d.MinInterval < 0 {
		d.MinInterval = 0
	}
	s := &Subscription{
		d:    d,
		meta: meta,
		eval: eval,
		key:  key,
		// The terminal bye always fits: eviction keeps one slot usable.
		events: make(chan Event, d.QueueCap),
	}
	s.reg = r
	r.mu.Lock()
	r.nextID++
	s.id = r.nextID
	if r.closed {
		r.mu.Unlock()
		s.close()
		return s
	}
	r.subs[s.id] = s
	if key != "" {
		r.keyCount[key]++
	}
	// The initial evaluation holds the single-flight slot like any
	// worker run: a concurrent write marks the subscription dirty and
	// finish() re-queues it, instead of racing a second evaluation.
	s.running = true
	r.mu.Unlock()
	r.evalUnit([]*Subscription{s})
	r.finish(s)
	return s
}

// Unsubscribe removes a subscription: its consumer receives a terminal
// Bye event and the channel closes. It reports whether the ID was
// registered.
func (r *Registry) Unsubscribe(id int64) bool {
	r.mu.Lock()
	s := r.subs[id]
	if s != nil {
		r.drop(s)
	}
	r.mu.Unlock()
	if s == nil {
		return false
	}
	s.close()
	return true
}

// drop unlinks s from the maps; callers hold r.mu. The last member of
// a compatibility group takes the key's carried state with it — a
// later subscription with the same key starts fresh.
func (r *Registry) drop(s *Subscription) {
	delete(r.subs, s.id)
	delete(r.pending, s.id)
	for oid := range s.influencers {
		if set := r.index[oid]; set != nil {
			delete(set, s.id)
			if len(set) == 0 {
				delete(r.index, oid)
			}
		}
	}
	s.influencers = nil
	s.removed = true
	if s.key != "" {
		if r.keyCount[s.key]--; r.keyCount[s.key] <= 0 {
			delete(r.keyCount, s.key)
			delete(r.groupStates, s.key)
		}
	}
}

// Get returns the subscription with the given ID, if registered.
func (r *Registry) Get(id int64) (*Subscription, bool) {
	r.mu.Lock()
	s, ok := r.subs[id]
	r.mu.Unlock()
	return s, ok
}

// List describes every registered subscription, ascending by ID.
func (r *Registry) List() []Info {
	r.mu.Lock()
	subs := make([]*Subscription, 0, len(r.subs))
	for _, s := range r.subs {
		subs = append(subs, s)
	}
	r.mu.Unlock()
	for i := 1; i < len(subs); i++ {
		for j := i; j > 0 && subs[j].id < subs[j-1].id; j-- {
			subs[j], subs[j-1] = subs[j-1], subs[j]
		}
	}
	out := make([]Info, len(subs))
	for i, s := range subs {
		out[i] = s.Info()
	}
	return out
}

// Len returns the number of registered subscriptions.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.subs)
}

// Stats returns cumulative counters.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	active := len(r.subs)
	r.mu.Unlock()
	return Stats{
		Active:       active,
		Notifies:     r.notifies.Load(),
		TouchTests:   r.touchTests.Load(),
		Affected:     r.affected.Load(),
		Evaluations:  r.evaluations.Load(),
		Sweeps:       r.sweeps.Load(),
		Groups:       r.groups.Load(),
		ReusedBudget: r.reused.Load(),
		Emitted:      r.emitted.Load(),
		Dropped:      r.droppedN.Load(),
		Skipped:      r.skipped.Load(),
	}
}

// NotifyWrite classifies a published write: subscriptions indexed on
// the object are affected outright; the rest run the touch test
// against their stored region. Affected subscriptions are marked dirty
// and enqueued for asynchronous re-evaluation — this call never
// samples and never blocks on consumers, keeping the ingest path fast.
// touch is resolved once per write by the caller (it captures the
// written object against the just-published snapshot).
func (r *Registry) NotifyWrite(objID int, touch TouchFunc) {
	r.notifies.Add(1)
	r.mu.Lock()
	if r.closed || len(r.subs) == 0 {
		r.mu.Unlock()
		return
	}
	hit := r.index[objID]
	var affected []*Subscription
	type probe struct {
		s      *Subscription
		region any
	}
	var probes []probe
	for id, s := range r.subs {
		if _, ok := hit[id]; ok {
			affected = append(affected, s)
			continue
		}
		if s.region == nil {
			// No influence region reported yet (initial evaluation still
			// in flight, or the query errored): conservatively affected.
			affected = append(affected, s)
			continue
		}
		probes = append(probes, probe{s, s.region})
	}
	r.mu.Unlock()

	// Touch tests run outside the lock: they sweep rectangles over the
	// query window and must not stall Subscribe/Unsubscribe. The region
	// value was captured under the lock; regions are immutable once
	// reported, so testing a stale one is only conservative.
	for _, p := range probes {
		r.touchTests.Add(1)
		if touch(p.region) {
			affected = append(affected, p.s)
		}
	}
	if len(affected) == 0 {
		return
	}

	r.mu.Lock()
	for _, s := range affected {
		if s.removed || s.dirty {
			continue
		}
		r.affected.Add(1)
		s.dirty = true
		if !s.queued && !s.running {
			r.pending[s.id] = s
		}
	}
	r.scheduleSweepLocked()
	r.mu.Unlock()
}

// scheduleSweepLocked arranges for the pending dirty set to be drained:
// immediately when no sweep interval is configured, else by a timer
// armed when the first invalidation lands — a bounded delay, never
// reset by further writes, so a steady write stream still sweeps every
// interval. Callers hold r.mu.
func (r *Registry) scheduleSweepLocked() {
	if r.closed || len(r.pending) == 0 {
		return
	}
	if r.sweepInterval <= 0 {
		r.drainPendingLocked()
		return
	}
	if r.sweepTimer == nil {
		r.sweepTimer = time.AfterFunc(r.sweepInterval, r.sweep)
	}
}

func (r *Registry) sweep() {
	r.mu.Lock()
	r.sweepTimer = nil
	r.drainPendingLocked()
	r.mu.Unlock()
}

// drainPendingLocked buckets the accumulated dirty subscriptions into
// compatibility groups and enqueues one evaluation unit per group (one
// per subscription with grouping off or for unkeyed subscriptions).
// Members are ordered by ascending ID so grouped evals see a
// deterministic meta order. Callers hold r.mu.
func (r *Registry) drainPendingLocked() {
	if r.closed || len(r.pending) == 0 {
		return
	}
	r.sweeps.Add(1)
	byKey := make(map[string][]*Subscription)
	var keys []string
	var singles []*Subscription
	for _, s := range r.pending {
		if s.removed || s.queued || s.running {
			continue
		}
		if r.grouping && s.key != "" && r.groupEval != nil {
			if _, seen := byKey[s.key]; !seen {
				keys = append(keys, s.key)
			}
			byKey[s.key] = append(byKey[s.key], s)
		} else {
			singles = append(singles, s)
		}
	}
	r.pending = make(map[int64]*Subscription)
	sortSubsByID(singles)
	for _, s := range singles {
		r.enqueueLocked([]*Subscription{s})
	}
	sort.Strings(keys)
	for _, key := range keys {
		members := byKey[key]
		sortSubsByID(members)
		r.enqueueLocked(members)
	}
}

// enqueueLocked appends one evaluation unit; callers hold r.mu.
func (r *Registry) enqueueLocked(subs []*Subscription) {
	for _, s := range subs {
		s.queued = true
	}
	r.queue = append(r.queue, &unit{subs: subs})
	r.cond.Signal()
}

// sortSubsByID orders members ascending by registration ID.
func sortSubsByID(subs []*Subscription) {
	sort.Slice(subs, func(a, b int) bool { return subs[a].id < subs[b].id })
}

// WaitIdle blocks until no evaluation is queued or running, or the
// timeout elapses; it reports whether quiescence was reached. Pending
// MinInterval coalescing timers do not count — only evaluation work.
func (r *Registry) WaitIdle(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		r.mu.Lock()
		idle := len(r.queue) == 0 && !r.anyBusy()
		r.mu.Unlock()
		if idle {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// anyBusy reports whether any subscription is mid-evaluation or dirty;
// callers hold r.mu.
func (r *Registry) anyBusy() bool {
	for _, s := range r.subs {
		if s.running || s.dirty || s.queued {
			return true
		}
	}
	return false
}

// Close shuts the registry down: workers stop, every subscription
// receives a terminal Bye event, and all event channels close. Safe to
// call more than once.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	if r.sweepTimer != nil {
		r.sweepTimer.Stop()
		r.sweepTimer = nil
	}
	subs := make([]*Subscription, 0, len(r.subs))
	for _, s := range r.subs {
		subs = append(subs, s)
	}
	for _, s := range subs {
		r.drop(s)
	}
	r.queue = nil
	r.pending = make(map[int64]*Subscription)
	r.cond.Broadcast()
	r.mu.Unlock()
	r.wg.Wait()
	for _, s := range subs {
		s.close()
	}
}

// worker drains the unit queue, one evaluation pass at a time. Members
// unsubscribed while queued (a sweep racing an Unsubscribe) are
// filtered here — their terminal bye already went out; evaluating them
// would deliver past it.
func (r *Registry) worker() {
	defer r.wg.Done()
	for {
		r.mu.Lock()
		for len(r.queue) == 0 && !r.closed {
			r.cond.Wait()
		}
		if r.closed {
			r.mu.Unlock()
			return
		}
		u := r.queue[0]
		r.queue = r.queue[1:]
		members := u.subs[:0]
		for _, s := range u.subs {
			s.queued = false
			if s.removed {
				continue
			}
			s.running = true
			s.dirty = false
			members = append(members, s)
		}
		r.mu.Unlock()
		if len(members) == 0 {
			continue
		}
		r.evalUnit(members)
		for _, s := range members {
			r.finish(s)
		}
	}
}

// finish clears s's running flag and marks it pending again when writes
// landed mid-evaluation, so the single-flight rule (at most one
// evaluation of a subscription at a time) never loses the freshest
// snapshot.
func (r *Registry) finish(s *Subscription) {
	r.mu.Lock()
	s.running = false
	if s.dirty && !s.removed && !r.closed && !s.queued {
		r.pending[s.id] = s
		r.scheduleSweepLocked()
	}
	r.mu.Unlock()
}

// evalUnit runs one evaluation pass over the unit's members (outside
// all locks): one grouped GroupEval call when the members share a key
// and the hook exists, else the members' own closures. Group-state
// handling is last-wins — concurrent passes over the same key (only
// possible around subscribe/unsubscribe churn) race benignly on the
// opaque value, never on registry structures.
func (r *Registry) evalUnit(members []*Subscription) {
	key := members[0].key
	if r.groupEval == nil || key == "" {
		for _, s := range members {
			r.evaluations.Add(1)
			r.applyEval(s, s.eval())
		}
		return
	}
	r.evaluations.Add(1)
	if len(members) > 1 {
		r.groups.Add(1)
	}
	metas := make([]any, len(members))
	for i, s := range members {
		metas[i] = s.meta
	}
	r.mu.Lock()
	state := r.groupStates[key]
	r.mu.Unlock()
	evals, newState := r.groupEval(key, metas, state)
	r.mu.Lock()
	if _, live := r.keyCount[key]; live && newState != nil {
		r.groupStates[key] = newState
	}
	r.mu.Unlock()
	budgetReused := false
	for i, s := range members {
		if i >= len(evals) {
			break
		}
		if evals[i].BudgetReused {
			budgetReused = true
		}
		r.applyEval(s, evals[i])
	}
	if budgetReused {
		r.reused.Add(1)
	}
}

// applyEval refreshes the inverted index from the reported influencers
// and hands the answer to delivery.
func (r *Registry) applyEval(s *Subscription, ev Eval) {
	r.mu.Lock()
	if !s.removed {
		next := make(map[int]struct{}, len(ev.Influencers))
		for _, oid := range ev.Influencers {
			next[oid] = struct{}{}
		}
		for oid := range s.influencers {
			if _, keep := next[oid]; keep {
				continue
			}
			if set := r.index[oid]; set != nil {
				delete(set, s.id)
				if len(set) == 0 {
					delete(r.index, oid)
				}
			}
		}
		for oid := range next {
			set := r.index[oid]
			if set == nil {
				set = make(map[int64]struct{})
				r.index[oid] = set
			}
			set[s.id] = struct{}{}
		}
		s.influencers = next
		if ev.Region != nil {
			s.region = ev.Region
		}
	}
	r.mu.Unlock()
	s.deliver(ev)
}

// deliver applies the delivery policy to a fresh answer: version
// de-duplication, OnChangeOnly suppression, MinInterval coalescing,
// then emission into the bounded queue.
func (s *Subscription) deliver(ev Eval) {
	s.emu.Lock()
	defer s.emu.Unlock()
	if s.closed {
		return
	}
	// Monotone versions per subscription: a re-evaluation of a version
	// already delivered (or superseded) is byte-identical by the
	// determinism contract and carries no information.
	if s.emitted && ev.Version <= s.lastVer {
		return
	}
	s.lastVer = ev.Version
	if s.d.OnChangeOnly && s.emitted && ev.Fingerprint == s.lastFP {
		s.reg.skipped.Add(1)
		return
	}
	s.lastFP = ev.Fingerprint
	e := Event{SubID: s.id, Version: ev.Version, Payload: ev.Payload}
	now := time.Now()
	if s.d.MinInterval > 0 && s.emitted && now.Sub(s.lastEmit) < s.d.MinInterval {
		// Coalesce: keep only the latest answer, emit when the interval
		// reopens.
		s.pending = &e
		if s.timer == nil {
			s.timer = time.AfterFunc(s.d.MinInterval-now.Sub(s.lastEmit), s.flushPending)
		}
		return
	}
	s.emit(e, now)
}

// flushPending emits the coalesced answer once the MinInterval window
// reopens.
func (s *Subscription) flushPending() {
	s.emu.Lock()
	defer s.emu.Unlock()
	s.timer = nil
	if s.closed || s.pending == nil {
		return
	}
	e := *s.pending
	s.pending = nil
	s.emit(e, time.Now())
}

// emit queues one event, evicting the oldest queued event when the
// consumer lags (the write path never blocks); callers hold s.emu.
func (s *Subscription) emit(e Event, now time.Time) {
	s.seq++
	e.Seq = s.seq
	for {
		e.Dropped = s.dropped
		select {
		case s.events <- e:
			if !e.Bye {
				s.emitted = true
				s.lastEmit = now
				s.reg.emitted.Add(1)
			}
			return
		default:
		}
		// Queue full: evict the oldest (producers are serialized by emu,
		// so the next round's send succeeds) and count the loss —
		// Seq/Dropped on later events expose the gap to the consumer.
		select {
		case old := <-s.events:
			if !old.Bye {
				s.dropped++
				s.reg.droppedN.Add(1)
			}
		default:
		}
	}
}

// close emits the terminal Bye and closes the channel. Any coalesced
// pending answer is flushed first so the consumer never loses the
// final state.
func (s *Subscription) close() {
	s.emu.Lock()
	defer s.emu.Unlock()
	if s.closed {
		return
	}
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	if s.pending != nil {
		e := *s.pending
		s.pending = nil
		s.emit(e, time.Now())
	}
	s.emit(Event{SubID: s.id, Version: s.lastVer, Bye: true}, time.Time{})
	s.closed = true
	close(s.events)
}
