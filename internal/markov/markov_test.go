package markov

import (
	"math"
	"testing"

	"pnn/internal/sparse"
)

func chain2(t *testing.T) *sparse.CSR {
	t.Helper()
	m, err := sparse.NewCSR(2, []sparse.Triplet{
		{Row: 0, Col: 0, Val: 0.5}, {Row: 0, Col: 1, Val: 0.5},
		{Row: 1, Col: 1, Val: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestHomogeneous(t *testing.T) {
	m := chain2(t)
	h, err := NewHomogeneous(m)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumStates() != 2 {
		t.Errorf("NumStates = %d", h.NumStates())
	}
	if h.At(0) != m || h.At(99) != m {
		t.Error("homogeneous chain should return same matrix at all times")
	}
}

func TestNewHomogeneousRejectsNonStochastic(t *testing.T) {
	bad, err := sparse.NewCSR(2, []sparse.Triplet{
		{Row: 0, Col: 0, Val: 0.7}, {Row: 1, Col: 1, Val: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewHomogeneous(bad); err == nil {
		t.Error("expected stochasticity error")
	}
}

func TestPiecewise(t *testing.T) {
	m1 := chain2(t)
	m2, err := sparse.NewCSR(2, []sparse.Triplet{
		{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 0, Val: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPiecewise([]int{0, 5}, []*sparse.CSR{m1, m2})
	if err != nil {
		t.Fatal(err)
	}
	if p.At(0) != m1 || p.At(4) != m1 {
		t.Error("epoch 0 should use m1")
	}
	if p.At(5) != m2 || p.At(100) != m2 {
		t.Error("epoch 1 should use m2")
	}
	if p.At(-3) != m1 {
		t.Error("times before first start should clamp to first epoch")
	}
}

func TestPiecewiseValidation(t *testing.T) {
	m := chain2(t)
	if _, err := NewPiecewise(nil, nil); err == nil {
		t.Error("expected error for empty chain")
	}
	if _, err := NewPiecewise([]int{0, 0}, []*sparse.CSR{m, m}); err == nil {
		t.Error("expected error for non-increasing starts")
	}
	m3, _ := sparse.NewCSR(3, []sparse.Triplet{
		{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: 1}, {Row: 2, Col: 2, Val: 1},
	})
	if _, err := NewPiecewise([]int{0, 1}, []*sparse.CSR{m, m3}); err == nil {
		t.Error("expected dimension mismatch error")
	}
}

func TestPropagate(t *testing.T) {
	h, err := NewHomogeneous(chain2(t))
	if err != nil {
		t.Fatal(err)
	}
	v := sparse.UnitVec(0)
	got := Propagate(h, v, 0, 2)
	// After 2 steps from state 0: P(0)=0.25, P(1)=0.75.
	want := sparse.Vec{0: 0.25, 1: 0.75}
	if !got.Equal(want, 1e-12) {
		t.Errorf("Propagate = %v, want %v", got, want)
	}
	// Zero steps returns a copy.
	same := Propagate(h, v, 3, 3)
	if !same.Equal(v, 0) {
		t.Error("zero-length propagation should be identity")
	}
	same[0] = 99
	if v[0] == 99 {
		t.Error("Propagate must not alias its input")
	}
	if math.Abs(got.Sum()-1) > 1e-12 {
		t.Errorf("mass not preserved: %v", got.Sum())
	}
}

func TestSupportStep(t *testing.T) {
	m := chain2(t)
	got := SupportStep(m, []int32{0})
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("SupportStep from {0} = %v", got)
	}
	got = SupportStep(m, []int32{1})
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("SupportStep from {1} = %v", got)
	}
}
