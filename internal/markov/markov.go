// Package markov models the a-priori stochastic process of the paper: a
// first-order, possibly time-inhomogeneous Markov chain over the discrete
// state space. The chain assigns each timestep t a row-stochastic
// transition matrix M(t) with M(t)[i][j] = P(o(t+1) = s_j | o(t) = s_i).
package markov

import (
	"errors"
	"fmt"
	"sort"

	"pnn/internal/sparse"
)

// Chain is a time-dependent first-order Markov chain. Implementations must
// be safe for concurrent readers.
type Chain interface {
	// NumStates returns |S|.
	NumStates() int
	// At returns the transition matrix in effect at time t (the matrix
	// that maps the distribution at t to the distribution at t+1). The
	// returned matrix is shared and must not be modified.
	At(t int) *sparse.CSR
}

// Homogeneous is a chain whose transition matrix does not change over time
// (the common case in the paper: one model per object, or one shared model
// trained from map data).
type Homogeneous struct {
	M *sparse.CSR
}

// NewHomogeneous validates m as a stochastic matrix and wraps it as a
// time-invariant chain.
func NewHomogeneous(m *sparse.CSR) (*Homogeneous, error) {
	if err := m.ValidateStochastic(1e-9); err != nil {
		return nil, fmt.Errorf("markov: %w", err)
	}
	return &Homogeneous{M: m}, nil
}

// NumStates implements Chain.
func (h *Homogeneous) NumStates() int { return h.M.N }

// At implements Chain; the same matrix applies at every time.
func (h *Homogeneous) At(int) *sparse.CSR { return h.M }

// Piecewise is a time-inhomogeneous chain assembled from epochs: matrix
// Mats[k] applies for all t in [Starts[k], Starts[k+1]). Before Starts[0]
// the first matrix applies. This supports the paper's NP-hardness gadget
// (Figure 2), where every timestep has its own transition matrix, as well
// as e.g. rush-hour/off-peak traffic models.
type Piecewise struct {
	starts []int
	mats   []*sparse.CSR
	n      int
}

// NewPiecewise builds a piecewise-constant chain. starts must be strictly
// increasing and the same length as mats; all matrices must be stochastic
// and share one dimension.
func NewPiecewise(starts []int, mats []*sparse.CSR) (*Piecewise, error) {
	if len(starts) == 0 || len(starts) != len(mats) {
		return nil, errors.New("markov: need equal, non-zero numbers of starts and matrices")
	}
	n := mats[0].N
	for k, m := range mats {
		if k > 0 && starts[k] <= starts[k-1] {
			return nil, errors.New("markov: starts must be strictly increasing")
		}
		if m.N != n {
			return nil, fmt.Errorf("markov: matrix %d has dimension %d, want %d", k, m.N, n)
		}
		if err := m.ValidateStochastic(1e-9); err != nil {
			return nil, fmt.Errorf("markov: matrix %d: %w", k, err)
		}
	}
	return &Piecewise{starts: starts, mats: mats, n: n}, nil
}

// NumStates implements Chain.
func (p *Piecewise) NumStates() int { return p.n }

// At implements Chain.
func (p *Piecewise) At(t int) *sparse.CSR {
	// Find the last epoch whose start is <= t.
	k := sort.SearchInts(p.starts, t+1) - 1
	if k < 0 {
		k = 0
	}
	return p.mats[k]
}

// Propagate advances distribution v from time t0 to time t1 (t1 >= t0)
// under chain c and returns the resulting distribution. v is not modified.
func Propagate(c Chain, v sparse.Vec, t0, t1 int) sparse.Vec {
	cur := v.Clone()
	for t := t0; t < t1; t++ {
		cur = c.At(t).MulVecLeft(cur)
	}
	return cur
}

// SupportStep returns the forward support image of states under M: every
// state reachable in exactly one transition from any state in from.
func SupportStep(m *sparse.CSR, from []int32) []int32 {
	seen := make(map[int32]struct{}, len(from)*2)
	for _, i := range from {
		cols, vals := m.Row(int(i))
		for k, c := range cols {
			if vals[k] > 0 {
				seen[c] = struct{}{}
			}
		}
	}
	out := make([]int32, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
