package ustree

import (
	"math/rand"
	"testing"

	"pnn/internal/geo"
	"pnn/internal/inference"
	"pnn/internal/markov"
	"pnn/internal/space"
	"pnn/internal/uncertain"
)

// lineWorld builds a 100-state line space with an equal-weight chain.
func lineWorld(t testing.TB) (*space.Space, markov.Chain) {
	t.Helper()
	sp, err := space.Line(100)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sp.BuildTransitionMatrix(func(i, j int) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	h, err := markov.NewHomogeneous(m)
	if err != nil {
		t.Fatal(err)
	}
	return sp, h
}

func mkObj(t testing.TB, id int, c markov.Chain, obs ...uncertain.Observation) *uncertain.Object {
	t.Helper()
	o, err := uncertain.NewObject(id, obs, c)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// TestPruningExample reproduces the structure of the paper's Figure 5:
// a close candidate A, an influence-only object B, a far pruned object C,
// an object D outside the query window, and a partially-alive object E.
func TestPruningExample(t *testing.T) {
	sp, c := lineWorld(t)
	objs := []*uncertain.Object{
		mkObj(t, 0, c, // A: pinned at state 50, right on the query
			uncertain.Observation{T: 0, State: 50},
			uncertain.Observation{T: 5, State: 50},
			uncertain.Observation{T: 10, State: 50}),
		mkObj(t, 1, c, // B: at 54; can reach 52 mid-gap, ties A's dmax
			uncertain.Observation{T: 0, State: 54},
			uncertain.Observation{T: 5, State: 54},
			uncertain.Observation{T: 10, State: 54}),
		mkObj(t, 2, c, // C: far away at 70
			uncertain.Observation{T: 0, State: 70},
			uncertain.Observation{T: 5, State: 70},
			uncertain.Observation{T: 10, State: 70}),
		mkObj(t, 3, c, // D: outside the query window entirely
			uncertain.Observation{T: 20, State: 50},
			uncertain.Observation{T: 25, State: 50}),
		mkObj(t, 4, c, // E: dies at t=5, inside the window
			uncertain.Observation{T: 0, State: 50},
			uncertain.Observation{T: 5, State: 50}),
	}
	tree, err := Build(sp, objs, nil)
	if err != nil {
		t.Fatal(err)
	}
	q := sp.Point(50)
	p := tree.Prune(func(int) geo.Point { return q }, 2, 8)

	wantCands := []int{0}
	if len(p.Candidates) != 1 || p.Candidates[0] != wantCands[0] {
		t.Errorf("Candidates = %v, want %v", p.Candidates, wantCands)
	}
	hasInfl := func(oi int) bool {
		for _, x := range p.Influencers {
			if x == oi {
				return true
			}
		}
		return false
	}
	if !hasInfl(0) {
		t.Error("A must be an influencer (candidates always are)")
	}
	if !hasInfl(1) {
		t.Error("B must be an influencer: it can tie A mid-gap")
	}
	if hasInfl(2) {
		t.Error("C is always dominated and must be pruned")
	}
	if hasInfl(3) {
		t.Error("D is not alive during the window")
	}
	if !hasInfl(4) {
		t.Error("E is alive for part of the window and sits on q")
	}
	for _, ci := range p.Candidates {
		if ci == 4 {
			t.Error("E cannot be a ∀-candidate: not alive throughout T")
		}
	}
}

func TestBuildContradictingObject(t *testing.T) {
	sp, c := lineWorld(t)
	bad := mkObj(t, 0, c,
		uncertain.Observation{T: 0, State: 0},
		uncertain.Observation{T: 2, State: 90})
	if _, err := Build(sp, []*uncertain.Object{bad}, nil); err == nil {
		t.Error("expected contradiction error from Build")
	}
}

func TestRectAt(t *testing.T) {
	sp, c := lineWorld(t)
	o := mkObj(t, 0, c,
		uncertain.Observation{T: 0, State: 50},
		uncertain.Observation{T: 4, State: 54})
	tree, err := Build(sp, []*uncertain.Object{o}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// At observations the rect is the exact point.
	r, ok := tree.RectAt(0, 0)
	if !ok || r != geo.RectFromPoint(sp.Point(50)) {
		t.Errorf("RectAt obs = %v, %v", r, ok)
	}
	// Mid-gap: at t=2 the object must be in [50..54] ∩ reachable; the
	// diamond at offset 2 is exactly {52} on the direct path... with slack
	// 0 (distance 4 in 4 steps) every step must move right: state 52.
	r, ok = tree.RectAt(0, 2)
	if !ok {
		t.Fatal("expected alive at t=2")
	}
	want := geo.RectFromPoint(sp.Point(52))
	if r != want {
		t.Errorf("RectAt(0,2) = %v, want %v", r, want)
	}
	if _, ok := tree.RectAt(0, 5); ok {
		t.Error("object not alive at t=5")
	}
	if _, ok := tree.RectAt(0, -1); ok {
		t.Error("object not alive at t=-1")
	}
}

func TestSingleObservationObject(t *testing.T) {
	sp, c := lineWorld(t)
	o := mkObj(t, 0, c, uncertain.Observation{T: 3, State: 42})
	tree, err := Build(sp, []*uncertain.Object{o}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumLeaves() != 1 {
		t.Fatalf("NumLeaves = %d", tree.NumLeaves())
	}
	r, ok := tree.RectAt(0, 3)
	if !ok || r != geo.RectFromPoint(sp.Point(42)) {
		t.Errorf("RectAt = %v, %v", r, ok)
	}
	q := sp.Point(42)
	p := tree.Prune(func(int) geo.Point { return q }, 3, 3)
	if len(p.Candidates) != 1 || len(p.Influencers) != 1 {
		t.Errorf("Prune = %+v, want the single object as candidate", p)
	}
	// Window not covering the instant.
	p = tree.Prune(func(int) geo.Point { return q }, 4, 6)
	if len(p.Candidates) != 0 || len(p.Influencers) != 0 {
		t.Errorf("Prune outside lifetime = %+v", p)
	}
}

func TestPruneEmptyWindow(t *testing.T) {
	sp, c := lineWorld(t)
	o := mkObj(t, 0, c, uncertain.Observation{T: 0, State: 1})
	tree, err := Build(sp, []*uncertain.Object{o}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := tree.Prune(func(int) geo.Point { return geo.Point{} }, 5, 4)
	if len(p.Candidates) != 0 || len(p.Influencers) != 0 {
		t.Errorf("inverted window should prune everything: %+v", p)
	}
}

// TestPruningSound verifies on random data that the filter step never
// prunes a true result: every object that is the ∀NN (∃NN) of q in some
// sampled world must appear in Candidates (Influencers).
func TestPruningSound(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	sp, err := space.Synthetic(1500, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	h, err := markov.NewHomogeneous(sp.TransitionMatrix(0.5))
	if err != nil {
		t.Fatal(err)
	}
	// 25 objects with 3 observations each along shortest paths.
	var objs []*uncertain.Object
	for id := 0; len(objs) < 25; id++ {
		path := sp.ShortestPath(rng.Intn(sp.Len()), rng.Intn(sp.Len()))
		if len(path) < 9 {
			continue
		}
		obs := []uncertain.Observation{
			{T: 0, State: path[0]},
			{T: 4, State: path[4]},
			{T: 8, State: path[8]},
		}
		o, err := uncertain.NewObject(id, obs, h)
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, o)
	}
	tree, err := Build(sp, objs, nil)
	if err != nil {
		t.Fatal(err)
	}

	const ts, te = 1, 7
	for trial := 0; trial < 5; trial++ {
		q := sp.Point(rng.Intn(sp.Len()))
		p := tree.Prune(func(int) geo.Point { return q }, ts, te)
		inCand := map[int]bool{}
		for _, c := range p.Candidates {
			inCand[c] = true
		}
		inInfl := map[int]bool{}
		for _, c := range p.Influencers {
			inInfl[c] = true
		}

		// Sample worlds and check the filter never excluded a winner.
		samplers := make([]*inference.Sampler, len(objs))
		for i, o := range objs {
			m, err := inference.Adapt(o)
			if err != nil {
				t.Fatal(err)
			}
			samplers[i] = inference.NewSampler(m)
		}
		for w := 0; w < 40; w++ {
			paths := make([]uncertain.Path, len(objs))
			for i := range objs {
				paths[i] = samplers[i].Sample(rng)
			}
			for oi := range objs {
				everNN, alwaysNN := false, true
				for tt := ts; tt <= te; tt++ {
					si, ok := paths[oi].At(tt)
					if !ok {
						alwaysNN = false
						continue
					}
					di := sp.DistTo(si, q)
					nn := true
					for oj := range objs {
						if oj == oi {
							continue
						}
						if sj, ok := paths[oj].At(tt); ok && sp.DistTo(sj, q) < di {
							nn = false
							break
						}
					}
					if nn {
						everNN = true
					} else {
						alwaysNN = false
					}
				}
				if alwaysNN && !inCand[oi] {
					t.Fatalf("trial %d world %d: object %d is ∀NN but was pruned from candidates", trial, w, oi)
				}
				if everNN && !inInfl[oi] {
					t.Fatalf("trial %d world %d: object %d is ∃NN but was pruned from influencers", trial, w, oi)
				}
			}
		}
	}
}

func TestHorizonAndAccessors(t *testing.T) {
	sp, c := lineWorld(t)
	objs := []*uncertain.Object{
		mkObj(t, 0, c,
			uncertain.Observation{T: 5, State: 10},
			uncertain.Observation{T: 9, State: 12}),
		mkObj(t, 1, c,
			uncertain.Observation{T: 2, State: 20},
			uncertain.Observation{T: 30, State: 34}),
	}
	tree, err := Build(sp, objs, nil)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := tree.Horizon()
	if lo != 2 || hi != 30 {
		t.Errorf("Horizon = %d,%d", lo, hi)
	}
	if tree.Len() != 2 {
		t.Errorf("Len = %d", tree.Len())
	}
	if tree.Space() != sp {
		t.Error("Space accessor")
	}
	if len(tree.Objects()) != 2 {
		t.Error("Objects accessor")
	}
}
