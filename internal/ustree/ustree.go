// Package ustree implements the UST-tree of Section 6 (Emrich et al.,
// CIKM 2012 — reference [25]): a spatio-temporal index over uncertain
// trajectories. For every observation gap of every object it materializes
// the reachability diamond, bounds it with per-timestep rectangles and one
// gap-level (x, y, t) MBR, and indexes the gap MBRs in an R*-tree.
//
// At query time the index produces, for a query position function q(t) and
// a time interval T:
//
//   - the candidate set C∀(q): objects that could be the nearest neighbor
//     of q at EVERY t ∈ T (no other object's dmax is below their dmin
//     anywhere), and
//   - the influence set I∀(q): objects that could be the nearest neighbor
//     at SOME t ∈ T. Influence objects cannot be ∀-results themselves but
//     can prune possible worlds of candidates, so refinement must retain
//     them (Section 6, Figure 5).
//
// For P∃NN queries the influence set doubles as the candidate set, since
// being NN at a single timestep already qualifies.
package ustree

import (
	"errors"
	"fmt"
	"math"

	"pnn/internal/geo"
	"pnn/internal/rtree"
	"pnn/internal/space"
	"pnn/internal/uncertain"
)

// gapApprox is the approximation of one observation gap: per-timestep
// bounding rectangles of the diamond plus their union.
type gapApprox struct {
	obj   int // index into Tree.objs
	gap   int // gap index within the object; -1 for single-observation objects
	t0    int // first timestep covered
	rects []geo.Rect
}

// Tree is a UST-tree over a database of uncertain objects.
//
// Concurrency contract: a Tree is safe for any number of concurrent
// readers once construction finishes, but Insert must never run
// concurrently with readers. Serving systems therefore Freeze a tree
// before publishing it and route every mutation through a private
// Clone (copy-on-write), swapping the frozen copy in atomically — the
// discipline implemented by internal/store.
type Tree struct {
	sp      *space.Space
	objs    []*uncertain.Object
	gaps    []gapApprox
	rt      *rtree.Tree
	horizon [2]int // min/max observed timestamps across the database
	frozen  bool   // published to concurrent readers; Insert refused
}

// BuildLenient is Build for noisy databases: objects whose observations
// contradict their chain are skipped instead of failing the whole build.
// It returns the tree over the consistent objects plus the positions (in
// the input slice) of the skipped ones.
func BuildLenient(sp *space.Space, objs []*uncertain.Object, reach *uncertain.Reach) (*Tree, []int, error) {
	if reach == nil {
		reach = uncertain.NewReach()
	}
	var kept []*uncertain.Object
	var skipped []int
	for i, o := range objs {
		if err := reach.CheckConsistent(o); err != nil {
			skipped = append(skipped, i)
			continue
		}
		kept = append(kept, o)
	}
	t, err := Build(sp, kept, reach)
	if err != nil {
		return nil, nil, err
	}
	return t, skipped, nil
}

// Build computes diamonds for every observation gap of every object and
// assembles the index. Objects whose observations contradict their chain
// produce an error, naming the object.
func Build(sp *space.Space, objs []*uncertain.Object, reach *uncertain.Reach) (*Tree, error) {
	if reach == nil {
		reach = uncertain.NewReach()
	}
	t := &Tree{
		sp:      sp,
		objs:    objs,
		rt:      rtree.New(0),
		horizon: [2]int{math.MaxInt32, math.MinInt32},
	}
	for oi, o := range objs {
		t.extendHorizon(o)
		gaps, err := computeGaps(sp, o, oi, reach)
		if err != nil {
			return nil, err
		}
		for _, g := range gaps {
			t.addGap(g)
		}
	}
	return t, nil
}

// computeGaps materializes the per-timestep rectangle approximation of
// every observation gap of o (to be registered as object index oi) —
// the expensive reachability sweeps of the index build.
func computeGaps(sp *space.Space, o *uncertain.Object, oi int, reach *uncertain.Reach) ([]gapApprox, error) {
	if len(o.Obs) == 1 {
		ob := o.Obs[0]
		r := geo.RectFromPoint(sp.Point(ob.State))
		return []gapApprox{{obj: oi, gap: -1, t0: ob.T, rects: []geo.Rect{r}}}, nil
	}
	gaps := make([]gapApprox, 0, len(o.Obs)-1)
	for g := 0; g+1 < len(o.Obs); g++ {
		d, err := reach.Diamond(o, g)
		if err != nil {
			return nil, fmt.Errorf("ustree: %w", err)
		}
		rects := make([]geo.Rect, len(d))
		for k, states := range d {
			r := geo.EmptyRect()
			for _, s := range states {
				r = r.ExtendPoint(sp.Point(int(s)))
			}
			rects[k] = r
		}
		gaps = append(gaps, gapApprox{obj: oi, gap: g, t0: o.Obs[g].T, rects: rects})
	}
	return gaps, nil
}

func (t *Tree) extendHorizon(o *uncertain.Object) {
	if o.First().T < t.horizon[0] {
		t.horizon[0] = o.First().T
	}
	if o.Last().T > t.horizon[1] {
		t.horizon[1] = o.Last().T
	}
}

func (t *Tree) addGap(g gapApprox) {
	union := geo.EmptyRect()
	for _, r := range g.rects {
		union = union.Union(r)
	}
	t1 := g.t0 + len(g.rects) - 1
	box := rtree.NewBox(
		union.Lo.X, union.Hi.X,
		union.Lo.Y, union.Hi.Y,
		float64(g.t0), float64(t1),
	)
	t.rt.Insert(box, rtree.Item(len(t.gaps)))
	t.gaps = append(t.gaps, g)
}

// Freeze marks the tree as published to concurrent readers: any later
// Insert is refused with an error. Freezing is irreversible; to mutate a
// frozen tree, Clone it and insert into the private copy.
func (t *Tree) Freeze() { t.frozen = true }

// Frozen reports whether the tree has been published via Freeze.
func (t *Tree) Frozen() bool { return t.frozen }

// Clone returns an unfrozen deep-enough copy for copy-on-write
// mutation: the R*-tree and the bookkeeping slices are copied, while
// the immutable space, objects and per-gap rectangle data are shared.
// Inserting into the clone leaves the original — and any reader holding
// it — untouched.
func (t *Tree) Clone() *Tree {
	return &Tree{
		sp:      t.sp,
		objs:    append([]*uncertain.Object(nil), t.objs...),
		gaps:    append([]gapApprox(nil), t.gaps...),
		rt:      t.rt.Clone(),
		horizon: t.horizon,
	}
}

// Insert appends one more object to the index (streaming ingestion). The
// object's diamonds are computed and added to the R*-tree; its index in
// Objects() is returned. Insert is not safe for use concurrently with
// queries: a tree published to readers must be frozen, and mutation then
// flows through Clone (see the Tree concurrency contract).
func (t *Tree) Insert(o *uncertain.Object, reach *uncertain.Reach) (int, error) {
	if t.frozen {
		return 0, errors.New("ustree: Insert into frozen tree (published to readers); Clone it and insert into the copy")
	}
	if reach == nil {
		reach = uncertain.NewReach()
	}
	oi := len(t.objs)
	// Validate all gaps before mutating any state, so a contradicting
	// object cannot leave the tree half-updated.
	gaps, err := computeGaps(t.sp, o, oi, reach)
	if err != nil {
		return 0, err
	}
	t.objs = append(t.objs, o)
	for _, g := range gaps {
		t.addGap(g)
	}
	t.extendHorizon(o)
	return oi, nil
}

// WithUpdatedObject returns a new unfrozen tree equal to t except that
// the object at index oi is replaced by upd — the index path of an
// observation append. Only upd's diamonds are recomputed (the
// reachability sweeps that dominate index builds); every other object's
// per-timestep rectangles are reused as-is. What remains is
// re-registering all gap boxes in a fresh R*-tree, which still scales
// with the total number of gaps — cheap relative to the sweeps, but not
// free; shrinking it to a delete+insert needs stable gap item IDs and
// is left for a later PR. A contradicting upd returns an error and
// leaves t untouched.
func (t *Tree) WithUpdatedObject(oi int, upd *uncertain.Object, reach *uncertain.Reach) (*Tree, error) {
	if oi < 0 || oi >= len(t.objs) {
		return nil, fmt.Errorf("ustree: no object at index %d", oi)
	}
	if reach == nil {
		reach = uncertain.NewReach()
	}
	updGaps, err := computeGaps(t.sp, upd, oi, reach)
	if err != nil {
		return nil, err
	}
	nt := &Tree{
		sp:      t.sp,
		objs:    append([]*uncertain.Object(nil), t.objs...),
		gaps:    make([]gapApprox, 0, len(t.gaps)-countGaps(t.gaps, oi)+len(updGaps)),
		rt:      rtree.New(0),
		horizon: [2]int{math.MaxInt32, math.MinInt32},
	}
	nt.objs[oi] = upd
	for _, o := range nt.objs {
		nt.extendHorizon(o)
	}
	// Splice the new gaps in place of the old ones; gaps are stored in
	// ascending (obj, gap) order and one object's gaps are consecutive,
	// so the ordering invariant gapOf relies on is preserved.
	spliced := false
	for _, g := range t.gaps {
		if g.obj == oi {
			if !spliced {
				spliced = true
				for _, ng := range updGaps {
					nt.addGap(ng)
				}
			}
			continue
		}
		nt.addGap(g)
	}
	return nt, nil
}

func countGaps(gaps []gapApprox, oi int) int {
	n := 0
	for _, g := range gaps {
		if g.obj == oi {
			n++
		}
	}
	return n
}

// Len returns the number of indexed objects.
func (t *Tree) Len() int { return len(t.objs) }

// NumLeaves returns the number of indexed gap MBRs ("diamonds").
func (t *Tree) NumLeaves() int { return len(t.gaps) }

// Objects returns the indexed objects (shared slice; do not modify).
func (t *Tree) Objects() []*uncertain.Object { return t.objs }

// Space returns the underlying state space.
func (t *Tree) Space() *space.Space { return t.sp }

// Horizon returns the smallest and largest observation timestamps across
// the database.
func (t *Tree) Horizon() (int, int) { return t.horizon[0], t.horizon[1] }

// RectAt returns the bounding rectangle of object oi's possible states at
// time tt, and whether the object is alive at tt. When tt is an interior
// observation timestamp shared by two gaps, the tighter of the two
// rectangles applies (both are valid bounds).
func (t *Tree) RectAt(oi, tt int) (geo.Rect, bool) {
	o := t.objs[oi]
	if !o.Alive(tt) {
		return geo.EmptyRect(), false
	}
	if s, ok := o.ObservedAt(tt); ok {
		return geo.RectFromPoint(t.sp.Point(s)), true
	}
	g, ok := o.GapAt(tt)
	if !ok {
		return geo.EmptyRect(), false
	}
	ga := t.gapOf(oi, g)
	if ga == nil {
		return geo.EmptyRect(), false
	}
	return ga.rects[tt-ga.t0], true
}

// MayInfluence reports whether object oi can come within bound[t-ts] of
// q(t) at some t ∈ [ts, te] where it is alive — i.e. whether it may enter
// the influence region described by a Pruning computed over the same
// window. bound must have length te-ts+1; shorter bounds treat missing
// entries as +Inf (conservatively touching). It is the write-path touch
// test for standing queries: a false return proves the object cannot be
// the NN at any window time and therefore cannot change the answer.
func (t *Tree) MayInfluence(oi int, q func(int) geo.Point, ts, te int, bound []float64) bool {
	if oi < 0 || oi >= len(t.objs) {
		return false
	}
	for tt := ts; tt <= te; tt++ {
		r, alive := t.RectAt(oi, tt)
		if !alive {
			continue
		}
		if tt-ts >= len(bound) {
			return true
		}
		if r.MinDist(q(tt)) <= bound[tt-ts] {
			return true
		}
	}
	return false
}

func (t *Tree) gapOf(oi, gap int) *gapApprox {
	// Gaps of one object are stored consecutively in insertion order; a
	// linear probe over the object's own gaps via the gap index keeps this
	// O(1) amortized: find by scanning is avoided by recomputing the
	// offset. Since all objects are built in order we locate by search.
	lo, hi := 0, len(t.gaps)
	for lo < hi {
		mid := (lo + hi) / 2
		g := &t.gaps[mid]
		if g.obj < oi || (g.obj == oi && g.gapKey() < gap) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(t.gaps) && t.gaps[lo].obj == oi && t.gaps[lo].gapKey() == gap {
		return &t.gaps[lo]
	}
	return nil
}

func (g *gapApprox) gapKey() int {
	if g.gap < 0 {
		return 0
	}
	return g.gap
}

// Pruning is the result of the filter step for one query.
type Pruning struct {
	// Candidates holds indices of objects that may satisfy the ∀-semantics
	// (alive throughout T, never strictly dominated).
	Candidates []int
	// Influencers holds indices of objects that may be the NN at at least
	// one t ∈ T. It is a superset of Candidates restricted to the alive
	// requirement per timestep; for P∃NN queries it is the refinement set.
	Influencers []int
	// PruneDist[t-ts] is the pruning threshold at time t: the k-th smallest
	// dmax over alive objects (+Inf when fewer than k are alive). An object
	// is an influencer iff its dmin reaches PruneDist at some window time,
	// so the thresholds describe the query's influence region: an updated
	// object whose rectangles stay strictly outside them at every t cannot
	// change the answer.
	PruneDist []float64
}

// Prune runs the UST-tree filter step for a query position function q
// (defined on [ts, te]) and the query interval T = [ts, te]. It uses the
// R*-tree to collect the observation gaps overlapping T, computes per-
// timestep dmin/dmax between each alive object's rectangle and q(t), and
// derives the candidate and influence sets of Section 6.
func (t *Tree) Prune(q func(int) geo.Point, ts, te int) Pruning {
	return t.PruneK(q, ts, te, 1)
}

// PruneK generalizes Prune to k-nearest-neighbor queries (Section 8): the
// per-timestep pruning distance becomes the k-th smallest dmax over alive
// objects, since an object whose dmin exceeds it is dominated by at least k
// objects in every possible world.
func (t *Tree) PruneK(q func(int) geo.Point, ts, te, k int) Pruning {
	if te < ts || k < 1 {
		return Pruning{}
	}
	nT := te - ts + 1

	// Gather gaps overlapping the query window.
	queryBox := rtree.NewBox(
		math.Inf(-1), math.Inf(1),
		math.Inf(-1), math.Inf(1),
		float64(ts), float64(te),
	)
	type objWindow struct {
		dmin, dmax []float64 // indexed by t - ts; NaN where not alive
	}
	windows := make(map[int]*objWindow)
	t.rt.Search(queryBox, func(_ rtree.Box, it rtree.Item) bool {
		g := &t.gaps[it]
		w := windows[g.obj]
		if w == nil {
			w = &objWindow{dmin: make([]float64, nT), dmax: make([]float64, nT)}
			for k := 0; k < nT; k++ {
				w.dmin[k] = math.NaN()
				w.dmax[k] = math.NaN()
			}
			windows[g.obj] = w
		}
		lo := maxInt(ts, g.t0)
		hi := minInt(te, g.t0+len(g.rects)-1)
		for tt := lo; tt <= hi; tt++ {
			r := g.rects[tt-g.t0]
			qp := q(tt)
			dmin, dmax := r.MinDist(qp), r.MaxDist(qp)
			k := tt - ts
			// Two gaps may share a boundary timestep; both bounds hold, so
			// keep the tighter ones.
			if math.IsNaN(w.dmin[k]) || dmin > w.dmin[k] {
				w.dmin[k] = dmin
			}
			if math.IsNaN(w.dmax[k]) || dmax < w.dmax[k] {
				w.dmax[k] = dmax
			}
		}
		return true
	})

	// Per-timestep pruning distance: the k-th smallest dmax over alive
	// objects (+Inf when fewer than k are alive).
	pruneDist := make([]float64, nT)
	kth := make([][]float64, nT)
	for i := range pruneDist {
		pruneDist[i] = math.Inf(1)
	}
	for _, w := range windows {
		for i := 0; i < nT; i++ {
			if !math.IsNaN(w.dmax[i]) {
				kth[i] = insertKSmallest(kth[i], w.dmax[i], k)
			}
		}
	}
	for i := 0; i < nT; i++ {
		if len(kth[i]) == k {
			pruneDist[i] = kth[i][k-1]
		}
	}

	out := Pruning{PruneDist: pruneDist}
	for oi, w := range windows {
		everNN := false
		alwaysNN := true
		aliveAll := true
		for k := 0; k < nT; k++ {
			if math.IsNaN(w.dmin[k]) {
				aliveAll = false
				alwaysNN = false
				continue
			}
			if w.dmin[k] <= pruneDist[k] {
				everNN = true
			} else {
				alwaysNN = false
			}
		}
		if everNN {
			out.Influencers = append(out.Influencers, oi)
		}
		if aliveAll && alwaysNN {
			out.Candidates = append(out.Candidates, oi)
		}
	}
	sortInts(out.Candidates)
	sortInts(out.Influencers)
	return out
}

// insertKSmallest maintains a sorted slice of the k smallest values seen.
func insertKSmallest(s []float64, v float64, k int) []float64 {
	pos := len(s)
	for pos > 0 && s[pos-1] > v {
		pos--
	}
	if pos >= k {
		return s
	}
	if len(s) < k {
		s = append(s, 0)
	}
	copy(s[pos+1:], s[pos:])
	s[pos] = v
	return s
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
