package ustree

import (
	"testing"

	"pnn/internal/geo"
	"pnn/internal/uncertain"
)

func TestInsertStreaming(t *testing.T) {
	sp, c := lineWorld(t)
	base := []*uncertain.Object{
		mkObj(t, 0, c,
			uncertain.Observation{T: 0, State: 50},
			uncertain.Observation{T: 10, State: 50}),
	}
	tree, err := Build(sp, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Insert a nearby competitor after the initial build.
	o2 := mkObj(t, 1, c,
		uncertain.Observation{T: 0, State: 53},
		uncertain.Observation{T: 10, State: 53})
	oi, err := tree.Insert(o2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if oi != 1 || tree.Len() != 2 {
		t.Fatalf("Insert index = %d, Len = %d", oi, tree.Len())
	}
	// The inserted object participates in pruning.
	q := sp.Point(53)
	p := tree.Prune(func(int) geo.Point { return q }, 2, 8)
	found := false
	for _, ci := range p.Candidates {
		if ci == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("inserted object missing from candidates: %+v", p)
	}
	// RectAt works for the inserted object.
	if _, ok := tree.RectAt(1, 5); !ok {
		t.Error("RectAt for inserted object failed")
	}
	// Horizon extends when a later object arrives.
	o3 := mkObj(t, 2, c,
		uncertain.Observation{T: 90, State: 10},
		uncertain.Observation{T: 99, State: 12})
	if _, err := tree.Insert(o3, nil); err != nil {
		t.Fatal(err)
	}
	if _, hi := tree.Horizon(); hi != 99 {
		t.Errorf("horizon not extended: %d", hi)
	}
}

func TestInsertContradictingLeavesTreeIntact(t *testing.T) {
	sp, c := lineWorld(t)
	tree, err := Build(sp, []*uncertain.Object{
		mkObj(t, 0, c,
			uncertain.Observation{T: 0, State: 50},
			uncertain.Observation{T: 10, State: 50}),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	leavesBefore := tree.NumLeaves()
	bad := mkObj(t, 1, c,
		uncertain.Observation{T: 0, State: 0},
		uncertain.Observation{T: 2, State: 90})
	if _, err := tree.Insert(bad, nil); err == nil {
		t.Fatal("expected contradiction error")
	}
	if tree.Len() != 1 || tree.NumLeaves() != leavesBefore {
		t.Errorf("failed insert mutated the tree: Len=%d leaves=%d", tree.Len(), tree.NumLeaves())
	}
}

func TestFreezeRefusesInsert(t *testing.T) {
	sp, c := lineWorld(t)
	tree, err := Build(sp, []*uncertain.Object{
		mkObj(t, 0, c,
			uncertain.Observation{T: 0, State: 50},
			uncertain.Observation{T: 10, State: 50}),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tree.Freeze()
	if !tree.Frozen() {
		t.Fatal("Frozen() false after Freeze")
	}
	o := mkObj(t, 1, c,
		uncertain.Observation{T: 0, State: 40},
		uncertain.Observation{T: 10, State: 40})
	if _, err := tree.Insert(o, nil); err == nil {
		t.Fatal("Insert into frozen tree must fail")
	}
	// A clone of a frozen tree accepts the insert and leaves the
	// original untouched.
	cp := tree.Clone()
	if cp.Frozen() {
		t.Fatal("clone must start unfrozen")
	}
	oi, err := cp.Insert(o, nil)
	if err != nil {
		t.Fatal(err)
	}
	if oi != 1 || cp.Len() != 2 {
		t.Fatalf("clone insert: index %d, len %d", oi, cp.Len())
	}
	if tree.Len() != 1 {
		t.Fatalf("insert into clone mutated the frozen original: len %d", tree.Len())
	}
	// The clone answers pruning over both objects; the original still
	// sees only its own.
	q := sp.Point(40)
	if p := cp.Prune(func(int) geo.Point { return q }, 2, 8); len(p.Influencers) != 2 {
		t.Errorf("clone pruning: %+v", p)
	}
	if p := tree.Prune(func(int) geo.Point { return q }, 2, 8); len(p.Influencers) != 1 {
		t.Errorf("original pruning after clone insert: %+v", p)
	}
}

func TestInsertSingleObservation(t *testing.T) {
	sp, c := lineWorld(t)
	tree, err := Build(sp, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	o := mkObj(t, 0, c, uncertain.Observation{T: 5, State: 42})
	if _, err := tree.Insert(o, nil); err != nil {
		t.Fatal(err)
	}
	q := sp.Point(42)
	p := tree.Prune(func(int) geo.Point { return q }, 5, 5)
	if len(p.Candidates) != 1 {
		t.Errorf("Prune after single-obs insert: %+v", p)
	}
}

func TestWithUpdatedObject(t *testing.T) {
	sp, c := lineWorld(t)
	objs := []*uncertain.Object{
		mkObj(t, 0, c,
			uncertain.Observation{T: 0, State: 20},
			uncertain.Observation{T: 10, State: 22}),
		mkObj(t, 1, c,
			uncertain.Observation{T: 0, State: 50},
			uncertain.Observation{T: 10, State: 52}),
		mkObj(t, 2, c,
			uncertain.Observation{T: 0, State: 80},
			uncertain.Observation{T: 10, State: 80}),
	}
	tree, err := Build(sp, objs, nil)
	if err != nil {
		t.Fatal(err)
	}
	tree.Freeze()

	// Extend the middle object's lifetime.
	upd := mkObj(t, 1, c,
		uncertain.Observation{T: 0, State: 50},
		uncertain.Observation{T: 10, State: 52},
		uncertain.Observation{T: 20, State: 56})
	nt, err := tree.WithUpdatedObject(1, upd, nil)
	if err != nil {
		t.Fatal(err)
	}
	if nt.Frozen() {
		t.Error("derived tree must start unfrozen")
	}
	if nt.Len() != 3 || nt.NumLeaves() != tree.NumLeaves()+1 {
		t.Fatalf("derived tree: len %d leaves %d (orig %d)", nt.Len(), nt.NumLeaves(), tree.NumLeaves())
	}
	if _, hi := nt.Horizon(); hi != 20 {
		t.Errorf("derived horizon = %d, want 20", hi)
	}
	if _, hi := tree.Horizon(); hi != 10 {
		t.Errorf("original horizon changed to %d", hi)
	}
	// RectAt works across the splice for all objects, including the new
	// gap, and the original tree does not cover it.
	for oi := 0; oi < 3; oi++ {
		if _, ok := nt.RectAt(oi, 5); !ok {
			t.Errorf("derived RectAt(%d, 5) failed", oi)
		}
	}
	if _, ok := nt.RectAt(1, 15); !ok {
		t.Error("derived RectAt misses the appended gap")
	}
	if _, ok := tree.RectAt(1, 15); ok {
		t.Error("original RectAt covers the appended gap")
	}
	// Pruning on the extended window finds exactly the updated object.
	q := sp.Point(54)
	if p := nt.Prune(func(int) geo.Point { return q }, 12, 18); len(p.Influencers) != 1 || p.Influencers[0] != 1 {
		t.Errorf("derived pruning in extension window: %+v", p)
	}

	// Contradicting updates and bad indices fail without side effects.
	bad := mkObj(t, 1, c,
		uncertain.Observation{T: 0, State: 50},
		uncertain.Observation{T: 2, State: 90})
	if _, err := tree.WithUpdatedObject(1, bad, nil); err == nil {
		t.Error("contradicting update must fail")
	}
	if _, err := tree.WithUpdatedObject(7, upd, nil); err == nil {
		t.Error("out-of-range index must fail")
	}
}
