package ustree

import (
	"testing"

	"pnn/internal/geo"
	"pnn/internal/uncertain"
)

func TestInsertStreaming(t *testing.T) {
	sp, c := lineWorld(t)
	base := []*uncertain.Object{
		mkObj(t, 0, c,
			uncertain.Observation{T: 0, State: 50},
			uncertain.Observation{T: 10, State: 50}),
	}
	tree, err := Build(sp, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Insert a nearby competitor after the initial build.
	o2 := mkObj(t, 1, c,
		uncertain.Observation{T: 0, State: 53},
		uncertain.Observation{T: 10, State: 53})
	oi, err := tree.Insert(o2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if oi != 1 || tree.Len() != 2 {
		t.Fatalf("Insert index = %d, Len = %d", oi, tree.Len())
	}
	// The inserted object participates in pruning.
	q := sp.Point(53)
	p := tree.Prune(func(int) geo.Point { return q }, 2, 8)
	found := false
	for _, ci := range p.Candidates {
		if ci == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("inserted object missing from candidates: %+v", p)
	}
	// RectAt works for the inserted object.
	if _, ok := tree.RectAt(1, 5); !ok {
		t.Error("RectAt for inserted object failed")
	}
	// Horizon extends when a later object arrives.
	o3 := mkObj(t, 2, c,
		uncertain.Observation{T: 90, State: 10},
		uncertain.Observation{T: 99, State: 12})
	if _, err := tree.Insert(o3, nil); err != nil {
		t.Fatal(err)
	}
	if _, hi := tree.Horizon(); hi != 99 {
		t.Errorf("horizon not extended: %d", hi)
	}
}

func TestInsertContradictingLeavesTreeIntact(t *testing.T) {
	sp, c := lineWorld(t)
	tree, err := Build(sp, []*uncertain.Object{
		mkObj(t, 0, c,
			uncertain.Observation{T: 0, State: 50},
			uncertain.Observation{T: 10, State: 50}),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	leavesBefore := tree.NumLeaves()
	bad := mkObj(t, 1, c,
		uncertain.Observation{T: 0, State: 0},
		uncertain.Observation{T: 2, State: 90})
	if _, err := tree.Insert(bad, nil); err == nil {
		t.Fatal("expected contradiction error")
	}
	if tree.Len() != 1 || tree.NumLeaves() != leavesBefore {
		t.Errorf("failed insert mutated the tree: Len=%d leaves=%d", tree.Len(), tree.NumLeaves())
	}
}

func TestInsertSingleObservation(t *testing.T) {
	sp, c := lineWorld(t)
	tree, err := Build(sp, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	o := mkObj(t, 0, c, uncertain.Observation{T: 5, State: 42})
	if _, err := tree.Insert(o, nil); err != nil {
		t.Fatal(err)
	}
	q := sp.Point(42)
	p := tree.Prune(func(int) geo.Point { return q }, 5, 5)
	if len(p.Candidates) != 1 {
		t.Errorf("Prune after single-obs insert: %+v", p)
	}
}
