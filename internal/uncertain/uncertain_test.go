package uncertain

import (
	"math/rand"
	"testing"

	"pnn/internal/markov"
	"pnn/internal/space"
)

// lineChain builds a homogeneous chain over a 1D line of n states where an
// object moves left/right/stays with equal weight.
func lineChain(t testing.TB, n int) markov.Chain {
	t.Helper()
	sp, err := space.Line(n)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sp.BuildTransitionMatrix(func(i, j int) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	h, err := markov.NewHomogeneous(m)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewObjectValidation(t *testing.T) {
	c := lineChain(t, 5)
	if _, err := NewObject(1, nil, c); err == nil {
		t.Error("expected error for no observations")
	}
	if _, err := NewObject(1, []Observation{{T: 0, State: 0}}, nil); err == nil {
		t.Error("expected error for nil chain")
	}
	if _, err := NewObject(1, []Observation{{T: 0, State: 7}}, c); err == nil {
		t.Error("expected error for out-of-range state")
	}
	if _, err := NewObject(1, []Observation{{T: 0, State: 0}, {T: 0, State: 1}}, c); err == nil {
		t.Error("expected error for contradicting same-time observations")
	}
	if _, err := NewObject(1, []Observation{{T: 0, State: 0}, {T: 0, State: 0}}, c); err == nil {
		t.Error("expected error for duplicate observation")
	}
	// Unsorted input is sorted.
	o, err := NewObject(1, []Observation{{T: 10, State: 2}, {T: 0, State: 0}}, c)
	if err != nil {
		t.Fatal(err)
	}
	if o.First().T != 0 || o.Last().T != 10 {
		t.Errorf("observations not sorted: %v", o.Obs)
	}
}

func TestObjectAccessors(t *testing.T) {
	c := lineChain(t, 10)
	o, err := NewObject(7, []Observation{
		{T: 5, State: 0}, {T: 10, State: 3}, {T: 20, State: 9},
	}, c)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Alive(5) || !o.Alive(20) || !o.Alive(12) {
		t.Error("Alive inside lifetime")
	}
	if o.Alive(4) || o.Alive(21) {
		t.Error("Alive outside lifetime")
	}
	if !o.AliveThroughout(5, 20) || o.AliveThroughout(4, 10) || o.AliveThroughout(10, 21) {
		t.Error("AliveThroughout wrong")
	}
	if s, ok := o.ObservedAt(10); !ok || s != 3 {
		t.Errorf("ObservedAt(10) = %d,%v", s, ok)
	}
	if _, ok := o.ObservedAt(11); ok {
		t.Error("ObservedAt(11) should be false")
	}
	cases := []struct {
		t   int
		gap int
		ok  bool
	}{
		{5, 0, true}, {9, 0, true}, {10, 1, true}, {19, 1, true},
		{20, 1, true}, // final observation belongs to last gap
		{4, 0, false}, {21, 0, false},
	}
	for _, tc := range cases {
		g, ok := o.GapAt(tc.t)
		if ok != tc.ok || (ok && g != tc.gap) {
			t.Errorf("GapAt(%d) = %d,%v want %d,%v", tc.t, g, ok, tc.gap, tc.ok)
		}
	}
}

func TestGapAtSingleObservation(t *testing.T) {
	c := lineChain(t, 5)
	o, err := NewObject(1, []Observation{{T: 3, State: 1}}, c)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := o.GapAt(3); ok {
		t.Error("single-observation object has no gaps")
	}
}

func TestPath(t *testing.T) {
	p := Path{Start: 10, States: []int32{4, 5, 6}}
	if s, ok := p.At(11); !ok || s != 5 {
		t.Errorf("At(11) = %d,%v", s, ok)
	}
	if _, ok := p.At(9); ok {
		t.Error("At before start")
	}
	if _, ok := p.At(13); ok {
		t.Error("At after end")
	}
	if p.End() != 12 {
		t.Errorf("End = %d", p.End())
	}
}

func TestPathHitsObservations(t *testing.T) {
	c := lineChain(t, 10)
	o, err := NewObject(1, []Observation{{T: 0, State: 2}, {T: 2, State: 4}}, c)
	if err != nil {
		t.Fatal(err)
	}
	good := Path{Start: 0, States: []int32{2, 3, 4}}
	if !good.HitsObservations(o) {
		t.Error("good path should hit observations")
	}
	bad := Path{Start: 0, States: []int32{2, 3, 5}}
	if bad.HitsObservations(o) {
		t.Error("bad path should miss observation at t=2")
	}
}

func TestDiamondLine(t *testing.T) {
	// Line of 7 states, object at state 1 at t=0 and state 3 at t=2.
	// At t=1 the only states on a valid path are {2} (1→2→3) or can it
	// stay/move? From 1 reachable in 1 step: {0,1,2}; states that reach 3
	// in 1 step: {2,3,4}. Intersection: {2}.
	c := lineChain(t, 7)
	o, err := NewObject(1, []Observation{{T: 0, State: 1}, {T: 2, State: 3}}, c)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReach()
	d, err := r.Diamond(o, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 3 {
		t.Fatalf("diamond has %d timesteps, want 3", len(d))
	}
	if len(d[0]) != 1 || d[0][0] != 1 {
		t.Errorf("d[0] = %v", d[0])
	}
	if len(d[1]) != 1 || d[1][0] != 2 {
		t.Errorf("d[1] = %v, want [2]", d[1])
	}
	if len(d[2]) != 1 || d[2][0] != 3 {
		t.Errorf("d[2] = %v", d[2])
	}
}

func TestDiamondWide(t *testing.T) {
	// Same line but 4 steps between observations: slack of one step each
	// way widens the middle.
	c := lineChain(t, 9)
	o, err := NewObject(1, []Observation{{T: 0, State: 2}, {T: 4, State: 4}}, c)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReach()
	d, err := r.Diamond(o, 0)
	if err != nil {
		t.Fatal(err)
	}
	// At offset 2 (middle), forward reach = {0..4}, backward reach = {2..6};
	// intersection {2,3,4}.
	want := []int32{2, 3, 4}
	if len(d[2]) != len(want) {
		t.Fatalf("d[2] = %v, want %v", d[2], want)
	}
	for i := range want {
		if d[2][i] != want[i] {
			t.Fatalf("d[2] = %v, want %v", d[2], want)
		}
	}
}

func TestDiamondContradicting(t *testing.T) {
	// States 0 and 5 on a line cannot be connected in 2 steps.
	c := lineChain(t, 7)
	o, err := NewObject(1, []Observation{{T: 0, State: 0}, {T: 2, State: 5}}, c)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReach()
	if _, err := r.Diamond(o, 0); err == nil {
		t.Error("expected contradiction error")
	}
	if err := r.CheckConsistent(o); err == nil {
		t.Error("CheckConsistent should fail")
	}
}

func TestDiamondBadGap(t *testing.T) {
	c := lineChain(t, 5)
	o, err := NewObject(1, []Observation{{T: 0, State: 0}, {T: 1, State: 1}}, c)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReach()
	if _, err := r.Diamond(o, 1); err == nil {
		t.Error("expected gap index error")
	}
	if _, err := r.Diamond(o, -1); err == nil {
		t.Error("expected gap index error")
	}
}

func TestCheckConsistentOK(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	sp, err := space.Synthetic(400, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	h, err := markov.NewHomogeneous(sp.TransitionMatrix(0.5))
	if err != nil {
		t.Fatal(err)
	}
	// Build an object along a real shortest path, observing every 4th step:
	// by construction the observations are consistent.
	var path []int
	for len(path) < 10 {
		a, b := rng.Intn(sp.Len()), rng.Intn(sp.Len())
		path = sp.ShortestPath(a, b)
	}
	var obs []Observation
	for t := 0; t < len(path); t += 4 {
		obs = append(obs, Observation{T: t, State: path[t]})
	}
	if last := len(path) - 1; obs[len(obs)-1].T != last {
		obs = append(obs, Observation{T: last, State: path[last]})
	}
	o, err := NewObject(1, obs, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := NewReach().CheckConsistent(o); err != nil {
		t.Errorf("CheckConsistent: %v", err)
	}
}

func TestDiamondTransposeCacheShared(t *testing.T) {
	c := lineChain(t, 9)
	o1, _ := NewObject(1, []Observation{{T: 0, State: 2}, {T: 2, State: 4}}, c)
	o2, _ := NewObject(2, []Observation{{T: 5, State: 1}, {T: 7, State: 3}}, c)
	r := NewReach()
	if _, err := r.Diamond(o1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Diamond(o2, 0); err != nil {
		t.Fatal(err)
	}
	if len(r.tr) != 1 {
		t.Errorf("transpose cache has %d entries, want 1 (shared matrix)", len(r.tr))
	}
}
