package uncertain

import (
	"fmt"
	"sync"

	"pnn/internal/sparse"
)

// Reach computes per-timestep reachable state sets. It caches transposed
// transition matrices keyed by matrix identity, so homogeneous chains (the
// common case) pay for one transpose no matter how many objects share the
// matrix. Reach is safe for concurrent use.
type Reach struct {
	mu sync.Mutex
	tr map[*sparse.CSR]*sparse.CSR
}

// NewReach returns an empty transpose cache.
func NewReach() *Reach { return &Reach{tr: make(map[*sparse.CSR]*sparse.CSR)} }

func (r *Reach) transpose(m *sparse.CSR) *sparse.CSR {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.tr[m]; ok {
		return t
	}
	t := m.Transpose()
	r.tr[m] = t
	return t
}

// Diamond returns, for each timestep t in [o.Obs[gap].T, o.Obs[gap+1].T],
// the sorted set of states the object can occupy at t: states reachable
// forward from the gap's first observation AND backward from its second
// (the bead/diamond of the paper, Figure 4). Index 0 of the result
// corresponds to the gap's start time.
//
// An empty set at any timestep means the two observations contradict the
// chain (the object cannot travel between them in the available time).
func (r *Reach) Diamond(o *Object, gap int) ([][]int32, error) {
	if gap < 0 || gap >= len(o.Obs)-1 {
		return nil, fmt.Errorf("uncertain: object %d has no gap %d", o.ID, gap)
	}
	a, b := o.Obs[gap], o.Obs[gap+1]
	steps := b.T - a.T
	fwd := make([]map[int32]struct{}, steps+1)
	fwd[0] = map[int32]struct{}{int32(a.State): {}}
	for k := 0; k < steps; k++ {
		m := o.Chain.At(a.T + k)
		next := make(map[int32]struct{}, len(fwd[k])*2)
		for s := range fwd[k] {
			cols, vals := m.Row(int(s))
			for i, c := range cols {
				if vals[i] > 0 {
					next[c] = struct{}{}
				}
			}
		}
		fwd[k+1] = next
	}
	// Backward pass over the transposed matrices.
	bwd := make([]map[int32]struct{}, steps+1)
	bwd[steps] = map[int32]struct{}{int32(b.State): {}}
	for k := steps; k > 0; k-- {
		mt := r.transpose(o.Chain.At(a.T + k - 1))
		prev := make(map[int32]struct{}, len(bwd[k])*2)
		for s := range bwd[k] {
			cols, vals := mt.Row(int(s))
			for i, c := range cols {
				if vals[i] > 0 {
					prev[c] = struct{}{}
				}
			}
		}
		bwd[k-1] = prev
	}
	out := make([][]int32, steps+1)
	for k := 0; k <= steps; k++ {
		small, large := fwd[k], bwd[k]
		if len(large) < len(small) {
			small, large = large, small
		}
		var states []int32
		for s := range small {
			if _, ok := large[s]; ok {
				states = append(states, s)
			}
		}
		if len(states) == 0 {
			return nil, fmt.Errorf(
				"uncertain: object %d observations at t=%d and t=%d are contradicting (no possible state at offset %d)",
				o.ID, a.T, b.T, k)
		}
		sortInt32(states)
		out[k] = states
	}
	return out, nil
}

// CheckConsistent verifies that every pair of consecutive observations of o
// can be connected by the chain, i.e. the observation set is
// non-contradicting (a precondition of Algorithm 2).
func (r *Reach) CheckConsistent(o *Object) error {
	for g := 0; g < len(o.Obs)-1; g++ {
		if _, err := r.Diamond(o, g); err != nil {
			return err
		}
	}
	return nil
}

func sortInt32(a []int32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
