// Package uncertain defines the paper's uncertain moving-object model: an
// object is a set of certain (time, state) observations Θ plus an a-priori
// Markov chain describing its motion in between. The package also computes
// per-timestep reachable state sets ("diamonds"): the states an object can
// possibly occupy at each time given two consecutive observations, which
// drive both the UST-tree approximations and the sampler's sanity checks.
package uncertain

import (
	"fmt"
	"sort"

	"pnn/internal/markov"
)

// Observation records that an object was certainly at state State at time T
// (Section 3.1: observation locations are assumed certain).
type Observation struct {
	T     int
	State int
}

// Object is one uncertain moving object: a unique ID, its observations in
// strictly increasing time order, and the a-priori Markov chain governing
// its motion. An object is defined ("alive") only on the closed interval
// [First().T, Last().T]; outside it, its position is undefined and it does
// not participate in queries.
type Object struct {
	ID    int
	Obs   []Observation
	Chain markov.Chain
}

// NewObject validates and constructs an uncertain object. Observations are
// sorted by time; duplicate timestamps and out-of-range states are
// rejected. Whether the observations contradict the chain is checked
// separately (and more expensively) by CheckConsistent or during model
// adaptation.
func NewObject(id int, obs []Observation, chain markov.Chain) (*Object, error) {
	if len(obs) == 0 {
		return nil, fmt.Errorf("uncertain: object %d has no observations", id)
	}
	if chain == nil {
		return nil, fmt.Errorf("uncertain: object %d has no chain", id)
	}
	sorted := make([]Observation, len(obs))
	copy(sorted, obs)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].T < sorted[b].T })
	n := chain.NumStates()
	for i, ob := range sorted {
		if ob.State < 0 || ob.State >= n {
			return nil, fmt.Errorf("uncertain: object %d observation %d has state %d out of range [0,%d)", id, i, ob.State, n)
		}
		if i > 0 && ob.T == sorted[i-1].T {
			if ob.State != sorted[i-1].State {
				return nil, fmt.Errorf("uncertain: object %d has contradicting observations at t=%d", id, ob.T)
			}
			return nil, fmt.Errorf("uncertain: object %d has duplicate observation at t=%d", id, ob.T)
		}
	}
	return &Object{ID: id, Obs: sorted, Chain: chain}, nil
}

// First returns the earliest observation.
func (o *Object) First() Observation { return o.Obs[0] }

// Last returns the latest observation.
func (o *Object) Last() Observation { return o.Obs[len(o.Obs)-1] }

// Alive reports whether the object is defined at time t.
func (o *Object) Alive(t int) bool { return t >= o.First().T && t <= o.Last().T }

// AliveThroughout reports whether the object is defined on every t in
// [t0, t1].
func (o *Object) AliveThroughout(t0, t1 int) bool {
	return o.First().T <= t0 && t1 <= o.Last().T
}

// ObservedAt returns the observed state at time t, if t is an observation
// timestamp.
func (o *Object) ObservedAt(t int) (int, bool) {
	k := sort.Search(len(o.Obs), func(i int) bool { return o.Obs[i].T >= t })
	if k < len(o.Obs) && o.Obs[k].T == t {
		return o.Obs[k].State, true
	}
	return 0, false
}

// GapAt returns the index g of the observation gap [Obs[g].T, Obs[g+1].T]
// containing time t. The second result is false when t is outside the
// object's lifetime or the object has a single observation. Timestamps
// exactly on an interior observation belong to the gap that starts there,
// except the final observation which belongs to the last gap.
func (o *Object) GapAt(t int) (int, bool) {
	if !o.Alive(t) || len(o.Obs) < 2 {
		return 0, false
	}
	k := sort.Search(len(o.Obs), func(i int) bool { return o.Obs[i].T > t })
	// o.Obs[k-1].T <= t < o.Obs[k].T (or t == Last().T with k == len).
	g := k - 1
	if g == len(o.Obs)-1 {
		g-- // t equals the final observation time
	}
	return g, true
}

// Path is a concrete (certain) trajectory realization for one object: the
// state occupied at each timestep from Start to Start+len(States)-1.
type Path struct {
	Start  int
	States []int32
}

// At returns the state at time t; ok is false outside the path's span.
func (p Path) At(t int) (int, bool) {
	i := t - p.Start
	if i < 0 || i >= len(p.States) {
		return 0, false
	}
	return int(p.States[i]), true
}

// End returns the last timestamp covered by the path.
func (p Path) End() int { return p.Start + len(p.States) - 1 }

// HitsObservations reports whether the path passes through every
// observation of o that falls inside the path's span.
func (p Path) HitsObservations(o *Object) bool {
	for _, ob := range o.Obs {
		if s, ok := p.At(ob.T); ok && s != ob.State {
			return false
		}
	}
	return true
}
