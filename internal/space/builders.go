package space

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"pnn/internal/geo"
)

// Synthetic builds the paper's artificial state space (Section 7): n states
// drawn uniformly from [0,1]², with an edge between any two states closer
// than r = sqrt(b / (n·π)). The parameter b is the desired average
// branching factor, which this radius makes independent of n.
func Synthetic(n int, b float64, rng *rand.Rand) (*Space, error) {
	if n <= 0 {
		return nil, fmt.Errorf("space: Synthetic needs n > 0, got %d", n)
	}
	if b <= 0 {
		return nil, fmt.Errorf("space: Synthetic needs b > 0, got %g", b)
	}
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	r := math.Sqrt(b / (float64(n) * math.Pi))
	return connectByRadius(pts, r)
}

// Clustered builds a center-skewed state space: a fraction of states is
// drawn from Gaussian clusters (the "city center" and secondary hubs) and
// the rest uniformly, then connected with the same radius rule as Synthetic.
// Denser regions naturally end up with a higher branching factor, which is
// exactly the property the paper's Beijing road network exhibits near the
// center. Used by the taxi simulator (the T-Drive substitute).
func Clustered(n, clusters int, clusterFrac, sigma, b float64, rng *rand.Rand) (*Space, error) {
	if n <= 0 || clusters <= 0 {
		return nil, errors.New("space: Clustered needs n > 0 and clusters > 0")
	}
	if clusterFrac < 0 || clusterFrac > 1 {
		return nil, fmt.Errorf("space: clusterFrac must be in [0,1], got %g", clusterFrac)
	}
	centers := make([]geo.Point, clusters)
	centers[0] = geo.Point{X: 0.5, Y: 0.5} // primary center
	for i := 1; i < clusters; i++ {
		centers[i] = geo.Point{X: 0.15 + 0.7*rng.Float64(), Y: 0.15 + 0.7*rng.Float64()}
	}
	pts := make([]geo.Point, n)
	for i := range pts {
		if rng.Float64() < clusterFrac {
			c := centers[rng.Intn(clusters)]
			pts[i] = geo.Point{
				X: clamp01(c.X + rng.NormFloat64()*sigma),
				Y: clamp01(c.Y + rng.NormFloat64()*sigma),
			}
		} else {
			pts[i] = geo.Point{X: rng.Float64(), Y: rng.Float64()}
		}
	}
	r := math.Sqrt(b / (float64(n) * math.Pi))
	return connectByRadius(pts, r)
}

// Grid builds a w×h 4-connected lattice with unit spacing scaled into
// [0,1]². It models indoor spaces (rooms, RFID reader positions) and is the
// easiest space to reason about in tests.
func Grid(w, h int) (*Space, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("space: Grid needs positive dimensions, got %dx%d", w, h)
	}
	scale := 1.0 / float64(maxInt(w, h))
	pts := make([]geo.Point, w*h)
	adj := make([][]int32, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			pts[i] = geo.Point{X: float64(x) * scale, Y: float64(y) * scale}
			if x > 0 {
				adj[i] = append(adj[i], int32(i-1))
			}
			if x < w-1 {
				adj[i] = append(adj[i], int32(i+1))
			}
			if y > 0 {
				adj[i] = append(adj[i], int32(i-w))
			}
			if y < h-1 {
				adj[i] = append(adj[i], int32(i+w))
			}
		}
	}
	return New(pts, adj)
}

// Line builds a 1-dimensional chain of n states embedded on the x-axis,
// matching the paper's one-dimensional illustration of sampling (Figure 3).
func Line(n int) (*Space, error) {
	if n <= 0 {
		return nil, fmt.Errorf("space: Line needs n > 0, got %d", n)
	}
	pts := make([]geo.Point, n)
	adj := make([][]int32, n)
	for i := range pts {
		pts[i] = geo.Point{X: float64(i) / float64(n), Y: 0}
		if i > 0 {
			adj[i] = append(adj[i], int32(i-1))
		}
		if i < n-1 {
			adj[i] = append(adj[i], int32(i+1))
		}
	}
	return New(pts, adj)
}

// connectByRadius links every pair of points within distance r using the
// grid index, yielding a symmetric adjacency.
func connectByRadius(pts []geo.Point, r float64) (*Space, error) {
	bounds := geo.RectFromPoints(pts...)
	idx := newGridIndex(pts, bounds)
	adj := make([][]int32, len(pts))
	for i, p := range pts {
		for _, j := range idx.within(p, r, pts) {
			if j != i {
				adj[i] = append(adj[i], int32(j))
			}
		}
	}
	return New(pts, adj)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
