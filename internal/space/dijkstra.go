package space

import (
	"container/heap"
	"math"
)

// ShortestPath returns a minimum-Euclidean-length path of state indices
// from `from` to `to` (inclusive of both endpoints), or nil if `to` is
// unreachable. Paths are used by the synthetic data generator to model an
// object's true motion between sampled anchor states (Section 7).
//
// The search is A* with the straight-line distance to the target as the
// heuristic — admissible and consistent because edge weights are the
// Euclidean distances themselves, so dense regions are not flooded.
// Search state lives in per-space scratch arrays reset lazily with an
// epoch counter and protected by a mutex: data generation calls this in
// tight loops, where map-based search state dominated runtime.
func (s *Space) ShortestPath(from, to int) []int {
	if from == to {
		return []int{from}
	}
	s.pathMu.Lock()
	defer s.pathMu.Unlock()
	if s.pathDist == nil {
		s.pathDist = make([]float64, len(s.pts))
		s.pathPrev = make([]int32, len(s.pts))
		s.pathSeen = make([]uint32, len(s.pts))
	}
	s.pathEpoch++
	epoch := s.pathEpoch
	see := func(i int) {
		if s.pathSeen[i] != epoch {
			s.pathSeen[i] = epoch
			s.pathDist[i] = math.Inf(1)
			s.pathPrev[i] = -1
		}
	}
	target := s.pts[to]
	see(from)
	s.pathDist[from] = 0
	pq := &pathHeap{{node: from, dist: s.pts[from].Dist(target)}}
	found := false
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(pathItem)
		if cur.node == to {
			found = true
			break
		}
		curG := s.pathDist[cur.node]
		if cur.dist > curG+s.pts[cur.node].Dist(target)+1e-12 {
			continue // stale heap entry
		}
		for _, nb := range s.adj[cur.node] {
			j := int(nb)
			see(j)
			ng := curG + s.Dist(cur.node, j)
			if ng < s.pathDist[j] {
				s.pathDist[j] = ng
				s.pathPrev[j] = int32(cur.node)
				heap.Push(pq, pathItem{node: j, dist: ng + s.pts[j].Dist(target)})
			}
		}
	}
	if !found {
		return nil
	}
	var rev []int
	for at := to; ; {
		rev = append(rev, at)
		if at == from {
			break
		}
		at = int(s.pathPrev[at])
	}
	out := make([]int, len(rev))
	for i, v := range rev {
		out[len(rev)-1-i] = v
	}
	return out
}

// HopDistances returns, for every state, the minimum number of transitions
// needed to reach it from state `from`; unreachable states get -1. This is
// a breadth-first search used for reachability ("diamond") computations and
// for validating that observations are non-contradicting.
func (s *Space) HopDistances(from int) []int {
	dist := make([]int, len(s.pts))
	for i := range dist {
		dist[i] = -1
	}
	dist[from] = 0
	queue := []int{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range s.adj[cur] {
			if dist[nb] < 0 {
				dist[nb] = dist[cur] + 1
				queue = append(queue, int(nb))
			}
		}
	}
	return dist
}

type pathItem struct {
	node int
	dist float64
}

type pathHeap []pathItem

func (h pathHeap) Len() int            { return len(h) }
func (h pathHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h pathHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pathHeap) Push(x interface{}) { *h = append(*h, x.(pathItem)) }
func (h *pathHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
