package space

import (
	"math"
	"math/rand"
	"testing"

	"pnn/internal/geo"
)

func TestNewValidation(t *testing.T) {
	pts := []geo.Point{{X: 0, Y: 0}, {X: 1, Y: 0}}
	if _, err := New(pts, [][]int32{{1}, {0}, {0}}); err == nil {
		t.Error("expected row-count mismatch error")
	}
	if _, err := New(pts, [][]int32{{2}, {0}}); err == nil {
		t.Error("expected out-of-range error")
	}
	if _, err := New(pts, [][]int32{{0}, {0}}); err == nil {
		t.Error("expected self-edge error")
	}
	s, err := New(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Degree(0) != 0 {
		t.Error("nil adjacency should mean isolated states")
	}
}

func TestGridSpace(t *testing.T) {
	s, err := Grid(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 6 {
		t.Fatalf("Len = %d", s.Len())
	}
	// Corner state 0 has 2 neighbours; middle of bottom row has 3.
	if s.Degree(0) != 2 {
		t.Errorf("Degree(0) = %d, want 2", s.Degree(0))
	}
	if s.Degree(1) != 3 {
		t.Errorf("Degree(1) = %d, want 3", s.Degree(1))
	}
	nbs := s.Neighbors(1)
	want := []int32{0, 2, 4}
	for i, nb := range nbs {
		if nb != want[i] {
			t.Errorf("Neighbors(1) = %v, want %v", nbs, want)
			break
		}
	}
	if _, err := Grid(0, 3); err == nil {
		t.Error("expected error for zero dimension")
	}
}

func TestLineSpace(t *testing.T) {
	s, err := Line(5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Degree(0) != 1 || s.Degree(2) != 2 || s.Degree(4) != 1 {
		t.Error("line degrees wrong")
	}
	if s.Point(1).Y != 0 {
		t.Error("line should lie on the x-axis")
	}
}

func TestSyntheticBranchingFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, b := range []float64{6, 8, 10} {
		s, err := Synthetic(4000, b, rng)
		if err != nil {
			t.Fatal(err)
		}
		got := s.AvgDegree()
		// Boundary effects reduce the average degree slightly below b.
		if got < b*0.6 || got > b*1.3 {
			t.Errorf("b=%v: AvgDegree = %v, outside plausible range", b, got)
		}
	}
	if _, err := Synthetic(0, 8, rng); err == nil {
		t.Error("expected error for n=0")
	}
	if _, err := Synthetic(10, -1, rng); err == nil {
		t.Error("expected error for b<0")
	}
}

func TestSyntheticSymmetricAdjacency(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s, err := Synthetic(500, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.Len(); i++ {
		for _, j := range s.Neighbors(i) {
			found := false
			for _, back := range s.Neighbors(int(j)) {
				if int(back) == i {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge (%d,%d) not symmetric", i, j)
			}
		}
	}
}

func TestClusteredDenserCenter(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s, err := Clustered(3000, 3, 0.7, 0.08, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	center := geo.Point{X: 0.5, Y: 0.5}
	var centerDeg, edgeDeg, nc, ne float64
	for i := 0; i < s.Len(); i++ {
		if s.Point(i).Dist(center) < 0.15 {
			centerDeg += float64(s.Degree(i))
			nc++
		} else if s.Point(i).Dist(center) > 0.45 {
			edgeDeg += float64(s.Degree(i))
			ne++
		}
	}
	if nc == 0 || ne == 0 {
		t.Fatal("expected both center and edge states")
	}
	if centerDeg/nc <= edgeDeg/ne {
		t.Errorf("center avg degree %v should exceed edge avg degree %v",
			centerDeg/nc, edgeDeg/ne)
	}
}

func TestNearestState(t *testing.T) {
	s, err := Grid(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		q := geo.Point{X: rng.Float64(), Y: rng.Float64()}
		got := s.NearestState(q)
		// Brute force.
		best, bestD := -1, math.Inf(1)
		for i := 0; i < s.Len(); i++ {
			if d := s.DistTo(i, q); d < bestD {
				best, bestD = i, d
			}
		}
		if s.DistTo(got, q) > bestD+1e-12 {
			t.Fatalf("NearestState(%v) = %d (d=%v), brute force %d (d=%v)",
				q, got, s.DistTo(got, q), best, bestD)
		}
	}
}

func TestStatesWithin(t *testing.T) {
	s, err := Grid(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	q := s.Point(12) // center state
	got := s.StatesWithin(q, 0.19)
	// Grid spacing is 1/5 = 0.2, so only the state itself qualifies.
	if len(got) != 1 || got[0] != 12 {
		t.Errorf("StatesWithin small r = %v", got)
	}
	got = s.StatesWithin(q, 0.21)
	if len(got) != 5 { // center + 4-neighbourhood
		t.Errorf("StatesWithin r=0.21: got %d states %v, want 5", len(got), got)
	}
	all := s.StatesWithin(q, 10)
	if len(all) != 25 {
		t.Errorf("StatesWithin big r = %d states, want all 25", len(all))
	}
}

func TestTransitionMatrixStochastic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s, err := Synthetic(800, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	m := s.TransitionMatrix(0.5)
	if err := m.ValidateStochastic(1e-9); err != nil {
		t.Fatal(err)
	}
	// Cached: same pointer on second call.
	if s.TransitionMatrix(0.5) != m {
		t.Error("TransitionMatrix should be cached")
	}
	// Closer neighbours should get more probability than farther ones.
	for i := 0; i < s.Len(); i++ {
		nbs := s.Neighbors(i)
		for a := 0; a < len(nbs); a++ {
			for b := a + 1; b < len(nbs); b++ {
				da, db := s.Dist(i, int(nbs[a])), s.Dist(i, int(nbs[b]))
				pa, pb := m.At(i, int(nbs[a])), m.At(i, int(nbs[b]))
				if da < db && pa < pb-1e-12 {
					t.Fatalf("state %d: closer neighbour %d (d=%v, p=%v) got less mass than %d (d=%v, p=%v)",
						i, nbs[a], da, pa, nbs[b], db, pb)
				}
			}
		}
		if i > 50 {
			break // spot check is enough
		}
	}
}

func TestTransitionMatrixIsolatedState(t *testing.T) {
	pts := []geo.Point{{X: 0, Y: 0}, {X: 1, Y: 1}}
	s, err := New(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := s.TransitionMatrix(0)
	if m.At(0, 0) != 1 || m.At(1, 1) != 1 {
		t.Error("isolated states need probability-1 self-loops")
	}
}

func TestBuildTransitionMatrixNegativeWeight(t *testing.T) {
	s, err := Line(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.BuildTransitionMatrix(func(i, j int) float64 { return -1 }); err == nil {
		t.Error("expected negative-weight error")
	}
}

func TestShortestPath(t *testing.T) {
	s, err := Grid(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := s.ShortestPath(0, 15)
	if p == nil {
		t.Fatal("no path found")
	}
	if p[0] != 0 || p[len(p)-1] != 15 {
		t.Fatalf("path endpoints wrong: %v", p)
	}
	// Manhattan distance on a 4x4 grid from corner to corner is 6 hops.
	if len(p) != 7 {
		t.Errorf("path length = %d states, want 7", len(p))
	}
	// Consecutive states must be adjacent.
	for i := 1; i < len(p); i++ {
		adjacent := false
		for _, nb := range s.Neighbors(p[i-1]) {
			if int(nb) == p[i] {
				adjacent = true
			}
		}
		if !adjacent {
			t.Fatalf("path step %d→%d not an edge", p[i-1], p[i])
		}
	}
	if got := s.ShortestPath(3, 3); len(got) != 1 || got[0] != 3 {
		t.Errorf("trivial path = %v", got)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	pts := []geo.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 5, Y: 5}}
	adj := [][]int32{{1}, {0}, nil}
	s, err := New(pts, adj)
	if err != nil {
		t.Fatal(err)
	}
	if p := s.ShortestPath(0, 2); p != nil {
		t.Errorf("expected nil path, got %v", p)
	}
}

func TestHopDistances(t *testing.T) {
	s, err := Line(5)
	if err != nil {
		t.Fatal(err)
	}
	d := s.HopDistances(2)
	want := []int{2, 1, 0, 1, 2}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("HopDistances[%d] = %d, want %d", i, d[i], want[i])
		}
	}
	// Disconnected state.
	pts := []geo.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 9, Y: 9}}
	s2, _ := New(pts, [][]int32{{1}, {0}, nil})
	d2 := s2.HopDistances(0)
	if d2[2] != -1 {
		t.Errorf("unreachable state distance = %d, want -1", d2[2])
	}
}

func TestShortestPathIsShortest(t *testing.T) {
	// On a synthetic network, the Dijkstra path length must never exceed
	// the straight-line distance by less than a factor of 1 (sanity) and
	// each edge must be a real edge.
	rng := rand.New(rand.NewSource(6))
	s, err := Synthetic(300, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		a, b := rng.Intn(s.Len()), rng.Intn(s.Len())
		p := s.ShortestPath(a, b)
		if p == nil {
			continue // disconnected component is fine
		}
		total := 0.0
		for i := 1; i < len(p); i++ {
			total += s.Dist(p[i-1], p[i])
		}
		if straight := s.Dist(a, b); total < straight-1e-9 {
			t.Fatalf("path shorter than straight line: %v < %v", total, straight)
		}
	}
}

func BenchmarkNearestState(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s, err := Synthetic(10000, 8, rng)
	if err != nil {
		b.Fatal(err)
	}
	qs := make([]geo.Point, 256)
	for i := range qs {
		qs[i] = geo.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.NearestState(qs[i%len(qs)])
	}
}
