// Package space models the discrete state space S ⊂ R² of the paper: a
// finite set of possible locations embedded in the plane, connected into a
// motion network. It provides the builders used by the experimental
// evaluation (uniform synthetic networks with a configurable branching
// factor, grids for indoor scenarios, and center-skewed city networks for
// the taxi simulator), a nearest-state grid index, and shortest paths.
package space

import (
	"fmt"
	"sync"

	"pnn/internal/geo"
	"pnn/internal/sparse"
)

// Space is an immutable discrete state space: points s_1..s_|S| plus a
// symmetric neighbourhood relation. State indices are dense ints in
// [0, Len()).
type Space struct {
	pts    []geo.Point
	adj    [][]int32 // sorted neighbour lists, excluding self
	bounds geo.Rect
	index  *gridIndex

	transitions *sparse.CSR // lazily built default chain; see TransitionMatrix

	// Scratch state for ShortestPath, reset via epoch stamps.
	pathMu    sync.Mutex
	pathDist  []float64
	pathPrev  []int32
	pathSeen  []uint32
	pathEpoch uint32
}

// New assembles a Space from points and a neighbour relation. adj may be
// nil, in which case the space has no edges (every state is isolated).
// Neighbour lists are defensively sorted; self-edges and out-of-range
// entries are rejected.
func New(pts []geo.Point, adj [][]int32) (*Space, error) {
	if adj == nil {
		adj = make([][]int32, len(pts))
	}
	if len(adj) != len(pts) {
		return nil, fmt.Errorf("space: %d points but %d adjacency rows", len(pts), len(adj))
	}
	s := &Space{pts: pts, adj: adj, bounds: geo.RectFromPoints(pts...)}
	for i, row := range adj {
		for _, j := range row {
			if int(j) < 0 || int(j) >= len(pts) {
				return nil, fmt.Errorf("space: state %d has out-of-range neighbour %d", i, j)
			}
			if int(j) == i {
				return nil, fmt.Errorf("space: state %d has a self-edge", i)
			}
		}
		sortInt32(row)
	}
	s.index = newGridIndex(pts, s.bounds)
	return s, nil
}

// Len returns the number of states |S|.
func (s *Space) Len() int { return len(s.pts) }

// Point returns the location of state i.
func (s *Space) Point(i int) geo.Point { return s.pts[i] }

// Points returns the backing point slice. It must not be modified.
func (s *Space) Points() []geo.Point { return s.pts }

// Bounds returns the minimum bounding rectangle of all states.
func (s *Space) Bounds() geo.Rect { return s.bounds }

// Neighbors returns the sorted neighbour list of state i. The slice aliases
// internal storage and must not be modified.
func (s *Space) Neighbors(i int) []int32 { return s.adj[i] }

// Degree returns the number of neighbours of state i.
func (s *Space) Degree(i int) int { return len(s.adj[i]) }

// AvgDegree returns the average vertex degree (the realized branching
// factor b of the paper's synthetic networks).
func (s *Space) AvgDegree() float64 {
	if len(s.pts) == 0 {
		return 0
	}
	total := 0
	for _, row := range s.adj {
		total += len(row)
	}
	return float64(total) / float64(len(s.pts))
}

// Dist returns the Euclidean distance between states i and j.
func (s *Space) Dist(i, j int) float64 { return s.pts[i].Dist(s.pts[j]) }

// DistTo returns the Euclidean distance between state i and an arbitrary
// point q.
func (s *Space) DistTo(i int, q geo.Point) float64 { return s.pts[i].Dist(q) }

// NearestState returns the state index closest to p, breaking ties towards
// the lower index. It panics on an empty space.
func (s *Space) NearestState(p geo.Point) int {
	return s.index.nearest(p, s.pts)
}

// StatesWithin returns all state indices within Euclidean distance r of p,
// in ascending index order.
func (s *Space) StatesWithin(p geo.Point, r float64) []int {
	return s.index.within(p, r, s.pts)
}

// TransitionMatrix returns the default a-priori Markov chain over this
// space: from each state, transition probability to each neighbour is
// inversely proportional to edge length (closer states are more likely, as
// in the paper's synthetic networks), plus a self-loop weight selfWeight
// that lets objects idle. Isolated states get a probability-1 self-loop.
// The result is cached: the matrix is immutable.
func (s *Space) TransitionMatrix(selfWeight float64) *sparse.CSR {
	if s.transitions != nil {
		return s.transitions
	}
	m, err := s.BuildTransitionMatrix(func(i, j int) float64 {
		if i == j {
			return selfWeight
		}
		d := s.Dist(i, j)
		if d == 0 {
			d = 1e-12
		}
		return 1 / d
	})
	if err != nil {
		// BuildTransitionMatrix only fails on negative weights, which the
		// closure above cannot produce for selfWeight >= 0.
		panic(err)
	}
	s.transitions = m
	return m
}

// BuildTransitionMatrix constructs a row-stochastic CSR chain from an
// arbitrary non-negative weight function over the edges of the space
// (including the self-edge (i, i)). Rows whose total weight is zero receive
// a probability-1 self-loop so the chain never loses mass.
func (s *Space) BuildTransitionMatrix(weight func(i, j int) float64) (*sparse.CSR, error) {
	elems := make([]sparse.Triplet, 0, len(s.pts)*4)
	for i := range s.pts {
		wSelf := weight(i, i)
		if wSelf < 0 {
			return nil, fmt.Errorf("space: negative self weight at state %d", i)
		}
		total := wSelf
		for _, j := range s.adj[i] {
			w := weight(i, int(j))
			if w < 0 {
				return nil, fmt.Errorf("space: negative weight on edge (%d,%d)", i, j)
			}
			total += w
		}
		if total == 0 {
			elems = append(elems, sparse.Triplet{Row: i, Col: i, Val: 1})
			continue
		}
		if wSelf > 0 {
			elems = append(elems, sparse.Triplet{Row: i, Col: i, Val: wSelf / total})
		}
		for _, j := range s.adj[i] {
			if w := weight(i, int(j)); w > 0 {
				elems = append(elems, sparse.Triplet{Row: i, Col: int(j), Val: w / total})
			}
		}
	}
	return sparse.NewCSR(len(s.pts), elems)
}

func sortInt32(a []int32) {
	// Insertion sort: neighbour lists are short (≈ branching factor).
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
