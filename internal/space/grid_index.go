package space

import (
	"math"
	"sort"

	"pnn/internal/geo"
)

// gridIndex is a uniform spatial hash over the state points, used for
// nearest-state lookup and radius queries. Cell size is chosen so that the
// expected occupancy is a small constant.
type gridIndex struct {
	origin geo.Point
	cell   float64
	nx, ny int
	cells  [][]int32
}

func newGridIndex(pts []geo.Point, bounds geo.Rect) *gridIndex {
	g := &gridIndex{origin: bounds.Lo, cell: 1, nx: 1, ny: 1}
	if len(pts) == 0 || bounds.IsEmpty() {
		g.cells = make([][]int32, 1)
		return g
	}
	w := bounds.Hi.X - bounds.Lo.X
	h := bounds.Hi.Y - bounds.Lo.Y
	// Aim for ~1 point per cell on average.
	target := math.Sqrt(math.Max(w*h, 1e-12) / float64(len(pts)))
	if target <= 0 || math.IsNaN(target) {
		target = 1
	}
	g.cell = target
	g.nx = int(w/g.cell) + 1
	g.ny = int(h/g.cell) + 1
	g.cells = make([][]int32, g.nx*g.ny)
	for i, p := range pts {
		c := g.cellOf(p)
		g.cells[c] = append(g.cells[c], int32(i))
	}
	return g
}

func (g *gridIndex) cellCoords(p geo.Point) (int, int) {
	cx := int((p.X - g.origin.X) / g.cell)
	cy := int((p.Y - g.origin.Y) / g.cell)
	if cx < 0 {
		cx = 0
	}
	if cx >= g.nx {
		cx = g.nx - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= g.ny {
		cy = g.ny - 1
	}
	return cx, cy
}

func (g *gridIndex) cellOf(p geo.Point) int {
	cx, cy := g.cellCoords(p)
	return cy*g.nx + cx
}

// nearest returns the index of the point closest to q, scanning grid rings
// outward until the best candidate provably beats all unvisited cells.
func (g *gridIndex) nearest(q geo.Point, pts []geo.Point) int {
	if len(pts) == 0 {
		panic("space: nearest on empty index")
	}
	cx, cy := g.cellCoords(q)
	best := -1
	bestD := math.Inf(1)
	maxRing := g.nx
	if g.ny > maxRing {
		maxRing = g.ny
	}
	for ring := 0; ring <= maxRing; ring++ {
		// Once a candidate is found, stop when the nearest possible point
		// in the next unexplored ring cannot beat it.
		if best >= 0 && float64(ring-1)*g.cell > bestD {
			break
		}
		for dy := -ring; dy <= ring; dy++ {
			for dx := -ring; dx <= ring; dx++ {
				if abs(dx) != ring && abs(dy) != ring {
					continue // interior cells already scanned
				}
				x, y := cx+dx, cy+dy
				if x < 0 || x >= g.nx || y < 0 || y >= g.ny {
					continue
				}
				for _, idx := range g.cells[y*g.nx+x] {
					d := q.Dist(pts[idx])
					if d < bestD || (d == bestD && int(idx) < best) {
						bestD = d
						best = int(idx)
					}
				}
			}
		}
	}
	return best
}

// within returns every index with Dist(q) <= r in ascending order.
func (g *gridIndex) within(q geo.Point, r float64, pts []geo.Point) []int {
	var out []int
	if len(pts) == 0 {
		return out
	}
	loX, loY := g.cellCoords(geo.Point{X: q.X - r, Y: q.Y - r})
	hiX, hiY := g.cellCoords(geo.Point{X: q.X + r, Y: q.Y + r})
	for y := loY; y <= hiY; y++ {
		for x := loX; x <= hiX; x++ {
			for _, idx := range g.cells[y*g.nx+x] {
				if q.Dist(pts[idx]) <= r {
					out = append(out, int(idx))
				}
			}
		}
	}
	sortInts(out)
	return out
}

func sortInts(a []int) { sort.Ints(a) }

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
