// Package geo provides the planar geometry primitives used throughout the
// library: points, axis-aligned rectangles, and the minimum/maximum distance
// functions (dmin/dmax) that power spatio-temporal pruning (Section 6 of the
// paper).
//
// All coordinates are float64 and distances are Euclidean, matching the
// paper's distance function d(x, y).
package geo

import (
	"fmt"
	"math"
)

// Point is a location in the two-dimensional Euclidean plane.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// SqDist returns the squared Euclidean distance between p and q. It avoids
// the square root for comparison-only code paths.
func (p Point) SqDist(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Add returns the component-wise sum p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the component-wise difference p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by f.
func (p Point) Scale(f float64) Point { return Point{p.X * f, p.Y * f} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.4g, %.4g)", p.X, p.Y) }

// Rect is a closed axis-aligned rectangle [Lo.X, Hi.X] × [Lo.Y, Hi.Y].
// The zero value is the degenerate rectangle at the origin; use EmptyRect
// for an identity element under Union.
type Rect struct {
	Lo, Hi Point
}

// EmptyRect returns the empty rectangle: the identity element for Union and
// a rectangle that contains no point.
func EmptyRect() Rect {
	return Rect{
		Lo: Point{math.Inf(1), math.Inf(1)},
		Hi: Point{math.Inf(-1), math.Inf(-1)},
	}
}

// RectFromPoint returns the degenerate rectangle containing exactly p.
func RectFromPoint(p Point) Rect { return Rect{Lo: p, Hi: p} }

// RectFromPoints returns the minimum bounding rectangle of pts. It returns
// EmptyRect for an empty slice.
func RectFromPoints(pts ...Point) Rect {
	r := EmptyRect()
	for _, p := range pts {
		r = r.ExtendPoint(p)
	}
	return r
}

// IsEmpty reports whether r contains no point.
func (r Rect) IsEmpty() bool { return r.Lo.X > r.Hi.X || r.Lo.Y > r.Hi.Y }

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Lo.X && p.X <= r.Hi.X && p.Y >= r.Lo.Y && p.Y <= r.Hi.Y
}

// ContainsRect reports whether s is entirely inside r (boundary inclusive).
func (r Rect) ContainsRect(s Rect) bool {
	if s.IsEmpty() {
		return true
	}
	return r.Contains(s.Lo) && r.Contains(s.Hi)
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return false
	}
	return r.Lo.X <= s.Hi.X && s.Lo.X <= r.Hi.X && r.Lo.Y <= s.Hi.Y && s.Lo.Y <= r.Hi.Y
}

// Union returns the minimum bounding rectangle of r and s.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	return Rect{
		Lo: Point{math.Min(r.Lo.X, s.Lo.X), math.Min(r.Lo.Y, s.Lo.Y)},
		Hi: Point{math.Max(r.Hi.X, s.Hi.X), math.Max(r.Hi.Y, s.Hi.Y)},
	}
}

// Intersect returns the common region of r and s, which may be empty.
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		Lo: Point{math.Max(r.Lo.X, s.Lo.X), math.Max(r.Lo.Y, s.Lo.Y)},
		Hi: Point{math.Min(r.Hi.X, s.Hi.X), math.Min(r.Hi.Y, s.Hi.Y)},
	}
	if out.IsEmpty() {
		return EmptyRect()
	}
	return out
}

// ExtendPoint returns the minimum bounding rectangle of r and p.
func (r Rect) ExtendPoint(p Point) Rect {
	return r.Union(RectFromPoint(p))
}

// Area returns the area of r; empty rectangles have area 0.
func (r Rect) Area() float64 {
	if r.IsEmpty() {
		return 0
	}
	return (r.Hi.X - r.Lo.X) * (r.Hi.Y - r.Lo.Y)
}

// Margin returns half the perimeter of r (the R*-tree "margin" measure).
func (r Rect) Margin() float64 {
	if r.IsEmpty() {
		return 0
	}
	return (r.Hi.X - r.Lo.X) + (r.Hi.Y - r.Lo.Y)
}

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{(r.Lo.X + r.Hi.X) / 2, (r.Lo.Y + r.Hi.Y) / 2}
}

// MinDist returns dmin(p, r): the smallest Euclidean distance between p and
// any point of r. It is 0 when p lies inside r. MinDist on an empty
// rectangle returns +Inf.
func (r Rect) MinDist(p Point) float64 {
	if r.IsEmpty() {
		return math.Inf(1)
	}
	dx := axisDist(p.X, r.Lo.X, r.Hi.X)
	dy := axisDist(p.Y, r.Lo.Y, r.Hi.Y)
	return math.Sqrt(dx*dx + dy*dy)
}

// MaxDist returns dmax(p, r): the largest Euclidean distance between p and
// any point of r. MaxDist on an empty rectangle returns -Inf so that empty
// approximations can never act as pruners.
func (r Rect) MaxDist(p Point) float64 {
	if r.IsEmpty() {
		return math.Inf(-1)
	}
	dx := math.Max(math.Abs(p.X-r.Lo.X), math.Abs(p.X-r.Hi.X))
	dy := math.Max(math.Abs(p.Y-r.Lo.Y), math.Abs(p.Y-r.Hi.Y))
	return math.Sqrt(dx*dx + dy*dy)
}

// MinDistRect returns dmin(r, s): the smallest distance between any point of
// r and any point of s; 0 if they intersect.
func (r Rect) MinDistRect(s Rect) float64 {
	if r.IsEmpty() || s.IsEmpty() {
		return math.Inf(1)
	}
	dx := gapDist(r.Lo.X, r.Hi.X, s.Lo.X, s.Hi.X)
	dy := gapDist(r.Lo.Y, r.Hi.Y, s.Lo.Y, s.Hi.Y)
	return math.Sqrt(dx*dx + dy*dy)
}

// MaxDistRect returns dmax(r, s): the largest distance between any point of
// r and any point of s.
func (r Rect) MaxDistRect(s Rect) float64 {
	if r.IsEmpty() || s.IsEmpty() {
		return math.Inf(-1)
	}
	dx := spanDist(r.Lo.X, r.Hi.X, s.Lo.X, s.Hi.X)
	dy := spanDist(r.Lo.Y, r.Hi.Y, s.Lo.Y, s.Hi.Y)
	return math.Sqrt(dx*dx + dy*dy)
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	if r.IsEmpty() {
		return "Rect{empty}"
	}
	return fmt.Sprintf("Rect{%v-%v}", r.Lo, r.Hi)
}

// axisDist returns the distance from v to the interval [lo, hi] on one axis.
func axisDist(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo - v
	case v > hi:
		return v - hi
	default:
		return 0
	}
}

// gapDist returns the gap between intervals [alo, ahi] and [blo, bhi];
// 0 when they overlap.
func gapDist(alo, ahi, blo, bhi float64) float64 {
	switch {
	case ahi < blo:
		return blo - ahi
	case bhi < alo:
		return alo - bhi
	default:
		return 0
	}
}

// spanDist returns the largest one-axis distance between a point of
// [alo, ahi] and a point of [blo, bhi].
func spanDist(alo, ahi, blo, bhi float64) float64 {
	return math.Max(math.Abs(ahi-blo), math.Abs(bhi-alo))
}
