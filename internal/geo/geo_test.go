package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Point{1, 2}, Point{1, 2}, 0},
		{"unit x", Point{0, 0}, Point{1, 0}, 1},
		{"unit y", Point{0, 0}, Point{0, 1}, 1},
		{"3-4-5", Point{0, 0}, Point{3, 4}, 5},
		{"negative coords", Point{-1, -1}, Point{2, 3}, 5},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.p.Dist(tc.q); math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("Dist(%v, %v) = %v, want %v", tc.p, tc.q, got, tc.want)
			}
			if got := tc.p.SqDist(tc.q); math.Abs(got-tc.want*tc.want) > 1e-12 {
				t.Errorf("SqDist(%v, %v) = %v, want %v", tc.p, tc.q, got, tc.want*tc.want)
			}
		})
	}
}

func TestPointDistSymmetry(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		p, q := Point{ax, ay}, Point{bx, by}
		return p.Dist(q) == q.Dist(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -1}
	if got := p.Add(q); got != (Point{4, 1}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
}

func TestEmptyRect(t *testing.T) {
	e := EmptyRect()
	if !e.IsEmpty() {
		t.Fatal("EmptyRect should be empty")
	}
	if e.Area() != 0 {
		t.Errorf("empty area = %v, want 0", e.Area())
	}
	if e.Contains(Point{0, 0}) {
		t.Error("empty rect should contain nothing")
	}
	r := Rect{Point{0, 0}, Point{1, 1}}
	if got := e.Union(r); got != r {
		t.Errorf("empty union r = %v, want %v", got, r)
	}
	if got := r.Union(e); got != r {
		t.Errorf("r union empty = %v, want %v", got, r)
	}
	if !math.IsInf(e.MinDist(Point{0, 0}), 1) {
		t.Error("MinDist to empty rect should be +Inf")
	}
	if !math.IsInf(e.MaxDist(Point{0, 0}), -1) {
		t.Error("MaxDist to empty rect should be -Inf")
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{Point{0, 0}, Point{2, 2}}
	for _, p := range []Point{{0, 0}, {2, 2}, {1, 1}, {0, 2}} {
		if !r.Contains(p) {
			t.Errorf("expected %v contained in %v", p, r)
		}
	}
	for _, p := range []Point{{-0.001, 0}, {2.001, 2}, {1, 3}} {
		if r.Contains(p) {
			t.Errorf("expected %v not contained in %v", p, r)
		}
	}
}

func TestRectIntersects(t *testing.T) {
	a := Rect{Point{0, 0}, Point{2, 2}}
	tests := []struct {
		name string
		b    Rect
		want bool
	}{
		{"overlapping", Rect{Point{1, 1}, Point{3, 3}}, true},
		{"touching edge", Rect{Point{2, 0}, Point{3, 2}}, true},
		{"touching corner", Rect{Point{2, 2}, Point{3, 3}}, true},
		{"disjoint x", Rect{Point{2.1, 0}, Point{3, 2}}, false},
		{"disjoint y", Rect{Point{0, 2.1}, Point{2, 3}}, false},
		{"contained", Rect{Point{0.5, 0.5}, Point{1, 1}}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := a.Intersects(tc.b); got != tc.want {
				t.Errorf("Intersects = %v, want %v", got, tc.want)
			}
			if got := tc.b.Intersects(a); got != tc.want {
				t.Errorf("Intersects not symmetric")
			}
		})
	}
}

func TestRectUnionIntersect(t *testing.T) {
	a := Rect{Point{0, 0}, Point{2, 2}}
	b := Rect{Point{1, 1}, Point{3, 4}}
	u := a.Union(b)
	if u != (Rect{Point{0, 0}, Point{3, 4}}) {
		t.Errorf("Union = %v", u)
	}
	i := a.Intersect(b)
	if i != (Rect{Point{1, 1}, Point{2, 2}}) {
		t.Errorf("Intersect = %v", i)
	}
	if got := a.Intersect(Rect{Point{5, 5}, Point{6, 6}}); !got.IsEmpty() {
		t.Errorf("disjoint Intersect = %v, want empty", got)
	}
}

func TestRectAreaMargin(t *testing.T) {
	r := Rect{Point{0, 0}, Point{3, 4}}
	if r.Area() != 12 {
		t.Errorf("Area = %v", r.Area())
	}
	if r.Margin() != 7 {
		t.Errorf("Margin = %v", r.Margin())
	}
	if r.Center() != (Point{1.5, 2}) {
		t.Errorf("Center = %v", r.Center())
	}
}

func TestMinMaxDistPoint(t *testing.T) {
	r := Rect{Point{1, 1}, Point{3, 3}}
	tests := []struct {
		name     string
		p        Point
		min, max float64
	}{
		{"inside", Point{2, 2}, 0, math.Sqrt(2)},
		{"left", Point{0, 2}, 1, math.Sqrt(9 + 1)},
		{"corner diag", Point{0, 0}, math.Sqrt(2), math.Sqrt(18)},
		{"on boundary", Point{1, 2}, 0, math.Sqrt(4 + 1)},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := r.MinDist(tc.p); math.Abs(got-tc.min) > 1e-12 {
				t.Errorf("MinDist = %v, want %v", got, tc.min)
			}
			if got := r.MaxDist(tc.p); math.Abs(got-tc.max) > 1e-12 {
				t.Errorf("MaxDist = %v, want %v", got, tc.max)
			}
		})
	}
}

// TestMinMaxDistBracketsSamples verifies that for random rectangles, the
// distance from a query point to any sampled point inside the rectangle lies
// within [MinDist, MaxDist].
func TestMinMaxDistBracketsSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		lo := Point{rng.Float64() * 10, rng.Float64() * 10}
		hi := Point{lo.X + rng.Float64()*5, lo.Y + rng.Float64()*5}
		r := Rect{lo, hi}
		q := Point{rng.Float64()*20 - 5, rng.Float64()*20 - 5}
		dmin, dmax := r.MinDist(q), r.MaxDist(q)
		for j := 0; j < 20; j++ {
			p := Point{
				lo.X + rng.Float64()*(hi.X-lo.X),
				lo.Y + rng.Float64()*(hi.Y-lo.Y),
			}
			d := q.Dist(p)
			if d < dmin-1e-9 || d > dmax+1e-9 {
				t.Fatalf("dist %v outside [%v, %v] for rect %v query %v", d, dmin, dmax, r, q)
			}
		}
		// Corners must achieve MaxDist.
		corners := []Point{lo, hi, {lo.X, hi.Y}, {hi.X, lo.Y}}
		best := 0.0
		for _, c := range corners {
			if d := q.Dist(c); d > best {
				best = d
			}
		}
		if math.Abs(best-dmax) > 1e-9 {
			t.Fatalf("MaxDist %v not achieved by corners (best %v)", dmax, best)
		}
	}
}

func TestMinMaxDistRect(t *testing.T) {
	a := Rect{Point{0, 0}, Point{1, 1}}
	b := Rect{Point{3, 0}, Point{4, 1}}
	if got := a.MinDistRect(b); math.Abs(got-2) > 1e-12 {
		t.Errorf("MinDistRect = %v, want 2", got)
	}
	if got := a.MaxDistRect(b); math.Abs(got-math.Sqrt(16+1)) > 1e-12 {
		t.Errorf("MaxDistRect = %v, want sqrt(17)", got)
	}
	// Overlapping rects have dmin 0.
	c := Rect{Point{0.5, 0.5}, Point{2, 2}}
	if got := a.MinDistRect(c); got != 0 {
		t.Errorf("overlapping MinDistRect = %v, want 0", got)
	}
}

// TestMinMaxDistRectBracketsSamples cross-validates rect-rect distances
// against sampled point pairs.
func TestMinMaxDistRectBracketsSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randRect := func() Rect {
		lo := Point{rng.Float64() * 10, rng.Float64() * 10}
		return Rect{lo, Point{lo.X + rng.Float64()*4, lo.Y + rng.Float64()*4}}
	}
	sample := func(r Rect) Point {
		return Point{
			r.Lo.X + rng.Float64()*(r.Hi.X-r.Lo.X),
			r.Lo.Y + rng.Float64()*(r.Hi.Y-r.Lo.Y),
		}
	}
	for i := 0; i < 100; i++ {
		a, b := randRect(), randRect()
		dmin, dmax := a.MinDistRect(b), a.MaxDistRect(b)
		if math.Abs(dmin-b.MinDistRect(a)) > 1e-12 || math.Abs(dmax-b.MaxDistRect(a)) > 1e-12 {
			t.Fatal("rect-rect distances not symmetric")
		}
		for j := 0; j < 30; j++ {
			d := sample(a).Dist(sample(b))
			if d < dmin-1e-9 || d > dmax+1e-9 {
				t.Fatalf("dist %v outside [%v, %v]", d, dmin, dmax)
			}
		}
	}
}

func TestRectFromPoints(t *testing.T) {
	r := RectFromPoints(Point{1, 5}, Point{-2, 3}, Point{0, 7})
	want := Rect{Point{-2, 3}, Point{1, 7}}
	if r != want {
		t.Errorf("RectFromPoints = %v, want %v", r, want)
	}
	if !RectFromPoints().IsEmpty() {
		t.Error("RectFromPoints() should be empty")
	}
}

func TestContainsRect(t *testing.T) {
	outer := Rect{Point{0, 0}, Point{10, 10}}
	if !outer.ContainsRect(Rect{Point{1, 1}, Point{9, 9}}) {
		t.Error("expected containment")
	}
	if !outer.ContainsRect(outer) {
		t.Error("rect should contain itself")
	}
	if outer.ContainsRect(Rect{Point{1, 1}, Point{11, 9}}) {
		t.Error("should not contain overflowing rect")
	}
	if !outer.ContainsRect(EmptyRect()) {
		t.Error("any rect contains the empty rect")
	}
}

func TestUnionProperties(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		a := RectFromPoints(Point{ax, ay}, Point{bx, by})
		b := RectFromPoints(Point{cx, cy}, Point{dx, dy})
		u := a.Union(b)
		return u.ContainsRect(a) && u.ContainsRect(b) && u == b.Union(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
