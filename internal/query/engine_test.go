package query

import (
	"math"
	"math/rand"
	"testing"

	"pnn/internal/geo"
	"pnn/internal/inference"
	"pnn/internal/markov"
	"pnn/internal/space"
	"pnn/internal/uncertain"
	"pnn/internal/ustree"
)

// lineDB builds a database on a 60-state line with the given observation
// sets, returning the tree and an engine.
func lineDB(t testing.TB, samples int, obsSets ...[]uncertain.Observation) (*space.Space, *ustree.Tree, *Engine) {
	t.Helper()
	sp, err := space.Line(60)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sp.BuildTransitionMatrix(func(i, j int) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	h, err := markov.NewHomogeneous(m)
	if err != nil {
		t.Fatal(err)
	}
	var objs []*uncertain.Object
	for id, obs := range obsSets {
		o, err := uncertain.NewObject(id, obs, h)
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, o)
	}
	tree, err := ustree.Build(sp, objs, nil)
	if err != nil {
		t.Fatal(err)
	}
	return sp, tree, NewEngine(tree, samples)
}

// exactFromDB converts the database objects to explicit WorldObjects via
// their adapted models (posterior path law).
func exactFromDB(t testing.TB, tree *ustree.Tree) []WorldObject {
	t.Helper()
	var out []WorldObject
	for _, o := range tree.Objects() {
		m, err := inference.Adapt(o)
		if err != nil {
			t.Fatal(err)
		}
		wo, err := PathsOfModel(m, 100000)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, wo)
	}
	return out
}

func TestEngineMatchesExact(t *testing.T) {
	sp, tree, eng := lineDB(t, 25000,
		[]uncertain.Observation{{T: 0, State: 30}, {T: 6, State: 32}},
		[]uncertain.Observation{{T: 0, State: 34}, {T: 6, State: 30}},
		[]uncertain.Observation{{T: 0, State: 26}, {T: 6, State: 28}},
	)
	objs := exactFromDB(t, tree)
	q := StateQuery(sp.Point(30))
	const ts, te = 1, 5

	exact, err := ExactNN(sp, objs, q, ts, te, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	forall, stats, err := eng.ForAllNN(q, ts, te, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	exists, _, err := eng.ExistsNN(q, ts, te, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Candidates == 0 || stats.Influencers < stats.Candidates {
		t.Errorf("implausible stats: %+v", stats)
	}
	getProb := func(res []Result, oi int) float64 {
		for _, r := range res {
			if r.Obj == oi {
				return r.Prob
			}
		}
		return 0
	}
	for oi := range objs {
		gotF := getProb(forall, oi)
		gotE := getProb(exists, oi)
		if math.Abs(gotF-exact.ForAll[oi]) > 0.02 {
			t.Errorf("object %d: MC P∀NN = %v, exact = %v", oi, gotF, exact.ForAll[oi])
		}
		if math.Abs(gotE-exact.Exists[oi]) > 0.02 {
			t.Errorf("object %d: MC P∃NN = %v, exact = %v", oi, gotE, exact.Exists[oi])
		}
		if gotF > gotE+1e-9 {
			t.Errorf("object %d: P∀NN (%v) exceeds P∃NN (%v)", oi, gotF, gotE)
		}
	}
}

func TestEngineTauFilter(t *testing.T) {
	sp, _, eng := lineDB(t, 2000,
		[]uncertain.Observation{{T: 0, State: 30}, {T: 6, State: 30}},
		[]uncertain.Observation{{T: 0, State: 34}, {T: 6, State: 34}},
	)
	q := StateQuery(sp.Point(30))
	rng := rand.New(rand.NewSource(1))
	res, _, err := eng.ForAllNN(q, 1, 5, 0.9, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Object 0 hovers around state 30 and dominates; only it should pass
	// τ=0.9.
	if len(res) != 1 || res[0].Obj != 0 {
		t.Errorf("ForAllNN τ=0.9 = %+v, want only object 0", res)
	}
	if res[0].Prob < 0.9 {
		t.Errorf("reported prob %v below τ", res[0].Prob)
	}
}

func TestEngineInvertedInterval(t *testing.T) {
	_, _, eng := lineDB(t, 100,
		[]uncertain.Observation{{T: 0, State: 30}, {T: 6, State: 30}})
	rng := rand.New(rand.NewSource(1))
	if _, _, err := eng.ForAllNN(StateQuery(geo.Point{}), 5, 1, 0, rng); err == nil {
		t.Error("expected error for inverted interval")
	}
	if _, _, err := eng.CNN(StateQuery(geo.Point{}), 5, 1, 0.5, rng); err == nil {
		t.Error("expected error for inverted interval")
	}
}

func TestEngineEmptyWindow(t *testing.T) {
	_, _, eng := lineDB(t, 100,
		[]uncertain.Observation{{T: 0, State: 30}, {T: 6, State: 30}})
	rng := rand.New(rand.NewSource(1))
	res, stats, err := eng.ForAllNN(StateQuery(geo.Point{}), 50, 55, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 || stats.Candidates != 0 {
		t.Errorf("no object alive: res=%v stats=%+v", res, stats)
	}
}

func TestEngineKNN(t *testing.T) {
	sp, _, eng := lineDB(t, 4000,
		[]uncertain.Observation{{T: 0, State: 30}, {T: 6, State: 30}},
		[]uncertain.Observation{{T: 0, State: 33}, {T: 6, State: 33}},
		[]uncertain.Observation{{T: 0, State: 36}, {T: 6, State: 36}},
	)
	q := StateQuery(sp.Point(30))
	rng := rand.New(rand.NewSource(2))
	// k = 3 = |D|: every object alive throughout is trivially a 3-NN.
	res, _, err := eng.ForAllKNN(q, 1, 5, 3, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("ForAllKNN k=3 returned %d objects, want 3", len(res))
	}
	for _, r := range res {
		if math.Abs(r.Prob-1) > 1e-12 {
			t.Errorf("object %d: P∀3NN = %v, want 1", r.Obj, r.Prob)
		}
	}
	// k=1 must agree with ForAllNN.
	r1, _, err := eng.ForAllKNN(q, 1, 5, 1, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := eng.ForAllNN(q, 1, 5, 0, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != len(r2) {
		t.Errorf("k=1 (%v) vs ForAllNN (%v) result sets differ in size", r1, r2)
	}
	// P∀2NN >= P∀1NN for the same object.
	p1 := map[int]float64{}
	for _, r := range r1 {
		p1[r.Obj] = r.Prob
	}
	rk, _, err := eng.ForAllKNN(q, 1, 5, 2, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rk {
		if r.Prob < p1[r.Obj]-0.03 {
			t.Errorf("object %d: P∀2NN (%v) < P∀1NN (%v)", r.Obj, r.Prob, p1[r.Obj])
		}
	}
	// ExistsKNN with k=2 should also succeed and dominate ForAllKNN.
	re, _, err := eng.ExistsKNN(q, 1, 5, 2, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	pe := map[int]float64{}
	for _, r := range re {
		pe[r.Obj] = r.Prob
	}
	for _, r := range rk {
		if pe[r.Obj] < r.Prob-0.03 {
			t.Errorf("object %d: P∃2NN (%v) < P∀2NN (%v)", r.Obj, pe[r.Obj], r.Prob)
		}
	}
}

func TestPrepareAllCaches(t *testing.T) {
	_, _, eng := lineDB(t, 10,
		[]uncertain.Observation{{T: 0, State: 30}, {T: 6, State: 30}},
		[]uncertain.Observation{{T: 0, State: 40}, {T: 6, State: 42}},
	)
	d, err := eng.PrepareAll()
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Error("PrepareAll should report positive duration")
	}
	s1, err := eng.Sampler(0)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := eng.Sampler(0)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("samplers must be cached")
	}
	if eng.SampleCount() != 10 {
		t.Errorf("SampleCount = %d", eng.SampleCount())
	}
	if eng.Tree() == nil {
		t.Error("Tree accessor")
	}
}

func TestDominationProbMatchesEnumeration(t *testing.T) {
	sp, tree, _ := lineDB(t, 1,
		[]uncertain.Observation{{T: 0, State: 30}, {T: 6, State: 34}},
		[]uncertain.Observation{{T: 0, State: 33}, {T: 6, State: 29}},
	)
	mo, err := inference.Adapt(tree.Objects()[0])
	if err != nil {
		t.Fatal(err)
	}
	ma, err := inference.Adapt(tree.Objects()[1])
	if err != nil {
		t.Fatal(err)
	}
	q := StateQuery(sp.Point(31))
	const ts, te = 1, 5
	got, err := DominationProb(sp, mo, ma, q, ts, te)
	if err != nil {
		t.Fatal(err)
	}
	// Enumerate: P(∀t: d(o) <= d(oa)).
	objs := exactFromDB(t, tree)
	want := 0.0
	err = EnumerateWorlds(objs, 1<<22, func(paths []uncertain.Path, p float64) {
		for t := ts; t <= te; t++ {
			s0, _ := paths[0].At(t)
			s1, _ := paths[1].At(t)
			if sp.Point(s0).Dist(q.At(t)) > sp.Point(s1).Dist(q.At(t)) {
				return
			}
		}
		want += p
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("DominationProb = %v, enumeration = %v", got, want)
	}
	// With two objects, P∀NN(o) == P(o dominates oa).
	exact, err := ExactNN(sp, objs, q, ts, te, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-exact.ForAll[0]) > 1e-9 {
		t.Errorf("DominationProb (%v) != exact P∀NN (%v)", got, exact.ForAll[0])
	}
}

func TestDominationProbSpanErrors(t *testing.T) {
	sp, tree, _ := lineDB(t, 1,
		[]uncertain.Observation{{T: 0, State: 30}, {T: 4, State: 32}},
		[]uncertain.Observation{{T: 2, State: 33}, {T: 8, State: 35}},
	)
	mo, _ := inference.Adapt(tree.Objects()[0])
	ma, _ := inference.Adapt(tree.Objects()[1])
	q := StateQuery(sp.Point(31))
	if _, err := DominationProb(sp, mo, ma, q, 0, 4); err == nil {
		t.Error("expected span error: second object starts at t=2")
	}
	if _, err := DominationProb(sp, ma, mo, q, 2, 6); err == nil {
		t.Error("expected span error: first object ends at t=4")
	}
}

func TestHoeffding(t *testing.T) {
	n := RequiredSamples(0.01, 0.05)
	if n < 10000 || n > 30000 {
		t.Errorf("RequiredSamples(0.01, 0.05) = %d, outside plausible range", n)
	}
	eps := ErrorBound(n, 0.05)
	if eps > 0.01+1e-9 {
		t.Errorf("round trip ErrorBound = %v > 0.01", eps)
	}
	if RequiredSamples(0, 0.5) != math.MaxInt32 {
		t.Error("eps=0 should demand unbounded samples")
	}
	if ErrorBound(0, 0.5) != 1 {
		t.Error("n=0 should return the trivial bound")
	}
	// More samples, tighter bound.
	if ErrorBound(10000, 0.05) >= ErrorBound(100, 0.05) {
		t.Error("error bound must shrink with n")
	}
}
