package query

import (
	"math/rand"
	"testing"
)

// TestSATReduction validates the Lemma 1 gadget (Figure 2): for random
// small CNF formulas, satisfiability coincides with P∃NN(o) < 1 on the
// constructed PNN instance.
func TestSATReduction(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 60; trial++ {
		vars := 2 + rng.Intn(4)     // 2..5 variables
		nClauses := 1 + rng.Intn(5) // 1..5 clauses
		f := CNF{Vars: vars}
		for c := 0; c < nClauses; c++ {
			// Clause width must not exceed the number of distinct
			// variables, or the literal-drawing loop below cannot finish.
			maxWidth := 3
			if vars < maxWidth {
				maxWidth = vars
			}
			width := 1 + rng.Intn(maxWidth)
			var cl Clause
			used := map[int]bool{}
			for len(cl) < width {
				v := 1 + rng.Intn(vars)
				if used[v] {
					continue
				}
				used[v] = true
				if rng.Intn(2) == 0 {
					cl = append(cl, Literal(v))
				} else {
					cl = append(cl, Literal(-v))
				}
			}
			f.Clauses = append(f.Clauses, cl)
		}
		inst, err := BuildSATInstance(f)
		if err != nil {
			t.Fatal(err)
		}
		p, err := inst.TargetExistsNN(1 << 22)
		if err != nil {
			t.Fatal(err)
		}
		sat := f.Satisfiable()
		if sat && p >= 1-1e-12 {
			t.Errorf("trial %d: formula satisfiable but P∃NN = %v (want < 1)\nCNF: %+v", trial, p, f)
		}
		if !sat && p < 1-1e-12 {
			t.Errorf("trial %d: formula unsatisfiable but P∃NN = %v (want 1)\nCNF: %+v", trial, p, f)
		}
	}
}

// TestSATReductionExample runs the exact 3-SAT example from Section 4.1:
// E = (¬x1 ∨ x2 ∨ x3) ∧ (x2 ∨ ¬x3 ∨ x4) ∧ (x1 ∨ ¬x2), which is
// satisfiable (e.g. x1=x2=true).
func TestSATReductionExample(t *testing.T) {
	f := CNF{
		Vars: 4,
		Clauses: []Clause{
			{-1, 2, 3},
			{2, -3, 4},
			{1, -2},
		},
	}
	if !f.Satisfiable() {
		t.Fatal("the paper's example formula is satisfiable")
	}
	inst, err := BuildSATInstance(f)
	if err != nil {
		t.Fatal(err)
	}
	p, err := inst.TargetExistsNN(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if p >= 1-1e-12 {
		t.Errorf("P∃NN = %v, want < 1 for a satisfiable formula", p)
	}
}

func TestBuildSATInstanceValidation(t *testing.T) {
	if _, err := BuildSATInstance(CNF{}); err == nil {
		t.Error("expected error for empty CNF")
	}
	if _, err := BuildSATInstance(CNF{Vars: 1, Clauses: []Clause{{2}}}); err == nil {
		t.Error("expected error for out-of-range literal")
	}
	if _, err := BuildSATInstance(CNF{Vars: 1, Clauses: []Clause{{0}}}); err == nil {
		t.Error("expected error for zero literal")
	}
}

func TestCNFSatisfiable(t *testing.T) {
	sat := CNF{Vars: 2, Clauses: []Clause{{1, 2}, {-1, 2}}}
	if !sat.Satisfiable() {
		t.Error("x2=true satisfies the formula")
	}
	unsat := CNF{Vars: 1, Clauses: []Clause{{1}, {-1}}}
	if unsat.Satisfiable() {
		t.Error("x ∧ ¬x is unsatisfiable")
	}
}
