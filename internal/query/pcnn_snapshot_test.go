package query

import (
	"math"
	"math/rand"
	"testing"

	"pnn/internal/geo"
	"pnn/internal/inference"
	"pnn/internal/uncertain"
)

func TestCNNMatchesExact(t *testing.T) {
	sp, tree, eng := lineDB(t, 20000,
		[]uncertain.Observation{{T: 0, State: 30}, {T: 6, State: 32}},
		[]uncertain.Observation{{T: 0, State: 33}, {T: 6, State: 29}},
	)
	objs := exactFromDB(t, tree)
	q := StateQuery(sp.Point(31))
	const ts, te = 1, 5
	const tau = 0.3
	rng := rand.New(rand.NewSource(5))
	res, stats, err := eng.CNN(q, ts, te, tau, rng)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Worlds != 20000 {
		t.Errorf("stats.Worlds = %d", stats.Worlds)
	}
	if len(res) == 0 {
		t.Fatal("expected at least one PCNN result")
	}
	seen := map[int]bool{}
	for _, r := range res {
		seen[r.Obj] = true
		// Reported probability must be close to the exact probability of
		// the reported timestamp set, and at least tau.
		exact, err := ExactForAllProb(sp, objs, q, r.Obj, r.Times, 1<<22)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.Prob-exact) > 0.02 {
			t.Errorf("object %d times %v: prob %v, exact %v", r.Obj, r.Times, r.Prob, exact)
		}
		if r.Prob < tau {
			t.Errorf("result below tau: %+v", r)
		}
		// Times must be sorted, unique, within the window.
		for i, tt := range r.Times {
			if tt < ts || tt > te {
				t.Errorf("time %d outside window", tt)
			}
			if i > 0 && r.Times[i] <= r.Times[i-1] {
				t.Errorf("times not strictly ascending: %v", r.Times)
			}
		}
	}
	// Maximality: no result of the same object may contain another.
	for i, a := range res {
		for j, b := range res {
			if i != j && a.Obj == b.Obj && len(a.Times) < len(b.Times) && isSubset(a.Times, b.Times) {
				t.Errorf("non-maximal result %v contained in %v", a.Times, b.Times)
			}
		}
	}
}

func TestCNNTauValidation(t *testing.T) {
	_, _, eng := lineDB(t, 100,
		[]uncertain.Observation{{T: 0, State: 30}, {T: 6, State: 30}})
	rng := rand.New(rand.NewSource(1))
	if _, _, err := eng.CNN(StateQuery(geo.Point{}), 1, 5, 0, rng); err == nil {
		t.Error("expected error for tau=0")
	}
}

func TestCNNHighTauPinnedObject(t *testing.T) {
	// Object 0 sits exactly on q the whole time; with τ=0.95 it must
	// qualify with the complete window as a single maximal set.
	sp, _, eng := lineDB(t, 3000,
		[]uncertain.Observation{{T: 0, State: 30}, {T: 1, State: 30}, {T: 2, State: 30},
			{T: 3, State: 30}, {T: 4, State: 30}, {T: 5, State: 30}, {T: 6, State: 30}},
		[]uncertain.Observation{{T: 0, State: 40}, {T: 6, State: 40}},
	)
	q := StateQuery(sp.Point(30))
	rng := rand.New(rand.NewSource(8))
	res, _, err := eng.CNN(q, 1, 5, 0.95, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("results = %+v, want exactly one", res)
	}
	if res[0].Obj != 0 || len(res[0].Times) != 5 {
		t.Errorf("result = %+v, want object 0 with all 5 timestamps", res[0])
	}
}

func TestSnapshotExactAtSingleTimestep(t *testing.T) {
	// For |T| = 1 the snapshot estimator is exact: no temporal
	// correlation exists to ignore.
	sp, tree, _ := lineDB(t, 1,
		[]uncertain.Observation{{T: 0, State: 30}, {T: 6, State: 32}},
		[]uncertain.Observation{{T: 0, State: 33}, {T: 6, State: 29}},
	)
	var models []*inference.Model
	for _, o := range tree.Objects() {
		m, err := inference.Adapt(o)
		if err != nil {
			t.Fatal(err)
		}
		models = append(models, m)
	}
	q := StateQuery(sp.Point(31))
	ss := NewSnapshotEstimator(sp, models)
	objs := exactFromDB(t, tree)
	for _, tt := range []int{1, 3, 5} {
		got := ss.ForAllNN(q, tt, tt)
		exact, err := ExactNN(sp, objs, q, tt, tt, 1<<22)
		if err != nil {
			t.Fatal(err)
		}
		for oi := range objs {
			if math.Abs(got[oi]-exact.ForAll[oi]) > 1e-9 {
				t.Errorf("t=%d object %d: SS %v, exact %v", tt, oi, got[oi], exact.ForAll[oi])
			}
		}
		ge := ss.ExistsNN(q, tt, tt)
		for oi := range objs {
			if math.Abs(ge[oi]-exact.Exists[oi]) > 1e-9 {
				t.Errorf("∃ t=%d object %d: SS %v, exact %v", tt, oi, ge[oi], exact.Exists[oi])
			}
		}
	}
}

func TestSnapshotDeadObjects(t *testing.T) {
	sp, tree, _ := lineDB(t, 1,
		[]uncertain.Observation{{T: 0, State: 30}, {T: 4, State: 32}},
		[]uncertain.Observation{{T: 6, State: 31}, {T: 10, State: 31}},
	)
	var models []*inference.Model
	for _, o := range tree.Objects() {
		m, err := inference.Adapt(o)
		if err != nil {
			t.Fatal(err)
		}
		models = append(models, m)
	}
	ss := NewSnapshotEstimator(sp, models)
	q := StateQuery(sp.Point(31))
	// Window [1,3]: object 1 is dead, so object 0 is certain NN.
	fa := ss.ForAllNN(q, 1, 3)
	if math.Abs(fa[0]-1) > 1e-9 {
		t.Errorf("P∀NN(alive only) = %v, want 1", fa[0])
	}
	if fa[1] != 0 {
		t.Errorf("dead object P∀NN = %v, want 0", fa[1])
	}
	// Window spanning both lifetimes partially: neither covers it fully.
	fa = ss.ForAllNN(q, 3, 7)
	if fa[0] != 0 || fa[1] != 0 {
		t.Errorf("partial coverage must zero ∀ estimates: %v", fa)
	}
}
