package query

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"pnn/internal/inference"
	"pnn/internal/uncertain"
	"pnn/internal/ustree"
)

// TestSamplerCacheWarmQueryNoRebuilds is the service-layer contract: the
// first query over a cold engine adapts every influencer's model, a
// repeat of the same query adapts none.
func TestSamplerCacheWarmQueryNoRebuilds(t *testing.T) {
	sp, _, eng := lineDB(t, 500,
		[]uncertain.Observation{{T: 0, State: 30}, {T: 8, State: 32}},
		[]uncertain.Observation{{T: 0, State: 34}, {T: 8, State: 30}},
		[]uncertain.Observation{{T: 0, State: 26}, {T: 8, State: 28}},
	)
	q := StateQuery(sp.Point(31))
	_, st1, err := eng.ForAllNN(q, 1, 7, 0, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if st1.SamplerBuilds != st1.Influencers || st1.SamplerBuilds == 0 {
		t.Errorf("cold query: SamplerBuilds = %d, want every influencer (%d)",
			st1.SamplerBuilds, st1.Influencers)
	}
	_, st2, err := eng.ForAllNN(q, 1, 7, 0, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if st2.SamplerBuilds != 0 {
		t.Errorf("warm query: SamplerBuilds = %d, want 0", st2.SamplerBuilds)
	}
	cs := eng.CacheStats()
	if cs.Builds != int64(st1.Influencers) {
		t.Errorf("CacheStats.Builds = %d, want %d", cs.Builds, st1.Influencers)
	}
	if cs.Hits < int64(st2.Influencers) {
		t.Errorf("CacheStats.Hits = %d, want >= %d", cs.Hits, st2.Influencers)
	}
	// PCNN rides the same cache.
	_, st3, err := eng.CNN(q, 1, 7, 0.2, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if st3.SamplerBuilds != 0 {
		t.Errorf("warm PCNN: SamplerBuilds = %d, want 0", st3.SamplerBuilds)
	}
}

// TestSamplerCacheSingleFlight hammers the cache from many goroutines and
// checks that every object is adapted exactly once (the per-entry build
// lock makes duplicate adaptation impossible, not just unlikely).
func TestSamplerCacheSingleFlight(t *testing.T) {
	obsSets := [][]uncertain.Observation{
		{{T: 0, State: 30}, {T: 8, State: 32}},
		{{T: 0, State: 34}, {T: 8, State: 30}},
		{{T: 0, State: 26}, {T: 8, State: 28}},
		{{T: 0, State: 40}, {T: 8, State: 44}},
		{{T: 0, State: 10}, {T: 8, State: 14}},
	}
	_, _, eng := lineDB(t, 100, obsSets...)
	const workers = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for oi := range obsSets {
				if _, err := eng.Sampler(oi); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	cs := eng.CacheStats()
	if cs.Builds != int64(len(obsSets)) {
		t.Errorf("Builds = %d, want exactly %d", cs.Builds, len(obsSets))
	}
	if want := int64(workers*len(obsSets)) - cs.Builds; cs.Hits != want {
		t.Errorf("Hits = %d, want %d", cs.Hits, want)
	}
}

// TestNewEngineFromCarriesCache is the snapshot-swap contract: deriving
// an engine over an updated tree keeps the adapted samplers of
// untouched objects, re-adapts exactly the invalidated ones, and keeps
// the cumulative counters shared across versions — while the previous
// engine stays consistent with its own tree.
func TestNewEngineFromCarriesCache(t *testing.T) {
	obsSets := [][]uncertain.Observation{
		{{T: 0, State: 30}, {T: 8, State: 32}},
		{{T: 0, State: 34}, {T: 8, State: 30}},
		{{T: 0, State: 26}, {T: 8, State: 28}},
	}
	sp, tree, eng := lineDB(t, 500, obsSets...)
	if _, err := eng.PrepareAll(); err != nil {
		t.Fatal(err)
	}
	if cs := eng.CacheStats(); cs.Builds != 3 {
		t.Fatalf("Builds after PrepareAll = %d, want 3", cs.Builds)
	}

	// Object 1 gains an observation; rebuild its tree entry.
	objs := append([]*uncertain.Object(nil), tree.Objects()...)
	upd, err := uncertain.NewObject(1, append(append([]uncertain.Observation(nil), obsSets[1]...),
		uncertain.Observation{T: 12, State: 27}), objs[1].Chain)
	if err != nil {
		t.Fatal(err)
	}
	objs[1] = upd
	tree2, err := ustree.Build(sp, objs, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng2 := NewEngineFrom(eng, tree2, []int{1})

	// Only the invalidated object re-adapts.
	q := StateQuery(sp.Point(31))
	_, st, err := eng2.ForAllNN(q, 1, 7, 0, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if st.SamplerBuilds != 1 {
		t.Errorf("derived engine built %d samplers, want 1 (the updated object)", st.SamplerBuilds)
	}
	if cs := eng2.CacheStats(); cs.Builds != 4 {
		t.Errorf("cumulative Builds = %d, want 4 (shared across versions)", cs.Builds)
	}
	// The previous engine still samples the pre-update model: object 1's
	// lifetime there ends at t=8, so a window beyond it is empty.
	sOld, err := eng.Sampler(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sOld.SampleWindow(rand.New(rand.NewSource(4)), 10, 12); ok {
		t.Error("old snapshot's sampler covers the post-update window")
	}
	sNew, err := eng2.Sampler(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sNew.SampleWindow(rand.New(rand.NewSource(4)), 10, 12); !ok {
		t.Error("new snapshot's sampler misses the appended observation window")
	}
}

// TestPrepareAllWarmsCache checks PrepareAll adapts everything (in
// parallel) and later queries run entirely from cache with identical
// results.
func TestPrepareAllWarmsCache(t *testing.T) {
	sp, _, eng := lineDB(t, 800,
		[]uncertain.Observation{{T: 0, State: 30}, {T: 8, State: 32}},
		[]uncertain.Observation{{T: 0, State: 34}, {T: 8, State: 30}},
		[]uncertain.Observation{{T: 0, State: 26}, {T: 8, State: 28}},
		[]uncertain.Observation{{T: 0, State: 40}, {T: 8, State: 44}},
	)
	cold, stCold, err := eng.ForAllNN(StateQuery(sp.Point(31)), 1, 7, 0, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if stCold.SamplerBuilds == 0 {
		t.Fatal("cold query should have built samplers")
	}

	_, _, warmed := lineDB(t, 800,
		[]uncertain.Observation{{T: 0, State: 30}, {T: 8, State: 32}},
		[]uncertain.Observation{{T: 0, State: 34}, {T: 8, State: 30}},
		[]uncertain.Observation{{T: 0, State: 26}, {T: 8, State: 28}},
		[]uncertain.Observation{{T: 0, State: 40}, {T: 8, State: 44}},
	)
	warmed.SetParallelism(4)
	if _, err := warmed.PrepareAll(); err != nil {
		t.Fatal(err)
	}
	// Sampling parallelism changes how the world budget is partitioned
	// across sub-generators; reset it so only cache warmth differs.
	warmed.SetParallelism(1)
	if cs := warmed.CacheStats(); cs.Builds != 4 {
		t.Errorf("PrepareAll Builds = %d, want 4", cs.Builds)
	}
	warm, stWarm, err := warmed.ForAllNN(StateQuery(sp.Point(31)), 1, 7, 0, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if stWarm.SamplerBuilds != 0 {
		t.Errorf("post-PrepareAll query built %d samplers", stWarm.SamplerBuilds)
	}
	if len(warm) != len(cold) {
		t.Fatalf("warm results %d != cold results %d", len(warm), len(cold))
	}
	for i := range warm {
		if warm[i].Obj != cold[i].Obj || math.Abs(warm[i].Prob-cold[i].Prob) > 1e-12 {
			t.Errorf("result %d diverged: warm %+v cold %+v", i, warm[i], cold[i])
		}
	}
}

// TestSamplerCachePanicContained: a build that panics must not leave
// the single-flight entry pending forever — it is demoted to a cached
// error, and later lookups return it immediately instead of blocking.
func TestSamplerCachePanicContained(t *testing.T) {
	c := newSamplerCache()
	_, built, err := c.get(0, func() (*inference.Sampler, error) { panic("boom") })
	if !built || err == nil {
		t.Fatalf("panicking build: built=%v err=%v, want built with error", built, err)
	}
	done := make(chan error, 1)
	go func() {
		_, _, err := c.get(0, func() (*inference.Sampler, error) {
			t.Error("second lookup must not rebuild")
			return nil, nil
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("cached panic error lost")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("lookup after panicking build blocked")
	}
}
