package query

import (
	"math"
	"testing"

	"pnn/internal/inference"
)

// TestHoeffdingEdgeCases pins the degenerate inputs of the bound
// helpers: out-of-range accuracy or confidence never panics and never
// pretends precision it cannot have.
func TestHoeffdingEdgeCases(t *testing.T) {
	for _, tc := range []struct{ eps, delta float64 }{
		{0, 0.05}, {-0.1, 0.05}, {0.05, 0}, {0.05, -1}, {0.05, 1}, {0.05, 1.5},
	} {
		if n := RequiredSamples(tc.eps, tc.delta); n != math.MaxInt32 {
			t.Errorf("RequiredSamples(%v, %v) = %d, want MaxInt32", tc.eps, tc.delta, n)
		}
	}
	for _, tc := range []struct {
		n     int
		delta float64
	}{
		{0, 0.05}, {-5, 0.05}, {100, 0}, {100, -1}, {100, 1}, {100, 2},
	} {
		if eps := ErrorBound(tc.n, tc.delta); eps != 1 {
			t.Errorf("ErrorBound(%d, %v) = %v, want 1 (no information)", tc.n, tc.delta, eps)
		}
	}
}

// TestHoeffdingInverseConsistency: RequiredSamples and ErrorBound are
// inverses — the sample count bought for a target eps yields an error
// bound no worse than eps, and one sample fewer does not.
func TestHoeffdingInverseConsistency(t *testing.T) {
	for _, eps := range []float64{0.2, 0.1, 0.05, 0.01, 0.005} {
		for _, delta := range []float64{0.2, 0.05, 0.01} {
			n := RequiredSamples(eps, delta)
			if got := ErrorBound(n, delta); got > eps {
				t.Errorf("ErrorBound(RequiredSamples(%v, %v)=%d) = %v > %v", eps, delta, n, got, eps)
			}
			if got := ErrorBound(n-1, delta); got <= eps {
				t.Errorf("ErrorBound(%d, %v) = %v <= %v: RequiredSamples overshot", n-1, delta, got, eps)
			}
		}
	}
}

func TestConfidenceValidate(t *testing.T) {
	valid := []Confidence{
		{},
		{Eps: 0.05},
		{Eps: 0.05, Delta: 0.01},
		{Eps: 0.5, MaxSamples: 100000},
		{Eps: 0.999, Delta: 0.999},
	}
	for _, c := range valid {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", c, err)
		}
	}
	invalid := []Confidence{
		{Eps: -0.1},
		{Eps: 1},
		{Eps: 1.5},
		{Delta: 0.05},               // enabled (non-zero) but eps unset
		{MaxSamples: 1000},          // enabled but eps unset
		{Eps: 0.05, Delta: 1},       // delta must stay < 1
		{Eps: 0.05, Delta: -0.5},    // negative delta
		{Eps: 0.05, MaxSamples: -1}, // negative cap
	}
	for _, c := range invalid {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", c)
		}
	}
}

func TestConfidenceDefaults(t *testing.T) {
	if d := (Confidence{Eps: 0.05}).EffDelta(); d != DefaultDelta {
		t.Errorf("EffDelta with unset delta = %v, want %v", d, DefaultDelta)
	}
	if d := (Confidence{Eps: 0.05, Delta: 0.2}).EffDelta(); d != 0.2 {
		t.Errorf("EffDelta = %v, want 0.2", d)
	}
	if b := (Confidence{}).Budget(5000); b != 5000 {
		t.Errorf("disabled Budget = %d, want the fixed 5000", b)
	}
	if b := (Confidence{Eps: 0.05}).Budget(5000); b != 5000 {
		t.Errorf("enabled Budget without cap = %d, want the fixed 5000", b)
	}
	if b := (Confidence{Eps: 0.05, MaxSamples: 80000}).Budget(5000); b != 80000 {
		t.Errorf("enabled Budget with cap = %d, want 80000", b)
	}
	if (Confidence{}).Enabled() {
		t.Error("zero Confidence reports Enabled")
	}
	for _, c := range []Confidence{{Eps: 0.05}, {Delta: 0.1}, {MaxSamples: 3}} {
		if !c.Enabled() {
			t.Errorf("%+v reports disabled", c)
		}
	}
}

// adaptiveFixture runs the plan fixture once at a large fixed budget to
// learn the true-ish row probabilities, then picks a tau that every row
// separates from by a wide margin — the setting where adaptive sampling
// should stop long before the cap. It returns everything needed to
// build fresh plans: the engine, query, adapted samplers, rows, tau.
func adaptiveFixture(t *testing.T) (*Engine, Query, []*inference.Sampler, []int, float64) {
	t.Helper()
	eng, q, rows := planFixture(t)
	_, smps, _, _, err := eng.buildSamplers(rows)
	if err != nil {
		t.Fatal(err)
	}
	ev := NewCountEvaluator(1, true, rows)
	pl := eng.NewPlan(q, 1, 5, smps, 7)
	pl.Samples = 20000
	pl.Attach(ev)
	if _, err := eng.Execute(pl); err != nil {
		t.Fatal(err)
	}
	// Midpoint between the two probability clusters; the fixture has one
	// dominant row, so every estimate sits far from it.
	tau := 0.5
	for i, c := range ev.Counts() {
		p := float64(c) / 20000
		if d := math.Abs(p - tau); d < 0.15 {
			t.Fatalf("fixture drifted: row %d has p=%v too close to tau=%v for a separation test", i, p, tau)
		}
	}
	return eng, q, smps, rows, tau
}

// TestAdaptiveBudgetSplitEarlyStop: under a confidence policy with
// well-separated estimates the budget-split executor stops at a round
// boundary far below the cap, reports it, and reproduces the identical
// decision and counts when re-run.
func TestAdaptiveBudgetSplitEarlyStop(t *testing.T) {
	eng, q, smps, rows, tau := adaptiveFixture(t)
	run := func(workers int) ([]int, ExecStats) {
		ev := NewCountEvaluator(1, true, rows)
		ev.SetBound(Confidence{Eps: 0.01, MaxSamples: 50000}, tau)
		pl := eng.NewPlan(q, 1, 5, smps, 7)
		pl.Samples = 50000
		pl.Workers = workers
		pl.Confidence = Confidence{Eps: 0.01, MaxSamples: 50000}
		pl.Attach(ev)
		es, err := eng.Execute(pl)
		if err != nil {
			t.Fatal(err)
		}
		return ev.Counts(), es
	}
	c1, es1 := run(1)
	if !es1.EarlyStopped || es1.Worlds >= 50000 {
		t.Fatalf("no early stop: %+v", es1)
	}
	if es1.Worlds%1024 != 0 {
		t.Errorf("stop point %d is not a round boundary", es1.Worlds)
	}
	if es1.ErrorBound != ErrorBound(es1.Worlds, DefaultDelta) {
		t.Errorf("ErrorBound = %v, want %v", es1.ErrorBound, ErrorBound(es1.Worlds, DefaultDelta))
	}
	// Deterministic: the identical plan reproduces counts and stop point.
	c2, es2 := run(1)
	if es1.Worlds != es2.Worlds {
		t.Errorf("stop point not deterministic: %d vs %d", es1.Worlds, es2.Worlds)
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Errorf("row %d count not deterministic: %d vs %d", i, c1[i], c2[i])
		}
	}
	// Every decided estimate is separated from tau by the final bound.
	for i, c := range c1 {
		p := float64(c) / float64(es1.Worlds)
		if math.Abs(p-tau) <= es1.ErrorBound {
			t.Errorf("row %d stopped undecided: |%v - %v| <= %v", i, p, tau, es1.ErrorBound)
		}
	}
}

// TestAdaptiveAccuracyFallback: with tau = 0 no estimate can ever
// separate downward (|0 − 0| is never > eps), so the executor must fall
// back to the accuracy rule and stop at the first round boundary where
// the error bound reaches Eps.
func TestAdaptiveAccuracyFallback(t *testing.T) {
	eng, q, smps, rows, _ := adaptiveFixture(t)
	ev := NewCountEvaluator(1, true, rows)
	conf := Confidence{Eps: 0.05, MaxSamples: 50000}
	ev.SetBound(conf, 0)
	pl := eng.NewPlan(q, 1, 5, smps, 7)
	pl.Samples = 50000
	pl.Confidence = conf
	pl.Attach(ev)
	es, err := eng.Execute(pl)
	if err != nil {
		t.Fatal(err)
	}
	// RequiredSamples(0.05, 0.05) ≈ 738, rounded up to the 1024-world
	// round boundary.
	if es.Worlds != 1024 {
		t.Errorf("accuracy-rule stop at %d worlds, want 1024", es.Worlds)
	}
	if !es.EarlyStopped {
		t.Error("accuracy-rule stop not reported as early")
	}
	if es.ErrorBound > conf.Eps {
		t.Errorf("final bound %v exceeds requested eps %v", es.ErrorBound, conf.Eps)
	}
}

// TestAdaptiveMatchesFixedWithinBound: the adaptive estimate agrees
// with a fixed large-budget estimate to within the sum of both error
// bounds — early stopping trades worlds for the declared accuracy, not
// for bias.
func TestAdaptiveMatchesFixedWithinBound(t *testing.T) {
	eng, q, smps, rows, tau := adaptiveFixture(t)
	fixedEv := NewCountEvaluator(1, true, rows)
	fp := eng.NewPlan(q, 1, 5, smps, 7)
	fp.Samples = 40000
	fp.Attach(fixedEv)
	if _, err := eng.Execute(fp); err != nil {
		t.Fatal(err)
	}

	adEv := NewCountEvaluator(1, true, rows)
	conf := Confidence{Eps: 0.02, MaxSamples: 40000}
	adEv.SetBound(conf, tau)
	pl := eng.NewPlan(q, 1, 5, smps, 7)
	pl.Samples = 40000
	pl.Confidence = conf
	pl.Attach(adEv)
	es, err := eng.Execute(pl)
	if err != nil {
		t.Fatal(err)
	}
	slack := es.ErrorBound + ErrorBound(40000, DefaultDelta)
	for i := range rows {
		pa := float64(adEv.Counts()[i]) / float64(es.Worlds)
		pf := float64(fixedEv.Counts()[i]) / 40000
		if math.Abs(pa-pf) > slack {
			t.Errorf("row %d: adaptive %v vs fixed %v differ beyond %v", i, pa, pf, slack)
		}
	}
}

// TestAdaptiveDisabledDrawsFixedBudget: the zero policy must leave the
// executor byte-for-byte on the old fixed path.
func TestAdaptiveDisabledDrawsFixedBudget(t *testing.T) {
	eng, q, smps, rows, _ := adaptiveFixture(t)
	ev := NewCountEvaluator(1, true, rows)
	ev.SetBound(Confidence{}, 0.5)
	pl := eng.NewPlan(q, 1, 5, smps, 7)
	pl.Samples = 2048
	pl.Attach(ev)
	es, err := eng.Execute(pl)
	if err != nil {
		t.Fatal(err)
	}
	if es.Worlds != 2048 || es.EarlyStopped {
		t.Errorf("disabled policy: %+v, want exactly the 2048 fixed worlds", es)
	}
}
