package query

import (
	"math"
	"math/rand"
	"testing"

	"pnn/internal/uncertain"
)

func TestParallelSamplingAgreesWithSerial(t *testing.T) {
	sp, _, eng := lineDB(t, 20000,
		[]uncertain.Observation{{T: 0, State: 30}, {T: 8, State: 32}},
		[]uncertain.Observation{{T: 0, State: 34}, {T: 8, State: 30}},
		[]uncertain.Observation{{T: 0, State: 27}, {T: 8, State: 29}},
	)
	q := StateQuery(sp.Point(31))
	serial, _, err := eng.ForAllNN(q, 1, 7, 0, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	eng.SetParallelism(4)
	par, _, err := eng.ForAllNN(q, 1, 7, 0, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	// Parallel uses derived sub-streams, so estimates differ only by
	// Monte-Carlo noise (<~1% at 20k samples).
	ps := map[int]float64{}
	for _, r := range serial {
		ps[r.Obj] = r.Prob
	}
	for _, r := range par {
		if math.Abs(ps[r.Obj]-r.Prob) > 0.02 {
			t.Errorf("object %d: serial %v vs parallel %v", r.Obj, ps[r.Obj], r.Prob)
		}
	}
	// Determinism: same seed, same parallelism → identical result.
	par2, _, err := eng.ForAllNN(q, 1, 7, 0, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	if len(par2) != len(par) {
		t.Fatal("parallel runs with same seed differ in size")
	}
	for i := range par {
		if par[i] != par2[i] {
			t.Fatalf("parallel runs with same seed differ: %+v vs %+v", par[i], par2[i])
		}
	}
	// Degenerate settings.
	eng.SetParallelism(0) // treated as 1
	if _, _, err := eng.ForAllNN(q, 1, 7, 0, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
}
