package query

import (
	"math"
	"testing"

	"pnn/internal/inference"
	"pnn/internal/uncertain"
)

// TestLemma3MarkovViolation makes Section 4.2's negative result
// executable: conditioning object o on the event "o dominates o1" and then
// treating the conditioned process as Markov (reducing the joint model to
// per-object transition matrices) does NOT generally yield the correct
// P(o ≺ o1 ∧ o ≺ o2). The exact joint computation (Lemma 2) remains
// correct pairwise; the chained product of pairwise probabilities — the
// independence shortcut one might hope makes Lemma 3 exact — deviates from
// the enumerated ground truth, confirming the dependency structure.
func TestLemma3MarkovViolation(t *testing.T) {
	sp, tree, _ := lineDB(t, 1,
		[]uncertain.Observation{{T: 0, State: 31}, {T: 6, State: 33}}, // o: hovers at q
		[]uncertain.Observation{{T: 0, State: 34}, {T: 6, State: 32}}, // o1: approaches
		[]uncertain.Observation{{T: 0, State: 28}, {T: 6, State: 30}}, // o2: approaches
	)
	var models []*inference.Model
	for _, o := range tree.Objects() {
		m, err := inference.Adapt(o)
		if err != nil {
			t.Fatal(err)
		}
		models = append(models, m)
	}
	q := StateQuery(sp.Point(31))
	const ts, te = 1, 5

	// Exact P(o ≺ o1 ∧ o ≺ o2) by enumeration.
	objs := exactFromDB(t, tree)
	exact := 0.0
	err := EnumerateWorlds(objs, 1<<24, func(paths []uncertain.Path, p float64) {
		for tt := ts; tt <= te; tt++ {
			s0, _ := paths[0].At(tt)
			d0 := sp.Point(s0).Dist(q.At(tt))
			for other := 1; other <= 2; other++ {
				so, _ := paths[other].At(tt)
				if d0 > sp.Point(so).Dist(q.At(tt)) {
					return
				}
			}
		}
		exact += p
	})
	if err != nil {
		t.Fatal(err)
	}

	// Pairwise-exact probabilities via Lemma 2.
	p1, err := DominationProb(sp, models[0], models[1], q, ts, te)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := DominationProb(sp, models[0], models[2], q, ts, te)
	if err != nil {
		t.Fatal(err)
	}

	// The domination events share o's trajectory, so they are positively
	// correlated: the independence product must underestimate the joint
	// probability, and by a non-trivial margin in this construction.
	product := p1 * p2
	if product >= exact {
		t.Fatalf("independence product %v should underestimate exact %v (positive correlation through o)", product, exact)
	}
	if exact-product < 0.01 {
		t.Errorf("bias too small to be meaningful: exact %v, product %v", exact, product)
	}
	// Sanity: each pairwise probability brackets the joint one.
	if exact > p1+1e-12 || exact > p2+1e-12 {
		t.Errorf("joint %v cannot exceed pairwise %v, %v", exact, p1, p2)
	}
	// And the joint probability equals P∀NN(o) for this 3-object database.
	res, err := ExactNN(sp, objs, q, ts, te, 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ForAll[0]-exact) > 1e-12 {
		t.Errorf("joint domination %v != exact P∀NN %v", exact, res.ForAll[0])
	}
}
