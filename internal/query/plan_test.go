package query

import (
	"reflect"
	"strings"
	"testing"

	"pnn/internal/mcrand"
	"pnn/internal/uncertain"
)

func planFixture(t *testing.T) (*Engine, Query, []int) {
	t.Helper()
	sp, _, eng := lineDB(t, 600,
		[]uncertain.Observation{{T: 0, State: 30}, {T: 6, State: 32}},
		[]uncertain.Observation{{T: 0, State: 34}, {T: 6, State: 30}},
		[]uncertain.Observation{{T: 0, State: 26}, {T: 6, State: 28}},
	)
	return eng, StateQuery(sp.Point(30)), []int{0, 1, 2}
}

// TestExecuteValidation covers the plan validation errors.
func TestExecuteValidation(t *testing.T) {
	eng, q, rows := planFixture(t)
	refine, smps, _, _, err := eng.buildSamplers(rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(refine) != 3 {
		t.Fatalf("refine = %v", refine)
	}

	if _, err := eng.Execute(&Plan{Ts: 1, Te: 5, Samplers: smps}); err == nil ||
		!strings.Contains(err.Error(), "zero Query") {
		t.Errorf("zero query: err = %v", err)
	}
	if _, err := eng.Execute(&Plan{Query: q, Ts: 5, Te: 1, Samplers: smps}); err == nil ||
		!strings.Contains(err.Error(), "inverted interval") {
		t.Errorf("inverted interval: err = %v", err)
	}
	bad := &Plan{Query: q, Ts: 1, Te: 5, Samplers: smps, RowRngs: make([]mcrand.RNG, 1)}
	bad.Attach(NewCountEvaluator(1, true, rows))
	if _, err := eng.Execute(bad); err == nil || !strings.Contains(err.Error(), "row generators") {
		t.Errorf("rng/sampler mismatch: err = %v", err)
	}

	// No evaluators, or no samplers: a no-op, not an error.
	if _, err := eng.Execute(&Plan{Query: q, Ts: 1, Te: 5, Samplers: smps}); err != nil {
		t.Errorf("evaluator-less plan: %v", err)
	}
	ev := NewCountEvaluator(1, true, nil)
	empty := &Plan{Query: q, Ts: 1, Te: 5}
	empty.Attach(ev)
	if _, err := eng.Execute(empty); err != nil {
		t.Errorf("sampler-less plan: %v", err)
	}
	if got := ev.Counts(); len(got) != 0 {
		t.Errorf("sampler-less counts = %v", got)
	}
}

// TestExecuteSharedEvaluators pins the coalescing property the batch
// layer builds on: two evaluators attached to one plan see the same
// worlds, so the ∀ count can never exceed the ∃ count for any row, and
// re-executing an identical plan reproduces both counts exactly.
func TestExecuteSharedEvaluators(t *testing.T) {
	eng, q, rows := planFixture(t)
	_, smps, _, _, err := eng.buildSamplers(rows)
	if err != nil {
		t.Fatal(err)
	}
	run := func() ([]int, []int) {
		fa := NewCountEvaluator(1, true, rows)
		ex := NewCountEvaluator(1, false, rows)
		pl := eng.NewPlan(q, 1, 5, smps, 99)
		pl.Attach(fa)
		pl.Attach(ex)
		if _, err := eng.Execute(pl); err != nil {
			t.Fatal(err)
		}
		return fa.Counts(), ex.Counts()
	}
	fa1, ex1 := run()
	for i := range rows {
		if fa1[i] > ex1[i] {
			t.Errorf("row %d: ∀ count %d exceeds ∃ count %d on the same worlds", i, fa1[i], ex1[i])
		}
	}
	total := 0
	for _, c := range ex1 {
		total += c
	}
	if total == 0 {
		t.Fatal("no world had any nearest neighbor; fixture is broken")
	}
	fa2, ex2 := run()
	if !reflect.DeepEqual(fa1, fa2) || !reflect.DeepEqual(ex1, ex2) {
		t.Error("re-executing an identical plan changed counts")
	}
}

// TestExecutePerRowMatchesAnyGrouping: the per-row draw policy is
// independent of the FillGroups partition, because every row draws
// from its private generator.
func TestExecutePerRowMatchesAnyGrouping(t *testing.T) {
	eng, q, rows := planFixture(t)
	_, smps, _, _, err := eng.buildSamplers(rows)
	if err != nil {
		t.Fatal(err)
	}
	run := func(groups [][]int, workers int) []int {
		rngs := make([]mcrand.RNG, len(smps))
		for i := range rngs {
			rngs[i] = mcrand.New(mcrand.SubSeed(7, i))
		}
		ev := NewCountEvaluator(1, false, rows)
		pl := &Plan{Query: q, Ts: 1, Te: 5, Samplers: smps, RowRngs: rngs, FillGroups: groups, Workers: workers}
		pl.Attach(ev)
		if _, err := eng.Execute(pl); err != nil {
			t.Fatal(err)
		}
		return ev.Counts()
	}
	base := run(nil, 1)
	for _, tc := range []struct {
		name   string
		groups [][]int
		wk     int
	}{
		{"one-group-parallel", nil, 4},
		{"split-groups", [][]int{{0, 2}, {}, {1}}, 2},
		{"singleton-groups", [][]int{{2}, {0}, {1}}, 3},
	} {
		if got := run(tc.groups, tc.wk); !reflect.DeepEqual(got, base) {
			t.Errorf("%s: counts %v differ from baseline %v", tc.name, got, base)
		}
	}
}
