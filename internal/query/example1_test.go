package query

import (
	"math"
	"testing"

	"pnn/internal/geo"
	"pnn/internal/space"
	"pnn/internal/uncertain"
)

// figure1 builds the worked example of Figure 1 / Example 1: a discrete
// space with states s1..s4 at increasing distance from q, object o1 with
// three possible trajectories (0.5 / 0.25 / 0.25), and object o2 with two
// (0.5 / 0.5), over the time domain {1, 2, 3}.
func figure1(t *testing.T) (*space.Space, []WorldObject, Query) {
	t.Helper()
	pts := []geo.Point{
		{X: 1, Y: 0}, // s1 (index 0)
		{X: 2, Y: 0}, // s2
		{X: 3, Y: 0}, // s3
		{X: 4, Y: 0}, // s4
	}
	sp, err := space.New(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	o1 := WorldObject{
		Paths: []uncertain.Path{
			{Start: 1, States: []int32{1, 0, 0}}, // s2, s1, s1
			{Start: 1, States: []int32{1, 2, 0}}, // s2, s3, s1
			{Start: 1, States: []int32{1, 2, 2}}, // s2, s3, s3
		},
		Probs: []float64{0.5, 0.25, 0.25},
	}
	o2 := WorldObject{
		Paths: []uncertain.Path{
			{Start: 1, States: []int32{2, 1, 1}}, // s3, s2, s2
			{Start: 1, States: []int32{2, 3, 3}}, // s3, s4, s4
		},
		Probs: []float64{0.5, 0.5},
	}
	return sp, []WorldObject{o1, o2}, StateQuery(geo.Point{X: 0, Y: 0})
}

// TestExample1 verifies the exact probabilities computed in the paper's
// Example 1: P∃NN(o2) = 0.25 and P∀NN(o1) = 0.75.
func TestExample1(t *testing.T) {
	sp, objs, q := figure1(t)
	res, err := ExactNN(sp, objs, q, 1, 3, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Exists[1]; math.Abs(got-0.25) > 1e-12 {
		t.Errorf("P∃NN(o2) = %v, want 0.25", got)
	}
	if got := res.ForAll[0]; math.Abs(got-0.75) > 1e-12 {
		t.Errorf("P∀NN(o1) = %v, want 0.75", got)
	}
	// o1 is the NN somewhere in every world (at t=1 it is always closer).
	if got := res.Exists[0]; math.Abs(got-1) > 1e-12 {
		t.Errorf("P∃NN(o1) = %v, want 1", got)
	}
	// o2 can never dominate the whole interval: at t=1, o1=s2 < o2=s3.
	if got := res.ForAll[1]; got != 0 {
		t.Errorf("P∀NN(o2) = %v, want 0", got)
	}
}

// TestExample1PCNN verifies the PCNNQ(q, D, {1,2,3}, 0.1) result of
// Example 1: o1 qualifies with {1,2,3} and o2 with {2,3}.
func TestExample1PCNN(t *testing.T) {
	sp, objs, q := figure1(t)
	// o1 over {1,2,3}: 0.75 >= 0.1.
	p, err := ExactForAllProb(sp, objs, q, 0, []int{1, 2, 3}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.75) > 1e-12 {
		t.Errorf("P∀NN(o1, {1,2,3}) = %v, want 0.75", p)
	}
	// o2 over {2,3}: exactly the world (tr1,3, tr2,1) = 0.25·0.5 = 0.125.
	p, err = ExactForAllProb(sp, objs, q, 1, []int{2, 3}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.125) > 1e-12 {
		t.Errorf("P∀NN(o2, {2,3}) = %v, want 0.125", p)
	}
	// o2 cannot extend to {1,2,3}.
	p, err = ExactForAllProb(sp, objs, q, 1, []int{1, 2, 3}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 {
		t.Errorf("P∀NN(o2, {1,2,3}) = %v, want 0", p)
	}
	// Anti-monotonicity: singleton probabilities dominate the pair's.
	p2, _ := ExactForAllProb(sp, objs, q, 1, []int{2}, 1000)
	p3, _ := ExactForAllProb(sp, objs, q, 1, []int{3}, 1000)
	if p2 < 0.125 || p3 < 0.125 {
		t.Errorf("singleton probabilities %v, %v must be >= 0.125", p2, p3)
	}
}

func TestEnumerateWorldsLimits(t *testing.T) {
	sp, objs, q := figure1(t)
	_ = sp
	_ = q
	if err := EnumerateWorlds(objs, 5, func([]uncertain.Path, float64) {}); err == nil {
		t.Error("expected world-limit error (6 worlds > 5)")
	}
	if err := EnumerateWorlds([]WorldObject{{}}, 10, func([]uncertain.Path, float64) {}); err == nil {
		t.Error("expected error for object with no trajectories")
	}
	// Probabilities of visited worlds must sum to 1.
	total := 0.0
	if err := EnumerateWorlds(objs, 10, func(_ []uncertain.Path, p float64) { total += p }); err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("world probabilities sum to %v", total)
	}
}
