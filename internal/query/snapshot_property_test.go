package query

import (
	"math/rand"
	"testing"

	"pnn/internal/inference"
	"pnn/internal/markov"
	"pnn/internal/sparse"
	"pnn/internal/uncertain"
)

// TestSnapshotNNProbSumAtLeastOne: at any timestep with at least one alive
// object, the per-object NN probabilities must sum to >= 1 (some object is
// always nearest; ties make the sum exceed 1, never undershoot).
func TestSnapshotNNProbSumAtLeastOne(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		base := 20 + rng.Intn(20)
		sp, tree, _ := lineDB(t, 1,
			[]uncertain.Observation{{T: 0, State: base}, {T: 8, State: base + 2}},
			[]uncertain.Observation{{T: 0, State: base + 4}, {T: 8, State: base + 1}},
			[]uncertain.Observation{{T: 0, State: base - 3}, {T: 8, State: base}},
		)
		var models []*inference.Model
		for _, o := range tree.Objects() {
			m, err := inference.Adapt(o)
			if err != nil {
				t.Fatal(err)
			}
			models = append(models, m)
		}
		ss := NewSnapshotEstimator(sp, models)
		q := StateQuery(sp.Point(base + rng.Intn(5) - 2))
		for tt := 0; tt <= 8; tt++ {
			probs := ss.NNProbAt(q, tt)
			sum := 0.0
			for _, p := range probs {
				if p < -1e-12 || p > 1+1e-12 {
					t.Fatalf("trial %d t=%d: probability %v out of range", trial, tt, p)
				}
				sum += p
			}
			if sum < 1-1e-9 {
				t.Fatalf("trial %d t=%d: NN probabilities sum to %v < 1", trial, tt, sum)
			}
		}
	}
}

func TestUniformizeChainErrors(t *testing.T) {
	_, tree, _ := lineDB(t, 1,
		[]uncertain.Observation{{T: 0, State: 30}, {T: 4, State: 31}})
	o := tree.Objects()[0]
	if _, err := inference.UniformizeChain(o.Chain); err != nil {
		t.Fatalf("homogeneous chain should uniformize: %v", err)
	}
	// A piecewise chain (even with one epoch) is not homogeneous and is
	// rejected.
	pw, err := markov.NewPiecewise([]int{0}, []*sparse.CSR{o.Chain.At(0)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inference.UniformizeChain(pw); err == nil {
		t.Error("expected error for non-homogeneous chain")
	}
}
