package query

import (
	"errors"
	"fmt"

	"pnn/internal/geo"
	"pnn/internal/space"
	"pnn/internal/uncertain"
)

// This file implements the k-SAT → P∃NN mapping from the proof of Lemma 1
// (Figure 2). It exists to make the hardness argument executable: deciding
// whether P∃NN(o, q, D, T) = 1 on the constructed instance decides
// satisfiability of the formula.

// Literal is a SAT literal: +v for variable v, −v for its negation
// (variables are 1-based).
type Literal int

// Clause is a disjunction of literals.
type Clause []Literal

// CNF is a boolean formula in conjunctive normal form.
type CNF struct {
	Vars    int
	Clauses []Clause
}

// Satisfiable decides the formula by brute force over all assignments.
// Usable only for small Vars; it is the test oracle for the reduction.
func (f CNF) Satisfiable() bool {
	for mask := 0; mask < 1<<f.Vars; mask++ {
		if f.eval(mask) {
			return true
		}
	}
	return false
}

func (f CNF) eval(mask int) bool {
	for _, c := range f.Clauses {
		ok := false
		for _, l := range c {
			v := int(l)
			if v > 0 && mask&(1<<(v-1)) != 0 {
				ok = true
				break
			}
			if v < 0 && mask&(1<<(-v-1)) == 0 {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// SATInstance is the PNN decision instance equivalent to a CNF formula.
type SATInstance struct {
	Space  *space.Space
	Q      Query
	Target WorldObject   // the certain object o of the proof
	Vars   []WorldObject // one uncertain object per boolean variable
	Ts, Te int           // query interval: one timestep per clause
}

// BuildSATInstance constructs the gadget of Figure 2. The state space is
// one-dimensional: q at x=0, states s1..s4 at x = 1, 2, 3, 4, and the
// certain object o fixed at x = 2.5 — so s1, s2 are closer to q than o and
// s3, s4 are farther. Each variable x_i becomes an uncertain object with
// exactly two equiprobable trajectories over times 1..m (m = #clauses):
//
//   - the "true" trajectory visits s2 at time j when x_i appears positively
//     in clause c_j (making c_j true ⇒ o not NN at j), s4 otherwise;
//   - the "false" trajectory visits s1 when ¬x_i appears in c_j, s3
//     otherwise.
//
// The formula is satisfiable iff some possible world keeps o from being
// the NN at every timestep, i.e. iff P∃NN(o, q, D, [1, m]) < 1.
func BuildSATInstance(f CNF) (*SATInstance, error) {
	if f.Vars < 1 || len(f.Clauses) == 0 {
		return nil, errors.New("query: CNF needs at least one variable and one clause")
	}
	for _, c := range f.Clauses {
		for _, l := range c {
			v := int(l)
			if v == 0 || v > f.Vars || -v > f.Vars {
				return nil, fmt.Errorf("query: literal %d out of range", l)
			}
		}
	}
	// States: 0..3 are s1..s4; 4 is o's fixed position.
	pts := []geo.Point{
		{X: 1, Y: 0}, {X: 2, Y: 0}, {X: 3, Y: 0}, {X: 4, Y: 0}, {X: 2.5, Y: 0},
	}
	sp, err := space.New(pts, nil)
	if err != nil {
		return nil, err
	}
	m := len(f.Clauses)
	inst := &SATInstance{Space: sp, Q: StateQuery(geo.Point{X: 0, Y: 0}), Ts: 1, Te: m}

	oStates := make([]int32, m)
	for j := range oStates {
		oStates[j] = 4
	}
	inst.Target = WorldObject{
		Paths: []uncertain.Path{{Start: 1, States: oStates}},
		Probs: []float64{1},
	}

	containsLit := func(c Clause, l Literal) bool {
		for _, x := range c {
			if x == l {
				return true
			}
		}
		return false
	}
	for v := 1; v <= f.Vars; v++ {
		trueStates := make([]int32, m)
		falseStates := make([]int32, m)
		for j, c := range f.Clauses {
			if containsLit(c, Literal(v)) {
				trueStates[j] = 1 // s2: closer than o
			} else {
				trueStates[j] = 3 // s4: farther than o
			}
			if containsLit(c, Literal(-v)) {
				falseStates[j] = 0 // s1: closer than o
			} else {
				falseStates[j] = 2 // s3: farther than o
			}
		}
		inst.Vars = append(inst.Vars, WorldObject{
			Paths: []uncertain.Path{
				{Start: 1, States: trueStates},
				{Start: 1, States: falseStates},
			},
			Probs: []float64{0.5, 0.5},
		})
	}
	return inst, nil
}

// TargetExistsNN computes P∃NN of the target object o on the instance by
// exact enumeration. The formula is satisfiable iff the result is < 1.
func (inst *SATInstance) TargetExistsNN(maxWorlds int) (float64, error) {
	objs := append([]WorldObject{inst.Target}, inst.Vars...)
	res, err := ExactNN(inst.Space, objs, inst.Q, inst.Ts, inst.Te, maxWorlds)
	if err != nil {
		return 0, err
	}
	return res.Exists[0], nil
}
