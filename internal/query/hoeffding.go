package query

import (
	"fmt"
	"math"
)

// Hoeffding error control (Section 5.2.3, [29]): the indicator "object o is
// the ∀NN (∃NN) of q in a sampled world" is a Bernoulli variable, so the
// mean of n independent samples deviates from the true probability by more
// than ε with probability at most 2·exp(−2nε²).

// RequiredSamples returns the smallest sample count n guaranteeing
// P(|estimate − truth| > eps) <= delta.
func RequiredSamples(eps, delta float64) int {
	if eps <= 0 || delta <= 0 || delta >= 1 {
		return math.MaxInt32
	}
	n := math.Log(2/delta) / (2 * eps * eps)
	return int(math.Ceil(n))
}

// ErrorBound returns the ε for which n samples guarantee
// P(|estimate − truth| > ε) <= delta.
func ErrorBound(n int, delta float64) float64 {
	if n <= 0 || delta <= 0 || delta >= 1 {
		return 1
	}
	return math.Sqrt(math.Log(2/delta) / (2 * float64(n)))
}

// DefaultDelta is the confidence level the system assumes when a policy
// leaves Delta unset: estimates miss their error bound with probability
// at most 5%, the delta the paper's sample-count discussion uses.
const DefaultDelta = 0.05

// Confidence is the adaptive sample-budget policy of a Plan: instead of
// drawing a fixed number of worlds, the executor polls every attached
// evaluator's Hoeffding bound at deterministic chunk-round boundaries
// and stops as soon as the answer is decided — every estimate separated
// from its threshold τ by more than the current error bound ε(n, Delta),
// or ε(n, Delta) itself at most Eps (the requested accuracy reached).
//
// The zero value disables adaptivity: the plan draws its full fixed
// budget exactly as before. A policy is enabled by Eps > 0.
type Confidence struct {
	// Eps is the requested accuracy: sampling never continues past the
	// point where every estimate carries error at most Eps with
	// probability 1−Delta. Eps > 0 enables the policy; Eps must be < 1.
	Eps float64
	// Delta is the allowed probability of an estimate missing its error
	// bound; 0 means DefaultDelta. Must be < 1.
	Delta float64
	// MaxSamples caps the escalation: the executor never draws more than
	// this many worlds even while some estimate stays undecided. 0 means
	// the plan's fixed budget (the executing engine's sample count).
	MaxSamples int
}

// Enabled reports whether the policy requests adaptive budgets.
func (c Confidence) Enabled() bool { return c.Eps != 0 || c.Delta != 0 || c.MaxSamples != 0 }

// Validate rejects policies the Hoeffding machinery cannot honor. The
// zero (disabled) value is valid.
func (c Confidence) Validate() error {
	if !c.Enabled() {
		return nil
	}
	if c.Eps <= 0 || c.Eps >= 1 {
		return fmt.Errorf("query: confidence eps must be in (0, 1), got %v", c.Eps)
	}
	if c.Delta < 0 || c.Delta >= 1 {
		return fmt.Errorf("query: confidence delta must be in [0, 1), got %v", c.Delta)
	}
	if c.MaxSamples < 0 {
		return fmt.Errorf("query: confidence max samples must be >= 0, got %d", c.MaxSamples)
	}
	return nil
}

// EffDelta returns the policy's delta with the default applied.
func (c Confidence) EffDelta() float64 {
	if c.Delta > 0 {
		return c.Delta
	}
	return DefaultDelta
}

// Budget returns the world cap the executor enforces for this policy
// given the plan's fixed budget: MaxSamples when set, else the fixed
// budget itself.
func (c Confidence) Budget(fixed int) int {
	if c.Enabled() && c.MaxSamples > 0 {
		return c.MaxSamples
	}
	return fixed
}
