package query

import "math"

// Hoeffding error control (Section 5.2.3, [29]): the indicator "object o is
// the ∀NN (∃NN) of q in a sampled world" is a Bernoulli variable, so the
// mean of n independent samples deviates from the true probability by more
// than ε with probability at most 2·exp(−2nε²).

// RequiredSamples returns the smallest sample count n guaranteeing
// P(|estimate − truth| > eps) <= delta.
func RequiredSamples(eps, delta float64) int {
	if eps <= 0 || delta <= 0 || delta >= 1 {
		return math.MaxInt32
	}
	n := math.Log(2/delta) / (2 * eps * eps)
	return int(math.Ceil(n))
}

// ErrorBound returns the ε for which n samples guarantee
// P(|estimate − truth| > ε) <= delta.
func ErrorBound(n int, delta float64) float64 {
	if n <= 0 || delta <= 0 || delta >= 1 {
		return 1
	}
	return math.Sqrt(math.Log(2/delta) / (2 * float64(n)))
}
