package query

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"pnn/internal/inference"
	"pnn/internal/ustree"
)

// samplerCache holds the adapted a-posteriori sampler of every object that
// has been touched by a query, so the expensive forward-backward model
// adaptation (the TS phase of the paper's experiments) runs at most once
// per object over the lifetime of an Engine, no matter how many queries —
// or how many concurrent goroutines — ask for it.
//
// Synchronization is per entry: the cache-wide mutex only guards the map,
// while each entry carries its own ready channel. A goroutine that finds
// an in-flight entry waits for that entry alone, so concurrent queries
// adapt distinct objects in parallel and duplicate adaptation of the same
// object is impossible (single-flight).
type samplerCache struct {
	mu      sync.Mutex
	entries map[int]*cacheEntry

	// The counters are shared between a cache and every cache derived
	// from it (see deriveWithout), so CacheStats stays cumulative across
	// engine versions of a live store.
	builds *atomic.Int64 // model adaptations performed (cache misses)
	hits   *atomic.Int64 // lookups served from a completed entry
}

type cacheEntry struct {
	ready chan struct{} // closed once s/err are set
	s     *inference.Sampler
	err   error
}

func newSamplerCache() *samplerCache {
	return &samplerCache{
		entries: make(map[int]*cacheEntry),
		builds:  new(atomic.Int64),
		hits:    new(atomic.Int64),
	}
}

// deriveWithout returns a new cache carrying over every completed or
// in-flight entry except those for the object indices in drop — the
// carry-over half of a snapshot swap: untouched objects keep their
// adapted samplers, updated ones re-adapt lazily in the derived engine.
// In-flight entries are safe to share: their ready channel is closed by
// whichever engine started the build. The cumulative counters are
// shared, not copied.
func (c *samplerCache) deriveWithout(drop []int) *samplerCache {
	dropSet := make(map[int]bool, len(drop))
	for _, oi := range drop {
		dropSet[oi] = true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	nc := &samplerCache{
		entries: make(map[int]*cacheEntry, len(c.entries)),
		builds:  c.builds,
		hits:    c.hits,
	}
	for oi, e := range c.entries {
		if !dropSet[oi] {
			nc.entries[oi] = e
		}
	}
	return nc
}

// get returns the sampler for object oi, building it with build() on first
// use. The boolean reports whether this call performed the build. Errors
// are cached: an object whose observations cannot be adapted keeps failing
// without redoing the work, until an update to the object invalidates its
// entry (deriveWithout).
func (c *samplerCache) get(oi int, build func() (*inference.Sampler, error)) (*inference.Sampler, bool, error) {
	c.mu.Lock()
	if e, ok := c.entries[oi]; ok {
		c.mu.Unlock()
		<-e.ready
		c.hits.Add(1)
		return e.s, false, e.err
	}
	e := &cacheEntry{ready: make(chan struct{})}
	c.entries[oi] = e
	c.mu.Unlock()

	func() {
		// Close ready even if build panics — otherwise every later
		// lookup of this object would block forever on the entry. The
		// panic is demoted to a cached error so one poisoned object
		// cannot take down callers that merely share a batch with it.
		defer func() {
			if r := recover(); r != nil {
				e.s, e.err = nil, fmt.Errorf("query: sampler build for object %d panicked: %v", oi, r)
			}
			close(e.ready)
		}()
		e.s, e.err = build()
	}()
	c.builds.Add(1)
	return e.s, true, e.err
}

// CacheStats reports the cumulative sampler-cache traffic of an Engine:
// builds is the number of model adaptations performed (one per distinct
// object touched), hits the number of lookups answered without building.
type CacheStats struct {
	Builds int64
	Hits   int64
}

// CacheStats returns the engine's cumulative sampler-cache counters. A
// warmed engine serving repeat traffic should show Builds frozen at the
// number of distinct objects while Hits grows with every query.
func (e *Engine) CacheStats() CacheStats {
	return CacheStats{Builds: e.cache.builds.Load(), Hits: e.cache.hits.Load()}
}

// Sampler returns the cached a-posteriori sampler for object oi, adapting
// the model on first use. Safe for concurrent use; distinct objects adapt
// in parallel.
func (e *Engine) Sampler(oi int) (*inference.Sampler, error) {
	s, _, err := e.sampler(oi)
	return s, err
}

func (e *Engine) sampler(oi int) (*inference.Sampler, bool, error) {
	return e.cache.get(oi, func() (*inference.Sampler, error) {
		m, err := inference.AdaptShared(e.tree.Objects()[oi], e.reach)
		if err != nil {
			return nil, fmt.Errorf("query: adapting object %d: %w", oi, err)
		}
		s := inference.NewSampler(m)
		m.ReleaseReverse()
		return s, nil
	})
}

// buildSamplers returns the refine set (object indices), their samplers
// (parallel slice), the time spent adapting models that were not yet
// cached, and how many models this call actually built.
func (e *Engine) buildSamplers(objIdx []int) ([]int, []*inference.Sampler, time.Duration, int, error) {
	begin := time.Now()
	samplers := make([]*inference.Sampler, len(objIdx))
	built := 0
	for i, oi := range objIdx {
		s, b, err := e.sampler(oi)
		if err != nil {
			return nil, nil, 0, built, err
		}
		if b {
			built++
		}
		samplers[i] = s
	}
	return objIdx, samplers, time.Since(begin), built, nil
}

// PrepareAll adapts every object's model up front, so that subsequent
// queries measure only sampling and evaluation time. It returns the time
// spent (the TS phase of the experiments). Adaptation of distinct objects
// is independent and runs on e's parallelism setting.
func (e *Engine) PrepareAll() (time.Duration, error) {
	begin := time.Now()
	objs := e.tree.Objects()
	workers := e.Parallelism()
	if workers < 1 {
		workers = 1
	}
	if workers > len(objs) {
		workers = len(objs)
	}
	if workers <= 1 {
		for oi := range objs {
			if _, err := e.Sampler(oi); err != nil {
				return 0, err
			}
		}
		return time.Since(begin), nil
	}
	jobs := make(chan int)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for oi := range jobs {
				if _, err := e.Sampler(oi); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	var firstErr error
feed:
	for oi := range objs {
		select {
		case jobs <- oi:
		case firstErr = <-errs:
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr == nil {
		select {
		case firstErr = <-errs:
		default:
		}
	}
	if firstErr != nil {
		return 0, firstErr
	}
	return time.Since(begin), nil
}

// timePrune is the pruning fallback used when the filter step is disabled:
// lifetime checks only.
func (e *Engine) timePrune(ts, te int) ustree.Pruning {
	var pr ustree.Pruning
	if te >= ts {
		// No distance filtering happened, so the influence region is
		// unbounded: every alive object may matter.
		pr.PruneDist = make([]float64, te-ts+1)
		for i := range pr.PruneDist {
			pr.PruneDist[i] = math.Inf(1)
		}
	}
	for oi, o := range e.tree.Objects() {
		if o.First().T <= te && o.Last().T >= ts {
			pr.Influencers = append(pr.Influencers, oi)
			if o.AliveThroughout(ts, te) {
				pr.Candidates = append(pr.Candidates, oi)
			}
		}
	}
	return pr
}
