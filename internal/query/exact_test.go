package query

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"pnn/internal/inference"
	"pnn/internal/uncertain"
)

// TestExactNNMatchesMonteCarlo is the golden cross-check of the exact
// path: possible-world enumeration and the Monte-Carlo engine answer
// the same P∀NN/P∃NN probabilities on a small model, within Hoeffding
// tolerance of the sample budget.
func TestExactNNMatchesMonteCarlo(t *testing.T) {
	const samples = 20000
	sp, tree, eng := lineDB(t, samples,
		[]uncertain.Observation{{T: 0, State: 30}, {T: 5, State: 33}},
		[]uncertain.Observation{{T: 0, State: 35}, {T: 5, State: 31}},
		[]uncertain.Observation{{T: 0, State: 25}, {T: 5, State: 27}},
	)
	objs := exactFromDB(t, tree)
	q := StateQuery(sp.Point(31))
	const ts, te = 1, 4

	exact, err := ExactNN(sp, objs, q, ts, te, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	fa, _, err := eng.ForAllNNSeed(q, ts, te, 0, 17)
	if err != nil {
		t.Fatal(err)
	}
	ex, _, err := eng.ExistsNNSeed(q, ts, te, 0, 18)
	if err != nil {
		t.Fatal(err)
	}
	eps := ErrorBound(samples, 0.001)
	check := func(sem string, res []Result, truth []float64) {
		t.Helper()
		got := make(map[int]float64, len(res))
		for _, r := range res {
			got[r.Obj] = r.Prob
		}
		for oi, want := range truth {
			if d := math.Abs(got[oi] - want); d > eps {
				t.Errorf("%s object %d: exact %.5f vs MC %.5f (Δ=%.5f > ε=%.5f)", sem, oi, want, got[oi], d, eps)
			}
		}
	}
	check("forall", fa, exact.ForAll)
	check("exists", ex, exact.Exists)
}

// TestExactForAllProbCrossChecks validates ExactForAllProb three ways:
// against ExactNN on the full window, against the ∀==∃ degeneracy on
// singleton time sets, and against the Monte-Carlo PCNN path on the
// interval results it reports.
func TestExactForAllProbCrossChecks(t *testing.T) {
	const samples = 20000
	sp, tree, eng := lineDB(t, samples,
		[]uncertain.Observation{{T: 0, State: 30}, {T: 4, State: 32}},
		[]uncertain.Observation{{T: 0, State: 34}, {T: 4, State: 30}},
	)
	objs := exactFromDB(t, tree)
	q := StateQuery(sp.Point(31))
	const ts, te = 1, 3

	exact, err := ExactNN(sp, objs, q, ts, te, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	full := []int{1, 2, 3}
	for oi := range objs {
		p, err := ExactForAllProb(sp, objs, q, oi, full, 1<<22)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p-exact.ForAll[oi]) > 1e-12 {
			t.Errorf("object %d: ExactForAllProb(full window) = %v, ExactNN.ForAll = %v", oi, p, exact.ForAll[oi])
		}
		// On a singleton set, "NN at every t in {2}" and "NN at some t
		// in [2,2]" are the same event.
		p2, err := ExactForAllProb(sp, objs, q, oi, []int{2}, 1<<22)
		if err != nil {
			t.Fatal(err)
		}
		single, err2 := ExactNN(sp, objs, q, 2, 2, 1<<22)
		if err2 != nil {
			t.Fatal(err2)
		}
		if math.Abs(p2-single.Exists[oi]) > 1e-12 {
			t.Errorf("object %d: singleton forall %v != singleton exists %v", oi, p2, single.Exists[oi])
		}
	}

	// PCNN cross-check: every interval the Monte-Carlo lattice walk
	// reports carries a probability within tolerance of the exact
	// probability of that same timestamp set.
	ivs, _, err := eng.CNNSeed(q, ts, te, 0.2, 23)
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) == 0 {
		t.Fatal("PCNN returned no intervals on the fixture")
	}
	eps := ErrorBound(samples, 0.001)
	for _, iv := range ivs {
		want, err := ExactForAllProb(sp, objs, q, iv.Obj, iv.Times, 1<<22)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(iv.Prob - want); d > eps {
			t.Errorf("object %d times %v: MC %.5f vs exact %.5f (Δ=%.5f > ε=%.5f)", iv.Obj, iv.Times, iv.Prob, want, d, eps)
		}
	}
}

// TestSeedEntryPointsMatchLegacy pins the unified RNG API contract: the
// legacy *rand.Rand signatures draw one Int63 as the base seed, so a
// call with a fresh generator equals the Seed variant called with that
// generator's first Int63.
func TestSeedEntryPointsMatchLegacy(t *testing.T) {
	sp, _, eng := lineDB(t, 2000,
		[]uncertain.Observation{{T: 0, State: 30}, {T: 6, State: 32}},
		[]uncertain.Observation{{T: 0, State: 34}, {T: 6, State: 30}},
		[]uncertain.Observation{{T: 0, State: 26}, {T: 6, State: 28}},
	)
	q := StateQuery(sp.Point(30))
	seedOf := func(s int64) int64 { return rand.New(rand.NewSource(s)).Int63() }

	legacyFA, _, err := eng.ForAllNN(q, 1, 5, 0, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	seedFA, _, err := eng.ForAllNNSeed(q, 1, 5, 0, seedOf(5))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacyFA, seedFA) {
		t.Errorf("ForAllNN legacy %v != seed %v", legacyFA, seedFA)
	}

	legacyEX, _, err := eng.ExistsKNN(q, 1, 5, 2, 0, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	seedEX, _, err := eng.ExistsKNNSeed(q, 1, 5, 2, 0, seedOf(6))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacyEX, seedEX) {
		t.Errorf("ExistsKNN legacy %v != seed %v", legacyEX, seedEX)
	}

	legacyCN, _, err := eng.CNN(q, 1, 4, 0.2, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	seedCN, _, err := eng.CNNSeed(q, 1, 4, 0.2, seedOf(7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacyCN, seedCN) {
		t.Errorf("CNN legacy %v != seed %v", legacyCN, seedCN)
	}
}

// TestExactErrorPaths covers the explicit failure modes of the exact
// engines: enumeration caps, degenerate world objects, and models not
// covering the query window.
func TestExactErrorPaths(t *testing.T) {
	sp, tree, _ := lineDB(t, 10,
		[]uncertain.Observation{{T: 0, State: 30}, {T: 6, State: 32}},
		[]uncertain.Observation{{T: 0, State: 34}, {T: 6, State: 30}},
	)
	objs := tree.Objects()

	// PathsOfModel: cap smaller than the trajectory count.
	m0, err := inference.Adapt(objs[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PathsOfModel(m0, 1); err == nil || !strings.Contains(err.Error(), "possible trajectories") {
		t.Errorf("PathsOfModel with maxPaths=1: err = %v, want trajectory-cap error", err)
	}

	// EnumerateWorlds: cap smaller than the cross product.
	wos := exactFromDB(t, tree)
	if err := EnumerateWorlds(wos, 1, func([]uncertain.Path, float64) {}); err == nil ||
		!strings.Contains(err.Error(), "possible worlds") {
		t.Errorf("EnumerateWorlds with maxWorlds=1: err = %v, want world-cap error", err)
	}
	// EnumerateWorlds: an object with no trajectories is malformed.
	if err := EnumerateWorlds([]WorldObject{{}}, 100, func([]uncertain.Path, float64) {}); err == nil ||
		!strings.Contains(err.Error(), "no trajectories") {
		t.Errorf("EnumerateWorlds with empty object: err = %v, want no-trajectories error", err)
	}
	// ExactNN and ExactForAllProb propagate the enumeration failure.
	q := StateQuery(sp.Point(31))
	if _, err := ExactNN(sp, wos, q, 1, 5, 1); err == nil {
		t.Error("ExactNN should propagate the world-cap error")
	}
	if _, err := ExactForAllProb(sp, wos, q, 0, []int{1}, 1); err == nil {
		t.Error("ExactForAllProb should propagate the world-cap error")
	}

	// DominationProb: window not covered by either model.
	m1, err := inference.Adapt(objs[1])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DominationProb(sp, m0, m1, q, 4, 9); err == nil || !strings.Contains(err.Error(), "does not cover") {
		t.Errorf("DominationProb beyond lifetime: err = %v, want coverage error", err)
	}
	if _, err := DominationProb(sp, m1, m0, q, -3, 5); err == nil || !strings.Contains(err.Error(), "does not cover") {
		t.Errorf("DominationProb before lifetime: err = %v, want coverage error", err)
	}

	// Golden in-range check: the Lemma 2 joint-chain recursion equals
	// brute-force enumeration of P(∀t: d(o) <= d(a)) over the two
	// objects' trajectory cross product.
	pOA, err := DominationProb(sp, m0, m1, q, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	err = EnumerateWorlds(wos, 1<<22, func(paths []uncertain.Path, p float64) {
		for t := 1; t <= 5; t++ {
			s0, ok0 := paths[0].At(t)
			s1, ok1 := paths[1].At(t)
			if !ok0 || !ok1 {
				return
			}
			qp := q.At(t)
			if sp.Point(s0).Dist(qp) > sp.Point(s1).Dist(qp) {
				return
			}
		}
		want += p
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pOA-want) > 1e-9 {
		t.Errorf("DominationProb = %v, enumeration says %v", pOA, want)
	}
}
