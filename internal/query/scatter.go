package query

import (
	"fmt"

	"pnn/internal/inference"
	"pnn/internal/ustree"
)

// PruneWindow validates the query window and runs the UST-tree filter
// step, returning the candidate and influence sets of Section 6. It is
// the scatter half of a sharded query: each shard prunes its own
// partition independently, and because a partition's pruning distance is
// computed over fewer objects it can only be looser than the global one,
// the per-shard sets are supersets of the true sets restricted to the
// shard — pruning stays lossless under any partitioning.
func (e *Engine) PruneWindow(q Query, ts, te, k int) (ustree.Pruning, error) {
	if q.Zero() {
		return ustree.Pruning{}, errZeroQuery
	}
	if te < ts {
		return ustree.Pruning{}, fmt.Errorf("query: inverted interval [%d, %d]", ts, te)
	}
	if k < 1 {
		return ustree.Pruning{}, fmt.Errorf("query: need k >= 1, got %d", k)
	}
	if e.noPrune {
		return e.timePrune(ts, te), nil
	}
	return e.tree.PruneK(q.At, ts, te, k), nil
}

// SamplerCached returns the cached a-posteriori sampler for object oi,
// adapting the model on first use; built reports whether this call
// performed the adaptation (the per-query SamplerBuilds accounting).
// Safe for concurrent use; distinct objects adapt in parallel.
func (e *Engine) SamplerCached(oi int) (s *inference.Sampler, built bool, err error) {
	return e.sampler(oi)
}
