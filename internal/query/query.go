// Package query implements the paper's three probabilistic nearest-neighbor
// query semantics over uncertain trajectory databases:
//
//   - P∃NNQ (Definition 1): objects likely to be the NN of q at SOME time
//     in the query interval — NP-hard to compute exactly (Lemma 1).
//   - P∀NNQ (Definition 2): objects likely to be the NN of q at EVERY time
//     in the interval — no known PTIME algorithm (Section 4.2).
//   - PCNNQ (Definition 3): per object, the maximal timestamp sets during
//     which it is likely to always be the NN, computed with the
//     Apriori-style Algorithm 1.
//
// The production path is the Monte-Carlo Engine: UST-tree pruning
// (Section 6) to obtain candidate and influence sets, forward-backward
// model adaptation (Section 5), and possible-world sampling with Hoeffding
// error control. Exact engines (possible-world enumeration and the Lemma 2
// joint-chain domination) are provided for small instances and serve as
// ground truth in tests and effectiveness experiments; the snapshot
// estimator of [19] is included as the accuracy baseline of Figure 11.
package query

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"pnn/internal/geo"
	"pnn/internal/uncertain"
	"pnn/internal/ustree"
)

// Query is the certain reference of a PNN query: a state (point) or a
// trajectory, both exposed as a position per timestep (Section 3.2: "a
// query state is simply a trivial query trajectory").
type Query struct {
	pos func(int) geo.Point
}

// StateQuery returns a query fixed at point p for all times.
func StateQuery(p geo.Point) Query {
	return Query{pos: func(int) geo.Point { return p }}
}

// TrajectoryQuery returns a query following pts, where pts[i] is the
// position at time start+i. Positions clamp to the endpoints outside the
// given range. An empty pts yields the zero Query, which the engine
// rejects instead of dereferencing.
func TrajectoryQuery(start int, pts []geo.Point) Query {
	if len(pts) == 0 {
		return Query{}
	}
	cp := make([]geo.Point, len(pts))
	copy(cp, pts)
	return Query{pos: func(t int) geo.Point {
		i := t - start
		if i < 0 {
			i = 0
		}
		if i >= len(cp) {
			i = len(cp) - 1
		}
		return cp[i]
	}}
}

// At returns the query position at time t.
func (q Query) At(t int) geo.Point { return q.pos(t) }

// Zero reports whether q is the zero value, i.e. carries no reference.
// Zero queries are rejected by the engine rather than dereferenced.
func (q Query) Zero() bool { return q.pos == nil }

var errZeroQuery = errors.New("query: zero Query (build one with StateQuery or TrajectoryQuery)")

// Result is one probabilistic query answer.
type Result struct {
	Obj  int     // index into the engine's object table
	Prob float64 // estimated probability
}

// IntervalResult is one PCNN answer: a maximal timestamp set during which
// the object is always the NN with probability at least τ.
type IntervalResult struct {
	Obj   int
	Times []int // ascending; not necessarily contiguous (Definition 3)
	Prob  float64
}

// Stats reports the work a query performed, split the way the paper's
// efficiency figures are: TS (model adaptation time), and the sampling/
// refinement time (FA/EX/SA in Figures 6-9, 13, 14).
type Stats struct {
	Candidates    int           // |C(q)|
	Influencers   int           // |I(q)|
	Worlds        int           // possible worlds actually drawn (samples_drawn)
	ErrorBound    float64       // Hoeffding ε those worlds guarantee; 0 when exact
	EarlyStopped  bool          // an adaptive plan decided before its budget cap
	LatticeSets   int           // PCNN only: qualifying timestamp sets before maximality filtering
	SamplerBuilds int           // samplers adapted by THIS query (0 on a warm cache)
	AdaptTime     time.Duration // trajectory-sampler initialization (TS)
	RefineTime    time.Duration // sampling + NN evaluation
}

// Engine answers PNN queries over a UST-tree-indexed database by
// Monte-Carlo simulation. It caches adapted models and samplers per
// object (see cache.go), mirroring the paper's split between the one-off
// TS phase and the per-query sampling phase. Engine is safe for
// concurrent queries.
type Engine struct {
	tree     *ustree.Tree
	samples  int
	noPrune  bool
	parallel atomic.Int32

	cache *samplerCache
	reach *uncertain.Reach // shared chain-transpose cache for adaptation
}

// NewEngine creates a query engine drawing `samples` possible worlds per
// query (the paper's default is 10 000).
func NewEngine(tree *ustree.Tree, samples int) *Engine {
	if samples < 1 {
		samples = 1
	}
	e := &Engine{
		tree:    tree,
		samples: samples,
		cache:   newSamplerCache(),
		reach:   uncertain.NewReach(),
	}
	e.parallel.Store(1)
	return e
}

// NewEngineFrom derives an engine over tree, carrying over prev's
// configuration and sampler cache except for the object indices in
// invalidate, whose models must be re-adapted against their updated
// observations. Object indices must mean the same thing in both trees
// (appends and in-place updates preserve them). The derived engine
// shares prev's cumulative cache counters and chain-transpose cache;
// prev itself stays fully usable over its own tree, which is how
// RCU-style snapshot swaps keep in-flight queries consistent.
func NewEngineFrom(prev *Engine, tree *ustree.Tree, invalidate []int) *Engine {
	e := &Engine{
		tree:    tree,
		samples: prev.samples,
		noPrune: prev.noPrune,
		cache:   prev.cache.deriveWithout(invalidate),
		reach:   prev.reach,
	}
	e.parallel.Store(prev.parallel.Load())
	return e
}

// SetParallelism spreads world sampling of ForAllNN/ExistsNN (and their
// kNN variants) across p goroutines. Results remain deterministic for a
// given seed: worker w draws its worlds from a sub-generator seeded by the
// caller's rng, and the static partition of the sample budget does not
// depend on timing. p < 1 is treated as 1. Safe to call while queries
// are running.
func (e *Engine) SetParallelism(p int) {
	if p < 1 {
		p = 1
	}
	e.parallel.Store(int32(p))
}

// Parallelism returns the current per-query sampling parallelism.
func (e *Engine) Parallelism() int { return int(e.parallel.Load()) }

// Tree returns the underlying index.
func (e *Engine) Tree() *ustree.Tree { return e.tree }

// DisablePruning turns off the UST-tree filter step: every object alive in
// the query window is refined. Results are identical (pruning is
// lossless); only the cost changes. Exists solely for the pruning ablation
// benchmarks.
func (e *Engine) DisablePruning() { e.noPrune = true }

// SampleCount returns the number of worlds drawn per query.
func (e *Engine) SampleCount() int { return e.samples }

// ForAllNNSeed answers P∀NNQ(q, D, [ts..te], tau): all objects whose
// probability of being the NN of q at every t in the interval is at least
// tau, with their estimated probabilities, sorted by object index.
// Worlds are drawn from sub-streams of seed (see plan.go for the
// determinism contract); answers depend only on (seed, parallelism).
func (e *Engine) ForAllNNSeed(q Query, ts, te int, tau float64, seed int64) ([]Result, Stats, error) {
	return e.nnQuery(q, ts, te, 1, tau, fixedSeed(seed), true)
}

// ExistsNNSeed answers P∃NNQ(q, D, [ts..te], tau) from sub-streams of
// seed.
func (e *Engine) ExistsNNSeed(q Query, ts, te int, tau float64, seed int64) ([]Result, Stats, error) {
	return e.nnQuery(q, ts, te, 1, tau, fixedSeed(seed), false)
}

// ForAllKNNSeed generalizes ForAllNNSeed to k nearest neighbors
// (Section 8): the probability that the object is among the k nearest
// at every time.
func (e *Engine) ForAllKNNSeed(q Query, ts, te, k int, tau float64, seed int64) ([]Result, Stats, error) {
	return e.nnQuery(q, ts, te, k, tau, fixedSeed(seed), true)
}

// ExistsKNNSeed generalizes ExistsNNSeed to k nearest neighbors.
func (e *Engine) ExistsKNNSeed(q Query, ts, te, k int, tau float64, seed int64) ([]Result, Stats, error) {
	return e.nnQuery(q, ts, te, k, tau, fixedSeed(seed), false)
}

// ForAllKNNConf is ForAllKNNSeed under an adaptive sample-budget
// policy: sampling stops at the first deterministic chunk-round
// boundary at which every candidate's estimate separates from tau by
// more than the Hoeffding error, or escalates to conf's budget cap.
// Stats reports the worlds actually drawn and the error bound they
// guarantee. The zero Confidence draws the fixed budget exactly.
func (e *Engine) ForAllKNNConf(q Query, ts, te, k int, tau float64, seed int64, conf Confidence) ([]Result, Stats, error) {
	return e.nnQueryConf(q, ts, te, k, tau, fixedSeed(seed), true, conf)
}

// ExistsKNNConf is ExistsKNNSeed under an adaptive sample-budget
// policy; see ForAllKNNConf.
func (e *Engine) ExistsKNNConf(q Query, ts, te, k int, tau float64, seed int64, conf Confidence) ([]Result, Stats, error) {
	return e.nnQueryConf(q, ts, te, k, tau, fixedSeed(seed), false, conf)
}

// ForAllNN is ForAllNNSeed with the legacy generator signature: the
// base seed is one Int63 drawn from rng. The draw happens at the point
// the historical implementation consumed it -- after the empty-target
// early return -- so callers sharing one generator across queries
// observe byte-identical sequences.
func (e *Engine) ForAllNN(q Query, ts, te int, tau float64, rng *rand.Rand) ([]Result, Stats, error) {
	return e.nnQuery(q, ts, te, 1, tau, rng.Int63, true)
}

// ExistsNN is ExistsNNSeed with the legacy generator signature.
func (e *Engine) ExistsNN(q Query, ts, te int, tau float64, rng *rand.Rand) ([]Result, Stats, error) {
	return e.nnQuery(q, ts, te, 1, tau, rng.Int63, false)
}

// ForAllKNN is ForAllKNNSeed with the legacy generator signature.
func (e *Engine) ForAllKNN(q Query, ts, te, k int, tau float64, rng *rand.Rand) ([]Result, Stats, error) {
	return e.nnQuery(q, ts, te, k, tau, rng.Int63, true)
}

// ExistsKNN is ExistsKNNSeed with the legacy generator signature.
func (e *Engine) ExistsKNN(q Query, ts, te, k int, tau float64, rng *rand.Rand) ([]Result, Stats, error) {
	return e.nnQuery(q, ts, te, k, tau, rng.Int63, false)
}

// fixedSeed adapts an int64 seed to the lazy seed-provider shape shared
// with the legacy *rand.Rand wrappers.
func fixedSeed(seed int64) func() int64 { return func() int64 { return seed } }

// nnQuery answers the count-based semantics (∀/∃, any k) as a
// thin plan construction over the shared executor: prune, adapt
// samplers, attach a CountEvaluator, Execute. seed is consulted lazily
// -- only when worlds are actually drawn -- which keeps the legacy
// wrappers' generator consumption identical to the historical
// implementation.
func (e *Engine) nnQuery(q Query, ts, te, k int, tau float64, seed func() int64, forall bool) ([]Result, Stats, error) {
	return e.nnQueryConf(q, ts, te, k, tau, seed, forall, Confidence{})
}

// nnQueryConf is nnQuery with an adaptive sample-budget policy; the
// zero Confidence draws the engine's full fixed budget.
func (e *Engine) nnQueryConf(q Query, ts, te, k int, tau float64, seed func() int64, forall bool, conf Confidence) ([]Result, Stats, error) {
	var st Stats
	if q.Zero() {
		return nil, st, errZeroQuery
	}
	if te < ts {
		return nil, st, fmt.Errorf("query: inverted interval [%d, %d]", ts, te)
	}
	var pr ustree.Pruning
	if e.noPrune {
		pr = e.timePrune(ts, te)
	} else {
		pr = e.tree.PruneK(q.At, ts, te, k)
	}
	st.Candidates = len(pr.Candidates)
	st.Influencers = len(pr.Influencers)

	// For exists semantics every influencer is a potential result
	// (Section 6: "every pruner can be a valid result of the P∃NNQ
	// query").
	targets := pr.Candidates
	if !forall {
		targets = pr.Influencers
	}
	if len(targets) == 0 {
		return nil, st, nil
	}

	refine, samplers, adapt, built, err := e.buildSamplers(pr.Influencers)
	if err != nil {
		return nil, st, err
	}
	st.AdaptTime = adapt
	st.SamplerBuilds = built

	begin := time.Now()
	localIdx := make(map[int]int, len(refine))
	for li, oi := range refine {
		localIdx[oi] = li
	}
	tgtLocal := make([]int, len(targets))
	for ci, oi := range targets {
		tgtLocal[ci] = localIdx[oi]
	}
	ev := NewCountEvaluator(k, forall, tgtLocal)
	ev.SetBound(conf, tau)
	plan := e.NewPlan(q, ts, te, samplers, seed())
	plan.Confidence = conf
	plan.Attach(ev)
	es, err := e.Execute(plan)
	if err != nil {
		return nil, st, err
	}
	counts := ev.Counts()
	st.Worlds = es.Worlds
	st.ErrorBound = es.ErrorBound
	st.EarlyStopped = es.EarlyStopped
	st.RefineTime = time.Since(begin)

	var out []Result
	for ci, oi := range targets {
		p := float64(counts[ci]) / float64(es.Worlds)
		if p >= tau && p > 0 {
			out = append(out, Result{Obj: oi, Prob: p})
		}
	}
	return out, st, nil
}
