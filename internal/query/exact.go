package query

import (
	"errors"
	"fmt"
	"math"

	"pnn/internal/geo"
	"pnn/internal/inference"
	"pnn/internal/space"
	"pnn/internal/uncertain"
)

// WorldObject is an object given by its explicit possible trajectories and
// their probabilities — the representation of Figure 1's worked example.
// Probabilities must sum to 1.
type WorldObject struct {
	Paths []uncertain.Path
	Probs []float64
}

// PathsOfModel enumerates every possible trajectory of an adapted model
// together with its posterior probability, up to maxPaths (error beyond).
// Enumeration multiplies the adapted transition probabilities F(t), whose
// product over a path equals the possible-world probability conditioned on
// the observations.
func PathsOfModel(m *inference.Model, maxPaths int) (WorldObject, error) {
	var out WorldObject
	start, end := m.Start(), m.End()
	var rec func(t int, states []int32, p float64) error
	rec = func(t int, states []int32, p float64) error {
		if t == end {
			if len(out.Paths) >= maxPaths {
				return fmt.Errorf("query: object has more than %d possible trajectories", maxPaths)
			}
			cp := make([]int32, len(states))
			copy(cp, states)
			out.Paths = append(out.Paths, uncertain.Path{Start: start, States: cp})
			out.Probs = append(out.Probs, p)
			return nil
		}
		row := m.Transition(t).Row(int(states[t-start]))
		for _, e := range row.Entries() {
			if err := rec(t+1, append(states, int32(e.Idx)), p*e.Val); err != nil {
				return err
			}
		}
		return nil
	}
	first := []int32{int32(m.Object().First().State)}
	if err := rec(start, first, 1); err != nil {
		return WorldObject{}, err
	}
	return out, nil
}

// EnumerateWorlds visits every possible world of the given objects (the
// cross product of their trajectory sets) with its probability, assuming
// object independence (Section 3.2). It fails when the world count exceeds
// maxWorlds.
func EnumerateWorlds(objs []WorldObject, maxWorlds int, fn func(paths []uncertain.Path, p float64)) error {
	total := 1
	for _, o := range objs {
		if len(o.Paths) == 0 {
			return errors.New("query: world object with no trajectories")
		}
		if total > maxWorlds/len(o.Paths)+1 {
			return fmt.Errorf("query: more than %d possible worlds", maxWorlds)
		}
		total *= len(o.Paths)
	}
	if total > maxWorlds {
		return fmt.Errorf("query: %d possible worlds exceed limit %d", total, maxWorlds)
	}
	paths := make([]uncertain.Path, len(objs))
	var rec func(i int, p float64)
	rec = func(i int, p float64) {
		if i == len(objs) {
			fn(paths, p)
			return
		}
		for k, path := range objs[i].Paths {
			paths[i] = path
			rec(i+1, p*objs[i].Probs[k])
		}
	}
	rec(0, 1)
	return nil
}

// ExactResult holds exact possible-world probabilities for one database.
type ExactResult struct {
	ForAll []float64 // P∀NN per object
	Exists []float64 // P∃NN per object
}

// ExactNN computes exact P∀NN and P∃NN probabilities for every object by
// full possible-world enumeration (the naive algorithm of Example 1).
// Intended for small instances and ground-truth generation; maxWorlds
// bounds the enumeration.
func ExactNN(sp *space.Space, objs []WorldObject, q Query, ts, te, maxWorlds int) (ExactResult, error) {
	res := ExactResult{
		ForAll: make([]float64, len(objs)),
		Exists: make([]float64, len(objs)),
	}
	err := EnumerateWorlds(objs, maxWorlds, func(paths []uncertain.Path, p float64) {
		for oi := range objs {
			if exactIsNNThroughout(sp, paths, q, oi, ts, te) {
				res.ForAll[oi] += p
			}
			if exactIsNNSometime(sp, paths, q, oi, ts, te) {
				res.Exists[oi] += p
			}
		}
	})
	return res, err
}

// ExactForAllProb computes P(∀t ∈ times: o_oi is NN) exactly by
// enumeration, for PCNN ground truth over arbitrary (possibly
// non-contiguous) timestamp sets.
func ExactForAllProb(sp *space.Space, objs []WorldObject, q Query, oi int, times []int, maxWorlds int) (float64, error) {
	prob := 0.0
	err := EnumerateWorlds(objs, maxWorlds, func(paths []uncertain.Path, p float64) {
		for _, t := range times {
			if !exactIsNNAt(sp, paths, q, oi, t) {
				return
			}
		}
		prob += p
	})
	return prob, err
}

func exactIsNNAt(sp *space.Space, paths []uncertain.Path, q Query, oi, t int) bool {
	si, ok := paths[oi].At(t)
	if !ok {
		return false
	}
	qp := q.At(t)
	d := sp.Point(si).Dist(qp)
	for oj := range paths {
		if oj == oi {
			continue
		}
		if sj, ok := paths[oj].At(t); ok && sp.Point(sj).Dist(qp) < d {
			return false
		}
	}
	return true
}

func exactIsNNThroughout(sp *space.Space, paths []uncertain.Path, q Query, oi, ts, te int) bool {
	for t := ts; t <= te; t++ {
		if !exactIsNNAt(sp, paths, q, oi, t) {
			return false
		}
	}
	return true
}

func exactIsNNSometime(sp *space.Space, paths []uncertain.Path, q Query, oi, ts, te int) bool {
	for t := ts; t <= te; t++ {
		if exactIsNNAt(sp, paths, q, oi, t) {
			return true
		}
	}
	return false
}

// DominationProb computes P(o ≺ oa) — the probability that object o is at
// least as close to q as object oa at EVERY t ∈ [ts, te] — exactly and in
// polynomial time, per Lemma 2: the pair (o, oa) is treated as one joint
// Markov process over S×S whose non-dominating entries are zeroed at each
// timestep. Both models must cover [ts, te].
func DominationProb(sp *space.Space, mo, ma *inference.Model, q Query, ts, te int) (float64, error) {
	if mo.Start() > ts || mo.End() < te {
		return 0, fmt.Errorf("query: model of object %d does not cover [%d, %d]", mo.Object().ID, ts, te)
	}
	if ma.Start() > ts || ma.End() < te {
		return 0, fmt.Errorf("query: model of object %d does not cover [%d, %d]", ma.Object().ID, ts, te)
	}
	type pair struct{ a, b int32 }
	// Joint distribution at ts: the objects are independent given their
	// own observations.
	joint := make(map[pair]float64)
	qp := q.At(ts)
	for sa, pa := range mo.Posterior(ts) {
		da := sp.Point(sa).Dist(qp)
		for sb, pb := range ma.Posterior(ts) {
			if da <= sp.Point(sb).Dist(qp) {
				joint[pair{int32(sa), int32(sb)}] = pa * pb
			}
		}
	}
	for t := ts; t < te; t++ {
		fo, fa := mo.Transition(t), ma.Transition(t)
		qp := q.At(t + 1)
		next := make(map[pair]float64, len(joint))
		// Cache per-state distances at t+1.
		dcache := make(map[int32]float64)
		dist := func(s int32) float64 {
			if d, ok := dcache[s]; ok {
				return d
			}
			d := sp.Point(int(s)).Dist(qp)
			dcache[s] = d
			return d
		}
		for pr, w := range joint {
			rowA := fo.Row(int(pr.a))
			rowB := fa.Row(int(pr.b))
			for na, pa := range rowA {
				da := dist(int32(na))
				for nb, pb := range rowB {
					if da <= dist(int32(nb)) {
						next[pair{int32(na), int32(nb)}] += w * pa * pb
					}
				}
			}
		}
		joint = next
	}
	total := 0.0
	for _, w := range joint {
		total += w
	}
	if total > 1+1e-9 {
		return 0, fmt.Errorf("query: joint mass %v exceeds 1 (numerical fault)", total)
	}
	return math.Min(total, 1), nil
}

// statePoint is a small helper shared by tests.
func statePoint(sp *space.Space, s int) geo.Point { return sp.Point(s) }
