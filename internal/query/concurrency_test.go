package query

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"pnn/internal/inference"
	"pnn/internal/uncertain"
)

// TestEngineConcurrentQueries exercises the engine's advertised thread
// safety: many goroutines issue queries against one engine (sharing the
// lazily-populated sampler cache) and must all observe identical results
// for identical seeds.
func TestEngineConcurrentQueries(t *testing.T) {
	sp, _, eng := lineDB(t, 2000,
		[]uncertain.Observation{{T: 0, State: 30}, {T: 8, State: 32}},
		[]uncertain.Observation{{T: 0, State: 34}, {T: 8, State: 30}},
		[]uncertain.Observation{{T: 0, State: 26}, {T: 8, State: 28}},
		[]uncertain.Observation{{T: 0, State: 40}, {T: 8, State: 44}},
	)
	q := StateQuery(sp.Point(31))
	const workers = 8
	results := make([][]Result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(99))
			res, _, err := eng.ForAllNN(q, 1, 7, 0, rng)
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			results[w] = res
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if len(results[w]) != len(results[0]) {
			t.Fatalf("worker %d saw %d results, worker 0 saw %d", w, len(results[w]), len(results[0]))
		}
		for i := range results[w] {
			if results[w][i].Obj != results[0][i].Obj ||
				math.Abs(results[w][i].Prob-results[0][i].Prob) > 1e-12 {
				t.Fatalf("worker %d diverged: %+v vs %+v", w, results[w][i], results[0][i])
			}
		}
	}
}

// TestEngineDisablePruningSameResults checks the ablation switch is
// lossless: with identical seeds, pruned and unpruned engines agree.
func TestEngineDisablePruningSameResults(t *testing.T) {
	sp, tree, eng := lineDB(t, 3000,
		[]uncertain.Observation{{T: 0, State: 30}, {T: 8, State: 32}},
		[]uncertain.Observation{{T: 0, State: 35}, {T: 8, State: 31}},
		[]uncertain.Observation{{T: 0, State: 50}, {T: 8, State: 55}},
	)
	q := StateQuery(sp.Point(31))
	res1, st1, err := eng.ForAllNN(q, 1, 7, 0, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	noPrune := NewEngine(tree, 3000)
	noPrune.DisablePruning()
	res2, st2, err := noPrune.ForAllNN(q, 1, 7, 0, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if st2.Influencers < st1.Influencers {
		t.Errorf("unpruned influencers (%d) must be >= pruned (%d)", st2.Influencers, st1.Influencers)
	}
	// Same objects above any threshold; probabilities within MC noise of
	// each other (different refine sets perturb the random stream, so an
	// exact match is not guaranteed).
	p1 := map[int]float64{}
	for _, r := range res1 {
		p1[r.Obj] = r.Prob
	}
	for _, r := range res2 {
		if r.Prob > 0.05 {
			if v, ok := p1[r.Obj]; !ok || math.Abs(v-r.Prob) > 0.05 {
				t.Errorf("object %d: pruned %v vs unpruned %v", r.Obj, v, r.Prob)
			}
		}
	}
	// The far object 2 must not be a result either way.
	for _, r := range res2 {
		if r.Obj == 2 && r.Prob > 0.01 {
			t.Errorf("far object got probability %v", r.Prob)
		}
	}
}

func TestPathsOfModelLimit(t *testing.T) {
	_, tree, _ := lineDB(t, 1,
		[]uncertain.Observation{{T: 0, State: 30}, {T: 8, State: 30}})
	m, err := inference.Adapt(tree.Objects()[0])
	if err != nil {
		t.Fatal(err)
	}
	// An 8-step loosely-constrained gap has far more than 10 trajectories.
	if _, err := PathsOfModel(m, 10); err == nil {
		t.Error("expected path-limit error")
	}
	// And a generous limit succeeds with probabilities summing to 1.
	wo, err := PathsOfModel(m, 1000000)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, p := range wo.Probs {
		total += p
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("path probabilities sum to %v", total)
	}
	// Every enumerated path must hit the observations.
	for _, p := range wo.Paths {
		if !p.HitsObservations(tree.Objects()[0]) {
			t.Fatal("enumerated path misses an observation")
		}
	}
}
