package query

import (
	"sync"

	"pnn/internal/inference"
	"pnn/internal/mcrand"
	"pnn/internal/nn"
)

// worldChunk is the shared chunking policy of the columnar kernel; see
// nn.WorldChunk.
const worldChunk = nn.WorldChunk

// mcScratch is the per-worker scratch of the Monte-Carlo kernel: the
// columnar world batch a worker fills and evaluates chunk after chunk.
// Workers check one out of mcPool for the duration of their sample
// budget, so steady-state query traffic draws millions of worlds
// without allocating.
type mcScratch struct {
	batch nn.WorldBatch
}

var mcPool = sync.Pool{New: func() any { return new(mcScratch) }}

// countChunk draws `worlds` possible worlds in columnar chunks from rng
// and accumulates into out (zeroed, length len(tgtLocal)), per target
// row, the worlds in which the target's (∀ or ∃) k-NN predicate holds.
// tgtLocal maps target rows to sampler rows.
func (e *Engine) countChunk(samplers []*inference.Sampler, q Query, ts, te, k int, forall bool, tgtLocal []int, worlds int, rng *mcrand.RNG, out []int) {
	sc := mcPool.Get().(*mcScratch)
	defer mcPool.Put(sc)
	sp := e.tree.Space()
	for w0 := 0; w0 < worlds; w0 += worldChunk {
		cn := worldChunk
		if left := worlds - w0; left < cn {
			cn = left
		}
		sc.batch.Reset(len(samplers), cn, ts, te)
		for li, s := range samplers {
			for w := 0; w < cn; w++ {
				s.SampleWindowInto(rng, ts, te, sc.batch.States(li, w))
			}
		}
		sc.batch.ComputeDistances(sp, q.At)
		for w := 0; w < cn; w++ {
			for ci, li := range tgtLocal {
				if forall {
					if sc.batch.KNNThroughout(w, li, k) {
						out[ci]++
					}
				} else if sc.batch.KNNSometime(w, li, k) {
					out[ci]++
				}
			}
		}
	}
}
