package query

import (
	"math"
	"sort"

	"pnn/internal/inference"
	"pnn/internal/space"
)

// SnapshotEstimator implements the competitor of Xu et al. [19] as adapted
// in Section 7.1 ("Sampling Precision and Effectiveness"): it evaluates a
// snapshot NN probability P∀NN(o, q, D, {t}) independently at each
// timestep and combines them as if timesteps were independent:
//
//	P∀NN(o, q, D, T) ≈ Π_{t∈T} P_NN(o, t)
//	P∃NN(o, q, D, T) ≈ 1 − Π_{t∈T} (1 − P_NN(o, t))
//
// Ignoring the temporal correlation of trajectories biases the ∀ estimate
// low and the ∃ estimate high (Figure 11), which is exactly what the
// effectiveness experiment demonstrates.
type SnapshotEstimator struct {
	sp     *space.Space
	models []*inference.Model
}

// NewSnapshotEstimator wraps adapted models of the competing objects.
func NewSnapshotEstimator(sp *space.Space, models []*inference.Model) *SnapshotEstimator {
	return &SnapshotEstimator{sp: sp, models: models}
}

// snapshotDist is one object's distance distribution at a fixed time:
// sorted unique distances with their probabilities and suffix sums.
type snapshotDist struct {
	d      []float64 // ascending
	p      []float64
	suffix []float64 // suffix[i] = Σ_{j>=i} p[j]
}

// geqProb returns P(distance >= d).
func (s *snapshotDist) geqProb(d float64) float64 {
	if s == nil {
		return 1 // object not alive: it never competes
	}
	i := sort.SearchFloat64s(s.d, d)
	if i == len(s.d) {
		return 0
	}
	return s.suffix[i]
}

// NNProbAt returns, for each object, the probability that it is the NN of
// q at time t, treating objects as independent (which they are) and using
// the posterior marginal at t only.
func (e *SnapshotEstimator) NNProbAt(q Query, t int) []float64 {
	qp := q.At(t)
	dists := make([]*snapshotDist, len(e.models))
	for i, m := range e.models {
		post := m.Posterior(t)
		if post == nil {
			continue
		}
		ents := post.Entries()
		type dp struct{ d, p float64 }
		tmp := make([]dp, len(ents))
		for k, en := range ents {
			tmp[k] = dp{e.sp.Point(en.Idx).Dist(qp), en.Val}
		}
		sort.Slice(tmp, func(a, b int) bool { return tmp[a].d < tmp[b].d })
		sd := &snapshotDist{}
		for _, x := range tmp {
			if n := len(sd.d); n > 0 && sd.d[n-1] == x.d {
				sd.p[n-1] += x.p
			} else {
				sd.d = append(sd.d, x.d)
				sd.p = append(sd.p, x.p)
			}
		}
		sd.suffix = make([]float64, len(sd.p)+1)
		for k := len(sd.p) - 1; k >= 0; k-- {
			sd.suffix[k] = sd.suffix[k+1] + sd.p[k]
		}
		sd.suffix = sd.suffix[:len(sd.p)]
		dists[i] = sd
	}
	out := make([]float64, len(e.models))
	for i := range e.models {
		sd := dists[i]
		if sd == nil {
			continue
		}
		p := 0.0
		for k, d := range sd.d {
			prod := sd.p[k]
			for j, other := range dists {
				if j == i {
					continue
				}
				prod *= other.geqProb(d)
				if prod == 0 {
					break
				}
			}
			p += prod
		}
		out[i] = p
	}
	return out
}

// ForAllNN estimates P∀NN per object over [ts, te] under the snapshot
// independence assumption.
func (e *SnapshotEstimator) ForAllNN(q Query, ts, te int) []float64 {
	out := make([]float64, len(e.models))
	for i := range out {
		out[i] = 1
	}
	for t := ts; t <= te; t++ {
		probs := e.NNProbAt(q, t)
		for i := range out {
			out[i] *= probs[i]
		}
	}
	for i, m := range e.models {
		if m.Start() > ts || m.End() < te {
			out[i] = 0 // not alive throughout
		}
	}
	return out
}

// ExistsNN estimates P∃NN per object over [ts, te] under the snapshot
// independence assumption.
func (e *SnapshotEstimator) ExistsNN(q Query, ts, te int) []float64 {
	miss := make([]float64, len(e.models))
	for i := range miss {
		miss[i] = 1
	}
	for t := ts; t <= te; t++ {
		probs := e.NNProbAt(q, t)
		for i := range miss {
			miss[i] *= 1 - probs[i]
		}
	}
	out := make([]float64, len(e.models))
	for i := range out {
		out[i] = 1 - miss[i]
		if out[i] < 0 {
			out[i] = 0
		}
		if math.IsNaN(out[i]) {
			out[i] = 0
		}
	}
	return out
}
