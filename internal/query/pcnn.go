package query

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"pnn/internal/ustree"
)

// maxPCNNSets caps the number of timestamp sets a PCNN query may examine.
// Definition 3 admits result sets exponential in |T| as τ → 0 (Section
// 4.3); the cap turns pathological parameterizations into an explicit
// error rather than an effectively unbounded computation.
const maxPCNNSets = 200000

// CNN answers PCNNQ(q, D, [ts..te], tau) using Algorithm 1: for every
// candidate object an Apriori-style walk over timestamp sets, keeping a set
// Ti when P∀NN(o, q, D, Ti) >= tau and extending only sets all of whose
// subsets qualified (anti-monotonicity of P∀NN). Following the paper's
// refined definition, only maximal qualifying sets are returned.
//
// All timestamp sets of one object are evaluated against one shared pool of
// sampled worlds, so the sampling cost is paid once per object rather than
// once per lattice node.
func (e *Engine) CNN(q Query, ts, te int, tau float64, rng *rand.Rand) ([]IntervalResult, Stats, error) {
	return e.CNNK(q, ts, te, 1, tau, rng)
}

// CNNSeed is CNN with the unified seed contract: worlds are drawn from
// sub-streams of seed, as in ForAllNNSeed.
func (e *Engine) CNNSeed(q Query, ts, te int, tau float64, seed int64) ([]IntervalResult, Stats, error) {
	return e.cnnQuery(q, ts, te, 1, tau, fixedSeed(seed), Confidence{})
}

// CNNKSeed is CNNK with the unified seed contract.
func (e *Engine) CNNKSeed(q Query, ts, te, k int, tau float64, seed int64) ([]IntervalResult, Stats, error) {
	return e.cnnQuery(q, ts, te, k, tau, fixedSeed(seed), Confidence{})
}

// CNNK generalizes CNN to k nearest neighbors (PCkNNQ, Section 8): maximal
// timestamp sets on which the object stays among the k nearest with
// probability at least tau. The legacy generator signature draws the
// base seed from rng exactly where the historical implementation did —
// after the empty-influencer early return.
func (e *Engine) CNNK(q Query, ts, te, k int, tau float64, rng *rand.Rand) ([]IntervalResult, Stats, error) {
	return e.cnnQuery(q, ts, te, k, tau, rng.Int63, Confidence{})
}

// CNNKConf is CNNKSeed under an adaptive sample-budget policy: the
// lattice walk's frequencies are mined from however many worlds the
// accuracy rule needed (PCNN has no per-estimate threshold to separate
// from, so the policy stops once the Hoeffding error reaches conf.Eps).
func (e *Engine) CNNKConf(q Query, ts, te, k int, tau float64, seed int64, conf Confidence) ([]IntervalResult, Stats, error) {
	return e.cnnQuery(q, ts, te, k, tau, fixedSeed(seed), conf)
}

// cnnQuery answers PCkNNQ as a plan construction over the shared
// executor: one MaskEvaluator accumulates every world's per-timestep
// NN-set rows, then the Apriori lattice walk mines them per object.
// Sampling runs on one worker — the lattice walk needs every world's
// masks in memory anyway, so there is no budget split — which keeps the
// drawn worlds identical to the historical single-stream loop.
func (e *Engine) cnnQuery(q Query, ts, te, k int, tau float64, seed func() int64, conf Confidence) ([]IntervalResult, Stats, error) {
	var st Stats
	if q.Zero() {
		return nil, st, errZeroQuery
	}
	if te < ts {
		return nil, st, fmt.Errorf("query: inverted interval [%d, %d]", ts, te)
	}
	if tau <= 0 {
		return nil, st, fmt.Errorf("query: PCNN requires tau > 0, got %v", tau)
	}
	if k < 1 {
		return nil, st, fmt.Errorf("query: PCNN requires k >= 1, got %d", k)
	}
	var pr ustree.Pruning
	if e.noPrune {
		pr = e.timePrune(ts, te)
	} else {
		pr = e.tree.PruneK(q.At, ts, te, k)
	}
	st.Candidates = len(pr.Candidates)
	st.Influencers = len(pr.Influencers)
	// A PCNN result only needs the object to be NN during SOME subset of
	// T, so every influencer is a potential result object, as in P∃NN.
	if len(pr.Influencers) == 0 {
		return nil, st, nil
	}
	refine, samplers, adapt, built, err := e.buildSamplers(pr.Influencers)
	if err != nil {
		return nil, st, err
	}
	st.AdaptTime = adapt
	st.SamplerBuilds = built

	begin := time.Now()
	nT := te - ts + 1
	nR := len(refine)
	// The mask backing must hold the worst case the policy may draw;
	// after the run only the rows actually written are mined.
	ev := NewMaskEvaluator(k, nR, nT, conf.Budget(e.samples))
	ev.SetBound(conf)
	plan := e.NewPlan(q, ts, te, samplers, seed())
	plan.Workers = 1
	plan.Confidence = conf
	plan.Attach(ev)
	es, err := e.Execute(plan)
	if err != nil {
		return nil, st, err
	}
	masks := ev.Masks()[:es.Worlds]
	st.Worlds = es.Worlds
	st.ErrorBound = es.ErrorBound
	st.EarlyStopped = es.EarlyStopped

	var out []IntervalResult
	for li, oi := range refine {
		sets, qualifying, err := MineTimeSets(masks, li, nT, tau)
		if err != nil {
			return nil, st, err
		}
		st.LatticeSets += qualifying
		for _, s := range sets {
			times := make([]int, len(s.Offsets))
			for i, k := range s.Offsets {
				times[i] = ts + k
			}
			out = append(out, IntervalResult{Obj: oi, Times: times, Prob: s.Prob})
		}
	}
	st.RefineTime = time.Since(begin)
	sort.Slice(out, func(a, b int) bool {
		if out[a].Obj != out[b].Obj {
			return out[a].Obj < out[b].Obj
		}
		return lessIntSlice(out[a].Times, out[b].Times)
	})
	return out, st, nil
}

// TimeSet is one maximal qualifying timestamp set of the PCNN lattice
// walk: ascending offsets into the query window plus its estimated
// probability.
type TimeSet struct {
	Offsets []int // ascending offsets into [0, nT)
	Prob    float64
}

// MineTimeSets runs the Apriori lattice walk (Algorithm 1) for one
// object over precomputed per-world NN masks, returning the maximal
// qualifying sets plus the total number of qualifying sets found (the
// paper's "unprocessed result set" size). masks[w][li*nT+j] reports
// whether the object at row li satisfied the NN predicate at window
// offset j in world w — the layout both Engine.CNNK and the sharded
// scatter-gather executor produce, which is why the miner is exported:
// the lattice walk is identical however the worlds were sampled.
func MineTimeSets(masks [][]bool, li, nT int, tau float64) ([]TimeSet, int, error) {
	support := func(items []int) float64 {
		count := 0
		for _, row := range masks {
			ok := true
			for _, k := range items {
				if !row[li*nT+k] {
					ok = false
					break
				}
			}
			if ok {
				count++
			}
		}
		return float64(count) / float64(len(masks))
	}

	// L1 (Algorithm 1, line 1).
	var level []TimeSet
	for k := 0; k < nT; k++ {
		if p := support([]int{k}); p >= tau {
			level = append(level, TimeSet{Offsets: []int{k}, Prob: p})
		}
	}
	all := append([]TimeSet(nil), level...)
	examined := len(level)

	// Iterate k = 2.. (lines 2-5).
	for len(level) > 0 {
		prevKeys := make(map[string]bool, len(level))
		for _, s := range level {
			prevKeys[key(s.Offsets)] = true
		}
		var next []TimeSet
		for i := 0; i < len(level); i++ {
			for j := i + 1; j < len(level); j++ {
				cand, ok := join(level[i].Offsets, level[j].Offsets)
				if !ok {
					continue
				}
				if !allSubsetsIn(cand, prevKeys) {
					continue
				}
				examined++
				if examined > maxPCNNSets {
					return nil, 0, fmt.Errorf(
						"query: PCNN lattice exceeded %d candidate sets; raise tau or shorten T", maxPCNNSets)
				}
				if p := support(cand); p >= tau {
					next = append(next, TimeSet{Offsets: cand, Prob: p})
				}
			}
		}
		all = append(all, next...)
		level = next
	}

	// Keep only maximal sets (Definition 3, refined form).
	var out []TimeSet
	for i, s := range all {
		maximal := true
		for j, t := range all {
			if i != j && len(t.Offsets) > len(s.Offsets) && isSubset(s.Offsets, t.Offsets) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, s)
		}
	}
	return out, len(all), nil
}

// join merges two sorted k-sets sharing their first k-1 elements into a
// (k+1)-set — the classic Apriori candidate generation.
func join(a, b []int) ([]int, bool) {
	n := len(a)
	for i := 0; i < n-1; i++ {
		if a[i] != b[i] {
			return nil, false
		}
	}
	if a[n-1] >= b[n-1] {
		return nil, false
	}
	out := make([]int, n+1)
	copy(out, a)
	out[n] = b[n-1]
	return out, true
}

// allSubsetsIn checks the Apriori prune condition: every (k-1)-subset of
// cand must have qualified in the previous level.
func allSubsetsIn(cand []int, prev map[string]bool) bool {
	sub := make([]int, 0, len(cand)-1)
	for drop := 0; drop < len(cand); drop++ {
		sub = sub[:0]
		for i, v := range cand {
			if i != drop {
				sub = append(sub, v)
			}
		}
		if !prev[key(sub)] {
			return false
		}
	}
	return true
}

func key(items []int) string {
	b := make([]byte, 0, len(items)*3)
	for _, v := range items {
		b = append(b, byte(v), byte(v>>8), ',')
	}
	return string(b)
}

func isSubset(a, b []int) bool {
	i := 0
	for _, v := range b {
		if i < len(a) && a[i] == v {
			i++
		}
	}
	return i == len(a)
}

func lessIntSlice(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
