package query

import (
	"fmt"
	"sync"

	"pnn/internal/inference"
	"pnn/internal/mcrand"
	"pnn/internal/nn"
	"pnn/internal/space"
)

// This file is the single Monte-Carlo sampling loop of the system. Every
// query semantics — P∀NNQ, P∃NNQ, their kNN variants, PCNNQ — and every
// deployment shape (single engine, sharded scatter-gather, coalesced
// batches) evaluates the same set of sampled possible worlds; what
// differs is only which per-chunk consumers (Evaluators) are attached to
// the Plan and how the worlds are drawn. The paper's sampling approach
// (Section 6) makes no distinction between the semantics beyond the
// per-world predicate, so neither does the executor.
//
// Two draw policies exist, both living entirely in this file:
//
//   - budget-split: the sample budget is divided statically across
//     Workers; worker w draws every influencer's trajectories from the
//     sub-stream mcrand.SubSeed(BaseSeed, w). Used by the single-engine
//     query path. Answers depend only on (BaseSeed, Workers), never on
//     scheduling.
//   - per-row: every object row carries its own generator, seeded by
//     mcrand.SubSeed(request seed, object ID) by the sharded executor.
//     Because a row's draws depend on nothing but its own generator, the
//     sampled worlds are byte-identical for any shard count and any
//     FillGroups partition — the S ∈ {1,2,4} equivalence contract.

// worldChunk is the chunking policy of the executor; see nn.WorldChunk.
const worldChunk = nn.WorldChunk

// batchPool recycles the columnar world batches of the executor across
// queries and workers; a warmed pool makes steady-state sampling
// allocation-free.
var batchPool = sync.Pool{New: func() any { return new(nn.WorldBatch) }}

// Evaluator is a per-chunk consumer of sampled possible worlds: the
// predicate side of one query semantics, decoupled from the sampling
// loop. Any number of evaluators may be attached to one Plan; each
// world is handed to every evaluator exactly once, which is what lets a
// coalesced batch of queries share a single world set.
type Evaluator interface {
	// Bind is called once before sampling with the worker fan-out the
	// executor will use; evaluators allocate per-worker accumulators
	// here so World never needs synchronization.
	Bind(workers int)
	// World is called exactly once per sampled world: worker identifies
	// the calling goroutine (disjoint ids in [0, workers)), w is the
	// global world number in [0, Samples), and wi is the world's row in
	// b. Implementations must write only per-worker or per-world state.
	World(worker, w int, b *nn.WorldBatch, wi int)
}

// CountEvaluator counts, per target row, the worlds in which the row's
// k-NN predicate holds: throughout the window (∀, Definition 2) or at
// some timestep (∃, Definition 1). It is the evaluator behind
// ForAllNN/ExistsNN and their kNN variants.
type CountEvaluator struct {
	k       int
	forall  bool
	targets []int // sampler-row indices to count
	partial [][]int
}

// NewCountEvaluator returns a count evaluator over the given sampler
// rows; forall selects the ∀ predicate, otherwise ∃.
func NewCountEvaluator(k int, forall bool, targets []int) *CountEvaluator {
	return &CountEvaluator{k: k, forall: forall, targets: targets}
}

// Bind implements Evaluator.
func (c *CountEvaluator) Bind(workers int) {
	c.partial = make([][]int, workers)
	for i := range c.partial {
		c.partial[i] = make([]int, len(c.targets))
	}
}

// World implements Evaluator.
func (c *CountEvaluator) World(worker, _ int, b *nn.WorldBatch, wi int) {
	counts := c.partial[worker]
	for ci, li := range c.targets {
		if c.forall {
			if b.KNNThroughout(wi, li, c.k) {
				counts[ci]++
			}
		} else if b.KNNSometime(wi, li, c.k) {
			counts[ci]++
		}
	}
}

// Counts merges the per-worker accumulators: Counts()[i] is the number
// of worlds in which target row targets[i] satisfied the predicate.
func (c *CountEvaluator) Counts() []int {
	out := make([]int, len(c.targets))
	for _, p := range c.partial {
		for i, v := range p {
			out[i] += v
		}
	}
	return out
}

// MaskEvaluator accumulates, for every world, the per-row per-timestep
// k-NN indicator rows the PCNN lattice walk (Algorithm 1) mines. Unlike
// counting, the lattice walk needs every world's masks in memory at
// once, so the evaluator materializes samples × rows × nT booleans in
// one flat backing array; each row is written by exactly one worker
// (per-world), keeping the parallel gather race-free and deterministic.
type MaskEvaluator struct {
	k, rows, nT int
	masks       [][]bool
}

// NewMaskEvaluator returns a mask evaluator over `rows` sampler rows, a
// window of nT timesteps and `samples` worlds.
func NewMaskEvaluator(k, rows, nT, samples int) *MaskEvaluator {
	backing := make([]bool, samples*rows*nT)
	masks := make([][]bool, samples)
	for w := range masks {
		masks[w] = backing[w*rows*nT : (w+1)*rows*nT]
	}
	return &MaskEvaluator{k: k, rows: rows, nT: nT, masks: masks}
}

// Bind implements Evaluator.
func (m *MaskEvaluator) Bind(int) {}

// World implements Evaluator.
func (m *MaskEvaluator) World(_, w int, b *nn.WorldBatch, wi int) {
	row := m.masks[w]
	for li := 0; li < m.rows; li++ {
		b.KNNMask(wi, li, m.k, row[li*m.nT:(li+1)*m.nT])
	}
}

// Masks returns the accumulated indicator rows in the layout
// MineTimeSets consumes: Masks()[w][li*nT+j] reports whether row li was
// among the k nearest at window offset j in world w.
func (m *MaskEvaluator) Masks() [][]bool { return m.masks }

// Plan is one executable Monte-Carlo sampling pass: the influencer rows
// to sample, the query and window to evaluate against, a draw policy,
// and any number of attached evaluators. Build one, attach evaluators,
// and hand it to Engine.Execute; the executor draws every world chunk
// once through the columnar kernel and feeds all evaluators.
type Plan struct {
	// Query and window. Query must be non-zero and Te >= Ts.
	Query  Query
	Ts, Te int

	// Samplers holds the adapted sampler of every influencer row; row
	// indices in evaluators refer to positions in this slice.
	Samplers []*inference.Sampler

	// Samples is the number of worlds to draw; 0 means the executing
	// engine's budget. Workers bounds the sampling/evaluation fan-out;
	// 0 means the executing engine's parallelism.
	Samples int
	Workers int

	// Space is the geometry distances are computed in; nil means the
	// executing engine's space.
	Space *space.Space

	// BaseSeed selects the budget-split draw policy (single-engine
	// path): worker w draws from mcrand.SubSeed(BaseSeed, w). Ignored
	// when RowRngs is set.
	BaseSeed int64

	// RowRngs selects the per-row draw policy (scatter-gather path):
	// RowRngs[i] is row i's private generator, advanced in world order
	// across the whole run. len(RowRngs) must equal len(Samplers).
	RowRngs []mcrand.RNG

	// FillGroups optionally partitions rows for the parallel fill phase
	// of the per-row policy (the sharded executor groups rows by owning
	// shard). Each group is filled sequentially by one goroutine; the
	// drawn worlds are identical for any partition because rows draw
	// from private generators. nil means one group holding all rows.
	FillGroups [][]int

	evals []Evaluator
}

// Attach adds an evaluator to the plan. Every sampled world is handed
// to every attached evaluator exactly once.
func (p *Plan) Attach(ev Evaluator) { p.evals = append(p.evals, ev) }

// NewPlan returns a budget-split plan over this engine's index: the
// engine's sample budget and parallelism, worlds drawn from sub-streams
// of seed. It is how the engine's own query methods construct their
// sampling pass.
func (e *Engine) NewPlan(q Query, ts, te int, samplers []*inference.Sampler, seed int64) *Plan {
	return &Plan{Query: q, Ts: ts, Te: te, Samplers: samplers, BaseSeed: seed}
}

// Execute runs the plan: it draws each world chunk once through the
// columnar kernel and feeds every attached evaluator. Engine defaults
// fill unset plan fields (Space, Samples, Workers). Execute is the only
// sampling loop in the system; it returns once every world has been
// evaluated.
func (e *Engine) Execute(p *Plan) error {
	if p.Space == nil {
		p.Space = e.tree.Space()
	}
	if p.Samples <= 0 {
		p.Samples = e.samples
	}
	if p.Workers <= 0 {
		p.Workers = e.Parallelism()
	}
	return execute(p)
}

func execute(p *Plan) error {
	if p.Query.Zero() {
		return errZeroQuery
	}
	if p.Te < p.Ts {
		return fmt.Errorf("query: inverted interval [%d, %d]", p.Ts, p.Te)
	}
	if p.Space == nil {
		return fmt.Errorf("query: plan has no space")
	}
	if p.Samples < 1 {
		return fmt.Errorf("query: plan needs samples >= 1, got %d", p.Samples)
	}
	if p.RowRngs != nil && len(p.RowRngs) != len(p.Samplers) {
		return fmt.Errorf("query: plan has %d row generators for %d rows", len(p.RowRngs), len(p.Samplers))
	}
	if p.Workers < 1 {
		p.Workers = 1
	}
	if len(p.Samplers) == 0 || len(p.evals) == 0 {
		for _, ev := range p.evals {
			ev.Bind(1)
		}
		return nil
	}
	if p.RowRngs != nil {
		executePerRow(p)
		return nil
	}
	executeBudgetSplit(p)
	return nil
}

// executeBudgetSplit divides the sample budget statically across
// min(Workers, Samples) workers; worker w draws all rows' trajectories
// world by world from the sub-stream mcrand.SubSeed(BaseSeed, w), so
// answers depend only on (BaseSeed, Workers) and never on scheduling.
// Worker w's worlds occupy the contiguous global index range after
// worker w-1's.
func executeBudgetSplit(p *Plan) {
	workers := p.Workers
	if workers > p.Samples {
		workers = p.Samples
	}
	for _, ev := range p.evals {
		ev.Bind(workers)
	}
	if workers <= 1 {
		rng := mcrand.New(mcrand.SubSeed(p.BaseSeed, 0))
		budgetChunk(p, 0, 0, p.Samples, &rng)
		return
	}
	per := p.Samples / workers
	extra := p.Samples % workers
	var wg sync.WaitGroup
	start := 0
	for w := 0; w < workers; w++ {
		worlds := per
		if w < extra {
			worlds++
		}
		wg.Add(1)
		go func(w, start, worlds int) {
			defer wg.Done()
			rng := mcrand.New(mcrand.SubSeed(p.BaseSeed, w))
			budgetChunk(p, w, start, worlds, &rng)
		}(w, start, worlds)
		start += worlds
	}
	wg.Wait()
}

// budgetChunk draws `worlds` possible worlds in columnar chunks from
// rng (rows filled in row-major order within each chunk — the draw
// order the determinism contract fixes) and feeds them to every
// evaluator under the given worker id, with global world indices
// starting at `start`.
func budgetChunk(p *Plan, worker, start, worlds int, rng *mcrand.RNG) {
	b := batchPool.Get().(*nn.WorldBatch)
	defer batchPool.Put(b)
	for w0 := 0; w0 < worlds; w0 += worldChunk {
		cn := worldChunk
		if left := worlds - w0; left < cn {
			cn = left
		}
		b.Reset(len(p.Samplers), cn, p.Ts, p.Te)
		for li, s := range p.Samplers {
			for w := 0; w < cn; w++ {
				s.SampleWindowInto(rng, p.Ts, p.Te, b.States(li, w))
			}
		}
		b.ComputeDistances(p.Space, p.Query.At)
		for w := 0; w < cn; w++ {
			for _, ev := range p.evals {
				ev.World(worker, start+w0+w, b, w)
			}
		}
	}
}

// executePerRow samples every world through one shared batch per chunk.
// The fill half of every chunk runs one goroutine per fill group, each
// drawing its rows' state columns from their private generators in
// world order; the gather half materializes distance rows and evaluates
// the chunk's worlds on Workers goroutines (each worker computes the
// distances of its own world range, then evaluates it).
func executePerRow(p *Plan) {
	groups := p.FillGroups
	if groups == nil {
		all := make([]int, len(p.Samplers))
		for i := range all {
			all[i] = i
		}
		groups = [][]int{all}
	}
	for _, ev := range p.evals {
		ev.Bind(p.Workers)
	}
	b := batchPool.Get().(*nn.WorldBatch)
	defer batchPool.Put(b)
	for w0 := 0; w0 < p.Samples; w0 += worldChunk {
		cn := worldChunk
		if left := p.Samples - w0; left < cn {
			cn = left
		}
		b.Reset(len(p.Samplers), cn, p.Ts, p.Te)
		b.PrepareQuery(p.Query.At)
		var wg sync.WaitGroup
		for _, rows := range groups {
			if len(rows) == 0 {
				continue
			}
			wg.Add(1)
			go func(rows []int) {
				defer wg.Done()
				for _, li := range rows {
					s := p.Samplers[li]
					rng := &p.RowRngs[li]
					for w := 0; w < cn; w++ {
						s.SampleWindowInto(rng, p.Ts, p.Te, b.States(li, w))
					}
				}
			}(rows)
		}
		wg.Wait()

		nw := p.Workers
		if nw > cn {
			nw = cn
		}
		if nw <= 1 {
			b.ComputeDistancesRange(p.Space, 0, cn)
			for w := 0; w < cn; w++ {
				for _, ev := range p.evals {
					ev.World(0, w0+w, b, w)
				}
			}
			continue
		}
		var eg sync.WaitGroup
		per := cn / nw
		extra := cn % nw
		lo := 0
		for worker := 0; worker < nw; worker++ {
			n := per
			if worker < extra {
				n++
			}
			eg.Add(1)
			go func(worker, lo, hi int) {
				defer eg.Done()
				b.ComputeDistancesRange(p.Space, lo, hi)
				for w := lo; w < hi; w++ {
					for _, ev := range p.evals {
						ev.World(worker, w0+w, b, w)
					}
				}
			}(worker, lo, lo+n)
			lo += n
		}
		eg.Wait()
	}
}
