package query

import (
	"fmt"
	"sync"

	"pnn/internal/inference"
	"pnn/internal/mcrand"
	"pnn/internal/nn"
	"pnn/internal/space"
)

// This file is the single Monte-Carlo sampling loop of the system. Every
// query semantics — P∀NNQ, P∃NNQ, their kNN variants, PCNNQ — and every
// deployment shape (single engine, sharded scatter-gather, coalesced
// batches) evaluates the same set of sampled possible worlds; what
// differs is only which per-chunk consumers (Evaluators) are attached to
// the Plan and how the worlds are drawn. The paper's sampling approach
// (Section 6) makes no distinction between the semantics beyond the
// per-world predicate, so neither does the executor.
//
// Two draw policies exist, both living entirely in this file:
//
//   - budget-split: the sample budget is divided statically across
//     Workers; worker w draws every influencer's trajectories from the
//     sub-stream mcrand.SubSeed(BaseSeed, w). Used by the single-engine
//     query path. Answers depend only on (BaseSeed, Workers), never on
//     scheduling.
//   - per-row: every object row carries its own generator, seeded by
//     mcrand.SubSeed(request seed, object ID) by the sharded executor.
//     Because a row's draws depend on nothing but its own generator, the
//     sampled worlds are byte-identical for any shard count and any
//     FillGroups partition — the S ∈ {1,2,4} equivalence contract.

// worldChunk is the chunking policy of the executor; see nn.WorldChunk.
const worldChunk = nn.WorldChunk

// boundEvery is the decision cadence of confidence-adaptive plans: the
// executor polls every evaluator's Bound after each run of boundEvery
// 256-world chunks, in sequential round order. Decisions happen only at
// these deterministic multiples of boundEvery*worldChunk worlds — never
// "whenever a worker finishes" — so the stop point depends only on
// (snapshot, seed, confidence), not on scheduling.
const boundEvery = 4

// batchPool recycles the columnar world batches of the executor across
// queries and workers; a warmed pool makes steady-state sampling
// allocation-free.
var batchPool = sync.Pool{New: func() any { return new(nn.WorldBatch) }}

// Evaluator is a per-chunk consumer of sampled possible worlds: the
// predicate side of one query semantics, decoupled from the sampling
// loop. Any number of evaluators may be attached to one Plan; each
// world is handed to every evaluator exactly once, which is what lets a
// coalesced batch of queries share a single world set.
type Evaluator interface {
	// Bind is called once before sampling with the worker fan-out the
	// executor will use; evaluators allocate per-worker accumulators
	// here so World never needs synchronization.
	Bind(workers int)
	// World is called exactly once per sampled world: worker identifies
	// the calling goroutine (disjoint ids in [0, workers)), w is the
	// global world number in [0, Samples), and wi is the world's row in
	// b. Implementations must write only per-worker or per-world state.
	World(worker, w int, b *nn.WorldBatch, wi int)
	// Bound reports whether worldsSeen sampled worlds decide this
	// evaluator's answer under its confidence policy — every estimate
	// separated from its threshold τ by more than the Hoeffding error
	// ε(worldsSeen), or ε itself within the requested accuracy. The
	// executor calls it only at deterministic chunk-round boundaries,
	// between rounds (never concurrently with World), and stops the plan
	// early once every attached evaluator is decided. Evaluators without
	// a policy return false, leaving the stop to the sample budget.
	Bound(worldsSeen int) (decided bool)
}

// CountEvaluator counts, per target row, the worlds in which the row's
// k-NN predicate holds: throughout the window (∀, Definition 2) or at
// some timestep (∃, Definition 1). It is the evaluator behind
// ForAllNN/ExistsNN and their kNN variants.
type CountEvaluator struct {
	k       int
	forall  bool
	targets []int // sampler-row indices to count
	partial [][]int

	conf    Confidence
	taus    []float64 // thresholds the estimates must separate from
	scratch []int     // merged counts, reused across Bound polls
}

// NewCountEvaluator returns a count evaluator over the given sampler
// rows; forall selects the ∀ predicate, otherwise ∃.
func NewCountEvaluator(k int, forall bool, targets []int) *CountEvaluator {
	return &CountEvaluator{k: k, forall: forall, targets: targets}
}

// Bind implements Evaluator.
func (c *CountEvaluator) Bind(workers int) {
	c.partial = make([][]int, workers)
	for i := range c.partial {
		c.partial[i] = make([]int, len(c.targets))
	}
}

// World implements Evaluator.
func (c *CountEvaluator) World(worker, _ int, b *nn.WorldBatch, wi int) {
	counts := c.partial[worker]
	for ci, li := range c.targets {
		if c.forall {
			if b.KNNThroughout(wi, li, c.k) {
				counts[ci]++
			}
		} else if b.KNNSometime(wi, li, c.k) {
			counts[ci]++
		}
	}
}

// Counts merges the per-worker accumulators: Counts()[i] is the number
// of worlds in which target row targets[i] satisfied the predicate.
func (c *CountEvaluator) Counts() []int {
	out := make([]int, len(c.targets))
	for _, p := range c.partial {
		for i, v := range p {
			out[i] += v
		}
	}
	return out
}

// SetBound arms the evaluator's early-stop rule: under conf, Bound
// decides once every target's estimate separates from every tau by more
// than the Hoeffding error ε(n), or once ε(n) reaches conf.Eps. The
// rule additionally requires every tau > ε(n) — the "virtual zero row"
// condition. A row another layout's pruning would have dropped always
// counts zero worlds, and |0 − τ| > ε(n) is exactly τ > ε(n); baking
// that clause in unconditionally makes the decision identical whether
// or not such rows are present, so the stop point cannot depend on the
// shard layout or pruning superset that produced the target set.
func (c *CountEvaluator) SetBound(conf Confidence, taus ...float64) {
	c.conf = conf
	c.taus = taus
}

// Bound implements Evaluator; see SetBound for the decision rule.
func (c *CountEvaluator) Bound(worldsSeen int) bool {
	if !c.conf.Enabled() || worldsSeen <= 0 {
		return false
	}
	eps := ErrorBound(worldsSeen, c.conf.EffDelta())
	if eps <= c.conf.Eps {
		return true
	}
	if len(c.taus) == 0 {
		return false
	}
	for _, tau := range c.taus {
		if tau <= eps { // the virtual zero row has not separated
			return false
		}
	}
	if c.scratch == nil {
		c.scratch = make([]int, len(c.targets))
	}
	for i := range c.scratch {
		c.scratch[i] = 0
	}
	for _, p := range c.partial {
		for i, v := range p {
			c.scratch[i] += v
		}
	}
	inv := 1 / float64(worldsSeen)
	for _, cnt := range c.scratch {
		est := float64(cnt) * inv
		for _, tau := range c.taus {
			d := est - tau
			if d < 0 {
				d = -d
			}
			if d <= eps {
				return false
			}
		}
	}
	return true
}

// MaskEvaluator accumulates, for every world, the per-row per-timestep
// k-NN indicator rows the PCNN lattice walk (Algorithm 1) mines. Unlike
// counting, the lattice walk needs every world's masks in memory at
// once, so the evaluator materializes samples × rows × nT booleans in
// one flat backing array; each row is written by exactly one worker
// (per-world), keeping the parallel gather race-free and deterministic.
type MaskEvaluator struct {
	k, rows, nT int
	masks       [][]bool
	conf        Confidence
}

// NewMaskEvaluator returns a mask evaluator over `rows` sampler rows, a
// window of nT timesteps and `samples` worlds.
func NewMaskEvaluator(k, rows, nT, samples int) *MaskEvaluator {
	backing := make([]bool, samples*rows*nT)
	masks := make([][]bool, samples)
	for w := range masks {
		masks[w] = backing[w*rows*nT : (w+1)*rows*nT]
	}
	return &MaskEvaluator{k: k, rows: rows, nT: nT, masks: masks}
}

// Bind implements Evaluator.
func (m *MaskEvaluator) Bind(int) {}

// World implements Evaluator.
func (m *MaskEvaluator) World(_, w int, b *nn.WorldBatch, wi int) {
	row := m.masks[w]
	for li := 0; li < m.rows; li++ {
		b.KNNMask(wi, li, m.k, row[li*m.nT:(li+1)*m.nT])
	}
}

// Masks returns the accumulated indicator rows in the layout
// MineTimeSets consumes: Masks()[w][li*nT+j] reports whether row li was
// among the k nearest at window offset j in world w. Under an adaptive
// plan only the first ExecStats.Worlds rows were written; slice to that
// count before mining so frequencies normalize by worlds drawn.
func (m *MaskEvaluator) Masks() [][]bool { return m.masks }

// SetBound arms the evaluator's early-stop rule. PCNN mines interval
// probabilities rather than testing them against a threshold, so the
// mask evaluator's decision is accuracy-only: it is decided once the
// Hoeffding error of every mined frequency is within conf.Eps. The rule
// reads no sampled state, so it is trivially identical across shard
// layouts.
func (m *MaskEvaluator) SetBound(conf Confidence) { m.conf = conf }

// Bound implements Evaluator; see SetBound for the decision rule.
func (m *MaskEvaluator) Bound(worldsSeen int) bool {
	return m.conf.Enabled() && worldsSeen > 0 &&
		ErrorBound(worldsSeen, m.conf.EffDelta()) <= m.conf.Eps
}

// Plan is one executable Monte-Carlo sampling pass: the influencer rows
// to sample, the query and window to evaluate against, a draw policy,
// and any number of attached evaluators. Build one, attach evaluators,
// and hand it to Engine.Execute; the executor draws every world chunk
// once through the columnar kernel and feeds all evaluators.
type Plan struct {
	// Query and window. Query must be non-zero and Te >= Ts.
	Query  Query
	Ts, Te int

	// Samplers holds the adapted sampler of every influencer row; row
	// indices in evaluators refer to positions in this slice.
	Samplers []*inference.Sampler

	// Samples is the number of worlds to draw; 0 means the executing
	// engine's budget. Workers bounds the sampling/evaluation fan-out;
	// 0 means the executing engine's parallelism.
	Samples int
	Workers int

	// Confidence, when enabled, makes the pass adaptive: the executor
	// polls every attached evaluator's Bound at deterministic chunk-round
	// boundaries and stops as soon as all are decided, escalating up to
	// Confidence.Budget(Samples) worlds while any is not. The zero value
	// draws exactly Samples worlds, as before.
	Confidence Confidence

	// MinWorlds floors an adaptive pass: Bound polls are skipped while
	// fewer than MinWorlds worlds have been seen, so the executor cannot
	// stop below the floor (it still stops at the cap). Because decisions
	// only happen at the fixed chunk-round boundaries, the effective floor
	// is the smallest boundary >= MinWorlds and the stop point stays a
	// pure function of (snapshot, seed, policy, MinWorlds) — the floor
	// therefore joins the determinism contract surface. Standing queries
	// use it to restart a re-evaluation at the budget their previous run
	// already proved sufficient instead of re-escalating from the first
	// round. Ignored when Confidence is disabled; values above the budget
	// cap simply disable early stopping.
	MinWorlds int

	// Space is the geometry distances are computed in; nil means the
	// executing engine's space.
	Space *space.Space

	// BaseSeed selects the budget-split draw policy (single-engine
	// path): worker w draws from mcrand.SubSeed(BaseSeed, w). Ignored
	// when RowRngs is set.
	BaseSeed int64

	// RowRngs selects the per-row draw policy (scatter-gather path):
	// RowRngs[i] is row i's private generator, advanced in world order
	// across the whole run. len(RowRngs) must equal len(Samplers).
	RowRngs []mcrand.RNG

	// Replay selects the replay draw policy (the cross-process gather
	// path): instead of sampling, row i's state column for world w is
	// copied from Replay[i][w*nT:(w+1)*nT] (nT = Te-Ts+1, -1 marking
	// dead timesteps). Every Replay[i] must hold at least
	// Confidence.Budget(Samples) worlds. Because a row's pre-drawn
	// columns are exactly what its private generator would have produced
	// in world order, a replayed plan evaluates the same worlds — and
	// under a confidence policy reaches the same deterministic stop
	// point — as the per-row plan that drew them. Samplers and RowRngs
	// must be nil when Replay is set.
	Replay [][]int32

	// FillGroups optionally partitions rows for the parallel fill phase
	// of the per-row policy (the sharded executor groups rows by owning
	// shard). Each group is filled sequentially by one goroutine; the
	// drawn worlds are identical for any partition because rows draw
	// from private generators. nil means one group holding all rows.
	FillGroups [][]int

	evals []Evaluator
}

// Attach adds an evaluator to the plan. Every sampled world is handed
// to every attached evaluator exactly once.
func (p *Plan) Attach(ev Evaluator) { p.evals = append(p.evals, ev) }

// NewPlan returns a budget-split plan over this engine's index: the
// engine's sample budget and parallelism, worlds drawn from sub-streams
// of seed. It is how the engine's own query methods construct their
// sampling pass.
func (e *Engine) NewPlan(q Query, ts, te int, samplers []*inference.Sampler, seed int64) *Plan {
	return &Plan{Query: q, Ts: ts, Te: te, Samplers: samplers, BaseSeed: seed}
}

// ExecStats reports what one executed plan actually paid and
// guarantees: the number of worlds drawn, the Hoeffding error bound
// those worlds buy at the plan's confidence level (DefaultDelta when no
// policy was set), and whether an adaptive plan stopped before its
// escalation cap.
type ExecStats struct {
	// Worlds is the number of possible worlds drawn and evaluated; 0
	// when the plan had nothing to sample (no influencer rows or no
	// evaluators), in which case the answer is exact.
	Worlds int
	// ErrorBound is ε such that every per-object estimate is within ε
	// of the true probability with probability 1−delta; 0 for an exact
	// (sampling-free) answer.
	ErrorBound float64
	// EarlyStopped reports that a confidence policy decided the answer
	// before the escalation cap was exhausted.
	EarlyStopped bool
}

// Execute runs the plan: it draws each world chunk once through the
// columnar kernel and feeds every attached evaluator. Engine defaults
// fill unset plan fields (Space, Samples, Workers). Execute is the only
// sampling loop in the system; it returns once every world has been
// evaluated — every budgeted world, or, for a plan with an enabled
// Confidence, every world up to the first deterministic chunk-round
// boundary at which all attached evaluators report their answer
// decided.
func (e *Engine) Execute(p *Plan) (ExecStats, error) {
	if p.Space == nil {
		p.Space = e.tree.Space()
	}
	if p.Samples <= 0 {
		p.Samples = e.samples
	}
	if p.Workers <= 0 {
		p.Workers = e.Parallelism()
	}
	return execute(p)
}

// ExecutePlan runs a fully specified plan without an engine: Space,
// Samples and Workers must all be set by the caller. It is the entry
// point of deployments that evaluate worlds away from any index — the
// cluster coordinator replays peer-drawn state columns (Plan.Replay)
// through it, so gathered answers run the very same executor, chunking
// and early-stop cadence as local queries.
func ExecutePlan(p *Plan) (ExecStats, error) { return execute(p) }

// rows returns the number of influencer rows of the plan under either
// draw policy.
func (p *Plan) rows() int {
	if p.Replay != nil {
		return len(p.Replay)
	}
	return len(p.Samplers)
}

func execute(p *Plan) (ExecStats, error) {
	if p.Query.Zero() {
		return ExecStats{}, errZeroQuery
	}
	if p.Te < p.Ts {
		return ExecStats{}, fmt.Errorf("query: inverted interval [%d, %d]", p.Ts, p.Te)
	}
	if p.Space == nil {
		return ExecStats{}, fmt.Errorf("query: plan has no space")
	}
	if p.Samples < 1 {
		return ExecStats{}, fmt.Errorf("query: plan needs samples >= 1, got %d", p.Samples)
	}
	if p.RowRngs != nil && len(p.RowRngs) != len(p.Samplers) {
		return ExecStats{}, fmt.Errorf("query: plan has %d row generators for %d rows", len(p.RowRngs), len(p.Samplers))
	}
	if p.Replay != nil {
		if p.Samplers != nil || p.RowRngs != nil {
			return ExecStats{}, fmt.Errorf("query: plan mixes replay columns with samplers")
		}
		nT := p.Te - p.Ts + 1
		need := p.Confidence.Budget(p.Samples) * nT
		for i, col := range p.Replay {
			if len(col) < need {
				return ExecStats{}, fmt.Errorf("query: replay row %d holds %d worlds, plan needs %d",
					i, len(col)/nT, need/nT)
			}
		}
	}
	if err := p.Confidence.Validate(); err != nil {
		return ExecStats{}, err
	}
	if p.MinWorlds < 0 {
		return ExecStats{}, fmt.Errorf("query: plan needs min worlds >= 0, got %d", p.MinWorlds)
	}
	if p.Workers < 1 {
		p.Workers = 1
	}
	if p.rows() == 0 || len(p.evals) == 0 {
		for _, ev := range p.evals {
			ev.Bind(1)
		}
		// Nothing was sampled: the (empty or evaluator-less) answer is
		// exact, so the stats advertise zero worlds and zero error.
		return ExecStats{}, nil
	}
	adaptive := p.Confidence.Enabled()
	maxN := p.Confidence.Budget(p.Samples)
	var drawn int
	switch {
	case p.RowRngs != nil || p.Replay != nil:
		drawn = executePerRow(p, maxN, adaptive)
	case adaptive:
		drawn = executeBudgetSplitAdaptive(p, maxN)
	default:
		executeBudgetSplit(p)
		drawn = p.Samples
	}
	return ExecStats{
		Worlds:       drawn,
		ErrorBound:   ErrorBound(drawn, p.Confidence.EffDelta()),
		EarlyStopped: adaptive && drawn < maxN,
	}, nil
}

// allDecided polls every evaluator's Bound; a plan stops early only
// when all of them have decided.
func allDecided(evals []Evaluator, worldsSeen int) bool {
	for _, ev := range evals {
		if !ev.Bound(worldsSeen) {
			return false
		}
	}
	return true
}

// executeBudgetSplit divides the sample budget statically across
// min(Workers, Samples) workers; worker w draws all rows' trajectories
// world by world from the sub-stream mcrand.SubSeed(BaseSeed, w), so
// answers depend only on (BaseSeed, Workers) and never on scheduling.
// Worker w's worlds occupy the contiguous global index range after
// worker w-1's.
func executeBudgetSplit(p *Plan) {
	workers := p.Workers
	if workers > p.Samples {
		workers = p.Samples
	}
	for _, ev := range p.evals {
		ev.Bind(workers)
	}
	if workers <= 1 {
		rng := mcrand.New(mcrand.SubSeed(p.BaseSeed, 0))
		budgetChunk(p, 0, 0, p.Samples, &rng)
		return
	}
	per := p.Samples / workers
	extra := p.Samples % workers
	var wg sync.WaitGroup
	start := 0
	for w := 0; w < workers; w++ {
		worlds := per
		if w < extra {
			worlds++
		}
		wg.Add(1)
		go func(w, start, worlds int) {
			defer wg.Done()
			rng := mcrand.New(mcrand.SubSeed(p.BaseSeed, w))
			budgetChunk(p, w, start, worlds, &rng)
		}(w, start, worlds)
		start += worlds
	}
	wg.Wait()
}

// executeBudgetSplitAdaptive is the confidence-adaptive variant of the
// budget-split policy. Sampling proceeds in sequential rounds of up to
// boundEvery*worldChunk worlds; each round is split contiguously across
// the workers, with worker w drawing from a persistent generator on the
// sub-stream mcrand.SubSeed(BaseSeed, w), and all evaluators' bounds
// are polled once between rounds. Round sizes and decision points are
// fixed by (maxN, Workers) alone, so for a given (BaseSeed, Workers,
// Confidence) the drawn worlds and the stop point are identical no
// matter how goroutines are scheduled. Returns the worlds drawn.
func executeBudgetSplitAdaptive(p *Plan, maxN int) int {
	const roundWorlds = boundEvery * worldChunk
	workers := p.Workers
	if workers > roundWorlds {
		workers = roundWorlds
	}
	for _, ev := range p.evals {
		ev.Bind(workers)
	}
	rngs := make([]mcrand.RNG, workers)
	for w := range rngs {
		rngs[w] = mcrand.New(mcrand.SubSeed(p.BaseSeed, w))
	}
	seen := 0
	for seen < maxN {
		round := roundWorlds
		if left := maxN - seen; left < round {
			round = left
		}
		nw := workers
		if nw > round {
			nw = round
		}
		if nw <= 1 {
			budgetChunk(p, 0, seen, round, &rngs[0])
		} else {
			per := round / nw
			extra := round % nw
			var wg sync.WaitGroup
			start := seen
			for w := 0; w < nw; w++ {
				n := per
				if w < extra {
					n++
				}
				wg.Add(1)
				go func(w, start, n int) {
					defer wg.Done()
					budgetChunk(p, w, start, n, &rngs[w])
				}(w, start, n)
				start += n
			}
			wg.Wait()
		}
		seen += round
		if seen >= p.MinWorlds && allDecided(p.evals, seen) {
			break
		}
	}
	return seen
}

// budgetChunk draws `worlds` possible worlds in columnar chunks from
// rng (rows filled in row-major order within each chunk — the draw
// order the determinism contract fixes) and feeds them to every
// evaluator under the given worker id, with global world indices
// starting at `start`.
func budgetChunk(p *Plan, worker, start, worlds int, rng *mcrand.RNG) {
	b := batchPool.Get().(*nn.WorldBatch)
	defer batchPool.Put(b)
	for w0 := 0; w0 < worlds; w0 += worldChunk {
		cn := worldChunk
		if left := worlds - w0; left < cn {
			cn = left
		}
		b.Reset(len(p.Samplers), cn, p.Ts, p.Te)
		for li, s := range p.Samplers {
			for w := 0; w < cn; w++ {
				s.SampleWindowInto(rng, p.Ts, p.Te, b.States(li, w))
			}
		}
		b.ComputeDistances(p.Space, p.Query.At)
		for w := 0; w < cn; w++ {
			for _, ev := range p.evals {
				ev.World(worker, start+w0+w, b, w)
			}
		}
	}
}

// executePerRow samples every world through one shared batch per chunk,
// up to maxN worlds. The fill half of every chunk runs one goroutine
// per fill group, each drawing its rows' state columns from their
// private generators in world order; the gather half materializes
// distance rows and evaluates the chunk's worlds on Workers goroutines
// (each worker computes the distances of its own world range, then
// evaluates it). When adaptive, the sequential chunk loop polls every
// evaluator's bound after each boundEvery-th chunk; the decision points
// are fixed multiples of boundEvery*worldChunk worlds and the counts at
// them depend only on the rows' private generators, so the stop point
// is identical for any worker count, shard count, or FillGroups
// partition. Returns the worlds drawn.
func executePerRow(p *Plan, maxN int, adaptive bool) int {
	nRows := p.rows()
	nT := p.Te - p.Ts + 1
	groups := p.FillGroups
	if groups == nil {
		all := make([]int, nRows)
		for i := range all {
			all[i] = i
		}
		groups = [][]int{all}
	}
	for _, ev := range p.evals {
		ev.Bind(p.Workers)
	}
	b := batchPool.Get().(*nn.WorldBatch)
	defer batchPool.Put(b)
	chunks := 0
	for w0 := 0; w0 < maxN; w0 += worldChunk {
		cn := worldChunk
		if left := maxN - w0; left < cn {
			cn = left
		}
		b.Reset(nRows, cn, p.Ts, p.Te)
		b.PrepareQuery(p.Query.At)
		var wg sync.WaitGroup
		for _, rows := range groups {
			if len(rows) == 0 {
				continue
			}
			wg.Add(1)
			go func(rows []int) {
				defer wg.Done()
				for _, li := range rows {
					if p.Replay != nil {
						// Replayed rows copy the pre-drawn columns at the
						// same global world indices the per-row policy
						// would have filled them at.
						col := p.Replay[li]
						for w := 0; w < cn; w++ {
							copy(b.States(li, w), col[(w0+w)*nT:(w0+w+1)*nT])
						}
						continue
					}
					s := p.Samplers[li]
					rng := &p.RowRngs[li]
					for w := 0; w < cn; w++ {
						s.SampleWindowInto(rng, p.Ts, p.Te, b.States(li, w))
					}
				}
			}(rows)
		}
		wg.Wait()

		nw := p.Workers
		if nw > cn {
			nw = cn
		}
		if nw <= 1 {
			b.ComputeDistancesRange(p.Space, 0, cn)
			for w := 0; w < cn; w++ {
				for _, ev := range p.evals {
					ev.World(0, w0+w, b, w)
				}
			}
		} else {
			var eg sync.WaitGroup
			per := cn / nw
			extra := cn % nw
			lo := 0
			for worker := 0; worker < nw; worker++ {
				n := per
				if worker < extra {
					n++
				}
				eg.Add(1)
				go func(worker, lo, hi int) {
					defer eg.Done()
					b.ComputeDistancesRange(p.Space, lo, hi)
					for w := lo; w < hi; w++ {
						for _, ev := range p.evals {
							ev.World(worker, w0+w, b, w)
						}
					}
				}(worker, lo, lo+n)
				lo += n
			}
			eg.Wait()
		}
		if chunks++; adaptive && chunks%boundEvery == 0 {
			if seen := w0 + cn; seen >= p.MinWorlds && allDecided(p.evals, seen) {
				return seen
			}
		}
	}
	return maxN
}
