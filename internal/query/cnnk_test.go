package query

import (
	"math/rand"
	"testing"

	"pnn/internal/uncertain"
)

func TestCNNKValidationAndMonotonicity(t *testing.T) {
	sp, _, eng := lineDB(t, 2000,
		[]uncertain.Observation{{T: 0, State: 30}, {T: 8, State: 30}},
		[]uncertain.Observation{{T: 0, State: 33}, {T: 8, State: 33}},
		[]uncertain.Observation{{T: 0, State: 36}, {T: 8, State: 36}},
	)
	q := StateQuery(sp.Point(30))
	rng := rand.New(rand.NewSource(1))
	if _, _, err := eng.CNNK(q, 1, 7, 0, 0.5, rng); err == nil {
		t.Error("expected error for k=0")
	}
	// With k = |D|, every alive object is a kNN at every tic with
	// probability 1, so each should report the full window once.
	res, _, err := eng.CNNK(q, 1, 7, 3, 0.9, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("CNNK k=3 results = %+v, want one per object", res)
	}
	for _, r := range res {
		if len(r.Times) != 7 || r.Prob < 0.999 {
			t.Errorf("object %d: %+v, want full window at p=1", r.Obj, r)
		}
	}
	// k=2: the two nearest objects cover the window; the farthest can
	// only qualify when it beats one of them, which never happens here.
	res2, _, err := eng.CNNK(q, 1, 7, 2, 0.9, rng)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, r := range res2 {
		seen[r.Obj] = true
		if r.Obj == 2 {
			t.Errorf("farthest object qualified for 2NN window: %+v", r)
		}
	}
	if !seen[0] || !seen[1] {
		t.Errorf("nearest two objects should qualify: %+v", res2)
	}
}
