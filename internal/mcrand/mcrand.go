// Package mcrand supplies the pseudo-randomness of the Monte-Carlo hot
// path: a tiny, inlineable splitmix64 generator and the seed-derivation
// helpers that define the repository's determinism contract.
//
// The contract has two halves, and both live here so they cannot drift
// apart:
//
//   - SubSeed(seed, key) derives the deterministic sub-stream seed for
//     one unit of independent work. The sharded executor keys it by
//     object ID (which is what makes S-shard results byte-identical to
//     1-shard results: an object's sampled trajectories depend only on
//     the request seed and its own ID), and the single-engine sampler
//     keys it by worker index (which is what makes parallel queries
//     reproducible for a fixed seed and parallelism).
//   - RNG is the generator every sub-stream runs on. It is a plain
//     2-word value with no interface indirection, so Uint64 inlines
//     into the sampling loop — unlike math/rand.Rand, whose Source
//     calls and mutex-free-but-fat state made it the last allocation
//     and call overhead left in the world-sampling kernel.
//
// splitmix64 (Steele, Lea, Flood: "Fast Splittable Pseudorandom Number
// Generators", OOPSLA 2014) passes BigCrush, has a full 2^64 period,
// and costs one multiply-xor-shift chain per output.
package mcrand

// RNG is a splitmix64 pseudo-random generator. The zero value is a
// valid generator seeded with 0; use New to seed it explicitly. RNG is
// a value type: copy it to fork the current position, take a pointer
// to advance it. It is not safe for concurrent use — give each
// goroutine its own (that is the point of SubSeed).
type RNG struct {
	state uint64
}

// New returns a generator whose stream is fully determined by seed.
func New(seed int64) RNG {
	return RNG{state: uint64(seed)}
}

// Uint64 advances the generator and returns the next 64 uniformly
// distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return Mix64(r.state)
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Mix64 is the splitmix64 finalizer: a cheap, well-distributed,
// bijective 64-bit mixer. It doubles as the repository's stable hash
// for routing (shard assignment) and seed derivation.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// SubSeed derives the seed of one deterministic sub-stream of a
// request-level seed. key identifies the unit of independent work: the
// object ID in the sharded scatter path (so draws are independent of
// partition layout) and the worker index in the single-engine parallel
// sampler (so draws are independent of scheduling). The derivation is
// stable across processes and releases short of an explicit
// determinism break — sampled worlds for a given (seed, key) are part
// of the system's observable behavior.
func SubSeed(seed int64, key int) int64 {
	return SubSeed64(seed, uint64(key))
}

// SubSeed64 is SubSeed for full-width keys (e.g. a 64-bit group-key
// hash): converting such a key through int would truncate it on 32-bit
// platforms and silently break the cross-process stability promise.
// For keys that round-trip int — every small ID and worker index —
// SubSeed and SubSeed64 agree bit for bit.
func SubSeed64(seed int64, key uint64) int64 {
	return int64(Mix64(uint64(seed) ^ Mix64(key+0x9e3779b97f4a7c15)))
}
