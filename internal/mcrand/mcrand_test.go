package mcrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("draw %d: %x != %x", i, x, y)
		}
	}
	c, d := New(43), New(42)
	if x, y := d.Uint64(), c.Uint64(); x == y {
		t.Fatal("different seeds produced the same first draw")
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r RNG
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) != 100 {
		t.Fatalf("zero-value RNG repeated outputs: %d distinct of 100", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.005 {
		t.Errorf("Float64 mean %v, want ~0.5", mean)
	}
}

// TestUniformity is a coarse chi-square check over 64 buckets — enough
// to catch a broken mixer, not a BigCrush substitute.
func TestUniformity(t *testing.T) {
	r := New(99)
	const buckets, n = 64, 64 * 4096
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[r.Uint64()%buckets]++
	}
	expected := float64(n) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 63 degrees of freedom: mean 63, stddev ~11.2. 150 is ~7.7 sigma.
	if chi2 > 150 {
		t.Errorf("chi-square %v too high for uniform output", chi2)
	}
}

func TestMix64Bijective(t *testing.T) {
	// Spot-check injectivity on a dense low range plus known constants.
	seen := map[uint64]uint64{}
	for x := uint64(0); x < 1<<16; x++ {
		h := Mix64(x)
		if prev, ok := seen[h]; ok {
			t.Fatalf("Mix64 collision: %d and %d -> %x", prev, x, h)
		}
		seen[h] = x
	}
}

func TestSubSeedIndependence(t *testing.T) {
	// Distinct keys under one seed, and distinct seeds under one key,
	// must yield distinct sub-seeds (collisions would correlate what
	// the determinism contract promises are independent streams).
	seen := map[int64]bool{}
	for key := 0; key < 10000; key++ {
		s := SubSeed(12345, key)
		if seen[s] {
			t.Fatalf("SubSeed collision at key %d", key)
		}
		seen[s] = true
	}
	if SubSeed(1, 7) == SubSeed(2, 7) {
		t.Error("same sub-seed for different request seeds")
	}
	// Stability: the derivation is part of observable behavior.
	if SubSeed(7, 42) != SubSeed(7, 42) {
		t.Error("SubSeed is not a pure function")
	}
}

// TestSubSeed64Agreement: SubSeed and SubSeed64 agree wherever the key
// round-trips int, and SubSeed64 keeps full-width keys distinct where
// a 32-bit int truncation would collide them.
func TestSubSeed64Agreement(t *testing.T) {
	for _, key := range []int{0, 1, 42, 1 << 20, -7} {
		if SubSeed(9, key) != SubSeed64(9, uint64(key)) {
			t.Errorf("SubSeed(9, %d) != SubSeed64 of the same key", key)
		}
	}
	lo := uint64(0xdeadbeef)
	hi := lo | (1 << 40)
	if SubSeed64(9, lo) == SubSeed64(9, hi) {
		t.Error("SubSeed64 collapsed keys differing only above bit 31")
	}
}
