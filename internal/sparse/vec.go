// Package sparse provides the sparse linear-algebra primitives behind the
// Markov-chain machinery: sparse probability vectors over state indices and
// compressed sparse row (CSR) matrices for the a-priori transition model.
//
// The forward-backward adaptation of the paper (Algorithm 2) never needs a
// dense |S|×|S| matrix: distribution vectors are supported only on the
// "diamond" of states reachable between two observations, and the adapted
// transition matrices R(t) and F(t) are stored per reachable source state.
package sparse

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Entry is one nonzero of a sparse vector or matrix row.
type Entry struct {
	Idx int
	Val float64
}

// Vec is a sparse vector keyed by state index. The zero value (nil) is an
// empty vector that is safe to read; use make(Vec) or NewVec before writing.
type Vec map[int]float64

// NewVec returns an empty sparse vector.
func NewVec() Vec { return make(Vec) }

// UnitVec returns the indicator vector with weight 1 at idx.
func UnitVec(idx int) Vec { return Vec{idx: 1} }

// Clone returns a deep copy of v.
func (v Vec) Clone() Vec {
	out := make(Vec, len(v))
	for i, x := range v {
		out[i] = x
	}
	return out
}

// Add accumulates x into component idx, deleting it if the result is zero.
func (v Vec) Add(idx int, x float64) {
	if nx := v[idx] + x; nx == 0 {
		delete(v, idx)
	} else {
		v[idx] = nx
	}
}

// Sum returns the total mass of v.
func (v Vec) Sum() float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// Normalize scales v so it sums to 1 and returns the original sum. If v has
// no mass it is left unchanged and 0 is returned.
func (v Vec) Normalize() float64 {
	s := v.Sum()
	if s == 0 {
		return 0
	}
	inv := 1 / s
	for i := range v {
		v[i] *= inv
	}
	return s
}

// Prune removes entries with absolute value below eps. Tiny negative or
// positive dust produced by floating-point cancellation would otherwise
// accumulate across timesteps.
func (v Vec) Prune(eps float64) {
	for i, x := range v {
		if math.Abs(x) < eps {
			delete(v, i)
		}
	}
}

// L1 returns the L1 distance between v and w.
func (v Vec) L1(w Vec) float64 {
	d := 0.0
	for i, x := range v {
		d += math.Abs(x - w[i])
	}
	for i, x := range w {
		if _, ok := v[i]; !ok {
			d += math.Abs(x)
		}
	}
	return d
}

// Dot returns the inner product of v and w.
func (v Vec) Dot(w Vec) float64 {
	if len(w) < len(v) {
		v, w = w, v
	}
	s := 0.0
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// Entries returns the nonzeros of v sorted by index. Sorting makes
// iteration deterministic for tests, sampling, and output.
func (v Vec) Entries() []Entry {
	out := make([]Entry, 0, len(v))
	for i, x := range v {
		out = append(out, Entry{i, x})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Idx < out[b].Idx })
	return out
}

// Support returns the indices of the nonzeros of v in ascending order.
func (v Vec) Support() []int {
	out := make([]int, 0, len(v))
	for i := range v {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// Equal reports whether v and w agree within tolerance tol on every
// component.
func (v Vec) Equal(w Vec, tol float64) bool {
	for i, x := range v {
		if math.Abs(x-w[i]) > tol {
			return false
		}
	}
	for i, x := range w {
		if _, ok := v[i]; !ok && math.Abs(x) > tol {
			return false
		}
	}
	return true
}

// String renders the vector's sorted nonzeros, for debugging.
func (v Vec) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for k, e := range v.Entries() {
		if k > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d:%.4g", e.Idx, e.Val)
	}
	b.WriteByte('}')
	return b.String()
}
