package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVecBasics(t *testing.T) {
	v := NewVec()
	v.Add(3, 0.5)
	v.Add(1, 0.25)
	v.Add(3, 0.25)
	if got := v[3]; got != 0.75 {
		t.Errorf("v[3] = %v, want 0.75", got)
	}
	if got := v.Sum(); got != 1.0 {
		t.Errorf("Sum = %v, want 1", got)
	}
	v.Add(1, -0.25)
	if _, ok := v[1]; ok {
		t.Error("zero entry should be deleted")
	}
	ents := v.Entries()
	if len(ents) != 1 || ents[0] != (Entry{3, 0.75}) {
		t.Errorf("Entries = %v", ents)
	}
}

func TestVecNormalize(t *testing.T) {
	v := Vec{0: 2, 5: 6}
	if s := v.Normalize(); s != 8 {
		t.Errorf("Normalize returned %v, want 8", s)
	}
	if math.Abs(v.Sum()-1) > 1e-15 {
		t.Errorf("after normalize Sum = %v", v.Sum())
	}
	empty := NewVec()
	if s := empty.Normalize(); s != 0 {
		t.Errorf("empty Normalize = %v, want 0", s)
	}
}

func TestVecL1Dot(t *testing.T) {
	v := Vec{0: 0.5, 1: 0.5}
	w := Vec{1: 0.25, 2: 0.75}
	if got := v.L1(w); math.Abs(got-1.5) > 1e-15 {
		t.Errorf("L1 = %v, want 1.5", got)
	}
	if got := v.Dot(w); math.Abs(got-0.125) > 1e-15 {
		t.Errorf("Dot = %v, want 0.125", got)
	}
	if got := v.L1(v); got != 0 {
		t.Errorf("L1 self = %v", got)
	}
}

func TestVecEqualAndSupport(t *testing.T) {
	v := Vec{1: 0.5, 2: 0.5}
	w := Vec{1: 0.5 + 1e-12, 2: 0.5 - 1e-12}
	if !v.Equal(w, 1e-9) {
		t.Error("expected approx equality")
	}
	if v.Equal(Vec{1: 1}, 1e-9) {
		t.Error("unexpected equality")
	}
	sup := v.Support()
	if len(sup) != 2 || sup[0] != 1 || sup[1] != 2 {
		t.Errorf("Support = %v", sup)
	}
}

func TestVecPrune(t *testing.T) {
	v := Vec{1: 1e-18, 2: 0.5, 3: -1e-18}
	v.Prune(1e-15)
	if len(v) != 1 || v[2] != 0.5 {
		t.Errorf("after Prune: %v", v)
	}
}

func mustCSR(t *testing.T, n int, elems []Triplet) *CSR {
	t.Helper()
	m, err := NewCSR(n, elems)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCSRBuildAndAt(t *testing.T) {
	m := mustCSR(t, 3, []Triplet{
		{0, 1, 0.5}, {0, 2, 0.5},
		{1, 0, 1},
		{2, 2, 0.4}, {2, 2, 0.6}, // duplicates sum
	})
	if m.NNZ() != 4 {
		t.Errorf("NNZ = %d, want 4", m.NNZ())
	}
	if got := m.At(0, 1); got != 0.5 {
		t.Errorf("At(0,1) = %v", got)
	}
	if got := m.At(2, 2); got != 1.0 {
		t.Errorf("At(2,2) = %v, want 1 (summed duplicates)", got)
	}
	if got := m.At(1, 2); got != 0 {
		t.Errorf("At(1,2) = %v, want 0", got)
	}
	if err := m.ValidateStochastic(1e-12); err != nil {
		t.Errorf("ValidateStochastic: %v", err)
	}
}

func TestCSROutOfRange(t *testing.T) {
	if _, err := NewCSR(2, []Triplet{{0, 2, 1}}); err == nil {
		t.Error("expected out-of-range error")
	}
	if _, err := NewCSR(2, []Triplet{{-1, 0, 1}}); err == nil {
		t.Error("expected out-of-range error")
	}
}

func TestValidateStochasticFailures(t *testing.T) {
	m := mustCSR(t, 2, []Triplet{{0, 0, 0.5}, {0, 1, 0.4}, {1, 1, 1}})
	if err := m.ValidateStochastic(1e-12); err == nil {
		t.Error("expected row-sum error")
	}
	m2 := mustCSR(t, 2, []Triplet{{0, 0, 1}})
	if err := m2.ValidateStochastic(1e-12); err == nil {
		t.Error("expected empty-row error")
	}
	m3 := mustCSR(t, 2, []Triplet{{0, 0, 1.5}, {0, 1, -0.5}, {1, 1, 1}})
	if err := m3.ValidateStochastic(1e-12); err == nil {
		t.Error("expected negative-entry error")
	}
}

func TestMulVecLeftPreservesMass(t *testing.T) {
	// A stochastic matrix must preserve total probability mass under
	// forward propagation.
	rng := rand.New(rand.NewSource(1))
	n := 20
	var elems []Triplet
	for i := 0; i < n; i++ {
		deg := 1 + rng.Intn(4)
		w := make([]float64, deg)
		s := 0.0
		for k := range w {
			w[k] = rng.Float64() + 0.01
			s += w[k]
		}
		for k := range w {
			elems = append(elems, Triplet{i, rng.Intn(n), w[k] / s})
		}
	}
	m := mustCSR(t, n, elems)
	v := Vec{0: 0.3, 5: 0.7}
	for step := 0; step < 10; step++ {
		v = m.MulVecLeft(v)
		if math.Abs(v.Sum()-1) > 1e-12 {
			t.Fatalf("mass not preserved at step %d: %v", step, v.Sum())
		}
	}
}

func TestTranspose(t *testing.T) {
	m := mustCSR(t, 3, []Triplet{{0, 1, 0.5}, {0, 2, 0.5}, {1, 0, 1}, {2, 2, 1}})
	tr := m.Transpose()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Errorf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
	// Double transpose is identity.
	trtr := tr.Transpose()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != trtr.At(i, j) {
				t.Errorf("double transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulVecRightMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 15
	var elems []Triplet
	for i := 0; i < n; i++ {
		for k := 0; k < 3; k++ {
			elems = append(elems, Triplet{i, rng.Intn(n), rng.Float64()})
		}
	}
	m := mustCSR(t, n, elems)
	tr := m.Transpose()
	v := Vec{2: 0.5, 7: 1.5, 14: 0.25}
	w := m.MulVecRight(v, tr)
	for i := 0; i < n; i++ {
		want := 0.0
		for j := 0; j < n; j++ {
			want += m.At(i, j) * v[j]
		}
		if math.Abs(w[i]-want) > 1e-12 {
			t.Errorf("MulVecRight[%d] = %v, want %v", i, w[i], want)
		}
	}
}

func TestCSRScaleAndRowVec(t *testing.T) {
	m := mustCSR(t, 2, []Triplet{{0, 0, 0.25}, {0, 1, 0.75}, {1, 0, 1}})
	s := m.Scale(2)
	if s.At(0, 1) != 1.5 {
		t.Errorf("Scale At(0,1) = %v", s.At(0, 1))
	}
	if m.At(0, 1) != 0.75 {
		t.Error("Scale must not mutate the receiver")
	}
	rv := m.RowVec(0)
	if !rv.Equal(Vec{0: 0.25, 1: 0.75}, 0) {
		t.Errorf("RowVec = %v", rv)
	}
	if got := m.RowSum(0); got != 1 {
		t.Errorf("RowSum = %v", got)
	}
}

func TestRowMap(t *testing.T) {
	m := NewRowMap()
	m.Add(2, 1, 0.5)
	m.Add(2, 3, 1.5)
	m.Add(0, 0, 3)
	if got := m.At(2, 3); got != 1.5 {
		t.Errorf("At = %v", got)
	}
	if got := m.At(9, 9); got != 0 {
		t.Errorf("missing At = %v", got)
	}
	rows := m.Rows()
	if len(rows) != 2 || rows[0] != 0 || rows[1] != 2 {
		t.Errorf("Rows = %v", rows)
	}
	if m.NNZ() != 3 {
		t.Errorf("NNZ = %d", m.NNZ())
	}
	m.NormalizeRows()
	if math.Abs(m.Row(2).Sum()-1) > 1e-15 {
		t.Errorf("row 2 sum = %v", m.Row(2).Sum())
	}
	if math.Abs(m.At(2, 1)-0.25) > 1e-15 {
		t.Errorf("normalized At(2,1) = %v", m.At(2, 1))
	}
}

func TestRowMapNormalizeDropsEmpty(t *testing.T) {
	m := NewRowMap()
	m.Add(1, 0, 0.0)
	m.NormalizeRows()
	if _, ok := m[1]; ok {
		t.Error("zero-mass row should be dropped")
	}
}

func TestRowMapMulVecLeft(t *testing.T) {
	m := NewRowMap()
	m.Add(0, 1, 1)   // from 0 go to 1
	m.Add(1, 0, 0.5) // from 1 go to 0 or 2
	m.Add(1, 2, 0.5)
	v := Vec{0: 0.4, 1: 0.6}
	w := m.MulVecLeft(v)
	want := Vec{1: 0.4, 0: 0.3, 2: 0.3}
	if !w.Equal(want, 1e-15) {
		t.Errorf("MulVecLeft = %v, want %v", w, want)
	}
}

// Property: building a CSR from random triplets and reading it back via At
// agrees with a dense accumulation of the same triplets.
func TestCSRMatchesDenseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		k := rng.Intn(30)
		dense := make([][]float64, n)
		for i := range dense {
			dense[i] = make([]float64, n)
		}
		elems := make([]Triplet, 0, k)
		for e := 0; e < k; e++ {
			tr := Triplet{rng.Intn(n), rng.Intn(n), rng.NormFloat64()}
			elems = append(elems, tr)
			dense[tr.Row][tr.Col] += tr.Val
		}
		m, err := NewCSR(n, elems)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(m.At(i, j)-dense[i][j]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
