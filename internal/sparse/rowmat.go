package sparse

import "sort"

// RowMap is a mutable sparse matrix keyed by row index, used for the
// time-variant adapted transition matrices R(t) and F(t) of Algorithm 2.
// Unlike CSR it only stores rows that exist, which matches the paper's
// observation that the adapted model is supported only on the reachable
// "diamond" of each timestep.
type RowMap map[int]Vec

// NewRowMap returns an empty row-sparse matrix.
func NewRowMap() RowMap { return make(RowMap) }

// Add accumulates v into element (i, j).
func (m RowMap) Add(i, j int, v float64) {
	row := m[i]
	if row == nil {
		row = make(Vec, 4)
		m[i] = row
	}
	row[j] += v
}

// At returns element (i, j), or 0 when absent.
func (m RowMap) At(i, j int) float64 { return m[i][j] }

// Row returns row i (possibly nil). The returned Vec aliases internal
// storage.
func (m RowMap) Row(i int) Vec { return m[i] }

// Rows returns the populated row indices in ascending order.
func (m RowMap) Rows() []int {
	out := make([]int, 0, len(m))
	for i := range m {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// NormalizeRows scales every row to sum to 1. Rows with zero mass are
// removed: they correspond to unreachable source states, for which no
// conditional distribution exists.
func (m RowMap) NormalizeRows() {
	for i, row := range m {
		if row.Normalize() == 0 {
			delete(m, i)
		}
	}
}

// MulVecLeft computes w = mᵀ·v restricted to the stored rows:
// w[j] = Σ_i v[i]·m[i][j].
func (m RowMap) MulVecLeft(v Vec) Vec {
	w := make(Vec, len(v)*2)
	for i, x := range v {
		if x == 0 {
			continue
		}
		for j, p := range m[i] {
			w[j] += x * p
		}
	}
	return w
}

// NNZ returns the total number of stored elements.
func (m RowMap) NNZ() int {
	n := 0
	for _, row := range m {
		n += len(row)
	}
	return n
}
