package sparse

import (
	"fmt"
	"math"
	"sort"
)

// CSR is an immutable compressed-sparse-row matrix. Row i's nonzeros are
// Col[RowPtr[i]:RowPtr[i+1]] / Val[RowPtr[i]:RowPtr[i+1]], with column
// indices sorted ascending inside each row.
//
// For an a-priori Markov chain M, row i holds the outgoing transition
// distribution P(o(t+1) = · | o(t) = s_i); every non-empty row sums to 1.
type CSR struct {
	N      int // number of rows and columns (square)
	RowPtr []int32
	Col    []int32
	Val    []float64
}

// Triplet is a single (row, col, value) element used to build a CSR matrix.
type Triplet struct {
	Row, Col int
	Val      float64
}

// NewCSR builds a square n×n CSR matrix from triplets. Duplicate (row, col)
// pairs are summed. It returns an error for out-of-range indices.
func NewCSR(n int, elems []Triplet) (*CSR, error) {
	for _, e := range elems {
		if e.Row < 0 || e.Row >= n || e.Col < 0 || e.Col >= n {
			return nil, fmt.Errorf("sparse: triplet (%d,%d) out of range for n=%d", e.Row, e.Col, n)
		}
	}
	sorted := make([]Triplet, len(elems))
	copy(sorted, elems)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].Row != sorted[b].Row {
			return sorted[a].Row < sorted[b].Row
		}
		return sorted[a].Col < sorted[b].Col
	})
	m := &CSR{
		N:      n,
		RowPtr: make([]int32, n+1),
		Col:    make([]int32, 0, len(sorted)),
		Val:    make([]float64, 0, len(sorted)),
	}
	row := 0
	for k := 0; k < len(sorted); {
		e := sorted[k]
		v := e.Val
		k++
		for k < len(sorted) && sorted[k].Row == e.Row && sorted[k].Col == e.Col {
			v += sorted[k].Val
			k++
		}
		for row < e.Row {
			row++
			m.RowPtr[row] = int32(len(m.Col))
		}
		m.Col = append(m.Col, int32(e.Col))
		m.Val = append(m.Val, v)
	}
	for row < n {
		row++
		m.RowPtr[row] = int32(len(m.Col))
	}
	return m, nil
}

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.Col) }

// Row returns the column indices and values of row i. The returned slices
// alias the matrix storage and must not be modified.
func (m *CSR) Row(i int) ([]int32, []float64) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return m.Col[lo:hi], m.Val[lo:hi]
}

// At returns the element at (i, j) using binary search within row i.
func (m *CSR) At(i, j int) float64 {
	cols, vals := m.Row(i)
	k := sort.Search(len(cols), func(k int) bool { return cols[k] >= int32(j) })
	if k < len(cols) && cols[k] == int32(j) {
		return vals[k]
	}
	return 0
}

// RowSum returns the sum of row i.
func (m *CSR) RowSum(i int) float64 {
	_, vals := m.Row(i)
	s := 0.0
	for _, v := range vals {
		s += v
	}
	return s
}

// ValidateStochastic checks that every non-empty row of m sums to 1 within
// tol and that all entries are non-negative, i.e. that m is a valid Markov
// transition matrix. Rows with no entries (absorbing-by-omission states)
// are reported as an error since mass would leak from them.
func (m *CSR) ValidateStochastic(tol float64) error {
	for i := 0; i < m.N; i++ {
		cols, vals := m.Row(i)
		if len(cols) == 0 {
			return fmt.Errorf("sparse: row %d has no outgoing transitions", i)
		}
		s := 0.0
		for _, v := range vals {
			if v < 0 {
				return fmt.Errorf("sparse: row %d has negative entry %g", i, v)
			}
			s += v
		}
		if math.Abs(s-1) > tol {
			return fmt.Errorf("sparse: row %d sums to %g, want 1", i, s)
		}
	}
	return nil
}

// MulVecLeft computes the forward Markov step w = Mᵀ·v on sparse vectors:
// w[j] = Σ_i v[i]·M[i][j]. In Markov terms this propagates a distribution
// over the current states one transition forward in time.
func (m *CSR) MulVecLeft(v Vec) Vec {
	w := make(Vec, len(v)*2)
	for i, x := range v {
		if x == 0 {
			continue
		}
		cols, vals := m.Row(i)
		for k, c := range cols {
			w[int(c)] += x * vals[k]
		}
	}
	return w
}

// MulVecRight computes w = M·v: w[i] = Σ_j M[i][j]·v[j]. In Markov terms
// this is one step of backward smoothing (propagating likelihoods of future
// evidence one transition back in time). The result is supported on every
// row that can reach the support of v in one transition; callers restrict it
// to their reachable set as needed.
//
// For efficiency the iteration is driven by the support of v through the
// transpose adjacency supplied by tr; see Transpose.
func (m *CSR) MulVecRight(v Vec, tr *CSR) Vec {
	w := make(Vec, len(v)*2)
	for j, x := range v {
		if x == 0 {
			continue
		}
		cols, vals := tr.Row(j)
		for k, c := range cols {
			w[int(c)] += x * vals[k]
		}
	}
	return w
}

// Transpose returns mᵀ as a new CSR matrix.
func (m *CSR) Transpose() *CSR {
	counts := make([]int32, m.N+1)
	for _, c := range m.Col {
		counts[c+1]++
	}
	for i := 0; i < m.N; i++ {
		counts[i+1] += counts[i]
	}
	t := &CSR{
		N:      m.N,
		RowPtr: counts,
		Col:    make([]int32, len(m.Col)),
		Val:    make([]float64, len(m.Val)),
	}
	next := make([]int32, m.N)
	copy(next, t.RowPtr[:m.N])
	for i := 0; i < m.N; i++ {
		cols, vals := m.Row(i)
		for k, c := range cols {
			pos := next[c]
			t.Col[pos] = int32(i)
			t.Val[pos] = vals[k]
			next[c]++
		}
	}
	return t
}

// Scale returns a copy of m with every value multiplied by f.
func (m *CSR) Scale(f float64) *CSR {
	out := &CSR{N: m.N, RowPtr: m.RowPtr, Col: m.Col, Val: make([]float64, len(m.Val))}
	for i, v := range m.Val {
		out.Val[i] = v * f
	}
	return out
}

// RowVec returns row i as a sparse vector (a copy).
func (m *CSR) RowVec(i int) Vec {
	cols, vals := m.Row(i)
	v := make(Vec, len(cols))
	for k, c := range cols {
		v[int(c)] = vals[k]
	}
	return v
}
