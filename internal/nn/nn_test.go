package nn

import (
	"testing"

	"pnn/internal/geo"
	"pnn/internal/space"
	"pnn/internal/uncertain"
)

// testWorld: a 10-state line, three objects with fixed paths over [0, 3].
//
//	q fixed at state 5's position.
//	o0: states 5, 5, 6, 7  (dist 0, 0, 1, 2 in units of 0.1)
//	o1: states 7, 6, 5, 5  (dist 2, 1, 0, 0)
//	o2: alive only at t∈[1,2]: states 5, 9 → dist 0, 4
func testWorld(t *testing.T) (*World, *space.Space) {
	t.Helper()
	sp, err := space.Line(10)
	if err != nil {
		t.Fatal(err)
	}
	paths := []uncertain.Path{
		{Start: 0, States: []int32{5, 5, 6, 7}},
		{Start: 0, States: []int32{7, 6, 5, 5}},
		{Start: 1, States: []int32{5, 9}},
	}
	q := func(int) geo.Point { return sp.Point(5) }
	return NewWorld(sp, paths, q, 0, 3), sp
}

func TestWorldDistAndAlive(t *testing.T) {
	w, sp := testWorld(t)
	if d := w.Dist(0, 0); d != 0 {
		t.Errorf("Dist(o0, 0) = %v", d)
	}
	want := sp.Point(7).Dist(sp.Point(5))
	if d := w.Dist(1, 0); d != want {
		t.Errorf("Dist(o1, 0) = %v, want %v", d, want)
	}
	if w.Alive(2, 0) {
		t.Error("o2 should be dead at t=0")
	}
	if !w.Alive(2, 1) {
		t.Error("o2 should be alive at t=1")
	}
}

func TestIsNNAt(t *testing.T) {
	w, _ := testWorld(t)
	// t=0: o0 at distance 0 wins.
	if !w.IsNNAt(0, 0) || w.IsNNAt(1, 0) || w.IsNNAt(2, 0) {
		t.Error("t=0: only o0 is NN")
	}
	// t=1: o0 dist 0, o2 dist 0 → tie, both NN; o1 dist 1.
	if !w.IsNNAt(0, 1) || !w.IsNNAt(2, 1) || w.IsNNAt(1, 1) {
		t.Error("t=1: o0 and o2 tie as NN")
	}
	// t=2: o1 dist 0 wins.
	if !w.IsNNAt(1, 2) || w.IsNNAt(0, 2) || w.IsNNAt(2, 2) {
		t.Error("t=2: only o1 is NN")
	}
	// t=3: o1 wins; o2 dead.
	if !w.IsNNAt(1, 3) || w.IsNNAt(2, 3) {
		t.Error("t=3: only o1 is NN")
	}
}

func TestThroughoutSometime(t *testing.T) {
	w, _ := testWorld(t)
	if !w.IsNNThroughout(0, 0, 1) {
		t.Error("o0 is NN throughout [0,1]")
	}
	if w.IsNNThroughout(0, 0, 2) {
		t.Error("o0 loses at t=2")
	}
	if !w.IsNNSometime(1, 0, 3) {
		t.Error("o1 is NN at t=2")
	}
	if w.IsNNSometime(2, 2, 3) {
		t.Error("o2 is never NN on [2,3]")
	}
	if !w.IsNNThroughout(1, 2, 3) {
		t.Error("o1 is NN throughout [2,3]")
	}
}

func TestKNN(t *testing.T) {
	w, _ := testWorld(t)
	// t=0: distances o0=0, o1=2 units, o2 dead.
	if got := w.KNNAt(0, 1); len(got) != 1 || got[0] != 0 {
		t.Errorf("KNNAt(0,1) = %v", got)
	}
	if got := w.KNNAt(0, 5); len(got) != 2 {
		t.Errorf("KNNAt(0,5) = %v, want 2 alive objects", got)
	}
	// t=1: ties at distance 0 (o0, o2), then o1.
	got := w.KNNAt(1, 2)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("KNNAt(1,2) = %v, want [0 2]", got)
	}
	// IsKNNAt with k=2 at t=1: all three? o1 has 2 strictly closer → no.
	if !w.IsKNNAt(0, 1, 2) || !w.IsKNNAt(2, 1, 2) || w.IsKNNAt(1, 1, 2) {
		t.Error("IsKNNAt k=2 at t=1 wrong")
	}
	if !w.IsKNNAt(1, 1, 3) {
		t.Error("o1 is a 3-NN at t=1")
	}
	// Dead object is never a kNN.
	if w.IsKNNAt(2, 0, 99) {
		t.Error("dead object cannot be kNN")
	}
}

func TestNNAt(t *testing.T) {
	w, _ := testWorld(t)
	if got := w.NNAt(1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("NNAt(1) = %v, want [0 2]", got)
	}
	if got := w.NNAt(2); len(got) != 1 || got[0] != 1 {
		t.Errorf("NNAt(2) = %v, want [1]", got)
	}
}

func TestNNAtAllDead(t *testing.T) {
	sp, err := space.Line(5)
	if err != nil {
		t.Fatal(err)
	}
	paths := []uncertain.Path{{Start: 10, States: []int32{1}}}
	w := NewWorld(sp, paths, func(int) geo.Point { return geo.Point{} }, 0, 2)
	if got := w.NNAt(0); got != nil {
		t.Errorf("NNAt with no alive objects = %v, want nil", got)
	}
	if w.IsNNAt(0, 0) {
		t.Error("dead object is not NN")
	}
	if got := w.KNNAt(0, 3); len(got) != 0 {
		t.Errorf("KNNAt with no alive objects = %v", got)
	}
}

func TestNNMask(t *testing.T) {
	w, _ := testWorld(t)
	mask := make([]bool, 4)
	w.NNMask(0, mask)
	want := []bool{true, true, false, false}
	for i := range want {
		if mask[i] != want[i] {
			t.Errorf("NNMask(o0) = %v, want %v", mask, want)
			break
		}
	}
}
