package nn

import (
	"math"

	"pnn/internal/geo"
	"pnn/internal/space"
)

// WorldChunk is the number of possible worlds a batch holds at once —
// the chunking policy of every sampling kernel over WorldBatch (the
// single-engine counter and the sharded scatter-gather executor alike):
// large enough to amortize per-chunk bookkeeping, small enough that the
// state and distance buffers stay cache-resident and the memory
// high-water mark is independent of the sample budget.
const WorldChunk = 256

// WorldBatch is a chunk of possible worlds in columnar form: the states
// of every object in every world of the chunk live in one flat []int32,
// the distance matrix of every world in one flat []float64. It replaces
// per-world *World materialization in the Monte-Carlo hot path — where
// NewWorld allocates a [][]float64 per world, a batch's buffers are
// written in place and recycled across chunks (engines keep batches in
// a sync.Pool), so steady-state sampling allocates nothing.
//
// Layouts:
//
//   - states[(oi*nW + w)*nT + (t-Ts)] is the state of object oi at time
//     t in world w, or -1 when the object is dead at t. Object-major,
//     because the sampler fills one object's worlds consecutively from
//     that object's generator (the draw order the determinism contract
//     fixes).
//   - dist[((w*nT)+(t-Ts))*nObj + oi] is d(q(t), oi(t)) in world w, or
//     +Inf when dead. (world, time)-major, because every NN predicate
//     scans all objects at one (world, time) — the same row shape
//     World kept, now without the row allocations.
//
// A WorldBatch is not safe for concurrent mutation; the read-only
// predicate methods may be called from multiple goroutines once the
// distances are computed (the shard gather phase splits worlds across
// workers, each calling ComputeDistancesRange on its own world range
// first).
type WorldBatch struct {
	Ts, Te int

	nObj, nW, nT int
	states       []int32
	dist         []float64
	qpts         []geo.Point
}

// Reset shapes the batch for nObj objects × nW worlds over [ts, te],
// reusing the underlying buffers when they are large enough. Previous
// contents are overwritten lazily: every States column must be filled
// by the sampler and distances recomputed before evaluation.
func (b *WorldBatch) Reset(nObj, nW, ts, te int) {
	b.Ts, b.Te = ts, te
	b.nObj, b.nW, b.nT = nObj, nW, te-ts+1
	if n := nObj * nW * b.nT; cap(b.states) < n {
		b.states = make([]int32, n)
	} else {
		b.states = b.states[:n]
	}
	if n := b.nW * b.nT * nObj; cap(b.dist) < n {
		b.dist = make([]float64, n)
	} else {
		b.dist = b.dist[:n]
	}
	if cap(b.qpts) < b.nT {
		b.qpts = make([]geo.Point, b.nT)
	} else {
		b.qpts = b.qpts[:b.nT]
	}
}

// Worlds returns the number of worlds in the batch.
func (b *WorldBatch) Worlds() int { return b.nW }

// NumObjects returns the number of objects per world.
func (b *WorldBatch) NumObjects() int { return b.nObj }

// States returns the state column of object oi in world w: a slice of
// length Te-Ts+1 for the sampler to fill (states ascending by time;
// -1 marks timesteps where the object is dead).
func (b *WorldBatch) States(oi, w int) []int32 {
	base := (oi*b.nW + w) * b.nT
	return b.states[base : base+b.nT]
}

// ComputeDistances fills the whole distance matrix from the state
// columns: dist = d(q(t), state) via sp, +Inf for dead slots.
func (b *WorldBatch) ComputeDistances(sp *space.Space, q func(int) geo.Point) {
	b.PrepareQuery(q)
	b.ComputeDistancesRange(sp, 0, b.nW)
}

// PrepareQuery caches the query position of every window timestep.
// Call it once per Reset before any ComputeDistancesRange — the range
// fills only read the cache, so disjoint ranges stay data-race-free.
func (b *WorldBatch) PrepareQuery(q func(int) geo.Point) {
	for ti := 0; ti < b.nT; ti++ {
		b.qpts[ti] = q(b.Ts + ti)
	}
}

// ComputeDistancesRange fills the distance rows of worlds [w0, w1).
// Disjoint ranges may be computed concurrently — the gather workers of
// a sharded query each materialize their own world range.
func (b *WorldBatch) ComputeDistancesRange(sp *space.Space, w0, w1 int) {
	pts := sp.Points()
	inf := math.Inf(1)
	for oi := 0; oi < b.nObj; oi++ {
		col := b.states[(oi*b.nW+w0)*b.nT : (oi*b.nW+w1)*b.nT]
		for w := w0; w < w1; w++ {
			rowBase := w * b.nT * b.nObj
			for ti := 0; ti < b.nT; ti++ {
				s := col[(w-w0)*b.nT+ti]
				if s < 0 {
					b.dist[rowBase+ti*b.nObj+oi] = inf
				} else {
					b.dist[rowBase+ti*b.nObj+oi] = pts[s].Dist(b.qpts[ti])
				}
			}
		}
	}
}

// row returns the distances of all objects at time t in world w.
func (b *WorldBatch) row(w, t int) []float64 {
	base := (w*b.nT + (t - b.Ts)) * b.nObj
	return b.dist[base : base+b.nObj]
}

// Dist returns d(q(t), oi(t)) in world w; +Inf when oi is dead at t.
func (b *WorldBatch) Dist(w, oi, t int) float64 { return b.row(w, t)[oi] }

// IsKNNAt reports whether object oi ranks among the k nearest
// neighbors of q at time t in world w: alive, with fewer than k other
// objects strictly closer (ties included, per Definition 1).
func (b *WorldBatch) IsKNNAt(w, oi, t, k int) bool {
	row := b.row(w, t)
	d := row[oi]
	if math.IsInf(d, 1) {
		return false
	}
	closer := 0
	for j, dj := range row {
		if j != oi && dj < d {
			closer++
			if closer >= k {
				return false
			}
		}
	}
	return true
}

// KNNThroughout reports whether oi is among the k nearest at every
// timestep of the window in world w (the ∀ event of Definition 2).
func (b *WorldBatch) KNNThroughout(w, oi, k int) bool {
	for t := b.Ts; t <= b.Te; t++ {
		if !b.IsKNNAt(w, oi, t, k) {
			return false
		}
	}
	return true
}

// KNNSometime reports whether oi is among the k nearest at one or more
// timesteps of the window in world w (the ∃ event of Definition 1).
func (b *WorldBatch) KNNSometime(w, oi, k int) bool {
	for t := b.Ts; t <= b.Te; t++ {
		if b.IsKNNAt(w, oi, t, k) {
			return true
		}
	}
	return false
}

// KNNMask fills dst (length Te-Ts+1) with per-timestep k-NN indicators
// for object oi in world w — the per-world rows the PCNN lattice walk
// mines.
func (b *WorldBatch) KNNMask(w, oi, k int, dst []bool) {
	for t := b.Ts; t <= b.Te; t++ {
		dst[t-b.Ts] = b.IsKNNAt(w, oi, t, k)
	}
}
