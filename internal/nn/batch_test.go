package nn

import (
	"math"
	"math/rand"
	"testing"

	"pnn/internal/geo"
	"pnn/internal/space"
	"pnn/internal/uncertain"
)

// fillFromPaths writes the paths of one world into the batch's state
// columns the way the sampling kernel does: -1 outside a path's span.
func fillFromPaths(b *WorldBatch, w int, paths []uncertain.Path) {
	for oi, p := range paths {
		col := b.States(oi, w)
		for t := b.Ts; t <= b.Te; t++ {
			if s, ok := p.At(t); ok {
				col[t-b.Ts] = int32(s)
			} else {
				col[t-b.Ts] = -1
			}
		}
	}
}

// TestBatchMatchesWorld is the batch's correctness anchor: every
// predicate over a WorldBatch must agree with the reference World
// built from the same paths, across random worlds, windows and k.
func TestBatchMatchesWorld(t *testing.T) {
	sp, err := space.Line(30)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	const nObj, nW = 5, 16
	q := func(ti int) geo.Point { return sp.Point(10 + ti%3) }

	var b WorldBatch
	for trial := 0; trial < 20; trial++ {
		ts := rng.Intn(5)
		te := ts + 1 + rng.Intn(6)
		nT := te - ts + 1
		worlds := make([][]uncertain.Path, nW)
		b.Reset(nObj, nW, ts, te)
		for w := 0; w < nW; w++ {
			paths := make([]uncertain.Path, nObj)
			for oi := range paths {
				// Random span, possibly missing the window entirely.
				start := ts - 2 + rng.Intn(5)
				n := rng.Intn(nT + 3)
				states := make([]int32, n)
				for i := range states {
					states[i] = int32(rng.Intn(sp.Len()))
				}
				paths[oi] = uncertain.Path{Start: start, States: states}
			}
			worlds[w] = paths
			fillFromPaths(&b, w, paths)
		}
		b.ComputeDistances(sp, q)

		mask := make([]bool, nT)
		refMask := make([]bool, nT)
		for w := 0; w < nW; w++ {
			ref := NewWorld(sp, worlds[w], q, ts, te)
			for oi := 0; oi < nObj; oi++ {
				for tt := ts; tt <= te; tt++ {
					bd, rd := b.Dist(w, oi, tt), ref.Dist(oi, tt)
					if bd != rd && !(math.IsInf(bd, 1) && math.IsInf(rd, 1)) {
						t.Fatalf("trial %d world %d: Dist(%d,%d) = %v, want %v", trial, w, oi, tt, bd, rd)
					}
					for k := 1; k <= 3; k++ {
						if got, want := b.IsKNNAt(w, oi, tt, k), ref.IsKNNAt(oi, tt, k); got != want {
							t.Fatalf("trial %d world %d: IsKNNAt(%d,%d,%d) = %v, want %v", trial, w, oi, tt, k, got, want)
						}
					}
				}
				for k := 1; k <= 3; k++ {
					wantAll, wantSome := true, false
					for tt := ts; tt <= te; tt++ {
						knn := ref.IsKNNAt(oi, tt, k)
						wantAll = wantAll && knn
						wantSome = wantSome || knn
					}
					if got := b.KNNThroughout(w, oi, k); got != wantAll {
						t.Fatalf("trial %d world %d: KNNThroughout(%d,%d) = %v, want %v", trial, w, oi, k, got, wantAll)
					}
					if got := b.KNNSometime(w, oi, k); got != wantSome {
						t.Fatalf("trial %d world %d: KNNSometime(%d,%d) = %v, want %v", trial, w, oi, k, got, wantSome)
					}
					b.KNNMask(w, oi, k, mask)
					ref.KNNMask(oi, k, refMask)
					for i := range mask {
						if mask[i] != refMask[i] {
							t.Fatalf("trial %d world %d: KNNMask(%d,%d)[%d] = %v, want %v", trial, w, oi, k, i, mask[i], refMask[i])
						}
					}
				}
			}
		}
	}
}

// TestBatchResetReuse pins the zero-allocation contract: once grown, a
// batch reshaped to an equal-or-smaller geometry must not allocate.
func TestBatchResetReuse(t *testing.T) {
	var b WorldBatch
	b.Reset(8, 64, 0, 9)
	big := cap(b.states)
	allocs := testing.AllocsPerRun(100, func() {
		b.Reset(4, 32, 2, 7)
		b.Reset(8, 64, 0, 9)
	})
	if allocs != 0 {
		t.Errorf("Reset to covered geometry allocated %v times per run", allocs)
	}
	if cap(b.states) != big {
		t.Errorf("Reset replaced a sufficient buffer")
	}
}

// TestBatchRangeComputation checks that disjoint ComputeDistancesRange
// calls compose to the full matrix.
func TestBatchRangeComputation(t *testing.T) {
	sp, err := space.Line(20)
	if err != nil {
		t.Fatal(err)
	}
	q := func(int) geo.Point { return sp.Point(3) }
	rng := rand.New(rand.NewSource(9))
	var whole, parts WorldBatch
	const nObj, nW = 3, 10
	whole.Reset(nObj, nW, 0, 4)
	parts.Reset(nObj, nW, 0, 4)
	for w := 0; w < nW; w++ {
		for oi := 0; oi < nObj; oi++ {
			col := whole.States(oi, w)
			pcol := parts.States(oi, w)
			for i := range col {
				s := int32(rng.Intn(sp.Len()))
				if rng.Intn(5) == 0 {
					s = -1
				}
				col[i], pcol[i] = s, s
			}
		}
	}
	whole.ComputeDistances(sp, q)
	parts.PrepareQuery(q)
	parts.ComputeDistancesRange(sp, 0, 4)
	parts.ComputeDistancesRange(sp, 4, nW)
	for w := 0; w < nW; w++ {
		for oi := 0; oi < nObj; oi++ {
			for tt := 0; tt <= 4; tt++ {
				a, b2 := whole.Dist(w, oi, tt), parts.Dist(w, oi, tt)
				if a != b2 && !(math.IsInf(a, 1) && math.IsInf(b2, 1)) {
					t.Fatalf("range fill differs at w=%d oi=%d t=%d: %v vs %v", w, oi, tt, a, b2)
				}
			}
		}
	}
}
