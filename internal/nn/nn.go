// Package nn evaluates nearest-neighbor predicates on certain trajectories.
// The Monte-Carlo query engine samples possible worlds — one concrete
// trajectory per object — and then answers classical (non-probabilistic)
// trajectory NN questions in each world, exactly as the paper reduces PNN
// evaluation to NN algorithms for certain trajectories [5, 6, 8].
//
// Distance semantics follow Definition 1: object o is the NN of q at time t
// iff d(q(t), o(t)) <= d(q(t), o'(t)) for every other object o' alive at t.
// An object that is not alive at t is never the NN at t and does not
// compete against others at t.
package nn

import (
	"math"
	"sort"

	"pnn/internal/geo"
	"pnn/internal/space"
	"pnn/internal/uncertain"
)

// World is one possible world over a query window: the distance from the
// query to every object at every timestep of [Ts, Te].
type World struct {
	Ts, Te int
	// dist[t-Ts][oi] is d(q(t), o_i(t)), or +Inf when o_i is not alive
	// at t.
	dist [][]float64
}

// NewWorld materializes the distance matrix for one sampled world. paths
// holds one concrete trajectory per object (indices align with the caller's
// object table); q maps a timestep to the query position.
func NewWorld(sp *space.Space, paths []uncertain.Path, q func(int) geo.Point, ts, te int) *World {
	w := &World{Ts: ts, Te: te, dist: make([][]float64, te-ts+1)}
	for t := ts; t <= te; t++ {
		row := make([]float64, len(paths))
		qp := q(t)
		for i, p := range paths {
			if s, ok := p.At(t); ok {
				row[i] = sp.Point(s).Dist(qp)
			} else {
				row[i] = math.Inf(1)
			}
		}
		w.dist[t-ts] = row
	}
	return w
}

// Dist returns d(q(t), o_i(t)); +Inf when the object is dead at t.
func (w *World) Dist(oi, t int) float64 { return w.dist[t-w.Ts][oi] }

// Alive reports whether object oi is alive at t in this world.
func (w *World) Alive(oi, t int) bool { return !math.IsInf(w.dist[t-w.Ts][oi], 1) }

// IsNNAt reports whether object oi is a nearest neighbor of q at time t
// (ties included, per Definition 1).
func (w *World) IsNNAt(oi, t int) bool {
	row := w.dist[t-w.Ts]
	d := row[oi]
	if math.IsInf(d, 1) {
		return false
	}
	for j, dj := range row {
		if j != oi && dj < d {
			return false
		}
	}
	return true
}

// IsKNNAt reports whether object oi ranks among the k nearest neighbors of
// q at time t: fewer than k other objects are strictly closer.
func (w *World) IsKNNAt(oi, t, k int) bool {
	row := w.dist[t-w.Ts]
	d := row[oi]
	if math.IsInf(d, 1) {
		return false
	}
	closer := 0
	for j, dj := range row {
		if j != oi && dj < d {
			closer++
			if closer >= k {
				return false
			}
		}
	}
	return true
}

// IsNNThroughout reports whether oi is the NN of q at every t in [t0, t1]
// (Definition 2's ∀ event in one world).
func (w *World) IsNNThroughout(oi, t0, t1 int) bool {
	for t := t0; t <= t1; t++ {
		if !w.IsNNAt(oi, t) {
			return false
		}
	}
	return true
}

// IsNNSometime reports whether oi is the NN of q at at least one t in
// [t0, t1] (Definition 1's ∃ event in one world).
func (w *World) IsNNSometime(oi, t0, t1 int) bool {
	for t := t0; t <= t1; t++ {
		if w.IsNNAt(oi, t) {
			return true
		}
	}
	return false
}

// NNAt returns all objects achieving the minimum distance at time t, in
// ascending index order; empty when no object is alive.
func (w *World) NNAt(t int) []int {
	row := w.dist[t-w.Ts]
	best := math.Inf(1)
	for _, d := range row {
		if d < best {
			best = d
		}
	}
	if math.IsInf(best, 1) {
		return nil
	}
	var out []int
	for i, d := range row {
		if d == best {
			out = append(out, i)
		}
	}
	return out
}

// KNNAt returns the k nearest objects at time t in ascending distance
// order (ties broken by index). Fewer than k objects may be returned when
// not enough are alive.
func (w *World) KNNAt(t, k int) []int {
	row := w.dist[t-w.Ts]
	type od struct {
		oi int
		d  float64
	}
	all := make([]od, 0, len(row))
	for i, d := range row {
		if !math.IsInf(d, 1) {
			all = append(all, od{i, d})
		}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].d != all[b].d {
			return all[a].d < all[b].d
		}
		return all[a].oi < all[b].oi
	})
	if len(all) > k {
		all = all[:k]
	}
	out := make([]int, len(all))
	for i, x := range all {
		out[i] = x.oi
	}
	return out
}

// NNMask fills dst (length Te-Ts+1) with per-timestep NN indicators for
// object oi. Reusing one boolean slice across worlds avoids allocation in
// the PCNN inner loop.
func (w *World) NNMask(oi int, dst []bool) {
	for t := w.Ts; t <= w.Te; t++ {
		dst[t-w.Ts] = w.IsNNAt(oi, t)
	}
}

// KNNMask fills dst with per-timestep k-NN indicators for object oi (the
// PCkNN generalization).
func (w *World) KNNMask(oi, k int, dst []bool) {
	for t := w.Ts; t <= w.Te; t++ {
		dst[t-w.Ts] = w.IsKNNAt(oi, t, k)
	}
}
