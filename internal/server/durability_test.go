package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"pnn"
	"pnn/internal/cluster"
)

func durableProc(t *testing.T, dir string) (*pnn.Network, *pnn.Processor) {
	t.Helper()
	net, err := pnn.NewGridNetwork(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	db := pnn.NewDB(net)
	for id := 0; id < 4; id++ {
		st := (id * 11) % net.NumStates()
		if err := db.Add(id, []pnn.Observation{{T: 0, State: st}, {T: 8, State: st}}); err != nil {
			t.Fatal(err)
		}
	}
	proc, rec, err := db.BuildShardedDurable(200, 2, pnn.Durability{Dir: dir, Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proc.Close() })
	if rec == nil {
		t.Fatal("durable build returned nil RecoveryInfo")
	}
	return net, proc
}

func getHealth(t *testing.T, url string) HealthResponse {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

// TestHealthzDurabilityBlock: a durable backend advertises mode, spill
// versions and pending WAL bytes on /healthz; a volatile one reports
// mode "volatile", disabled.
func TestHealthzDurabilityBlock(t *testing.T) {
	net, proc := durableProc(t, t.TempDir())
	ts := httptest.NewServer(New(net, proc, Config{Ingest: true}))
	defer ts.Close()

	h := getHealth(t, ts.URL)
	if !h.Durability.Enabled || h.Durability.Mode != "wal+fsync" {
		t.Fatalf("durable healthz block = %+v", h.Durability)
	}
	if len(h.Durability.SpillVersions) != 2 {
		t.Fatalf("spill_versions = %v, want one per shard", h.Durability.SpillVersions)
	}
	if h.Durability.WALBytesSinceSpill != 0 {
		t.Fatalf("fresh wal_bytes_since_spill = %d", h.Durability.WALBytesSinceSpill)
	}
	if _, err := proc.AddObject(500, []pnn.Observation{{T: 0, State: 5}, {T: 8, State: 5}}); err != nil {
		t.Fatal(err)
	}
	if h = getHealth(t, ts.URL); h.Durability.WALBytesSinceSpill == 0 {
		t.Fatal("write did not surface in wal_bytes_since_spill")
	}

	// Volatile comparison point.
	vnet, vproc, vts := testServer(t)
	_ = vnet
	_ = vproc
	if h = getHealth(t, vts.URL); h.Durability.Enabled || h.Durability.Mode != "volatile" {
		t.Fatalf("volatile healthz block = %+v", h.Durability)
	}
}

// TestClusterDurabilityMode: /v1/cluster reports the node's own mode on
// a standalone node, and the router's view carries each peer's mode
// from its health probe (the satellite "spot the volatile peer" fix).
func TestClusterDurabilityMode(t *testing.T) {
	net, proc := durableProc(t, t.TempDir())
	ts := httptest.NewServer(New(net, proc, Config{Ingest: true}))
	defer ts.Close()
	var st cluster.Status
	resp, err := http.Get(ts.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Durability != "wal+fsync" {
		t.Fatalf("standalone /v1/cluster durability = %q, want wal+fsync", st.Durability)
	}

	// One durable peer, one volatile peer, behind a router.
	durNet, durProc := durableProc(t, t.TempDir())
	durPeer := httptest.NewServer(New(durNet, durProc, Config{Role: RolePeer}))
	defer durPeer.Close()
	volDB := pnn.NewDB(durNet)
	if err := volDB.Add(1, []pnn.Observation{{T: 0, State: 3}, {T: 8, State: 3}}); err != nil {
		t.Fatal(err)
	}
	volProc, err := volDB.Build(200)
	if err != nil {
		t.Fatal(err)
	}
	volPeer := httptest.NewServer(New(durNet, volProc, Config{Role: RolePeer}))
	defer volPeer.Close()

	coord, err := cluster.NewCoordinator(durNet, cluster.Config{
		Peers: []cluster.Peer{
			{Name: "a", URL: durPeer.URL},
			{Name: "b", URL: volPeer.URL},
		},
		Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := coord.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}
	defer coord.CloseSubscriptions()

	cst := coord.ClusterStatus()
	if cst.Durability != "stateless" {
		t.Fatalf("router durability = %q, want stateless", cst.Durability)
	}
	modes := map[string]string{}
	for _, p := range cst.Peers {
		modes[p.Name] = p.Durability
	}
	if modes["a"] != "wal+fsync" || modes["b"] != "volatile" {
		t.Fatalf("per-peer durability = %v, want a=wal+fsync b=volatile", modes)
	}
}
