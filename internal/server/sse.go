// Standing-query endpoints: /v1/subscribe registers a SubscriptionSpec
// and either streams its events over Server-Sent Events on the same
// connection or hands back a subscription id for long-polling;
// /v1/subscriptions lists, long-polls and cancels registered
// subscriptions.
//
// The wire contract mirrors the one-shot endpoints deliberately: each
// answer event embeds a full QueryResponse — results, stats and the
// sampling block — evaluated at the snapshot version the event names,
// and is byte-identical to what the matching one-shot endpoint would
// have answered at that version with the subscription's seed.

package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"pnn"
)

// Delivery transports of a subscription.
const (
	TransportSSE  = "sse"  // stream events on the subscribe connection
	TransportPoll = "poll" // queue events for GET /v1/subscriptions/{id}/events
)

// sseQueueCap sizes the per-subscription event queue behind the HTTP
// transports; slow consumers lose oldest events (surfaced via
// "dropped"), never block ingest.
const sseQueueCap = 64

// DeliveryJSON is the "delivery" block of a SubscriptionSpec.
type DeliveryJSON struct {
	// Transport is "sse" (default) or "poll".
	Transport string `json:"transport,omitempty"`
	// MinIntervalMS coalesces events: at most one delivery per interval,
	// always the newest result.
	MinIntervalMS int `json:"min_interval_ms,omitempty"`
	// OnChangeOnly suppresses re-evaluations whose answer is unchanged.
	OnChangeOnly bool `json:"on_change_only,omitempty"`
}

// SubscriptionSpec is the body of /v1/subscribe: a semantics tag, a
// canonical QuerySpec and an optional delivery block. Unlike the
// one-shot endpoints, the legacy flat alias spellings are rejected here
// (code "use_query_spec") — new surface, canonical schema only.
type SubscriptionSpec struct {
	Semantics string `json:"semantics"` // "forall" | "exists" | "cnn"
	QuerySpec
	Delivery *DeliveryJSON `json:"delivery,omitempty"`
}

// SubEventJSON is one delivered subscription event: an SSE "data:"
// frame, or an element of a poll response. Response is absent on the
// terminal bye event.
type SubEventJSON struct {
	SubID   int64  `json:"sub_id"`
	Seq     int64  `json:"seq"`
	Event   string `json:"event"` // "answer" | "bye"
	Version int64  `json:"version,omitempty"`
	// Dropped counts events this subscription has lost in total to its
	// bounded queue; a jump between consecutive events tells the
	// consumer it missed intermediate versions.
	Dropped  int64          `json:"dropped,omitempty"`
	Response *QueryResponse `json:"response,omitempty"`
	// Sweep reports how the grouped fanout produced this answer; absent
	// on bye events and on answers from registries without grouping.
	Sweep *SubSweepJSON `json:"sweep,omitempty"`
}

// SubSweepJSON is the per-event fanout diagnostic block: how many
// compatible standing queries shared this evaluation pass, how many
// possible worlds the pass drew, the adaptive floor in effect (for
// confidence queries), and whether that floor was reused from the
// group's previously proven budget. The embedded QueryResponse stays
// byte-identical to the one-shot envelope; this block rides on the
// event wrapper only.
type SubSweepJSON struct {
	GroupSize    int  `json:"group_size,omitempty"`
	Worlds       int  `json:"worlds,omitempty"`
	WorldFloor   int  `json:"world_floor,omitempty"`
	BudgetReused bool `json:"budget_reused,omitempty"`
}

// SubscribeResponse is the body of a poll-transport /v1/subscribe call.
type SubscribeResponse struct {
	APIVersion     string `json:"api_version"`
	SubscriptionID int64  `json:"subscription_id"`
	Transport      string `json:"transport"`
}

// SubInfoJSON describes one registered subscription in /v1/subscriptions.
type SubInfoJSON struct {
	ID            int64  `json:"id"`
	Transport     string `json:"transport"`
	MinIntervalMS int    `json:"min_interval_ms,omitempty"`
	OnChangeOnly  bool   `json:"on_change_only,omitempty"`
	Events        int64  `json:"events"`       // events emitted so far (delivered + queued)
	LastVersion   int64  `json:"last_version"` // snapshot version of the newest emitted answer
	Dropped       int64  `json:"dropped"`
	Influencers   int    `json:"influencers"` // inverted-index footprint: objects mapping to this subscription
}

// SubListResponse is the body of GET /v1/subscriptions.
type SubListResponse struct {
	APIVersion    string        `json:"api_version"`
	Subscriptions []SubInfoJSON `json:"subscriptions"`
}

// SubEventsResponse is the body of GET /v1/subscriptions/{id}/events.
type SubEventsResponse struct {
	APIVersion string         `json:"api_version"`
	Events     []SubEventJSON `json:"events"`
	// Closed reports the subscription has delivered its terminal bye and
	// will never produce another event.
	Closed bool `json:"closed,omitempty"`
}

// handleSubscribe registers a standing query. SSE transport keeps the
// connection open and streams events until the subscription dies (or
// the client disconnects, which cancels it); poll transport answers
// immediately with the subscription id.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "", "use POST")
		return
	}
	var spec SubscriptionSpec
	if err := decodeBody(r, &spec); err != nil {
		writeErr(w, http.StatusBadRequest, CodeInvalidBody, "", err)
		return
	}
	if aliases := legacyAliases(spec.QuerySpec); len(aliases) != 0 {
		httpError(w, http.StatusBadRequest, CodeUseQuerySpec, "",
			fmt.Sprintf("/v1/subscribe takes only the canonical QuerySpec shape (%s)", aliases[0]))
		return
	}
	pr, _, aerr := s.toRequest(pnn.Semantics(spec.Semantics), spec.QuerySpec)
	if aerr != nil {
		httpError(w, http.StatusBadRequest, aerr.code, aerr.field, aerr.msg)
		return
	}
	d := DeliveryJSON{Transport: TransportSSE}
	if spec.Delivery != nil {
		d = *spec.Delivery
		if d.Transport == "" {
			d.Transport = TransportSSE
		}
	}
	if d.Transport != TransportSSE && d.Transport != TransportPoll {
		httpError(w, http.StatusBadRequest, CodeInvalidDelivery, "delivery.transport",
			fmt.Sprintf("unknown transport %q (want %q or %q)", d.Transport, TransportSSE, TransportPoll))
		return
	}
	if d.MinIntervalMS < 0 {
		httpError(w, http.StatusBadRequest, CodeInvalidDelivery, "delivery.min_interval_ms",
			"min_interval_ms must be >= 0")
		return
	}
	if s.proc.NumSubscriptions() >= s.cfg.MaxSubscriptions {
		httpError(w, http.StatusTooManyRequests, CodeSubLimit, "",
			fmt.Sprintf("subscription limit %d reached", s.cfg.MaxSubscriptions))
		return
	}
	sub, err := s.proc.Subscribe(pr, pnn.Delivery{
		Transport:    d.Transport,
		MinInterval:  time.Duration(d.MinIntervalMS) * time.Millisecond,
		OnChangeOnly: d.OnChangeOnly,
		QueueCap:     sseQueueCap,
	})
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeInvalidQuery, "", err)
		return
	}
	if d.Transport == TransportPoll {
		writeJSON(w, http.StatusOK, SubscribeResponse{
			APIVersion: APIVersion, SubscriptionID: sub.ID(), Transport: TransportPoll,
		})
		return
	}
	s.streamSSE(w, r, sub)
}

// streamSSE writes a subscription's events as Server-Sent Events until
// the terminal bye frame or client disconnect. Each frame is
//
//	id: <seq>
//	event: answer | bye
//	data: <SubEventJSON>
func (s *Server) streamSSE(w http.ResponseWriter, r *http.Request, sub *pnn.Subscription) {
	fl, ok := w.(http.Flusher)
	if !ok {
		s.proc.Unsubscribe(sub.ID())
		httpError(w, http.StatusNotImplemented, CodeInvalidDelivery, "delivery.transport",
			"connection does not support streaming; use the poll transport")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		select {
		case e, open := <-sub.Events():
			if !open {
				return
			}
			frame := eventJSON(sub.ID(), e)
			data, err := json.Marshal(frame)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, frame.Event, data)
			fl.Flush()
			if e.Bye {
				return
			}
		case <-r.Context().Done():
			// The consumer is gone: cancel the standing query so the
			// engine stops re-evaluating it. The registry's bye lands on
			// a channel nobody reads; its queue is bounded and orphaned,
			// so nothing leaks or blocks.
			s.proc.Unsubscribe(sub.ID())
			return
		}
	}
}

// handleSubscriptions answers GET /v1/subscriptions.
func (s *Server) handleSubscriptions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "", "use GET")
		return
	}
	infos := s.proc.Subscriptions()
	out := SubListResponse{APIVersion: APIVersion, Subscriptions: make([]SubInfoJSON, len(infos))}
	for i, in := range infos {
		out.Subscriptions[i] = SubInfoJSON{
			ID:            in.ID,
			Transport:     in.Delivery.Transport,
			MinIntervalMS: int(in.Delivery.MinInterval / time.Millisecond),
			OnChangeOnly:  in.Delivery.OnChangeOnly,
			Events:        in.Seq,
			LastVersion:   in.LastVersion,
			Dropped:       in.Dropped,
			Influencers:   in.Influencers,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleSubscription answers DELETE /v1/subscriptions/{id}: the
// standing query is cancelled and its consumer — an open SSE stream or
// a future poll — receives the terminal bye event.
func (s *Server) handleSubscription(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodDelete {
		httpError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "", "use DELETE")
		return
	}
	id, ok := subID(w, r)
	if !ok {
		return
	}
	if !s.proc.Unsubscribe(id) {
		httpError(w, http.StatusNotFound, CodeUnknownSub, "id",
			fmt.Sprintf("no subscription %d", id))
		return
	}
	writeJSON(w, http.StatusOK, SubscribeResponse{APIVersion: APIVersion, SubscriptionID: id})
}

// handleSubEvents answers GET /v1/subscriptions/{id}/events: it drains
// every queued event of a poll-transport subscription, waiting up to
// "timeout_ms" (default 0: return immediately) for the first one when
// the queue is empty.
func (s *Server) handleSubEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "", "use GET")
		return
	}
	id, ok := subID(w, r)
	if !ok {
		return
	}
	sub, ok := s.proc.Subscription(id)
	if !ok {
		httpError(w, http.StatusNotFound, CodeUnknownSub, "id",
			fmt.Sprintf("no subscription %d", id))
		return
	}
	var timeout time.Duration
	if ms := r.URL.Query().Get("timeout_ms"); ms != "" {
		n, err := strconv.Atoi(ms)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, CodeInvalidBody, "timeout_ms",
				fmt.Sprintf("invalid timeout_ms %q", ms))
			return
		}
		timeout = time.Duration(n) * time.Millisecond
	}
	out := SubEventsResponse{APIVersion: APIVersion, Events: []SubEventJSON{}}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	// Block (bounded by the timeout) only while empty-handed; once at
	// least one event is in hand, drain whatever else is queued and
	// return.
	for {
		if len(out.Events) == 0 && timeout > 0 {
			select {
			case e, open := <-sub.Events():
				if !open {
					out.Closed = true
					writeJSON(w, http.StatusOK, out)
					return
				}
				out.Events = append(out.Events, eventJSON(id, e))
				continue
			case <-deadline.C:
			case <-r.Context().Done():
				return
			}
			break
		}
		select {
		case e, open := <-sub.Events():
			if !open {
				out.Closed = true
				writeJSON(w, http.StatusOK, out)
				return
			}
			out.Events = append(out.Events, eventJSON(id, e))
			continue
		default:
		}
		break
	}
	writeJSON(w, http.StatusOK, out)
}

// subID parses the {id} path segment, answering 400 on garbage.
func subID(w http.ResponseWriter, r *http.Request) (int64, bool) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, CodeInvalidBody, "id",
			fmt.Sprintf("invalid subscription id %q", r.PathValue("id")))
		return 0, false
	}
	return id, true
}

// eventJSON converts one registry event to its wire shape. Answer
// payloads reuse the one-shot QueryResponse envelope byte-for-byte.
func eventJSON(subID int64, e pnn.SubEvent) SubEventJSON {
	out := SubEventJSON{SubID: subID, Seq: e.Seq, Version: e.Version, Dropped: e.Dropped}
	if e.Bye {
		out.Event = "bye"
		return out
	}
	out.Event = "answer"
	if resp, ok := e.Payload.(pnn.Response); ok {
		qr := toJSON(resp)
		out.Response = &qr
		if resp.Stats.GroupSize > 0 {
			out.Sweep = &SubSweepJSON{
				GroupSize:    resp.Stats.GroupSize,
				Worlds:       resp.Stats.Worlds,
				WorldFloor:   resp.Stats.WorldFloor,
				BudgetReused: resp.Stats.BudgetReused,
			}
		}
	}
	return out
}
