package server

// Cluster conformance: a router over two single-shard peer processes
// must answer /v1 queries byte-identical to one process holding the
// same objects in two shards — same results, sampling, stats and
// version blocks at the same snapshot version and seed — and must fail
// structurally (peer_unavailable), never partially, when a peer dies.

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"pnn"
	"pnn/internal/cluster"
)

var clusterPeerNames = []string{"alpha", "beta"}

// clusterDB builds the conformance dataset: six route objects. keep
// filters which objects are added, so peers load exactly the slice
// they own — the same state pnnserve -role peer reaches via DB.Retain.
func clusterDB(t *testing.T, net *pnn.Network, keep func(id int) bool) *pnn.DB {
	t.Helper()
	db := pnn.NewDB(net)
	routes := [][2]pnn.Point{
		{{X: 0.1, Y: 0.1}, {X: 0.9, Y: 0.9}},
		{{X: 0.9, Y: 0.1}, {X: 0.1, Y: 0.9}},
		{{X: 0.1, Y: 0.5}, {X: 0.9, Y: 0.5}},
		{{X: 0.5, Y: 0.1}, {X: 0.5, Y: 0.9}},
		{{X: 0.2, Y: 0.8}, {X: 0.8, Y: 0.2}},
		{{X: 0.3, Y: 0.3}, {X: 0.7, Y: 0.7}},
	}
	for i, r := range routes {
		id := 100 + 7*i
		if keep != nil && !keep(id) {
			continue
		}
		a, b := net.NearestState(r[0]), net.NearestState(r[1])
		if err := db.Add(id, net.ObservationsAlong(a, b, 0, 2, 4)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// clusterRig is the full conformance topology: one single-process
// two-shard reference server, two one-shard peers behind /internal, a
// coordinator over them and the router server it backs.
type clusterRig struct {
	net    *pnn.Network
	single *httptest.Server
	router *httptest.Server
	coord  *cluster.Coordinator
	peers  map[string]*httptest.Server
}

func newClusterRig(t *testing.T, workers int) *clusterRig {
	t.Helper()
	net, err := pnn.NewGridNetwork(8, 8)
	if err != nil {
		t.Fatal(err)
	}

	proc, err := clusterDB(t, net, nil).BuildSharded(300, 2)
	if err != nil {
		t.Fatal(err)
	}
	single := httptest.NewServer(New(net, proc, Config{BatchWorkers: 2, Ingest: true}))
	t.Cleanup(single.Close)

	// Peers hold exactly the reference processor's shards (peer i =
	// shard i), so every response byte — including the layout-dependent
	// pruning diagnostics stats.candidates/influencers/sampler_builds —
	// must match, not just the layout-free answer. A production peer
	// retains by ring arc instead (a different but equally valid
	// partition); the cross-process tier under cmd/pnnserve covers that
	// shape, comparing answers modulo the layout diagnostics.
	peers := make(map[string]*httptest.Server, len(clusterPeerNames))
	cpeers := make([]cluster.Peer, 0, len(clusterPeerNames))
	for i, name := range clusterPeerNames {
		shard := i
		pdb := clusterDB(t, net, func(id int) bool { return proc.ShardSet().ShardFor(id) == shard })
		if pdb.Len() == 0 {
			t.Fatalf("peer %s owns no objects; respread the dataset IDs", name)
		}
		pproc, err := pdb.Build(300)
		if err != nil {
			t.Fatal(err)
		}
		pts := httptest.NewServer(New(net, pproc, Config{Role: RolePeer}))
		t.Cleanup(pts.Close)
		peers[name] = pts
		cpeers = append(cpeers, cluster.Peer{Name: name, URL: pts.URL})
	}

	coord, err := cluster.NewCoordinator(net, cluster.Config{
		Peers: cpeers, Timeout: 5 * time.Second, Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := coord.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.CloseSubscriptions)
	router := httptest.NewServer(New(net, coord, Config{BatchWorkers: 2, Ingest: true, Role: RoleRouter}))
	t.Cleanup(router.Close)
	return &clusterRig{net: net, single: single, router: router, coord: coord, peers: peers}
}

// TestClusterQueryConformance is the determinism contract of cluster
// mode: every /v1 query endpoint answers byte-identical bodies from the
// router and from the single-process reference — including the
// sampling and version blocks — at both gather parallelism levels.
func TestClusterQueryConformance(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
			rig := newClusterRig(t, workers)
			center := rig.net.NearestState(pnn.Point{X: 0.5, Y: 0.5})
			cases := []struct{ name, path, body string }{
				{"forall", "/v1/forallnn",
					fmt.Sprintf(`{"query": {"state": %d}, "window": {"ts": 1, "te": 6}, "tau": 0.05, "seed": 42}`, center)},
				{"exists-k2", "/v1/existsnn",
					fmt.Sprintf(`{"query": {"state": %d}, "window": {"ts": 1, "te": 6}, "tau": 0.05, "seed": 7, "k": 2}`, center)},
				{"point-exists", "/v1/existsnn",
					`{"query": {"point": {"x": 0.5, "y": 0.5}}, "window": {"ts": 1, "te": 5}, "tau": 0.05, "seed": 3}`},
				{"trajectory-cnn", "/v1/pcnn",
					`{"query": {"trajectory": {"start": 1, "points": [{"x": 0.4, "y": 0.5}, {"x": 0.5, "y": 0.5}]}}, "window": {"ts": 1, "te": 4}, "tau": 0.3, "seed": 9}`},
				{"confidence-adaptive", "/v1/forallnn",
					fmt.Sprintf(`{"query": {"state": %d}, "window": {"ts": 1, "te": 6}, "tau": 0.3, "seed": 42, "confidence": {"eps": 0.05, "max_samples": 2000}}`, center)},
			}
			for _, tc := range cases {
				t.Run(tc.name, func(t *testing.T) {
					sCode, sRaw := post(t, rig.single.URL+tc.path, tc.body)
					rCode, rRaw := post(t, rig.router.URL+tc.path, tc.body)
					if sCode != http.StatusOK || rCode != http.StatusOK {
						t.Fatalf("single = %d (%s), router = %d (%s)", sCode, sRaw, rCode, rRaw)
					}
					if !bytes.Equal(sRaw, rRaw) {
						t.Errorf("router answer diverges from single process:\nsingle: %s\nrouter: %s", sRaw, rRaw)
					}
					var qr QueryResponse
					if err := json.Unmarshal(rRaw, &qr); err != nil {
						t.Fatal(err)
					}
					if len(qr.Version.Vector) != 2 || qr.Version.Max != 1 {
						t.Errorf("fresh-build version block = %+v, want {[1 1] 1}", qr.Version)
					}
				})
			}
		})
	}
}

// TestClusterBatchConformance checks /v1/batch parity — solo and
// shared-world grouping — comparing everything except the wall-clock
// adapt_ms figure.
func TestClusterBatchConformance(t *testing.T) {
	rig := newClusterRig(t, 2)
	center := rig.net.NearestState(pnn.Point{X: 0.5, Y: 0.5})
	for _, share := range []bool{false, true} {
		t.Run(fmt.Sprintf("share-%v", share), func(t *testing.T) {
			body := fmt.Sprintf(`{"share_worlds": %v, "shared_seed": 9, "requests": [
				{"semantics": "forall", "query": {"state": %d}, "window": {"ts": 1, "te": 6}, "tau": 0.05, "seed": 1},
				{"semantics": "exists", "query": {"state": %d}, "window": {"ts": 1, "te": 6}, "tau": 0.05, "seed": 2},
				{"semantics": "exists", "query": {"state": %d}, "window": {"ts": 2, "te": 5}, "tau": 0.05, "seed": 3}
			]}`, share, center, center, center)
			sCode, sRaw := post(t, rig.single.URL+"/v1/batch", body)
			rCode, rRaw := post(t, rig.router.URL+"/v1/batch", body)
			if sCode != http.StatusOK || rCode != http.StatusOK {
				t.Fatalf("single = %d (%s), router = %d (%s)", sCode, sRaw, rCode, rRaw)
			}
			var sb, rb BatchResponse
			if err := json.Unmarshal(sRaw, &sb); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(rRaw, &rb); err != nil {
				t.Fatal(err)
			}
			sb.BatchStats.AdaptMillis, rb.BatchStats.AdaptMillis = 0, 0
			se, _ := json.Marshal(sb)
			re, _ := json.Marshal(rb)
			if !bytes.Equal(se, re) {
				t.Errorf("batch diverges (adapt_ms excluded):\nsingle: %s\nrouter: %s", se, re)
			}
			if len(rb.Version.Vector) != 2 || rb.Version.Max != 1 {
				t.Errorf("batch version block = %+v, want {[1 1] 1}", rb.Version)
			}
		})
	}
}

// TestClusterPeerDown kills one peer mid-flight: the router must answer
// 503 with the structured peer_unavailable code and no results — a
// gather is all-or-nothing, never a partial answer.
func TestClusterPeerDown(t *testing.T) {
	rig := newClusterRig(t, 4)
	center := rig.net.NearestState(pnn.Point{X: 0.5, Y: 0.5})
	rig.peers[clusterPeerNames[1]].Close()

	body := fmt.Sprintf(`{"query": {"state": %d}, "window": {"ts": 1, "te": 6}, "tau": 0.05, "seed": 42}`, center)
	code, raw := post(t, rig.router.URL+"/v1/forallnn", body)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("query with a dead peer = %d, want 503 (%s)", code, raw)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("error envelope undecodable: %s", raw)
	}
	if env.Error.Code != CodePeerUnavailable {
		t.Errorf("error.code = %q, want %q (%s)", env.Error.Code, CodePeerUnavailable, raw)
	}
	if bytes.Contains(raw, []byte(`"results"`)) {
		t.Errorf("dead-peer answer leaked partial results: %s", raw)
	}

	// Batch items all fail the same structured way.
	code, raw = post(t, rig.router.URL+"/v1/batch", fmt.Sprintf(
		`{"requests": [{"semantics": "exists", "query": {"state": %d}, "window": {"ts": 1, "te": 6}, "tau": 0.05}]}`, center))
	if code != http.StatusOK {
		t.Fatalf("batch with a dead peer = %d (%s)", code, raw)
	}
	var br BatchResponse
	if err := json.Unmarshal(raw, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Responses) != 1 || br.Responses[0].Error == nil {
		t.Fatalf("batch item did not fail: %s", raw)
	}
	if br.Responses[0].Error.Code != CodePeerUnavailable {
		t.Errorf("batch item code = %q, want %q", br.Responses[0].Error.Code, CodePeerUnavailable)
	}
	if len(br.Responses[0].Results) != 0 {
		t.Errorf("failed batch item carries partial results: %s", raw)
	}
}

// TestClusterIngestParity drives the routed write path: the same write
// lands on both deployments, the composite version.max advances
// identically, and post-write answers agree on everything but the
// vector layout (a single process shards by object hash, the ring by
// peer arc — the composite version is defined to be layout-free).
func TestClusterIngestParity(t *testing.T) {
	rig := newClusterRig(t, 2)
	corner := rig.net.NearestState(pnn.Point{X: 0.95, Y: 0.05})

	add := fmt.Sprintf(`{"id": 200, "observations": [{"t": 0, "state": %d}, {"t": 6, "state": %d}]}`, corner, corner)
	sCode, sRaw := post(t, rig.single.URL+"/v1/objects", add)
	rCode, rRaw := post(t, rig.router.URL+"/v1/objects", add)
	if sCode != http.StatusOK || rCode != http.StatusOK {
		t.Fatalf("single = %d (%s), router = %d (%s)", sCode, sRaw, rCode, rRaw)
	}
	var sing, rout IngestResponse
	if err := json.Unmarshal(sRaw, &sing); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(rRaw, &rout); err != nil {
		t.Fatal(err)
	}
	if sing != rout {
		t.Errorf("ingest responses diverge: single %+v, router %+v", sing, rout)
	}
	if rout.Version != 2 || rout.Objects != 7 {
		t.Errorf("routed ingest = %+v, want version 2 with 7 objects", rout)
	}

	// Appending through /v1/observe advances both the same way again.
	obs := fmt.Sprintf(`{"id": 200, "observations": [{"t": 12, "state": %d}]}`, corner)
	if code, raw := post(t, rig.single.URL+"/v1/observe", obs); code != http.StatusOK {
		t.Fatalf("single observe = %d (%s)", code, raw)
	}
	rCode, rRaw = post(t, rig.router.URL+"/v1/observe", obs)
	if rCode != http.StatusOK {
		t.Fatalf("router observe = %d (%s)", rCode, rRaw)
	}
	if err := json.Unmarshal(rRaw, &rout); err != nil {
		t.Fatal(err)
	}
	if rout.Version != 3 {
		t.Errorf("routed observe version = %d, want 3", rout.Version)
	}

	// Post-write queries agree modulo layout: the single process placed
	// the new object by shard hash, the router by ring arc, so the
	// vector and the pruning diagnostics may differ — results, worlds,
	// sampling and the composite version.max must not.
	body := fmt.Sprintf(`{"query": {"state": %d}, "window": {"ts": 7, "te": 11}, "tau": 0.5, "seed": 3}`, corner)
	sCode, sRaw = post(t, rig.single.URL+"/v1/forallnn", body)
	rCode, rRaw = post(t, rig.router.URL+"/v1/forallnn", body)
	if sCode != http.StatusOK || rCode != http.StatusOK {
		t.Fatalf("post-write single = %d (%s), router = %d (%s)", sCode, sRaw, rCode, rRaw)
	}
	var sq, rq QueryResponse
	if err := json.Unmarshal(sRaw, &sq); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(rRaw, &rq); err != nil {
		t.Fatal(err)
	}
	if sq.Version.Max != 3 || rq.Version.Max != 3 {
		t.Errorf("post-write version.max: single %d, router %d, want 3", sq.Version.Max, rq.Version.Max)
	}
	if sq.Stats.Worlds != rq.Stats.Worlds {
		t.Errorf("post-write worlds: single %d, router %d", sq.Stats.Worlds, rq.Stats.Worlds)
	}
	sq.Version.Vector, rq.Version.Vector = nil, nil
	sq.Stats, rq.Stats = StatsJSON{}, StatsJSON{}
	se, _ := json.Marshal(sq)
	re, _ := json.Marshal(rq)
	if !bytes.Equal(se, re) {
		t.Errorf("post-write answers diverge (vector and layout diagnostics excluded):\nsingle: %s\nrouter: %s", se, re)
	}

	// Write rejections keep their stable codes through the RPC boundary.
	dup := `{"id": 200, "observations": [{"t": 0, "state": 1}]}`
	code, raw := post(t, rig.router.URL+"/v1/objects", dup)
	if code != http.StatusConflict {
		t.Fatalf("routed duplicate add = %d, want 409 (%s)", code, raw)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != CodeDuplicateObject {
		t.Errorf("routed duplicate code = %q, want %q", env.Error.Code, CodeDuplicateObject)
	}
	code, raw = post(t, rig.router.URL+"/v1/observe", `{"id": 999, "observations": [{"t": 50, "state": 1}]}`)
	if code != http.StatusConflict {
		t.Fatalf("routed unknown observe = %d, want 409 (%s)", code, raw)
	}
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != CodeUnknownObject {
		t.Errorf("routed unknown-object code = %q, want %q", env.Error.Code, CodeUnknownObject)
	}
}

// TestClusterStatusEndpoints checks the /v1/cluster topology answer on
// every role and the /healthz cluster block.
func TestClusterStatusEndpoints(t *testing.T) {
	rig := newClusterRig(t, 2)
	getJSON := func(url string, out any) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", url, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}

	var st cluster.Status
	getJSON(rig.router.URL+"/v1/cluster", &st)
	if st.Role != RoleRouter || st.SampleBudget != 300 || st.VirtualNodes <= 0 {
		t.Errorf("router cluster status = %+v", st)
	}
	if len(st.Vector) != 2 || st.Version != 1 {
		t.Errorf("router cluster vector = %v max %d, want [1 1] 1", st.Vector, st.Version)
	}
	if len(st.Peers) != len(clusterPeerNames) {
		t.Fatalf("peers = %d, want %d", len(st.Peers), len(clusterPeerNames))
	}
	for i, p := range st.Peers {
		if p.Name != clusterPeerNames[i] {
			t.Errorf("peer %d = %q, out of version-vector order %v", i, p.Name, clusterPeerNames)
		}
		if !p.Healthy || p.Role != RolePeer || p.Objects <= 0 || len(p.OwnedRanges) == 0 {
			t.Errorf("peer %s status = %+v", p.Name, p)
		}
	}

	// A standalone node answers the same shape about itself.
	var solo cluster.Status
	getJSON(rig.single.URL+"/v1/cluster", &solo)
	if solo.Role != RoleStandalone || len(solo.Vector) != 2 || solo.Version != 1 || solo.SampleBudget != 300 {
		t.Errorf("standalone cluster status = %+v", solo)
	}
	var peer cluster.Status
	getJSON(rig.peers[clusterPeerNames[0]].URL+"/v1/cluster", &peer)
	if peer.Role != RolePeer || len(peer.Vector) != 1 {
		t.Errorf("peer cluster status = %+v", peer)
	}

	var rh, sh HealthResponse
	getJSON(rig.router.URL+"/healthz", &rh)
	if !rh.Cluster.Enabled || rh.Cluster.Role != RoleRouter ||
		rh.Cluster.Peers != 2 || rh.Cluster.HealthyPeers != 2 {
		t.Errorf("router healthz cluster block = %+v", rh.Cluster)
	}
	getJSON(rig.single.URL+"/healthz", &sh)
	if sh.Cluster.Enabled || sh.Cluster.Role != RoleStandalone {
		t.Errorf("standalone healthz cluster block = %+v", sh.Cluster)
	}
}

// TestClusterSubscription registers a standing query through the
// router and checks its events: the initial answer carries the
// cluster version block, and a routed write that touches the query
// re-evaluates it at the advanced version.
func TestClusterSubscription(t *testing.T) {
	rig := newClusterRig(t, 2)
	center := rig.net.NearestState(pnn.Point{X: 0.5, Y: 0.5})

	code, raw := post(t, rig.router.URL+"/v1/subscribe", fmt.Sprintf(
		`{"semantics": "exists", "query": {"state": %d}, "window": {"ts": 1, "te": 6},
		  "tau": 0.05, "seed": 11, "delivery": {"transport": "poll"}}`, center))
	if code != http.StatusOK {
		t.Fatalf("subscribe through router = %d (%s)", code, raw)
	}
	var sr SubscribeResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatal(err)
	}

	poll := func(wantVersion int64) SubEventJSON {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			resp, err := http.Get(fmt.Sprintf("%s/v1/subscriptions/%d/events?timeout_ms=500", rig.router.URL, sr.SubscriptionID))
			if err != nil {
				t.Fatal(err)
			}
			var ev SubEventsResponse
			err = json.NewDecoder(resp.Body).Decode(&ev)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range ev.Events {
				if e.Event == "answer" && e.Version >= wantVersion {
					return e
				}
			}
		}
		t.Fatalf("no answer event at version >= %d within deadline", wantVersion)
		return SubEventJSON{}
	}

	first := poll(1)
	if first.Response == nil {
		t.Fatal("answer event without embedded response")
	}
	if len(first.Response.Version.Vector) != 2 || first.Response.Version.Max != 1 {
		t.Errorf("initial event version block = %+v, want {[1 1] 1}", first.Response.Version)
	}

	// A routed write at the query center must touch the standing query
	// and re-evaluate it against the advanced snapshot.
	code, raw = post(t, rig.router.URL+"/v1/objects", fmt.Sprintf(
		`{"id": 300, "observations": [{"t": 0, "state": %d}, {"t": 8, "state": %d}]}`, center, center))
	if code != http.StatusOK {
		t.Fatalf("routed write = %d (%s)", code, raw)
	}
	next := poll(2)
	if next.Response == nil {
		t.Fatal("re-evaluation event without embedded response")
	}
	if next.Response.Version.Max != 2 {
		t.Errorf("re-evaluation version.max = %d, want 2", next.Response.Version.Max)
	}
	found := false
	for _, r := range next.Response.Results {
		found = found || r.ObjectID == 300
	}
	if !found {
		t.Errorf("re-evaluated answer misses the written object: %+v", next.Response.Results)
	}
}

// TestScatterGzipNegotiation pins the /internal/scatter transport
// contract: a caller advertising gzip gets a Content-Encoding: gzip
// body measurably smaller than the identity payload, and it inflates
// to the identical JSON bytes; a caller without the header still gets
// plain JSON — the RPC degrades to identity, never errors.
func TestScatterGzipNegotiation(t *testing.T) {
	rig := newClusterRig(t, 1)
	peer := rig.peers[clusterPeerNames[0]]

	var pts bytes.Buffer
	for i := 1; i <= 6; i++ {
		if i > 1 {
			pts.WriteByte(',')
		}
		pts.WriteString(`{"x": 0.5, "y": 0.5}`)
	}
	body := fmt.Sprintf(`{"query": {"start": 1, "points": [%s]}, "ts": 1, "te": 6, "k": 1, "seed": 42}`, pts.String())

	fetch := func(acceptGzip bool) (*http.Response, []byte) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, peer.URL+"/internal/scatter", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if acceptGzip {
			req.Header.Set("Accept-Encoding", "gzip")
		}
		resp, err := http.DefaultTransport.RoundTrip(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("scatter = %d (%s)", resp.StatusCode, raw)
		}
		return resp, raw
	}

	plainResp, plain := fetch(false)
	if enc := plainResp.Header.Get("Content-Encoding"); enc != "" {
		t.Fatalf("identity scatter answered Content-Encoding %q", enc)
	}
	gzResp, compressed := fetch(true)
	if enc := gzResp.Header.Get("Content-Encoding"); enc != "gzip" {
		t.Fatalf("gzip-accepting scatter answered Content-Encoding %q, want gzip", enc)
	}
	// The world-column payload is hundreds of repetitive base64 rows;
	// anything less than a 2x saving means compression is not actually
	// applied to the bulk of the body.
	if len(compressed)*2 >= len(plain) {
		t.Fatalf("gzip scatter body = %d bytes, want < half of identity's %d", len(compressed), len(plain))
	}
	zr, err := gzip.NewReader(bytes.NewReader(compressed))
	if err != nil {
		t.Fatal(err)
	}
	inflated, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	// The two fetches are separate scatters, so the wall-clock adapt_ns
	// figure and the sampler-cache warmth (sampler_builds) may differ;
	// everything else — versions, worlds, the drawn state columns — is
	// deterministic and must match exactly.
	canon := func(raw []byte) cluster.ScatterResponse {
		t.Helper()
		var sr cluster.ScatterResponse
		if err := json.Unmarshal(raw, &sr); err != nil {
			t.Fatal(err)
		}
		sr.AdaptNanos = 0
		sr.SamplerBuilds = 0
		return sr
	}
	want, got := canon(plain), canon(inflated)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("gzip scatter body inflates to a different answer:\nidentity: %+v\ninflated: %+v", want, got)
	}
	if got.Worlds == 0 || len(got.Rows) == 0 {
		t.Fatalf("scatter answer carries no worlds/rows: worlds=%d rows=%d", got.Worlds, len(got.Rows))
	}
}
