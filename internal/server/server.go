// Package server exposes the three probabilistic nearest-neighbor query
// semantics of package pnn over HTTP/JSON, turning the library into a
// standing service: the database is indexed once at startup and a warm
// sampler cache answers a stream of concurrent queries.
//
// Endpoints:
//
//	GET  /healthz      liveness plus snapshot version, object count,
//	                   cache counters and the supported confidence range
//	POST /v1/forallnn  P∀NNQ  (ForAllKNN)
//	POST /v1/existsnn  P∃NNQ  (ExistsKNN)
//	POST /v1/pcnn      PCNNQ  (ContinuousKNN)
//	POST /v1/batch     a slice of independent requests, answered by
//	                   Processor.RunBatchStats on the server's worker
//	                   pool; set "share_worlds" to coalesce compatible
//	                   requests (same reference, window, k and
//	                   confidence) into shared-world groups that sample
//	                   once per group
//	POST /v1/objects   live ingestion: register a new object
//	POST /v1/observe   live ingestion: append observations to an object
//	POST /v1/subscribe register a standing query; "sse" transport streams
//	                   versioned answer events on the same connection,
//	                   "poll" returns a subscription id for long-polling
//	GET  /v1/subscriptions            list registered standing queries
//	GET  /v1/subscriptions/{id}/events long-poll a poll-transport
//	                   subscription's queued events
//	DELETE /v1/subscriptions/{id}     cancel a standing query (its stream
//	                   receives a terminal bye event)
//
// Ingestion is snapshot-versioned (RCU): a write never disturbs
// in-flight queries — they finish on the version they started on — and
// every query issued after the write's response sees it. Both ingest
// endpoints return the published version.
//
// # Request schema
//
// The three query endpoints and every /v1/batch item share one request
// shape, QuerySpec: a query reference, a window, and the knobs.
//
//	{"query": {"state": 17}, "window": {"ts": 5, "te": 15},
//	 "tau": 0.3, "seed": 7,
//	 "confidence": {"eps": 0.05, "delta": 0.05, "max_samples": 20000}}
//
// The reference is exactly one of "state", "point" or "trajectory";
// "confidence" is optional and switches the query from the fixed sample
// budget to adaptive early-stopping sampling. Legacy flat spellings
// (top-level "state", "x"/"y", "trajectory", "ts", "te") keep decoding
// as aliases of the nested fields on the one-shot endpoints, but they
// are deprecated: every response that served an alias carries a
// "Deprecation: true" header and a "warnings" array naming the fields.
// /v1/subscribe accepts only the canonical nested spelling and rejects
// aliases outright with code "use_query_spec".
//
// # Errors
//
// Every error response carries a structured envelope with a stable
// machine-readable code:
//
//	{"error": {"code": "invalid_window", "message": "inverted interval [5, 1]", "field": "window"}}
//
// Malformed requests return 400; writes the database itself rejects —
// duplicate or unknown object IDs, observations the motion model cannot
// realize — return 409 (codes duplicate_object, unknown_object,
// rejected_write) and leave the served snapshot untouched. Query
// responses repeat the query's work statistics plus a "sampling" block
// (samples_drawn, error_bound, early_stopped) so callers can see what
// each answer cost and guarantees.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"pnn"
	"pnn/internal/cluster"
	"pnn/internal/query"
)

// APIVersion tags every query response; it advances only when the wire
// schema changes incompatibly.
const APIVersion = "v1.1"

// Stable machine-readable error codes of the /v1 API. Clients dispatch
// on these, never on message text.
const (
	CodeInvalidBody        = "invalid_body"
	CodeMethodNotAllowed   = "method_not_allowed"
	CodeUnknownSemantics   = "unknown_semantics"
	CodeInvalidQuery       = "invalid_query"
	CodeInvalidWindow      = "invalid_window"
	CodeInvalidK           = "invalid_k"
	CodeInvalidTau         = "invalid_tau"
	CodeInvalidConfidence  = "invalid_confidence"
	CodeInvalidObservation = "invalid_observation"
	CodeEmptyBatch         = "empty_batch"
	CodeBatchTooLarge      = "batch_too_large"
	CodeIngestDisabled     = "ingest_disabled"
	CodeDuplicateObject    = "duplicate_object"
	CodeUnknownObject      = "unknown_object"
	CodeRejectedWrite      = "rejected_write"
	CodeUseQuerySpec       = "use_query_spec"
	CodeInvalidDelivery    = "invalid_delivery"
	CodeUnknownSub         = "unknown_subscription"
	CodeSubLimit           = "subscription_limit"
	CodePeerUnavailable    = "peer_unavailable"
	CodeInternal           = "internal"
)

// Node roles of Config.Role. A peer additionally serves the /internal
// RPC surface a router scatters to; the role is advertised by /healthz
// and /v1/cluster either way.
const (
	RoleStandalone = "standalone"
	RoleRouter     = "router"
	RolePeer       = "peer"
)

// Config tunes a Server. The zero value is usable.
type Config struct {
	// BatchWorkers is the worker-pool size of /v1/batch; 0 picks
	// GOMAXPROCS.
	BatchWorkers int
	// MaxBatch caps the number of requests a single /v1/batch call may
	// carry; 0 means 1024.
	MaxBatch int
	// Ingest enables the write endpoints /v1/objects and /v1/observe.
	// When false they answer 403, making a read-only replica explicit
	// rather than a missing route.
	Ingest bool
	// ShareBatch makes /v1/batch coalesce compatible requests into
	// shared-world groups by default; a request body's "share_worlds"
	// field overrides it either way. See pnn.BatchOptions.ShareWorlds
	// for the semantics and determinism contract.
	ShareBatch bool
	// MaxObservations caps the observations one ingest call may carry;
	// 0 means 4096.
	MaxObservations int
	// MaxSamplesCap caps the confidence.max_samples escalation budget a
	// request may ask for; 0 means 10x the processor's fixed sample
	// budget. /healthz advertises the effective cap.
	MaxSamplesCap int
	// MaxSubscriptions caps the number of concurrently registered
	// standing queries; 0 means 10000. /healthz advertises the cap.
	MaxSubscriptions int
	// LegacyAliases re-enables the pre-v1.1 flat QuerySpec alias fields
	// (top-level state/x/y/trajectory/ts/te) on the one-shot and batch
	// endpoints, decoding them with deprecation warnings as before. By
	// default requests using them are rejected with code
	// "use_query_spec", matching what /v1/subscribe has always done.
	LegacyAliases bool
	// Role names this node's place in a cluster: RoleStandalone (or
	// empty), RoleRouter, or RolePeer. RolePeer additionally registers
	// the /internal RPC surface — only meaningful when the backend is a
	// local *pnn.Processor.
	Role string
}

// Backend is the query/ingest surface the server fronts: either a local
// *pnn.Processor (standalone and peer roles) or a cluster.Coordinator
// scatter-gathering over remote peers (router role). Both satisfy it
// structurally; the HTTP layer never cares which answers.
type Backend interface {
	Run(req pnn.Request) pnn.Response
	RunBatchStats(reqs []pnn.Request, opts pnn.BatchOptions) ([]pnn.Response, pnn.BatchStats)
	AddObject(id int, obs []pnn.Observation) (pnn.Ingest, error)
	Observe(id int, obs ...pnn.Observation) (pnn.Ingest, error)
	Subscribe(req pnn.Request, d pnn.Delivery) (*pnn.Subscription, error)
	Unsubscribe(id int64) bool
	Subscription(id int64) (*pnn.Subscription, bool)
	Subscriptions() []pnn.SubscriptionInfo
	NumSubscriptions() int
	SubscriptionStats() pnn.SubscriptionStats
	CloseSubscriptions()
	SnapshotDetail() (version int64, objects int, shardVersions []int64)
	NumShards() int
	SampleBudget() int
	CacheStats() pnn.CacheStats
}

// clusterBackend is the optional extension a router backend implements.
type clusterBackend interface {
	ClusterStatus() cluster.Status
	HealthyPeers() int
}

// durableBackend is the optional extension a durably-built local
// processor implements; routers and volatile processors report the
// zero (disabled) status.
type durableBackend interface {
	DurabilityStatus() pnn.DurabilityStatus
}

// Server answers PNN queries for one built database. It implements
// http.Handler and is safe for concurrent use (the underlying Processor
// is).
type Server struct {
	proc  Backend
	net   *pnn.Network
	cfg   Config
	mux   *http.ServeMux
	start time.Time
}

// New wraps a backend — a built processor, or a cluster coordinator —
// and its network in an HTTP server.
func New(net *pnn.Network, proc Backend, cfg Config) *Server {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 1024
	}
	if cfg.MaxObservations <= 0 {
		cfg.MaxObservations = 4096
	}
	if cfg.MaxSamplesCap <= 0 {
		cfg.MaxSamplesCap = 10 * proc.SampleBudget()
	}
	if cfg.MaxSubscriptions <= 0 {
		cfg.MaxSubscriptions = 10000
	}
	s := &Server{proc: proc, net: net, cfg: cfg, mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/v1/forallnn", s.queryHandler(pnn.ForAll))
	s.mux.HandleFunc("/v1/existsnn", s.queryHandler(pnn.Exists))
	s.mux.HandleFunc("/v1/pcnn", s.queryHandler(pnn.Continuous))
	s.mux.HandleFunc("/v1/batch", s.handleBatch)
	s.mux.HandleFunc("/v1/objects", s.handleAddObject)
	s.mux.HandleFunc("/v1/observe", s.handleObserve)
	s.mux.HandleFunc("/v1/subscribe", s.handleSubscribe)
	s.mux.HandleFunc("/v1/subscriptions", s.handleSubscriptions)
	s.mux.HandleFunc("/v1/subscriptions/{id}", s.handleSubscription)
	s.mux.HandleFunc("/v1/subscriptions/{id}/events", s.handleSubEvents)
	s.mux.HandleFunc("/v1/cluster", s.handleCluster)
	if cfg.Role == RolePeer {
		if local, ok := proc.(*pnn.Processor); ok {
			s.registerInternal(local)
		}
	}
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Run serves on addr until ctx is cancelled, then drains in-flight
// requests for up to grace before forcing connections closed. It returns
// nil on a clean shutdown.
func (s *Server) Run(ctx context.Context, addr string, grace time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.serve(ctx, ln, grace)
}

// serve runs the accept loop on ln until ctx is cancelled. Shutdown
// closes the subscription registry first: every active SSE stream
// receives its terminal bye frame and returns, so the graceful
// http.Server.Shutdown drain below isn't held open (or force-killed
// mid-frame) by standing streams.
func (s *Server) serve(ctx context.Context, ln net.Listener, grace time.Duration) error {
	hs := &http.Server{Handler: s}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.proc.CloseSubscriptions()
	shCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := hs.Shutdown(shCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// Point is a planar position in request/response JSON.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Trajectory is a moving query reference: Points[i] is the position at
// time Start+i.
type Trajectory struct {
	Start  int     `json:"start"`
	Points []Point `json:"points"`
}

// QueryRef is the query reference of a QuerySpec; exactly one field may
// be set.
type QueryRef struct {
	State      *int        `json:"state,omitempty"`
	Point      *Point      `json:"point,omitempty"`
	Trajectory *Trajectory `json:"trajectory,omitempty"`
}

// Window is the closed query time interval [Ts, Te].
type Window struct {
	Ts int `json:"ts"`
	Te int `json:"te"`
}

// ConfidenceJSON is the adaptive sample-budget policy of a QuerySpec:
// sampling stops as soon as every estimate separates from tau by more
// than the Hoeffding error (or the error reaches eps), escalating up to
// max_samples worlds. Mirrors pnn.Confidence.
type ConfidenceJSON struct {
	Eps        float64 `json:"eps"`
	Delta      float64 `json:"delta,omitempty"`       // 0 means the default (0.05)
	MaxSamples int     `json:"max_samples,omitempty"` // 0 means the fixed budget
}

// QuerySpec is the one request schema of every query endpoint: the JSON
// body of /v1/forallnn, /v1/existsnn and /v1/pcnn, and (tagged with a
// semantics) each item of /v1/batch. The canonical shape nests the
// reference under "query" and the interval under "window"; the legacy
// flat spellings (top-level state/x/y/trajectory/ts/te) decode as
// aliases and mean exactly the same request. When both spellings appear,
// the canonical field wins.
type QuerySpec struct {
	Query      *QueryRef       `json:"query,omitempty"`
	Window     *Window         `json:"window,omitempty"`
	K          int             `json:"k,omitempty"` // 0 means 1
	Tau        float64         `json:"tau"`
	Seed       int64           `json:"seed,omitempty"`
	Confidence *ConfidenceJSON `json:"confidence,omitempty"`

	// Legacy aliases of the nested fields, kept so pre-v1.1 clients stay
	// unbroken.
	State      *int        `json:"state,omitempty"`
	X          *float64    `json:"x,omitempty"`
	Y          *float64    `json:"y,omitempty"`
	Trajectory *Trajectory `json:"trajectory,omitempty"`
	Ts         *int        `json:"ts,omitempty"`
	Te         *int        `json:"te,omitempty"`
}

// ResultJSON is one probabilistic answer.
type ResultJSON struct {
	ObjectID int     `json:"object_id"`
	Prob     float64 `json:"prob"`
}

// IntervalJSON is one PCNN answer: a maximal timestamp set.
type IntervalJSON struct {
	ObjectID int     `json:"object_id"`
	Times    []int   `json:"times"`
	Prob     float64 `json:"prob"`
}

// StatsJSON mirrors pnn.Stats.
type StatsJSON struct {
	Candidates    int `json:"candidates"`
	Influencers   int `json:"influencers"`
	Worlds        int `json:"worlds"`
	SamplerBuilds int `json:"sampler_builds"`
}

// SamplingJSON reports what one answer's Monte-Carlo estimate paid and
// guarantees: the worlds actually drawn, the Hoeffding error bound they
// buy, and whether an adaptive policy stopped before its budget cap.
type SamplingJSON struct {
	SamplesDrawn int     `json:"samples_drawn"`
	ErrorBound   float64 `json:"error_bound"`
	EarlyStopped bool    `json:"early_stopped"`
}

// VersionJSON identifies the snapshot state an answer was computed
// from: the per-shard version vector (in cluster mode, the peers'
// vectors concatenated in configured peer order) and the composite
// maximum, which is layout-independent — 1 at build plus one per
// accepted write, whatever the shard or peer count. Two responses with
// the same vector answered from exactly the same database state; a
// gather is never served across mixed versions (see "peer_unavailable").
type VersionJSON struct {
	Vector []int64 `json:"vector"`
	Max    int64   `json:"max"`
}

// QueryResponse is the body of a successful single-query call and the
// per-item shape of a batch response. Results is set for
// forallnn/existsnn, Intervals for pcnn.
type QueryResponse struct {
	APIVersion string         `json:"api_version"`
	Results    []ResultJSON   `json:"results,omitempty"`
	Intervals  []IntervalJSON `json:"intervals,omitempty"`
	Stats      StatsJSON      `json:"stats"`
	Sampling   SamplingJSON   `json:"sampling"`
	Version    VersionJSON    `json:"version"`
	// Warnings flags deprecated request constructs the server still
	// honored — today, the legacy flat alias fields. Responses carrying
	// warnings also set the "Deprecation: true" header.
	Warnings []string   `json:"warnings,omitempty"`
	Error    *ErrorBody `json:"error,omitempty"` // batch items only
}

// BatchRequest is the body of /v1/batch.
type BatchRequest struct {
	Requests []BatchItem `json:"requests"`
	// ShareWorlds coalesces compatible requests (same query reference
	// over the window, same interval, k and confidence policy) into
	// groups that sample one shared world set; omitted, the server
	// default (Config.ShareBatch) applies. Under sharing, per-request
	// seeds are ignored in favor of SharedSeed — see
	// pnn.BatchOptions.SharedSeed for the group-seed contract.
	ShareWorlds *bool `json:"share_worlds,omitempty"`
	SharedSeed  int64 `json:"shared_seed,omitempty"`
}

// BatchItem is one request of a batch, tagged with its semantics.
type BatchItem struct {
	Semantics string `json:"semantics"` // "forall" | "exists" | "cnn"
	QuerySpec
}

// BatchStatsJSON mirrors pnn.BatchStats: the scheduling-independent
// work accounting of the whole batch. Per-item sampler_builds are
// always 0 in batch responses; this is the authoritative sum.
type BatchStatsJSON struct {
	Requests      int     `json:"requests"`
	SamplerBuilds int     `json:"sampler_builds"`
	AdaptMillis   float64 `json:"adapt_ms"`
	Groups        int     `json:"groups,omitempty"` // shared-world groups executed; 0 unless sharing
}

// BatchResponse aligns with BatchRequest.Requests by index.
type BatchResponse struct {
	APIVersion string          `json:"api_version"`
	Responses  []QueryResponse `json:"responses"`
	BatchStats BatchStatsJSON  `json:"batch_stats"`
	// Version is the snapshot the batch answered from: a single process
	// pins one snapshot for the whole batch, and a router reconciles its
	// gathers to one vector (items that could not be reconciled carry a
	// "peer_unavailable" error instead of an answer). It equals the
	// newest per-item version block.
	Version VersionJSON `json:"version"`
}

// ConfidenceRangeJSON advertises, via /healthz, the adaptive-sampling
// policy space this server accepts.
type ConfidenceRangeJSON struct {
	// EpsMin/EpsMax bound the accepted accuracy knob (exclusive).
	EpsMin float64 `json:"eps_min"`
	EpsMax float64 `json:"eps_max"`
	// DefaultDelta is the confidence level assumed when delta is 0.
	DefaultDelta float64 `json:"default_delta"`
	// DefaultBudget is the fixed per-query world budget (and the
	// adaptive cap when max_samples is 0).
	DefaultBudget int `json:"default_budget"`
	// MaxSamplesCap is the largest max_samples a request may ask for.
	MaxSamplesCap int `json:"max_samples_cap"`
}

// SubCapsJSON advertises, via /healthz, the standing-query capability:
// whether /v1/subscribe is served, how many subscriptions are live, the
// registration cap, the delivery transports the server speaks, and the
// registry's cumulative fanout counters — evaluation passes run,
// invalidation sweeps drained, grouped passes (one evaluation covering
// several compatible subscriptions) and passes that started from a
// reused adaptive world budget.
type SubCapsJSON struct {
	Enabled          bool     `json:"enabled"`
	Active           int      `json:"active"`
	MaxSubscriptions int      `json:"max_subscriptions"`
	Transports       []string `json:"transports"`
	Evaluations      int64    `json:"evaluations"`
	Sweeps           int64    `json:"sweeps"`
	Groups           int64    `json:"groups"`
	ReusedBudget     int64    `json:"reused_budget"`
}

// ClusterHealthJSON advertises, via /healthz, this node's cluster
// capability: its role and, on a router, the peer fan-out and how many
// peers answered their last health probe.
type ClusterHealthJSON struct {
	Enabled      bool   `json:"enabled"`
	Role         string `json:"role"`
	Peers        int    `json:"peers,omitempty"`
	HealthyPeers int    `json:"healthy_peers,omitempty"`
}

// DurabilityJSON advertises, via /healthz, whether (and how) this
// node's writes survive a restart: the mode ("volatile", "wal",
// "wal+fsync"), the newest spill version per shard, and how many log
// bytes a restart right now would replay.
type DurabilityJSON struct {
	Enabled            bool    `json:"enabled"`
	Mode               string  `json:"mode"`
	SpillVersions      []int64 `json:"spill_versions,omitempty"`
	WALBytesSinceSpill int64   `json:"wal_bytes_since_spill,omitempty"`
	ReplayedRecords    int     `json:"replayed_records,omitempty"`
	TornBytes          int64   `json:"torn_bytes,omitempty"`
}

// durabilityHealth builds the /healthz durability block from the
// backend, when it is a durably-built processor.
func (s *Server) durabilityHealth() DurabilityJSON {
	db, ok := s.proc.(durableBackend)
	if !ok {
		return DurabilityJSON{Mode: "volatile"}
	}
	st := db.DurabilityStatus()
	return DurabilityJSON{
		Enabled:            st.Enabled,
		Mode:               st.Mode(),
		SpillVersions:      st.SpillVersions,
		WALBytesSinceSpill: st.WALBytesSinceSpill,
		ReplayedRecords:    st.ReplayedRecords,
		TornBytes:          st.TornBytes,
	}
}

// HealthResponse is the body of /healthz.
type HealthResponse struct {
	Status        string              `json:"status"`
	APIVersion    string              `json:"api_version"`
	Version       int64               `json:"version"` // current composite snapshot version
	Objects       int                 `json:"objects"`
	States        int                 `json:"states"`
	Shards        int                 `json:"shards"`
	ShardVersions []int64             `json:"shard_versions"` // per-shard snapshot versions, by shard
	Ingest        bool                `json:"ingest"`         // write endpoints enabled
	Confidence    ConfidenceRangeJSON `json:"confidence"`
	Subscriptions SubCapsJSON         `json:"subscriptions"`
	Cluster       ClusterHealthJSON   `json:"cluster"`
	Durability    DurabilityJSON      `json:"durability"`
	UptimeSeconds float64             `json:"uptime_seconds"`
	CacheBuilds   int64               `json:"cache_builds"`
	CacheHits     int64               `json:"cache_hits"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "", "use GET")
		return
	}
	cs := s.proc.CacheStats()
	ss := s.proc.SubscriptionStats()
	// One snapshot: version, objects and the shard vector stay mutually
	// consistent even when writes land between here and the encode.
	version, objects, shardVersions := s.proc.SnapshotDetail()
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:        "ok",
		APIVersion:    APIVersion,
		Version:       version,
		Objects:       objects,
		States:        s.net.NumStates(),
		Shards:        s.proc.NumShards(),
		ShardVersions: shardVersions,
		Ingest:        s.cfg.Ingest,
		Confidence: ConfidenceRangeJSON{
			EpsMin:        0,
			EpsMax:        1,
			DefaultDelta:  query.DefaultDelta,
			DefaultBudget: s.proc.SampleBudget(),
			MaxSamplesCap: s.cfg.MaxSamplesCap,
		},
		Subscriptions: SubCapsJSON{
			Enabled:          true,
			Active:           s.proc.NumSubscriptions(),
			MaxSubscriptions: s.cfg.MaxSubscriptions,
			Transports:       []string{TransportSSE, TransportPoll},
			Evaluations:      ss.Evaluations,
			Sweeps:           ss.Sweeps,
			Groups:           ss.Groups,
			ReusedBudget:     ss.ReusedBudget,
		},
		Cluster:       s.clusterHealth(),
		Durability:    s.durabilityHealth(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		CacheBuilds:   cs.Builds,
		CacheHits:     cs.Hits,
	})
}

// ObservationJSON is one certain (time, state) measurement in ingest
// request bodies.
type ObservationJSON struct {
	T     int `json:"t"`
	State int `json:"state"`
}

// IngestRequest is the body of both write endpoints: for /v1/objects a
// new object with its initial observations, for /v1/observe
// observations to append to an existing object.
type IngestRequest struct {
	ID           int               `json:"id"`
	Observations []ObservationJSON `json:"observations"`
}

// IngestResponse reports a successful write: the published snapshot
// version (every query from now on sees the update) and the object
// count at exactly that version — consistent even when writes race.
type IngestResponse struct {
	Version int64 `json:"version"`
	Objects int   `json:"objects"`
}

func (s *Server) handleAddObject(w http.ResponseWriter, r *http.Request) {
	req, obs, ok := s.decodeIngest(w, r)
	if !ok {
		return
	}
	ing, err := s.proc.AddObject(req.ID, obs)
	if err != nil {
		writeErr(w, http.StatusConflict, writeCode(err), "id", err)
		return
	}
	writeJSON(w, http.StatusOK, IngestResponse{Version: ing.Version, Objects: ing.Objects})
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	req, obs, ok := s.decodeIngest(w, r)
	if !ok {
		return
	}
	ing, err := s.proc.Observe(req.ID, obs...)
	if err != nil {
		writeErr(w, http.StatusConflict, writeCode(err), "id", err)
		return
	}
	writeJSON(w, http.StatusOK, IngestResponse{Version: ing.Version, Objects: ing.Objects})
}

// writeCode classifies a write rejection into its stable error code.
func writeCode(err error) string {
	switch {
	case errors.Is(err, pnn.ErrDuplicateID):
		return CodeDuplicateObject
	case errors.Is(err, pnn.ErrUnknownID):
		return CodeUnknownObject
	default:
		// The motion model rejected the observations (contradiction,
		// duplicate timestamp against the stored sequence, ...).
		return CodeRejectedWrite
	}
}

// decodeIngest decodes and validates a write request, answering 400 for
// everything wrong with the request body itself (malformed JSON, no or
// too many observations, out-of-range states, duplicate timestamps
// within the payload). It has already written the error response when
// it returns ok=false; 409 is reserved for writes the database rejects.
func (s *Server) decodeIngest(w http.ResponseWriter, r *http.Request) (IngestRequest, []pnn.Observation, bool) {
	var req IngestRequest
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "", "use POST")
		return req, nil, false
	}
	if !s.cfg.Ingest {
		httpError(w, http.StatusForbidden, CodeIngestDisabled, "",
			"ingestion disabled (start the server with ingest enabled)")
		return req, nil, false
	}
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, CodeInvalidBody, "", err)
		return req, nil, false
	}
	if len(req.Observations) == 0 {
		httpError(w, http.StatusBadRequest, CodeInvalidObservation, "observations",
			"need at least one observation")
		return req, nil, false
	}
	if len(req.Observations) > s.cfg.MaxObservations {
		httpError(w, http.StatusBadRequest, CodeInvalidObservation, "observations",
			fmt.Sprintf("%d observations exceed limit %d", len(req.Observations), s.cfg.MaxObservations))
		return req, nil, false
	}
	obs := make([]pnn.Observation, len(req.Observations))
	times := make(map[int]bool, len(req.Observations))
	for i, ob := range req.Observations {
		if ob.State < 0 || ob.State >= s.net.NumStates() {
			httpError(w, http.StatusBadRequest, CodeInvalidObservation, "observations", fmt.Sprintf(
				"observation %d: state %d out of range [0, %d)", i, ob.State, s.net.NumStates()))
			return req, nil, false
		}
		if times[ob.T] {
			httpError(w, http.StatusBadRequest, CodeInvalidObservation, "observations", fmt.Sprintf(
				"observation %d: duplicate timestamp %d within the request", i, ob.T))
			return req, nil, false
		}
		times[ob.T] = true
		obs[i] = pnn.Observation{T: ob.T, State: ob.State}
	}
	return req, obs, true
}

func (s *Server) queryHandler(sem pnn.Semantics) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "", "use POST")
			return
		}
		var req QuerySpec
		if err := decodeBody(r, &req); err != nil {
			writeErr(w, http.StatusBadRequest, CodeInvalidBody, "", err)
			return
		}
		pr, warnings, aerr := s.toRequest(sem, req)
		if aerr != nil {
			httpError(w, http.StatusBadRequest, aerr.code, aerr.field, aerr.msg)
			return
		}
		resp := s.proc.Run(pr)
		if resp.Err != nil {
			// toRequest already rejected every caller mistake the engine
			// would complain about (inverted intervals, tau and k out of
			// range), so an error here is either a gather that could not
			// complete consistently (503, retryable) or the engine's own —
			// e.g. model adaptation failing on an object.
			status, code := respErrStatus(resp.Err)
			writeErr(w, status, code, "", resp.Err)
			return
		}
		out := toJSON(resp)
		out.Warnings = warnings
		if len(warnings) > 0 {
			w.Header().Set("Deprecation", "true")
		}
		writeJSON(w, http.StatusOK, out)
	}
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "", "use POST")
		return
	}
	var req BatchRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, CodeInvalidBody, "", err)
		return
	}
	if len(req.Requests) == 0 {
		httpError(w, http.StatusBadRequest, CodeEmptyBatch, "requests", "empty batch")
		return
	}
	if len(req.Requests) > s.cfg.MaxBatch {
		httpError(w, http.StatusBadRequest, CodeBatchTooLarge, "requests",
			fmt.Sprintf("batch of %d exceeds limit %d", len(req.Requests), s.cfg.MaxBatch))
		return
	}
	reqs := make([]pnn.Request, len(req.Requests))
	warnings := make([][]string, len(req.Requests))
	deprecated := false
	for i, item := range req.Requests {
		pr, warns, aerr := s.toRequest(pnn.Semantics(item.Semantics), item.QuerySpec)
		if aerr != nil {
			field := fmt.Sprintf("requests[%d]", i)
			if aerr.field != "" {
				field += "." + aerr.field
			}
			httpError(w, http.StatusBadRequest, aerr.code, field, aerr.msg)
			return
		}
		reqs[i] = pr
		warnings[i] = warns
		deprecated = deprecated || len(warns) > 0
	}
	share := s.cfg.ShareBatch
	if req.ShareWorlds != nil {
		share = *req.ShareWorlds
	}
	responses, bst := s.proc.RunBatchStats(reqs, pnn.BatchOptions{
		Workers:     s.cfg.BatchWorkers,
		ShareWorlds: share,
		SharedSeed:  req.SharedSeed,
	})
	out := BatchResponse{
		APIVersion: APIVersion,
		Responses:  make([]QueryResponse, len(responses)),
		BatchStats: BatchStatsJSON{
			Requests:      bst.Requests,
			SamplerBuilds: bst.SamplerBuilds,
			AdaptMillis:   float64(bst.AdaptTime.Microseconds()) / 1e3,
			Groups:        bst.Groups,
		},
	}
	for i, resp := range responses {
		out.Responses[i] = toJSON(resp)
		out.Responses[i].Warnings = warnings[i]
		if resp.Version.Max >= out.Version.Max {
			out.Version = VersionJSON{Vector: resp.Version.Vector, Max: resp.Version.Max}
		}
	}
	if deprecated {
		w.Header().Set("Deprecation", "true")
	}
	writeJSON(w, http.StatusOK, out)
}

// apiError is a request-validation failure with its stable code and the
// offending field path.
type apiError struct {
	code, field, msg string
}

func errf(code, field, format string, args ...interface{}) *apiError {
	return &apiError{code: code, field: field, msg: fmt.Sprintf(format, args...)}
}

// legacyAliases names the deprecated flat alias fields a QuerySpec set,
// each paired with its canonical replacement — the source of both the
// one-shot deprecation warnings and the /v1/subscribe rejection.
func legacyAliases(req QuerySpec) []string {
	var used []string
	add := func(set bool, alias, canonical string) {
		if set {
			used = append(used, fmt.Sprintf("%q is a deprecated alias; use %q", alias, canonical))
		}
	}
	add(req.State != nil, "state", "query.state")
	add(req.X != nil, "x", "query.point.x")
	add(req.Y != nil, "y", "query.point.y")
	add(req.Trajectory != nil, "trajectory", "query.trajectory")
	add(req.Ts != nil, "ts", "window.ts")
	add(req.Te != nil, "te", "window.te")
	return used
}

// toRequest validates one wire request and converts it to a batch
// Request, resolving the legacy alias spellings against the canonical
// nested fields (canonical wins where both are set). The returned
// warnings name every deprecated alias the request used.
func (s *Server) toRequest(sem pnn.Semantics, req QuerySpec) (pnn.Request, []string, *apiError) {
	warnings := legacyAliases(req)
	if len(warnings) > 0 && !s.cfg.LegacyAliases {
		// Sunset: the flat alias spellings are rejected everywhere now,
		// exactly like /v1/subscribe always has; the opt-in flag restores
		// the old decode-with-warning behavior for stragglers.
		return pnn.Request{}, nil, errf(CodeUseQuerySpec, "",
			"legacy flat query fields are no longer accepted (%s); use the nested query/window spelling, "+
				"or start the server with -legacy-aliases during migration", warnings[0])
	}
	switch sem {
	case pnn.ForAll, pnn.Exists, pnn.Continuous:
	default:
		return pnn.Request{}, nil, errf(CodeUnknownSemantics, "semantics",
			"unknown semantics %q (want %q, %q or %q)", sem, pnn.ForAll, pnn.Exists, pnn.Continuous)
	}

	// Fold the legacy flat reference into the canonical nested one.
	ref := QueryRef{}
	if req.Query != nil {
		ref = *req.Query
	}
	if ref.State == nil && ref.Point == nil && ref.Trajectory == nil {
		ref.State = req.State
		ref.Trajectory = req.Trajectory
		if req.X != nil || req.Y != nil {
			if req.X == nil || req.Y == nil {
				return pnn.Request{}, nil, errf(CodeInvalidQuery, "query", "x and y must be given together")
			}
			ref.Point = &Point{X: *req.X, Y: *req.Y}
		}
	}
	refs := 0
	if ref.State != nil {
		refs++
	}
	if ref.Point != nil {
		refs++
	}
	if ref.Trajectory != nil {
		refs++
	}
	if refs != 1 {
		return pnn.Request{}, nil, errf(CodeInvalidQuery, "query",
			`give exactly one query reference: "state", "point", or "trajectory"`)
	}
	var q pnn.Query
	switch {
	case ref.State != nil:
		if *ref.State < 0 || *ref.State >= s.net.NumStates() {
			return pnn.Request{}, nil, errf(CodeInvalidQuery, "query.state",
				"state %d out of range [0, %d)", *ref.State, s.net.NumStates())
		}
		q = pnn.AtState(s.net, *ref.State)
	case ref.Point != nil:
		q = pnn.AtPoint(pnn.Point{X: ref.Point.X, Y: ref.Point.Y})
	default:
		if len(ref.Trajectory.Points) == 0 {
			return pnn.Request{}, nil, errf(CodeInvalidQuery, "query.trajectory", "trajectory needs at least one point")
		}
		pts := make([]pnn.Point, len(ref.Trajectory.Points))
		for i, p := range ref.Trajectory.Points {
			pts[i] = pnn.Point{X: p.X, Y: p.Y}
		}
		q = pnn.Moving(ref.Trajectory.Start, pts)
	}

	// Fold the legacy flat interval into the canonical window.
	win := Window{}
	switch {
	case req.Window != nil:
		win = *req.Window
	case req.Ts != nil || req.Te != nil:
		if req.Ts != nil {
			win.Ts = *req.Ts
		}
		if req.Te != nil {
			win.Te = *req.Te
		}
	}
	if win.Te < win.Ts {
		return pnn.Request{}, nil, errf(CodeInvalidWindow, "window", "inverted interval [%d, %d]", win.Ts, win.Te)
	}
	if req.K < 0 {
		return pnn.Request{}, nil, errf(CodeInvalidK, "k", "k must be >= 1, got %d", req.K)
	}
	if req.Tau < 0 || req.Tau > 1 {
		return pnn.Request{}, nil, errf(CodeInvalidTau, "tau", "tau must be in [0, 1], got %v", req.Tau)
	}
	if sem == pnn.Continuous && req.Tau == 0 {
		return pnn.Request{}, nil, errf(CodeInvalidTau, "tau", "pcnn requires tau > 0")
	}
	var conf pnn.Confidence
	if req.Confidence != nil {
		conf = pnn.Confidence{
			Eps:        req.Confidence.Eps,
			Delta:      req.Confidence.Delta,
			MaxSamples: req.Confidence.MaxSamples,
		}
		if err := conf.Validate(); err != nil {
			return pnn.Request{}, nil, errf(CodeInvalidConfidence, "confidence", "%v", err)
		}
		if conf.MaxSamples > s.cfg.MaxSamplesCap {
			return pnn.Request{}, nil, errf(CodeInvalidConfidence, "confidence.max_samples",
				"max_samples %d exceeds the server cap %d", conf.MaxSamples, s.cfg.MaxSamplesCap)
		}
	}
	return pnn.Request{
		Semantics:  sem,
		Query:      q,
		Ts:         win.Ts,
		Te:         win.Te,
		K:          req.K,
		Tau:        req.Tau,
		Seed:       req.Seed,
		Confidence: conf,
	}, warnings, nil
}

// respErrStatus classifies a backend response error into its HTTP
// status and stable code: an inconsistent or failed cluster gather is
// 503 peer_unavailable (the request is safe to retry — no partial
// answer was served), anything else is the engine's own failure.
func respErrStatus(err error) (int, string) {
	if errors.Is(err, cluster.ErrPeerUnavailable) {
		return http.StatusServiceUnavailable, CodePeerUnavailable
	}
	return http.StatusInternalServerError, CodeInternal
}

func toJSON(resp pnn.Response) QueryResponse {
	out := QueryResponse{
		APIVersion: APIVersion,
		Stats: StatsJSON{
			Candidates:    resp.Stats.Candidates,
			Influencers:   resp.Stats.Influencers,
			Worlds:        resp.Stats.Worlds,
			SamplerBuilds: resp.Stats.SamplerBuilds,
		},
		Sampling: SamplingJSON{
			SamplesDrawn: resp.Stats.Worlds,
			ErrorBound:   resp.Stats.ErrorBound,
			EarlyStopped: resp.Stats.EarlyStopped,
		},
		Version: VersionJSON{Vector: resp.Version.Vector, Max: resp.Version.Max},
	}
	if resp.Err != nil {
		_, code := respErrStatus(resp.Err)
		out.Error = &ErrorBody{Code: code, Message: resp.Err.Error()}
		return out
	}
	for _, r := range resp.Results {
		out.Results = append(out.Results, ResultJSON{ObjectID: r.ObjectID, Prob: r.Prob})
	}
	for _, r := range resp.Intervals {
		out.Intervals = append(out.Intervals, IntervalJSON{ObjectID: r.ObjectID, Times: r.Times, Prob: r.Prob})
	}
	return out
}

func decodeBody(r *http.Request, dst interface{}) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	return nil
}

// ErrorBody is the payload of the structured error envelope: a stable
// machine-readable code, a human-readable message, and (when the error
// is attributable) the offending request field.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Field   string `json:"field,omitempty"`
}

// ErrorEnvelope is the body of every error response.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

func httpError(w http.ResponseWriter, status int, code, field, msg string) {
	writeJSON(w, status, ErrorEnvelope{Error: ErrorBody{Code: code, Message: msg, Field: field}})
}

func writeErr(w http.ResponseWriter, status int, code, field string, err error) {
	httpError(w, status, code, field, err.Error())
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
