// Package server exposes the three probabilistic nearest-neighbor query
// semantics of package pnn over HTTP/JSON, turning the library into a
// standing service: the database is indexed once at startup and a warm
// sampler cache answers a stream of concurrent queries.
//
// Endpoints:
//
//	GET  /healthz      liveness plus snapshot version, object count and
//	                   cache counters
//	POST /v1/forallnn  P∀NNQ  (ForAllKNN)
//	POST /v1/existsnn  P∃NNQ  (ExistsKNN)
//	POST /v1/pcnn      PCNNQ  (ContinuousKNN)
//	POST /v1/batch     a slice of independent requests, answered by
//	                   Processor.RunBatchStats on the server's worker
//	                   pool; set "share_worlds" to coalesce compatible
//	                   requests (same reference, window and k) into
//	                   shared-world groups that sample once per group
//	POST /v1/objects   live ingestion: register a new object
//	POST /v1/observe   live ingestion: append observations to an object
//
// Ingestion is snapshot-versioned (RCU): a write never disturbs
// in-flight queries — they finish on the version they started on — and
// every query issued after the write's response sees it. Both ingest
// endpoints return the published version.
//
// Every query request carries exactly one reference — "state", "x"/"y",
// or "trajectory" — plus the interval, threshold and seed:
//
//	{"state": 17, "ts": 5, "te": 15, "tau": 0.3, "seed": 7}
//
// Malformed requests return 400 with {"error": "..."}; internal failures
// return 500. Writes the database itself rejects — duplicate or unknown
// object IDs, observations the motion model cannot realize — return 409
// and leave the served snapshot untouched. Responses repeat the query's
// work statistics so callers can observe filter quality and cache warmth
// per request.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"pnn"
)

// Config tunes a Server. The zero value is usable.
type Config struct {
	// BatchWorkers is the worker-pool size of /v1/batch; 0 picks
	// GOMAXPROCS.
	BatchWorkers int
	// MaxBatch caps the number of requests a single /v1/batch call may
	// carry; 0 means 1024.
	MaxBatch int
	// Ingest enables the write endpoints /v1/objects and /v1/observe.
	// When false they answer 403, making a read-only replica explicit
	// rather than a missing route.
	Ingest bool
	// ShareBatch makes /v1/batch coalesce compatible requests into
	// shared-world groups by default; a request body's "share_worlds"
	// field overrides it either way. See pnn.BatchOptions.ShareWorlds
	// for the semantics and determinism contract.
	ShareBatch bool
	// MaxObservations caps the observations one ingest call may carry;
	// 0 means 4096.
	MaxObservations int
}

// Server answers PNN queries for one built database. It implements
// http.Handler and is safe for concurrent use (the underlying Processor
// is).
type Server struct {
	proc  *pnn.Processor
	net   *pnn.Network
	cfg   Config
	mux   *http.ServeMux
	start time.Time
}

// New wraps a built processor and its network in an HTTP server.
func New(net *pnn.Network, proc *pnn.Processor, cfg Config) *Server {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 1024
	}
	if cfg.MaxObservations <= 0 {
		cfg.MaxObservations = 4096
	}
	s := &Server{proc: proc, net: net, cfg: cfg, mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/v1/forallnn", s.queryHandler(pnn.ForAll))
	s.mux.HandleFunc("/v1/existsnn", s.queryHandler(pnn.Exists))
	s.mux.HandleFunc("/v1/pcnn", s.queryHandler(pnn.Continuous))
	s.mux.HandleFunc("/v1/batch", s.handleBatch)
	s.mux.HandleFunc("/v1/objects", s.handleAddObject)
	s.mux.HandleFunc("/v1/observe", s.handleObserve)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Run serves on addr until ctx is cancelled, then drains in-flight
// requests for up to grace before forcing connections closed. It returns
// nil on a clean shutdown.
func (s *Server) Run(ctx context.Context, addr string, grace time.Duration) error {
	hs := &http.Server{Addr: addr, Handler: s}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := hs.Shutdown(shCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// Point is a planar position in request/response JSON.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Trajectory is a moving query reference: Points[i] is the position at
// time Start+i.
type Trajectory struct {
	Start  int     `json:"start"`
	Points []Point `json:"points"`
}

// QueryRequest is the JSON body of the three single-query endpoints and
// the per-item body of /v1/batch. Exactly one of State, X/Y, or
// Trajectory must be set.
type QueryRequest struct {
	State      *int        `json:"state,omitempty"`
	X          *float64    `json:"x,omitempty"`
	Y          *float64    `json:"y,omitempty"`
	Trajectory *Trajectory `json:"trajectory,omitempty"`

	Ts   int     `json:"ts"`
	Te   int     `json:"te"`
	K    int     `json:"k,omitempty"` // 0 means 1
	Tau  float64 `json:"tau"`
	Seed int64   `json:"seed,omitempty"`
}

// ResultJSON is one probabilistic answer.
type ResultJSON struct {
	ObjectID int     `json:"object_id"`
	Prob     float64 `json:"prob"`
}

// IntervalJSON is one PCNN answer: a maximal timestamp set.
type IntervalJSON struct {
	ObjectID int     `json:"object_id"`
	Times    []int   `json:"times"`
	Prob     float64 `json:"prob"`
}

// StatsJSON mirrors pnn.Stats.
type StatsJSON struct {
	Candidates    int `json:"candidates"`
	Influencers   int `json:"influencers"`
	Worlds        int `json:"worlds"`
	SamplerBuilds int `json:"sampler_builds"`
}

// QueryResponse is the body of a successful single-query call. Results is
// set for forallnn/existsnn, Intervals for pcnn.
type QueryResponse struct {
	Results   []ResultJSON   `json:"results,omitempty"`
	Intervals []IntervalJSON `json:"intervals,omitempty"`
	Stats     StatsJSON      `json:"stats"`
	Error     string         `json:"error,omitempty"` // batch items only
}

// BatchRequest is the body of /v1/batch.
type BatchRequest struct {
	Requests []BatchItem `json:"requests"`
	// ShareWorlds coalesces compatible requests (same query reference
	// over the window, same interval and k) into groups that sample
	// one shared world set; omitted, the server default
	// (Config.ShareBatch) applies. Under sharing, per-request seeds
	// are ignored in favor of SharedSeed — see
	// pnn.BatchOptions.SharedSeed for the group-seed contract.
	ShareWorlds *bool `json:"share_worlds,omitempty"`
	SharedSeed  int64 `json:"shared_seed,omitempty"`
}

// BatchItem is one request of a batch, tagged with its semantics.
type BatchItem struct {
	Semantics string `json:"semantics"` // "forall" | "exists" | "cnn"
	QueryRequest
}

// BatchStatsJSON mirrors pnn.BatchStats: the scheduling-independent
// work accounting of the whole batch. Per-item sampler_builds are
// always 0 in batch responses; this is the authoritative sum.
type BatchStatsJSON struct {
	Requests      int     `json:"requests"`
	SamplerBuilds int     `json:"sampler_builds"`
	AdaptMillis   float64 `json:"adapt_ms"`
	Groups        int     `json:"groups,omitempty"` // shared-world groups executed; 0 unless sharing
}

// BatchResponse aligns with BatchRequest.Requests by index.
type BatchResponse struct {
	Responses  []QueryResponse `json:"responses"`
	BatchStats BatchStatsJSON  `json:"batch_stats"`
}

// HealthResponse is the body of /healthz.
type HealthResponse struct {
	Status        string  `json:"status"`
	Version       int64   `json:"version"` // current composite snapshot version
	Objects       int     `json:"objects"`
	States        int     `json:"states"`
	Shards        int     `json:"shards"`
	ShardVersions []int64 `json:"shard_versions"` // per-shard snapshot versions, by shard
	Ingest        bool    `json:"ingest"`         // write endpoints enabled
	UptimeSeconds float64 `json:"uptime_seconds"`
	CacheBuilds   int64   `json:"cache_builds"`
	CacheHits     int64   `json:"cache_hits"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	cs := s.proc.CacheStats()
	// One snapshot: version, objects and the shard vector stay mutually
	// consistent even when writes land between here and the encode.
	version, objects, shardVersions := s.proc.SnapshotDetail()
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:        "ok",
		Version:       version,
		Objects:       objects,
		States:        s.net.NumStates(),
		Shards:        s.proc.NumShards(),
		ShardVersions: shardVersions,
		Ingest:        s.cfg.Ingest,
		UptimeSeconds: time.Since(s.start).Seconds(),
		CacheBuilds:   cs.Builds,
		CacheHits:     cs.Hits,
	})
}

// ObservationJSON is one certain (time, state) measurement in ingest
// request bodies.
type ObservationJSON struct {
	T     int `json:"t"`
	State int `json:"state"`
}

// IngestRequest is the body of both write endpoints: for /v1/objects a
// new object with its initial observations, for /v1/observe
// observations to append to an existing object.
type IngestRequest struct {
	ID           int               `json:"id"`
	Observations []ObservationJSON `json:"observations"`
}

// IngestResponse reports a successful write: the published snapshot
// version (every query from now on sees the update) and the object
// count at exactly that version — consistent even when writes race.
type IngestResponse struct {
	Version int64 `json:"version"`
	Objects int   `json:"objects"`
}

func (s *Server) handleAddObject(w http.ResponseWriter, r *http.Request) {
	req, obs, ok := s.decodeIngest(w, r)
	if !ok {
		return
	}
	ing, err := s.proc.AddObject(req.ID, obs)
	if err != nil {
		httpError(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, IngestResponse{Version: ing.Version, Objects: ing.Objects})
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	req, obs, ok := s.decodeIngest(w, r)
	if !ok {
		return
	}
	ing, err := s.proc.Observe(req.ID, obs...)
	if err != nil {
		httpError(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, IngestResponse{Version: ing.Version, Objects: ing.Objects})
}

// decodeIngest decodes and validates a write request, answering 400 for
// everything wrong with the request body itself (malformed JSON, no or
// too many observations, out-of-range states, duplicate timestamps
// within the payload). It has already written the error response when
// it returns ok=false; 409 is reserved for writes the database rejects.
func (s *Server) decodeIngest(w http.ResponseWriter, r *http.Request) (IngestRequest, []pnn.Observation, bool) {
	var req IngestRequest
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return req, nil, false
	}
	if !s.cfg.Ingest {
		httpError(w, http.StatusForbidden, "ingestion disabled (start the server with ingest enabled)")
		return req, nil, false
	}
	if err := decodeBody(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return req, nil, false
	}
	if len(req.Observations) == 0 {
		httpError(w, http.StatusBadRequest, "need at least one observation")
		return req, nil, false
	}
	if len(req.Observations) > s.cfg.MaxObservations {
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("%d observations exceed limit %d", len(req.Observations), s.cfg.MaxObservations))
		return req, nil, false
	}
	obs := make([]pnn.Observation, len(req.Observations))
	times := make(map[int]bool, len(req.Observations))
	for i, ob := range req.Observations {
		if ob.State < 0 || ob.State >= s.net.NumStates() {
			httpError(w, http.StatusBadRequest, fmt.Sprintf(
				"observation %d: state %d out of range [0, %d)", i, ob.State, s.net.NumStates()))
			return req, nil, false
		}
		if times[ob.T] {
			httpError(w, http.StatusBadRequest, fmt.Sprintf(
				"observation %d: duplicate timestamp %d within the request", i, ob.T))
			return req, nil, false
		}
		times[ob.T] = true
		obs[i] = pnn.Observation{T: ob.T, State: ob.State}
	}
	return req, obs, true
}

func (s *Server) queryHandler(sem pnn.Semantics) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "use POST")
			return
		}
		var req QueryRequest
		if err := decodeBody(r, &req); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		pr, err := s.toRequest(sem, req)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		resps, bst := s.proc.RunBatchStats([]pnn.Request{pr}, pnn.BatchOptions{Workers: 1})
		resp := resps[0]
		// Single-query responses keep per-request build accounting on
		// the wire: with one request the batch-level sum is exactly
		// this query's builds.
		resp.Stats.SamplerBuilds = bst.SamplerBuilds
		if resp.Err != nil {
			// toRequest already rejected every caller mistake the engine
			// would complain about (inverted intervals, tau and k out of
			// range), so an error here is the engine's own — e.g. model
			// adaptation failing on an object.
			httpError(w, http.StatusInternalServerError, resp.Err.Error())
			return
		}
		writeJSON(w, http.StatusOK, toJSON(resp))
	}
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req BatchRequest
	if err := decodeBody(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(req.Requests) == 0 {
		httpError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Requests) > s.cfg.MaxBatch {
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d exceeds limit %d", len(req.Requests), s.cfg.MaxBatch))
		return
	}
	reqs := make([]pnn.Request, len(req.Requests))
	for i, item := range req.Requests {
		pr, err := s.toRequest(pnn.Semantics(item.Semantics), item.QueryRequest)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("request %d: %v", i, err))
			return
		}
		reqs[i] = pr
	}
	share := s.cfg.ShareBatch
	if req.ShareWorlds != nil {
		share = *req.ShareWorlds
	}
	responses, bst := s.proc.RunBatchStats(reqs, pnn.BatchOptions{
		Workers:     s.cfg.BatchWorkers,
		ShareWorlds: share,
		SharedSeed:  req.SharedSeed,
	})
	out := BatchResponse{
		Responses: make([]QueryResponse, len(responses)),
		BatchStats: BatchStatsJSON{
			Requests:      bst.Requests,
			SamplerBuilds: bst.SamplerBuilds,
			AdaptMillis:   float64(bst.AdaptTime.Microseconds()) / 1e3,
			Groups:        bst.Groups,
		},
	}
	for i, resp := range responses {
		out.Responses[i] = toJSON(resp)
	}
	writeJSON(w, http.StatusOK, out)
}

// toRequest validates one wire request and converts it to a batch Request.
func (s *Server) toRequest(sem pnn.Semantics, req QueryRequest) (pnn.Request, error) {
	switch sem {
	case pnn.ForAll, pnn.Exists, pnn.Continuous:
	default:
		return pnn.Request{}, fmt.Errorf("unknown semantics %q (want %q, %q or %q)",
			sem, pnn.ForAll, pnn.Exists, pnn.Continuous)
	}
	refs := 0
	if req.State != nil {
		refs++
	}
	if req.X != nil || req.Y != nil {
		if req.X == nil || req.Y == nil {
			return pnn.Request{}, errors.New("x and y must be given together")
		}
		refs++
	}
	if req.Trajectory != nil {
		refs++
	}
	if refs != 1 {
		return pnn.Request{}, errors.New(`give exactly one query reference: "state", "x"/"y", or "trajectory"`)
	}
	var q pnn.Query
	switch {
	case req.State != nil:
		if *req.State < 0 || *req.State >= s.net.NumStates() {
			return pnn.Request{}, fmt.Errorf("state %d out of range [0, %d)", *req.State, s.net.NumStates())
		}
		q = pnn.AtState(s.net, *req.State)
	case req.X != nil:
		q = pnn.AtPoint(pnn.Point{X: *req.X, Y: *req.Y})
	default:
		if len(req.Trajectory.Points) == 0 {
			return pnn.Request{}, errors.New("trajectory needs at least one point")
		}
		pts := make([]pnn.Point, len(req.Trajectory.Points))
		for i, p := range req.Trajectory.Points {
			pts[i] = pnn.Point{X: p.X, Y: p.Y}
		}
		q = pnn.Moving(req.Trajectory.Start, pts)
	}
	if req.Te < req.Ts {
		return pnn.Request{}, fmt.Errorf("inverted interval [%d, %d]", req.Ts, req.Te)
	}
	if req.K < 0 {
		return pnn.Request{}, fmt.Errorf("k must be >= 1, got %d", req.K)
	}
	if req.Tau < 0 || req.Tau > 1 {
		return pnn.Request{}, fmt.Errorf("tau must be in [0, 1], got %v", req.Tau)
	}
	if sem == pnn.Continuous && req.Tau == 0 {
		return pnn.Request{}, errors.New("pcnn requires tau > 0")
	}
	return pnn.Request{
		Semantics: sem,
		Query:     q,
		Ts:        req.Ts,
		Te:        req.Te,
		K:         req.K,
		Tau:       req.Tau,
		Seed:      req.Seed,
	}, nil
}

func toJSON(resp pnn.Response) QueryResponse {
	out := QueryResponse{
		Stats: StatsJSON{
			Candidates:    resp.Stats.Candidates,
			Influencers:   resp.Stats.Influencers,
			Worlds:        resp.Stats.Worlds,
			SamplerBuilds: resp.Stats.SamplerBuilds,
		},
	}
	if resp.Err != nil {
		out.Error = resp.Err.Error()
		return out
	}
	for _, r := range resp.Results {
		out.Results = append(out.Results, ResultJSON{ObjectID: r.ObjectID, Prob: r.Prob})
	}
	for _, r := range resp.Intervals {
		out.Intervals = append(out.Intervals, IntervalJSON{ObjectID: r.ObjectID, Times: r.Times, Prob: r.Prob})
	}
	return out
}

func decodeBody(r *http.Request, dst interface{}) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	return nil
}

type errorJSON struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorJSON{Error: msg})
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
