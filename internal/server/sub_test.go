package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pnn"
)

// readFrame parses the next SSE frame ("id:"/"event:"/"data:" lines up
// to a blank line) off a subscription stream.
func readFrame(t *testing.T, br *bufio.Reader) (string, SubEventJSON) {
	t.Helper()
	var event, data string
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading SSE frame: %v", err)
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			if event == "" && data == "" {
				continue
			}
			var e SubEventJSON
			if err := json.Unmarshal([]byte(data), &e); err != nil {
				t.Fatalf("bad SSE data %q: %v", data, err)
			}
			return event, e
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		}
	}
}

// TestSubscribeSSERoundTrip drives the SSE transport end-to-end:
// subscribe, receive the initial answer (byte-identical to the one-shot
// endpoint), ingest an object inside the influence region, receive the
// re-evaluation at the advanced version, DELETE the subscription and
// receive the terminal bye frame.
func TestSubscribeSSERoundTrip(t *testing.T) {
	net2, proc, ts := testServer(t)
	center := net2.NearestState(pnn.Point{X: 0.5, Y: 0.5})

	spec := fmt.Sprintf(`{"semantics": "exists", "query": {"state": %d},
		"window": {"ts": 1, "te": 6}, "tau": 0.05, "seed": 42}`, center)
	resp, err := http.Post(ts.URL+"/v1/subscribe", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	br := bufio.NewReader(resp.Body)

	event, e0 := readFrame(t, br)
	if event != "answer" || e0.Event != "answer" || e0.Response == nil {
		t.Fatalf("initial frame = %q %+v", event, e0)
	}
	if e0.Seq != 1 {
		t.Errorf("initial seq = %d, want 1", e0.Seq)
	}

	// The event must match the one-shot endpoint bit for bit — same
	// spec, same seed, same snapshot version.
	oneShot := fmt.Sprintf(`{"query": {"state": %d}, "window": {"ts": 1, "te": 6}, "tau": 0.05, "seed": 42}`, center)
	code, raw := post(t, ts.URL+"/v1/existsnn", oneShot)
	if code != http.StatusOK {
		t.Fatalf("one-shot status %d: %s", code, raw)
	}
	var want QueryResponse
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	// sampler_builds counts cache warm-up, not answer content: the
	// subscription's initial evaluation built the samplers the later
	// one-shot then found hot.
	got := *e0.Response
	got.Stats.SamplerBuilds, want.Stats.SamplerBuilds = 0, 0
	gb, _ := json.Marshal(got)
	wb, _ := json.Marshal(want)
	if string(gb) != string(wb) {
		t.Errorf("subscription answer diverged from one-shot:\nevent    %s\none-shot %s", gb, wb)
	}

	// An object parked mid-window at the query state is inside the
	// influence region: the standing query re-evaluates at the new
	// version.
	code, raw = post(t, ts.URL+"/v1/objects", fmt.Sprintf(
		`{"id": 900, "observations": [{"t": 3, "state": %d}]}`, center))
	if code != http.StatusOK {
		t.Fatalf("ingest status %d: %s", code, raw)
	}
	event, e1 := readFrame(t, br)
	if event != "answer" || e1.Response == nil {
		t.Fatalf("post-ingest frame = %q %+v", event, e1)
	}
	if e1.Version != e0.Version+1 {
		t.Errorf("re-evaluation version %d after %d, want +1", e1.Version, e0.Version)
	}
	if e1.Seq <= e0.Seq {
		t.Errorf("seq not monotone: %d after %d", e1.Seq, e0.Seq)
	}

	// Cancelling over the API lands the terminal bye on the stream.
	req, _ := http.NewRequest(http.MethodDelete,
		fmt.Sprintf("%s/v1/subscriptions/%d", ts.URL, e0.SubID), nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", dresp.StatusCode)
	}
	event, bye := readFrame(t, br)
	if event != "bye" || bye.Event != "bye" {
		t.Fatalf("terminal frame = %q %+v", event, bye)
	}
	if bye.Response != nil {
		t.Errorf("bye frame carries a response: %+v", bye.Response)
	}
	if _, err := br.ReadByte(); err == nil {
		t.Error("stream still open after bye")
	}
	if proc.NumSubscriptions() != 0 {
		t.Errorf("%d subscriptions left registered", proc.NumSubscriptions())
	}
}

// TestSubscribeRejectsLegacyAliases pins the canonical-only contract of
// the new surface: flat alias spellings that one-shot endpoints still
// serve (with a warning) are a hard 400 here.
func TestSubscribeRejectsLegacyAliases(t *testing.T) {
	net2, _, ts := testServer(t)
	center := net2.NearestState(pnn.Point{X: 0.5, Y: 0.5})
	for _, body := range []string{
		fmt.Sprintf(`{"semantics": "exists", "state": %d, "window": {"ts": 1, "te": 6}, "tau": 0.05}`, center),
		fmt.Sprintf(`{"semantics": "exists", "query": {"state": %d}, "ts": 1, "te": 6, "tau": 0.05}`, center),
	} {
		code, raw := post(t, ts.URL+"/v1/subscribe", body)
		if code != http.StatusBadRequest {
			t.Fatalf("alias body accepted with %d: %s", code, raw)
		}
		var env ErrorEnvelope
		if err := json.Unmarshal(raw, &env); err != nil {
			t.Fatal(err)
		}
		if env.Error.Code != CodeUseQuerySpec {
			t.Errorf("code = %q, want %q", env.Error.Code, CodeUseQuerySpec)
		}
	}
}

// TestSubscribePollTransport covers the long-poll path: register with
// transport "poll", drain the initial event, long-poll across an ingest
// and observe the re-evaluation, list and finally delete.
func TestSubscribePollTransport(t *testing.T) {
	net2, proc, ts := testServer(t)
	center := net2.NearestState(pnn.Point{X: 0.5, Y: 0.5})

	code, raw := post(t, ts.URL+"/v1/subscribe", fmt.Sprintf(
		`{"semantics": "forall", "query": {"state": %d}, "window": {"ts": 1, "te": 6},
		  "tau": 0.05, "seed": 7, "delivery": {"transport": "poll", "on_change_only": false}}`, center))
	if code != http.StatusOK {
		t.Fatalf("subscribe status %d: %s", code, raw)
	}
	var sr SubscribeResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Transport != TransportPoll || sr.SubscriptionID == 0 {
		t.Fatalf("subscribe response %+v", sr)
	}

	events := func(timeoutMS int) SubEventsResponse {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("%s/v1/subscriptions/%d/events?timeout_ms=%d",
			ts.URL, sr.SubscriptionID, timeoutMS))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("events status %d", resp.StatusCode)
		}
		var er SubEventsResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatal(err)
		}
		return er
	}

	first := events(5000)
	if len(first.Events) != 1 || first.Events[0].Event != "answer" || first.Events[0].Response == nil {
		t.Fatalf("initial poll = %+v", first)
	}

	// The subscriptions listing shows the standing query with its
	// transport and index footprint.
	lresp, err := http.Get(ts.URL + "/v1/subscriptions")
	if err != nil {
		t.Fatal(err)
	}
	var list SubListResponse
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	if len(list.Subscriptions) != 1 || list.Subscriptions[0].ID != sr.SubscriptionID ||
		list.Subscriptions[0].Transport != TransportPoll {
		t.Fatalf("listing = %+v", list)
	}

	// Ingest inside the influence region, then long-poll: the request
	// must block until the re-evaluation lands, not return empty.
	if code, raw := post(t, ts.URL+"/v1/objects", fmt.Sprintf(
		`{"id": 901, "observations": [{"t": 3, "state": %d}]}`, center)); code != http.StatusOK {
		t.Fatalf("ingest status %d: %s", code, raw)
	}
	second := events(10000)
	if len(second.Events) == 0 {
		t.Fatal("long-poll returned empty after an in-region write")
	}
	if v0, v1 := first.Events[0].Version, second.Events[0].Version; v1 != v0+1 {
		t.Errorf("re-evaluation version %d after %d, want +1", v1, v0)
	}

	// Delete, then both the poll and a second delete answer 404.
	del := func() int {
		req, _ := http.NewRequest(http.MethodDelete,
			fmt.Sprintf("%s/v1/subscriptions/%d", ts.URL, sr.SubscriptionID), nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := del(); code != http.StatusOK {
		t.Fatalf("delete status %d", code)
	}
	if code := del(); code != http.StatusNotFound {
		t.Errorf("second delete status %d, want 404", code)
	}
	resp, err := http.Get(fmt.Sprintf("%s/v1/subscriptions/%d/events", ts.URL, sr.SubscriptionID))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("poll after delete status %d, want 404", resp.StatusCode)
	}
	if proc.NumSubscriptions() != 0 {
		t.Errorf("%d subscriptions left registered", proc.NumSubscriptions())
	}
}

// TestSubscribeLimit pins the registration cap and its stable code.
func TestSubscribeLimit(t *testing.T) {
	net2, err := pnn.NewGridNetwork(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	db := pnn.NewDB(net2)
	if err := db.Add(1, []pnn.Observation{{T: 0, State: 0}, {T: 6, State: 0}}); err != nil {
		t.Fatal(err)
	}
	proc, err := db.Build(100)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(New(net2, proc, Config{MaxSubscriptions: 1}))
	t.Cleanup(hs.Close)
	body := `{"semantics": "exists", "query": {"state": 0}, "window": {"ts": 0, "te": 4},
	          "tau": 0.1, "delivery": {"transport": "poll"}}`
	if code, raw := post(t, hs.URL+"/v1/subscribe", body); code != http.StatusOK {
		t.Fatalf("first subscribe status %d: %s", code, raw)
	}
	code, raw := post(t, hs.URL+"/v1/subscribe", body)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-limit subscribe status %d: %s", code, raw)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != CodeSubLimit {
		t.Errorf("code = %q, want %q", env.Error.Code, CodeSubLimit)
	}
}

// TestShutdownDrainsSSEStreams pins the graceful-shutdown ordering:
// cancelling the serve context closes the subscription registry first,
// so an open SSE stream receives its terminal bye frame — not a torn
// connection — before the listener shuts down.
func TestShutdownDrainsSSEStreams(t *testing.T) {
	net2, proc, _ := testServer(t)
	srv := New(net2, proc, Config{Ingest: true})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.serve(ctx, ln, 5*time.Second) }()

	center := net2.NearestState(pnn.Point{X: 0.5, Y: 0.5})
	url := fmt.Sprintf("http://%s/v1/subscribe", ln.Addr())
	spec := fmt.Sprintf(`{"semantics": "exists", "query": {"state": %d},
		"window": {"ts": 1, "te": 6}, "tau": 0.05, "seed": 5}`, center)
	resp, err := http.Post(url, "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	if event, _ := readFrame(t, br); event != "answer" {
		t.Fatalf("initial frame = %q", event)
	}

	cancel()
	if event, _ := readFrame(t, br); event != "bye" {
		t.Fatalf("shutdown frame = %q, want bye", event)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down after draining streams")
	}
}

// TestDeprecationSignals checks the one-shot alias deprecation
// satellite: flat spellings still answer, but carry the Deprecation
// header and a warnings array; canonical requests carry neither.
func TestDeprecationSignals(t *testing.T) {
	net2, _, ts := testServer(t)
	center := net2.NearestState(pnn.Point{X: 0.5, Y: 0.5})

	do := func(body string) (*http.Response, QueryResponse) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/forallnn", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var qr QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
		return resp, qr
	}

	legacy, lqr := do(fmt.Sprintf(`{"state": %d, "ts": 1, "te": 6, "tau": 0.05, "seed": 9}`, center))
	if legacy.Header.Get("Deprecation") != "true" {
		t.Error("legacy aliases answered without a Deprecation header")
	}
	if len(lqr.Warnings) != 3 {
		t.Errorf("warnings = %v, want one each for state/ts/te", lqr.Warnings)
	}

	canonical, cqr := do(fmt.Sprintf(
		`{"query": {"state": %d}, "window": {"ts": 1, "te": 6}, "tau": 0.05, "seed": 9}`, center))
	if canonical.Header.Get("Deprecation") != "" {
		t.Error("canonical request carries a Deprecation header")
	}
	if len(cqr.Warnings) != 0 {
		t.Errorf("canonical request warned: %v", cqr.Warnings)
	}
}

// TestHealthzSubscriptionCaps checks /healthz advertises the standing-
// query capability with live counts.
func TestHealthzSubscriptionCaps(t *testing.T) {
	net2, _, ts := testServer(t)
	center := net2.NearestState(pnn.Point{X: 0.5, Y: 0.5})
	health := func() HealthResponse {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h HealthResponse
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h
	}
	h0 := health()
	if !h0.Subscriptions.Enabled || h0.Subscriptions.MaxSubscriptions != 10000 {
		t.Fatalf("subscription caps = %+v", h0.Subscriptions)
	}
	if got := h0.Subscriptions.Transports; len(got) != 2 || got[0] != TransportSSE || got[1] != TransportPoll {
		t.Errorf("transports = %v", got)
	}
	if h0.Subscriptions.Active != 0 {
		t.Errorf("fresh server reports %d active subscriptions", h0.Subscriptions.Active)
	}
	code, _ := post(t, ts.URL+"/v1/subscribe", fmt.Sprintf(
		`{"semantics": "exists", "query": {"state": %d}, "window": {"ts": 1, "te": 6},
		  "tau": 0.05, "delivery": {"transport": "poll"}}`, center))
	if code != http.StatusOK {
		t.Fatalf("subscribe status %d", code)
	}
	if h1 := health(); h1.Subscriptions.Active != 1 {
		t.Errorf("active = %d after one subscribe, want 1", h1.Subscriptions.Active)
	}
}
