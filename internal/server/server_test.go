package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pnn"
)

// testServer builds a small grid database and an httptest server over
// it. Legacy QuerySpec aliases are enabled, as on a server started with
// -legacy-aliases: most tests here predate the sunset and pin the
// migration behavior (flat spellings answer, with deprecation
// signals). TestAliasSunset covers the default-configuration rejection.
func testServer(t *testing.T) (*pnn.Network, *pnn.Processor, *httptest.Server) {
	t.Helper()
	net, err := pnn.NewGridNetwork(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	db := pnn.NewDB(net)
	routes := [][2]pnn.Point{
		{{X: 0.1, Y: 0.1}, {X: 0.9, Y: 0.9}},
		{{X: 0.9, Y: 0.1}, {X: 0.1, Y: 0.9}},
		{{X: 0.1, Y: 0.5}, {X: 0.9, Y: 0.5}},
	}
	for i, r := range routes {
		a, b := net.NearestState(r[0]), net.NearestState(r[1])
		obs := net.ObservationsAlong(a, b, 0, 2, 4)
		if err := db.Add(100+i, obs); err != nil {
			t.Fatal(err)
		}
	}
	proc, err := db.Build(300)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(net, proc, Config{BatchWorkers: 2, Ingest: true, LegacyAliases: true}))
	t.Cleanup(ts.Close)
	return net, proc, ts
}

// TestHealthzSharded checks /healthz reports the per-shard version
// vector of a sharded processor and that writes move exactly one entry.
func TestHealthzSharded(t *testing.T) {
	net, err := pnn.NewGridNetwork(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	db := pnn.NewDB(net)
	for id := 0; id < 6; id++ {
		st := (id * 11) % net.NumStates()
		if err := db.Add(id, []pnn.Observation{{T: 0, State: st}, {T: 8, State: st}}); err != nil {
			t.Fatal(err)
		}
	}
	const shards = 3
	proc, err := db.BuildSharded(200, shards)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(net, proc, Config{Ingest: true}))
	t.Cleanup(ts.Close)

	health := func() HealthResponse {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h HealthResponse
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h
	}

	h0 := health()
	if h0.Shards != shards || len(h0.ShardVersions) != shards {
		t.Fatalf("health = %+v, want %d shard versions", h0, shards)
	}
	for si, v := range h0.ShardVersions {
		if v != 1 {
			t.Errorf("fresh shard %d at version %d", si, v)
		}
	}

	// One write through the API advances the composite version by one
	// and exactly one shard's version by one.
	st := 13
	code, _ := post(t, ts.URL+"/v1/objects", fmt.Sprintf(
		`{"id": 42, "observations": [{"t": 0, "state": %d}, {"t": 8, "state": %d}]}`, st, st))
	if code != http.StatusOK {
		t.Fatalf("ingest = %d", code)
	}
	h1 := health()
	if h1.Version != h0.Version+1 {
		t.Errorf("composite version %d -> %d, want +1", h0.Version, h1.Version)
	}
	bumped := 0
	for si := range h1.ShardVersions {
		switch h1.ShardVersions[si] {
		case h0.ShardVersions[si]:
		case h0.ShardVersions[si] + 1:
			bumped++
		default:
			t.Errorf("shard %d jumped %d -> %d", si, h0.ShardVersions[si], h1.ShardVersions[si])
		}
	}
	if bumped != 1 {
		t.Errorf("%d shard versions advanced, want exactly 1", bumped)
	}
}

func post(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func TestHealthz(t *testing.T) {
	_, proc, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Objects != proc.NumObjects() || h.States != 64 {
		t.Errorf("health = %+v", h)
	}
	if h.Shards != 1 || len(h.ShardVersions) != 1 || h.ShardVersions[0] != h.Version {
		t.Errorf("unsharded health shard fields = %+v", h)
	}
	if code, _ := post(t, ts.URL+"/healthz", "{}"); code != http.StatusMethodNotAllowed {
		t.Errorf("POST /healthz = %d, want 405", code)
	}
}

// TestQueryEndpointsRoundTrip drives each /v1 endpoint end-to-end and
// checks the HTTP answer matches a direct facade call with the same seed.
func TestQueryEndpointsRoundTrip(t *testing.T) {
	net, proc, ts := testServer(t)
	center := net.NearestState(pnn.Point{X: 0.5, Y: 0.5})
	q := pnn.AtState(net, center)

	body := func(extra string) string {
		return fmt.Sprintf(`{"state": %d, "ts": 1, "te": 6, "tau": 0.05, "seed": 42%s}`, center, extra)
	}

	t.Run("forallnn", func(t *testing.T) {
		code, raw := post(t, ts.URL+"/v1/forallnn", body(""))
		if code != http.StatusOK {
			t.Fatalf("status %d: %s", code, raw)
		}
		var got QueryResponse
		if err := json.Unmarshal(raw, &got); err != nil {
			t.Fatal(err)
		}
		want, _, err := proc.ForAllNN(q, 1, 6, 0.05, 42)
		if err != nil {
			t.Fatal(err)
		}
		compareResults(t, got.Results, want)
		if got.Stats.Worlds != 300 {
			t.Errorf("stats.worlds = %d, want 300", got.Stats.Worlds)
		}
	})
	t.Run("existsnn", func(t *testing.T) {
		code, raw := post(t, ts.URL+"/v1/existsnn", body(`, "k": 2`))
		if code != http.StatusOK {
			t.Fatalf("status %d: %s", code, raw)
		}
		var got QueryResponse
		if err := json.Unmarshal(raw, &got); err != nil {
			t.Fatal(err)
		}
		want, _, err := proc.ExistsKNN(q, 1, 6, 2, 0.05, 42)
		if err != nil {
			t.Fatal(err)
		}
		compareResults(t, got.Results, want)
	})
	t.Run("pcnn", func(t *testing.T) {
		code, raw := post(t, ts.URL+"/v1/pcnn",
			fmt.Sprintf(`{"state": %d, "ts": 1, "te": 4, "tau": 0.3, "seed": 7}`, center))
		if code != http.StatusOK {
			t.Fatalf("status %d: %s", code, raw)
		}
		var got QueryResponse
		if err := json.Unmarshal(raw, &got); err != nil {
			t.Fatal(err)
		}
		want, _, err := proc.ContinuousNN(q, 1, 4, 0.3, 7)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Intervals) != len(want) {
			t.Fatalf("intervals: got %d, want %d", len(got.Intervals), len(want))
		}
		for i := range want {
			g, w := got.Intervals[i], want[i]
			if g.ObjectID != w.ObjectID || math.Abs(g.Prob-w.Prob) > 1e-12 || len(g.Times) != len(w.Times) {
				t.Errorf("interval %d: got %+v, want %+v", i, g, w)
			}
		}
	})
	t.Run("point-and-trajectory-references", func(t *testing.T) {
		code, _ := post(t, ts.URL+"/v1/existsnn", `{"x": 0.5, "y": 0.5, "ts": 1, "te": 5, "tau": 0.05}`)
		if code != http.StatusOK {
			t.Errorf("point query status = %d", code)
		}
		code, _ = post(t, ts.URL+"/v1/existsnn",
			`{"trajectory": {"start": 1, "points": [{"x": 0.4, "y": 0.5}, {"x": 0.5, "y": 0.5}]}, "ts": 1, "te": 5, "tau": 0.05}`)
		if code != http.StatusOK {
			t.Errorf("trajectory query status = %d", code)
		}
	})
}

func compareResults(t *testing.T, got []ResultJSON, want []pnn.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("results: got %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ObjectID != want[i].ObjectID || math.Abs(got[i].Prob-want[i].Prob) > 1e-12 {
			t.Errorf("result %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestBatchEndpoint(t *testing.T) {
	net, proc, ts := testServer(t)
	center := net.NearestState(pnn.Point{X: 0.5, Y: 0.5})
	q := pnn.AtState(net, center)
	body := fmt.Sprintf(`{"requests": [
		{"semantics": "forall", "state": %d, "ts": 1, "te": 6, "tau": 0.05, "seed": 1},
		{"semantics": "exists", "state": %d, "ts": 1, "te": 6, "tau": 0.05, "seed": 2},
		{"semantics": "cnn",    "state": %d, "ts": 1, "te": 4, "tau": 0.3,  "seed": 3}
	]}`, center, center, center)
	code, raw := post(t, ts.URL+"/v1/batch", body)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	var got BatchResponse
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Responses) != 3 {
		t.Fatalf("responses = %d, want 3", len(got.Responses))
	}
	wantFA, _, err := proc.ForAllNN(q, 1, 6, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, got.Responses[0].Results, wantFA)
	wantEX, _, err := proc.ExistsNN(q, 1, 6, 0.05, 2)
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, got.Responses[1].Results, wantEX)
	if got.Responses[2].Error != nil {
		t.Errorf("cnn item failed: %+v", got.Responses[2].Error)
	}
	for i, r := range got.Responses {
		if r.APIVersion != APIVersion {
			t.Errorf("item %d api_version = %q, want %q", i, r.APIVersion, APIVersion)
		}
		if r.Sampling.SamplesDrawn != r.Stats.Worlds || r.Sampling.ErrorBound <= 0 {
			t.Errorf("item %d sampling = %+v (stats %+v)", i, r.Sampling, r.Stats)
		}
	}
}

// TestValidation is the table-driven contract test of the error
// envelope: every rejection carries {"error": {code, message, field}}
// with the documented stable code, across every endpoint.
func TestValidation(t *testing.T) {
	_, _, ts := testServer(t)
	cases := []struct {
		name, path, body string
		status           int
		code             string
	}{
		{"no-reference", "/v1/forallnn", `{"ts": 1, "te": 5, "tau": 0.1}`, 400, CodeInvalidQuery},
		{"two-references", "/v1/forallnn", `{"state": 3, "x": 0.5, "y": 0.5, "ts": 1, "te": 5, "tau": 0.1}`, 400, CodeInvalidQuery},
		{"x-without-y", "/v1/forallnn", `{"x": 0.5, "ts": 1, "te": 5, "tau": 0.1}`, 400, CodeInvalidQuery},
		{"state-out-of-range", "/v1/forallnn", `{"state": 9999, "ts": 1, "te": 5, "tau": 0.1}`, 400, CodeInvalidQuery},
		{"inverted-interval", "/v1/forallnn", `{"state": 3, "ts": 5, "te": 1, "tau": 0.1}`, 400, CodeInvalidWindow},
		{"inverted-window-canonical", "/v1/forallnn", `{"query": {"state": 3}, "window": {"ts": 5, "te": 1}, "tau": 0.1}`, 400, CodeInvalidWindow},
		{"tau-out-of-range", "/v1/forallnn", `{"state": 3, "ts": 1, "te": 5, "tau": 1.5}`, 400, CodeInvalidTau},
		{"negative-k", "/v1/forallnn", `{"state": 3, "ts": 1, "te": 5, "tau": 0.1, "k": -2}`, 400, CodeInvalidK},
		{"pcnn-zero-tau", "/v1/pcnn", `{"state": 3, "ts": 1, "te": 5, "tau": 0}`, 400, CodeInvalidTau},
		{"empty-trajectory", "/v1/existsnn", `{"trajectory": {"start": 0, "points": []}, "ts": 1, "te": 5}`, 400, CodeInvalidQuery},
		{"malformed-json", "/v1/forallnn", `{"state": `, 400, CodeInvalidBody},
		{"unknown-field", "/v1/forallnn", `{"state": 3, "ts": 1, "te": 5, "tau": 0.1, "bogus": true}`, 400, CodeInvalidBody},
		{"bad-confidence-eps", "/v1/forallnn", `{"state": 3, "ts": 1, "te": 5, "tau": 0.1, "confidence": {"eps": 1.5}}`, 400, CodeInvalidConfidence},
		{"bad-confidence-delta", "/v1/forallnn", `{"state": 3, "ts": 1, "te": 5, "tau": 0.1, "confidence": {"eps": 0.05, "delta": 1}}`, 400, CodeInvalidConfidence},
		{"confidence-over-cap", "/v1/forallnn", `{"state": 3, "ts": 1, "te": 5, "tau": 0.1, "confidence": {"eps": 0.05, "max_samples": 99999999}}`, 400, CodeInvalidConfidence},
		{"empty-batch", "/v1/batch", `{"requests": []}`, 400, CodeEmptyBatch},
		{"batch-bad-semantics", "/v1/batch", `{"requests": [{"semantics": "sometimes", "state": 3, "ts": 1, "te": 5}]}`, 400, CodeUnknownSemantics},
		{"batch-bad-item", "/v1/batch", `{"requests": [{"semantics": "exists", "state": 3, "ts": 5, "te": 1}]}`, 400, CodeInvalidWindow},
		{"ingest-empty-observations", "/v1/objects", `{"id": 300, "observations": []}`, 400, CodeInvalidObservation},
		{"ingest-duplicate-id", "/v1/objects", `{"id": 100, "observations": [{"t": 0, "state": 1}]}`, 409, CodeDuplicateObject},
		{"ingest-unknown-object", "/v1/observe", `{"id": 999, "observations": [{"t": 50, "state": 1}]}`, 409, CodeUnknownObject},
		{"ingest-impossible-motion", "/v1/observe", `{"id": 100, "observations": [{"t": 100, "state": 0}, {"t": 101, "state": 63}]}`, 409, CodeRejectedWrite},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, raw := post(t, ts.URL+tc.path, tc.body)
			if code != tc.status {
				t.Fatalf("status = %d, want %d (%s)", code, tc.status, raw)
			}
			var e ErrorEnvelope
			if err := json.Unmarshal(raw, &e); err != nil {
				t.Fatalf("error envelope undecodable: %s", raw)
			}
			if e.Error.Code != tc.code {
				t.Errorf("error.code = %q, want %q (%s)", e.Error.Code, tc.code, raw)
			}
			if e.Error.Message == "" {
				t.Errorf("error.message empty: %s", raw)
			}
		})
	}
	if resp, err := http.Get(ts.URL + "/v1/forallnn"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /v1/forallnn = %d, want 405", resp.StatusCode)
		}
	}
}

// TestQuerySpecAliases pins that the canonical nested spelling and the
// legacy flat spelling of the same request produce byte-identical
// response bodies, for each endpoint and for batch items.
func TestQuerySpecAliases(t *testing.T) {
	net, _, ts := testServer(t)
	center := net.NearestState(pnn.Point{X: 0.5, Y: 0.5})
	pairs := []struct {
		name, path, legacy, canonical string
	}{
		{
			"state-forall", "/v1/forallnn",
			fmt.Sprintf(`{"state": %d, "ts": 1, "te": 6, "tau": 0.05, "seed": 42}`, center),
			fmt.Sprintf(`{"query": {"state": %d}, "window": {"ts": 1, "te": 6}, "tau": 0.05, "seed": 42}`, center),
		},
		{
			"point-exists", "/v1/existsnn",
			`{"x": 0.5, "y": 0.5, "ts": 1, "te": 5, "tau": 0.05, "seed": 7, "k": 2}`,
			`{"query": {"point": {"x": 0.5, "y": 0.5}}, "window": {"ts": 1, "te": 5}, "tau": 0.05, "seed": 7, "k": 2}`,
		},
		{
			"trajectory-pcnn", "/v1/pcnn",
			`{"trajectory": {"start": 1, "points": [{"x": 0.4, "y": 0.5}, {"x": 0.5, "y": 0.5}]}, "ts": 1, "te": 4, "tau": 0.3, "seed": 3}`,
			`{"query": {"trajectory": {"start": 1, "points": [{"x": 0.4, "y": 0.5}, {"x": 0.5, "y": 0.5}]}}, "window": {"ts": 1, "te": 4}, "tau": 0.3, "seed": 3}`,
		},
		{
			"confidence-forall", "/v1/forallnn",
			fmt.Sprintf(`{"state": %d, "ts": 1, "te": 6, "tau": 0.3, "seed": 42, "confidence": {"eps": 0.05}}`, center),
			fmt.Sprintf(`{"query": {"state": %d}, "window": {"ts": 1, "te": 6}, "tau": 0.3, "seed": 42, "confidence": {"eps": 0.05}}`, center),
		},
	}
	for _, tc := range pairs {
		t.Run(tc.name, func(t *testing.T) {
			post(t, ts.URL+tc.path, tc.legacy) // warm the sampler cache so stats match
			lCode, lRaw := post(t, ts.URL+tc.path, tc.legacy)
			cCode, cRaw := post(t, ts.URL+tc.path, tc.canonical)
			if lCode != http.StatusOK || cCode != http.StatusOK {
				t.Fatalf("legacy = %d (%s), canonical = %d (%s)", lCode, lRaw, cCode, cRaw)
			}
			// The answers must be identical; the legacy spelling
			// additionally carries deprecation warnings, which are not
			// part of the answer.
			var lqr, cqr QueryResponse
			if err := json.Unmarshal(lRaw, &lqr); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(cRaw, &cqr); err != nil {
				t.Fatal(err)
			}
			if len(lqr.Warnings) == 0 {
				t.Error("legacy spelling answered without deprecation warnings")
			}
			if len(cqr.Warnings) != 0 {
				t.Errorf("canonical spelling warned: %v", cqr.Warnings)
			}
			lqr.Warnings, cqr.Warnings = nil, nil
			lb, _ := json.Marshal(lqr)
			cb, _ := json.Marshal(cqr)
			if !bytes.Equal(lb, cb) {
				t.Errorf("spellings diverge:\nlegacy:    %s\ncanonical: %s", lb, cb)
			}
		})
	}
	// Both spellings work identically inside batch items too.
	batch := func(item string) []byte {
		code, raw := post(t, ts.URL+"/v1/batch", `{"requests": [`+item+`]}`)
		if code != http.StatusOK {
			t.Fatalf("batch = %d: %s", code, raw)
		}
		return raw
	}
	batch(fmt.Sprintf(`{"semantics": "exists", "state": %d, "ts": 1, "te": 6, "tau": 0.05, "seed": 5}`, center))
	legacy := batch(fmt.Sprintf(`{"semantics": "exists", "state": %d, "ts": 1, "te": 6, "tau": 0.05, "seed": 5}`, center))
	canon := batch(fmt.Sprintf(`{"semantics": "exists", "query": {"state": %d}, "window": {"ts": 1, "te": 6}, "tau": 0.05, "seed": 5}`, center))
	// batch_stats.adapt_ms is wall-clock; compare only the answers.
	var lb, cb BatchResponse
	if err := json.Unmarshal(legacy, &lb); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(canon, &cb); err != nil {
		t.Fatal(err)
	}
	if len(lb.Responses) == 0 || len(lb.Responses[0].Warnings) == 0 {
		t.Error("legacy batch item answered without deprecation warnings")
	}
	for i := range lb.Responses {
		lb.Responses[i].Warnings = nil
	}
	lr, _ := json.Marshal(lb.Responses)
	cr, _ := json.Marshal(cb.Responses)
	if !bytes.Equal(lr, cr) {
		t.Errorf("batch spellings diverge:\nlegacy:    %s\ncanonical: %s", lr, cr)
	}
}

// TestConfidenceEndToEnd drives an adaptive query over HTTP and checks
// the sampling block reports an early stop within the advertised cap,
// and that /healthz advertises the confidence range.
func TestConfidenceEndToEnd(t *testing.T) {
	net, proc, ts := testServer(t)
	center := net.NearestState(pnn.Point{X: 0.5, Y: 0.5})

	code, raw := post(t, ts.URL+"/v1/forallnn", fmt.Sprintf(
		`{"state": %d, "ts": 1, "te": 6, "tau": 0.3, "seed": 42, "confidence": {"eps": 0.05, "max_samples": 2000}}`, center))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	var got QueryResponse
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.APIVersion != APIVersion {
		t.Errorf("api_version = %q, want %q", got.APIVersion, APIVersion)
	}
	if got.Sampling.SamplesDrawn <= 0 || got.Sampling.SamplesDrawn > 2000 {
		t.Errorf("samples_drawn = %d, want in (0, 2000]", got.Sampling.SamplesDrawn)
	}
	if got.Sampling.ErrorBound <= 0 {
		t.Errorf("error_bound = %v, want > 0", got.Sampling.ErrorBound)
	}
	if got.Sampling.SamplesDrawn != got.Stats.Worlds {
		t.Errorf("samples_drawn %d != stats.worlds %d", got.Sampling.SamplesDrawn, got.Stats.Worlds)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h HealthResponse
	err = json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if h.APIVersion != APIVersion {
		t.Errorf("healthz api_version = %q, want %q", h.APIVersion, APIVersion)
	}
	if h.Confidence.DefaultBudget != proc.SampleBudget() {
		t.Errorf("healthz default_budget = %d, want %d", h.Confidence.DefaultBudget, proc.SampleBudget())
	}
	if h.Confidence.MaxSamplesCap != 10*proc.SampleBudget() {
		t.Errorf("healthz max_samples_cap = %d, want %d", h.Confidence.MaxSamplesCap, 10*proc.SampleBudget())
	}
	if h.Confidence.DefaultDelta != 0.05 || h.Confidence.EpsMin != 0 || h.Confidence.EpsMax != 1 {
		t.Errorf("healthz confidence range = %+v", h.Confidence)
	}
}

// TestBatchLimit: a batch beyond MaxBatch is rejected up front.
func TestBatchLimit(t *testing.T) {
	net, err := pnn.NewGridNetwork(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	db := pnn.NewDB(net)
	if err := db.Add(1, []pnn.Observation{{T: 0, State: 0}, {T: 4, State: 2}}); err != nil {
		t.Fatal(err)
	}
	proc, err := db.Build(50)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(net, proc, Config{MaxBatch: 2}))
	defer ts.Close()
	code, _ := post(t, ts.URL+"/v1/batch", `{"requests": [
		{"semantics": "exists", "query": {"state": 1}, "window": {"ts": 0, "te": 2}},
		{"semantics": "exists", "query": {"state": 1}, "window": {"ts": 0, "te": 2}},
		{"semantics": "exists", "query": {"state": 1}, "window": {"ts": 0, "te": 2}}
	]}`)
	if code != http.StatusBadRequest {
		t.Errorf("oversized batch = %d, want 400", code)
	}
}

// TestRunGracefulShutdown: Run serves until its context is cancelled,
// drains, and returns nil.
func TestRunGracefulShutdown(t *testing.T) {
	net, proc, _ := testServer(t)
	srv := New(net, proc, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Run(ctx, "127.0.0.1:0", time.Second) }()
	time.Sleep(50 * time.Millisecond) // let ListenAndServe start
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not shut down")
	}
}

// TestIngestEndpoints drives the live write path end-to-end: a new
// object lands via /v1/objects, grows via /v1/observe, the snapshot
// version advances each time, and queries issued afterwards see it.
func TestIngestEndpoints(t *testing.T) {
	net, proc, ts := testServer(t)
	// Park the new object in the corner the routes only brush at t=0, so
	// it dominates its neighborhood for the whole query window.
	corner := net.NearestState(pnn.Point{X: 0.95, Y: 0.05})
	v0 := proc.Version()

	code, raw := post(t, ts.URL+"/v1/objects", fmt.Sprintf(
		`{"id": 200, "observations": [{"t": 0, "state": %d}, {"t": 6, "state": %d}]}`, corner, corner))
	if code != http.StatusOK {
		t.Fatalf("/v1/objects = %d: %s", code, raw)
	}
	var ing IngestResponse
	if err := json.Unmarshal(raw, &ing); err != nil {
		t.Fatal(err)
	}
	if ing.Version != v0+1 || ing.Objects != 4 {
		t.Errorf("ingest response = %+v, want version %d with 4 objects", ing, v0+1)
	}

	code, raw = post(t, ts.URL+"/v1/observe", fmt.Sprintf(
		`{"id": 200, "observations": [{"t": 12, "state": %d}]}`, corner))
	if code != http.StatusOK {
		t.Fatalf("/v1/observe = %d: %s", code, raw)
	}
	if err := json.Unmarshal(raw, &ing); err != nil {
		t.Fatal(err)
	}
	if ing.Version != v0+2 {
		t.Errorf("observe version = %d, want %d", ing.Version, v0+2)
	}

	// A query after both writes sees the parked object, including the
	// window only the appended observation covers.
	code, raw = post(t, ts.URL+"/v1/forallnn", fmt.Sprintf(
		`{"state": %d, "ts": 7, "te": 11, "tau": 0.5, "seed": 3}`, corner))
	if code != http.StatusOK {
		t.Fatalf("post-ingest query = %d: %s", code, raw)
	}
	var qr QueryResponse
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range qr.Results {
		if r.ObjectID == 200 {
			found = true
		}
	}
	if !found {
		t.Errorf("ingested object missing from post-ingest query: %s", raw)
	}

	// /healthz reports the advanced version and the new object count.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h HealthResponse
	err = json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if h.Version != v0+2 || h.Objects != 4 || !h.Ingest {
		t.Errorf("health after ingest = %+v", h)
	}
}

// TestIngestValidation: each malformed or impossible write is rejected
// with the right status and leaves the served version untouched.
func TestIngestValidation(t *testing.T) {
	_, proc, ts := testServer(t)
	v0 := proc.Version()
	cases := []struct {
		name, path, body string
		want             int
	}{
		{"empty observations", "/v1/objects", `{"id": 300, "observations": []}`, http.StatusBadRequest},
		{"state out of range", "/v1/objects", `{"id": 300, "observations": [{"t": 0, "state": 64}]}`, http.StatusBadRequest},
		{"unknown field", "/v1/objects", `{"id": 300, "obs": []}`, http.StatusBadRequest},
		{"duplicate timestamp in payload", "/v1/objects", `{"id": 300, "observations": [{"t": 0, "state": 1}, {"t": 0, "state": 2}]}`, http.StatusBadRequest},
		{"duplicate id", "/v1/objects", `{"id": 100, "observations": [{"t": 0, "state": 1}]}`, http.StatusConflict},
		{"unknown object", "/v1/observe", `{"id": 999, "observations": [{"t": 50, "state": 1}]}`, http.StatusConflict},
		{"impossible motion", "/v1/observe", `{"id": 100, "observations": [{"t": 100, "state": 0}, {"t": 101, "state": 63}]}`, http.StatusConflict},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, raw := post(t, ts.URL+tc.path, tc.body)
			if code != tc.want {
				t.Errorf("%s %s = %d, want %d (%s)", tc.path, tc.body, code, tc.want, raw)
			}
		})
	}
	if v := proc.Version(); v != v0 {
		t.Errorf("rejected writes advanced version %d -> %d", v0, v)
	}
	if resp, err := http.Get(ts.URL + "/v1/objects"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /v1/objects = %d, want 405", resp.StatusCode)
		}
	}
}

// TestIngestDisabled: a read-only server refuses writes with 403 but
// keeps answering queries.
func TestIngestDisabled(t *testing.T) {
	net, proc, _ := testServer(t)
	ro := httptest.NewServer(New(net, proc, Config{}))
	defer ro.Close()
	code, _ := post(t, ro.URL+"/v1/objects", `{"id": 400, "observations": [{"t": 0, "state": 1}]}`)
	if code != http.StatusForbidden {
		t.Errorf("/v1/objects on read-only server = %d, want 403", code)
	}
	code, _ = post(t, ro.URL+"/v1/observe", `{"id": 100, "observations": [{"t": 50, "state": 1}]}`)
	if code != http.StatusForbidden {
		t.Errorf("/v1/observe on read-only server = %d, want 403", code)
	}
	if code, _ := post(t, ro.URL+"/v1/existsnn", `{"query": {"state": 1}, "window": {"ts": 0, "te": 2}, "tau": 0.01, "seed": 1}`); code != http.StatusOK {
		t.Errorf("query on read-only server = %d, want 200", code)
	}
}

// TestAliasSunset pins the default behavior after the alias sunset: a
// server started WITHOUT -legacy-aliases refuses the flat QuerySpec
// spellings outright — 400 with the stable code use_query_spec, on
// one-shot endpoints and inside batch items alike — while the
// canonical nested spelling keeps working, without warnings.
func TestAliasSunset(t *testing.T) {
	net, proc, _ := testServer(t)
	ts := httptest.NewServer(New(net, proc, Config{})) // default: aliases off
	defer ts.Close()
	center := net.NearestState(pnn.Point{X: 0.5, Y: 0.5})

	flat := []struct{ name, path, body string }{
		{"state", "/v1/forallnn", fmt.Sprintf(`{"state": %d, "ts": 1, "te": 6, "tau": 0.05, "seed": 42}`, center)},
		{"point", "/v1/existsnn", `{"x": 0.5, "y": 0.5, "ts": 1, "te": 5, "tau": 0.05}`},
		{"trajectory", "/v1/pcnn", `{"trajectory": {"start": 1, "points": [{"x": 0.4, "y": 0.5}, {"x": 0.5, "y": 0.5}]}, "ts": 1, "te": 4, "tau": 0.3}`},
		{"window-only", "/v1/forallnn", fmt.Sprintf(`{"query": {"state": %d}, "ts": 1, "te": 6, "tau": 0.05}`, center)},
	}
	for _, tc := range flat {
		t.Run(tc.name, func(t *testing.T) {
			code, raw := post(t, ts.URL+tc.path, tc.body)
			if code != http.StatusBadRequest {
				t.Fatalf("flat spelling = %d, want 400 (%s)", code, raw)
			}
			var e ErrorEnvelope
			if err := json.Unmarshal(raw, &e); err != nil {
				t.Fatalf("error envelope undecodable: %s", raw)
			}
			if e.Error.Code != CodeUseQuerySpec {
				t.Errorf("error.code = %q, want %q (%s)", e.Error.Code, CodeUseQuerySpec, raw)
			}
			if !strings.Contains(e.Error.Message, "-legacy-aliases") {
				t.Errorf("rejection does not point at the migration flag: %s", raw)
			}
		})
	}

	// The same flat spelling inside a batch item is rejected with the
	// same code, as the per-item error of a 400 batch.
	code, raw := post(t, ts.URL+"/v1/batch", fmt.Sprintf(
		`{"requests": [{"semantics": "exists", "state": %d, "ts": 1, "te": 6, "tau": 0.05}]}`, center))
	if code != http.StatusBadRequest {
		t.Fatalf("flat batch item = %d, want 400 (%s)", code, raw)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("batch error envelope undecodable: %s", raw)
	}
	if env.Error.Code != CodeUseQuerySpec {
		t.Errorf("batch error.code = %q, want %q (%s)", env.Error.Code, CodeUseQuerySpec, raw)
	}

	// Canonical spellings are untouched, and answer without warnings.
	code, raw = post(t, ts.URL+"/v1/forallnn", fmt.Sprintf(
		`{"query": {"state": %d}, "window": {"ts": 1, "te": 6}, "tau": 0.05, "seed": 42}`, center))
	if code != http.StatusOK {
		t.Fatalf("canonical spelling = %d, want 200 (%s)", code, raw)
	}
	var qr QueryResponse
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Warnings) != 0 {
		t.Errorf("canonical spelling warned: %v", qr.Warnings)
	}
}

// TestBatchSharedWorlds exercises the share_worlds wire option: same-
// window requests coalesce into one shared-world group, batch_stats
// reports the grouping, and answers match the library-level shared
// path for the same shared seed.
func TestBatchSharedWorlds(t *testing.T) {
	net, proc, ts := testServer(t)
	center := net.NearestState(pnn.Point{X: 0.5, Y: 0.5})
	q := pnn.AtState(net, center)
	body := fmt.Sprintf(`{"share_worlds": true, "shared_seed": 9, "requests": [
		{"semantics": "forall", "state": %d, "ts": 1, "te": 6, "tau": 0.05},
		{"semantics": "exists", "state": %d, "ts": 1, "te": 6, "tau": 0.05},
		{"semantics": "exists", "state": %d, "ts": 2, "te": 5, "tau": 0.05}
	]}`, center, center, center)
	code, raw := post(t, ts.URL+"/v1/batch", body)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	var got BatchResponse
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Responses) != 3 {
		t.Fatalf("responses = %d, want 3", len(got.Responses))
	}
	if got.BatchStats.Groups != 2 {
		t.Errorf("batch_stats.groups = %d, want 2 (two distinct windows)", got.BatchStats.Groups)
	}
	if got.BatchStats.Requests != 3 {
		t.Errorf("batch_stats.requests = %d, want 3", got.BatchStats.Requests)
	}
	want, _ := proc.RunBatchStats([]pnn.Request{
		{Semantics: pnn.ForAll, Query: q, Ts: 1, Te: 6, Tau: 0.05},
		{Semantics: pnn.Exists, Query: q, Ts: 1, Te: 6, Tau: 0.05},
		{Semantics: pnn.Exists, Query: q, Ts: 2, Te: 5, Tau: 0.05},
	}, pnn.BatchOptions{ShareWorlds: true, SharedSeed: 9})
	for i := range want {
		if want[i].Err != nil {
			t.Fatal(want[i].Err)
		}
		compareResults(t, got.Responses[i].Results, want[i].Results)
	}
}
