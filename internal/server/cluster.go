package server

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"pnn"
	"pnn/internal/cluster"
	"pnn/internal/shard"
)

// clusterHealth builds the /healthz cluster capability block.
func (s *Server) clusterHealth() ClusterHealthJSON {
	role := s.cfg.Role
	if role == "" {
		role = RoleStandalone
	}
	ch := ClusterHealthJSON{Enabled: role != RoleStandalone, Role: role}
	if cb, ok := s.proc.(clusterBackend); ok {
		ch.Peers = len(cb.ClusterStatus().Peers)
		ch.HealthyPeers = cb.HealthyPeers()
	}
	return ch
}

// handleCluster serves GET /v1/cluster: on a router, the full topology
// (peers in version-vector order, their health, snapshot identities and
// consistent-hash ownership arcs); on a standalone node or peer, a
// single-node view of the same shape, so clients can probe any node
// uniformly.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "", "use GET")
		return
	}
	if cb, ok := s.proc.(clusterBackend); ok {
		writeJSON(w, http.StatusOK, cb.ClusterStatus())
		return
	}
	role := s.cfg.Role
	if role == "" {
		role = RoleStandalone
	}
	version, _, vec := s.proc.SnapshotDetail()
	writeJSON(w, http.StatusOK, cluster.Status{
		Role:         role,
		SampleBudget: s.proc.SampleBudget(),
		Vector:       vec,
		Version:      version,
		Durability:   s.durabilityHealth().Mode,
	})
}

// registerInternal mounts the peer RPC surface a router scatters to.
// The handlers trust the coordinator: request-shape validation happened
// on the router, so a peer only re-checks what the engine itself
// enforces. They bypass Config.Ingest — a peer may refuse public writes
// while still accepting routed ones from its router.
func (s *Server) registerInternal(local *pnn.Processor) {
	s.mux.HandleFunc("/internal/scatter", s.handleScatter(local))
	s.mux.HandleFunc("/internal/ingest", s.handleInternalIngest(local))
	s.mux.HandleFunc("/internal/touch", s.handleInternalTouch(local))
	s.mux.HandleFunc("/internal/health", s.handleInternalHealth(local))
}

// handleScatter serves POST /internal/scatter: prune, adapt and
// pre-draw this peer's share of one shared-world group. The drawn state
// columns are a pure function of (snapshot, seed, object IDs), so the
// router's replay-gather reproduces the single-process bytes exactly.
func (s *Server) handleScatter(local *pnn.Processor) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "", "use POST")
			return
		}
		var req cluster.ScatterRequest
		if err := decodeBody(r, &req); err != nil {
			writeErr(w, http.StatusBadRequest, CodeInvalidBody, "", err)
			return
		}
		spec := shard.GroupSpec{
			Q: req.Query.Decode(), Ts: req.Ts, Te: req.Te, K: req.K, Seed: req.Seed,
		}
		if req.Confidence != nil {
			spec.Conf = pnn.Confidence{
				Eps: req.Confidence.Eps, Delta: req.Confidence.Delta, MaxSamples: req.Confidence.MaxSamples,
			}
		}
		res, err := local.ShardSet().Snapshot().Scatter(spec)
		if err != nil {
			writeErr(w, http.StatusBadRequest, CodeInvalidQuery, "", err)
			return
		}
		writeJSONMaybeGzip(w, r, http.StatusOK, cluster.ScatterToWire(res))
	}
}

// writeJSONMaybeGzip is writeJSON with Content-Encoding negotiation:
// when the caller advertised gzip in Accept-Encoding, the JSON body is
// gzip-compressed; otherwise it falls back to identity. Only the
// scatter answer uses it — world-column payloads are large (one float
// row per sampled world per candidate) and highly repetitive, so the
// wire saving is an order of magnitude; the other internal RPC answers
// are tiny and stay plain.
func writeJSONMaybeGzip(w http.ResponseWriter, r *http.Request, code int, v interface{}) {
	if !acceptsGzip(r) {
		writeJSON(w, code, v)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Encoding", "gzip")
	w.WriteHeader(code)
	gz := gzip.NewWriter(w)
	_ = json.NewEncoder(gz).Encode(v)
	_ = gz.Close()
}

// acceptsGzip reports whether the request's Accept-Encoding header
// names gzip as an acceptable coding (ignoring q-values other than an
// explicit q=0 refusal).
func acceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		coding, params, _ := strings.Cut(strings.TrimSpace(part), ";")
		if coding != "gzip" && coding != "*" {
			continue
		}
		if q := strings.ReplaceAll(params, " ", ""); strings.Contains(q, "q=0") && !strings.Contains(q, "q=0.") {
			continue
		}
		return true
	}
	return false
}

// handleInternalIngest serves POST /internal/ingest: a routed write.
// Rejections answer 409 with the same stable codes as the public write
// endpoints, which the coordinator folds back into the facade's error
// vocabulary.
func (s *Server) handleInternalIngest(local *pnn.Processor) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "", "use POST")
			return
		}
		var req cluster.IngestRPCRequest
		if err := decodeBody(r, &req); err != nil {
			writeErr(w, http.StatusBadRequest, CodeInvalidBody, "", err)
			return
		}
		obs := make([]pnn.Observation, len(req.Observations))
		for i, ob := range req.Observations {
			obs[i] = pnn.Observation{T: ob.T, State: ob.State}
		}
		var ing pnn.Ingest
		var err error
		switch req.Kind {
		case "add":
			ing, err = local.AddObject(req.ID, obs)
		case "observe":
			ing, err = local.Observe(req.ID, obs...)
		default:
			httpError(w, http.StatusBadRequest, CodeInvalidBody, "kind",
				fmt.Sprintf("unknown ingest kind %q", req.Kind))
			return
		}
		if err != nil {
			writeErr(w, http.StatusConflict, writeCode(err), "id", err)
			return
		}
		_, _, vec := local.SnapshotDetail()
		writeJSON(w, http.StatusOK, cluster.IngestRPCResponse{
			Version: ing.Version, Versions: vec, Objects: ing.Objects,
		})
	}
}

// handleInternalTouch serves POST /internal/touch: may the (already
// written) object intersect the given influence region? Answered from
// this peer's current snapshot — the one the write published or newer,
// which can only widen the object's rectangles toward "touched".
func (s *Server) handleInternalTouch(local *pnn.Processor) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "", "use POST")
			return
		}
		var req cluster.TouchRequest
		if err := decodeBody(r, &req); err != nil {
			writeErr(w, http.StatusBadRequest, CodeInvalidBody, "", err)
			return
		}
		snap := local.ShardSet().Snapshot()
		touched := snap.Toucher(req.ID)(req.Query.Decode(), req.Ts, req.Te, cluster.PruneFromWire(req.Bound))
		writeJSON(w, http.StatusOK, cluster.TouchResponse{Touched: touched})
	}
}

// handleInternalHealth serves GET /internal/health: the peer's live
// snapshot identity plus the static parameters the coordinator checks
// for cluster-wide agreement at bootstrap.
func (s *Server) handleInternalHealth(local *pnn.Processor) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "", "use GET")
			return
		}
		version, objects, vec := local.SnapshotDetail()
		cs := local.CacheStats()
		writeJSON(w, http.StatusOK, cluster.HealthInfo{
			Version:     version,
			Versions:    vec,
			Objects:     objects,
			States:      s.net.NumStates(),
			Samples:     local.SampleBudget(),
			CacheBuilds: cs.Builds,
			CacheHits:   cs.Hits,
			Durability:  local.DurabilityStatus().Mode(),
		})
	}
}
