package datagen

import (
	"bytes"
	"testing"

	"pnn/internal/markov"
	"pnn/internal/sparse"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	ds := smallSynthetic(t, 10)
	var buf bytes.Buffer
	if err := ds.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Space.Len() != ds.Space.Len() {
		t.Fatalf("state count %d, want %d", got.Space.Len(), ds.Space.Len())
	}
	for i := 0; i < ds.Space.Len(); i += 97 {
		if got.Space.Point(i) != ds.Space.Point(i) {
			t.Fatalf("point %d differs", i)
		}
	}
	if len(got.Objects) != len(ds.Objects) {
		t.Fatalf("object count %d, want %d", len(got.Objects), len(ds.Objects))
	}
	for i, o := range ds.Objects {
		g := got.Objects[i]
		if g.ID != o.ID || len(g.Obs) != len(o.Obs) {
			t.Fatalf("object %d metadata differs", i)
		}
		for k := range o.Obs {
			if g.Obs[k] != o.Obs[k] {
				t.Fatalf("object %d observation %d differs", i, k)
			}
		}
		if got.Truth[i].Start != ds.Truth[i].Start || len(got.Truth[i].States) != len(ds.Truth[i].States) {
			t.Fatalf("object %d truth differs", i)
		}
	}
	// Chain matrices must be identical.
	m1 := ds.Chain.At(0)
	m2 := got.Chain.At(0)
	if m1.NNZ() != m2.NNZ() {
		t.Fatalf("chain nnz %d, want %d", m2.NNZ(), m1.NNZ())
	}
	for i := 0; i < m1.N; i += 131 {
		c1, v1 := m1.Row(i)
		c2, v2 := m2.Row(i)
		if len(c1) != len(c2) {
			t.Fatalf("chain row %d differs", i)
		}
		for k := range c1 {
			if c1[k] != c2[k] || v1[k] != v2[k] {
				t.Fatalf("chain row %d entry %d differs", i, k)
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a dataset"))); err == nil {
		t.Error("expected decode error")
	}
}

func TestSaveRejectsNonHomogeneous(t *testing.T) {
	ds := smallSynthetic(t, 1)
	m := ds.Chain.At(0)
	pw, err := markov.NewPiecewise([]int{0}, []*sparse.CSR{m})
	if err != nil {
		t.Fatal(err)
	}
	ds.Chain = pw
	var buf bytes.Buffer
	if err := ds.Save(&buf); err == nil {
		t.Error("expected error for non-homogeneous chain")
	}
}
