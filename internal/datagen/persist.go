package datagen

import (
	"encoding/gob"
	"fmt"
	"io"

	"pnn/internal/geo"
	"pnn/internal/markov"
	"pnn/internal/space"
	"pnn/internal/sparse"
	"pnn/internal/uncertain"
)

// gobDataset is the stable wire form of a Dataset: state-space geometry,
// the shared homogeneous chain (as CSR triplets layout), per-object
// observations and ground truth. Only homogeneous chains are persisted;
// that covers both generators in this package.
type gobDataset struct {
	Version int

	Points [][2]float64
	Adj    [][]int32

	ChainRowPtr []int32
	ChainCol    []int32
	ChainVal    []float64

	Objects []gobObject
}

type gobObject struct {
	ID     int
	Obs    []uncertain.Observation
	TruthT int
	Truth  []int32
}

const gobVersion = 1

// Save serializes the dataset to w in a self-contained binary form.
// Datasets with non-homogeneous chains are rejected.
func (d *Dataset) Save(w io.Writer) error {
	h, ok := d.Chain.(*markov.Homogeneous)
	if !ok {
		return fmt.Errorf("datagen: can only persist homogeneous chains, got %T", d.Chain)
	}
	out := gobDataset{
		Version:     gobVersion,
		Points:      make([][2]float64, d.Space.Len()),
		Adj:         make([][]int32, d.Space.Len()),
		ChainRowPtr: h.M.RowPtr,
		ChainCol:    h.M.Col,
		ChainVal:    h.M.Val,
	}
	for i := 0; i < d.Space.Len(); i++ {
		p := d.Space.Point(i)
		out.Points[i] = [2]float64{p.X, p.Y}
		out.Adj[i] = d.Space.Neighbors(i)
	}
	for i, o := range d.Objects {
		g := gobObject{ID: o.ID, Obs: o.Obs}
		if i < len(d.Truth) {
			g.TruthT = d.Truth[i].Start
			g.Truth = d.Truth[i].States
		}
		out.Objects = append(out.Objects, g)
	}
	return gob.NewEncoder(w).Encode(&out)
}

// Load reads a dataset previously written by Save and reconstructs the
// space, chain and objects.
func Load(r io.Reader) (*Dataset, error) {
	var in gobDataset
	if err := gob.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("datagen: decoding dataset: %w", err)
	}
	if in.Version != gobVersion {
		return nil, fmt.Errorf("datagen: unsupported dataset version %d", in.Version)
	}
	pts := make([]geo.Point, len(in.Points))
	for i, p := range in.Points {
		pts[i] = geo.Point{X: p[0], Y: p[1]}
	}
	sp, err := space.New(pts, in.Adj)
	if err != nil {
		return nil, fmt.Errorf("datagen: rebuilding space: %w", err)
	}
	if len(in.ChainRowPtr) != len(pts)+1 {
		return nil, fmt.Errorf("datagen: chain dimension %d does not match %d states",
			len(in.ChainRowPtr)-1, len(pts))
	}
	csr := &sparse.CSR{
		N:      len(pts),
		RowPtr: in.ChainRowPtr,
		Col:    in.ChainCol,
		Val:    in.ChainVal,
	}
	chain, err := markov.NewHomogeneous(csr)
	if err != nil {
		return nil, fmt.Errorf("datagen: rebuilding chain: %w", err)
	}
	ds := &Dataset{Space: sp, Chain: chain}
	for _, g := range in.Objects {
		o, err := uncertain.NewObject(g.ID, g.Obs, chain)
		if err != nil {
			return nil, fmt.Errorf("datagen: rebuilding object %d: %w", g.ID, err)
		}
		ds.Objects = append(ds.Objects, o)
		ds.Truth = append(ds.Truth, uncertain.Path{Start: g.TruthT, States: g.Truth})
	}
	return ds, nil
}
