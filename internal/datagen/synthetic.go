// Package datagen builds the two evaluation datasets of Section 7: the
// artificial networks ("Artificial Data") and a taxi-fleet dataset standing
// in for the proprietary T-Drive GPS logs ("Real Data" — see DESIGN.md for
// the substitution rationale). Both generators keep the discarded
// ground-truth trajectories so effectiveness experiments (Figure 12) can
// measure prediction error against them.
package datagen

import (
	"fmt"
	"math/rand"

	"pnn/internal/markov"
	"pnn/internal/space"
	"pnn/internal/uncertain"
)

// Dataset is a generated uncertain-trajectory database.
type Dataset struct {
	Space   *space.Space
	Chain   markov.Chain
	Objects []*uncertain.Object
	// Truth holds the full ground-truth trajectory of each object (every
	// tic, not only the observed ones), aligned with Objects.
	Truth []uncertain.Path
}

// SyntheticConfig parameterizes the artificial data generator, mirroring
// the knobs of Section 7: N states, average branching factor b, database
// size |D|, object lifetime, database horizon, observation interval i and
// lag parameter v.
type SyntheticConfig struct {
	States      int     // N: number of states
	Branching   float64 // b: average node degree
	Objects     int     // |D|: number of uncertain objects
	Lifetime    int     // tics per object (paper default: 100)
	Horizon     int     // database time horizon (paper default: 1000)
	ObsInterval int     // i: tics between consecutive observations
	Lag         float64 // v ∈ (0, 1]: fraction of tics the object advances
	SelfWeight  float64 // self-loop weight of the a-priori chain
}

// DefaultSyntheticConfig returns the paper's default parameters scaled down
// ~10× so the full experiment suite runs in seconds (cmd/pnnbench -paper
// restores paper scale).
func DefaultSyntheticConfig() SyntheticConfig {
	return SyntheticConfig{
		States:      10000,
		Branching:   8,
		Objects:     1000,
		Lifetime:    100,
		Horizon:     1000,
		ObsInterval: 10,
		Lag:         0.5,
		SelfWeight:  0.5,
	}
}

func (c SyntheticConfig) validate() error {
	switch {
	case c.States < 2:
		return fmt.Errorf("datagen: need at least 2 states, got %d", c.States)
	case c.Branching <= 0:
		return fmt.Errorf("datagen: branching must be positive, got %g", c.Branching)
	case c.Objects < 1:
		return fmt.Errorf("datagen: need at least 1 object, got %d", c.Objects)
	case c.Lifetime < 1:
		return fmt.Errorf("datagen: lifetime must be >= 1, got %d", c.Lifetime)
	case c.Horizon < c.Lifetime:
		return fmt.Errorf("datagen: horizon %d shorter than lifetime %d", c.Horizon, c.Lifetime)
	case c.ObsInterval < 1:
		return fmt.Errorf("datagen: observation interval must be >= 1, got %d", c.ObsInterval)
	case c.Lag <= 0 || c.Lag > 1:
		return fmt.Errorf("datagen: lag must be in (0, 1], got %g", c.Lag)
	case c.SelfWeight <= 0:
		return fmt.Errorf("datagen: self weight must be positive (objects can idle), got %g", c.SelfWeight)
	}
	return nil
}

// Synthetic generates the artificial dataset of Section 7: a uniform
// Euclidean network, a distance-weighted a-priori chain shared by all
// objects, and |D| objects whose ground-truth motion follows shortest paths
// between sampled anchors, slowed down by the lag parameter v. Every l-th
// position (l = ObsInterval) becomes an observation; the rest is kept as
// ground truth.
func Synthetic(cfg SyntheticConfig, rng *rand.Rand) (*Dataset, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sp, err := space.Synthetic(cfg.States, cfg.Branching, rng)
	if err != nil {
		return nil, err
	}
	chain, err := markov.NewHomogeneous(sp.TransitionMatrix(cfg.SelfWeight))
	if err != nil {
		return nil, err
	}
	return buildObjects(sp, chain, cfg, rng)
}

// buildObjects creates objects on an existing space+chain. Shared by the
// synthetic and clustered generators.
func buildObjects(sp *space.Space, chain markov.Chain, cfg SyntheticConfig, rng *rand.Rand) (*Dataset, error) {
	ds := &Dataset{Space: sp, Chain: chain}
	for id := 0; id < cfg.Objects; id++ {
		truth := truthTrajectory(sp, cfg, rng)
		start := 0
		if cfg.Horizon > cfg.Lifetime {
			start = rng.Intn(cfg.Horizon - cfg.Lifetime)
		}
		obs := observe(truth, start, cfg.ObsInterval)
		o, err := uncertain.NewObject(id, obs, chain)
		if err != nil {
			return nil, fmt.Errorf("datagen: object %d: %w", id, err)
		}
		ds.Objects = append(ds.Objects, o)
		ds.Truth = append(ds.Truth, uncertain.Path{Start: start, States: truth})
	}
	return ds, nil
}

// truthTrajectory builds one object's true per-tic state sequence of length
// cfg.Lifetime+1: shortest paths between nearby random anchors, traversed
// at rate v (the object advances one path node on a fraction v of tics and
// idles otherwise).
func truthTrajectory(sp *space.Space, cfg SyntheticConfig, rng *rand.Rand) []int32 {
	// Concatenate shortest-path segments until enough nodes exist.
	nodes := []int{rng.Intn(sp.Len())}
	// Anchors are drawn near the current position so path computation
	// stays local; radius grows with remaining need.
	needed := int(float64(cfg.Lifetime)*cfg.Lag) + 2
	for len(nodes) < needed {
		cur := nodes[len(nodes)-1]
		next := nearbyState(sp, cur, rng)
		seg := sp.ShortestPath(cur, next)
		if len(seg) <= 1 {
			// Unreachable or same node: idle a step to guarantee progress.
			nodes = append(nodes, cur)
			continue
		}
		nodes = append(nodes, seg[1:]...)
	}
	// Stretch the node sequence over the lifetime at rate v.
	out := make([]int32, cfg.Lifetime+1)
	acc := 0.0
	idx := 0
	for t := range out {
		out[t] = int32(nodes[idx])
		acc += cfg.Lag
		for acc >= 1 && idx < len(nodes)-1 {
			acc--
			idx++
		}
	}
	return out
}

// nearbyState picks a random state within a moderate radius of cur,
// falling back to a uniform state when the neighbourhood is empty.
func nearbyState(sp *space.Space, cur int, rng *rand.Rand) int {
	const radius = 0.08
	within := sp.StatesWithin(sp.Point(cur), radius)
	if len(within) <= 1 {
		return rng.Intn(sp.Len())
	}
	return within[rng.Intn(len(within))]
}

// observe turns a truth trajectory into observations every `interval` tics,
// always including the final tic so the object's lifetime is fully covered.
func observe(truth []int32, start, interval int) []uncertain.Observation {
	var obs []uncertain.Observation
	last := len(truth) - 1
	for k := 0; k <= last; k += interval {
		obs = append(obs, uncertain.Observation{T: start + k, State: int(truth[k])})
	}
	if obs[len(obs)-1].T != start+last {
		obs = append(obs, uncertain.Observation{T: start + last, State: int(truth[last])})
	}
	return obs
}

// RandomQueryState draws a uniform query state index, matching the paper's
// "query states uniformly drawn from the underlying state space".
func RandomQueryState(sp *space.Space, rng *rand.Rand) int {
	return rng.Intn(sp.Len())
}
