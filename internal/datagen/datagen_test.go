package datagen

import (
	"math/rand"
	"testing"

	"pnn/internal/geo"
	"pnn/internal/inference"
	"pnn/internal/uncertain"
	"pnn/internal/ustree"
)

func smallSynthetic(t testing.TB, objects int) *Dataset {
	t.Helper()
	cfg := SyntheticConfig{
		States:      1500,
		Branching:   8,
		Objects:     objects,
		Lifetime:    40,
		Horizon:     200,
		ObsInterval: 8,
		Lag:         0.5,
		SelfWeight:  0.5,
	}
	ds, err := Synthetic(cfg, rand.New(rand.NewSource(17)))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestSyntheticShape(t *testing.T) {
	ds := smallSynthetic(t, 30)
	if len(ds.Objects) != 30 || len(ds.Truth) != 30 {
		t.Fatalf("got %d objects, %d truths", len(ds.Objects), len(ds.Truth))
	}
	for i, o := range ds.Objects {
		truth := ds.Truth[i]
		if len(truth.States) != 41 {
			t.Errorf("object %d truth has %d tics, want 41", i, len(truth.States))
		}
		if o.First().T != truth.Start || o.Last().T != truth.End() {
			t.Errorf("object %d lifetime [%d,%d] does not match truth [%d,%d]",
				i, o.First().T, o.Last().T, truth.Start, truth.End())
		}
		// Observations must lie on the ground truth.
		for _, ob := range o.Obs {
			s, ok := truth.At(ob.T)
			if !ok || s != ob.State {
				t.Errorf("object %d observation at t=%d (state %d) not on truth", i, ob.T, ob.State)
			}
		}
		// Truth transitions must be chain-legal (edge or self-loop).
		m := ds.Chain.At(0)
		for k := 1; k < len(truth.States); k++ {
			a, b := int(truth.States[k-1]), int(truth.States[k])
			if m.At(a, b) == 0 {
				t.Fatalf("object %d truth transition %d→%d impossible under chain", i, a, b)
			}
		}
	}
}

func TestSyntheticConsistentWithModel(t *testing.T) {
	// Every generated object must be adaptable: observations never
	// contradict the chain. This is the property that makes the whole
	// downstream pipeline usable.
	ds := smallSynthetic(t, 20)
	for _, o := range ds.Objects {
		if _, err := inference.Adapt(o); err != nil {
			t.Errorf("object %d: %v", o.ID, err)
		}
	}
	// And indexable.
	if _, err := ustree.Build(ds.Space, ds.Objects, uncertain.NewReach()); err != nil {
		t.Errorf("Build: %v", err)
	}
}

func TestSyntheticValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bad := []SyntheticConfig{
		{States: 1, Branching: 8, Objects: 1, Lifetime: 10, Horizon: 100, ObsInterval: 5, Lag: 0.5, SelfWeight: 0.5},
		{States: 100, Branching: 0, Objects: 1, Lifetime: 10, Horizon: 100, ObsInterval: 5, Lag: 0.5, SelfWeight: 0.5},
		{States: 100, Branching: 8, Objects: 0, Lifetime: 10, Horizon: 100, ObsInterval: 5, Lag: 0.5, SelfWeight: 0.5},
		{States: 100, Branching: 8, Objects: 1, Lifetime: 0, Horizon: 100, ObsInterval: 5, Lag: 0.5, SelfWeight: 0.5},
		{States: 100, Branching: 8, Objects: 1, Lifetime: 10, Horizon: 5, ObsInterval: 5, Lag: 0.5, SelfWeight: 0.5},
		{States: 100, Branching: 8, Objects: 1, Lifetime: 10, Horizon: 100, ObsInterval: 0, Lag: 0.5, SelfWeight: 0.5},
		{States: 100, Branching: 8, Objects: 1, Lifetime: 10, Horizon: 100, ObsInterval: 5, Lag: 1.5, SelfWeight: 0.5},
		{States: 100, Branching: 8, Objects: 1, Lifetime: 10, Horizon: 100, ObsInterval: 5, Lag: 0.5, SelfWeight: 0},
	}
	for i, cfg := range bad {
		if _, err := Synthetic(cfg, rng); err == nil {
			t.Errorf("config %d should fail validation: %+v", i, cfg)
		}
	}
}

func TestSyntheticLagWidensDiamonds(t *testing.T) {
	// Smaller v means more idle time, hence more slack between
	// observations and wider reachable sets.
	width := func(lag float64) float64 {
		cfg := SyntheticConfig{
			States: 1500, Branching: 8, Objects: 15, Lifetime: 40,
			Horizon: 41, ObsInterval: 8, Lag: lag, SelfWeight: 0.5,
		}
		ds, err := Synthetic(cfg, rand.New(rand.NewSource(23)))
		if err != nil {
			t.Fatal(err)
		}
		reach := uncertain.NewReach()
		total, n := 0.0, 0
		for _, o := range ds.Objects {
			for g := 0; g+1 < len(o.Obs); g++ {
				d, err := reach.Diamond(o, g)
				if err != nil {
					t.Fatal(err)
				}
				for _, states := range d {
					total += float64(len(states))
					n++
				}
			}
		}
		return total / float64(n)
	}
	slow := width(0.2)
	fast := width(0.9)
	if slow <= fast {
		t.Errorf("lag 0.2 avg diamond width %v should exceed lag 0.9 width %v", slow, fast)
	}
}

func TestObserveIncludesEndpoints(t *testing.T) {
	truth := []int32{1, 2, 3, 4, 5, 6, 7}
	obs := observe(truth, 10, 3)
	if obs[0].T != 10 || obs[0].State != 1 {
		t.Errorf("first obs = %+v", obs[0])
	}
	last := obs[len(obs)-1]
	if last.T != 16 || last.State != 7 {
		t.Errorf("last obs = %+v", last)
	}
	// Interval that divides the length exactly must not duplicate.
	obs = observe([]int32{1, 2, 3, 4, 5}, 0, 2)
	for i := 1; i < len(obs); i++ {
		if obs[i].T <= obs[i-1].T {
			t.Errorf("non-increasing observation times: %+v", obs)
		}
	}
}

func TestRandomQueryState(t *testing.T) {
	ds := smallSynthetic(t, 1)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		s := RandomQueryState(ds.Space, rng)
		if s < 0 || s >= ds.Space.Len() {
			t.Fatalf("query state %d out of range", s)
		}
	}
}

func TestTaxiDataset(t *testing.T) {
	cfg := TaxiConfig{
		States:      1200,
		Taxis:       40,
		Lifetime:    40,
		Horizon:     200,
		ObsInterval: 8,
		ParkedFrac:  0.2,
		FastFrac:    0.3,
		TrainTraces: 300,
	}
	ds, err := Taxi(cfg, rand.New(rand.NewSource(29)))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Objects) != 40 {
		t.Fatalf("got %d taxis", len(ds.Objects))
	}
	// All objects adaptable (trained chain covers the trace transitions).
	for _, o := range ds.Objects {
		if _, err := inference.Adapt(o); err != nil {
			t.Fatalf("taxi %d: %v", o.ID, err)
		}
	}
	// Heterogeneous motion: some taxis nearly idle, others move a lot.
	var minMoves, maxMoves = 1 << 30, 0
	for i := range ds.Objects {
		moves := 0
		st := ds.Truth[i].States
		for k := 1; k < len(st); k++ {
			if st[k] != st[k-1] {
				moves++
			}
		}
		if moves < minMoves {
			minMoves = moves
		}
		if moves > maxMoves {
			maxMoves = moves
		}
	}
	if minMoves > 10 || maxMoves < 25 {
		t.Errorf("fleet not heterogeneous: moves range [%d, %d]", minMoves, maxMoves)
	}
	// Fleet concentrates toward the center: the average final distance to
	// the center should not exceed the average initial distance.
	center := geo.Point{X: 0.5, Y: 0.5}
	var d0, d1 float64
	for i := range ds.Objects {
		st := ds.Truth[i].States
		d0 += ds.Space.Point(int(st[0])).Dist(center)
		d1 += ds.Space.Point(int(st[len(st)-1])).Dist(center)
	}
	if d1 > d0*1.05 {
		t.Errorf("fleet drifted away from center: start %v, end %v", d0, d1)
	}
}

func TestTaxiValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bad := DefaultTaxiConfig()
	bad.ParkedFrac = 0.9
	bad.FastFrac = 0.5
	if _, err := Taxi(bad, rng); err == nil {
		t.Error("expected class-fraction validation error")
	}
	bad2 := DefaultTaxiConfig()
	bad2.States = 1
	if _, err := Taxi(bad2, rng); err == nil {
		t.Error("expected states validation error")
	}
	bad3 := DefaultTaxiConfig()
	bad3.TrainTraces = 0
	if _, err := Taxi(bad3, rng); err == nil {
		t.Error("expected train-traces validation error")
	}
}

func TestDefaultConfigsValid(t *testing.T) {
	if err := DefaultSyntheticConfig().validate(); err != nil {
		t.Errorf("DefaultSyntheticConfig: %v", err)
	}
	if err := DefaultTaxiConfig().validate(); err != nil {
		t.Errorf("DefaultTaxiConfig: %v", err)
	}
}
