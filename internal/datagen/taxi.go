package datagen

import (
	"errors"
	"fmt"
	"math/rand"

	"pnn/internal/geo"
	"pnn/internal/markov"
	"pnn/internal/space"
	"pnn/internal/sparse"
	"pnn/internal/uncertain"
)

// TaxiConfig parameterizes the T-Drive substitute: a simulated city road
// network with a dense center and a heterogeneous taxi fleet. The paper's
// real-data experiments use 68 902 map-matched OSM states, one shared
// chain trained from turning probabilities, a 10-second tic, trajectories
// capped at 100 tics and observations every l-th measurement; this
// simulator reproduces those structural properties (see DESIGN.md §4).
type TaxiConfig struct {
	States      int     // road-network nodes
	Taxis       int     // fleet size
	Lifetime    int     // tics per taxi trace (paper: 100)
	Horizon     int     // database horizon (paper: 1000)
	ObsInterval int     // l: keep every l-th measurement as observation
	ParkedFrac  float64 // fraction of taxis that mostly idle
	FastFrac    float64 // fraction of through-traffic taxis (rarely idle)
	TrainTraces int     // simulated training traces for the turning model
}

// DefaultTaxiConfig returns a scaled-down city: ~7k nodes (vs 69k),
// 1k taxis.
func DefaultTaxiConfig() TaxiConfig {
	return TaxiConfig{
		States:      7000,
		Taxis:       1000,
		Lifetime:    100,
		Horizon:     1000,
		ObsInterval: 8,
		ParkedFrac:  0.15,
		FastFrac:    0.25,
		TrainTraces: 3000,
	}
}

func (c TaxiConfig) validate() error {
	switch {
	case c.States < 2:
		return errors.New("datagen: taxi network needs at least 2 states")
	case c.Taxis < 1:
		return errors.New("datagen: need at least 1 taxi")
	case c.Lifetime < 1 || c.Horizon < c.Lifetime:
		return fmt.Errorf("datagen: bad lifetime/horizon %d/%d", c.Lifetime, c.Horizon)
	case c.ObsInterval < 1:
		return errors.New("datagen: observation interval must be >= 1")
	case c.ParkedFrac < 0 || c.FastFrac < 0 || c.ParkedFrac+c.FastFrac > 1:
		return errors.New("datagen: taxi class fractions invalid")
	case c.TrainTraces < 1:
		return errors.New("datagen: need at least 1 training trace")
	}
	return nil
}

// Taxi generates the real-data substitute. The pipeline mirrors the
// paper's: (1) build the road network (center-skewed, like Beijing);
// (2) simulate fine-grained taxi traces; (3) aggregate turning
// probabilities into one shared a-priori chain (the paper's "all objects
// utilize the same Markov model M"); (4) take every l-th position of fresh
// traces as observations and keep the rest as ground truth.
func Taxi(cfg TaxiConfig, rng *rand.Rand) (*Dataset, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sp, err := space.Clustered(cfg.States, 4, 0.6, 0.07, 8, rng)
	if err != nil {
		return nil, err
	}

	// Phase 2+3: train the turning model from simulated traces.
	counts := sparse.NewRowMap()
	for tr := 0; tr < cfg.TrainTraces; tr++ {
		trace := taxiTrace(sp, cfg, rng, taxiClass(cfg, rng), 40)
		for k := 1; k < len(trace); k++ {
			counts.Add(int(trace[k-1]), int(trace[k]), 1)
		}
	}
	chain, err := trainChain(sp, counts)
	if err != nil {
		return nil, err
	}

	// Phase 4: the database fleet.
	ds := &Dataset{Space: sp, Chain: chain}
	for id := 0; id < cfg.Taxis; id++ {
		truth := taxiTrace(sp, cfg, rng, taxiClass(cfg, rng), cfg.Lifetime)
		start := 0
		if cfg.Horizon > cfg.Lifetime {
			start = rng.Intn(cfg.Horizon - cfg.Lifetime)
		}
		obs := observe(truth, start, cfg.ObsInterval)
		o, err := uncertain.NewObject(id, obs, chain)
		if err != nil {
			return nil, fmt.Errorf("datagen: taxi %d: %w", id, err)
		}
		ds.Objects = append(ds.Objects, o)
		ds.Truth = append(ds.Truth, uncertain.Path{Start: start, States: truth})
	}
	return ds, nil
}

type class int

const (
	classLocal class = iota
	classFast
	classParked
)

func taxiClass(cfg TaxiConfig, rng *rand.Rand) class {
	u := rng.Float64()
	switch {
	case u < cfg.ParkedFrac:
		return classParked
	case u < cfg.ParkedFrac+cfg.FastFrac:
		return classFast
	default:
		return classLocal
	}
}

// moveProb is the per-tic probability that a taxi of the given class
// advances to a neighbouring node (otherwise it idles). Parked taxis
// barely move, which gives them the wide uncertainty diamonds the paper
// observes; through-traffic rarely stops.
func moveProb(c class) float64 {
	switch c {
	case classParked:
		return 0.05
	case classFast:
		return 0.95
	default:
		return 0.6
	}
}

// taxiTrace simulates one per-tic trace of the given length (lifetime+1
// states). Taxis start anywhere but bias their destinations toward the
// city center, which concentrates the fleet there over time — the paper's
// observation about query cost near the Beijing center.
func taxiTrace(sp *space.Space, cfg TaxiConfig, rng *rand.Rand, c class, lifetime int) []int32 {
	cur := rng.Intn(sp.Len())
	out := make([]int32, lifetime+1)
	out[0] = int32(cur)
	// Current destination path (node indices ahead of us).
	var route []int
	center := sp.NearestState(geo.Point{X: 0.5, Y: 0.5})
	for t := 1; t <= lifetime; t++ {
		if rng.Float64() >= moveProb(c) {
			out[t] = int32(cur) // idle this tic
			continue
		}
		if len(route) == 0 {
			dest := nearbyState(sp, cur, rng)
			if rng.Float64() < 0.4 {
				// Head toward the center area instead.
				dest = nearbyState(sp, center, rng)
			}
			full := sp.ShortestPath(cur, dest)
			if len(full) > 1 {
				route = full[1:]
			}
		}
		if len(route) > 0 {
			cur = route[0]
			route = route[1:]
		}
		out[t] = int32(cur)
	}
	return out
}

// trainChain normalizes transition counts into a stochastic chain. Network
// edges never seen in training get a small smoothing weight so the trained
// model's support covers the whole drivable network (otherwise unseen turns
// would contradict test observations); states never visited fall back to
// the distance-weighted default.
func trainChain(sp *space.Space, counts sparse.RowMap) (markov.Chain, error) {
	const smoothing = 0.1
	m, err := sp.BuildTransitionMatrix(func(i, j int) float64 {
		w := counts.At(i, j)
		return w + smoothing
	})
	if err != nil {
		return nil, err
	}
	return markov.NewHomogeneous(m)
}
