package ring

import (
	"math/rand"
	"testing"
)

func TestNewRejectsBadPeerSets(t *testing.T) {
	if _, err := New(nil, 8); err == nil {
		t.Fatal("empty peer set accepted")
	}
	if _, err := New([]string{"a", "b", "a"}, 8); err == nil {
		t.Fatal("duplicate peer accepted")
	}
}

// Routing must be a pure function of the peer SET: independent of list
// order and identical across ring rebuilds — the property that lets a
// restarted router keep serving the same object placement.
func TestDeterministicAcrossRestartsAndOrder(t *testing.T) {
	a, err := New([]string{"peer-0", "peer-1", "peer-2"}, 32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New([]string{"peer-2", "peer-0", "peer-1"}, 32)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		id := int(rng.Int63n(1 << 40))
		if got, want := b.OwnerID(id), a.OwnerID(id); got != want {
			t.Fatalf("id %d: owner %q after rebuild, %q before", id, got, want)
		}
	}
}

// Adding a peer may move keys only onto the new peer; removing one may
// move keys only off it. Every other (key, owner) pair must survive —
// the bounded-movement property that distinguishes consistent hashing
// from modular hashing.
func TestBoundedMovementOnAddRemove(t *testing.T) {
	base, err := New([]string{"peer-0", "peer-1", "peer-2"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := New([]string{"peer-0", "peer-1", "peer-2", "peer-3"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	shrunk, err := New([]string{"peer-0", "peer-1"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50000
	moved := 0
	for id := 0; id < n; id++ {
		before, after := base.OwnerID(id), grown.OwnerID(id)
		if before != after {
			moved++
			if after != "peer-3" {
				t.Fatalf("id %d moved %q -> %q on add; only moves onto the new peer are allowed", id, before, after)
			}
		}
		if sAfter := shrunk.OwnerID(id); before != sAfter && before != "peer-2" {
			t.Fatalf("id %d moved %q -> %q on remove; only peer-2's keys may move", id, before, sAfter)
		}
	}
	// Expected movement onto the new peer is ~1/4 of keys; allow a wide
	// band so vnode placement variance never flakes the test.
	if frac := float64(moved) / n; frac > 0.45 {
		t.Fatalf("add moved %.1f%% of keys; consistent hashing should move ~25%%", 100*frac)
	}
	if moved == 0 {
		t.Fatal("adding a peer moved no keys at all")
	}
}

// The per-peer load should be within a reasonable factor of uniform.
func TestRoughBalance(t *testing.T) {
	peers := []string{"a", "b", "c", "d"}
	r, err := New(peers, 0) // default vnodes
	if err != nil {
		t.Fatal(err)
	}
	if r.NumVirtual() != len(peers)*DefaultVirtualNodes {
		t.Fatalf("NumVirtual = %d, want %d", r.NumVirtual(), len(peers)*DefaultVirtualNodes)
	}
	counts := map[string]int{}
	const n = 40000
	for id := 0; id < n; id++ {
		counts[r.OwnerID(id)]++
	}
	for _, p := range peers {
		frac := float64(counts[p]) / n
		if frac < 0.10 || frac > 0.45 {
			t.Fatalf("peer %q owns %.1f%% of keys; want roughly balanced around 25%%", p, 100*frac)
		}
	}
}

// Ranges must tile the circle: every key's owner by Owner() matches the
// peer whose range contains it, and the arcs of all peers are disjoint.
func TestRangesTileCircle(t *testing.T) {
	r, err := New([]string{"x", "y", "z"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	contains := func(rg Range, key uint64) bool {
		if rg.Wrapped {
			return key > rg.Start || key <= rg.End
		}
		return key > rg.Start && key <= rg.End
	}
	if r.Ranges("nope") != nil {
		t.Fatal("unknown peer returned ranges")
	}
	total := 0
	for _, p := range r.Peers() {
		total += len(r.Ranges(p))
	}
	if total != r.NumVirtual() {
		t.Fatalf("ranges across peers = %d arcs, want one per virtual node (%d)", total, r.NumVirtual())
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		key := rng.Uint64()
		owner := r.Owner(key)
		holders := 0
		for _, p := range r.Peers() {
			for _, rg := range r.Ranges(p) {
				if contains(rg, key) {
					holders++
					if p != owner {
						t.Fatalf("key %x inside a range of %q but owned by %q", key, p, owner)
					}
				}
			}
		}
		if holders != 1 {
			t.Fatalf("key %x contained in %d ranges, want exactly 1", key, holders)
		}
	}
}
