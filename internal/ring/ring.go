// Package ring implements the consistent-hash object routing of cluster
// mode: a fixed circle of 64-bit positions onto which every peer
// projects a set of virtual nodes, with each object ID owned by the
// peer whose virtual node follows the object's hash clockwise.
//
// Two properties make it the routing layer of a multi-node deployment:
//
//   - Determinism across processes and restarts: positions derive only
//     from peer names (FNV-1a + the splitmix64 finalizer), never from
//     process state, map iteration order, or the order the peer list
//     was supplied in. A router restarted with the same peer set routes
//     every object to the same peer.
//   - Bounded movement: adding or removing one peer reassigns only the
//     keys on the arcs its virtual nodes claim or release — about 1/P
//     of the keyspace — while every other key keeps its owner. Contrast
//     with modular hashing, where changing P moves almost every key.
//
// The ring deliberately knows nothing about transport or health: it is
// a pure (peer set → key → owner) function, so the coordinator can keep
// routing decisions stable while peers flap in and out of health.
package ring

import (
	"fmt"
	"hash/fnv"
	"sort"

	"pnn/internal/mcrand"
)

// DefaultVirtualNodes is the per-peer virtual node count used when the
// caller passes vnodes < 1. 64 keeps the expected per-peer load within
// a few percent of uniform for small clusters without bloating the
// point table.
const DefaultVirtualNodes = 64

// point is one virtual node: a position on the 2^64 circle and the
// index (into Ring.peers) of the peer that owns the arc ending at it.
type point struct {
	pos   uint64
	owner int
}

// Ring is an immutable consistent-hash ring over a set of named peers.
// Build one with New; all methods are safe for concurrent use.
type Ring struct {
	peers  []string // sorted, unique
	points []point  // sorted by (pos, owner)
}

// New builds a ring over the given peer names with vnodes virtual nodes
// per peer (vnodes < 1 uses DefaultVirtualNodes). The peer list order
// does not matter — names are sorted internally so equal peer sets
// always produce equal rings. Empty lists and duplicate names are
// rejected.
func New(peers []string, vnodes int) (*Ring, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("ring: no peers")
	}
	if vnodes < 1 {
		vnodes = DefaultVirtualNodes
	}
	sorted := append([]string(nil), peers...)
	sort.Strings(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return nil, fmt.Errorf("ring: duplicate peer %q", sorted[i])
		}
	}
	r := &Ring{peers: sorted, points: make([]point, 0, len(sorted)*vnodes)}
	for pi, name := range sorted {
		base := nameHash(name)
		for v := 0; v < vnodes; v++ {
			// Mixing the replica index through splitmix64 scatters one
			// peer's virtual nodes over the whole circle; deriving from
			// (name, replica) alone keeps positions process-independent.
			pos := mcrand.Mix64(base + uint64(v)*0x9e3779b97f4a7c15)
			r.points = append(r.points, point{pos: pos, owner: pi})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].pos != r.points[b].pos {
			return r.points[a].pos < r.points[b].pos
		}
		// Position collisions are astronomically unlikely; break the tie
		// by owner index so the ring stays a deterministic function of
		// the peer set even then.
		return r.points[a].owner < r.points[b].owner
	})
	return r, nil
}

// nameHash is the base position of a peer's virtual node sequence:
// FNV-1a over the name, finalized by splitmix64 so short names spread.
func nameHash(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return mcrand.Mix64(h.Sum64())
}

// Peers returns the peer names, sorted. The slice is shared; callers
// must not modify it.
func (r *Ring) Peers() []string { return r.peers }

// NumVirtual returns the total virtual node count.
func (r *Ring) NumVirtual() int { return len(r.points) }

// Owner returns the peer owning the raw 64-bit key: the owner of the
// first virtual node at or after the key, wrapping at the top of the
// circle.
func (r *Ring) Owner(key uint64) string {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= key })
	if i == len(r.points) {
		i = 0
	}
	return r.peers[r.points[i].owner]
}

// OwnerID returns the peer owning an object ID. IDs hash through the
// same splitmix64 finalizer the shard router uses, so consecutive IDs
// scatter uniformly.
func (r *Ring) OwnerID(id int) string { return r.Owner(mcrand.Mix64(uint64(id))) }

// Range is one ownership arc: the half-open key interval (Start, End]
// on the circle, where End is a virtual node position and Start the
// position of the preceding virtual node. Wrapped marks the arc that
// crosses the top of the circle (Start > End).
type Range struct {
	Start   uint64 `json:"start"`
	End     uint64 `json:"end"`
	Wrapped bool   `json:"wrapped,omitempty"`
}

// Ranges returns the ownership arcs of one peer, ascending by End. The
// union of all peers' ranges tiles the circle exactly.
func (r *Ring) Ranges(peer string) []Range {
	pi := sort.SearchStrings(r.peers, peer)
	if pi == len(r.peers) || r.peers[pi] != peer {
		return nil
	}
	var out []Range
	for i, pt := range r.points {
		if pt.owner != pi {
			continue
		}
		prev := r.points[(i+len(r.points)-1)%len(r.points)].pos
		out = append(out, Range{Start: prev, End: pt.pos, Wrapped: prev > pt.pos})
	}
	return out
}
