package rtree

import (
	"fmt"
	"math"
	"sort"
)

const (
	defaultMaxEntries = 32
	// reinsertFraction of entries is evicted and reinserted on the first
	// overflow of each level per insertion (the R* "forced reinsert").
	reinsertFraction = 0.3
)

// Item is a leaf payload: an opaque integer key chosen by the caller
// (typically an index into a parallel slice).
type Item int

type entry struct {
	box   Box
	child *node // nil at leaves
	item  Item  // valid at leaves
}

type node struct {
	level   int // 0 = leaf
	entries []entry
}

func (n *node) isLeaf() bool { return n.level == 0 }

func (n *node) bbox() Box {
	b := n.entries[0].box
	for _, e := range n.entries[1:] {
		b = b.Union(e.box)
	}
	return b
}

// Tree is an R*-tree mapping 3D boxes to Items. The zero value is not
// usable; call New. Tree is not safe for concurrent mutation; concurrent
// readers are fine once built.
type Tree struct {
	root       *node
	size       int
	maxEntries int
	minEntries int
}

// New returns an empty tree with the given node capacity; cap < 4 falls
// back to the default.
func New(capacity int) *Tree {
	if capacity < 4 {
		capacity = defaultMaxEntries
	}
	return &Tree{
		root:       &node{level: 0},
		maxEntries: capacity,
		minEntries: capacity * 2 / 5, // 40%, the R* recommendation
	}
}

// Len returns the number of stored items.
func (t *Tree) Len() int { return t.size }

// Clone returns a deep copy of the tree. Boxes and items are values, so
// the copy shares no mutable structure with the original: inserts and
// deletes on either tree leave the other untouched. Cost is linear in
// the number of nodes.
func (t *Tree) Clone() *Tree {
	return &Tree{
		root:       cloneNode(t.root),
		size:       t.size,
		maxEntries: t.maxEntries,
		minEntries: t.minEntries,
	}
}

func cloneNode(n *node) *node {
	cp := &node{level: n.level, entries: make([]entry, len(n.entries))}
	copy(cp.entries, n.entries)
	if !n.isLeaf() {
		for i := range cp.entries {
			cp.entries[i].child = cloneNode(cp.entries[i].child)
		}
	}
	return cp
}

// Insert adds item with bounding box b.
func (t *Tree) Insert(b Box, item Item) {
	t.insertEntry(entry{box: b, item: item}, 0, make(map[int]bool))
	t.size++
}

// insertEntry places e at the given level, applying R* overflow treatment.
// reinserted tracks which levels already used forced reinsert during the
// current (possibly recursive) insertion.
func (t *Tree) insertEntry(e entry, level int, reinserted map[int]bool) {
	n := t.chooseSubtree(e.box, level)
	n.entries = append(n.entries, e)
	t.overflowTreatment(n, reinserted)
}

// chooseSubtree descends from the root to the node at the target level
// using the R* criteria: least overlap enlargement for nodes pointing to
// leaves, least volume enlargement otherwise.
func (t *Tree) chooseSubtree(b Box, level int) *node {
	n := t.root
	for n.level > level {
		var best *entry
		if n.level == 1 {
			// Children are leaves: minimize overlap enlargement.
			bestOverlap, bestEnl, bestVol := inf, inf, inf
			for i := range n.entries {
				c := &n.entries[i]
				u := c.box.Union(b)
				overlap := 0.0
				for j := range n.entries {
					if j == i {
						continue
					}
					overlap += u.OverlapVolume(n.entries[j].box) - c.box.OverlapVolume(n.entries[j].box)
				}
				enl := c.box.Enlargement(b)
				vol := c.box.Volume()
				if overlap < bestOverlap ||
					(overlap == bestOverlap && (enl < bestEnl ||
						(enl == bestEnl && vol < bestVol))) {
					best, bestOverlap, bestEnl, bestVol = c, overlap, enl, vol
				}
			}
		} else {
			bestEnl, bestVol := inf, inf
			for i := range n.entries {
				c := &n.entries[i]
				enl := c.box.Enlargement(b)
				vol := c.box.Volume()
				if enl < bestEnl || (enl == bestEnl && vol < bestVol) {
					best, bestEnl, bestVol = c, enl, vol
				}
			}
		}
		best.box = best.box.Union(b)
		n = best.child
	}
	return n
}

// overflowTreatment resolves an overfull node by forced reinsert (once per
// level per insertion) or split, propagating splits upward.
func (t *Tree) overflowTreatment(n *node, reinserted map[int]bool) {
	if len(n.entries) <= t.maxEntries {
		return
	}
	if n != t.root && !reinserted[n.level] {
		reinserted[n.level] = true
		t.reinsert(n, reinserted)
		return
	}
	left, right := t.split(n)
	if n == t.root {
		t.root = &node{
			level: n.level + 1,
			entries: []entry{
				{box: left.bbox(), child: left},
				{box: right.bbox(), child: right},
			},
		}
		return
	}
	// Replace n's content with left and register right at the parent.
	parent, idx := t.findParent(t.root, n)
	if parent == nil {
		panic("rtree: orphan node during split")
	}
	*n = *left
	parent.entries[idx].box = n.bbox()
	parent.entries = append(parent.entries, entry{box: right.bbox(), child: right})
	t.overflowTreatment(parent, reinserted)
}

// reinsert evicts the reinsertFraction of n's entries farthest from its
// center and reinserts them from the top (R* forced reinsert).
func (t *Tree) reinsert(n *node, reinserted map[int]bool) {
	c := n.bbox().Center()
	sort.SliceStable(n.entries, func(i, j int) bool {
		return centerDist2(n.entries[i].box.Center(), c) < centerDist2(n.entries[j].box.Center(), c)
	})
	k := int(float64(len(n.entries)) * reinsertFraction)
	if k < 1 {
		k = 1
	}
	evicted := make([]entry, k)
	copy(evicted, n.entries[len(n.entries)-k:])
	n.entries = n.entries[:len(n.entries)-k]
	t.adjustUpward(n)
	for _, e := range evicted {
		t.insertEntry(e, n.level, reinserted)
	}
}

// split divides an overfull node using the R* topological split: choose the
// axis with minimal margin sum, then the distribution with minimal overlap
// (ties: minimal volume).
func (t *Tree) split(n *node) (*node, *node) {
	entries := n.entries
	m := t.minEntries
	bestAxis, bestSortMax := -1, false
	bestMargin := inf
	for axis := 0; axis < Dims; axis++ {
		for _, byMax := range []bool{false, true} {
			sortEntries(entries, axis, byMax)
			margin := 0.0
			for k := m; k <= len(entries)-m; k++ {
				margin += bboxOf(entries[:k]).Margin() + bboxOf(entries[k:]).Margin()
			}
			if margin < bestMargin {
				bestMargin, bestAxis, bestSortMax = margin, axis, byMax
			}
		}
	}
	sortEntries(entries, bestAxis, bestSortMax)
	bestK, bestOverlap, bestVol := -1, inf, inf
	for k := m; k <= len(entries)-m; k++ {
		lb, rb := bboxOf(entries[:k]), bboxOf(entries[k:])
		overlap := lb.OverlapVolume(rb)
		vol := lb.Volume() + rb.Volume()
		if overlap < bestOverlap || (overlap == bestOverlap && vol < bestVol) {
			bestK, bestOverlap, bestVol = k, overlap, vol
		}
	}
	left := &node{level: n.level, entries: append([]entry(nil), entries[:bestK]...)}
	right := &node{level: n.level, entries: append([]entry(nil), entries[bestK:]...)}
	return left, right
}

func sortEntries(es []entry, axis int, byMax bool) {
	sort.SliceStable(es, func(i, j int) bool {
		if byMax {
			return es[i].box.Max[axis] < es[j].box.Max[axis]
		}
		return es[i].box.Min[axis] < es[j].box.Min[axis]
	})
}

func bboxOf(es []entry) Box {
	b := es[0].box
	for _, e := range es[1:] {
		b = b.Union(e.box)
	}
	return b
}

// findParent locates the parent of target and the index of target's entry.
func (t *Tree) findParent(cur *node, target *node) (*node, int) {
	if cur.isLeaf() {
		return nil, -1
	}
	for i := range cur.entries {
		c := cur.entries[i].child
		if c == target {
			return cur, i
		}
		if c.level > target.level {
			if p, idx := t.findParent(c, target); p != nil {
				return p, idx
			}
		}
	}
	return nil, -1
}

// adjustUpward recomputes bounding boxes on the path from n to the root.
func (t *Tree) adjustUpward(n *node) {
	for n != t.root {
		parent, idx := t.findParent(t.root, n)
		if parent == nil {
			return
		}
		parent.entries[idx].box = n.bbox()
		n = parent
	}
}

// Search invokes fn for every stored item whose box intersects query.
// Returning false from fn stops the search early.
func (t *Tree) Search(query Box, fn func(Box, Item) bool) {
	t.search(t.root, query, fn)
}

func (t *Tree) search(n *node, query Box, fn func(Box, Item) bool) bool {
	for i := range n.entries {
		e := &n.entries[i]
		if !e.box.Intersects(query) {
			continue
		}
		if n.isLeaf() {
			if !fn(e.box, e.item) {
				return false
			}
		} else if !t.search(e.child, query, fn) {
			return false
		}
	}
	return true
}

// Delete removes one item with the exact box b and key item. It reports
// whether a matching entry was found. Underfull nodes along the path are
// dissolved and their entries reinserted (the R-tree condense step).
func (t *Tree) Delete(b Box, item Item) bool {
	leaf := t.findLeaf(t.root, b, item)
	if leaf == nil {
		return false
	}
	for i := range leaf.entries {
		if leaf.entries[i].item == item && leaf.entries[i].box == b {
			leaf.entries = append(leaf.entries[:i], leaf.entries[i+1:]...)
			break
		}
	}
	t.size--
	t.condense(leaf)
	// Shrink the root if it has a single child.
	for !t.root.isLeaf() && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
	}
	return true
}

func (t *Tree) findLeaf(n *node, b Box, item Item) *node {
	if n.isLeaf() {
		for i := range n.entries {
			if n.entries[i].item == item && n.entries[i].box == b {
				return n
			}
		}
		return nil
	}
	for i := range n.entries {
		if n.entries[i].box.Contains(b) {
			if leaf := t.findLeaf(n.entries[i].child, b, item); leaf != nil {
				return leaf
			}
		}
	}
	return nil
}

// condense removes underfull nodes from leaf to root, collecting orphaned
// entries for reinsertion.
func (t *Tree) condense(n *node) {
	var orphans []entry
	var orphanLevels []int
	for n != t.root {
		parent, idx := t.findParent(t.root, n)
		if parent == nil {
			break
		}
		if len(n.entries) < t.minEntries {
			parent.entries = append(parent.entries[:idx], parent.entries[idx+1:]...)
			for _, e := range n.entries {
				orphans = append(orphans, e)
				orphanLevels = append(orphanLevels, n.level)
			}
		} else {
			parent.entries[idx].box = n.bbox()
		}
		n = parent
	}
	for i, e := range orphans {
		t.insertEntry(e, orphanLevels[i], make(map[int]bool))
	}
}

// CheckInvariants validates structural invariants: parent boxes contain
// child boxes, levels decrease monotonically, and node occupancy is within
// bounds (root excepted). Intended for tests.
func (t *Tree) CheckInvariants() error {
	return t.check(t.root, nil)
}

func (t *Tree) check(n *node, parentBox *Box) error {
	if n != t.root {
		if len(n.entries) < t.minEntries || len(n.entries) > t.maxEntries {
			return fmt.Errorf("rtree: node at level %d has %d entries (bounds %d..%d)",
				n.level, len(n.entries), t.minEntries, t.maxEntries)
		}
	} else if len(n.entries) > t.maxEntries {
		return fmt.Errorf("rtree: root overfull with %d entries", len(n.entries))
	}
	for i := range n.entries {
		e := &n.entries[i]
		if parentBox != nil && !parentBox.Contains(e.box) {
			return fmt.Errorf("rtree: entry box escapes parent box at level %d", n.level)
		}
		if !n.isLeaf() {
			if e.child == nil {
				return fmt.Errorf("rtree: internal entry without child at level %d", n.level)
			}
			if e.child.level != n.level-1 {
				return fmt.Errorf("rtree: child level %d under node level %d", e.child.level, n.level)
			}
			bb := e.child.bbox()
			if !e.box.Contains(bb) {
				return fmt.Errorf("rtree: stored box does not cover child bbox at level %d", n.level)
			}
			if err := t.check(e.child, &e.box); err != nil {
				return err
			}
		}
	}
	return nil
}

var inf = math.Inf(1)
