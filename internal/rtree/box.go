// Package rtree implements a three-dimensional R*-tree (Beckmann et al.,
// SIGMOD 1990 — reference [31] of the paper) over (x, y, t) boxes. It is
// the index substrate beneath the UST-tree of Section 6: each leaf entry is
// the spatio-temporal minimum bounding rectangle of one observation gap of
// one uncertain object.
package rtree

import "math"

// Dims is the dimensionality of the index: x, y and time.
const Dims = 3

// Box is a closed axis-aligned box in (x, y, t) space.
type Box struct {
	Min, Max [Dims]float64
}

// NewBox returns the box spanning the given coordinate ranges. It panics
// if any minimum exceeds its maximum, which always indicates a caller bug.
func NewBox(xmin, xmax, ymin, ymax, tmin, tmax float64) Box {
	if xmin > xmax || ymin > ymax || tmin > tmax {
		panic("rtree: inverted box")
	}
	return Box{Min: [Dims]float64{xmin, ymin, tmin}, Max: [Dims]float64{xmax, ymax, tmax}}
}

// Intersects reports whether b and o share at least one point.
func (b Box) Intersects(o Box) bool {
	for d := 0; d < Dims; d++ {
		if b.Min[d] > o.Max[d] || o.Min[d] > b.Max[d] {
			return false
		}
	}
	return true
}

// Contains reports whether o lies entirely inside b.
func (b Box) Contains(o Box) bool {
	for d := 0; d < Dims; d++ {
		if o.Min[d] < b.Min[d] || o.Max[d] > b.Max[d] {
			return false
		}
	}
	return true
}

// Union returns the minimum bounding box of b and o.
func (b Box) Union(o Box) Box {
	var out Box
	for d := 0; d < Dims; d++ {
		out.Min[d] = math.Min(b.Min[d], o.Min[d])
		out.Max[d] = math.Max(b.Max[d], o.Max[d])
	}
	return out
}

// Volume returns the box's volume.
func (b Box) Volume() float64 {
	v := 1.0
	for d := 0; d < Dims; d++ {
		v *= b.Max[d] - b.Min[d]
	}
	return v
}

// Margin returns the sum of the box's edge lengths (the R* margin metric).
func (b Box) Margin() float64 {
	m := 0.0
	for d := 0; d < Dims; d++ {
		m += b.Max[d] - b.Min[d]
	}
	return m
}

// Enlargement returns how much b's volume would grow to accommodate o.
func (b Box) Enlargement(o Box) float64 {
	return b.Union(o).Volume() - b.Volume()
}

// OverlapVolume returns the volume of the intersection of b and o.
func (b Box) OverlapVolume(o Box) float64 {
	v := 1.0
	for d := 0; d < Dims; d++ {
		lo := math.Max(b.Min[d], o.Min[d])
		hi := math.Min(b.Max[d], o.Max[d])
		if hi <= lo {
			return 0
		}
		v *= hi - lo
	}
	return v
}

// Center returns the box's center point.
func (b Box) Center() [Dims]float64 {
	var c [Dims]float64
	for d := 0; d < Dims; d++ {
		c[d] = (b.Min[d] + b.Max[d]) / 2
	}
	return c
}

func centerDist2(a, b [Dims]float64) float64 {
	s := 0.0
	for d := 0; d < Dims; d++ {
		diff := a[d] - b[d]
		s += diff * diff
	}
	return s
}
