package rtree

import (
	"math/rand"
	"sort"
	"testing"
)

func randBox(rng *rand.Rand) Box {
	var b Box
	for d := 0; d < Dims; d++ {
		lo := rng.Float64() * 100
		b.Min[d] = lo
		b.Max[d] = lo + rng.Float64()*10
	}
	return b
}

func TestBoxOps(t *testing.T) {
	a := NewBox(0, 2, 0, 2, 0, 2)
	b := NewBox(1, 3, 1, 3, 1, 3)
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("expected intersection")
	}
	c := NewBox(3, 4, 0, 1, 0, 1)
	if a.Intersects(c) {
		t.Error("unexpected intersection")
	}
	u := a.Union(b)
	if !u.Contains(a) || !u.Contains(b) {
		t.Error("union must contain operands")
	}
	if got := a.Volume(); got != 8 {
		t.Errorf("Volume = %v", got)
	}
	if got := a.Margin(); got != 6 {
		t.Errorf("Margin = %v", got)
	}
	if got := a.OverlapVolume(b); got != 1 {
		t.Errorf("OverlapVolume = %v", got)
	}
	if got := a.OverlapVolume(c); got != 0 {
		t.Errorf("disjoint OverlapVolume = %v", got)
	}
	if got := a.Enlargement(b); got != u.Volume()-8 {
		t.Errorf("Enlargement = %v", got)
	}
}

func TestNewBoxPanicsOnInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for inverted box")
		}
	}()
	NewBox(1, 0, 0, 1, 0, 1)
}

func TestInsertSearchSmall(t *testing.T) {
	tr := New(0)
	boxes := []Box{
		NewBox(0, 1, 0, 1, 0, 1),
		NewBox(5, 6, 5, 6, 5, 6),
		NewBox(0.5, 1.5, 0.5, 1.5, 0.5, 1.5),
	}
	for i, b := range boxes {
		tr.Insert(b, Item(i))
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	var hits []Item
	tr.Search(NewBox(0, 1, 0, 1, 0, 1), func(_ Box, it Item) bool {
		hits = append(hits, it)
		return true
	})
	sort.Slice(hits, func(i, j int) bool { return hits[i] < hits[j] })
	if len(hits) != 2 || hits[0] != 0 || hits[1] != 2 {
		t.Errorf("hits = %v, want [0 2]", hits)
	}
}

func TestSearchEarlyStop(t *testing.T) {
	tr := New(0)
	for i := 0; i < 100; i++ {
		tr.Insert(NewBox(0, 1, 0, 1, 0, 1), Item(i))
	}
	n := 0
	tr.Search(NewBox(0, 1, 0, 1, 0, 1), func(_ Box, _ Item) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("early stop visited %d, want 5", n)
	}
}

// TestAgainstBruteForce inserts random boxes and cross-checks every range
// query against a linear scan, validating invariants along the way.
func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := New(8) // small capacity to force deep trees and many splits
	var boxes []Box
	for i := 0; i < 800; i++ {
		b := randBox(rng)
		boxes = append(boxes, b)
		tr.Insert(b, Item(i))
		if i%97 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != len(boxes) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(boxes))
	}
	for q := 0; q < 50; q++ {
		query := randBox(rng)
		want := map[Item]bool{}
		for i, b := range boxes {
			if b.Intersects(query) {
				want[Item(i)] = true
			}
		}
		got := map[Item]bool{}
		tr.Search(query, func(_ Box, it Item) bool {
			if got[it] {
				t.Fatalf("duplicate item %d in search results", it)
			}
			got[it] = true
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d hits, want %d", q, len(got), len(want))
		}
		for it := range want {
			if !got[it] {
				t.Fatalf("query %d: missing item %d", q, it)
			}
		}
	}
}

func TestDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := New(8)
	var boxes []Box
	const n = 400
	for i := 0; i < n; i++ {
		b := randBox(rng)
		boxes = append(boxes, b)
		tr.Insert(b, Item(i))
	}
	// Delete half, in random order.
	perm := rng.Perm(n)
	deleted := map[Item]bool{}
	for _, i := range perm[:n/2] {
		if !tr.Delete(boxes[i], Item(i)) {
			t.Fatalf("Delete(%d) found nothing", i)
		}
		deleted[Item(i)] = true
	}
	if tr.Len() != n/2 {
		t.Fatalf("Len after deletes = %d, want %d", tr.Len(), n/2)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Remaining items must all be findable; deleted ones must not.
	everything := NewBox(-1e9, 1e9, -1e9, 1e9, -1e9, 1e9)
	got := map[Item]bool{}
	tr.Search(everything, func(_ Box, it Item) bool {
		got[it] = true
		return true
	})
	for i := 0; i < n; i++ {
		it := Item(i)
		if deleted[it] && got[it] {
			t.Errorf("deleted item %d still present", i)
		}
		if !deleted[it] && !got[it] {
			t.Errorf("live item %d missing", i)
		}
	}
	// Deleting a non-existent item reports false.
	if tr.Delete(NewBox(0, 1, 0, 1, 0, 1), Item(99999)) {
		t.Error("Delete of absent item returned true")
	}
}

func TestDeleteAll(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := New(6)
	var boxes []Box
	const n = 150
	for i := 0; i < n; i++ {
		b := randBox(rng)
		boxes = append(boxes, b)
		tr.Insert(b, Item(i))
	}
	for i := 0; i < n; i++ {
		if !tr.Delete(boxes[i], Item(i)) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
	hits := 0
	tr.Search(NewBox(-1e9, 1e9, -1e9, 1e9, -1e9, 1e9), func(_ Box, _ Item) bool {
		hits++
		return true
	})
	if hits != 0 {
		t.Errorf("%d stale hits after deleting all", hits)
	}
	// Tree must be reusable.
	tr.Insert(boxes[0], Item(0))
	if tr.Len() != 1 {
		t.Error("tree not reusable after emptying")
	}
}

func TestDuplicateBoxes(t *testing.T) {
	tr := New(4)
	b := NewBox(1, 2, 1, 2, 1, 2)
	for i := 0; i < 50; i++ {
		tr.Insert(b, Item(i))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	count := 0
	tr.Search(b, func(_ Box, _ Item) bool {
		count++
		return true
	})
	if count != 50 {
		t.Errorf("found %d duplicates, want 50", count)
	}
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	boxes := make([]Box, b.N)
	for i := range boxes {
		boxes[i] = randBox(rng)
	}
	tr := New(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(boxes[i], Item(i))
	}
}

func BenchmarkSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := New(0)
	for i := 0; i < 20000; i++ {
		tr.Insert(randBox(rng), Item(i))
	}
	queries := make([]Box, 256)
	for i := range queries {
		queries[i] = randBox(rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Search(queries[i%len(queries)], func(_ Box, _ Item) bool { return true })
	}
}
