package cluster

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// ErrPeerUnavailable marks a gather that could not complete
// consistently: a peer RPC failed (after the hedged retry), timed out,
// or the per-request snapshots could not be reconciled. The API layer
// maps it to HTTP 503 with code "peer_unavailable"; a response wrapping
// it never carries a partial answer.
var ErrPeerUnavailable = errors.New("cluster: peer unavailable")

// rpcError is a structured error a peer returned (its /internal
// envelope decoded): the write-rejection and validation cases that must
// NOT be classified as peer unavailability — the peer is healthy, it
// just said no.
type rpcError struct {
	Code    string
	Message string
	Status  int
}

func (e *rpcError) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// peerClient speaks the /internal RPC surface of one peer.
type peerClient struct {
	name string
	base string // e.g. http://127.0.0.1:9001
	hc   *http.Client

	timeout time.Duration // per-attempt budget
	hedge   time.Duration // straggler delay before the one hedged retry

	mu        sync.Mutex
	healthy   bool
	lastErr   string
	lastProbe time.Time
	health    HealthInfo
}

func newPeerClient(name, base string, timeout, hedge time.Duration) *peerClient {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	if hedge <= 0 {
		hedge = timeout / 4
	}
	return &peerClient{
		name:    name,
		base:    base,
		hc:      &http.Client{},
		timeout: timeout,
		hedge:   hedge,
	}
}

// call performs one POST (or GET when in is nil) against path and
// decodes the JSON answer into out. Transport failures, timeouts and
// 5xx answers wrap ErrPeerUnavailable; structured envelopes with a
// non-5xx status come back as *rpcError.
func (p *peerClient) call(ctx context.Context, path string, in, out any) error {
	ctx, cancel := context.WithTimeout(ctx, p.timeout)
	defer cancel()
	var req *http.Request
	var err error
	if in == nil {
		req, err = http.NewRequestWithContext(ctx, http.MethodGet, p.base+path, nil)
	} else {
		var body bytes.Buffer
		if err := json.NewEncoder(&body).Encode(in); err != nil {
			return err
		}
		req, err = http.NewRequestWithContext(ctx, http.MethodPost, p.base+path, &body)
		if err == nil {
			req.Header.Set("Content-Type", "application/json")
		}
	}
	if err != nil {
		return err
	}
	// Ask for gzip explicitly (disabling the transport's transparent
	// handling) so large scatter payloads travel compressed; servers
	// that ignore the header still answer identity, which decodes the
	// same below.
	req.Header.Set("Accept-Encoding", "gzip")
	resp, err := p.hc.Do(req)
	if err != nil {
		return fmt.Errorf("%w: %s: %v", ErrPeerUnavailable, p.name, err)
	}
	defer resp.Body.Close()
	var body io.Reader = io.LimitReader(resp.Body, 256<<20)
	if resp.Header.Get("Content-Encoding") == "gzip" {
		gz, gzErr := gzip.NewReader(body)
		if gzErr != nil {
			return fmt.Errorf("%w: %s: gzip response: %v", ErrPeerUnavailable, p.name, gzErr)
		}
		defer gz.Close()
		body = io.LimitReader(gz, 256<<20)
	}
	raw, err := io.ReadAll(body)
	if err != nil {
		return fmt.Errorf("%w: %s: reading response: %v", ErrPeerUnavailable, p.name, err)
	}
	if resp.StatusCode != http.StatusOK {
		var env ErrorJSON
		if jsonErr := json.Unmarshal(raw, &env); jsonErr == nil && env.Error.Code != "" && resp.StatusCode < 500 {
			return &rpcError{Code: env.Error.Code, Message: env.Error.Message, Status: resp.StatusCode}
		}
		return fmt.Errorf("%w: %s: %s: HTTP %d", ErrPeerUnavailable, p.name, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// callHedged is call with one hedged retry: if the first attempt has
// not answered within the hedge delay, a second identical request is
// fired and the first success wins. Only used for idempotent reads
// (scatter, health, touch) — a straggling peer costs one duplicate
// probe instead of the whole gather's latency.
func (p *peerClient) callHedged(ctx context.Context, path string, in, out any) error {
	type result struct {
		err error
		raw json.RawMessage
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan result, 2)
	attempt := func() {
		var raw json.RawMessage
		err := p.call(ctx, path, in, &raw)
		results <- result{err: err, raw: raw}
	}
	go attempt()
	var firstErr error
	timer := time.NewTimer(p.hedge)
	defer timer.Stop()
	launched := 1
	for done := 0; done < launched; {
		select {
		case <-timer.C:
			if launched == 1 {
				launched = 2
				go attempt()
			}
		case r := <-results:
			if r.err == nil {
				if out == nil {
					return nil
				}
				return json.Unmarshal(r.raw, out)
			}
			done++
			if firstErr == nil {
				firstErr = r.err
			}
			// A structured rejection is deterministic — the hedge would
			// only repeat it.
			var rerr *rpcError
			if errors.As(r.err, &rerr) {
				return r.err
			}
			if launched == 1 {
				launched = 2
				go attempt()
			}
		}
	}
	return firstErr
}

// probe refreshes the peer's health record and returns it.
func (p *peerClient) probe(ctx context.Context) (HealthInfo, error) {
	var h HealthInfo
	err := p.call(ctx, "/internal/health", nil, &h)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.lastProbe = time.Now()
	if err != nil {
		p.healthy = false
		p.lastErr = err.Error()
		return HealthInfo{}, err
	}
	p.healthy = true
	p.lastErr = ""
	p.health = h
	return h, nil
}

// status returns the last known health view of the peer.
func (p *peerClient) status() (healthy bool, lastErr string, lastProbe time.Time, h HealthInfo) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.healthy, p.lastErr, p.lastProbe, p.health
}
