package cluster

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"pnn"
	"pnn/internal/geo"
	"pnn/internal/query"
	"pnn/internal/ring"
	"pnn/internal/shard"
	"pnn/internal/sub"
)

// Peer names one shard peer and its /internal RPC base URL.
type Peer struct {
	Name string
	URL  string
}

// Config tunes a Coordinator.
type Config struct {
	// Peers are the shard peers in version-vector order: the merged
	// vector every response carries is the peers' vectors concatenated
	// in exactly this order, so the list must agree across restarts for
	// clients comparing vectors.
	Peers []Peer
	// VirtualNodes is the per-peer virtual node count of the consistent-
	// hash ring; 0 uses ring.DefaultVirtualNodes.
	VirtualNodes int
	// Timeout bounds each RPC attempt; 0 means 10s.
	Timeout time.Duration
	// HedgeDelay is how long a scatter waits on a straggling peer before
	// firing its one hedged retry; 0 means Timeout/4.
	HedgeDelay time.Duration
	// ProbeInterval paces the background health probes; 0 means 2s.
	ProbeInterval time.Duration
	// Workers is the parallelism of the coordinator-side gather
	// (evaluating merged worlds); 0 uses GOMAXPROCS. It never affects
	// answer bytes.
	Workers int
	// SweepInterval bounds how long routed writes may accumulate
	// standing-query invalidations before one grouped re-evaluation
	// sweep drains them; 0 uses pnn.DefaultSubscriptionSweepInterval,
	// negative sweeps on every write.
	SweepInterval time.Duration
}

// coordRegion is the coordinator's stored influence region of a
// standing query — the wire form of the peer-side influenceRegion, kept
// pre-encoded so every write-path touch RPC reuses it verbatim.
type coordRegion struct {
	q      QueryJSON
	ts, te int
	bound  []float64
}

// Coordinator is the router of cluster mode: it owns consistent-hash
// object routing for ingest, scatters query work to the shard peers and
// gathers merged answers that are byte-identical to a single-process
// shard.Set over the union of the peers' objects at the same snapshot
// versions and seed. It implements the same backend surface as
// pnn.Processor, so the HTTP server serves either without caring which.
type Coordinator struct {
	net     *pnn.Network
	cfg     Config
	ring    *ring.Ring
	order   []string // configured peer order = version-vector concat order
	clients map[string]*peerClient
	subs    *sub.Registry

	samples int // agreed per-query sample budget, set by Bootstrap

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewCoordinator wires a coordinator over the given peers. The network
// must be the same one every peer loaded — the gather computes
// distances against its state space. Call Bootstrap before serving.
func NewCoordinator(net *pnn.Network, cfg Config) (*Coordinator, error) {
	if len(cfg.Peers) == 0 {
		return nil, errors.New("cluster: no peers configured")
	}
	names := make([]string, len(cfg.Peers))
	clients := make(map[string]*peerClient, len(cfg.Peers))
	for i, p := range cfg.Peers {
		if p.Name == "" || p.URL == "" {
			return nil, fmt.Errorf("cluster: peer %d needs both name and url", i)
		}
		if _, dup := clients[p.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate peer name %q", p.Name)
		}
		names[i] = p.Name
		clients[p.Name] = newPeerClient(p.Name, p.URL, cfg.Timeout, cfg.HedgeDelay)
	}
	rg, err := ring.New(names, cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	sweep := cfg.SweepInterval
	if sweep == 0 {
		sweep = pnn.DefaultSubscriptionSweepInterval
	} else if sweep < 0 {
		sweep = 0
	}
	c := &Coordinator{
		net:     net,
		cfg:     cfg,
		ring:    rg,
		order:   names,
		clients: clients,
		stop:    make(chan struct{}),
	}
	c.subs = sub.New(sub.Options{
		Workers:       runtime.GOMAXPROCS(0),
		GroupEval:     c.evalStandingGroup,
		SweepInterval: sweep,
	})
	return c, nil
}

// SetSweepInterval tunes the sweep scheduler's bounded delay, exactly
// like pnn.Processor.SetSweepInterval.
func (c *Coordinator) SetSweepInterval(d time.Duration) { c.subs.SetSweepInterval(d) }

// SetSubscriptionGrouping toggles grouped re-evaluation of compatible
// standing queries, exactly like pnn.Processor.SetSubscriptionGrouping.
func (c *Coordinator) SetSubscriptionGrouping(enabled bool) { c.subs.SetGrouping(enabled) }

// Bootstrap probes every peer until it answers (retrying until ctx
// expires), verifies the static parameters the determinism contract
// needs to agree — state-space size and sample budget — and starts the
// background health probe loop. It must succeed before the coordinator
// serves queries.
func (c *Coordinator) Bootstrap(ctx context.Context) error {
	for _, name := range c.order {
		pc := c.clients[name]
		for {
			h, err := pc.probe(ctx)
			if err == nil {
				if h.States != c.net.NumStates() {
					return fmt.Errorf("cluster: peer %s serves %d states, router network has %d",
						name, h.States, c.net.NumStates())
				}
				if c.samples == 0 {
					c.samples = h.Samples
				} else if h.Samples != c.samples {
					return fmt.Errorf("cluster: peer %s sample budget %d disagrees with %d",
						name, h.Samples, c.samples)
				}
				break
			}
			select {
			case <-ctx.Done():
				return fmt.Errorf("cluster: peer %s never became healthy: %w", name, err)
			case <-time.After(200 * time.Millisecond):
			}
		}
	}
	interval := c.cfg.ProbeInterval
	if interval <= 0 {
		interval = 2 * time.Second
	}
	c.wg.Add(1)
	go c.probeLoop(interval)
	return nil
}

func (c *Coordinator) probeLoop(interval time.Duration) {
	defer c.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			var wg sync.WaitGroup
			for _, name := range c.order {
				wg.Add(1)
				go func(pc *peerClient) {
					defer wg.Done()
					pc.probe(context.Background())
				}(c.clients[name])
			}
			wg.Wait()
		}
	}
}

// encodeQuery captures q's positions over [ts, te] for the wire.
func encodeQuery(q query.Query, ts, te int) QueryJSON {
	pts := make([]PointJSON, te-ts+1)
	for t := ts; t <= te; t++ {
		p := q.At(t)
		pts[t-ts] = PointJSON{X: p.X, Y: p.Y}
	}
	return QueryJSON{Start: ts, Points: pts}
}

// Decode rebuilds the query a peer evaluates from its wire positions.
// Pruning and evaluation only read positions inside the window, so the
// trajectory form reproduces any query reference bit-identically there.
func (q QueryJSON) Decode() query.Query {
	pts := make([]geo.Point, len(q.Points))
	for i, p := range q.Points {
		pts[i] = geo.Point{X: p.X, Y: p.Y}
	}
	return query.TrajectoryQuery(q.Start, pts)
}

// versionFromParts merges the per-peer snapshot identities of one
// gather. The vector is the concatenation in configured peer order; the
// composite maximum is Σ peer versions − (P−1), which equals 1 + total
// accepted writes — the same value a single process reports for the
// same write sequence, whatever the layout.
func versionFromParts(parts []*shard.ScatterResult) pnn.VersionInfo {
	var vi pnn.VersionInfo
	for _, p := range parts {
		vi.Vector = append(vi.Vector, p.Versions...)
		vi.Max += p.Version
	}
	vi.Max -= int64(len(parts) - 1)
	return vi
}

// cachedVersion is the last probed cluster version view — the identity
// attached to responses that fail before any scatter completes.
func (c *Coordinator) cachedVersion() pnn.VersionInfo {
	var vi pnn.VersionInfo
	for _, name := range c.order {
		_, _, _, h := c.clients[name].status()
		vi.Vector = append(vi.Vector, h.Versions...)
		vi.Max += h.Version
	}
	vi.Max -= int64(len(c.order) - 1)
	return vi
}

// scatterAll fans one shared-world group spec to every peer and merges
// the answers into a replayable gather input. Any peer failure (after
// the hedged retry) aborts the whole gather — never a partial answer.
func (c *Coordinator) scatterAll(ctx context.Context, spec shard.GroupSpec) (shard.GatherInput, pnn.VersionInfo, error) {
	wreq := &ScatterRequest{
		Query: encodeQuery(spec.Q, spec.Ts, spec.Te),
		Ts:    spec.Ts, Te: spec.Te, K: spec.K, Seed: spec.Seed,
	}
	if spec.Conf.Enabled() {
		wreq.Confidence = &ConfidenceJSON{Eps: spec.Conf.Eps, Delta: spec.Conf.Delta, MaxSamples: spec.Conf.MaxSamples}
	}
	parts := make([]*shard.ScatterResult, len(c.order))
	errs := make([]error, len(c.order))
	var wg sync.WaitGroup
	for i, name := range c.order {
		wg.Add(1)
		go func(i int, pc *peerClient) {
			defer wg.Done()
			var resp ScatterResponse
			if err := pc.callHedged(ctx, "/internal/scatter", wreq, &resp); err != nil {
				errs[i] = err
				return
			}
			parts[i] = ScatterFromWire(&resp)
		}(i, c.clients[name])
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return shard.GatherInput{}, c.cachedVersion(),
				fmt.Errorf("scatter to %s: %w", c.order[i], err)
		}
	}
	in, err := shard.MergeScatters(parts)
	if err != nil {
		// Peers answered but their views cannot be reconciled (e.g. an
		// object moved between peers mid-rebalance): unavailability, not
		// a partial answer.
		return shard.GatherInput{}, c.cachedVersion(), fmt.Errorf("%w: %v", ErrPeerUnavailable, err)
	}
	in.Space = c.net.Space()
	in.Workers = c.cfg.Workers
	if in.Workers < 1 {
		in.Workers = runtime.GOMAXPROCS(0)
	}
	return in, versionFromParts(parts), nil
}

// runGroup is the remote RunSharedInfluence: scatter, merge, replay-
// gather. Answer bytes match the single-process path at the same
// snapshot versions and seed by construction.
func (c *Coordinator) runGroup(ctx context.Context, spec shard.GroupSpec, items []shard.GroupItem) ([]shard.GroupAnswer, query.Stats, shard.Influence, pnn.VersionInfo, error) {
	in, vi, err := c.scatterAll(ctx, spec)
	if err != nil {
		return nil, query.Stats{}, shard.Influence{}, vi, err
	}
	answers, stats, inf, err := shard.Gather(spec, items, in)
	return answers, stats, inf, vi, err
}

// runStanding answers one request, additionally reporting the influence
// region and the composite version for the subscription machinery.
func (c *Coordinator) runStanding(req pnn.Request) (pnn.Response, shard.Influence, int64) {
	spec, item, err := pnn.NormalizeRequest(req)
	if err != nil {
		vi := c.cachedVersion()
		return pnn.Response{Version: vi, Err: err}, shard.Influence{}, vi.Max
	}
	answers, raw, inf, vi, err := c.runGroup(context.Background(), spec, []shard.GroupItem{item})
	if err != nil {
		return pnn.Response{Version: vi, Err: err}, shard.Influence{}, vi.Max
	}
	resp := pnn.ResponseFromAnswer(item.Op, answers[0], raw)
	resp.Stats.SamplerBuilds = raw.SamplerBuilds
	resp.Version = vi
	return resp, inf, vi.Max
}

// Run answers one query through the scatter-gather path.
func (c *Coordinator) Run(req pnn.Request) pnn.Response {
	resp, _, _ := c.runStanding(req)
	return resp
}

// batchUnit is one independently re-runnable slice of a batch: a single
// request, or one shared-world group. run answers its requests into out
// and returns the version view it gathered at.
type batchUnit struct {
	idx []int
	run func(ctx context.Context) pnn.VersionInfo
}

// RunBatchStats mirrors pnn's batch contract over the cluster: the same
// grouping keys and group seeds (via pnn.ShareGroup), the same
// per-response SamplerBuilds zeroing, plus cross-request snapshot
// reconciliation — a single process pins one snapshot for the whole
// batch, a coordinator cannot, so units that gathered at a stale view
// are retried once against the newest and flagged peer_unavailable if
// they still disagree.
func (c *Coordinator) RunBatchStats(reqs []pnn.Request, opts pnn.BatchOptions) ([]pnn.Response, pnn.BatchStats) {
	out := make([]pnn.Response, len(reqs))
	bst := pnn.BatchStats{Requests: len(reqs)}
	if len(reqs) == 0 {
		return out, bst
	}
	workers := opts.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	ctx := context.Background()
	var mu sync.Mutex
	var units []*batchUnit
	if opts.ShareWorlds {
		units = c.shareUnits(reqs, opts.SharedSeed, out, &bst, &mu)
		bst.Groups = len(units)
	} else {
		units = c.soloUnits(reqs, out, &bst, &mu)
	}
	vectors := make([][]int64, len(units))
	fanOut(len(units), workers, func(u int) {
		vectors[u] = units[u].run(ctx).Vector
	})
	c.reconcile(ctx, workers, units, vectors, out)
	return out, bst
}

// soloUnits builds one unit per valid request (sharing disabled).
func (c *Coordinator) soloUnits(reqs []pnn.Request, out []pnn.Response, bst *pnn.BatchStats, mu *sync.Mutex) []*batchUnit {
	var units []*batchUnit
	for i := range reqs {
		spec, item, err := pnn.NormalizeRequest(reqs[i])
		if err != nil {
			out[i] = pnn.Response{Version: c.cachedVersion(), Err: err}
			continue
		}
		i := i
		units = append(units, &batchUnit{idx: []int{i}, run: func(ctx context.Context) pnn.VersionInfo {
			answers, raw, _, vi, err := c.runGroup(ctx, spec, []shard.GroupItem{item})
			if err != nil {
				out[i] = pnn.Response{Version: vi, Err: err}
				return vi
			}
			resp := pnn.ResponseFromAnswer(item.Op, answers[0], raw)
			resp.Version = vi
			out[i] = resp
			mu.Lock()
			bst.SamplerBuilds += raw.SamplerBuilds
			bst.AdaptTime += raw.AdaptTime
			mu.Unlock()
			return vi
		}})
	}
	return units
}

// shareUnits coalesces requests into shared-world groups using exactly
// the keys and seeds a single process uses, one unit per group.
func (c *Coordinator) shareUnits(reqs []pnn.Request, sharedSeed int64, out []pnn.Response, bst *pnn.BatchStats, mu *sync.Mutex) []*batchUnit {
	type bucket struct {
		seed int64
		idx  []int
	}
	groups := make(map[string]*bucket)
	var order []string
	for i := range reqs {
		key, seed, err := pnn.ShareGroup(sharedSeed, reqs[i])
		if err != nil {
			out[i] = pnn.Response{Version: c.cachedVersion(), Err: err}
			continue
		}
		b := groups[key]
		if b == nil {
			b = &bucket{seed: seed}
			groups[key] = b
			order = append(order, key)
		}
		b.idx = append(b.idx, i)
	}
	units := make([]*batchUnit, 0, len(order))
	for _, key := range order {
		b := groups[key]
		spec, _, _ := pnn.NormalizeRequest(reqs[b.idx[0]])
		spec.Seed = b.seed
		items := make([]shard.GroupItem, len(b.idx))
		for j, i := range b.idx {
			_, items[j], _ = pnn.NormalizeRequest(reqs[i])
		}
		idx := b.idx
		units = append(units, &batchUnit{idx: idx, run: func(ctx context.Context) pnn.VersionInfo {
			answers, raw, _, vi, err := c.runGroup(ctx, spec, items)
			if err != nil {
				for _, i := range idx {
					out[i] = pnn.Response{Version: vi, Err: err}
				}
				return vi
			}
			for j, i := range idx {
				resp := pnn.ResponseFromAnswer(items[j].Op, answers[j], raw)
				resp.Version = vi
				out[i] = resp
			}
			mu.Lock()
			bst.SamplerBuilds += raw.SamplerBuilds
			bst.AdaptTime += raw.AdaptTime
			mu.Unlock()
			return vi
		}})
	}
	return units
}

// reconcile enforces the batch's mutual-consistency contract: all units
// must have gathered at the same snapshot vector. Stale units (writes
// landed mid-batch) are re-run once against the now-newest view; a unit
// whose vector still disagrees afterwards gets peer_unavailable — a
// batch never mixes snapshots silently.
func (c *Coordinator) reconcile(ctx context.Context, workers int, units []*batchUnit, vectors [][]int64, out []pnn.Response) {
	stale := staleUnits(units, vectors)
	if len(stale) == 0 {
		return
	}
	fanOut(len(stale), workers, func(j int) {
		u := stale[j]
		vectors[u] = units[u].run(ctx).Vector
	})
	for _, u := range staleUnits(units, vectors) {
		vi := pnn.VersionInfo{Vector: vectors[u]}
		for _, v := range vectors[u] {
			vi.Max += v
		}
		if n := len(vectors[u]); n > 1 {
			// Per-shard versions each start at 1; the composite is the
			// vector sum minus the startup offset.
			vi.Max -= int64(n - 1)
		}
		for _, i := range units[u].idx {
			out[i] = pnn.Response{Version: vi,
				Err: fmt.Errorf("%w: batch gathered across concurrent writes twice", ErrPeerUnavailable)}
		}
	}
}

// staleUnits returns the units whose gather vector differs from the
// newest one seen (the vector with the highest composite sum).
func staleUnits(units []*batchUnit, vectors [][]int64) []int {
	sum := func(v []int64) int64 {
		var s int64
		for _, x := range v {
			s += x
		}
		return s
	}
	best := 0
	for u := range units {
		if sum(vectors[u]) > sum(vectors[best]) {
			best = u
		}
	}
	var stale []int
	for u := range units {
		if !equalVec(vectors[u], vectors[best]) {
			stale = append(stale, u)
		}
	}
	return stale
}

func equalVec(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// fanOut runs fn over [0, n) on up to `workers` goroutines.
func fanOut(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// sentinelError preserves a peer's error message while matching the
// facade's ingest sentinels under errors.Is, so the API layer classifies
// routed rejections exactly like local ones.
type sentinelError struct {
	msg string
	is  error
}

func (e *sentinelError) Error() string { return e.msg }
func (e *sentinelError) Unwrap() error { return e.is }

// mapIngestErr folds a routed write's RPC error back into the facade's
// error vocabulary.
func mapIngestErr(err error) error {
	var r *rpcError
	if errors.As(err, &r) {
		switch r.Code {
		case "duplicate_object":
			return &sentinelError{msg: r.Message, is: pnn.ErrDuplicateID}
		case "unknown_object":
			return &sentinelError{msg: r.Message, is: pnn.ErrUnknownID}
		}
		return errors.New(r.Message)
	}
	return err
}

// AddObject routes a new object to its ring owner.
func (c *Coordinator) AddObject(id int, obs []pnn.Observation) (pnn.Ingest, error) {
	return c.ingest("add", id, obs)
}

// Observe routes new observations to the object's ring owner.
func (c *Coordinator) Observe(id int, obs ...pnn.Observation) (pnn.Ingest, error) {
	return c.ingest("observe", id, obs)
}

func (c *Coordinator) ingest(kind string, id int, obs []pnn.Observation) (pnn.Ingest, error) {
	ctx := context.Background()
	owner := c.ring.OwnerID(id)
	wreq := IngestRPCRequest{Kind: kind, ID: id, Observations: make([]ObservationJSON, len(obs))}
	for i, ob := range obs {
		wreq.Observations[i] = ObservationJSON{T: ob.T, State: ob.State}
	}
	pc := c.clients[owner]
	var resp IngestRPCResponse
	// Writes are not idempotent (a duplicate add must 409 exactly once),
	// so no hedged retry here: one attempt, one verdict.
	if err := pc.call(ctx, "/internal/ingest", wreq, &resp); err != nil {
		return pnn.Ingest{}, mapIngestErr(err)
	}
	pc.noteIngest(resp)
	ing := c.mergedIngest()
	c.notifyWrite(ctx, id, owner)
	return ing, nil
}

// noteIngest folds a routed write's published snapshot into the peer's
// cached health view, so merged versions advance without waiting for
// the next probe.
func (p *peerClient) noteIngest(resp IngestRPCResponse) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.health.Version = resp.Version
	p.health.Versions = resp.Versions
	p.health.Objects = resp.Objects
}

// mergedIngest reports the cluster-wide published state after a write.
func (c *Coordinator) mergedIngest() pnn.Ingest {
	var ing pnn.Ingest
	for _, name := range c.order {
		_, _, _, h := c.clients[name].status()
		ing.Version += h.Version
		ing.Objects += h.Objects
	}
	ing.Version -= int64(len(c.order) - 1)
	return ing
}

// notifyWrite classifies the routed write for the standing queries. The
// touch predicate asks the object's owner whether its (already written)
// rectangles can intersect the stored influence region; an RPC failure
// degrades to "touched" — a spurious re-evaluation, never a missed one.
func (c *Coordinator) notifyWrite(ctx context.Context, id int, owner string) {
	pc := c.clients[owner]
	c.subs.NotifyWrite(id, func(region any) bool {
		r, ok := region.(*coordRegion)
		if !ok {
			return true
		}
		treq := TouchRequest{ID: id, Query: r.q, Ts: r.ts, Te: r.te, Bound: PruneToWire(r.bound)}
		var tresp TouchResponse
		if err := pc.callHedged(ctx, "/internal/touch", &treq, &tresp); err != nil {
			return true
		}
		return tresp.Touched
	})
}

// Subscribe registers a standing query evaluated through the scatter-
// gather path; its events carry the same Response bytes a single
// process would deliver at the same merged snapshot and seed.
// Compatible standing queries (equal pnn.StandingKey) group into one
// scatter-gather per sweep, exactly like a single process groups them
// into one RunShared.
func (c *Coordinator) Subscribe(req pnn.Request, d pnn.Delivery) (*pnn.Subscription, error) {
	if _, _, err := pnn.NormalizeRequest(req); err != nil {
		return nil, err
	}
	return c.subs.SubscribeKeyed(pnn.StandingKey(req), func() sub.Eval { return c.evalStanding(req) }, d, req), nil
}

func (c *Coordinator) evalStanding(req pnn.Request) sub.Eval {
	evals, _ := c.evalStandingGroup("", []any{req}, nil)
	return evals[0]
}

// groupState is a standing group's adaptive carry-over: the stop point
// (worlds drawn) its previous evaluation proved sufficient, used as the
// next evaluation's early-stop floor.
type groupState struct {
	worlds int
}

// evalStandingGroup is the registry's GroupEval hook: one scatter-
// gather answers every member of a compatible standing group. Members
// share the spec by construction of the key; the floor is raised to the
// group's previously proven budget before gathering, which never
// changes which worlds are drawn — only how early the replayed
// executor may stop — so no wire change is needed: peers always
// pre-draw the full budget.
func (c *Coordinator) evalStandingGroup(_ string, metas []any, state any) (evals []sub.Eval, newState any) {
	newState = state
	reqs := make([]pnn.Request, len(metas))
	for i, m := range metas {
		reqs[i], _ = m.(pnn.Request)
	}
	evals = make([]sub.Eval, len(reqs))
	fail := func(vi pnn.VersionInfo, err error) {
		for i := range evals {
			resp := pnn.Response{Version: vi, Err: err}
			evals[i] = sub.Eval{Version: vi.Max, Payload: resp, Fingerprint: pnn.FingerprintResponse(resp)}
		}
	}
	spec, _, err := pnn.NormalizeRequest(reqs[0])
	if err != nil {
		fail(c.cachedVersion(), err)
		return evals, newState
	}
	items := make([]shard.GroupItem, len(reqs))
	for i, req := range reqs {
		_, item, err := pnn.NormalizeRequest(req)
		if err != nil {
			fail(c.cachedVersion(), err)
			return evals, newState
		}
		items[i] = item
	}
	reused := false
	if st, ok := state.(*groupState); ok && spec.Conf.Enabled() && st.worlds > spec.MinWorlds {
		spec.MinWorlds = st.worlds
		reused = true
	}
	answers, raw, inf, vi, err := c.runGroup(context.Background(), spec, items)
	if err != nil {
		fail(vi, err)
		return evals, newState
	}
	if spec.Conf.Enabled() && raw.Worlds > 0 {
		newState = &groupState{worlds: raw.Worlds}
	}
	region := &coordRegion{q: encodeQuery(spec.Q, spec.Ts, spec.Te), ts: spec.Ts, te: spec.Te, bound: inf.PruneDist}
	for i, a := range answers {
		resp := pnn.ResponseFromAnswer(items[i].Op, a, raw)
		resp.Stats.SamplerBuilds = raw.SamplerBuilds
		resp.Stats.GroupSize = len(reqs)
		resp.Stats.BudgetReused = reused
		if spec.Conf.Enabled() {
			resp.Stats.WorldFloor = spec.MinWorlds
		}
		resp.Version = vi
		ev := sub.Eval{
			Version:      vi.Max,
			Payload:      resp,
			Fingerprint:  pnn.FingerprintResponse(resp),
			BudgetReused: reused,
		}
		if a.Err == nil {
			ev.Influencers = inf.IDs
			ev.Region = region
		}
		evals[i] = ev
	}
	return evals, newState
}

// Unsubscribe removes a standing query.
func (c *Coordinator) Unsubscribe(id int64) bool { return c.subs.Unsubscribe(id) }

// Subscription returns the standing query with the given ID.
func (c *Coordinator) Subscription(id int64) (*pnn.Subscription, bool) { return c.subs.Get(id) }

// Subscriptions lists the registered standing queries.
func (c *Coordinator) Subscriptions() []pnn.SubscriptionInfo { return c.subs.List() }

// NumSubscriptions returns the number of registered standing queries.
func (c *Coordinator) NumSubscriptions() int { return c.subs.Len() }

// SubscriptionStats returns the registry's cumulative counters.
func (c *Coordinator) SubscriptionStats() pnn.SubscriptionStats { return c.subs.Stats() }

// WaitSubscriptionsIdle blocks until pending re-evaluations drain.
func (c *Coordinator) WaitSubscriptionsIdle(timeout time.Duration) bool {
	return c.subs.WaitIdle(timeout)
}

// CloseSubscriptions shuts standing queries down and stops the health
// probe loop; the server's shutdown path calls it exactly like it does
// on a processor.
func (c *Coordinator) CloseSubscriptions() {
	c.subs.Close()
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}

// SnapshotDetail reports the merged cluster snapshot from the cached
// peer healths: composite version, total objects and the concatenated
// version vector.
func (c *Coordinator) SnapshotDetail() (version int64, objects int, shardVersions []int64) {
	vi := c.cachedVersion()
	for _, name := range c.order {
		_, _, _, h := c.clients[name].status()
		objects += h.Objects
	}
	return vi.Max, objects, vi.Vector
}

// NumShards returns the total shard count across peers.
func (c *Coordinator) NumShards() int {
	vi := c.cachedVersion()
	return len(vi.Vector)
}

// SampleBudget returns the cluster-wide per-query sample budget every
// peer agreed on at Bootstrap.
func (c *Coordinator) SampleBudget() int { return c.samples }

// CacheStats sums the peers' sampler-cache counters.
func (c *Coordinator) CacheStats() pnn.CacheStats {
	var cs pnn.CacheStats
	for _, name := range c.order {
		_, _, _, h := c.clients[name].status()
		cs.Builds += h.CacheBuilds
		cs.Hits += h.CacheHits
	}
	return cs
}

// PeerStatus is one peer's row in the /v1/cluster answer.
type PeerStatus struct {
	Name       string  `json:"name"`
	URL        string  `json:"url"`
	Role       string  `json:"role"`
	Healthy    bool    `json:"healthy"`
	LastError  string  `json:"last_error,omitempty"`
	ProbeAgeMS int64   `json:"probe_age_ms"`
	Version    int64   `json:"version"`
	Versions   []int64 `json:"versions"`
	Objects    int     `json:"objects"`
	// Durability is the peer's persistence mode from its last health
	// probe ("volatile", "wal", "wal+fsync"; empty before the first
	// answer), so a volatile node in a durable cluster is visible.
	Durability  string       `json:"durability,omitempty"`
	OwnedRanges []ring.Range `json:"owned_ranges"`
}

// Status is the cluster topology and health view served at /v1/cluster.
type Status struct {
	Role         string       `json:"role"`
	VirtualNodes int          `json:"virtual_nodes"`
	SampleBudget int          `json:"sample_budget"`
	Peers        []PeerStatus `json:"peers"`
	Vector       []int64      `json:"version_vector"`
	Version      int64        `json:"version_max"`
	// Durability is this node's own persistence mode; a router is
	// "stateless" (it indexes nothing), standalone nodes and peers
	// report volatile/wal/wal+fsync.
	Durability string `json:"durability,omitempty"`
}

// ClusterStatus reports the topology: peers in version-vector order,
// their health and snapshot identities, and each one's consistent-hash
// ownership arcs.
func (c *Coordinator) ClusterStatus() Status {
	st := Status{
		Role:         "router",
		VirtualNodes: c.ring.NumVirtual() / len(c.order),
		SampleBudget: c.samples,
		Durability:   "stateless", // the router indexes nothing to persist
	}
	for _, p := range c.cfg.Peers {
		healthy, lastErr, lastProbe, h := c.clients[p.Name].status()
		ps := PeerStatus{
			Name: p.Name, URL: p.URL, Role: "peer",
			Healthy: healthy, LastError: lastErr,
			Version: h.Version, Versions: h.Versions, Objects: h.Objects,
			Durability:  h.Durability,
			OwnedRanges: c.ring.Ranges(p.Name),
		}
		if !lastProbe.IsZero() {
			ps.ProbeAgeMS = time.Since(lastProbe).Milliseconds()
		}
		st.Peers = append(st.Peers, ps)
		st.Vector = append(st.Vector, h.Versions...)
		st.Version += h.Version
	}
	st.Version -= int64(len(c.order) - 1)
	return st
}

// HealthyPeers counts peers whose last probe succeeded.
func (c *Coordinator) HealthyPeers() int {
	n := 0
	for _, name := range c.order {
		if healthy, _, _, _ := c.clients[name].status(); healthy {
			n++
		}
	}
	return n
}
