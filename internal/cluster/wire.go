// Package cluster implements the multi-node scatter-gather deployment
// of the PNN engine: a Coordinator that owns consistent-hash object
// routing for ingest and fans query work out to shard peers over the
// /internal HTTP/JSON RPC surface, gathering merged answers that are
// byte-identical to the single-process shard.Set path at the same
// snapshot versions and seed.
//
// The determinism contract rests on the shard package's replay design:
// each peer prunes its own UST-trees, adapts samplers, and pre-draws
// every influencer's possible-world state columns from the private
// (request seed, object ID) generator; the coordinator merges the rows
// with shard.MergeScatters and replays them through shard.Gather, the
// very executor a single process evaluates with. Distances, evaluator
// counts, and the adaptive early-stop point follow from the columns
// alone, so the network boundary adds no numeric drift.
package cluster

import (
	"encoding/binary"
	"math"
	"time"

	"pnn/internal/shard"
)

// PointJSON is a planar position on the wire.
type PointJSON struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// QueryJSON carries a query reference as its positions over the query
// window: Points[i] is the reference position at time Start+i. Both
// fixed and moving references reduce to this — pruning and evaluation
// only ever read the position inside the window, and Go's JSON float64
// encoding round-trips exactly, so the peer reconstructs the positions
// bit-identically.
type QueryJSON struct {
	Start  int         `json:"start"`
	Points []PointJSON `json:"points"`
}

// ConfidenceJSON mirrors query.Confidence on the internal wire.
type ConfidenceJSON struct {
	Eps        float64 `json:"eps,omitempty"`
	Delta      float64 `json:"delta,omitempty"`
	MaxSamples int     `json:"max_samples,omitempty"`
}

// ScatterRequest is the body of POST /internal/scatter: one shared-
// world group spec, query encoded as window positions.
type ScatterRequest struct {
	Query      QueryJSON       `json:"query"`
	Ts         int             `json:"ts"`
	Te         int             `json:"te"`
	K          int             `json:"k"`
	Seed       int64           `json:"seed"`
	Confidence *ConfidenceJSON `json:"confidence,omitempty"`
}

// ScatterRowJSON is one influencer row on the wire. States is the
// little-endian int32 encoding of the row's pre-drawn state columns
// (Worlds consecutive windows of Te-Ts+1 states, -1 marking dead
// timesteps); JSON carries it base64-encoded.
type ScatterRowJSON struct {
	ID     int    `json:"id"`
	States []byte `json:"states"`
}

// ScatterResponse is the peer's answer: its shard.ScatterResult in
// wire form. PruneDist uses null for +Inf (JSON has no infinities).
type ScatterResponse struct {
	Version       int64            `json:"version"`
	Versions      []int64          `json:"versions"`
	Samples       int              `json:"samples"`
	Worlds        int              `json:"worlds"`
	Rows          []ScatterRowJSON `json:"rows"`
	CandIDs       []int            `json:"cand_ids,omitempty"`
	PruneDist     []*float64       `json:"prune_dist,omitempty"`
	SamplerBuilds int              `json:"sampler_builds"`
	AdaptNanos    int64            `json:"adapt_ns"`
}

// IngestRPCRequest is the body of POST /internal/ingest: a routed
// write. Kind is "add" (register a new object) or "observe" (append to
// an existing one). Observations are pre-validated by the coordinator
// against the shared network, so the peer only re-checks what the
// motion model itself enforces.
type IngestRPCRequest struct {
	Kind         string            `json:"kind"`
	ID           int               `json:"id"`
	Observations []ObservationJSON `json:"observations"`
}

// ObservationJSON is one certain (time, state) measurement.
type ObservationJSON struct {
	T     int `json:"t"`
	State int `json:"state"`
}

// IngestRPCResponse reports the peer's published snapshot after a
// routed write.
type IngestRPCResponse struct {
	Version  int64   `json:"version"`
	Versions []int64 `json:"versions"`
	Objects  int     `json:"objects"`
}

// TouchRequest is the body of POST /internal/touch: may the (already
// written) object with ID intersect the given influence region? The
// peer owning the object answers with its indexed rectangles.
type TouchRequest struct {
	ID    int        `json:"id"`
	Query QueryJSON  `json:"query"`
	Ts    int        `json:"ts"`
	Te    int        `json:"te"`
	Bound []*float64 `json:"bound,omitempty"`
}

// TouchResponse reports the touch verdict.
type TouchResponse struct {
	Touched bool `json:"touched"`
}

// HealthInfo is the body of GET /internal/health: the peer's live
// snapshot identity plus the static parameters the coordinator must
// see agree across the cluster.
type HealthInfo struct {
	Version     int64   `json:"version"`
	Versions    []int64 `json:"versions"`
	Objects     int     `json:"objects"`
	States      int     `json:"states"`
	Samples     int     `json:"samples"`
	CacheBuilds int64   `json:"cache_builds"`
	CacheHits   int64   `json:"cache_hits"`
	// Durability is the peer's persistence mode ("volatile", "wal",
	// "wal+fsync"), surfaced per peer on /v1/cluster so an operator can
	// spot a node accidentally running volatile in a durable cluster.
	Durability string `json:"durability"`
}

// ErrorJSON is the error envelope of every /internal RPC, mirroring
// the public API's shape so one client can decode both.
type ErrorJSON struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// StatesToWire encodes int32 state columns little-endian.
func StatesToWire(states []int32) []byte {
	out := make([]byte, 4*len(states))
	for i, s := range states {
		binary.LittleEndian.PutUint32(out[i*4:], uint32(s))
	}
	return out
}

// StatesFromWire decodes little-endian int32 state columns.
func StatesFromWire(b []byte) []int32 {
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

// PruneToWire encodes a pruning threshold vector, mapping +Inf (no
// constraint) to null.
func PruneToWire(dist []float64) []*float64 {
	out := make([]*float64, len(dist))
	for i, d := range dist {
		if !math.IsInf(d, 1) {
			v := d
			out[i] = &v
		}
	}
	return out
}

// PruneFromWire decodes a wire threshold vector, mapping null back to
// +Inf.
func PruneFromWire(dist []*float64) []float64 {
	out := make([]float64, len(dist))
	for i, d := range dist {
		if d == nil {
			out[i] = math.Inf(1)
		} else {
			out[i] = *d
		}
	}
	return out
}

// ScatterToWire converts a peer-side scatter result to its wire form.
func ScatterToWire(res *shard.ScatterResult) ScatterResponse {
	out := ScatterResponse{
		Version:       res.Version,
		Versions:      res.Versions,
		Samples:       res.Samples,
		Worlds:        res.Worlds,
		Rows:          make([]ScatterRowJSON, len(res.Rows)),
		CandIDs:       res.CandIDs,
		PruneDist:     PruneToWire(res.PruneDist),
		SamplerBuilds: res.SamplerBuilds,
		AdaptNanos:    res.AdaptTime.Nanoseconds(),
	}
	for i, r := range res.Rows {
		out.Rows[i] = ScatterRowJSON{ID: r.ID, States: StatesToWire(r.States)}
	}
	return out
}

// ScatterFromWire converts a wire scatter response back to the shard
// form the coordinator merges.
func ScatterFromWire(resp *ScatterResponse) *shard.ScatterResult {
	res := &shard.ScatterResult{
		Version:       resp.Version,
		Versions:      resp.Versions,
		Samples:       resp.Samples,
		Worlds:        resp.Worlds,
		Rows:          make([]shard.ScatterRow, len(resp.Rows)),
		CandIDs:       resp.CandIDs,
		PruneDist:     PruneFromWire(resp.PruneDist),
		SamplerBuilds: resp.SamplerBuilds,
	}
	res.AdaptTime = time.Duration(resp.AdaptNanos)
	for i, r := range resp.Rows {
		res.Rows[i] = shard.ScatterRow{ID: r.ID, States: StatesFromWire(r.States)}
	}
	return res
}
