// Package shard partitions a live PNN database across S independent
// (UST-tree, query.Engine) snapshot stores and executes queries against
// all of them scatter-gather style. The paper's filter-refine pipeline
// decomposes cleanly over disjoint object sets: spatial pruning and
// Monte-Carlo refinement per candidate are independent across objects,
// so each shard prunes and samples its own partition in parallel and
// only the cheap per-world NN evaluation runs over the merged candidate
// sets.
//
// Sharding buys two things:
//
//   - Ingestion cost drops by a factor of S: AddObject/Observe route to
//     exactly one shard, so the copy-on-write clone behind every
//     published version touches 1/S of the index instead of all of it.
//   - Queries use S cores for the expensive scatter phase (model
//     adaptation and trajectory sampling).
//
// Objects are hash-partitioned by their caller-chosen ID, so routing is
// stateless and deterministic: the shard owning an object never depends
// on arrival order. Query answers are independent of the shard count —
// refinement draws every object's possible worlds from a sub-seed
// derived from the request seed and the object's ID alone (see
// query.go), and lossless pruning guarantees per-shard candidate
// supersets change no predicate. S-shard result sets are byte-identical
// to 1-shard result sets for the same seed.
//
// Version publication stays atomic across shards: the Set keeps a
// composite snapshot (the vector of per-shard snapshots plus a total
// version) behind one atomic pointer. Readers load the vector lock-free
// and keep a consistent cross-shard view for their whole lifetime;
// writers serialize on the Set, route the write to its shard, and
// publish the successor vector with one store.
package shard

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"pnn/internal/mcrand"
	"pnn/internal/query"
	"pnn/internal/space"
	"pnn/internal/store"
	"pnn/internal/uncertain"
)

// Snap is one immutable composite version of the sharded database: a
// consistent vector of per-shard snapshots. Like a store.Snapshot it
// stays valid forever; it just stops being current once a write lands.
type Snap struct {
	// Version increases by one with every published write, starting at 1
	// for the initial build (the sum over shards would jump by S at
	// startup and is useless as a client-visible write counter).
	Version int64
	// Parts holds one snapshot per shard, indexed by shard number. The
	// slice and its entries are read-only.
	Parts []*store.Snapshot
	// ChangedID tags the composite version with the object ID whose write
	// produced it (-1 for the initial build); see store.Snapshot.ChangedID.
	ChangedID int
	// shards is the routing fan-out the set was built with.
	shards int
}

// NumObjects returns the total object count across all shards of this
// composite version.
func (s *Snap) NumObjects() int {
	n := 0
	for _, p := range s.Parts {
		n += len(p.IDs)
	}
	return n
}

// ShardVersions returns the per-shard snapshot versions of this
// composite version, indexed by shard.
func (s *Snap) ShardVersions() []int64 {
	v := make([]int64, len(s.Parts))
	for i, p := range s.Parts {
		v[i] = p.Version
	}
	return v
}

// Locate returns the shard and engine index holding object id, or
// ok=false when the id is unknown to this version.
func (s *Snap) Locate(id int) (shard, oi int, ok bool) {
	shard = shardOf(id, s.shards)
	for i, oid := range s.Parts[shard].IDs {
		if oid == id {
			return shard, i, true
		}
	}
	return 0, 0, false
}

// Toucher resolves object id against this snapshot once and returns a
// predicate testing whether the object may enter the influence region
// of a window query (see Influence). It is the per-shard lookup on the
// write path of standing subscriptions: the returned closure captures
// the owning shard's tree and engine index, so testing one object
// against many subscriptions costs one rectangle sweep per window, no
// map lookups. Unknown IDs yield an always-true predicate — claiming
// influence is always safe.
func (s *Snap) Toucher(id int) func(q query.Query, ts, te int, bound []float64) bool {
	si, oi, ok := s.Locate(id)
	if !ok {
		return func(query.Query, int, int, []float64) bool { return true }
	}
	tree := s.Parts[si].Engine.Tree()
	return func(q query.Query, ts, te int, bound []float64) bool {
		if q.Zero() || te < ts {
			return true
		}
		return tree.MayInfluence(oi, q.At, ts, te, bound)
	}
}

// Set is a sharded store: S partitions, each an independent store.Store
// with its own RCU snapshot chain, glued together by composite
// versioning. It is safe for concurrent use: any number of goroutines
// may Snapshot/query while others AddObject/Observe.
type Set struct {
	shards []*store.Store

	mu  sync.Mutex // serializes writers; never held by readers
	cur atomic.Pointer[Snap]

	// dur is the write-ahead-log + spill state of a durable set (see
	// durable.go); nil for a volatile one.
	dur *durState
}

// shardOf routes an object ID to its shard. The hash must be stable
// across processes and shard-set rebuilds — the partition an object
// lands in is part of the system's observable behavior (per-shard
// versions, routing tests), so no per-process seeding. The mixer is
// the same splitmix64 finalizer the seed-derivation contract uses.
func shardOf(id, shards int) int {
	if shards <= 1 {
		return 0
	}
	return int(mcrand.Mix64(uint64(id)) % uint64(shards))
}

// New partitions objs across `shards` stores by object-ID hash and
// returns the set at composite version 1, each engine drawing `samples`
// possible worlds per query. shards < 1 is treated as 1. Object IDs
// must be unique; observations contradicting an object's chain fail the
// build.
func New(sp *space.Space, objs []*uncertain.Object, samples, shards int) (*Set, error) {
	set, _, err := build(sp, objs, samples, shards, false)
	return set, err
}

// NewLenient is New for noisy data: objects whose observations
// contradict their chain are dropped rather than failing the build. It
// returns the positions (in objs) of the skipped objects, ascending.
func NewLenient(sp *space.Space, objs []*uncertain.Object, samples, shards int) (*Set, []int, error) {
	return build(sp, objs, samples, shards, true)
}

// partition splits objs across shards by ID hash, preserving input
// order within each shard and remembering the original positions so
// lenient skips can be reported against the caller's slice.
func partition(objs []*uncertain.Object, shards int) (parts [][]*uncertain.Object, origin [][]int, err error) {
	parts = make([][]*uncertain.Object, shards)
	origin = make([][]int, shards)
	seen := make(map[int]bool, len(objs))
	for i, o := range objs {
		if seen[o.ID] {
			return nil, nil, fmt.Errorf("shard: duplicate object id %d", o.ID)
		}
		seen[o.ID] = true
		si := shardOf(o.ID, shards)
		parts[si] = append(parts[si], o)
		origin[si] = append(origin[si], i)
	}
	return parts, origin, nil
}

func build(sp *space.Space, objs []*uncertain.Object, samples, shards int, lenient bool) (*Set, []int, error) {
	if shards < 1 {
		shards = 1
	}
	parts, origin, err := partition(objs, shards)
	if err != nil {
		return nil, nil, err
	}
	s := &Set{shards: make([]*store.Store, shards)}
	snap := &Snap{Version: 1, Parts: make([]*store.Snapshot, shards), ChangedID: -1, shards: shards}
	var skipped []int
	for si := range s.shards {
		var st *store.Store
		var err error
		if lenient {
			var skippedLocal []int
			st, skippedLocal, err = store.NewLenient(sp, parts[si], samples)
			for _, li := range skippedLocal {
				skipped = append(skipped, origin[si][li])
			}
		} else {
			st, err = store.New(sp, parts[si], samples)
		}
		if err != nil {
			return nil, nil, err
		}
		s.shards[si] = st
		snap.Parts[si] = st.Snapshot()
	}
	sort.Ints(skipped)
	s.cur.Store(snap)
	return s, skipped, nil
}

// Snapshot returns the current composite version. The result is
// immutable and mutually consistent across shards.
func (s *Set) Snapshot() *Snap { return s.cur.Load() }

// Version returns the current composite version. Successive calls
// return non-decreasing values; each successful write advances it by
// exactly one.
func (s *Set) Version() int64 { return s.cur.Load().Version }

// NumShards returns the partition fan-out the set was built with.
func (s *Set) NumShards() int { return len(s.shards) }

// ShardFor returns the shard an object ID routes to.
func (s *Set) ShardFor(id int) int { return shardOf(id, len(s.shards)) }

// NumObjects returns the total object count of the current composite
// snapshot.
func (s *Set) NumObjects() int { return s.cur.Load().NumObjects() }

// SetParallelism sets the per-query sampling parallelism on every
// shard's engine (and every engine derived from them by later writes).
// The gather-phase world evaluation uses the same setting.
func (s *Set) SetParallelism(workers int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, st := range s.shards {
		st.SetParallelism(workers)
	}
}

// AddObject routes a new object to its shard by ID hash, publishes the
// successor composite snapshot and returns it. Only the owning shard's
// index is cloned — the 1/S copy-on-write saving that motivates
// sharding ingestion-heavy deployments. The ID must be unused and the
// observations consistent with the object's chain; rejected writes
// leave the current composite snapshot untouched.
func (s *Set) AddObject(o *uncertain.Object) (*Snap, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dur != nil && s.dur.err != nil {
		return nil, s.dur.err
	}
	si := shardOf(o.ID, len(s.shards))
	part, err := s.shards[si].AddObject(o)
	if err != nil {
		return nil, err
	}
	if s.dur != nil {
		// Log after the store validated and applied the write, before the
		// composite version is published: every WAL record is replayable
		// and every acknowledged write is logged.
		rec := store.WALRecord{Version: part.Version, Op: store.OpAdd, ID: o.ID, Obs: o.Obs}
		if err := s.logWrite(si, rec); err != nil {
			return nil, err
		}
	}
	return s.publish(si, part), nil
}

// Observe routes an observation append to the shard owning id and
// publishes the successor composite snapshot, which it returns. The
// same acceptance rules as store.Store.Observe apply; rejected writes
// leave the current composite snapshot untouched.
func (s *Set) Observe(id int, obs []uncertain.Observation) (*Snap, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dur != nil && s.dur.err != nil {
		return nil, s.dur.err
	}
	si := shardOf(id, len(s.shards))
	part, err := s.shards[si].Observe(id, obs)
	if err != nil {
		return nil, err
	}
	if s.dur != nil {
		// The record carries only the delta: replay re-issues the exact
		// Observe call, and the merge happens in the store again.
		rec := store.WALRecord{Version: part.Version, Op: store.OpObserve, ID: id, Obs: obs}
		if err := s.logWrite(si, rec); err != nil {
			return nil, err
		}
	}
	return s.publish(si, part), nil
}

// publish installs the updated shard snapshot into a successor
// composite vector. Callers hold s.mu.
func (s *Set) publish(si int, part *store.Snapshot) *Snap {
	cur := s.cur.Load()
	next := &Snap{
		Version:   cur.Version + 1,
		Parts:     append([]*store.Snapshot(nil), cur.Parts...),
		ChangedID: part.ChangedID,
		shards:    cur.shards,
	}
	next.Parts[si] = part
	s.cur.Store(next)
	return next
}

// CacheStats sums the cumulative sampler-cache counters over all
// shards' engines.
func (s *Set) CacheStats() query.CacheStats {
	var out query.CacheStats
	for _, p := range s.cur.Load().Parts {
		cs := p.Engine.CacheStats()
		out.Builds += cs.Builds
		out.Hits += cs.Hits
	}
	return out
}

// PrepareAll adapts every object's model up front on all shards in
// parallel (the TS phase), so later queries pay only for sampling and
// evaluation.
func (s *Set) PrepareAll() error {
	snap := s.cur.Load()
	errs := make([]error, len(snap.Parts))
	var wg sync.WaitGroup
	for i, p := range snap.Parts {
		wg.Add(1)
		go func(i int, e *query.Engine) {
			defer wg.Done()
			_, errs[i] = e.PrepareAll()
		}(i, p.Engine)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
