package shard

import (
	"fmt"
	"runtime"
	"testing"

	"pnn/internal/query"
	"pnn/internal/uncertain"
)

// TestShardedIngestCloneBytes pins the acceptance criterion of the
// sharded store in-repo: at 4 shards one AddObject must allocate less
// than half of what it allocates unsharded, because the copy-on-write
// clone touches only the owning shard's slice of the index.
func TestShardedIngestCloneBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation accounting; run in the full tier")
	}
	perAdd := func(shards int) float64 {
		sp, c := gridWorld(t, 30, 30)
		objs := make([]*uncertain.Object, 1600)
		for id := range objs {
			st := (id * 13) % sp.Len()
			objs[id] = mkObj(t, id, c,
				uncertain.Observation{T: 0, State: st}, uncertain.Observation{T: 8, State: st})
		}
		s, err := New(sp, objs, 100, shards)
		if err != nil {
			t.Fatal(err)
		}
		const adds = 50
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for i := 0; i < adds; i++ {
			st := (i * 17) % sp.Len()
			if _, err := s.AddObject(mkObj(t, 1_000_000+i, c,
				uncertain.Observation{T: 0, State: st}, uncertain.Observation{T: 8, State: st})); err != nil {
				t.Fatal(err)
			}
		}
		runtime.ReadMemStats(&after)
		return float64(after.TotalAlloc-before.TotalAlloc) / adds
	}
	b1, b4 := perAdd(1), perAdd(4)
	if b1 < 2*b4 {
		t.Errorf("AddObject allocates %.0f B at 1 shard vs %.0f B at 4 shards; want >= 2x reduction", b1, b4)
	}
}

// BenchmarkShardedIngest measures the copy-on-write cost of one
// AddObject as the shard count grows. Every write clones only the
// owning shard's R*-tree and bookkeeping slices, so bytes/op should
// drop roughly by the shard factor — the headline reason to shard an
// ingestion-heavy deployment.
func BenchmarkShardedIngest(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			sp, c := gridWorld(b, 30, 30)
			objs := make([]*uncertain.Object, 1600)
			for id := range objs {
				st := (id * 13) % sp.Len()
				objs[id] = mkObj(b, id, c,
					uncertain.Observation{T: 0, State: st}, uncertain.Observation{T: 8, State: st})
			}
			s, err := New(sp, objs, 100, shards)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st := (i * 17) % sp.Len()
				if _, err := s.AddObject(mkObj(b, 1_000_000+i, c,
					uncertain.Observation{T: 0, State: st}, uncertain.Observation{T: 8, State: st})); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedQuery measures scatter-gather refinement: the
// expensive per-object world sampling runs one goroutine per shard, so
// wall-clock per query should shrink with shards on a multi-core host.
func BenchmarkShardedQuery(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			sp, c := gridWorld(b, 30, 30)
			// Cluster the fleet around the query point so most objects
			// survive the filter and refinement dominates.
			center := 15*30 + 15
			objs := make([]*uncertain.Object, 64)
			for id := range objs {
				st := center + (id%8 - 4) + 30*(id/8%8-4)
				objs[id] = mkObj(b, id, c,
					uncertain.Observation{T: 0, State: st}, uncertain.Observation{T: 16, State: st})
			}
			s, err := New(sp, objs, 2000, shards)
			if err != nil {
				b.Fatal(err)
			}
			if err := s.PrepareAll(); err != nil {
				b.Fatal(err)
			}
			snap := s.Snapshot()
			q := query.StateQuery(sp.Point(center))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := snap.ExistsKNN(q, 1, 15, 1, 0.01, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
