package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"pnn/internal/markov"
	"pnn/internal/query"
	"pnn/internal/space"
	"pnn/internal/store"
	"pnn/internal/uncertain"
)

// durWorld returns the shared fixture for durable tests plus a Rebuild
// closure over the grid chain (the role the facade plays in production).
func durWorld(t testing.TB) (*space.Space, markov.Chain, Durability) {
	t.Helper()
	sp, c := gridWorld(t, 10, 10)
	d := Durability{
		Fsync: false, // tests survive process crashes, not power loss
		Rebuild: func(id int, obs []uncertain.Observation) (*uncertain.Object, error) {
			return uncertain.NewObject(id, obs, c)
		},
	}
	return sp, c, d
}

// writeScript is a deterministic, always-consistent ingest sequence:
// adds park a new object on a state, observes keep an existing object
// on its state (the grid chain self-loops, so staying put is always
// realizable).
type writeScript struct {
	c     markov.Chain
	rng   *rand.Rand
	ids   []int
	lastT map[int]int
	state map[int]int
	next  int
}

func newWriteScript(c markov.Chain, seed int64) *writeScript {
	return &writeScript{c: c, rng: rand.New(rand.NewSource(seed)), lastT: map[int]int{}, state: map[int]int{}, next: 1000}
}

// step applies one random write to every set in targets, which must all
// accept it identically.
func (w *writeScript) step(t *testing.T, states int, targets ...*Set) {
	t.Helper()
	if len(w.ids) == 0 || w.rng.Intn(3) == 0 {
		id := w.next
		w.next++
		st := (id * 7) % states
		obs := []uncertain.Observation{{T: 0, State: st}, {T: 8, State: st}}
		w.ids = append(w.ids, id)
		w.lastT[id] = 8
		w.state[id] = st
		for _, s := range targets {
			o, err := uncertain.NewObject(id, obs, w.c)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.AddObject(o); err != nil {
				t.Fatalf("AddObject(%d): %v", id, err)
			}
		}
	} else {
		id := w.ids[w.rng.Intn(len(w.ids))]
		w.lastT[id] += 1 + w.rng.Intn(3)
		obs := []uncertain.Observation{{T: w.lastT[id], State: w.state[id]}}
		for _, s := range targets {
			if _, err := s.Observe(id, append([]uncertain.Observation(nil), obs...)); err != nil {
				t.Fatalf("Observe(%d): %v", id, err)
			}
		}
	}
}

// answers runs a small query battery against snap; byte-identity of the
// full (results, stats) pairs — adaptive sampling stop points included —
// is the recovery contract.
func answers(t *testing.T, sp *space.Space, snap *Snap) []any {
	t.Helper()
	var out []any
	for _, probe := range []struct {
		state, ts, te, k int
		tau              float64
		seed             int64
	}{
		{7, 0, 8, 1, 0.1, 7},
		{42, 2, 9, 2, 0.05, 11},
		{63, 0, 10, 1, 0.3, 5},
	} {
		q := query.StateQuery(sp.Point(probe.state))
		fres, fst, err := snap.ForAllKNN(q, probe.ts, probe.te, probe.k, probe.tau, probe.seed)
		if err != nil {
			t.Fatal(err)
		}
		eres, est, err := snap.ExistsKNN(q, probe.ts, probe.te, probe.k, probe.tau, probe.seed)
		if err != nil {
			t.Fatal(err)
		}
		// Wall-clock fields are the only nondeterministic part of Stats.
		fst.AdaptTime, fst.RefineTime = 0, 0
		est.AdaptTime, est.RefineTime = 0, 0
		out = append(out, fres, fst, eres, est)
	}
	out = append(out, snap.Version, snap.ShardVersions(), snap.NumObjects())
	return out
}

// TestDurableRecoveryEquivalence is the satellite property test: for a
// random ingest sequence with spills at arbitrary points, a recovered
// set answers byte-identically — versions, results, stats, adaptive
// stop points — to a never-restarted volatile set that saw the same
// writes, across shard counts.
func TestDurableRecoveryEquivalence(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			sp, c, d := durWorld(t)
			d.Dir = t.TempDir()
			seeds := parked(t, c, 6, sp.Len())

			durable, _, rec, err := Open(sp, seeds, 60, shards, false, d)
			if err != nil {
				t.Fatal(err)
			}
			if rec.Recovered {
				t.Fatal("fresh directory reported Recovered")
			}
			volatileSet, err := New(sp, seeds, 60, shards)
			if err != nil {
				t.Fatal(err)
			}

			script := newWriteScript(c, int64(101+shards))
			for i := 0; i < 40; i++ {
				script.step(t, sp.Len(), durable, volatileSet)
				if i%11 == 10 {
					if err := durable.SpillNow(); err != nil {
						t.Fatalf("SpillNow: %v", err)
					}
				}
			}
			if err := durable.Close(); err != nil {
				t.Fatal(err)
			}

			recovered, _, rec2, err := Open(sp, nil, 60, shards, false, d)
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			defer recovered.Close()
			if !rec2.Recovered {
				t.Fatal("populated directory did not report Recovered")
			}
			want := answers(t, sp, volatileSet.Snapshot())
			got := answers(t, sp, recovered.Snapshot())
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("recovered answers diverge from never-restarted set:\n got %v\nwant %v", got, want)
			}

			// Writes keep flowing after recovery, staying equivalent.
			for i := 0; i < 8; i++ {
				script.step(t, sp.Len(), recovered, volatileSet)
			}
			if !reflect.DeepEqual(answers(t, sp, recovered.Snapshot()), answers(t, sp, volatileSet.Snapshot())) {
				t.Fatal("post-recovery writes diverge")
			}
		})
	}
}

// TestDurableSpillLoopUnderWrites exercises the background spill loop
// racing live ingest (run under -race in CI), then recovers.
func TestDurableSpillLoopUnderWrites(t *testing.T) {
	sp, c, d := durWorld(t)
	d.Dir = t.TempDir()
	d.SpillInterval = time.Millisecond
	durable, _, _, err := Open(sp, parked(t, c, 4, sp.Len()), 40, 2, false, d)
	if err != nil {
		t.Fatal(err)
	}
	volatileSet, err := New(sp, parked(t, c, 4, sp.Len()), 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	script := newWriteScript(c, 7)
	for i := 0; i < 60; i++ {
		script.step(t, sp.Len(), durable, volatileSet)
		if i%8 == 0 {
			time.Sleep(2 * time.Millisecond) // let the loop overlap writes
		}
	}
	if err := durable.Close(); err != nil {
		t.Fatal(err)
	}
	recovered, _, _, err := Open(sp, nil, 40, 2, false, d)
	if err != nil {
		t.Fatalf("recovery after spill loop: %v", err)
	}
	defer recovered.Close()
	if !reflect.DeepEqual(answers(t, sp, recovered.Snapshot()), answers(t, sp, volatileSet.Snapshot())) {
		t.Fatal("recovered set diverges after background spills")
	}
}

// TestDurableTornTail is the crash-mid-append fault injection: garbage
// and a half-written frame at the log tail are truncated and counted,
// and everything before them recovers.
func TestDurableTornTail(t *testing.T) {
	sp, c, d := durWorld(t)
	d.Dir = t.TempDir()
	durable, _, _, err := Open(sp, parked(t, c, 3, sp.Len()), 40, 1, false, d)
	if err != nil {
		t.Fatal(err)
	}
	volatileSet, err := New(sp, parked(t, c, 3, sp.Len()), 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	script := newWriteScript(c, 21)
	for i := 0; i < 10; i++ {
		script.step(t, sp.Len(), durable, volatileSet)
	}
	wantVersion := durable.Version()
	if err := durable.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: random trailing bytes that never
	// formed an intact frame.
	segs, err := store.ListWALSegments(filepath.Join(d.Dir, "shard-0000"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments: %v", err)
	}
	active := segs[len(segs)-1].Path
	f, err := os.OpenFile(active, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recovered, _, rec, err := Open(sp, nil, 40, 1, false, d)
	if err != nil {
		t.Fatalf("recovery with torn tail: %v", err)
	}
	if rec.TornSegments != 1 || rec.TornBytes != 7 {
		t.Fatalf("torn accounting = %d segments / %d bytes, want 1 / 7", rec.TornSegments, rec.TornBytes)
	}
	if recovered.Version() != wantVersion {
		t.Fatalf("recovered version %d, want %d", recovered.Version(), wantVersion)
	}
	if !reflect.DeepEqual(answers(t, sp, recovered.Snapshot()), answers(t, sp, volatileSet.Snapshot())) {
		t.Fatal("torn-tail recovery diverges")
	}
	recovered.Close()

	// Now cut the last intact record in half: that acknowledged-but-lost
	// write disappears, and recovery lands exactly one version earlier.
	// First drop the empty active segment the intermediate recovery
	// created, restoring the pre-crash directory shape (a torn tail is
	// only tolerated in the final segment — mid-stream it means lost
	// acknowledged writes and recovery refuses, by design).
	segs, err = store.ListWALSegments(filepath.Join(d.Dir, "shard-0000"))
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range segs {
		if seg.Path != active {
			if err := os.Remove(seg.Path); err != nil {
				t.Fatal(err)
			}
		}
	}
	st, err := os.Stat(active)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(active, st.Size()-9); err != nil {
		t.Fatal(err)
	}
	recovered2, _, rec2, err := Open(sp, nil, 40, 1, false, d)
	if err != nil {
		t.Fatalf("recovery with half record: %v", err)
	}
	defer recovered2.Close()
	if rec2.TornBytes == 0 {
		t.Fatal("half-written record not counted as torn")
	}
	if recovered2.Version() != wantVersion-1 {
		t.Fatalf("recovered version %d, want %d", recovered2.Version(), wantVersion-1)
	}
}

// appendRawRecord writes a crafted WAL record into a shard's active
// segment, bypassing the store — the tool for forging log/spill
// disagreements.
func appendRawRecord(t *testing.T, dir string, shards, si int, rec store.WALRecord) {
	t.Helper()
	sdir := filepath.Join(dir, fmt.Sprintf("shard-%04d", si))
	segs, err := store.ListWALSegments(sdir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments in %s: %v", sdir, err)
	}
	active := segs[len(segs)-1]
	w, err := store.OpenWAL(active.Path, shards, si, active.Base, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(rec); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReplayDuplicateAddFailsRecovery: a log record that re-adds an
// existing ID means log and spill disagree; recovery must fail loudly
// with the sentinel, the offset and the object ID — never skip it.
func TestReplayDuplicateAddFailsRecovery(t *testing.T) {
	sp, c, d := durWorld(t)
	d.Dir = t.TempDir()
	durable, _, _, err := Open(sp, parked(t, c, 3, sp.Len()), 40, 1, false, d)
	if err != nil {
		t.Fatal(err)
	}
	v := durable.Snapshot().ShardVersions()[0]
	if err := durable.Close(); err != nil {
		t.Fatal(err)
	}
	appendRawRecord(t, d.Dir, 1, 0, store.WALRecord{
		Version: v + 1, Op: store.OpAdd, ID: 0, // object 0 exists in the boot spill
		Obs: []uncertain.Observation{{T: 0, State: 0}, {T: 8, State: 0}},
	})
	_, _, _, err = Open(sp, nil, 40, 1, false, d)
	if err == nil {
		t.Fatal("recovery accepted a duplicate-add record")
	}
	if !errors.Is(err, store.ErrDuplicateID) {
		t.Fatalf("error does not wrap ErrDuplicateID: %v", err)
	}
	if !strings.Contains(err.Error(), "offset") || !strings.Contains(err.Error(), "object 0") {
		t.Fatalf("error lacks offset/object context: %v", err)
	}
}

// TestReplayUnknownObserveFailsRecovery is the twin for Observe on an
// ID the spill does not know.
func TestReplayUnknownObserveFailsRecovery(t *testing.T) {
	sp, c, d := durWorld(t)
	d.Dir = t.TempDir()
	durable, _, _, err := Open(sp, parked(t, c, 3, sp.Len()), 40, 1, false, d)
	if err != nil {
		t.Fatal(err)
	}
	v := durable.Snapshot().ShardVersions()[0]
	if err := durable.Close(); err != nil {
		t.Fatal(err)
	}
	appendRawRecord(t, d.Dir, 1, 0, store.WALRecord{
		Version: v + 1, Op: store.OpObserve, ID: 9999,
		Obs: []uncertain.Observation{{T: 9, State: 0}},
	})
	_, _, _, err = Open(sp, nil, 40, 1, false, d)
	if err == nil {
		t.Fatal("recovery accepted an unknown-observe record")
	}
	if !errors.Is(err, store.ErrUnknownID) {
		t.Fatalf("error does not wrap ErrUnknownID: %v", err)
	}
	if !strings.Contains(err.Error(), "offset") || !strings.Contains(err.Error(), "object 9999") {
		t.Fatalf("error lacks offset/object context: %v", err)
	}
}

// TestCorruptSpillFallsBack: when the newest spill is damaged, recovery
// falls back to the previous one and replays a longer WAL tail, landing
// on the same state.
func TestCorruptSpillFallsBack(t *testing.T) {
	sp, c, d := durWorld(t)
	d.Dir = t.TempDir()
	durable, _, _, err := Open(sp, parked(t, c, 3, sp.Len()), 40, 1, false, d)
	if err != nil {
		t.Fatal(err)
	}
	volatileSet, err := New(sp, parked(t, c, 3, sp.Len()), 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	script := newWriteScript(c, 33)
	for i := 0; i < 6; i++ {
		script.step(t, sp.Len(), durable, volatileSet)
	}
	if err := durable.SpillNow(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		script.step(t, sp.Len(), durable, volatileSet)
	}
	if err := durable.Close(); err != nil {
		t.Fatal(err)
	}

	sdir := filepath.Join(d.Dir, "shard-0000")
	spills, err := store.ListSpills(sdir)
	if err != nil || len(spills) < 2 {
		t.Fatalf("want >= 2 spills, got %v (%v)", spills, err)
	}
	newest := spills[len(spills)-1].Path
	buf, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0xff
	if err := os.WriteFile(newest, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	recovered, _, rec, err := Open(sp, nil, 40, 1, false, d)
	if err != nil {
		t.Fatalf("recovery with corrupt newest spill: %v", err)
	}
	defer recovered.Close()
	if rec.SpillFallbacks != 1 {
		t.Fatalf("SpillFallbacks = %d, want 1", rec.SpillFallbacks)
	}
	if !reflect.DeepEqual(answers(t, sp, recovered.Snapshot()), answers(t, sp, volatileSet.Snapshot())) {
		t.Fatal("fallback recovery diverges")
	}
}

// TestDurableCrashPoints walks the spill lifecycle's crash windows: a
// leftover .tmp from a crashed spill is ignored, and a completed spill
// with the old segments still present (crash before prune) recovers
// cleanly.
func TestDurableCrashPoints(t *testing.T) {
	sp, c, d := durWorld(t)
	d.Dir = t.TempDir()
	durable, _, _, err := Open(sp, parked(t, c, 3, sp.Len()), 40, 1, false, d)
	if err != nil {
		t.Fatal(err)
	}
	volatileSet, err := New(sp, parked(t, c, 3, sp.Len()), 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	script := newWriteScript(c, 55)
	for i := 0; i < 5; i++ {
		script.step(t, sp.Len(), durable, volatileSet)
	}
	if err := durable.SpillNow(); err != nil { // old segment survives prune? prune removes it; re-create below
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		script.step(t, sp.Len(), durable, volatileSet)
	}
	if err := durable.Close(); err != nil {
		t.Fatal(err)
	}

	sdir := filepath.Join(d.Dir, "shard-0000")
	// Crash mid-spill: a half-written temp file under the next version's
	// name must be ignored.
	if err := os.WriteFile(filepath.Join(sdir, "spill-00000000000000ff.snap.tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Crash between spill and prune: duplicate coverage is harmless.
	spills, err := store.ListSpills(sdir)
	if err != nil || len(spills) == 0 {
		t.Fatal(err)
	}

	recovered, _, _, err := Open(sp, nil, 40, 1, false, d)
	if err != nil {
		t.Fatalf("recovery with crash artifacts: %v", err)
	}
	defer recovered.Close()
	if !reflect.DeepEqual(answers(t, sp, recovered.Snapshot()), answers(t, sp, volatileSet.Snapshot())) {
		t.Fatal("crash-point recovery diverges")
	}
}

// TestDurablePruneKeepsTwoSpills: repeated spills retain at most the
// newest two spills and drop fully covered segments.
func TestDurablePruneKeepsTwoSpills(t *testing.T) {
	sp, c, d := durWorld(t)
	d.Dir = t.TempDir()
	durable, _, _, err := Open(sp, parked(t, c, 3, sp.Len()), 40, 1, false, d)
	if err != nil {
		t.Fatal(err)
	}
	script := newWriteScript(c, 77)
	for round := 0; round < 4; round++ {
		for i := 0; i < 4; i++ {
			script.step(t, sp.Len(), durable)
		}
		if err := durable.SpillNow(); err != nil {
			t.Fatal(err)
		}
	}
	if err := durable.Close(); err != nil {
		t.Fatal(err)
	}
	sdir := filepath.Join(d.Dir, "shard-0000")
	spills, err := store.ListSpills(sdir)
	if err != nil {
		t.Fatal(err)
	}
	if len(spills) > 2 {
		t.Fatalf("prune left %d spills, want <= 2", len(spills))
	}
	segs, err := store.ListWALSegments(sdir)
	if err != nil {
		t.Fatal(err)
	}
	cover := spills[0].Version
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1].Base <= cover {
			t.Fatalf("segment %s is fully covered by spill %d but survived prune", segs[i].Path, cover)
		}
	}
	// And the pruned directory still recovers.
	recovered, _, _, err := Open(sp, nil, 40, 1, false, d)
	if err != nil {
		t.Fatalf("recovery after prune: %v", err)
	}
	recovered.Close()
}

// TestDurableStatusAndMetaGuard covers the operator surface: status
// fields move with writes and spills, volatile sets report disabled,
// and a topology change on an existing directory is refused.
func TestDurableStatusAndMetaGuard(t *testing.T) {
	sp, c, d := durWorld(t)
	d.Dir = t.TempDir()
	durable, _, _, err := Open(sp, parked(t, c, 4, sp.Len()), 40, 2, false, d)
	if err != nil {
		t.Fatal(err)
	}
	st := durable.DurabilityStatus()
	if !st.Enabled || st.Fsync || len(st.SpillVersions) != 2 {
		t.Fatalf("fresh status = %+v", st)
	}
	if st.WALBytesSinceSpill != 0 {
		t.Fatalf("fresh WALBytesSinceSpill = %d, want 0", st.WALBytesSinceSpill)
	}
	script := newWriteScript(c, 9)
	for i := 0; i < 6; i++ {
		script.step(t, sp.Len(), durable)
	}
	if st = durable.DurabilityStatus(); st.WALBytesSinceSpill == 0 {
		t.Fatal("writes did not grow WALBytesSinceSpill")
	}
	if err := durable.SpillNow(); err != nil {
		t.Fatal(err)
	}
	if st = durable.DurabilityStatus(); st.WALBytesSinceSpill != 0 {
		t.Fatalf("post-spill WALBytesSinceSpill = %d, want 0", st.WALBytesSinceSpill)
	}
	if err := durable.Close(); err != nil {
		t.Fatal(err)
	}
	if err := durable.Close(); err != nil { // idempotent
		t.Fatal(err)
	}

	// Volatile sets: disabled status, SpillNow refused, Close trivial.
	vol, err := New(sp, parked(t, c, 2, sp.Len()), 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	if vst := vol.DurabilityStatus(); vst.Enabled {
		t.Fatal("volatile set reports durability enabled")
	}
	if err := vol.SpillNow(); err == nil {
		t.Fatal("SpillNow on a volatile set did not error")
	}
	if err := vol.Close(); err != nil {
		t.Fatal(err)
	}
	if vol.Recovery() != nil {
		t.Fatal("volatile set has RecoveryInfo")
	}

	// Reopening with a different topology must refuse.
	if _, _, _, err := Open(sp, nil, 40, 4, false, d); err == nil {
		t.Fatal("meta guard accepted a shard-count change")
	}
	if _, _, _, err := Open(sp, nil, 80, 2, false, d); err == nil {
		t.Fatal("meta guard accepted a samples change")
	}
}
