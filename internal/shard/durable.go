// Durable mode for the shard set: one WAL + spill stream per shard
// under a data directory, so a warm start rebuilds the exact composite
// snapshot — per-shard version chain included — that the crashed
// process last acknowledged.
//
// Layout:
//
//	<dir>/meta.json                  topology guard (shards/samples/states)
//	<dir>/shard-0042/wal-<base>.log  segments, ascending base version
//	<dir>/shard-0042/spill-<v>.snap  columnar snapshots, newest wins
//
// Write path ordering: the shard store applies (and so validates) the
// write first, the WAL records it, and only then is the composite
// version published to readers. A crash between apply and append loses
// at most that one write — which was never acknowledged — and a WAL
// append failure poisons the set (writes fail fast) rather than letting
// the log silently fall behind the store.
//
// Recovery per shard: load the newest spill that passes its checksum
// (falling back to older ones), rebuild the store at the spilled
// version, then replay WAL segments in base order. Records at or below
// the spill version are already folded in and skipped; past it, versions
// must advance by exactly one — a gap or a record the store rejects
// (duplicate add, unknown observe) means log and spill disagree and
// recovery fails loudly with the record's offset and object ID. Only the
// tail of the final segment may be torn; it is truncated and counted.
// The composite version is then 1 + Σ(shardVersion−1): exactly the
// total number of acknowledged writes plus the initial build.
package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pnn/internal/space"
	"pnn/internal/store"
	"pnn/internal/uncertain"
)

// Durability configures a durable shard set.
type Durability struct {
	// Dir is the data directory; one subdirectory per shard.
	Dir string
	// Fsync makes every WAL append fsync before the write is
	// acknowledged (survives machine crashes). Without it the OS flushes
	// at its leisure: process crashes are still fully recoverable, power
	// loss may drop the last few acknowledged writes.
	Fsync bool
	// SpillInterval is the cadence of the background spill loop that
	// snapshots dirty shards and prunes replayed WAL segments. Zero
	// disables the loop (WAL-only; recovery replays from the boot spill).
	SpillInterval time.Duration
	// Rebuild turns a spilled or logged (id, observations) pair back
	// into an object. The shard layer is chain-agnostic, so the caller
	// supplies the motion model here (the facade closes over its markov
	// chain).
	Rebuild func(id int, obs []uncertain.Observation) (*uncertain.Object, error)
}

// RecoveryInfo reports what Open found on disk.
type RecoveryInfo struct {
	// Recovered is false for a fresh data directory.
	Recovered bool
	// Version is the composite version after recovery.
	Version int64
	// SpillVersions holds the per-shard spill version recovery started
	// from, indexed by shard.
	SpillVersions []int64
	// ReplayedRecords counts WAL records applied on top of the spills.
	ReplayedRecords int
	// TornSegments and TornBytes count crash-damaged WAL tails that
	// were truncated away (never acknowledged writes).
	TornSegments int
	TornBytes    int64
	// SpillFallbacks counts corrupt spills that were skipped in favor of
	// an older one.
	SpillFallbacks int
}

// DurabilityStatus is the operator-facing health block.
type DurabilityStatus struct {
	Enabled bool
	Dir     string
	Fsync   bool
	// SpillVersions is the newest on-disk spill per shard.
	SpillVersions []int64
	// WALBytesSinceSpill sums, over shards, the log bytes a restart
	// would replay — the recovery-time budget the spill loop bounds.
	WALBytesSinceSpill int64
	ReplayedRecords    int
	TornBytes          int64
}

type shardDur struct {
	dir       string
	wal       *store.WAL
	lastSpill atomic.Int64
	walBytes  atomic.Int64
}

type durState struct {
	opts   Durability
	shards []*shardDur
	rec    RecoveryInfo

	err  error // sticky append failure; guarded by Set.mu
	stop chan struct{}
	done chan struct{}

	closeOnce sync.Once
	closeErr  error
}

type durMeta struct {
	Format  int `json:"format"`
	Shards  int `json:"shards"`
	Samples int `json:"samples"`
	States  int `json:"states"`
}

// Open builds (or recovers) a durable shard set rooted at d.Dir. A
// fresh directory seeds from objs exactly like New/NewLenient and
// writes each shard's boot spill; a populated one ignores objs and
// recovers the persisted state instead — the persisted writes, not the
// seed, are the source of truth. The returned skipped positions are
// only meaningful on a fresh lenient boot.
func Open(sp *space.Space, objs []*uncertain.Object, samples, shards int, lenient bool, d Durability) (*Set, []int, *RecoveryInfo, error) {
	if d.Dir == "" {
		return nil, nil, nil, fmt.Errorf("shard: durable Open needs a data directory")
	}
	if d.Rebuild == nil {
		return nil, nil, nil, fmt.Errorf("shard: durable Open needs a Rebuild function")
	}
	if shards < 1 {
		shards = 1
	}
	if err := os.MkdirAll(d.Dir, 0o755); err != nil {
		return nil, nil, nil, err
	}
	if err := checkMeta(d.Dir, durMeta{Format: 1, Shards: shards, Samples: samples, States: sp.Len()}); err != nil {
		return nil, nil, nil, err
	}

	parts, origin, err := partition(objs, shards)
	if err != nil {
		return nil, nil, nil, err
	}

	s := &Set{shards: make([]*store.Store, shards)}
	dur := &durState{
		opts:   d,
		shards: make([]*shardDur, shards),
		rec:    RecoveryInfo{SpillVersions: make([]int64, shards)},
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	snap := &Snap{Version: 1, Parts: make([]*store.Snapshot, shards), ChangedID: -1, shards: shards}
	var skipped []int
	for si := range s.shards {
		sdir := filepath.Join(d.Dir, fmt.Sprintf("shard-%04d", si))
		if err := os.MkdirAll(sdir, 0o755); err != nil {
			dur.closeWALs()
			return nil, nil, nil, err
		}
		spills, err := store.ListSpills(sdir)
		if err != nil {
			dur.closeWALs()
			return nil, nil, nil, err
		}
		sd := &shardDur{dir: sdir}
		var st *store.Store
		if len(spills) == 0 {
			// Fresh shard: index the seed slice and persist the boot
			// spill before any write can be acknowledged.
			if lenient {
				var skippedLocal []int
				st, skippedLocal, err = store.NewLenient(sp, parts[si], samples)
				for _, li := range skippedLocal {
					skipped = append(skipped, origin[si][li])
				}
			} else {
				st, err = store.New(sp, parts[si], samples)
			}
			if err != nil {
				dur.closeWALs()
				return nil, nil, nil, err
			}
			if _, err := store.WriteSpill(sdir, shards, si, st.Snapshot()); err != nil {
				dur.closeWALs()
				return nil, nil, nil, fmt.Errorf("shard %d: boot spill: %w", si, err)
			}
			sd.lastSpill.Store(1)
			dur.rec.SpillVersions[si] = 1
		} else {
			st, err = recoverShard(sp, sdir, si, shards, samples, d, dur, sd)
			if err != nil {
				dur.closeWALs()
				return nil, nil, nil, err
			}
			dur.rec.Recovered = true
		}
		wal, err := store.OpenWAL(store.WALSegmentPath(sdir, st.Version()), shards, si, st.Version(), d.Fsync)
		if err != nil {
			dur.closeWALs()
			return nil, nil, nil, err
		}
		sd.wal = wal
		sd.walBytes.Store(pendingWALBytes(sdir, sd.lastSpill.Load()))
		dur.shards[si] = sd
		s.shards[si] = st
		snap.Parts[si] = st.Snapshot()
	}
	// The composite version counts acknowledged writes across shards:
	// each shard contributed (version − 1) writes on top of its build.
	for _, p := range snap.Parts {
		snap.Version += p.Version - 1
	}
	dur.rec.Version = snap.Version
	s.cur.Store(snap)
	s.dur = dur

	if d.SpillInterval > 0 {
		go s.spillLoop(d.SpillInterval)
	} else {
		close(dur.done)
	}
	sort.Ints(skipped)
	return s, skipped, &dur.rec, nil
}

// recoverShard rebuilds one shard store from its newest readable spill
// plus the WAL tail.
func recoverShard(sp *space.Space, sdir string, si, shards, samples int, d Durability, dur *durState, sd *shardDur) (*store.Store, error) {
	spills, err := store.ListSpills(sdir)
	if err != nil {
		return nil, err
	}
	var data *store.SpillData
	var spillErr error
	for i := len(spills) - 1; i >= 0; i-- {
		data, spillErr = store.ReadSpill(spills[i].Path)
		if spillErr == nil {
			break
		}
		dur.rec.SpillFallbacks++
	}
	if data == nil {
		return nil, fmt.Errorf("shard %d: no readable spill in %s (last error: %w)", si, sdir, spillErr)
	}
	if data.Shards != shards || data.ShardIndex != si {
		return nil, fmt.Errorf("shard %d: spill belongs to shard %d/%d, want %d/%d",
			si, data.ShardIndex, data.Shards, si, shards)
	}
	objs := make([]*uncertain.Object, len(data.IDs))
	for i, id := range data.IDs {
		o, err := d.Rebuild(id, data.Obs[i])
		if err != nil {
			return nil, fmt.Errorf("shard %d: rebuilding object %d from spill: %w", si, id, err)
		}
		objs[i] = o
	}
	st, err := store.NewAt(sp, objs, samples, data.Version)
	if err != nil {
		return nil, fmt.Errorf("shard %d: rebuilding store at version %d: %w", si, data.Version, err)
	}
	sd.lastSpill.Store(data.Version)
	dur.rec.SpillVersions[si] = data.Version

	segs, err := store.ListWALSegments(sdir)
	if err != nil {
		return nil, err
	}
	for k, seg := range segs {
		last := k == len(segs)-1
		info, err := store.ReplayWAL(seg.Path, last, func(off int64, rec store.WALRecord) error {
			v := st.Version()
			if rec.Version <= v {
				return nil // already folded into the spill
			}
			if rec.Version != v+1 {
				return fmt.Errorf("version gap: record %d after store version %d", rec.Version, v)
			}
			switch rec.Op {
			case store.OpAdd:
				o, err := d.Rebuild(rec.ID, rec.Obs)
				if err != nil {
					return err
				}
				_, err = st.AddObject(o)
				return err
			case store.OpObserve:
				_, err := st.Observe(rec.ID, rec.Obs)
				return err
			default:
				return fmt.Errorf("unknown op %d", rec.Op)
			}
		})
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", si, err)
		}
		dur.rec.ReplayedRecords += info.Records
		if info.TornBytes > 0 {
			if !last {
				return nil, fmt.Errorf("shard %d: wal %s: %d torn bytes mid-stream (only the final segment may have a torn tail)",
					si, seg.Path, info.TornBytes)
			}
			dur.rec.TornSegments++
			dur.rec.TornBytes += info.TornBytes
		}
	}
	return st, nil
}

// pendingWALBytes sums segment sizes not yet covered by the newest
// spill: a status metric for "how much would a restart replay".
func pendingWALBytes(sdir string, lastSpill int64) int64 {
	segs, err := store.ListWALSegments(sdir)
	if err != nil {
		return 0
	}
	var n int64
	for i, seg := range segs {
		covered := i+1 < len(segs) && segs[i+1].Base <= lastSpill
		if !covered && seg.Base >= lastSpill {
			if st, err := os.Stat(seg.Path); err == nil && st.Size() > store.WALHeaderSize {
				n += st.Size() - store.WALHeaderSize
			}
		}
	}
	return n
}

func checkMeta(dir string, want durMeta) error {
	path := filepath.Join(dir, "meta.json")
	buf, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		out, merr := json.Marshal(want)
		if merr != nil {
			return merr
		}
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, append(out, '\n'), 0o644); err != nil {
			return err
		}
		return os.Rename(tmp, path)
	}
	if err != nil {
		return err
	}
	var got durMeta
	if err := json.Unmarshal(buf, &got); err != nil {
		return fmt.Errorf("shard: corrupt %s: %w", path, err)
	}
	if got != want {
		return fmt.Errorf("shard: data directory was written with shards=%d samples=%d states=%d (format %d); refusing to open with shards=%d samples=%d states=%d — recovered answers would not be byte-identical",
			got.Shards, got.Samples, got.States, got.Format, want.Shards, want.Samples, want.States)
	}
	return nil
}

// logWrite appends the already-applied write to the owning shard's WAL.
// Callers hold s.mu. An append failure is sticky: the store is now
// ahead of the log, so further writes are refused rather than widening
// the divergence.
func (s *Set) logWrite(si int, rec store.WALRecord) error {
	sd := s.dur.shards[si]
	n, err := sd.wal.Append(rec)
	if err != nil {
		s.dur.err = fmt.Errorf("shard %d: wal append: %w", si, err)
		return fmt.Errorf("shard: durability failure, write applied but not logged (restart to recover a consistent state): %w", err)
	}
	sd.walBytes.Add(int64(n))
	return nil
}

// spillLoop periodically spills dirty shards so WAL replay stays
// bounded. It runs until Close.
func (s *Set) spillLoop(interval time.Duration) {
	defer close(s.dur.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.dur.stop:
			return
		case <-t.C:
			s.SpillNow() // an error leaves the WAL authoritative; retried next tick
		}
	}
}

// SpillNow snapshots every shard with log bytes pending, writes its
// spill, rotates its WAL segment, and prunes segments and spills the
// new spill supersedes. It is safe to call concurrently with writes and
// is also the spill loop's body.
func (s *Set) SpillNow() error {
	if s.dur == nil {
		return fmt.Errorf("shard: SpillNow on a volatile set")
	}
	var first error
	for si := range s.dur.shards {
		if s.dur.shards[si].walBytes.Load() == 0 {
			continue
		}
		if err := s.spillShard(si); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (s *Set) spillShard(si int) error {
	sd := s.dur.shards[si]

	// Rotate under the write lock: the new segment's base is exactly the
	// version the spill will capture, so no record lands in between.
	s.mu.Lock()
	snap := s.shards[si].Snapshot()
	if snap.Version == sd.lastSpill.Load() {
		s.mu.Unlock()
		return nil
	}
	oldWAL := sd.wal
	rotated := oldWAL.Path() != store.WALSegmentPath(sd.dir, snap.Version)
	if rotated {
		next, err := store.OpenWAL(store.WALSegmentPath(sd.dir, snap.Version), len(s.shards), si, snap.Version, s.dur.opts.Fsync)
		if err != nil {
			s.mu.Unlock()
			return fmt.Errorf("shard %d: rotating wal: %w", si, err)
		}
		sd.wal = next
	}
	bytesAtRotate := sd.walBytes.Load()
	s.mu.Unlock()
	if rotated {
		oldWAL.Close()
	}

	// The expensive part runs outside the lock; writers append to the
	// fresh segment meanwhile.
	if _, err := store.WriteSpill(sd.dir, len(s.shards), si, snap); err != nil {
		return fmt.Errorf("shard %d: spill at version %d: %w", si, snap.Version, err)
	}
	sd.lastSpill.Store(snap.Version)
	sd.walBytes.Add(-bytesAtRotate)
	s.pruneShardFiles(sd)
	return nil
}

// pruneShardFiles keeps the newest two spills (the freshly written one
// plus one fallback) and deletes WAL segments every kept spill already
// covers — a segment is covered when its successor's base does not
// exceed the oldest kept spill, so all its records are at or below it.
// Best-effort: a failed delete costs disk, not correctness.
func (s *Set) pruneShardFiles(sd *shardDur) {
	spills, err := store.ListSpills(sd.dir)
	if err != nil || len(spills) == 0 {
		return
	}
	keepFrom := len(spills) - 2
	if keepFrom < 0 {
		keepFrom = 0
	}
	for _, sp := range spills[:keepFrom] {
		os.Remove(sp.Path)
	}
	cover := spills[keepFrom].Version
	segs, err := store.ListWALSegments(sd.dir)
	if err != nil {
		return
	}
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1].Base <= cover {
			os.Remove(segs[i].Path)
		}
	}
}

// DurabilityStatus reports the durable-mode health block; Enabled is
// false for a volatile set.
func (s *Set) DurabilityStatus() DurabilityStatus {
	if s.dur == nil {
		return DurabilityStatus{}
	}
	st := DurabilityStatus{
		Enabled:         true,
		Dir:             s.dur.opts.Dir,
		Fsync:           s.dur.opts.Fsync,
		SpillVersions:   make([]int64, len(s.dur.shards)),
		ReplayedRecords: s.dur.rec.ReplayedRecords,
		TornBytes:       s.dur.rec.TornBytes,
	}
	for i, sd := range s.dur.shards {
		st.SpillVersions[i] = sd.lastSpill.Load()
		st.WALBytesSinceSpill += sd.walBytes.Load()
	}
	return st
}

// Recovery returns what Open found on disk, or nil for a volatile set.
func (s *Set) Recovery() *RecoveryInfo {
	if s.dur == nil {
		return nil
	}
	rec := s.dur.rec
	return &rec
}

// Close stops the spill loop and closes the WAL segments, flushing
// them. Idempotent; a volatile set closes trivially.
func (s *Set) Close() error {
	if s.dur == nil {
		return nil
	}
	s.dur.closeOnce.Do(func() {
		close(s.dur.stop)
		<-s.dur.done
		s.mu.Lock()
		defer s.mu.Unlock()
		for _, sd := range s.dur.shards {
			if sd == nil || sd.wal == nil {
				continue
			}
			if err := sd.wal.Close(); err != nil && s.dur.closeErr == nil {
				s.dur.closeErr = err
			}
			sd.wal = nil
		}
		if s.dur.err == nil {
			s.dur.err = fmt.Errorf("shard: set is closed")
		}
	})
	return s.dur.closeErr
}

// closeWALs releases any segments opened before a failed Open.
func (d *durState) closeWALs() {
	for _, sd := range d.shards {
		if sd != nil && sd.wal != nil {
			sd.wal.Close()
		}
	}
}
