package shard

import (
	"reflect"
	"testing"

	"pnn/internal/query"
	"pnn/internal/uncertain"
)

// TestScatterReplayEquivalence is the cluster-mode determinism
// contract at the shard layer: partitioning the dataset across two
// independent Sets ("peers"), scattering each (pre-drawn state
// columns, wire form), merging with MergeScatters and replaying
// through Gather must answer byte-identically to RunSharedInfluence on
// one Set holding every object — for all three predicates in one
// shared-world group, with and without an adaptive confidence policy,
// at workers 1 and 4.
func TestScatterReplayEquivalence(t *testing.T) {
	ds := taxiWorld(t)
	const samples = 300

	whole, err := New(ds.Space, ds.Objects, samples, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Partition by the same routing hash the Set uses so the peer split
	// is deterministic; any disjoint partition would do — answers are
	// layout-independent.
	var partA, partB []*uncertain.Object
	for _, o := range ds.Objects {
		if whole.ShardFor(o.ID) == 0 {
			partA = append(partA, o)
		} else {
			partB = append(partB, o)
		}
	}
	if len(partA) == 0 || len(partB) == 0 {
		t.Fatalf("degenerate partition: %d/%d objects", len(partA), len(partB))
	}
	peerA, err := New(ds.Space, partA, samples, 1)
	if err != nil {
		t.Fatal(err)
	}
	peerB, err := New(ds.Space, partB, samples, 1)
	if err != nil {
		t.Fatal(err)
	}

	items := []GroupItem{
		{Op: OpForAll, Tau: 0.1},
		{Op: OpExists, Tau: 0.05},
		{Op: OpCNN, Tau: 0.3},
	}
	confs := []query.Confidence{
		{},
		{Eps: 0.05, Delta: 0.05, MaxSamples: samples},
	}
	for ci, conf := range confs {
		for _, qc := range []struct {
			state, ts, te, k int
			seed             int64
		}{
			{state: 17, ts: 20, te: 30, k: 1, seed: 7},
			{state: 400, ts: 50, te: 62, k: 2, seed: 42},
		} {
			spec := GroupSpec{
				Q:    query.StateQuery(ds.Space.Point(qc.state)),
				Ts:   qc.ts,
				Te:   qc.te,
				K:    qc.k,
				Seed: qc.seed,
				Conf: conf,
			}
			wantAns, wantStats, wantInf, err := whole.Snapshot().RunSharedInfluence(spec, items)
			if err != nil {
				t.Fatalf("conf %d state %d: local run: %v", ci, qc.state, err)
			}
			scA, err := peerA.Snapshot().Scatter(spec)
			if err != nil {
				t.Fatalf("conf %d state %d: peer A scatter: %v", ci, qc.state, err)
			}
			scB, err := peerB.Snapshot().Scatter(spec)
			if err != nil {
				t.Fatalf("conf %d state %d: peer B scatter: %v", ci, qc.state, err)
			}
			for _, workers := range []int{1, 4} {
				in, err := MergeScatters([]*ScatterResult{scA, scB})
				if err != nil {
					t.Fatalf("conf %d state %d: merge: %v", ci, qc.state, err)
				}
				in.Space = ds.Space
				in.Workers = workers
				gotAns, gotStats, gotInf, err := Gather(spec, items, in)
				if err != nil {
					t.Fatalf("conf %d state %d workers %d: gather: %v", ci, qc.state, workers, err)
				}
				if !reflect.DeepEqual(gotAns, wantAns) {
					t.Errorf("conf %d state %d workers %d: answers differ:\n local: %+v\nreplay: %+v", ci, qc.state, workers, wantAns, gotAns)
				}
				if !reflect.DeepEqual(gotInf, wantInf) {
					t.Errorf("conf %d state %d workers %d: influence differs:\n local: %+v\nreplay: %+v", ci, qc.state, workers, wantInf, gotInf)
				}
				// Worlds/ErrorBound/EarlyStopped are part of the response
				// surface (sampling block) and must match exactly; scatter
				// accounting (candidates, influencers) merges to the same
				// totals. Timings are inherently run-dependent.
				if gotStats.Worlds != wantStats.Worlds || gotStats.ErrorBound != wantStats.ErrorBound || gotStats.EarlyStopped != wantStats.EarlyStopped {
					t.Errorf("conf %d state %d workers %d: sampling stats differ: local {%d %g %t}, replay {%d %g %t}",
						ci, qc.state, workers,
						wantStats.Worlds, wantStats.ErrorBound, wantStats.EarlyStopped,
						gotStats.Worlds, gotStats.ErrorBound, gotStats.EarlyStopped)
				}
				if gotStats.Candidates != wantStats.Candidates || gotStats.Influencers != wantStats.Influencers {
					t.Errorf("conf %d state %d workers %d: scatter stats differ: local cand=%d inf=%d, replay cand=%d inf=%d",
						ci, qc.state, workers, wantStats.Candidates, wantStats.Influencers, gotStats.Candidates, gotStats.Influencers)
				}
				if gotStats.LatticeSets != wantStats.LatticeSets {
					t.Errorf("conf %d state %d workers %d: lattice sets differ: local %d, replay %d", ci, qc.state, workers, wantStats.LatticeSets, gotStats.LatticeSets)
				}
			}
		}
	}
}

// TestMergeScattersRejectsInconsistency covers the two merge-time
// failure modes the coordinator must refuse: disagreeing sample
// budgets and the same object scattered by two peers.
func TestMergeScattersRejectsInconsistency(t *testing.T) {
	a := &ScatterResult{Samples: 100, Rows: []ScatterRow{{ID: 1}}}
	b := &ScatterResult{Samples: 200, Rows: []ScatterRow{{ID: 2}}}
	if _, err := MergeScatters([]*ScatterResult{a, b}); err == nil {
		t.Fatal("sample budget mismatch accepted")
	}
	c := &ScatterResult{Samples: 100, Rows: []ScatterRow{{ID: 1}}}
	if _, err := MergeScatters([]*ScatterResult{a, c}); err == nil {
		t.Fatal("duplicate object across peers accepted")
	}
}
