package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"pnn/internal/markov"
	"pnn/internal/query"
	"pnn/internal/space"
	"pnn/internal/uncertain"
)

// gridWorld builds a w×h grid with its default motion chain.
func gridWorld(t testing.TB, w, h int) (*space.Space, markov.Chain) {
	t.Helper()
	sp, err := space.Grid(w, h)
	if err != nil {
		t.Fatal(err)
	}
	c, err := markov.NewHomogeneous(sp.TransitionMatrix(0.5))
	if err != nil {
		t.Fatal(err)
	}
	return sp, c
}

func mkObj(t testing.TB, id int, c markov.Chain, obs ...uncertain.Observation) *uncertain.Object {
	t.Helper()
	o, err := uncertain.NewObject(id, obs, c)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// parked returns n objects sitting on distinct states for [0, 8].
func parked(t testing.TB, c markov.Chain, n, states int) []*uncertain.Object {
	t.Helper()
	objs := make([]*uncertain.Object, n)
	for id := 0; id < n; id++ {
		st := (id * 7) % states
		objs[id] = mkObj(t, id, c, uncertain.Observation{T: 0, State: st}, uncertain.Observation{T: 8, State: st})
	}
	return objs
}

func TestRoutingIsStableAndTotal(t *testing.T) {
	sp, c := gridWorld(t, 10, 10)
	objs := parked(t, c, 20, sp.Len())
	for _, shards := range []int{1, 2, 4, 7} {
		s, err := New(sp, objs, 50, shards)
		if err != nil {
			t.Fatal(err)
		}
		if s.NumShards() != shards {
			t.Fatalf("NumShards = %d, want %d", s.NumShards(), shards)
		}
		if s.NumObjects() != len(objs) {
			t.Fatalf("shards=%d: NumObjects = %d, want %d", shards, s.NumObjects(), len(objs))
		}
		snap := s.Snapshot()
		for _, o := range objs {
			si, oi, ok := snap.Locate(o.ID)
			if !ok {
				t.Fatalf("shards=%d: object %d not found", shards, o.ID)
			}
			if si != s.ShardFor(o.ID) {
				t.Errorf("shards=%d: Locate says shard %d, ShardFor says %d", shards, si, s.ShardFor(o.ID))
			}
			if got := snap.Parts[si].IDs[oi]; got != o.ID {
				t.Errorf("shards=%d: Locate(%d) points at object %d", shards, o.ID, got)
			}
		}
	}
	// shardOf must be a pure function of (id, shards).
	for id := -3; id < 100; id += 7 {
		if shardOf(id, 4) != shardOf(id, 4) {
			t.Fatalf("shardOf(%d, 4) unstable", id)
		}
		if got := shardOf(id, 1); got != 0 {
			t.Errorf("shardOf(%d, 1) = %d, want 0", id, got)
		}
	}
}

func TestSingleShardDegeneratesToStore(t *testing.T) {
	sp, c := gridWorld(t, 10, 10)
	objs := parked(t, c, 5, sp.Len())
	s, err := New(sp, objs, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if len(snap.Parts) != 1 || len(snap.Parts[0].IDs) != 5 {
		t.Fatalf("S=1 snapshot = %d parts / %v objects", len(snap.Parts), snap.NumObjects())
	}
	if snap.Version != 1 || snap.Parts[0].Version != 1 {
		t.Fatalf("fresh versions = %d / %v", snap.Version, snap.ShardVersions())
	}
	// All writes land on shard 0 and composite == shard version.
	for i := 0; i < 3; i++ {
		st := (50 + i) % sp.Len()
		next, err := s.AddObject(mkObj(t, 100+i, c,
			uncertain.Observation{T: 0, State: st}, uncertain.Observation{T: 8, State: st}))
		if err != nil {
			t.Fatal(err)
		}
		if next.Version != int64(2+i) || next.Parts[0].Version != int64(2+i) {
			t.Fatalf("write %d: composite %d, shard %v", i, next.Version, next.ShardVersions())
		}
	}
}

func TestCompositeVersioning(t *testing.T) {
	sp, c := gridWorld(t, 10, 10)
	objs := parked(t, c, 8, sp.Len())
	const shards = 4
	s, err := New(sp, objs, 50, shards)
	if err != nil {
		t.Fatal(err)
	}
	if v := s.Version(); v != 1 {
		t.Fatalf("fresh composite version = %d, want 1", v)
	}
	old := s.Snapshot()

	// Each write advances the composite by one and exactly one shard's
	// version by one.
	prev := s.Snapshot()
	for i := 0; i < 6; i++ {
		id := 200 + i
		st := (id * 3) % sp.Len()
		next, err := s.AddObject(mkObj(t, id, c,
			uncertain.Observation{T: 0, State: st}, uncertain.Observation{T: 8, State: st}))
		if err != nil {
			t.Fatal(err)
		}
		if next.Version != prev.Version+1 {
			t.Fatalf("write %d: composite %d after %d", i, next.Version, prev.Version)
		}
		bumped := 0
		for si := range next.Parts {
			switch next.Parts[si].Version {
			case prev.Parts[si].Version:
			case prev.Parts[si].Version + 1:
				bumped++
				if si != s.ShardFor(id) {
					t.Errorf("write %d bumped shard %d, routed to %d", i, si, s.ShardFor(id))
				}
			default:
				t.Fatalf("write %d: shard %d jumped %d -> %d", i, si, prev.Parts[si].Version, next.Parts[si].Version)
			}
		}
		if bumped != 1 {
			t.Fatalf("write %d bumped %d shards", i, bumped)
		}
		prev = next
	}

	// Failed writes leave the composite untouched.
	before := s.Version()
	if _, err := s.AddObject(objs[0]); err == nil {
		t.Error("duplicate AddObject succeeded")
	}
	if _, err := s.Observe(9999, []uncertain.Observation{{T: 9, State: 0}}); err == nil {
		t.Error("Observe of unknown id succeeded")
	}
	if v := s.Version(); v != before {
		t.Errorf("failed writes moved version %d -> %d", before, v)
	}

	// Old composite snapshots stay fully usable (RCU).
	if old.Version != 1 || old.NumObjects() != len(objs) {
		t.Errorf("old snapshot mutated: version %d, %d objects", old.Version, old.NumObjects())
	}
}

func TestLenientBuildReportsOriginalPositions(t *testing.T) {
	sp, c := gridWorld(t, 10, 10)
	good := func(id int) *uncertain.Object {
		st := (id * 5) % sp.Len()
		return mkObj(t, id, c, uncertain.Observation{T: 0, State: st}, uncertain.Observation{T: 8, State: st})
	}
	// Teleporters: opposite corners of the grid in 2 tics.
	bad := func(id int) *uncertain.Object {
		return mkObj(t, id, c, uncertain.Observation{T: 0, State: 0}, uncertain.Observation{T: 2, State: sp.Len() - 1})
	}
	objs := []*uncertain.Object{good(0), bad(1), good(2), bad(3), good(4)}
	for _, shards := range []int{1, 3} {
		s, skipped, err := NewLenient(sp, objs, 50, shards)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(skipped) != "[1 3]" {
			t.Errorf("shards=%d: skipped = %v, want [1 3]", shards, skipped)
		}
		if s.NumObjects() != 3 {
			t.Errorf("shards=%d: kept %d objects, want 3", shards, s.NumObjects())
		}
		// Strict build fails regardless of sharding.
		if _, err := New(sp, objs, 50, shards); err == nil {
			t.Errorf("shards=%d: strict New accepted a teleporting object", shards)
		}
	}
}

func TestDuplicateIDsRejectedAcrossShards(t *testing.T) {
	sp, c := gridWorld(t, 6, 6)
	a := mkObj(t, 7, c, uncertain.Observation{T: 0, State: 1})
	b := mkObj(t, 7, c, uncertain.Observation{T: 0, State: 2})
	if _, err := New(sp, []*uncertain.Object{a, b}, 10, 4); err == nil {
		t.Error("duplicate IDs across a sharded build must fail")
	}
}

// TestQuerySpansAllShards places one near object per shard and checks a
// single query gathers candidates from every one of them.
func TestQuerySpansAllShards(t *testing.T) {
	sp, c := gridWorld(t, 10, 10)
	const shards = 4
	center := sp.NearestState(sp.Point(55))
	// Pick one object ID per shard; all sit on the same central state, so
	// with k = shards every one of them is a ∀-candidate.
	var objs []*uncertain.Object
	byShard := map[int]int{}
	for id := 0; len(byShard) < shards; id++ {
		si := shardOf(id, shards)
		if _, dup := byShard[si]; dup {
			continue
		}
		byShard[si] = id
		objs = append(objs, mkObj(t, id, c,
			uncertain.Observation{T: 0, State: center}, uncertain.Observation{T: 8, State: center}))
	}
	s, err := New(sp, objs, 60, shards)
	if err != nil {
		t.Fatal(err)
	}
	for si, p := range s.Snapshot().Parts {
		if len(p.IDs) != 1 {
			t.Fatalf("shard %d holds %d objects, want 1", si, len(p.IDs))
		}
	}
	q := query.StateQuery(sp.Point(center))
	res, st, err := s.Snapshot().ForAllKNN(q, 1, 7, shards, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != shards {
		t.Fatalf("ForAllKNN(k=%d) = %+v, want one result per shard", shards, res)
	}
	if st.Candidates != shards || st.Influencers != shards {
		t.Errorf("stats = %+v, want %d candidates and influencers", st, shards)
	}
	for i, r := range res {
		if i > 0 && res[i-1].ID >= r.ID {
			t.Errorf("results not ID-sorted: %+v", res)
		}
		if r.Prob < 0.99 {
			t.Errorf("object %d: prob %v, want ~1 (k covers everyone)", r.ID, r.Prob)
		}
	}
}

func TestQueryValidation(t *testing.T) {
	sp, c := gridWorld(t, 6, 6)
	s, err := New(sp, parked(t, c, 3, sp.Len()), 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	q := query.StateQuery(sp.Point(0))
	if _, _, err := snap.ForAllKNN(query.Query{}, 0, 5, 1, 0.1, 1); err == nil {
		t.Error("zero query accepted")
	}
	if _, _, err := snap.ExistsKNN(q, 5, 1, 1, 0.1, 1); err == nil {
		t.Error("inverted interval accepted")
	}
	if _, _, err := snap.ForAllKNN(q, 0, 5, 0, 0.1, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := snap.CNNK(q, 0, 5, 1, 0, 1); err == nil {
		t.Error("CNN tau=0 accepted")
	}
	// Window that nobody is alive in: empty result, no error.
	res, st, err := snap.ExistsKNN(q, 100, 110, 1, 0.1, 1)
	if err != nil || len(res) != 0 || st.Influencers != 0 {
		t.Errorf("dead-window query: res=%v st=%+v err=%v", res, st, err)
	}
}

// TestAddRacesObserveSameID is the routing edge case of concurrent
// ingestion: one goroutine adds object X while another Observes the
// same ID. The Observe may legitimately fail (the object does not exist
// yet) or succeed (it landed after the add), but the set must never
// tear: every published composite version is consistent, and the final
// object reflects exactly the writes that reported success.
func TestAddRacesObserveSameID(t *testing.T) {
	sp, c := gridWorld(t, 10, 10)
	const shards = 4
	for round := 0; round < 8; round++ {
		s, err := New(sp, parked(t, c, 4, sp.Len()), 20, shards)
		if err != nil {
			t.Fatal(err)
		}
		const id = 77
		st := (id * 7) % sp.Len()
		var wg sync.WaitGroup
		var observed atomic.Bool
		wg.Add(2)
		go func() {
			defer wg.Done()
			if _, err := s.AddObject(mkObj(t, id, c,
				uncertain.Observation{T: 0, State: st}, uncertain.Observation{T: 8, State: st})); err != nil {
				t.Errorf("round %d: AddObject: %v", round, err)
			}
		}()
		go func() {
			defer wg.Done()
			if _, err := s.Observe(id, []uncertain.Observation{{T: 9, State: st}}); err == nil {
				observed.Store(true)
			}
		}()
		wg.Wait()
		snap := s.Snapshot()
		si, oi, ok := snap.Locate(id)
		if !ok {
			t.Fatalf("round %d: object %d lost", round, id)
		}
		o := snap.Parts[si].Engine.Tree().Objects()[oi]
		wantObs := 2
		wantVersion := int64(2)
		if observed.Load() {
			wantObs, wantVersion = 3, 3
		}
		if len(o.Obs) != wantObs {
			t.Errorf("round %d: object has %d observations, want %d (observe ok=%v)",
				round, len(o.Obs), wantObs, observed.Load())
		}
		if snap.Version != wantVersion {
			t.Errorf("round %d: composite version %d, want %d", round, snap.Version, wantVersion)
		}
	}
}

// TestConcurrentWritesAndQueries hammers all shards with writes while
// readers scatter-gather, under -race in the short tier.
func TestConcurrentWritesAndQueries(t *testing.T) {
	sp, c := gridWorld(t, 10, 10)
	const (
		shards  = 4
		writes  = 32
		readers = 3
	)
	s, err := New(sp, parked(t, c, 6, sp.Len()), 30, shards)
	if err != nil {
		t.Fatal(err)
	}
	s.SetParallelism(2)
	var wg sync.WaitGroup
	var done atomic.Bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		last := int64(0)
		for w := 0; w < writes; w++ {
			var snap *Snap
			var err error
			if w%2 == 0 {
				id := 500 + w
				st := (id * 3) % sp.Len()
				snap, err = s.AddObject(mkObj(t, id, c,
					uncertain.Observation{T: 0, State: st}, uncertain.Observation{T: 8, State: st}))
			} else {
				id := w % 6
				snap, err = s.Observe(id, []uncertain.Observation{{T: 9 + w/6, State: (id * 7) % sp.Len()}})
			}
			if err != nil {
				t.Errorf("write %d: %v", w, err)
				return
			}
			if snap.Version <= last {
				t.Errorf("write %d: version %d after %d", w, snap.Version, last)
				return
			}
			last = snap.Version
		}
	}()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; !done.Load(); i++ {
				snap := s.Snapshot()
				q := query.StateQuery(sp.Point((r*13 + i*29) % sp.Len()))
				res, _, err := snap.ExistsKNN(q, 1, 7, 1, 0.05, int64(i))
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				for _, rr := range res {
					if _, _, ok := snap.Locate(rr.ID); !ok {
						t.Errorf("reader %d: result %d missing from its own snapshot", r, rr.ID)
					}
				}
			}
		}(r)
	}
	wg.Wait()
	if v := s.Version(); v != int64(1+writes) {
		t.Errorf("final version = %d, want %d", v, 1+writes)
	}
}

func TestCacheStatsSumAcrossShards(t *testing.T) {
	sp, c := gridWorld(t, 8, 8)
	s, err := New(sp, parked(t, c, 6, sp.Len()), 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PrepareAll(); err != nil {
		t.Fatal(err)
	}
	cs := s.CacheStats()
	if cs.Builds != 6 {
		t.Errorf("Builds after PrepareAll = %d, want 6", cs.Builds)
	}
	// A query over warmed shards builds nothing new.
	q := query.StateQuery(sp.Point(0))
	_, st, err := s.Snapshot().ExistsKNN(q, 1, 7, 1, 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.SamplerBuilds != 0 {
		t.Errorf("warm query built %d samplers", st.SamplerBuilds)
	}
	if after := s.CacheStats(); after.Builds != cs.Builds {
		t.Errorf("warm query grew Builds %d -> %d", cs.Builds, after.Builds)
	}
}
