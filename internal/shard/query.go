package shard

import (
	"fmt"
	"math"
	"sync"
	"time"

	"pnn/internal/inference"
	"pnn/internal/query"
)

// Result is one probabilistic query answer, keyed by the caller-chosen
// object ID (engine indices are shard-local and meaningless across the
// set). Results are sorted by ID — the only order that is stable under
// re-partitioning.
type Result struct {
	ID   int
	Prob float64
}

// IntervalResult is one PCNN answer: a maximal timestamp set during
// which the object stays the likely (k-)NN.
type IntervalResult struct {
	ID    int
	Times []int
	Prob  float64
}

// entry is one influencer object of a scatter-gather query: where it
// lives, its stable ID, and its adapted sampler. Its possible worlds
// are drawn from a private generator seeded by mcrand.SubSeed(request
// seed, object ID) — keying on the object ID (never on shard or engine
// index) is what makes answers independent of the shard count: an
// object's sampled trajectories for a given request seed are the same
// whether it shares an engine with every other object or with none of
// them.
type entry struct {
	shard int
	oi    int // engine index within the shard
	id    int
	smp   *inference.Sampler
}

// exec is the scatter output of one scatter-gather query: the merged
// influencer entries (grouped by shard for the sampling phase) plus the
// merged candidate rows. Evaluation happens in Gather, which consumes
// this through a GatherInput.
type exec struct {
	samples int
	workers int

	entries   []entry
	byShard   [][]int   // entry indices per shard
	cands     []int     // entry indices that survived the ∀-filter
	pruneDist []float64 // per-timestep influence threshold, loosest over shards
	stats     query.Stats
}

// Influence summarizes the influence region of one evaluated spec: the
// influencer object IDs (ascending) and the per-timestep pruning
// threshold, taken as the elementwise loosest (largest) over shards so
// it bounds every shard's own threshold. An object that stays strictly
// outside PruneDist at every window time where it is alive cannot be
// among the k nearest at any time and therefore cannot change the
// spec's answer — the contract behind write-path subscription
// invalidation.
type Influence struct {
	IDs       []int
	PruneDist []float64
}

// scatter runs the filter step and sampler adaptation on every shard in
// parallel and merges the per-shard candidate/influence sets. Per-shard
// pruning distances are computed over fewer objects and are therefore
// only looser than the global ones, so the merged sets are supersets of
// the single-tree sets; because pruning is lossless (a pruned object is
// dominated by >= k objects in every possible world), the extra objects
// can neither win the NN predicate themselves nor flip it for anyone
// else — they surface as zero-probability rows that the tau/p>0 filter
// drops, keeping answers byte-identical across shard counts.
func (s *Snap) scatter(spec GroupSpec) (*exec, error) {
	begin := time.Now()
	x := &exec{
		samples: s.Parts[0].Engine.SampleCount(),
		workers: s.Parts[0].Engine.Parallelism(),
		byShard: make([][]int, len(s.Parts)),
	}
	q, ts, te, k := spec.Q, spec.Ts, spec.Te, spec.K
	// The scatter phase already runs one goroutine per shard; giving the
	// gather-phase world evaluation the same fan-out keeps the whole
	// pipeline at one concurrency budget, so a sharded set speeds up
	// queries even when no explicit parallelism was configured.
	if x.workers < len(s.Parts) {
		x.workers = len(s.Parts)
	}
	type shardPlan struct {
		influencers []int
		candidates  []int
		prune       []float64
		samplers    []*inference.Sampler
		built       int
		err         error
	}
	plans := make([]shardPlan, len(s.Parts))
	var wg sync.WaitGroup
	for si, p := range s.Parts {
		wg.Add(1)
		go func(si int, eng *query.Engine) {
			defer wg.Done()
			pl := &plans[si]
			pr, err := eng.PruneWindow(q, ts, te, k)
			if err != nil {
				pl.err = err
				return
			}
			pl.influencers = pr.Influencers
			pl.candidates = pr.Candidates
			pl.prune = pr.PruneDist
			if len(pl.prune) != te-ts+1 {
				// Unknown thresholds are no constraint at all: +Inf keeps
				// the merged region conservative.
				pl.prune = make([]float64, te-ts+1)
				for i := range pl.prune {
					pl.prune[i] = math.Inf(1)
				}
			}
			pl.samplers = make([]*inference.Sampler, len(pr.Influencers))
			for i, oi := range pr.Influencers {
				smp, built, err := eng.SamplerCached(oi)
				if err != nil {
					pl.err = err
					return
				}
				if built {
					pl.built++
				}
				pl.samplers[i] = smp
			}
		}(si, p.Engine)
	}
	wg.Wait()
	for si := range plans {
		pl := &plans[si]
		if pl.err != nil {
			return nil, pl.err
		}
		isCand := make(map[int]bool, len(pl.candidates))
		for _, oi := range pl.candidates {
			isCand[oi] = true
		}
		for i, oi := range pl.influencers {
			id := s.Parts[si].IDs[oi]
			ei := len(x.entries)
			x.entries = append(x.entries, entry{
				shard: si,
				oi:    oi,
				id:    id,
				smp:   pl.samplers[i],
			})
			x.byShard[si] = append(x.byShard[si], ei)
			if isCand[oi] {
				x.cands = append(x.cands, ei)
			}
		}
		x.stats.SamplerBuilds += pl.built
		// Per-shard thresholds are computed over fewer objects and are
		// therefore only looser; the elementwise max bounds them all.
		if x.pruneDist == nil {
			x.pruneDist = append([]float64(nil), pl.prune...)
		} else {
			for i := range x.pruneDist {
				if i < len(pl.prune) && pl.prune[i] > x.pruneDist[i] {
					x.pruneDist[i] = pl.prune[i]
				}
			}
		}
	}
	x.stats.Candidates = len(x.cands)
	x.stats.Influencers = len(x.entries)
	x.stats.AdaptTime = time.Since(begin)
	return x, nil
}

// GroupOp selects the predicate of one member of a shared-world group.
type GroupOp int

const (
	// OpForAll is P∀kNNQ: the object is among the k nearest at every
	// time in the window.
	OpForAll GroupOp = iota
	// OpExists is P∃kNNQ: the object is among the k nearest at some
	// time in the window.
	OpExists
	// OpCNN is PCkNNQ: maximal timestamp sets on which the object
	// stays among the k likely nearest. Tau must be positive.
	OpCNN
)

// GroupItem is one member of a shared-world group: a predicate plus its
// probability threshold. The sampled worlds are shared by every member;
// only the per-world predicate evaluation and the final tau filter
// differ.
type GroupItem struct {
	Op  GroupOp
	Tau float64
}

// GroupAnswer is the answer to one GroupItem, in the same position.
// Results is set for OpForAll/OpExists, Intervals for OpCNN. A
// per-item failure (e.g. the PCNN lattice cap) lands in Err without
// disturbing the other members.
type GroupAnswer struct {
	Results   []Result
	Intervals []IntervalResult
	Err       error
}

// GroupSpec is the shared part of a coalesced world-sharing group: the
// query reference, window, k, base seed, and the adaptive sample-budget
// policy. Everything in the spec is part of the group's coalescing key
// — two requests may share worlds only when their specs are identical,
// because the drawn worlds (and, under a policy, the early-stop point)
// are a pure function of the spec and the snapshot.
type GroupSpec struct {
	Q      query.Query
	Ts, Te int
	K      int
	Seed   int64
	Conf   query.Confidence
	// MinWorlds floors an adaptive group's early-stop decision (see
	// query.Plan.MinWorlds): Bound polls are skipped below the floor, so
	// the stop point is a function of (snapshot, spec) including the
	// floor. Like everything else in the spec it is part of the
	// coalescing key — requests with different floors stop at different
	// points and must not share worlds. Ignored when Conf is disabled.
	MinWorlds int
}

// RunShared answers every item of a shared-world group over ONE set of
// sampled possible worlds: the snapshot is pruned once for the union of
// the members' targets, samplers are adapted once, each world chunk is
// drawn once through the columnar kernel, and every member's evaluator
// consumes it. It is the batching primitive behind
// pnn.Processor.RunBatch's world sharing; the single-query paths are
// the one-member special case.
//
// Determinism: answers depend only on (snapshot, spec, the item's own
// Op and Tau) — adding or removing other members of the group changes
// nothing, because the worlds are a function of the influencer set and
// seed alone. Under an enabled spec.Conf the group additionally makes
// ONE shared early-stop decision: sampling continues until every
// member's predicate is decided (every Op's evaluator separates each
// member tau from its estimates, see query.CountEvaluator.SetBound), so
// a member may see more worlds inside a group than it would alone —
// never fewer, and extra worlds only tighten its estimate. The stop
// point is a deterministic function of (snapshot, spec, the set of
// member Ops and Taus).
func (s *Snap) RunShared(spec GroupSpec, items []GroupItem) ([]GroupAnswer, query.Stats, error) {
	answers, st, _, err := s.RunSharedInfluence(spec, items)
	return answers, st, err
}

// RunSharedInfluence is RunShared, additionally reporting the influence
// region of the spec at this snapshot: which objects were sampled and
// how close an object must come to the query to matter. Standing
// subscriptions store it to decide, on each write, whether the updated
// object can possibly change their answer.
func (s *Snap) RunSharedInfluence(spec GroupSpec, items []GroupItem) ([]GroupAnswer, query.Stats, Influence, error) {
	// Validate before paying for the scatter (Gather re-checks, so the
	// remote path rejects the same specs).
	for _, it := range items {
		if it.Op == OpCNN && it.Tau <= 0 {
			return nil, query.Stats{}, Influence{}, fmt.Errorf("shard: PCNN requires tau > 0, got %v", it.Tau)
		}
	}
	if err := spec.Conf.Validate(); err != nil {
		return nil, query.Stats{}, Influence{}, err
	}
	x, err := s.scatter(spec)
	if err != nil {
		return nil, query.Stats{}, Influence{}, err
	}
	rows := make([]GatherRow, len(x.entries))
	for i, e := range x.entries {
		rows[i] = GatherRow{ID: e.id, Smp: e.smp}
	}
	return Gather(spec, items, GatherInput{
		Engine:     s.Parts[0].Engine,
		Samples:    x.samples,
		Workers:    x.workers,
		Rows:       rows,
		FillGroups: x.byShard,
		Cands:      x.cands,
		PruneDist:  x.pruneDist,
		Stats:      x.stats,
	})
}

// ForAllKNN answers P∀kNNQ(q, D, [ts..te], tau) over the composite
// snapshot: all objects whose probability of being among the k nearest
// neighbors of q at every t in the interval is at least tau, sorted by
// object ID.
func (s *Snap) ForAllKNN(q query.Query, ts, te, k int, tau float64, seed int64) ([]Result, query.Stats, error) {
	return s.nnQuery(GroupSpec{Q: q, Ts: ts, Te: te, K: k, Seed: seed}, tau, true)
}

// ExistsKNN answers P∃kNNQ(q, D, [ts..te], tau) over the composite
// snapshot.
func (s *Snap) ExistsKNN(q query.Query, ts, te, k int, tau float64, seed int64) ([]Result, query.Stats, error) {
	return s.nnQuery(GroupSpec{Q: q, Ts: ts, Te: te, K: k, Seed: seed}, tau, false)
}

// ForAllKNNSpec is ForAllKNN taking the full spec, including the
// adaptive sample-budget policy.
func (s *Snap) ForAllKNNSpec(spec GroupSpec, tau float64) ([]Result, query.Stats, error) {
	return s.nnQuery(spec, tau, true)
}

// ExistsKNNSpec is ExistsKNN taking the full spec.
func (s *Snap) ExistsKNNSpec(spec GroupSpec, tau float64) ([]Result, query.Stats, error) {
	return s.nnQuery(spec, tau, false)
}

func (s *Snap) nnQuery(spec GroupSpec, tau float64, forall bool) ([]Result, query.Stats, error) {
	op := OpExists
	if forall {
		op = OpForAll
	}
	ans, st, err := s.RunShared(spec, []GroupItem{{Op: op, Tau: tau}})
	if err != nil {
		return nil, st, err
	}
	return ans[0].Results, st, ans[0].Err
}

// CNNK answers PCkNNQ(q, D, [ts..te], tau) over the composite snapshot:
// per object the maximal timestamp sets on which it stays among the k
// likely nearest, sorted by (object ID, times).
func (s *Snap) CNNK(q query.Query, ts, te, k int, tau float64, seed int64) ([]IntervalResult, query.Stats, error) {
	return s.CNNKSpec(GroupSpec{Q: q, Ts: ts, Te: te, K: k, Seed: seed}, tau)
}

// CNNKSpec is CNNK taking the full spec, including the adaptive
// sample-budget policy.
func (s *Snap) CNNKSpec(spec GroupSpec, tau float64) ([]IntervalResult, query.Stats, error) {
	ans, st, err := s.RunShared(spec, []GroupItem{{Op: OpCNN, Tau: tau}})
	if err != nil {
		return nil, st, err
	}
	if ans[0].Err != nil {
		return nil, st, ans[0].Err
	}
	return ans[0].Intervals, st, nil
}

func lessIntSlice(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
