package shard

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"pnn/internal/inference"
	"pnn/internal/mcrand"
	"pnn/internal/nn"
	"pnn/internal/query"
)

// Result is one probabilistic query answer, keyed by the caller-chosen
// object ID (engine indices are shard-local and meaningless across the
// set). Results are sorted by ID — the only order that is stable under
// re-partitioning.
type Result struct {
	ID   int
	Prob float64
}

// IntervalResult is one PCNN answer: a maximal timestamp set during
// which the object stays the likely (k-)NN.
type IntervalResult struct {
	ID    int
	Times []int
	Prob  float64
}

// entry is one influencer object of a scatter-gather query: where it
// lives, its stable ID, its adapted sampler, and its private
// deterministic world generator. The generator is seeded by
// mcrand.SubSeed(request seed, object ID) — keying on the object ID
// (never on shard or engine index) is what makes answers independent
// of the shard count: an object's sampled trajectories for a given
// request seed are the same whether it shares an engine with every
// other object or with none of them.
type entry struct {
	shard int
	oi    int // engine index within the shard
	id    int
	smp   *inference.Sampler
	rng   mcrand.RNG
}

// exec is the gathered plan of one scatter-gather query: the merged
// influencer entries (grouped by shard for the sampling phase) plus the
// merged candidate rows.
type exec struct {
	snap    *Snap
	q       query.Query
	ts, te  int
	samples int
	workers int

	entries []entry
	byShard [][]int // entry indices per shard
	cands   []int   // entry indices that survived the ∀-filter
	stats   query.Stats
}

// scatter runs the filter step and sampler adaptation on every shard in
// parallel and merges the per-shard candidate/influence sets. Per-shard
// pruning distances are computed over fewer objects and are therefore
// only looser than the global ones, so the merged sets are supersets of
// the single-tree sets; because pruning is lossless (a pruned object is
// dominated by >= k objects in every possible world), the extra objects
// can neither win the NN predicate themselves nor flip it for anyone
// else — they surface as zero-probability rows that the tau/p>0 filter
// drops, keeping answers byte-identical across shard counts.
func (s *Snap) scatter(q query.Query, ts, te, k int, seed int64) (*exec, error) {
	begin := time.Now()
	x := &exec{
		snap:    s,
		q:       q,
		ts:      ts,
		te:      te,
		samples: s.Parts[0].Engine.SampleCount(),
		workers: s.Parts[0].Engine.Parallelism(),
		byShard: make([][]int, len(s.Parts)),
	}
	// The scatter phase already runs one goroutine per shard; giving the
	// gather-phase world evaluation the same fan-out keeps the whole
	// pipeline at one concurrency budget, so a sharded set speeds up
	// queries even when no explicit parallelism was configured.
	if x.workers < len(s.Parts) {
		x.workers = len(s.Parts)
	}
	type shardPlan struct {
		influencers []int
		candidates  []int
		samplers    []*inference.Sampler
		built       int
		err         error
	}
	plans := make([]shardPlan, len(s.Parts))
	var wg sync.WaitGroup
	for si, p := range s.Parts {
		wg.Add(1)
		go func(si int, eng *query.Engine) {
			defer wg.Done()
			pl := &plans[si]
			pr, err := eng.PruneWindow(q, ts, te, k)
			if err != nil {
				pl.err = err
				return
			}
			pl.influencers = pr.Influencers
			pl.candidates = pr.Candidates
			pl.samplers = make([]*inference.Sampler, len(pr.Influencers))
			for i, oi := range pr.Influencers {
				smp, built, err := eng.SamplerCached(oi)
				if err != nil {
					pl.err = err
					return
				}
				if built {
					pl.built++
				}
				pl.samplers[i] = smp
			}
		}(si, p.Engine)
	}
	wg.Wait()
	for si := range plans {
		pl := &plans[si]
		if pl.err != nil {
			return nil, pl.err
		}
		isCand := make(map[int]bool, len(pl.candidates))
		for _, oi := range pl.candidates {
			isCand[oi] = true
		}
		for i, oi := range pl.influencers {
			id := s.Parts[si].IDs[oi]
			ei := len(x.entries)
			x.entries = append(x.entries, entry{
				shard: si,
				oi:    oi,
				id:    id,
				smp:   pl.samplers[i],
				rng:   mcrand.New(mcrand.SubSeed(seed, id)),
			})
			x.byShard[si] = append(x.byShard[si], ei)
			if isCand[oi] {
				x.cands = append(x.cands, ei)
			}
		}
		x.stats.SamplerBuilds += pl.built
	}
	x.stats.Candidates = len(x.cands)
	x.stats.Influencers = len(x.entries)
	x.stats.Worlds = x.samples
	x.stats.AdaptTime = time.Since(begin)
	return x, nil
}

// worldChunk bounds the possible worlds materialized at once, so the
// gather phase streams instead of holding samples × influencers state;
// the size is the kernel-wide chunking policy, nn.WorldChunk.
const worldChunk = nn.WorldChunk

// batchPool recycles the columnar world batches of the gather phase
// across queries; a warmed pool makes scatter-gather refinement
// allocation-free in steady state.
var batchPool = sync.Pool{New: func() any { return new(nn.WorldBatch) }}

// run samples every world through the columnar kernel and hands each to
// perWorld. The scatter half of every chunk runs one goroutine per
// shard, each drawing its entries' state columns from their private
// per-object generators in world order; the gather half materializes
// distance rows and evaluates the chunk's worlds on x.workers
// goroutines (each worker computes the distances of its own world
// range, then evaluates it). perWorld is called exactly once per world
// index — w is the global world number, wi its row in b — with
// disjoint worker ids in [0, x.workers); any output it writes must be
// either per-worker or per-world for the whole run to stay
// deterministic.
func (x *exec) run(perWorld func(worker, w int, b *nn.WorldBatch, wi int)) {
	nE := len(x.entries)
	b := batchPool.Get().(*nn.WorldBatch)
	defer batchPool.Put(b)
	sp := x.snap.Parts[0].Engine.Tree().Space()
	for w0 := 0; w0 < x.samples; w0 += worldChunk {
		cn := worldChunk
		if left := x.samples - w0; left < cn {
			cn = left
		}
		b.Reset(nE, cn, x.ts, x.te)
		b.PrepareQuery(x.q.At)
		var wg sync.WaitGroup
		for _, idxs := range x.byShard {
			if len(idxs) == 0 {
				continue
			}
			wg.Add(1)
			go func(idxs []int) {
				defer wg.Done()
				for _, ei := range idxs {
					e := &x.entries[ei]
					for w := 0; w < cn; w++ {
						e.smp.SampleWindowInto(&e.rng, x.ts, x.te, b.States(ei, w))
					}
				}
			}(idxs)
		}
		wg.Wait()

		nw := x.workers
		if nw > cn {
			nw = cn
		}
		if nw <= 1 {
			b.ComputeDistancesRange(sp, 0, cn)
			for w := 0; w < cn; w++ {
				perWorld(0, w0+w, b, w)
			}
			continue
		}
		var eg sync.WaitGroup
		per := cn / nw
		extra := cn % nw
		lo := 0
		for worker := 0; worker < nw; worker++ {
			n := per
			if worker < extra {
				n++
			}
			eg.Add(1)
			go func(worker, lo, hi int) {
				defer eg.Done()
				b.ComputeDistancesRange(sp, lo, hi)
				for w := lo; w < hi; w++ {
					perWorld(worker, w0+w, b, w)
				}
			}(worker, lo, lo+n)
			lo += n
		}
		eg.Wait()
	}
}

// ForAllKNN answers P∀kNNQ(q, D, [ts..te], tau) over the composite
// snapshot: all objects whose probability of being among the k nearest
// neighbors of q at every t in the interval is at least tau, sorted by
// object ID.
func (s *Snap) ForAllKNN(q query.Query, ts, te, k int, tau float64, seed int64) ([]Result, query.Stats, error) {
	return s.nnQuery(q, ts, te, k, tau, seed, true)
}

// ExistsKNN answers P∃kNNQ(q, D, [ts..te], tau) over the composite
// snapshot.
func (s *Snap) ExistsKNN(q query.Query, ts, te, k int, tau float64, seed int64) ([]Result, query.Stats, error) {
	return s.nnQuery(q, ts, te, k, tau, seed, false)
}

func (s *Snap) nnQuery(q query.Query, ts, te, k int, tau float64, seed int64, forall bool) ([]Result, query.Stats, error) {
	x, err := s.scatter(q, ts, te, k, seed)
	if err != nil {
		return nil, query.Stats{}, err
	}
	// For ∃ semantics every influencer is a potential result; for ∀ only
	// the merged candidates are.
	targets := x.cands
	if !forall {
		targets = make([]int, len(x.entries))
		for i := range x.entries {
			targets[i] = i
		}
	}
	if len(targets) == 0 {
		return nil, x.stats, nil
	}
	begin := time.Now()
	targetOf := make(map[int]int, len(targets)) // entry index -> target row
	for ci, ei := range targets {
		targetOf[ei] = ci
	}
	partial := make([][]int, x.workers)
	for i := range partial {
		partial[i] = make([]int, len(targets))
	}
	x.run(func(worker, _ int, b *nn.WorldBatch, wi int) {
		counts := partial[worker]
		for ci, ei := range targets {
			if forall {
				if b.KNNThroughout(wi, ei, k) {
					counts[ci]++
				}
			} else if b.KNNSometime(wi, ei, k) {
				counts[ci]++
			}
		}
	})
	counts := make([]int, len(targets))
	for _, p := range partial {
		for i, v := range p {
			counts[i] += v
		}
	}
	x.stats.RefineTime = time.Since(begin)

	// Report in ascending object-ID order — the only order stable under
	// re-partitioning.
	order := append([]int(nil), targets...)
	sort.Slice(order, func(a, b int) bool { return x.entries[order[a]].id < x.entries[order[b]].id })
	var out []Result
	for _, ei := range order {
		p := float64(counts[targetOf[ei]]) / float64(x.samples)
		if p >= tau && p > 0 {
			out = append(out, Result{ID: x.entries[ei].id, Prob: p})
		}
	}
	return out, x.stats, nil
}

// CNNK answers PCkNNQ(q, D, [ts..te], tau) over the composite snapshot:
// per object the maximal timestamp sets on which it stays among the k
// likely nearest, sorted by (object ID, times).
func (s *Snap) CNNK(q query.Query, ts, te, k int, tau float64, seed int64) ([]IntervalResult, query.Stats, error) {
	if tau <= 0 {
		return nil, query.Stats{}, fmt.Errorf("shard: PCNN requires tau > 0, got %v", tau)
	}
	x, err := s.scatter(q, ts, te, k, seed)
	if err != nil {
		return nil, query.Stats{}, err
	}
	if len(x.entries) == 0 {
		return nil, x.stats, nil
	}
	begin := time.Now()
	nT := te - ts + 1
	nE := len(x.entries)
	// masks[w][ei*nT+j]: in world w, is entry ei among the k nearest at
	// ts+j? One flat backing array, with each row written by exactly one
	// worker (per-world), so the parallel gather stays race-free and
	// deterministic.
	backing := make([]bool, x.samples*nE*nT)
	masks := make([][]bool, x.samples)
	for w := range masks {
		masks[w] = backing[w*nE*nT : (w+1)*nE*nT]
	}
	x.run(func(_, w int, b *nn.WorldBatch, wi int) {
		row := masks[w]
		for ei := 0; ei < nE; ei++ {
			b.KNNMask(wi, ei, k, row[ei*nT:(ei+1)*nT])
		}
	})

	order := make([]int, nE)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return x.entries[order[a]].id < x.entries[order[b]].id })
	var out []IntervalResult
	for _, ei := range order {
		sets, qualifying, err := query.MineTimeSets(masks, ei, nT, tau)
		if err != nil {
			return nil, x.stats, err
		}
		x.stats.LatticeSets += qualifying
		for _, ts2 := range sets {
			times := make([]int, len(ts2.Offsets))
			for i, off := range ts2.Offsets {
				times[i] = ts + off
			}
			out = append(out, IntervalResult{ID: x.entries[ei].id, Times: times, Prob: ts2.Prob})
		}
	}
	x.stats.RefineTime = time.Since(begin)
	sort.Slice(out, func(a, b int) bool {
		if out[a].ID != out[b].ID {
			return out[a].ID < out[b].ID
		}
		return lessIntSlice(out[a].Times, out[b].Times)
	})
	return out, x.stats, nil
}

func lessIntSlice(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
