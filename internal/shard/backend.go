package shard

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"pnn/internal/mcrand"
)

// ScatterRow is one influencer of a remote scatter: the object's stable
// ID and its pre-drawn state columns. States holds Worlds consecutive
// columns of nT = Te-Ts+1 little int32 states each (-1 marking a dead
// timestep), drawn from the object's private (request seed, object ID)
// generator in world order — exactly the sequence the local evaluation
// loop would draw, which is what lets a coordinator replay them through
// Gather and obtain byte-identical answers.
type ScatterRow struct {
	ID     int
	States []int32
}

// ScatterResult is the answer of one peer's scatter phase: everything a
// coordinator needs to merge this peer's shard view into a gather — the
// influencer rows with their drawn worlds, the candidate IDs, the
// pruning thresholds, plus the snapshot version the scatter was served
// at (the torn-read detector) and scatter-phase accounting.
type ScatterResult struct {
	// Version and Versions pin the snapshot this scatter saw; a gather
	// combining scatters is consistent only if every peer's versions
	// match the coordinator's routing view.
	Version  int64
	Versions []int64

	// Samples is the peer's fixed per-query world budget; Worlds the
	// number of worlds actually drawn per row, spec.Conf.Budget(Samples).
	// Peers of one cluster must agree on Samples or answers would
	// normalize differently — the coordinator rejects mismatches.
	Samples int
	Worlds  int

	// Rows lists this peer's influencers; CandIDs (ascending) the
	// object IDs that survived the peer's ∀-filter; PruneDist the
	// per-timestep influence threshold, loosest over the peer's shards.
	Rows      []ScatterRow
	CandIDs   []int
	PruneDist []float64

	// SamplerBuilds and AdaptTime report the peer's scatter cost.
	SamplerBuilds int
	AdaptTime     time.Duration
}

// Scatter runs the filter step, sampler adaptation, and world drawing
// for one query spec over this snapshot and returns the result in wire
// form: per-influencer state columns instead of live samplers. It is
// the peer half of the cluster RPC boundary — Snap.RunSharedInfluence
// is exactly Scatter (minus the eager drawing) piped into Gather, so a
// coordinator that merges peers' ScatterResults and replays them
// through Gather computes the same answer a single process holding all
// objects would.
//
// The columns are drawn eagerly up to the worst-case budget
// spec.Conf.Budget(samples) because the adaptive early-stop decision is
// global to the gather: only the coordinator, seeing every peer's rows,
// can know where sampling stops, and it must be free to consume any
// prefix. Under a confidence policy this makes the shipped payload
// proportional to MaxSamples — the price of keeping the stop decision
// layout-independent.
func (s *Snap) Scatter(spec GroupSpec) (*ScatterResult, error) {
	if err := spec.Conf.Validate(); err != nil {
		return nil, err
	}
	x, err := s.scatter(spec)
	if err != nil {
		return nil, err
	}
	nT := spec.Te - spec.Ts + 1
	maxN := spec.Conf.Budget(x.samples)
	res := &ScatterResult{
		Version:       s.Version,
		Versions:      s.ShardVersions(),
		Samples:       x.samples,
		Worlds:        maxN,
		Rows:          make([]ScatterRow, len(x.entries)),
		PruneDist:     x.pruneDist,
		SamplerBuilds: x.stats.SamplerBuilds,
		AdaptTime:     x.stats.AdaptTime,
	}
	for _, ei := range x.cands {
		res.CandIDs = append(res.CandIDs, x.entries[ei].id)
	}
	sort.Ints(res.CandIDs)
	// Draw with the same per-shard fan-out as the scatter itself. Row
	// draws are independent (each entry owns its generator), so groups
	// can run concurrently; within a row, worlds are drawn in order —
	// the invariant replay depends on.
	var wg sync.WaitGroup
	for _, group := range x.byShard {
		if len(group) == 0 {
			continue
		}
		wg.Add(1)
		go func(group []int) {
			defer wg.Done()
			for _, ei := range group {
				e := x.entries[ei]
				col := make([]int32, maxN*nT)
				rng := mcrand.New(mcrand.SubSeed(spec.Seed, e.id))
				for w := 0; w < maxN; w++ {
					e.smp.SampleWindowInto(&rng, spec.Ts, spec.Te, col[w*nT:(w+1)*nT])
				}
				res.Rows[ei] = ScatterRow{ID: e.id, States: col}
			}
		}(group)
	}
	wg.Wait()
	return res, nil
}

// MergeScatters combines per-peer scatter results (in a fixed peer
// order) into the GatherInput of the coordinator-side evaluation, plus
// the spec-level stats of the merged scatter. Rows keep peer order —
// answer construction orders by object ID, so row order never shows in
// responses — while candidates are re-indexed against the merged rows
// and pruning thresholds merge elementwise-loosest, mirroring how a
// single process merges its in-process shards. FillGroups gets one
// group per peer so the replay fill phase parallelizes the same way.
func MergeScatters(parts []*ScatterResult) (GatherInput, error) {
	var in GatherInput
	rowOf := make(map[int]int)
	var candIDs []int
	for pi, p := range parts {
		if p.Samples != parts[0].Samples {
			return GatherInput{}, fmt.Errorf("shard: scatter sample budgets disagree: peer 0 has %d, peer %d has %d", parts[0].Samples, pi, p.Samples)
		}
		var group []int
		for _, r := range p.Rows {
			if _, dup := rowOf[r.ID]; dup {
				return GatherInput{}, fmt.Errorf("shard: object %d scattered by more than one peer", r.ID)
			}
			ri := len(in.Rows)
			rowOf[r.ID] = ri
			in.Rows = append(in.Rows, GatherRow{ID: r.ID, States: r.States})
			group = append(group, ri)
		}
		in.FillGroups = append(in.FillGroups, group)
		candIDs = append(candIDs, p.CandIDs...)
		in.Stats.SamplerBuilds += p.SamplerBuilds
		if p.AdaptTime > in.Stats.AdaptTime {
			in.Stats.AdaptTime = p.AdaptTime
		}
		// Per-peer thresholds are computed over fewer objects and are
		// therefore only looser; the elementwise max bounds them all.
		if in.PruneDist == nil {
			in.PruneDist = append([]float64(nil), p.PruneDist...)
		} else {
			for i := range in.PruneDist {
				if i < len(p.PruneDist) && p.PruneDist[i] > in.PruneDist[i] {
					in.PruneDist[i] = p.PruneDist[i]
				}
			}
		}
	}
	if len(parts) > 0 {
		in.Samples = parts[0].Samples
	}
	sort.Ints(candIDs)
	for _, id := range candIDs {
		ri, ok := rowOf[id]
		if !ok {
			return GatherInput{}, fmt.Errorf("shard: candidate %d has no scattered row", id)
		}
		in.Cands = append(in.Cands, ri)
	}
	in.Stats.Candidates = len(in.Cands)
	in.Stats.Influencers = len(in.Rows)
	return in, nil
}
