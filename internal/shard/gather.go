package shard

import (
	"fmt"
	"sort"
	"time"

	"pnn/internal/inference"
	"pnn/internal/mcrand"
	"pnn/internal/query"
	"pnn/internal/space"
)

// GatherRow is one influencer row of a gather: the object's stable ID
// plus exactly one draw source. Local gathers carry the adapted sampler
// (worlds are drawn during evaluation from the row's private
// generator); cross-process gathers carry the state columns a peer
// pre-drew from that same generator (see Snap.Scatter), replayed
// through the shared executor. Either way the evaluated worlds are
// identical, which is what keeps distributed answers byte-identical to
// single-process ones.
type GatherRow struct {
	ID     int
	Smp    *inference.Sampler
	States []int32
}

// GatherInput is the merged scatter output one gather evaluates: the
// influencer rows, the candidate subset, the merged pruning thresholds,
// and the execution knobs. It is the RPC boundary of cluster mode — a
// coordinator builds one from peer scatter responses exactly like
// RunSharedInfluence builds one from its in-process shards.
type GatherInput struct {
	// Engine, when set, executes the plan (local path: engine defaults
	// fill Space). When nil, Space must be set and the plan runs through
	// query.ExecutePlan.
	Engine *query.Engine
	Space  *space.Space

	// Samples is the fixed per-query world budget; Workers the
	// evaluation fan-out (answers never depend on it).
	Samples int
	Workers int

	// Rows holds the merged influencers; Cands indexes the rows that
	// survived the ∀-filter. FillGroups optionally partitions row
	// indices for the parallel fill phase (nil: one group).
	Rows       []GatherRow
	FillGroups [][]int
	Cands      []int

	// PruneDist is the merged per-timestep influence threshold
	// (elementwise loosest over all shards of all peers).
	PruneDist []float64

	// Stats carries the scatter-phase accounting (candidates,
	// influencers, sampler builds, adapt time) into the answer.
	Stats query.Stats
}

// gather is the execution state of one Gather call.
type gather struct {
	spec  GroupSpec
	in    *GatherInput
	drawn int
	stats query.Stats
}

// Gather answers every item of a shared-world group over the merged
// scatter output in `in`. It is the second half of RunSharedInfluence,
// exported so a cluster coordinator can evaluate rows scattered by
// remote peers through the identical evaluator setup, executor, and
// refinement as a single-process query: given equal rows, candidates
// and spec, the answers (and the adaptive stop point) are
// byte-identical by construction.
func Gather(spec GroupSpec, items []GroupItem, in GatherInput) ([]GroupAnswer, query.Stats, Influence, error) {
	for _, it := range items {
		if it.Op == OpCNN && it.Tau <= 0 {
			return nil, in.Stats, Influence{}, fmt.Errorf("shard: PCNN requires tau > 0, got %v", it.Tau)
		}
	}
	if err := spec.Conf.Validate(); err != nil {
		return nil, in.Stats, Influence{}, err
	}
	g := &gather{spec: spec, in: &in, stats: in.Stats}
	inf := Influence{PruneDist: in.PruneDist}
	for _, r := range in.Rows {
		inf.IDs = append(inf.IDs, r.ID)
	}
	sort.Ints(inf.IDs)
	ts, te, k := spec.Ts, spec.Te, spec.K
	answers := make([]GroupAnswer, len(items))
	if len(in.Rows) == 0 {
		return answers, g.stats, inf, nil
	}
	begin := time.Now()

	// Attach at most one evaluator per predicate shape — members with
	// the same Op share counts/masks and differ only in their tau
	// filter. Under a confidence policy each evaluator's bound must
	// separate EVERY member tau of its Op, so the taus are collected
	// per shape and armed together; the group stops only when all
	// evaluators (hence all members) are decided.
	allRows := make([]int, len(in.Rows))
	for i := range allRows {
		allRows[i] = i
	}
	var faTaus, exTaus []float64
	for _, it := range items {
		switch it.Op {
		case OpForAll:
			faTaus = append(faTaus, it.Tau)
		case OpExists:
			exTaus = append(exTaus, it.Tau)
		}
	}
	var faEv, exEv *query.CountEvaluator
	var maskEv *query.MaskEvaluator
	var evs []query.Evaluator
	for _, it := range items {
		switch it.Op {
		case OpForAll:
			// For ∀ semantics only the merged candidates can answer; with
			// a fixed budget an empty candidate set needs no sampling for
			// this member. Under a confidence policy the evaluator is
			// attached even then: per-shard pruning supersets mean another
			// layout may carry extra (always-zero) candidate rows, and
			// only the always-attached evaluator's virtual-zero-row rule
			// keeps the group's stop decision identical across layouts.
			if faEv == nil && (len(in.Cands) > 0 || spec.Conf.Enabled()) {
				faEv = query.NewCountEvaluator(k, true, in.Cands)
				faEv.SetBound(spec.Conf, faTaus...)
				evs = append(evs, faEv)
			}
		case OpExists:
			if exEv == nil {
				exEv = query.NewCountEvaluator(k, false, allRows)
				exEv.SetBound(spec.Conf, exTaus...)
				evs = append(evs, exEv)
			}
		case OpCNN:
			if maskEv == nil {
				maskEv = query.NewMaskEvaluator(k, len(in.Rows), te-ts+1, spec.Conf.Budget(in.Samples))
				maskEv.SetBound(spec.Conf)
				evs = append(evs, maskEv)
			}
		}
	}
	if len(evs) > 0 {
		if err := g.execute(evs); err != nil {
			return nil, g.stats, inf, err
		}
	}

	var faCounts, exCounts []int
	if faEv != nil {
		faCounts = faEv.Counts()
	}
	if exEv != nil {
		exCounts = exEv.Counts()
	}
	// The lattice walk is the dominant refine cost at low tau, so mined
	// results are memoized per distinct tau: duplicate PCNN members
	// (standing subscriptions) pay for one walk, and LatticeSets counts
	// each walk once.
	type mined struct {
		ivs []IntervalResult
		err error
	}
	minedByTau := make(map[float64]mined)
	for i, it := range items {
		switch it.Op {
		case OpForAll:
			if faEv != nil {
				answers[i].Results = g.countResults(in.Cands, faCounts, it.Tau)
			}
		case OpExists:
			answers[i].Results = g.countResults(allRows, exCounts, it.Tau)
		case OpCNN:
			m, hit := minedByTau[it.Tau]
			if !hit {
				var lattice int
				// Only the worlds actually drawn were written; mining the
				// sliced prefix normalizes frequencies by drawn worlds.
				m.ivs, lattice, m.err = g.mineIntervals(maskEv.Masks()[:g.drawn], it.Tau)
				g.stats.LatticeSets += lattice
				minedByTau[it.Tau] = m
			}
			answers[i].Err = m.err
			if m.err != nil {
				continue
			}
			if !hit {
				answers[i].Intervals = m.ivs
				continue
			}
			// Memo hits get their own deep copy: two answers must never
			// share Times backing arrays, or a caller editing one
			// response in place would corrupt its twin.
			cp := make([]IntervalResult, len(m.ivs))
			for j, iv := range m.ivs {
				cp[j] = IntervalResult{ID: iv.ID, Times: append([]int(nil), iv.Times...), Prob: iv.Prob}
			}
			answers[i].Intervals = cp
		}
	}
	g.stats.RefineTime = time.Since(begin)
	return answers, g.stats, inf, nil
}

// execute builds the plan of this gather — sampler rows drawing from
// their private (request seed, object ID) generators, or pre-drawn
// columns replayed at the same world indices — attaches the evaluators
// and runs it on the shared executor.
func (g *gather) execute(evs []query.Evaluator) error {
	in := g.in
	pl := &query.Plan{
		Query:      g.spec.Q,
		Ts:         g.spec.Ts,
		Te:         g.spec.Te,
		Samples:    in.Samples,
		Workers:    in.Workers,
		Confidence: g.spec.Conf,
		MinWorlds:  g.spec.MinWorlds,
		FillGroups: in.FillGroups,
	}
	if len(in.Rows) > 0 && in.Rows[0].States != nil {
		cols := make([][]int32, len(in.Rows))
		for i, r := range in.Rows {
			if r.States == nil {
				return fmt.Errorf("shard: gather mixes replay and sampler rows")
			}
			cols[i] = r.States
		}
		pl.Replay = cols
	} else {
		smps := make([]*inference.Sampler, len(in.Rows))
		rngs := make([]mcrand.RNG, len(in.Rows))
		for i, r := range in.Rows {
			if r.Smp == nil {
				return fmt.Errorf("shard: gather row %d has neither sampler nor replay columns", i)
			}
			smps[i] = r.Smp
			rngs[i] = mcrand.New(mcrand.SubSeed(g.spec.Seed, r.ID))
		}
		pl.Samplers = smps
		pl.RowRngs = rngs
	}
	for _, ev := range evs {
		pl.Attach(ev)
	}
	var es query.ExecStats
	var err error
	if in.Engine != nil {
		es, err = in.Engine.Execute(pl)
	} else {
		pl.Space = in.Space
		es, err = query.ExecutePlan(pl)
	}
	if err != nil {
		return err
	}
	g.drawn = es.Worlds
	g.stats.Worlds = es.Worlds
	g.stats.ErrorBound = es.ErrorBound
	g.stats.EarlyStopped = es.EarlyStopped
	return nil
}

// idOrder returns the given row indices sorted by object ID — the only
// report order that is stable under re-partitioning.
func (g *gather) idOrder(rows []int) []int {
	order := append([]int(nil), rows...)
	sort.Slice(order, func(a, b int) bool { return g.in.Rows[order[a]].ID < g.in.Rows[order[b]].ID })
	return order
}

// countResults converts per-target world counts into the tau-filtered,
// ID-ordered result set. targets[i] is the row index counted in
// counts[i].
func (g *gather) countResults(targets, counts []int, tau float64) []Result {
	targetOf := make(map[int]int, len(targets)) // row index -> target row
	for ci, ri := range targets {
		targetOf[ri] = ci
	}
	var out []Result
	for _, ri := range g.idOrder(targets) {
		p := float64(counts[targetOf[ri]]) / float64(g.drawn)
		if p >= tau && p > 0 {
			out = append(out, Result{ID: g.in.Rows[ri].ID, Prob: p})
		}
	}
	return out
}

// mineIntervals runs the Apriori lattice walk over the accumulated
// per-world masks for every row, in ID order, returning the maximal
// qualifying timestamp sets at threshold tau plus the number of
// qualifying lattice sets examined.
func (g *gather) mineIntervals(masks [][]bool, tau float64) ([]IntervalResult, int, error) {
	nT := g.spec.Te - g.spec.Ts + 1
	all := make([]int, len(g.in.Rows))
	for i := range all {
		all[i] = i
	}
	lattice := 0
	var out []IntervalResult
	for _, ri := range g.idOrder(all) {
		sets, qualifying, err := query.MineTimeSets(masks, ri, nT, tau)
		if err != nil {
			return nil, lattice, err
		}
		lattice += qualifying
		for _, ts2 := range sets {
			times := make([]int, len(ts2.Offsets))
			for i, off := range ts2.Offsets {
				times[i] = g.spec.Ts + off
			}
			out = append(out, IntervalResult{ID: g.in.Rows[ri].ID, Times: times, Prob: ts2.Prob})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].ID != out[b].ID {
			return out[a].ID < out[b].ID
		}
		return lessIntSlice(out[a].Times, out[b].Times)
	})
	return out, lattice, nil
}
