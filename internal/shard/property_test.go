package shard

import (
	"math/rand"
	"reflect"
	"testing"

	"pnn/internal/datagen"
	"pnn/internal/query"
)

// taxiWorld generates the city-scale taxi workload once per test.
func taxiWorld(t testing.TB) *datagen.Dataset {
	t.Helper()
	cfg := datagen.DefaultTaxiConfig()
	cfg.States = 1200
	cfg.Taxis = 40
	cfg.Lifetime = 60
	cfg.Horizon = 200
	cfg.ObsInterval = 8
	ds, err := datagen.Taxi(cfg, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestShardCountInvariance is the determinism contract of the scatter-
// gather executor: for a fixed request seed and tau, the Result sets of
// ForAllNN, ExistsNN and CNN over S ∈ {1, 2, 4} shards are byte-
// identical on the taxi dataset. It holds because (a) every object's
// possible worlds are drawn from a sub-seed of (request seed, object
// ID) only, (b) per-shard pruning supersets are lossless, so the extra
// objects a smaller partition fails to prune are zero-probability rows
// the result filter drops, and (c) results are reported in object-ID
// order.
func TestShardCountInvariance(t *testing.T) {
	ds := taxiWorld(t)
	const samples = 300

	sets := make(map[int]*Set)
	for _, shards := range []int{1, 2, 4} {
		s, err := New(ds.Space, ds.Objects, samples, shards)
		if err != nil {
			t.Fatal(err)
		}
		sets[shards] = s
	}
	// Parallelism must not change answers either: run the 2-shard set
	// with parallel gather evaluation.
	sets[2].SetParallelism(4)

	queries := []struct {
		state  int
		ts, te int
		k      int
		tau    float64
		seed   int64
	}{
		{state: 17, ts: 20, te: 30, k: 1, tau: 0.1, seed: 7},
		{state: 400, ts: 50, te: 62, k: 1, tau: 0.05, seed: 42},
		{state: 901, ts: 5, te: 14, k: 2, tau: 0.2, seed: 3},
		{state: 233, ts: 100, te: 108, k: 1, tau: 0.0, seed: 99},
	}
	for qi, qc := range queries {
		q := query.StateQuery(ds.Space.Point(qc.state))
		var wantFA []Result
		var wantEX []Result
		var wantCN []IntervalResult
		for _, shards := range []int{1, 2, 4} {
			snap := sets[shards].Snapshot()
			fa, _, err := snap.ForAllKNN(q, qc.ts, qc.te, qc.k, qc.tau, qc.seed)
			if err != nil {
				t.Fatalf("query %d shards %d forall: %v", qi, shards, err)
			}
			ex, _, err := snap.ExistsKNN(q, qc.ts, qc.te, qc.k, qc.tau, qc.seed)
			if err != nil {
				t.Fatalf("query %d shards %d exists: %v", qi, shards, err)
			}
			cnTau := qc.tau
			if cnTau == 0 {
				cnTau = 0.3 // CNN requires tau > 0; keep the lattice small
			}
			cn, _, err := snap.CNNK(q, qc.ts, qc.te, qc.k, cnTau, qc.seed)
			if err != nil {
				t.Fatalf("query %d shards %d cnn: %v", qi, shards, err)
			}
			if shards == 1 {
				wantFA, wantEX, wantCN = fa, ex, cn
				continue
			}
			if !reflect.DeepEqual(fa, wantFA) {
				t.Errorf("query %d: ForAll differs at %d shards:\n 1: %+v\n %d: %+v", qi, shards, wantFA, shards, fa)
			}
			if !reflect.DeepEqual(ex, wantEX) {
				t.Errorf("query %d: Exists differs at %d shards:\n 1: %+v\n %d: %+v", qi, shards, wantEX, shards, ex)
			}
			if !reflect.DeepEqual(cn, wantCN) {
				t.Errorf("query %d: CNN differs at %d shards:\n 1: %+v\n %d: %+v", qi, shards, wantCN, shards, cn)
			}
		}
	}
}

// TestShardCountInvarianceUnderIngestion extends the invariance to the
// write path: the same sequence of AddObject/Observe against 1- and
// 4-shard sets must leave databases that answer identically, even
// though each write cloned only one shard of the larger set.
func TestShardCountInvarianceUnderIngestion(t *testing.T) {
	ds := taxiWorld(t)
	const samples = 200
	split := len(ds.Objects) - 8
	base, live := ds.Objects[:split], ds.Objects[split:]

	s1, err := New(ds.Space, base, samples, 1)
	if err != nil {
		t.Fatal(err)
	}
	s4, err := New(ds.Space, base, samples, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range live {
		if _, err := s1.AddObject(o); err != nil {
			t.Fatal(err)
		}
		if _, err := s4.AddObject(o); err != nil {
			t.Fatal(err)
		}
	}
	if s1.NumObjects() != s4.NumObjects() {
		t.Fatalf("object counts diverged: %d vs %d", s1.NumObjects(), s4.NumObjects())
	}
	for _, qc := range []struct {
		state, ts, te int
		seed          int64
	}{
		{state: 50, ts: 20, te: 28, seed: 5},
		{state: 700, ts: 60, te: 70, seed: 11},
	} {
		q := query.StateQuery(ds.Space.Point(qc.state))
		a, _, err := s1.Snapshot().ExistsKNN(q, qc.ts, qc.te, 1, 0.05, qc.seed)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := s4.Snapshot().ExistsKNN(q, qc.ts, qc.te, 1, 0.05, qc.seed)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("post-ingest Exists differs:\n 1 shard: %+v\n 4 shards: %+v", a, b)
		}
	}
}
