package inference

import (
	"sort"

	"pnn/internal/sparse"
)

// adj is the flat storage for one timestep's adapted transition matrix:
// a CSR-like structure over the (small) set of reachable source states.
// Using sorted slices instead of nested maps keeps Algorithm 2 free of
// per-entry map allocations, which dominate its runtime otherwise.
type adj struct {
	src []int32   // sorted distinct source states
	off []int32   // len(src)+1 row offsets into dst/p
	dst []int32   // column indices, sorted within each row
	p   []float64 // values, parallel to dst
}

// rowIndex returns the position of state s in src, or -1.
func (a *adj) rowIndex(s int32) int {
	lo, hi := 0, len(a.src)
	for lo < hi {
		mid := (lo + hi) / 2
		if a.src[mid] < s {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(a.src) && a.src[lo] == s {
		return lo
	}
	return -1
}

// row returns the columns and values of source state s (nil when absent).
func (a *adj) row(s int32) ([]int32, []float64) {
	i := a.rowIndex(s)
	if i < 0 {
		return nil, nil
	}
	return a.dst[a.off[i]:a.off[i+1]], a.p[a.off[i]:a.off[i+1]]
}

// toRowMap converts to the map representation for the public Model API
// and tests. Cost is proportional to the number of entries.
func (a *adj) toRowMap() sparse.RowMap {
	if a == nil {
		return nil
	}
	out := sparse.NewRowMap()
	for i, s := range a.src {
		for k := a.off[i]; k < a.off[i+1]; k++ {
			out.Add(int(s), int(a.dst[k]), a.p[k])
		}
	}
	return out
}

// triple is one (source row, destination column, probability) element
// produced during a forward or backward sweep.
type triple struct {
	r, c int32
	p    float64
}

// adjBuilder assembles adj matrices from triples without sorting the
// entries: a counting scatter groups by row, exploiting that the sweeps
// emit columns in ascending order for each row. The builder's scratch
// state is reused across timesteps of one Adapt call.
type adjBuilder struct {
	slotOf map[int32]int32 // row state → discovery slot
	rows   []int32         // slot → row state
	counts []int32         // slot → entries in the row
}

func newAdjBuilder() *adjBuilder {
	return &adjBuilder{slotOf: make(map[int32]int32, 64)}
}

// build consumes tris (they must have unique (r, c) pairs, with c emitted
// in ascending order per r) and returns the row-normalized adj plus the
// raw row-sum vector (sorted by state, not normalized).
func (b *adjBuilder) build(tris []triple) (*adj, svec) {
	clear(b.slotOf)
	b.rows = b.rows[:0]
	b.counts = b.counts[:0]
	for _, t := range tris {
		slot, ok := b.slotOf[t.r]
		if !ok {
			slot = int32(len(b.rows))
			b.slotOf[t.r] = slot
			b.rows = append(b.rows, t.r)
			b.counts = append(b.counts, 0)
		}
		b.counts[slot]++
	}
	// Sort the (few) distinct rows ascending; slotRank maps discovery slot
	// to its position in sorted order.
	nRows := len(b.rows)
	order := make([]int32, nRows)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool { return b.rows[order[i]] < b.rows[order[j]] })

	a := &adj{
		src: make([]int32, nRows),
		off: make([]int32, nRows+1),
		dst: make([]int32, len(tris)),
		p:   make([]float64, len(tris)),
	}
	rankOf := make([]int32, nRows) // discovery slot → sorted rank
	for rank, slot := range order {
		rankOf[slot] = int32(rank)
		a.src[rank] = b.rows[slot]
		a.off[rank+1] = a.off[rank] + b.counts[slot]
	}
	// Scatter entries; per-row fill pointers start at the row offsets.
	fill := make([]int32, nRows)
	copy(fill, a.off[:nRows])
	for _, t := range tris {
		rank := rankOf[b.slotOf[t.r]]
		k := fill[rank]
		a.dst[k] = t.c
		a.p[k] = t.p
		fill[rank]++
	}
	// Normalize rows and collect sums.
	sums := svec{idx: a.src, val: make([]float64, nRows)}
	for rank := 0; rank < nRows; rank++ {
		total := 0.0
		for k := a.off[rank]; k < a.off[rank+1]; k++ {
			total += a.p[k]
		}
		sums.val[rank] = total
		if total > 0 {
			inv := 1 / total
			for k := a.off[rank]; k < a.off[rank+1]; k++ {
				a.p[k] *= inv
			}
		}
	}
	// sums.idx aliases a.src; callers must not mutate it. normalizePruned
	// compacts in place, so give it a copy.
	sums.idx = append([]int32(nil), sums.idx...)
	return a, sums
}

// svec is a sparse vector as parallel sorted slices, used for the
// distribution vectors inside Algorithm 2.
type svec struct {
	idx []int32
	val []float64
}

// find returns the value at state s (0 when absent).
func (v svec) find(s int32) float64 {
	lo, hi := 0, len(v.idx)
	for lo < hi {
		mid := (lo + hi) / 2
		if v.idx[mid] < s {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(v.idx) && v.idx[lo] == s {
		return v.val[lo]
	}
	return 0
}

// sum returns the total mass.
func (v svec) sum() float64 {
	s := 0.0
	for _, x := range v.val {
		s += x
	}
	return s
}

// restrictTo drops every entry whose state is not in the sorted set keep,
// without renormalizing (callers normalize afterwards).
func (v *svec) restrictTo(keep []int32) {
	out := 0
	k := 0
	for i, s := range v.idx {
		for k < len(keep) && keep[k] < s {
			k++
		}
		if k < len(keep) && keep[k] == s {
			v.idx[out] = s
			v.val[out] = v.val[i]
			out++
		}
	}
	v.idx = v.idx[:out]
	v.val = v.val[:out]
}

// normalizePruned scales v to mass 1, dropping entries below eps first.
// It returns false when no mass remains.
func (v *svec) normalizePruned(eps float64) bool {
	keep := 0
	total := 0.0
	for i, x := range v.val {
		if x >= eps {
			v.idx[keep] = v.idx[i]
			v.val[keep] = x
			total += x
			keep++
		}
	}
	v.idx = v.idx[:keep]
	v.val = v.val[:keep]
	if total == 0 {
		return false
	}
	inv := 1 / total
	for i := range v.val {
		v.val[i] *= inv
	}
	return true
}

// toVec converts to the map representation used by the Model accessors.
func (v svec) toVec() sparse.Vec {
	out := make(sparse.Vec, len(v.idx))
	for i, s := range v.idx {
		out[int(s)] = v.val[i]
	}
	return out
}

func unitSvec(s int32) svec {
	return svec{idx: []int32{s}, val: []float64{1}}
}
