package inference

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pnn/internal/markov"
	"pnn/internal/space"
	"pnn/internal/uncertain"
)

// TestAdaptInvariantsProperty drives Algorithm 2 with randomized objects
// (random walks on a random synthetic network, random observation spacing)
// and checks the invariants that must hold for ANY valid input:
//
//  1. posterior and forward marginals carry mass 1 at every timestep,
//  2. adapted transition rows are stochastic,
//  3. the posterior collapses to the observed state at observation times,
//  4. the posterior support never exceeds the forward support,
//  5. sampled paths hit every observation and only use chain transitions.
func TestAdaptInvariantsProperty(t *testing.T) {
	sp, err := space.Synthetic(600, 8, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	chain, err := markov.NewHomogeneous(sp.TransitionMatrix(0.5))
	if err != nil {
		t.Fatal(err)
	}
	mat := chain.At(0)

	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lifetime := 6 + rng.Intn(25)
		gap := 2 + rng.Intn(6)
		// Random chain walk as ground truth.
		cur := rng.Intn(sp.Len())
		states := []int{cur}
		for len(states) <= lifetime {
			cols, vals := mat.Row(cur)
			u := rng.Float64()
			acc := 0.0
			next := int(cols[len(cols)-1])
			for k, v := range vals {
				acc += v
				if u <= acc {
					next = int(cols[k])
					break
				}
			}
			cur = next
			states = append(states, cur)
		}
		var obs []uncertain.Observation
		for tt := 0; tt <= lifetime; tt += gap {
			obs = append(obs, uncertain.Observation{T: tt, State: states[tt]})
		}
		if obs[len(obs)-1].T != lifetime {
			obs = append(obs, uncertain.Observation{T: lifetime, State: states[lifetime]})
		}
		o, err := uncertain.NewObject(1, obs, chain)
		if err != nil {
			t.Logf("seed %d: NewObject: %v", seed, err)
			return false
		}
		m, err := Adapt(o)
		if err != nil {
			t.Logf("seed %d: Adapt: %v", seed, err)
			return false
		}
		for tt := 0; tt <= lifetime; tt++ {
			post := m.Posterior(tt)
			fwd := m.Forward(tt)
			if math.Abs(post.Sum()-1) > 1e-9 || math.Abs(fwd.Sum()-1) > 1e-9 {
				t.Logf("seed %d: mass violation at t=%d", seed, tt)
				return false
			}
			for s := range post {
				if fwd[s] == 0 {
					t.Logf("seed %d: posterior escapes forward support at t=%d", seed, tt)
					return false
				}
			}
			if want, isObs := o.ObservedAt(tt); isObs {
				if len(post) != 1 || math.Abs(post[want]-1) > 1e-9 {
					t.Logf("seed %d: posterior not collapsed at observation t=%d", seed, tt)
					return false
				}
			}
			if tt < lifetime {
				ft := m.Transition(tt)
				for _, row := range ft.Rows() {
					if math.Abs(ft.Row(row).Sum()-1) > 1e-9 {
						t.Logf("seed %d: non-stochastic F row at t=%d", seed, tt)
						return false
					}
				}
			}
		}
		// Sampling invariants.
		smp := NewSampler(m)
		for i := 0; i < 20; i++ {
			p := smp.Sample(rng)
			if !p.HitsObservations(o) {
				t.Logf("seed %d: sample missed an observation", seed)
				return false
			}
			for k := 1; k < len(p.States); k++ {
				if mat.At(int(p.States[k-1]), int(p.States[k])) == 0 {
					t.Logf("seed %d: illegal sampled transition", seed)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
