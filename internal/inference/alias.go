package inference

// Walker alias tables for O(1) categorical draws in the sampling hot
// path. The cumulative-row representation the Sampler used previously
// costs a binary search per transition; the alias method (Walker 1977,
// with Vose's O(n) construction) answers every draw with one table
// lookup and one comparison, which is what makes drawing tens of
// thousands of possible worlds per query allocation- and search-free.

// rowAlias holds the alias tables of one timestep's adapted transition
// matrix F(t), aligned entry-for-entry with the adj CSR arrays: slot k
// describes the k-th stored transition. next[k] additionally caches the
// row index (in F(t+1)) of the destination state dst[k], so a sampling
// walk never re-derives its current row by binary search; -1 marks
// destinations with no successor row (only legal at the model's last
// transition).
type rowAlias struct {
	prob  []float64 // acceptance threshold per slot
	alias []int32   // replacement slot (global index into the same row)
	next  []int32   // row index of dst[k] in the NEXT timestep's adj
}

// buildRowAlias constructs per-row alias tables for every row of a,
// plus the next-row index cache: sc must currently index the FOLLOWING
// timestep's matrix (see aliasScratch.index), so every destination
// state resolves to its successor row in O(1) instead of by binary
// search — the build stays linear in the number of stored transitions.
func buildRowAlias(a *adj, sc *aliasScratch) rowAlias {
	ra := rowAlias{
		prob:  make([]float64, len(a.p)),
		alias: make([]int32, len(a.p)),
		next:  make([]int32, len(a.dst)),
	}
	for r := 0; r+1 < len(a.off); r++ {
		lo, hi := int(a.off[r]), int(a.off[r+1])
		buildAliasRange(a.p[lo:hi], ra.prob[lo:hi], ra.alias[lo:hi], int32(lo), sc)
	}
	for k, d := range a.dst {
		ra.next[k] = sc.lookup(d)
	}
	return ra
}

// aliasDist is an alias table over an explicit state set — the entry
// distribution of a window-restricted sample (the posterior marginal at
// the window start). rowOf[k] caches the row index of states[k] in the
// adapted transition matrix leaving that timestep (-1 at the model end,
// where no transition follows).
type aliasDist struct {
	states []int32
	rowOf  []int32
	prob   []float64
	alias  []int32
}

// aliasScratch holds the work lists of Vose's construction plus a
// state → row scatter index, all reused across the rows and timesteps
// of one NewSampler call.
type aliasScratch struct {
	scaled       []float64
	small, large []int32
	// rowOf[s] is the row index of state s in the currently indexed
	// matrix, -1 elsewhere; touched remembers which slots to clear.
	// The dense-by-state layout trades one transient |S|-bounded slice
	// for O(1) lookups, removing every binary search from the build.
	rowOf   []int32
	touched []int32
}

// index points the scratch's state → row lookup at matrix a (nil
// de-indexes), clearing only the slots the previous matrix touched.
func (sc *aliasScratch) index(a *adj) {
	for _, s := range sc.touched {
		sc.rowOf[s] = -1
	}
	sc.touched = sc.touched[:0]
	if a == nil || len(a.src) == 0 {
		return
	}
	if need := int(a.src[len(a.src)-1]) + 1; len(sc.rowOf) < need {
		grown := make([]int32, need)
		copy(grown, sc.rowOf)
		for i := len(sc.rowOf); i < need; i++ {
			grown[i] = -1
		}
		sc.rowOf = grown
	}
	for r, s := range a.src {
		sc.rowOf[s] = int32(r)
		sc.touched = append(sc.touched, s)
	}
}

// lookup returns the row index of state s in the indexed matrix, -1
// when absent (or when nothing is indexed).
func (sc *aliasScratch) lookup(s int32) int32 {
	if int(s) >= len(sc.rowOf) {
		return -1
	}
	return sc.rowOf[s]
}

// buildAliasRange fills prob/alias (local slices of one row) from the
// weight vector w using Vose's O(n) algorithm. base is added to the
// stored alias indices so they are global into the row storage, letting
// the draw skip the lo+ offset addition. Weights need not be
// normalized; zero-weight slots become pure alias slots.
func buildAliasRange(w, prob []float64, alias []int32, base int32, sc *aliasScratch) {
	n := len(w)
	if n == 0 {
		return
	}
	total := 0.0
	for _, x := range w {
		total += x
	}
	if total <= 0 {
		// Degenerate row: make every slot accept itself uniformly.
		for i := range prob {
			prob[i] = 1
			alias[i] = base + int32(i)
		}
		return
	}
	sc.scaled = sc.scaled[:0]
	sc.small = sc.small[:0]
	sc.large = sc.large[:0]
	inv := float64(n) / total
	for i, x := range w {
		s := x * inv
		sc.scaled = append(sc.scaled, s)
		if s < 1 {
			sc.small = append(sc.small, int32(i))
		} else {
			sc.large = append(sc.large, int32(i))
		}
	}
	for len(sc.small) > 0 && len(sc.large) > 0 {
		s := sc.small[len(sc.small)-1]
		sc.small = sc.small[:len(sc.small)-1]
		l := sc.large[len(sc.large)-1]
		prob[s] = sc.scaled[s]
		alias[s] = base + l
		sc.scaled[l] -= 1 - sc.scaled[s]
		if sc.scaled[l] < 1 {
			sc.large = sc.large[:len(sc.large)-1]
			sc.small = append(sc.small, l)
		}
	}
	// Leftovers on either list are numerically ~1: accept outright.
	for _, i := range sc.large {
		prob[i] = 1
		alias[i] = base + i
	}
	for _, i := range sc.small {
		prob[i] = 1
		alias[i] = base + i
	}
}

// aliasPick splits one 64-bit draw into a uniform slot in [0, n) (high
// 32 bits, fixed-point scaled — no modulo bias worth caring about) and
// a uniform acceptance fraction in [0, 1) (low 32 bits).
func aliasPick(u uint64, n int) (slot int, frac float64) {
	slot = int(((u >> 32) * uint64(n)) >> 32)
	frac = float64(uint32(u)) * (1.0 / (1 << 32))
	return slot, frac
}
