package inference

import (
	"math"
	"math/rand"
	"testing"

	"pnn/internal/markov"
	"pnn/internal/space"
	"pnn/internal/sparse"
	"pnn/internal/uncertain"
)

// lineObject builds an object on a 1D line space with the given
// observations, equal-weight transitions (left/stay/right).
func lineObject(t testing.TB, n, id int, obs []uncertain.Observation) *uncertain.Object {
	t.Helper()
	sp, err := space.Line(n)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sp.BuildTransitionMatrix(func(i, j int) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	h, err := markov.NewHomogeneous(m)
	if err != nil {
		t.Fatal(err)
	}
	o, err := uncertain.NewObject(id, obs, h)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// enumeratePaths returns every a-priori possible path of o over its
// lifetime together with its prior probability, by brute-force recursion.
// Only usable for tiny models.
func enumeratePaths(o *uncertain.Object) (paths []uncertain.Path, probs []float64) {
	start, end := o.First().T, o.Last().T
	var rec func(t int, states []int32, p float64)
	rec = func(t int, states []int32, p float64) {
		if t == end {
			cp := make([]int32, len(states))
			copy(cp, states)
			paths = append(paths, uncertain.Path{Start: start, States: cp})
			probs = append(probs, p)
			return
		}
		cur := int(states[t-start])
		cols, vals := o.Chain.At(t).Row(cur)
		for k, c := range cols {
			rec(t+1, append(states, c), p*vals[k])
		}
	}
	rec(start, []int32{int32(o.First().State)}, 1)
	return paths, probs
}

// posteriorByEnumeration computes exact posterior marginals by conditioning
// the enumerated prior paths on the observations.
func posteriorByEnumeration(o *uncertain.Object) []sparse.Vec {
	start, end := o.First().T, o.Last().T
	paths, probs := enumeratePaths(o)
	out := make([]sparse.Vec, end-start+1)
	for i := range out {
		out[i] = sparse.NewVec()
	}
	total := 0.0
	for k, p := range paths {
		if !p.HitsObservations(o) {
			continue
		}
		total += probs[k]
		for t := start; t <= end; t++ {
			s, _ := p.At(t)
			out[t-start].Add(s, probs[k])
		}
	}
	for i := range out {
		for s := range out[i] {
			out[i][s] /= total
		}
	}
	return out
}

func TestAdaptPosteriorMatchesBruteForce(t *testing.T) {
	o := lineObject(t, 9, 1, []uncertain.Observation{
		{T: 0, State: 2}, {T: 3, State: 4}, {T: 6, State: 3},
	})
	m, err := Adapt(o)
	if err != nil {
		t.Fatal(err)
	}
	want := posteriorByEnumeration(o)
	for tt := 0; tt <= 6; tt++ {
		got := m.Posterior(tt)
		if !got.Equal(want[tt], 1e-9) {
			t.Errorf("posterior at t=%d:\n got %v\nwant %v", tt, got, want[tt])
		}
	}
}

func TestAdaptPathLawMatchesBruteForce(t *testing.T) {
	// The probability of drawing a specific path from the adapted model
	// must equal the prior probability of that path conditioned on hitting
	// all observations (possible-worlds semantics).
	o := lineObject(t, 7, 1, []uncertain.Observation{
		{T: 0, State: 1}, {T: 4, State: 3},
	})
	m, err := Adapt(o)
	if err != nil {
		t.Fatal(err)
	}
	paths, probs := enumeratePaths(o)
	total := 0.0
	for k, p := range paths {
		if p.HitsObservations(o) {
			total += probs[k]
		}
	}
	for k, p := range paths {
		if !p.HitsObservations(o) {
			continue
		}
		want := probs[k] / total
		// Model probability: product of F(t) transition probabilities.
		got := 1.0
		for tt := 0; tt < 4; tt++ {
			a, _ := p.At(tt)
			b, _ := p.At(tt + 1)
			got *= m.Transition(tt).At(a, b)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("path %v: model prob %v, want %v", p.States, got, want)
		}
	}
}

func TestAdaptPosteriorAtObservations(t *testing.T) {
	o := lineObject(t, 9, 1, []uncertain.Observation{
		{T: 2, State: 1}, {T: 6, State: 4}, {T: 10, State: 2},
	})
	m, err := Adapt(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, ob := range o.Obs {
		p := m.Posterior(ob.T)
		if len(p) != 1 || math.Abs(p[ob.State]-1) > 1e-12 {
			t.Errorf("posterior at observation t=%d = %v, want unit at %d", ob.T, p, ob.State)
		}
	}
	if m.Posterior(1) != nil || m.Posterior(11) != nil {
		t.Error("posterior outside lifetime should be nil")
	}
}

func TestAdaptMassPreservation(t *testing.T) {
	o := lineObject(t, 15, 1, []uncertain.Observation{
		{T: 0, State: 7}, {T: 10, State: 3}, {T: 25, State: 12},
	})
	m, err := Adapt(o)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt <= 25; tt++ {
		if s := m.Posterior(tt).Sum(); math.Abs(s-1) > 1e-9 {
			t.Errorf("posterior mass at t=%d is %v", tt, s)
		}
		if s := m.Forward(tt).Sum(); math.Abs(s-1) > 1e-9 {
			t.Errorf("forward mass at t=%d is %v", tt, s)
		}
	}
	// Adapted transition rows are stochastic.
	for tt := 0; tt < 25; tt++ {
		ft := m.Transition(tt)
		for _, i := range ft.Rows() {
			if s := ft.Row(i).Sum(); math.Abs(s-1) > 1e-9 {
				t.Errorf("F(%d) row %d sums to %v", tt, i, s)
			}
		}
	}
}

func TestAdaptSupportNarrowing(t *testing.T) {
	// Figure 4: the posterior support must be contained in the
	// forward-filtered support, which in turn is contained in the
	// no-observation support.
	o := lineObject(t, 21, 1, []uncertain.Observation{
		{T: 0, State: 10}, {T: 8, State: 14}, {T: 16, State: 6},
	})
	m, err := Adapt(o)
	if err != nil {
		t.Fatal(err)
	}
	no := NewNoObservationModel(o)
	for tt := 0; tt <= 16; tt++ {
		post := m.Posterior(tt)
		fwd := m.Forward(tt)
		prior := no.Marginal(tt)
		for s := range post {
			if fwd[s] == 0 {
				t.Errorf("t=%d: posterior state %d missing from forward support", tt, s)
			}
		}
		for s := range fwd {
			if prior[s] == 0 {
				t.Errorf("t=%d: forward state %d missing from prior support", tt, s)
			}
		}
	}
	// Narrowing must be strict somewhere mid-gap (observations add info).
	strict := false
	for tt := 1; tt < 16; tt++ {
		if len(m.Posterior(tt)) < len(no.Marginal(tt)) {
			strict = true
			break
		}
	}
	if !strict {
		t.Error("expected observations to strictly narrow the support somewhere")
	}
}

func TestAdaptContradictingObservation(t *testing.T) {
	o := lineObject(t, 9, 1, []uncertain.Observation{
		{T: 0, State: 0}, {T: 2, State: 8},
	})
	if _, err := Adapt(o); err == nil {
		t.Error("expected contradiction error")
	}
}

func TestAdaptSingleObservation(t *testing.T) {
	o := lineObject(t, 5, 1, []uncertain.Observation{{T: 3, State: 2}})
	m, err := Adapt(o)
	if err != nil {
		t.Fatal(err)
	}
	p := m.Posterior(3)
	if len(p) != 1 || p[2] != 1 {
		t.Errorf("posterior = %v", p)
	}
	if m.Transition(3) != nil {
		t.Error("no transition should exist for a single-instant model")
	}
}

func TestSamplerHitsObservationsAlways(t *testing.T) {
	o := lineObject(t, 13, 1, []uncertain.Observation{
		{T: 0, State: 6}, {T: 5, State: 9}, {T: 12, State: 4}, {T: 20, State: 8},
	})
	m, err := Adapt(o)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(m)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		p := s.Sample(rng)
		if !p.HitsObservations(o) {
			t.Fatalf("sample %d misses an observation: %v", i, p.States)
		}
		// Consecutive states must be chain-adjacent (|Δ| <= 1 on a line).
		for k := 1; k < len(p.States); k++ {
			if d := p.States[k] - p.States[k-1]; d < -1 || d > 1 {
				t.Fatalf("illegal transition %d→%d", p.States[k-1], p.States[k])
			}
		}
	}
}

func TestSamplerEmpiricalMatchesPosterior(t *testing.T) {
	o := lineObject(t, 9, 1, []uncertain.Observation{
		{T: 0, State: 3}, {T: 4, State: 5},
	})
	m, err := Adapt(o)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(m)
	rng := rand.New(rand.NewSource(7))
	const nSamples = 40000
	counts := make([]sparse.Vec, 5)
	for i := range counts {
		counts[i] = sparse.NewVec()
	}
	for i := 0; i < nSamples; i++ {
		p := s.Sample(rng)
		for tt := 0; tt <= 4; tt++ {
			st, _ := p.At(tt)
			counts[tt].Add(st, 1.0/nSamples)
		}
	}
	for tt := 0; tt <= 4; tt++ {
		if !counts[tt].Equal(m.Posterior(tt), 0.01) {
			t.Errorf("t=%d: empirical %v vs posterior %v", tt, counts[tt], m.Posterior(tt))
		}
	}
}

func TestRejectionSample(t *testing.T) {
	o := lineObject(t, 9, 1, []uncertain.Observation{
		{T: 0, State: 3}, {T: 3, State: 5},
	})
	rng := rand.New(rand.NewSource(2))
	res, err := RejectionSample(o, rng, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Path.HitsObservations(o) {
		t.Error("rejection sample must hit observations")
	}
	if res.Attempts < 1 {
		t.Error("attempts must be at least 1")
	}
}

func TestRejectionSampleExhaustion(t *testing.T) {
	// Very unlikely gap: force exhaustion with tiny budget.
	o := lineObject(t, 30, 1, []uncertain.Observation{
		{T: 0, State: 0}, {T: 29, State: 29},
	})
	rng := rand.New(rand.NewSource(3))
	if _, err := RejectionSample(o, rng, 2); err == nil {
		t.Error("expected exhaustion error")
	}
	if _, err := SegmentRejectionSample(o, rng, 2); err == nil {
		t.Error("expected exhaustion error")
	}
}

func TestSegmentRejectionSample(t *testing.T) {
	o := lineObject(t, 13, 1, []uncertain.Observation{
		{T: 0, State: 6}, {T: 4, State: 8}, {T: 8, State: 5},
	})
	rng := rand.New(rand.NewSource(4))
	res, err := SegmentRejectionSample(o, rng, 1000000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Path.HitsObservations(o) {
		t.Error("segment sample must hit observations")
	}
}

func TestExpectedRejectionCost(t *testing.T) {
	// One gap: TS1 == TS2. Multiple gaps: TS1 ~ product, TS2 ~ sum.
	single := lineObject(t, 9, 1, []uncertain.Observation{
		{T: 0, State: 3}, {T: 2, State: 4},
	})
	ts1, ts2 := ExpectedRejectionCost(single)
	if math.Abs(ts1-ts2) > 1e-9 {
		t.Errorf("single gap: TS1 %v != TS2 %v", ts1, ts2)
	}
	// P(state 4 at t=2 | state 3 at t=0) under equal 1/3 transitions:
	// paths 3→{2,3,4}→4 with prob 1/9 each where adjacent: 3→2→? no (2→4
	// not adjacent)... enumerate: to land on 4: (3→3→4),(3→4→4): but wait
	// interior states have 3 neighbours each; verify against enumeration
	// instead of hand arithmetic.
	paths, probs := enumeratePaths(single)
	hit := 0.0
	for k, p := range paths {
		if p.HitsObservations(single) {
			hit += probs[k]
		}
	}
	if math.Abs(ts1-1/hit) > 1e-9 {
		t.Errorf("TS1 = %v, want %v", ts1, 1/hit)
	}

	multi := lineObject(t, 9, 1, []uncertain.Observation{
		{T: 0, State: 3}, {T: 2, State: 4}, {T: 4, State: 5}, {T: 6, State: 4},
	})
	m1, m2 := ExpectedRejectionCost(multi)
	if m1 <= m2 {
		t.Errorf("with 3 gaps TS1 (%v) should exceed TS2 (%v)", m1, m2)
	}

	contra := lineObject(t, 9, 1, []uncertain.Observation{
		{T: 0, State: 0}, {T: 1, State: 8},
	})
	c1, c2 := ExpectedRejectionCost(contra)
	if c1 < 1e300 || c2 < 1e300 {
		t.Error("contradiction should yield infinite cost")
	}
}

// TestRejectionDecay reproduces the content of Figure 3/10: the empirical
// attempt count of TS1 grows much faster with the number of observations
// than TS2's.
func TestRejectionDecay(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	mean := func(o *uncertain.Object, segment bool) float64 {
		total := 0
		const reps = 30
		for r := 0; r < reps; r++ {
			var res PriorSampleResult
			var err error
			if segment {
				res, err = SegmentRejectionSample(o, rng, 1<<20)
			} else {
				res, err = RejectionSample(o, rng, 1<<20)
			}
			if err != nil {
				t.Fatal(err)
			}
			total += res.Attempts
		}
		return float64(total) / reps
	}
	obs2 := []uncertain.Observation{{T: 0, State: 5}, {T: 3, State: 7}}
	obs4 := []uncertain.Observation{
		{T: 0, State: 5}, {T: 3, State: 7}, {T: 6, State: 5}, {T: 9, State: 7},
	}
	o2 := lineObject(t, 13, 1, obs2)
	o4 := lineObject(t, 13, 2, obs4)
	ts1Growth := mean(o4, false) / mean(o2, false)
	ts2Growth := mean(o4, true) / mean(o2, true)
	if ts1Growth <= ts2Growth {
		t.Errorf("TS1 growth (%v) should exceed TS2 growth (%v)", ts1Growth, ts2Growth)
	}
}

func TestUniformDiamondModel(t *testing.T) {
	o := lineObject(t, 9, 1, []uncertain.Observation{
		{T: 0, State: 2}, {T: 4, State: 4},
	})
	u, err := NewUniformDiamondModel(o, uncertain.NewReach())
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt <= 4; tt++ {
		v := u.Marginal(tt)
		if math.Abs(v.Sum()-1) > 1e-12 {
			t.Errorf("U marginal at %d sums to %v", tt, v.Sum())
		}
		// All entries equal.
		var first float64
		for _, p := range v {
			first = p
			break
		}
		for s, p := range v {
			if p != first {
				t.Errorf("U marginal at %d not uniform: state %d has %v vs %v", tt, s, p, first)
			}
		}
	}
	if s, e := u.Span(); s != 0 || e != 4 {
		t.Errorf("Span = %d,%d", s, e)
	}
	if u.Name() != "U" {
		t.Errorf("Name = %q", u.Name())
	}
}

func TestFBUModel(t *testing.T) {
	o := lineObject(t, 9, 1, []uncertain.Observation{
		{T: 0, State: 2}, {T: 4, State: 4},
	})
	fbu, err := FBUModel(o)
	if err != nil {
		t.Fatal(err)
	}
	if fbu.Name() != "FBU" {
		t.Errorf("Name = %q", fbu.Name())
	}
	for tt := 0; tt <= 4; tt++ {
		if s := fbu.Marginal(tt).Sum(); math.Abs(s-1) > 1e-9 {
			t.Errorf("FBU mass at %d = %v", tt, s)
		}
	}
	// The line chain already has uniform rows, so FBU == FB here.
	m, err := Adapt(o)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt <= 4; tt++ {
		if !fbu.Marginal(tt).Equal(m.Posterior(tt), 1e-9) {
			t.Errorf("FBU should equal FB for a uniform chain at t=%d", tt)
		}
	}
}

func TestModelNarrowing(t *testing.T) {
	// Figure 4 content check on a 2D grid: FB reachable set is a subset of
	// prior reachable set, and both collapse to singletons at observations.
	sp, err := space.Grid(9, 9)
	if err != nil {
		t.Fatal(err)
	}
	mat, err := sp.BuildTransitionMatrix(func(i, j int) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	h, err := markov.NewHomogeneous(mat)
	if err != nil {
		t.Fatal(err)
	}
	o, err := uncertain.NewObject(1, []uncertain.Observation{
		{T: 0, State: 40}, {T: 6, State: 44},
	}, h)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Adapt(o)
	if err != nil {
		t.Fatal(err)
	}
	no := NewNoObservationModel(o)
	for tt := 0; tt <= 6; tt++ {
		if len(m.ReachableAt(tt)) > len(no.Marginal(tt)) {
			t.Errorf("t=%d: FB support larger than prior support", tt)
		}
	}
	if got := m.ReachableAt(6); len(got) != 1 || got[0] != 44 {
		t.Errorf("support at final obs = %v", got)
	}
}

func TestExpectedErrorAndModelNames(t *testing.T) {
	o := lineObject(t, 9, 1, []uncertain.Observation{
		{T: 0, State: 2}, {T: 4, State: 4},
	})
	m, err := Adapt(o)
	if err != nil {
		t.Fatal(err)
	}
	fb := PosteriorModel{m}
	f := ForwardModel{m}
	if fb.Name() != "FB" || f.Name() != "F" {
		t.Error("model names wrong")
	}
	if s, e := fb.Span(); s != 0 || e != 4 {
		t.Errorf("FB span = %d,%d", s, e)
	}
	// At an observation time the error is the distance of the observed
	// state to the truth exactly.
	got := ExpectedError(fb, 4, func(s int) float64 { return float64(s) })
	if math.Abs(got-4) > 1e-12 {
		t.Errorf("ExpectedError at obs = %v, want 4", got)
	}
	if e := ExpectedError(fb, 99, func(int) float64 { return 1 }); e != 0 {
		t.Errorf("out-of-span error = %v, want 0", e)
	}
}

func BenchmarkAdapt(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	sp, err := space.Synthetic(5000, 8, rng)
	if err != nil {
		b.Fatal(err)
	}
	h, err := markov.NewHomogeneous(sp.TransitionMatrix(0.5))
	if err != nil {
		b.Fatal(err)
	}
	// A 60-step lifetime with observations every 15 steps along a path.
	var path []int
	for len(path) < 61 {
		path = sp.ShortestPath(rng.Intn(sp.Len()), rng.Intn(sp.Len()))
	}
	var obs []uncertain.Observation
	for t := 0; t <= 60; t += 15 {
		obs = append(obs, uncertain.Observation{T: t, State: path[t]})
	}
	o, err := uncertain.NewObject(1, obs, h)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Adapt(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNewSampler tracks the alias-table build cost — the one-off
// per-object price of O(1) draws, paid inside PrepareAll and on every
// sampler-cache miss.
func BenchmarkNewSampler(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	sp, err := space.Synthetic(5000, 8, rng)
	if err != nil {
		b.Fatal(err)
	}
	h, err := markov.NewHomogeneous(sp.TransitionMatrix(0.5))
	if err != nil {
		b.Fatal(err)
	}
	var path []int
	for len(path) < 61 {
		path = sp.ShortestPath(rng.Intn(sp.Len()), rng.Intn(sp.Len()))
	}
	var obs []uncertain.Observation
	for t := 0; t <= 60; t += 15 {
		obs = append(obs, uncertain.Observation{T: t, State: path[t]})
	}
	o, err := uncertain.NewObject(1, obs, h)
	if err != nil {
		b.Fatal(err)
	}
	m, err := Adapt(o)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewSampler(m)
	}
}

func BenchmarkSample(b *testing.B) {
	o := lineObject(b, 101, 1, []uncertain.Observation{
		{T: 0, State: 50}, {T: 40, State: 70}, {T: 80, State: 30},
	})
	m, err := Adapt(o)
	if err != nil {
		b.Fatal(err)
	}
	s := NewSampler(m)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(rng)
	}
}
