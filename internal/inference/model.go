// Package inference implements the paper's central algorithmic
// contribution: Bayesian adaptation of an object's a-priori Markov chain to
// its observations (Algorithm 2, "AdaptTransitionMatrices"), and trajectory
// sampling from the resulting a-posteriori model.
//
// The forward phase walks time from the first to the last observation,
// computing the time-reversed transition matrices
//
//	R(t)[i][j] = P(o(t-1) = s_j | o(t) = s_i, past observations)
//
// via Bayes' theorem (Lemma 4). The backward phase walks time backwards
// using R(t) and produces the a-posteriori forward model
//
//	F(t)[i][j] = P(o(t+1) = s_j | o(t) = s_i, all observations Θ)
//
// (Equation 4) together with the posterior marginals P(o(t) = s | Θ).
// Sampling a trajectory from F hits every observation with probability 1,
// which is what makes Monte-Carlo PNN evaluation tractable (Section 5).
//
// The package also ships the inferior models the paper evaluates against in
// Figures 10 and 12: rejection sampling on the a-priori chain (TS1),
// segment-wise rejection (TS2), the forward-only model (F), the
// no-observation model (NO), the uniform-diamond model (U), and the
// forward-backward model over a uniformized chain (FBU).
package inference

import (
	"fmt"

	"pnn/internal/sparse"
	"pnn/internal/uncertain"
)

// pruneEps guards only against genuine floating-point underflow (values
// denormalized toward zero), NOT against "small" probabilities: a state
// with relative mass 1e-20 is negligible for sampling, but a later
// observation can land exactly there, and Bayes' rule must then be able to
// revive it. Trained chains with strong idle bias (parked taxis) produce
// exactly such paths, so any aggressive threshold here turns valid
// databases into spurious "contradicting observation" errors.
const pruneEps = 1e-300

// Model is the a-posteriori motion model of one object produced by Adapt.
// All slices are indexed by t - Start().
type Model struct {
	obj *uncertain.Object

	start, end int

	// r[t-start] holds R(t): row i is the distribution over predecessor
	// states at t-1 given being at state i at time t (and past
	// observations). r[0] is nil (no predecessor of the first timestep).
	r []*adj

	// f[t-start] holds F(t): row i is the adapted distribution over
	// successor states at t+1 given being at state i at t (and all
	// observations). f[end-start] is nil.
	f []*adj

	// fwd[t-start] is the forward-filtered marginal P(o(t) | past obs),
	// with observations at <= t incorporated. Kept for the Figure 12
	// ablation ("F" curve).
	fwd []sparse.Vec

	// post[t-start] is the posterior marginal P(o(t) | all obs).
	post []sparse.Vec
}

// Adapt runs Algorithm 2 on object o. It returns an error if consecutive
// observations contradict the chain (no possible trajectory connects them),
// which subsumes the non-contradiction precondition of the paper.
//
// Complexity is O(Σ_t nnz(t)) where nnz(t) is the number of transitions
// leaving the reachable state set at time t — the sparse specialization of
// the paper's O(|T|·|S|²) bound.
func Adapt(o *uncertain.Object) (*Model, error) {
	return AdaptShared(o, uncertain.NewReach())
}

// AdaptShared is Adapt with a caller-supplied reachability cache, so the
// chain transposes used for diamond computation are shared across the
// objects of one database. The forward sweep restricts every distribution
// to the gap's reachability diamond (forward ∩ backward support): states
// outside it have zero posterior probability by construction, and carrying
// them (the full forward cone) would make memory explode for objects with
// long observation gaps and strong idle bias.
func AdaptShared(o *uncertain.Object, reach *uncertain.Reach) (*Model, error) {
	if reach == nil {
		reach = uncertain.NewReach()
	}
	start, end := o.First().T, o.Last().T
	n := end - start + 1
	m := &Model{
		obj:   o,
		start: start,
		end:   end,
		r:     make([]*adj, n),
		f:     make([]*adj, n),
		fwd:   make([]sparse.Vec, n),
		post:  make([]sparse.Vec, n),
	}

	// Per-gap reachability diamonds; diamonds[g][k] is the sorted feasible
	// state set at offset k inside gap g. Computing them errors out on
	// contradicting observations before any heavy work happens.
	diamonds := make([][][]int32, len(o.Obs)-1)
	for g := range diamonds {
		d, err := reach.Diamond(o, g)
		if err != nil {
			return nil, fmt.Errorf("inference: %w", err)
		}
		diamonds[g] = d
	}
	gap := 0

	// Forward phase (Algorithm 2, lines 2-10).
	s := unitSvec(int32(o.First().State))
	m.fwd[0] = s.toVec()
	var tris []triple // reused across timesteps
	bld := newAdjBuilder()
	for t := start + 1; t <= end; t++ {
		for gap+1 < len(o.Obs)-1 && t > o.Obs[gap+1].T {
			gap++
		}
		mat := o.Chain.At(t - 1)
		// X'(t) = M(t-1)ᵀ · diag(s(t-1)), stored row-major by target
		// state i: X'[i][j] = M[j][i] · s[j]  (line 4).
		tris = tris[:0]
		for k, j := range s.idx {
			sj := s.val[k]
			cols, vals := mat.Row(int(j))
			for c, col := range cols {
				if p := vals[c] * sj; p > 0 {
					tris = append(tris, triple{r: col, c: j, p: p})
				}
			}
		}
		// Row sums give s(t) (line 5); normalizing rows gives R(t)
		// (line 6). Restricting to the diamond keeps the support (and all
		// stored matrices) memory-bounded by the set of actually feasible
		// states.
		rt, ns := bld.build(tris)
		ns.restrictTo(diamonds[gap][t-o.Obs[gap].T])
		if obsState, ok := o.ObservedAt(t); ok {
			// Incorporate the observation (line 8) after checking it is
			// consistent with the propagated support.
			if ns.find(int32(obsState)) <= 0 {
				return nil, fmt.Errorf(
					"inference: object %d observation at t=%d (state %d) contradicts the chain",
					o.ID, t, obsState)
			}
			s = unitSvec(int32(obsState))
		} else {
			if !ns.normalizePruned(pruneEps) {
				return nil, fmt.Errorf("inference: object %d has no reachable states at t=%d", o.ID, t)
			}
			s = ns
		}
		m.r[t-start] = rt
		m.fwd[t-start] = s.toVec()
	}

	// Backward phase (lines 12-16). s currently equals the unit vector of
	// the final observation, which is the desired posterior at end.
	m.post[end-start] = s.toVec()
	cur := s
	for t := end - 1; t >= start; t-- {
		rt := m.r[t+1-start]
		// X'(t) = R(t+1)ᵀ · diag(s(t+1)): X'[j][i] = R(t+1)[i][j]·s(t+1)[i]
		// (line 13).
		tris = tris[:0]
		for k, i := range cur.idx {
			si := cur.val[k]
			cols, vals := rt.row(i)
			for c, col := range cols {
				if p := vals[c] * si; p > 0 {
					tris = append(tris, triple{r: col, c: i, p: p})
				}
			}
		}
		ft, ns := bld.build(tris)
		ns.normalizePruned(pruneEps)
		m.f[t-start] = ft
		m.post[t-start] = ns.toVec()
		cur = ns
	}
	return m, nil
}

// Object returns the object this model was adapted for.
func (m *Model) Object() *uncertain.Object { return m.obj }

// Start returns the first timestep covered by the model (the time of the
// first observation).
func (m *Model) Start() int { return m.start }

// End returns the last timestep covered by the model.
func (m *Model) End() int { return m.end }

// Posterior returns P(o(t) = · | Θ), the state distribution at time t given
// all observations. It returns nil outside [Start, End]. The returned
// vector is shared and must not be modified.
func (m *Model) Posterior(t int) sparse.Vec {
	if t < m.start || t > m.end {
		return nil
	}
	return m.post[t-m.start]
}

// Forward returns the forward-filtered marginal P(o(t) = · | observations
// at times <= t) — the paper's "F" ablation model. It returns nil outside
// [Start, End].
func (m *Model) Forward(t int) sparse.Vec {
	if t < m.start || t > m.end {
		return nil
	}
	return m.fwd[t-m.start]
}

// Transition returns F(t): the adapted transition model from time t to
// t+1. Row i is the successor distribution given o(t) = s_i. It returns
// nil for t outside [Start, End-1]. The map representation is built on
// demand; hot paths (the Sampler) read the flat storage directly.
func (m *Model) Transition(t int) sparse.RowMap {
	if t < m.start || t >= m.end {
		return nil
	}
	return m.f[t-m.start].toRowMap()
}

// transitionAdj exposes the flat storage of F(t) to package-internal
// consumers.
func (m *Model) transitionAdj(t int) *adj {
	if t < m.start || t >= m.end {
		return nil
	}
	return m.f[t-m.start]
}

// Reverse returns R(t): the time-reversed model mapping time t to t-1
// given past observations, as built during the forward phase. It returns
// nil for t outside [Start+1, End]. Exposed for tests and diagnostics.
func (m *Model) Reverse(t int) sparse.RowMap {
	if m.r == nil || t <= m.start || t > m.end {
		return nil
	}
	return m.r[t-m.start].toRowMap()
}

// ReleaseReverse frees the time-reversed matrices R(t). They are consumed
// by the backward phase and afterwards serve only diagnostics (Reverse);
// sampling and every query path need F(t) and the marginals alone.
// Engines call this after building a sampler: for a fully-prepared
// database the reverse matrices are half of the resident model size.
// After the call, Reverse returns nil for all t.
func (m *Model) ReleaseReverse() { m.r = nil }

// ReachableAt returns the posterior support at time t in ascending order:
// the states the object can occupy at t with non-zero probability given all
// observations (one time slice of the paper's diamonds, Figure 4 right).
func (m *Model) ReachableAt(t int) []int {
	p := m.Posterior(t)
	if p == nil {
		return nil
	}
	return p.Support()
}
