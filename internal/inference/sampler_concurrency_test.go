package inference

import (
	"math/rand"
	"sync"
	"testing"

	"pnn/internal/uncertain"
)

// TestSamplerConcurrentUse enforces the sharing contract the query service
// is built on: one Sampler, many goroutines, each with its OWN *rand.Rand
// — no data races (run under -race) and every drawn path is valid. The
// Sampler itself is read-only after NewSampler; the rng is the only
// mutable state, which is why it must not be shared.
func TestSamplerConcurrentUse(t *testing.T) {
	o := lineObject(t, 60, 1, []uncertain.Observation{
		{T: 0, State: 20}, {T: 6, State: 24}, {T: 12, State: 20},
	})
	m, err := Adapt(o)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(m)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 200; i++ {
				p := s.Sample(rng)
				if !p.HitsObservations(o) {
					t.Errorf("worker %d: sample misses an observation", w)
					return
				}
				if wp, ok := s.SampleWindow(rng, 3, 9); !ok || len(wp.States) != 7 {
					t.Errorf("worker %d: bad window sample %v %v", w, wp, ok)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestSamplerDeterministicPerSeed pins down what "deterministic" means for
// the service layer: identical seeds yield identical paths regardless of
// what other goroutines do with their own generators.
func TestSamplerDeterministicPerSeed(t *testing.T) {
	o := lineObject(t, 40, 1, []uncertain.Observation{
		{T: 0, State: 10}, {T: 8, State: 14},
	})
	m, err := Adapt(o)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(m)
	draw := func() []int32 {
		return s.Sample(rand.New(rand.NewSource(99))).States
	}
	base := draw()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 100; i++ {
				s.Sample(rng)
			}
		}()
	}
	again := draw()
	wg.Wait()
	if len(base) != len(again) {
		t.Fatal("path lengths differ")
	}
	for i := range base {
		if base[i] != again[i] {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, base[i], again[i])
		}
	}
}
