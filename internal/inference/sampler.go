package inference

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"pnn/internal/sparse"
	"pnn/internal/uncertain"
)

// Sampler draws possible trajectories of one object from its a-posteriori
// model F(t). Every drawn path starts at the first observation, ends at the
// last, and passes through every observation in between with probability 1
// (Section 5.2.3). A Sampler is safe for concurrent use as long as each
// goroutine supplies its own *rand.Rand.
type Sampler struct {
	model *Model
	// cum[t-start] holds, aligned with the flat adapted matrix F(t), the
	// within-row cumulative probabilities, so drawing a successor is one
	// row lookup plus a binary search.
	cum [][]float64
	// postCum[t-start] is the cumulative posterior marginal at t, used to
	// draw the entry state of window-restricted samples.
	postCum []cumDist
}

type cumDist struct {
	states []int32
	cum    []float64 // strictly increasing, last element ~1
}

// NewSampler precomputes cumulative successor distributions from the
// adapted model.
func NewSampler(m *Model) *Sampler {
	n := m.end - m.start
	s := &Sampler{
		model:   m,
		cum:     make([][]float64, n),
		postCum: make([]cumDist, n+1),
	}
	for t := m.start; t < m.end; t++ {
		a := m.transitionAdj(t)
		cum := make([]float64, len(a.p))
		for r := 0; r+1 < len(a.off); r++ {
			acc := 0.0
			for k := a.off[r]; k < a.off[r+1]; k++ {
				acc += a.p[k]
				cum[k] = acc
			}
		}
		s.cum[t-m.start] = cum
	}
	for t := m.start; t <= m.end; t++ {
		s.postCum[t-m.start] = cumOf(m.Posterior(t))
	}
	return s
}

// step draws the successor of state cur at time t, or panics if cur has no
// adapted successors (impossible for states with posterior mass).
func (s *Sampler) step(t, cur int, rng *rand.Rand) int {
	a := s.model.transitionAdj(t)
	r := a.rowIndex(int32(cur))
	if r < 0 {
		panic(fmt.Sprintf("inference: state %d at t=%d has no adapted successors", cur, t))
	}
	lo, hi := int(a.off[r]), int(a.off[r+1])
	cum := s.cum[t-s.model.start]
	u := rng.Float64() * cum[hi-1]
	k := lo + sort.SearchFloat64s(cum[lo:hi], u)
	if k == hi {
		k--
	}
	return int(a.dst[k])
}

func cumOf(v sparse.Vec) cumDist {
	ents := v.Entries()
	cd := cumDist{
		states: make([]int32, len(ents)),
		cum:    make([]float64, len(ents)),
	}
	acc := 0.0
	for k, e := range ents {
		acc += e.Val
		cd.states[k] = int32(e.Idx)
		cd.cum[k] = acc
	}
	return cd
}

func (cd cumDist) draw(rng *rand.Rand) int {
	u := rng.Float64() * cd.cum[len(cd.cum)-1]
	k := sort.SearchFloat64s(cd.cum, u)
	if k == len(cd.cum) {
		k--
	}
	return int(cd.states[k])
}

// SampleWindow draws the object's trajectory restricted to [ts, te] ∩
// [Start, End]: the entry state is drawn from the posterior marginal and
// subsequent states from the adapted transitions, which together realize
// the exact law of the trajectory over the window. ok is false when the
// window does not intersect the object's lifetime.
//
// Sampling only the query window instead of the whole lifetime is the
// dominant cost saving of the refinement step: query intervals are much
// shorter than object lifetimes.
func (s *Sampler) SampleWindow(rng *rand.Rand, ts, te int) (uncertain.Path, bool) {
	m := s.model
	if ts < m.start {
		ts = m.start
	}
	if te > m.end {
		te = m.end
	}
	if te < ts {
		return uncertain.Path{}, false
	}
	states := make([]int32, te-ts+1)
	cur := s.postCum[ts-m.start].draw(rng)
	states[0] = int32(cur)
	for t := ts; t < te; t++ {
		cur = s.step(t, cur, rng)
		states[t-ts+1] = int32(cur)
	}
	return uncertain.Path{Start: ts, States: states}, true
}

// Model returns the underlying adapted model.
func (s *Sampler) Model() *Model { return s.model }

// Sample draws one possible trajectory covering [Start, End].
func (s *Sampler) Sample(rng *rand.Rand) uncertain.Path {
	m := s.model
	states := make([]int32, m.end-m.start+1)
	cur := m.obj.First().State
	states[0] = int32(cur)
	for t := m.start; t < m.end; t++ {
		cur = s.step(t, cur, rng)
		states[t-m.start+1] = int32(cur)
	}
	return uncertain.Path{Start: m.start, States: states}
}

// SampleN draws n independent trajectories.
func (s *Sampler) SampleN(rng *rand.Rand, n int) []uncertain.Path {
	out := make([]uncertain.Path, n)
	for i := range out {
		out[i] = s.Sample(rng)
	}
	return out
}

// PriorSampleResult reports the outcome of rejection-based sampling on the
// a-priori chain.
type PriorSampleResult struct {
	Path     uncertain.Path
	Attempts int // trajectory draws consumed to obtain one valid sample
}

// RejectionSample implements the traditional Monte-Carlo approach (TS1,
// Section 5.1): draw full trajectories from the first observation forward
// using the a-priori chain, discarding any that miss a later observation.
// maxAttempts bounds the work; if it is exhausted, an error is returned
// with Attempts set to maxAttempts. The expected number of attempts grows
// exponentially with the number of observations, which is exactly the
// pathology Figure 10 demonstrates.
func RejectionSample(o *uncertain.Object, rng *rand.Rand, maxAttempts int) (PriorSampleResult, error) {
	start, end := o.First().T, o.Last().T
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		states := make([]int32, end-start+1)
		cur := o.First().State
		states[0] = int32(cur)
		ok := true
		for t := start; t < end; t++ {
			cur = stepPrior(o, t, cur, rng)
			states[t-start+1] = int32(cur)
			if want, observed := o.ObservedAt(t + 1); observed && want != cur {
				ok = false
				break
			}
		}
		if ok {
			return PriorSampleResult{
				Path:     uncertain.Path{Start: start, States: states},
				Attempts: attempt,
			}, nil
		}
	}
	return PriorSampleResult{Attempts: maxAttempts},
		fmt.Errorf("inference: rejection sampling exhausted %d attempts for object %d", maxAttempts, o.ID)
}

// SegmentRejectionSample implements the improved rejection scheme (TS2,
// Section 7.1 "Sampling Efficiency"): sample each observation gap
// independently, restarting only the current segment when it misses its end
// observation. Attempts counts segment draws across all gaps, making the
// expected cost linear rather than exponential in the number of
// observations.
func SegmentRejectionSample(o *uncertain.Object, rng *rand.Rand, maxAttempts int) (PriorSampleResult, error) {
	start, end := o.First().T, o.Last().T
	states := make([]int32, end-start+1)
	states[0] = int32(o.First().State)
	attempts := 0
	for g := 0; g+1 < len(o.Obs); g++ {
		a, b := o.Obs[g], o.Obs[g+1]
		for {
			attempts++
			if attempts > maxAttempts {
				return PriorSampleResult{Attempts: maxAttempts},
					fmt.Errorf("inference: segment sampling exhausted %d attempts for object %d", maxAttempts, o.ID)
			}
			cur := a.State
			okSeg := true
			for t := a.T; t < b.T; t++ {
				cur = stepPrior(o, t, cur, rng)
				states[t-start+1] = int32(cur)
			}
			if cur != b.State {
				okSeg = false
			}
			if okSeg {
				break
			}
		}
	}
	return PriorSampleResult{
		Path:     uncertain.Path{Start: start, States: states},
		Attempts: attempts,
	}, nil
}

// ExpectedRejectionCost returns the analytically expected number of
// trajectory draws needed by TS1 (full-trajectory rejection) and TS2
// (segment-wise rejection) to produce one valid sample of o, computed by
// exact forward propagation of the a-priori chain. The per-gap hit
// probability p_g is P(o(t_{g+1}) = θ_{g+1} | o(t_g) = θ_g); then
//
//	E[TS1] = 1 / Π_g p_g    and    E[TS2] = Σ_g 1/p_g.
//
// A contradiction (some p_g = 0) yields +Inf for both.
func ExpectedRejectionCost(o *uncertain.Object) (ts1, ts2 float64) {
	ts1 = 1
	for g := 0; g+1 < len(o.Obs); g++ {
		a, b := o.Obs[g], o.Obs[g+1]
		v := sparse.UnitVec(a.State)
		for t := a.T; t < b.T; t++ {
			v = o.Chain.At(t).MulVecLeft(v)
		}
		p := v[b.State]
		if p <= 0 {
			return inf(), inf()
		}
		ts1 *= 1 / p
		ts2 += 1 / p
	}
	return ts1, ts2
}

func stepPrior(o *uncertain.Object, t, cur int, rng *rand.Rand) int {
	cols, vals := o.Chain.At(t).Row(cur)
	u := rng.Float64()
	acc := 0.0
	for k, v := range vals {
		acc += v
		if u <= acc {
			return int(cols[k])
		}
	}
	// Floating-point shortfall: take the last transition.
	return int(cols[len(cols)-1])
}

func inf() float64 { return math.Inf(1) }
