package inference

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"pnn/internal/mcrand"
	"pnn/internal/sparse"
	"pnn/internal/uncertain"
)

// Sampler draws possible trajectories of one object from its a-posteriori
// model F(t). Every drawn path starts at the first observation, ends at the
// last, and passes through every observation in between with probability 1
// (Section 5.2.3). A Sampler is safe for concurrent use as long as each
// goroutine supplies its own generator.
type Sampler struct {
	model *Model
	// alias[t-start] holds, aligned with the flat adapted matrix F(t), the
	// Walker alias tables of every row plus cached successor-row indices,
	// so drawing a transition is one table lookup and one comparison —
	// no binary search anywhere in the walk.
	alias []rowAlias
	// postCum[t-start] and postAlias[t-start] are the posterior marginal
	// at t in cumulative and alias form, used to draw the entry state of
	// window-restricted samples (cumulative for the math/rand path, alias
	// for the columnar mcrand kernel).
	postCum   []cumDist
	postAlias []aliasDist
}

type cumDist struct {
	states []int32
	// rowOf[k] is the row index of states[k] in the transition matrix
	// leaving this timestep, or -1 at the model end (no transition
	// follows). Carrying it through the walk removes the per-step
	// row lookup.
	rowOf []int32
	cum   []float64 // strictly increasing, last element ~1
}

// NewSampler precomputes alias tables and entry distributions from the
// adapted model. The tables live as long as the sampler, which engines
// cache per object — the build cost is paid once per adaptation, the
// O(1) draws on every one of the millions of transitions sampled after.
func NewSampler(m *Model) *Sampler {
	n := m.end - m.start
	s := &Sampler{
		model:     m,
		alias:     make([]rowAlias, n),
		postCum:   make([]cumDist, n+1),
		postAlias: make([]aliasDist, n+1),
	}
	sc := &aliasScratch{}
	// Walk time backwards: when the loop reaches t, the scratch still
	// indexes F(t+1) from the previous iteration — exactly the lookup
	// the t → t+1 tables need for their next-row cache (empty at
	// t == end-1, where no matrix leaves the final timestep).
	for t := m.end; t >= m.start; t-- {
		if t < m.end {
			s.alias[t-m.start] = buildRowAlias(m.transitionAdj(t), sc)
		}
		sc.index(m.transitionAdj(t)) // nil at t == end: de-indexes
		cd := cumOf(m.Posterior(t), sc)
		s.postCum[t-m.start] = cd
		s.postAlias[t-m.start] = aliasOf(cd, sc)
	}
	return s
}

// stepRow draws the successor of the state at row index `row` of F(t)
// from one 64-bit uniform draw, returning the successor state and its
// row index in F(t+1) (-1 when t+1 is the model end).
func (s *Sampler) stepRow(t, row int, u uint64) (int32, int) {
	a := s.model.f[t-s.model.start]
	ra := &s.alias[t-s.model.start]
	lo, hi := int(a.off[row]), int(a.off[row+1])
	slot, frac := aliasPick(u, hi-lo)
	k := lo + slot
	if frac >= ra.prob[k] {
		k = int(ra.alias[k])
	}
	return a.dst[k], int(ra.next[k])
}

func noSuccessors(cur int32, t int) string {
	return fmt.Sprintf("inference: state %d at t=%d has no adapted successors", cur, t)
}

// cumOf builds the cumulative form of a posterior marginal, caching
// each state's row index in the timestep's outgoing transition matrix
// through the scratch lookup (which must index that matrix; -1
// everywhere at the model end, where no matrix follows).
func cumOf(v sparse.Vec, sc *aliasScratch) cumDist {
	ents := v.Entries()
	cd := cumDist{
		states: make([]int32, len(ents)),
		rowOf:  make([]int32, len(ents)),
		cum:    make([]float64, len(ents)),
	}
	acc := 0.0
	for k, e := range ents {
		acc += e.Val
		cd.states[k] = int32(e.Idx)
		cd.cum[k] = acc
		cd.rowOf[k] = sc.lookup(int32(e.Idx))
	}
	return cd
}

// aliasOf converts a cumulative entry distribution to alias form. The
// state and row slices are shared with cd (both are read-only).
func aliasOf(cd cumDist, sc *aliasScratch) aliasDist {
	n := len(cd.states)
	d := aliasDist{
		states: cd.states,
		rowOf:  cd.rowOf,
		prob:   make([]float64, n),
		alias:  make([]int32, n),
	}
	w := make([]float64, n)
	prev := 0.0
	for k, c := range cd.cum {
		w[k] = c - prev
		prev = c
	}
	buildAliasRange(w, d.prob, d.alias, 0, sc)
	return d
}

// draw returns the slot index of one sample of the distribution.
func (cd cumDist) draw(rng *rand.Rand) int {
	return cd.drawAt(rng.Float64() * cd.cum[len(cd.cum)-1])
}

// drawAt resolves a uniform draw u ∈ [0, total) to its slot. Floating-
// point overshoot — u computed as fraction×total can round to a value
// that SearchFloat64s places past the final cumulative entry — clamps
// to the last slot, mirroring the transition-step clamp the cumulative
// sampler always had.
func (cd cumDist) drawAt(u float64) int {
	k := sort.SearchFloat64s(cd.cum, u)
	if k == len(cd.cum) {
		k--
	}
	return k
}

// draw returns the slot index of one sample of the distribution.
func (d *aliasDist) draw(rng *mcrand.RNG) int {
	slot, frac := aliasPick(rng.Uint64(), len(d.prob))
	if frac >= d.prob[slot] {
		slot = int(d.alias[slot])
	}
	return slot
}

// SampleWindow draws the object's trajectory restricted to [ts, te] ∩
// [Start, End]: the entry state is drawn from the posterior marginal and
// subsequent states from the adapted transitions, which together realize
// the exact law of the trajectory over the window. ok is false when the
// window does not intersect the object's lifetime.
//
// Sampling only the query window instead of the whole lifetime is the
// dominant cost saving of the refinement step: query intervals are much
// shorter than object lifetimes.
func (s *Sampler) SampleWindow(rng *rand.Rand, ts, te int) (uncertain.Path, bool) {
	m := s.model
	if ts < m.start {
		ts = m.start
	}
	if te > m.end {
		te = m.end
	}
	if te < ts {
		return uncertain.Path{}, false
	}
	states := make([]int32, te-ts+1)
	cd := &s.postCum[ts-m.start]
	k := cd.draw(rng)
	cur, row := cd.states[k], int(cd.rowOf[k])
	states[0] = cur
	for t := ts; t < te; t++ {
		if row < 0 {
			panic(noSuccessors(cur, t))
		}
		cur, row = s.stepRow(t, row, rng.Uint64())
		states[t-ts+1] = cur
	}
	return uncertain.Path{Start: ts, States: states}, true
}

// SampleWindowInto is the columnar twin of SampleWindow: it draws the
// trajectory over [ts, te] directly into dst, which must have length
// te-ts+1. dst[t-ts] receives the state at t, or -1 ("dead") where t
// falls outside the object's lifetime, the encoding nn.WorldBatch maps
// to an infinite distance. No allocation, one alias-table lookup per
// transition, an inlineable generator: this is the innermost call of
// the Monte-Carlo world-sampling kernel. ok is false when the window
// does not intersect the lifetime at all (dst is then all -1).
func (s *Sampler) SampleWindowInto(rng *mcrand.RNG, ts, te int, dst []int32) bool {
	m := s.model
	cs, ce := ts, te
	if cs < m.start {
		cs = m.start
	}
	if ce > m.end {
		ce = m.end
	}
	if ce < cs {
		for i := range dst {
			dst[i] = -1
		}
		return false
	}
	for i := 0; i < cs-ts; i++ {
		dst[i] = -1
	}
	for i := ce - ts + 1; i < len(dst); i++ {
		dst[i] = -1
	}
	ad := &s.postAlias[cs-m.start]
	k := ad.draw(rng)
	cur, row := ad.states[k], int(ad.rowOf[k])
	dst[cs-ts] = cur
	for t := cs; t < ce; t++ {
		if row < 0 {
			panic(noSuccessors(cur, t))
		}
		cur, row = s.stepRow(t, row, rng.Uint64())
		dst[t-ts+1] = cur
	}
	return true
}

// Model returns the underlying adapted model.
func (s *Sampler) Model() *Model { return s.model }

// Sample draws one possible trajectory covering [Start, End].
func (s *Sampler) Sample(rng *rand.Rand) uncertain.Path {
	m := s.model
	states := make([]int32, m.end-m.start+1)
	cur := int32(m.obj.First().State)
	states[0] = cur
	row := -1
	if m.end > m.start {
		row = m.f[0].rowIndex(cur)
	}
	for t := m.start; t < m.end; t++ {
		if row < 0 {
			panic(noSuccessors(cur, t))
		}
		cur, row = s.stepRow(t, row, rng.Uint64())
		states[t-m.start+1] = cur
	}
	return uncertain.Path{Start: m.start, States: states}
}

// SampleN draws n independent trajectories.
func (s *Sampler) SampleN(rng *rand.Rand, n int) []uncertain.Path {
	out := make([]uncertain.Path, n)
	for i := range out {
		out[i] = s.Sample(rng)
	}
	return out
}

// PriorSampleResult reports the outcome of rejection-based sampling on the
// a-priori chain.
type PriorSampleResult struct {
	Path     uncertain.Path
	Attempts int // trajectory draws consumed to obtain one valid sample
}

// RejectionSample implements the traditional Monte-Carlo approach (TS1,
// Section 5.1): draw full trajectories from the first observation forward
// using the a-priori chain, discarding any that miss a later observation.
// maxAttempts bounds the work; if it is exhausted, an error is returned
// with Attempts set to maxAttempts. The expected number of attempts grows
// exponentially with the number of observations, which is exactly the
// pathology Figure 10 demonstrates.
func RejectionSample(o *uncertain.Object, rng *rand.Rand, maxAttempts int) (PriorSampleResult, error) {
	start, end := o.First().T, o.Last().T
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		states := make([]int32, end-start+1)
		cur := o.First().State
		states[0] = int32(cur)
		ok := true
		for t := start; t < end; t++ {
			cur = stepPrior(o, t, cur, rng)
			states[t-start+1] = int32(cur)
			if want, observed := o.ObservedAt(t + 1); observed && want != cur {
				ok = false
				break
			}
		}
		if ok {
			return PriorSampleResult{
				Path:     uncertain.Path{Start: start, States: states},
				Attempts: attempt,
			}, nil
		}
	}
	return PriorSampleResult{Attempts: maxAttempts},
		fmt.Errorf("inference: rejection sampling exhausted %d attempts for object %d", maxAttempts, o.ID)
}

// SegmentRejectionSample implements the improved rejection scheme (TS2,
// Section 7.1 "Sampling Efficiency"): sample each observation gap
// independently, restarting only the current segment when it misses its end
// observation. Attempts counts segment draws across all gaps, making the
// expected cost linear rather than exponential in the number of
// observations.
func SegmentRejectionSample(o *uncertain.Object, rng *rand.Rand, maxAttempts int) (PriorSampleResult, error) {
	start, end := o.First().T, o.Last().T
	states := make([]int32, end-start+1)
	states[0] = int32(o.First().State)
	attempts := 0
	for g := 0; g+1 < len(o.Obs); g++ {
		a, b := o.Obs[g], o.Obs[g+1]
		for {
			attempts++
			if attempts > maxAttempts {
				return PriorSampleResult{Attempts: maxAttempts},
					fmt.Errorf("inference: segment sampling exhausted %d attempts for object %d", maxAttempts, o.ID)
			}
			cur := a.State
			okSeg := true
			for t := a.T; t < b.T; t++ {
				cur = stepPrior(o, t, cur, rng)
				states[t-start+1] = int32(cur)
			}
			if cur != b.State {
				okSeg = false
			}
			if okSeg {
				break
			}
		}
	}
	return PriorSampleResult{
		Path:     uncertain.Path{Start: start, States: states},
		Attempts: attempts,
	}, nil
}

// ExpectedRejectionCost returns the analytically expected number of
// trajectory draws needed by TS1 (full-trajectory rejection) and TS2
// (segment-wise rejection) to produce one valid sample of o, computed by
// exact forward propagation of the a-priori chain. The per-gap hit
// probability p_g is P(o(t_{g+1}) = θ_{g+1} | o(t_g) = θ_g); then
//
//	E[TS1] = 1 / Π_g p_g    and    E[TS2] = Σ_g 1/p_g.
//
// A contradiction (some p_g = 0) yields +Inf for both.
func ExpectedRejectionCost(o *uncertain.Object) (ts1, ts2 float64) {
	ts1 = 1
	for g := 0; g+1 < len(o.Obs); g++ {
		a, b := o.Obs[g], o.Obs[g+1]
		v := sparse.UnitVec(a.State)
		for t := a.T; t < b.T; t++ {
			v = o.Chain.At(t).MulVecLeft(v)
		}
		p := v[b.State]
		if p <= 0 {
			return inf(), inf()
		}
		ts1 *= 1 / p
		ts2 += 1 / p
	}
	return ts1, ts2
}

func stepPrior(o *uncertain.Object, t, cur int, rng *rand.Rand) int {
	cols, vals := o.Chain.At(t).Row(cur)
	u := rng.Float64()
	acc := 0.0
	for k, v := range vals {
		acc += v
		if u <= acc {
			return int(cols[k])
		}
	}
	// Floating-point shortfall: take the last transition.
	return int(cols[len(cols)-1])
}

func inf() float64 { return math.Inf(1) }
