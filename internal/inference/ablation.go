package inference

import (
	"fmt"

	"pnn/internal/markov"
	"pnn/internal/sparse"
	"pnn/internal/uncertain"
)

// MarginalModel yields a state distribution per timestep. It abstracts over
// the five competitors of the paper's Figure 12 effectiveness study: the
// forward-backward posterior (FB), the forward-only model (F), the
// no-observation model (NO), the uniform-diamond model (U), and FB over a
// uniformized chain (FBU).
type MarginalModel interface {
	// Marginal returns the model's state distribution at time t, or nil
	// outside the model's span.
	Marginal(t int) sparse.Vec
	// Span returns the first and last timestep covered.
	Span() (start, end int)
	// Name identifies the model in experiment output.
	Name() string
}

// PosteriorModel adapts a Model to MarginalModel using the full
// forward-backward posterior (the paper's FB).
type PosteriorModel struct{ M *Model }

// Marginal implements MarginalModel.
func (p PosteriorModel) Marginal(t int) sparse.Vec { return p.M.Posterior(t) }

// Span implements MarginalModel.
func (p PosteriorModel) Span() (int, int) { return p.M.Start(), p.M.End() }

// Name implements MarginalModel.
func (p PosteriorModel) Name() string { return "FB" }

// ForwardModel uses only past observations (the paper's F): the
// forward-filtered distribution, which is accurate right after an
// observation and degrades as the next one approaches.
type ForwardModel struct{ M *Model }

// Marginal implements MarginalModel.
func (f ForwardModel) Marginal(t int) sparse.Vec { return f.M.Forward(t) }

// Span implements MarginalModel.
func (f ForwardModel) Span() (int, int) { return f.M.Start(), f.M.End() }

// Name implements MarginalModel.
func (f ForwardModel) Name() string { return "F" }

// NoObservationModel propagates the a-priori chain from the first
// observation and ignores every later one (the paper's NO).
type NoObservationModel struct {
	obj        *uncertain.Object
	start, end int
	marginals  []sparse.Vec
}

// NewNoObservationModel precomputes the a-priori marginals of o over its
// lifetime.
func NewNoObservationModel(o *uncertain.Object) *NoObservationModel {
	start, end := o.First().T, o.Last().T
	m := &NoObservationModel{obj: o, start: start, end: end,
		marginals: make([]sparse.Vec, end-start+1)}
	v := sparse.UnitVec(o.First().State)
	m.marginals[0] = v.Clone()
	for t := start + 1; t <= end; t++ {
		v = o.Chain.At(t - 1).MulVecLeft(v)
		v.Prune(pruneEps)
		m.marginals[t-start] = v.Clone()
	}
	return m
}

// Marginal implements MarginalModel.
func (m *NoObservationModel) Marginal(t int) sparse.Vec {
	if t < m.start || t > m.end {
		return nil
	}
	return m.marginals[t-m.start]
}

// Span implements MarginalModel.
func (m *NoObservationModel) Span() (int, int) { return m.start, m.end }

// Name implements MarginalModel.
func (m *NoObservationModel) Name() string { return "NO" }

// UniformDiamondModel assigns equal probability to every state of the
// object's reachability diamond at each timestep (the paper's U), modelling
// the cylinders/beads approximations of related work that keep no
// probability information.
type UniformDiamondModel struct {
	start, end int
	marginals  []sparse.Vec
}

// NewUniformDiamondModel computes the diamond of every observation gap of o
// and flattens it into uniform per-timestep distributions.
func NewUniformDiamondModel(o *uncertain.Object, reach *uncertain.Reach) (*UniformDiamondModel, error) {
	start, end := o.First().T, o.Last().T
	m := &UniformDiamondModel{start: start, end: end,
		marginals: make([]sparse.Vec, end-start+1)}
	if len(o.Obs) == 1 {
		m.marginals[0] = sparse.UnitVec(o.First().State)
		return m, nil
	}
	for g := 0; g+1 < len(o.Obs); g++ {
		d, err := reach.Diamond(o, g)
		if err != nil {
			return nil, err
		}
		t0 := o.Obs[g].T
		for k, states := range d {
			v := sparse.NewVec()
			p := 1 / float64(len(states))
			for _, s := range states {
				v[int(s)] = p
			}
			m.marginals[t0+k-start] = v
		}
	}
	return m, nil
}

// Marginal implements MarginalModel.
func (m *UniformDiamondModel) Marginal(t int) sparse.Vec {
	if t < m.start || t > m.end {
		return nil
	}
	return m.marginals[t-m.start]
}

// Span implements MarginalModel.
func (m *UniformDiamondModel) Span() (int, int) { return m.start, m.end }

// Name implements MarginalModel.
func (m *UniformDiamondModel) Name() string { return "U" }

// UniformizeChain returns a copy of a homogeneous chain in which every
// row's probability mass is spread equally over its support. Running Adapt
// on an object with this chain yields the paper's FBU competitor: the
// forward-backward machinery without learned transition probabilities.
func UniformizeChain(c markov.Chain) (markov.Chain, error) {
	h, ok := c.(*markov.Homogeneous)
	if !ok {
		return nil, fmt.Errorf("inference: UniformizeChain supports homogeneous chains only, got %T", c)
	}
	m := h.M
	elems := make([]sparse.Triplet, 0, m.NNZ())
	for i := 0; i < m.N; i++ {
		cols, _ := m.Row(i)
		if len(cols) == 0 {
			continue
		}
		p := 1 / float64(len(cols))
		for _, ccol := range cols {
			elems = append(elems, sparse.Triplet{Row: i, Col: int(ccol), Val: p})
		}
	}
	um, err := sparse.NewCSR(m.N, elems)
	if err != nil {
		return nil, err
	}
	return markov.NewHomogeneous(um)
}

// FBUModel runs the forward-backward adaptation over the uniformized chain
// (the paper's FBU).
func FBUModel(o *uncertain.Object) (MarginalModel, error) {
	uc, err := UniformizeChain(o.Chain)
	if err != nil {
		return nil, err
	}
	uo := &uncertain.Object{ID: o.ID, Obs: o.Obs, Chain: uc}
	m, err := Adapt(uo)
	if err != nil {
		return nil, err
	}
	return namedModel{PosteriorModel{m}, "FBU"}, nil
}

type namedModel struct {
	MarginalModel
	name string
}

func (n namedModel) Name() string { return n.name }

// ExpectedError returns the expected Euclidean distance between the model's
// predicted distribution at time t and the true location: Σ_s P(s)·d(s,
// truth). This is the "mean error" metric of Figure 12. loc maps a state
// index to its location's distance from the truth.
func ExpectedError(m MarginalModel, t int, distToTruth func(state int) float64) float64 {
	v := m.Marginal(t)
	if v == nil {
		return 0
	}
	e := 0.0
	for s, p := range v {
		e += p * distToTruth(s)
	}
	return e
}
