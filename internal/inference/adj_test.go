package inference

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"pnn/internal/uncertain"
)

func TestAdjBuilderBasic(t *testing.T) {
	b := newAdjBuilder()
	// Rows emitted out of order, columns ascending per row.
	tris := []triple{
		{r: 7, c: 1, p: 1},
		{r: 3, c: 2, p: 2},
		{r: 7, c: 5, p: 3},
		{r: 3, c: 9, p: 2},
	}
	a, sums := b.build(tris)
	if len(a.src) != 2 || a.src[0] != 3 || a.src[1] != 7 {
		t.Fatalf("src = %v, want [3 7]", a.src)
	}
	cols, vals := a.row(3)
	if len(cols) != 2 || cols[0] != 2 || cols[1] != 9 {
		t.Errorf("row 3 cols = %v", cols)
	}
	if math.Abs(vals[0]-0.5) > 1e-15 || math.Abs(vals[1]-0.5) > 1e-15 {
		t.Errorf("row 3 not normalized: %v", vals)
	}
	cols, vals = a.row(7)
	if math.Abs(vals[0]-0.25) > 1e-15 || math.Abs(vals[1]-0.75) > 1e-15 {
		t.Errorf("row 7 vals = %v", vals)
	}
	_ = cols
	if sums.find(3) != 4 || sums.find(7) != 4 {
		t.Errorf("sums = %+v", sums)
	}
	if sums.find(99) != 0 {
		t.Error("missing state should have sum 0")
	}
	// Absent rows.
	if c, _ := a.row(5); c != nil {
		t.Errorf("absent row = %v", c)
	}
	if a.rowIndex(2) != -1 || a.rowIndex(8) != -1 {
		t.Error("rowIndex for absent states should be -1")
	}
}

func TestAdjBuilderReuse(t *testing.T) {
	b := newAdjBuilder()
	a1, _ := b.build([]triple{{r: 1, c: 2, p: 1}})
	a2, _ := b.build([]triple{{r: 5, c: 6, p: 1}, {r: 4, c: 0, p: 2}})
	// First result must be unaffected by the second build.
	if len(a1.src) != 1 || a1.src[0] != 1 {
		t.Errorf("a1 corrupted by reuse: %v", a1.src)
	}
	if len(a2.src) != 2 || a2.src[0] != 4 || a2.src[1] != 5 {
		t.Errorf("a2 = %v", a2.src)
	}
}

func TestAdjBuilderEmpty(t *testing.T) {
	b := newAdjBuilder()
	a, sums := b.build(nil)
	if len(a.src) != 0 || len(sums.idx) != 0 {
		t.Errorf("empty build: %v, %v", a.src, sums.idx)
	}
	if len(a.off) != 1 {
		t.Errorf("off = %v, want [0]", a.off)
	}
}

func TestAdjToRowMap(t *testing.T) {
	b := newAdjBuilder()
	a, _ := b.build([]triple{
		{r: 2, c: 1, p: 1},
		{r: 2, c: 3, p: 3},
	})
	rm := a.toRowMap()
	if math.Abs(rm.At(2, 1)-0.25) > 1e-15 || math.Abs(rm.At(2, 3)-0.75) > 1e-15 {
		t.Errorf("toRowMap = %v", rm)
	}
	var nilAdj *adj
	if nilAdj.toRowMap() != nil {
		t.Error("nil adj should convert to nil RowMap")
	}
}

func TestAdjBuilderMatchesNaive(t *testing.T) {
	// Property: against a naive map-based construction, the builder
	// produces identical normalized rows, for random inputs emitted in the
	// sweep pattern (ascending c per r).
	rng := rand.New(rand.NewSource(31))
	b := newAdjBuilder()
	for trial := 0; trial < 100; trial++ {
		nRows := 1 + rng.Intn(6)
		var tris []triple
		naive := map[int32]map[int32]float64{}
		usedRows := rng.Perm(20)[:nRows]
		// Emit grouped by c (ascending), mirroring the forward sweep where
		// the outer loop ascends over sources.
		for c := int32(0); c < 10; c++ {
			for _, ri := range usedRows {
				r := int32(ri)
				if rng.Float64() < 0.5 {
					continue
				}
				p := rng.Float64() + 0.01
				tris = append(tris, triple{r: r, c: c, p: p})
				if naive[r] == nil {
					naive[r] = map[int32]float64{}
				}
				naive[r][c] = p
			}
		}
		a, sums := b.build(tris)
		for r, row := range naive {
			total := 0.0
			for _, p := range row {
				total += p
			}
			if math.Abs(sums.find(r)-total) > 1e-12 {
				t.Fatalf("sum(%d) = %v, want %v", r, sums.find(r), total)
			}
			cols, vals := a.row(r)
			if len(cols) != len(row) {
				t.Fatalf("row %d has %d entries, want %d", r, len(cols), len(row))
			}
			if !sort.SliceIsSorted(cols, func(i, j int) bool { return cols[i] < cols[j] }) {
				t.Fatalf("row %d cols unsorted: %v", r, cols)
			}
			for k, c := range cols {
				if math.Abs(vals[k]-row[c]/total) > 1e-12 {
					t.Fatalf("entry (%d,%d) = %v, want %v", r, c, vals[k], row[c]/total)
				}
			}
		}
	}
}

func TestSvec(t *testing.T) {
	v := svec{idx: []int32{1, 5, 9}, val: []float64{0.2, 0.3, 0.5}}
	if v.find(5) != 0.3 || v.find(2) != 0 {
		t.Error("find wrong")
	}
	if math.Abs(v.sum()-1) > 1e-15 {
		t.Errorf("sum = %v", v.sum())
	}
	m := v.toVec()
	if m[9] != 0.5 || len(m) != 3 {
		t.Errorf("toVec = %v", m)
	}
	// normalizePruned drops dust and rescales.
	w := svec{idx: []int32{1, 2, 3}, val: []float64{1e-20, 2, 2}}
	if !w.normalizePruned(1e-15) {
		t.Fatal("normalizePruned returned false")
	}
	if len(w.idx) != 2 || w.idx[0] != 2 {
		t.Errorf("pruned idx = %v", w.idx)
	}
	if math.Abs(w.val[0]-0.5) > 1e-15 {
		t.Errorf("val = %v", w.val)
	}
	empty := svec{idx: []int32{1}, val: []float64{1e-20}}
	if empty.normalizePruned(1e-15) {
		t.Error("all-dust vector should report no mass")
	}
}

func TestSampleWindow(t *testing.T) {
	o := lineObject(t, 13, 1, []uncertain.Observation{
		{T: 10, State: 6}, {T: 20, State: 9}, {T: 30, State: 4},
	})
	m, err := Adapt(o)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(m)
	rng := rand.New(rand.NewSource(2))

	// Window fully inside the lifetime.
	p, ok := s.SampleWindow(rng, 14, 18)
	if !ok || p.Start != 14 || len(p.States) != 5 {
		t.Fatalf("window sample = %+v, %v", p, ok)
	}
	// Window clamped at both ends.
	p, ok = s.SampleWindow(rng, 0, 99)
	if !ok || p.Start != 10 || p.End() != 30 {
		t.Fatalf("clamped sample spans [%d, %d]", p.Start, p.End())
	}
	if !p.HitsObservations(o) {
		t.Error("full-window sample must hit observations")
	}
	// Disjoint window.
	if _, ok := s.SampleWindow(rng, 40, 50); ok {
		t.Error("disjoint window should report !ok")
	}
	if _, ok := s.SampleWindow(rng, 0, 5); ok {
		t.Error("window before lifetime should report !ok")
	}
}

// TestSampleWindowDistribution verifies the window sampler realizes the
// correct marginal law: empirical state frequencies at each window tic
// match the posterior.
func TestSampleWindowDistribution(t *testing.T) {
	o := lineObject(t, 9, 1, []uncertain.Observation{
		{T: 0, State: 3}, {T: 6, State: 5},
	})
	m, err := Adapt(o)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(m)
	rng := rand.New(rand.NewSource(3))
	const n = 40000
	const ws, we = 2, 4
	counts := map[int]map[int]float64{}
	for tt := ws; tt <= we; tt++ {
		counts[tt] = map[int]float64{}
	}
	for i := 0; i < n; i++ {
		p, ok := s.SampleWindow(rng, ws, we)
		if !ok {
			t.Fatal("window must intersect")
		}
		for tt := ws; tt <= we; tt++ {
			st, _ := p.At(tt)
			counts[tt][st] += 1.0 / n
		}
	}
	for tt := ws; tt <= we; tt++ {
		for st, want := range m.Posterior(tt) {
			if got := counts[tt][st]; math.Abs(got-want) > 0.015 {
				t.Errorf("t=%d state %d: empirical %v, posterior %v", tt, st, got, want)
			}
		}
	}
}
