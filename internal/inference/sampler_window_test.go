package inference

import (
	"math"
	"math/rand"
	"testing"

	"pnn/internal/mcrand"
	"pnn/internal/sparse"
	"pnn/internal/uncertain"
)

// windowSampler adapts a line object alive over [2, 10] with a middle
// observation, the fixture of the window edge-case tests.
func windowSampler(t *testing.T) (*Sampler, *uncertain.Object) {
	t.Helper()
	o := lineObject(t, 15, 1, []uncertain.Observation{
		{T: 2, State: 7}, {T: 6, State: 9}, {T: 10, State: 5},
	})
	m, err := Adapt(o)
	if err != nil {
		t.Fatal(err)
	}
	return NewSampler(m), o
}

func TestSampleWindowSingleInstant(t *testing.T) {
	s, _ := windowSampler(t)
	rng := rand.New(rand.NewSource(3))
	for _, ts := range []int{2, 5, 10} {
		p, ok := s.SampleWindow(rng, ts, ts)
		if !ok {
			t.Fatalf("ts == te == %d inside the lifetime must sample", ts)
		}
		if p.Start != ts || len(p.States) != 1 {
			t.Fatalf("ts == te == %d: got Start=%d, %d states", ts, p.Start, len(p.States))
		}
		if post := s.Model().Posterior(ts); post[int(p.States[0])] <= 0 {
			t.Fatalf("t=%d: sampled state %d has zero posterior mass", ts, p.States[0])
		}
	}
}

func TestSampleWindowIntoSingleInstant(t *testing.T) {
	s, _ := windowSampler(t)
	rng := mcrand.New(3)
	dst := make([]int32, 1)
	for _, ts := range []int{2, 6, 10} {
		if !s.SampleWindowInto(&rng, ts, ts, dst) {
			t.Fatalf("ts == te == %d inside the lifetime must sample", ts)
		}
		if post := s.Model().Posterior(ts); post[int(dst[0])] <= 0 {
			t.Fatalf("t=%d: sampled state %d has zero posterior mass", ts, dst[0])
		}
	}
	// At an observation the draw is forced.
	if !s.SampleWindowInto(&rng, 6, 6, dst) || dst[0] != 9 {
		t.Fatalf("window at observation t=6: got state %d, want 9", dst[0])
	}
}

func TestSampleWindowOutsideLifetime(t *testing.T) {
	s, _ := windowSampler(t)
	rng := rand.New(rand.NewSource(5))
	for _, w := range [][2]int{{0, 1}, {11, 20}, {-5, -1}} {
		if _, ok := s.SampleWindow(rng, w[0], w[1]); ok {
			t.Errorf("window [%d, %d] outside lifetime [2, 10] must not sample", w[0], w[1])
		}
	}
	mrng := mcrand.New(5)
	dst := make([]int32, 8)
	for _, w := range [][2]int{{11, 18}, {-6, 1}} {
		for i := range dst {
			dst[i] = 99 // poison: Into must overwrite every slot
		}
		if s.SampleWindowInto(&mrng, w[0], w[1], dst) {
			t.Errorf("window [%d, %d] outside lifetime [2, 10] must not sample", w[0], w[1])
		}
		for i, v := range dst {
			if v != -1 {
				t.Fatalf("window [%d, %d]: dst[%d] = %d, want -1", w[0], w[1], i, v)
			}
		}
	}
}

func TestSampleWindowIntoClipsToLifetime(t *testing.T) {
	s, o := windowSampler(t)
	rng := mcrand.New(11)
	const ts, te = 0, 13
	dst := make([]int32, te-ts+1)
	for trial := 0; trial < 200; trial++ {
		if !s.SampleWindowInto(&rng, ts, te, dst) {
			t.Fatal("overlapping window must sample")
		}
		for tt := ts; tt <= te; tt++ {
			v := dst[tt-ts]
			if tt < o.First().T || tt > o.Last().T {
				if v != -1 {
					t.Fatalf("t=%d outside lifetime: state %d, want -1", tt, v)
				}
				continue
			}
			if v < 0 {
				t.Fatalf("t=%d inside lifetime: dead slot", tt)
			}
			if post := s.Model().Posterior(tt); post[int(v)] <= 0 {
				t.Fatalf("t=%d: state %d has zero posterior mass", tt, v)
			}
		}
		// Transitions must stay chain-adjacent on the line.
		for tt := o.First().T; tt < o.Last().T; tt++ {
			if d := dst[tt+1-ts] - dst[tt-ts]; d < -1 || d > 1 {
				t.Fatalf("illegal transition %d→%d at t=%d", dst[tt-ts], dst[tt+1-ts], tt)
			}
		}
	}
}

// TestSampleWindowIntoMatchesPosterior checks that the alias-table
// entry draw and O(1) transition draws realize the same law as the
// posterior marginals, i.e. the columnar path is statistically
// equivalent to the cumulative one.
func TestSampleWindowIntoMatchesPosterior(t *testing.T) {
	s, _ := windowSampler(t)
	rng := mcrand.New(17)
	const ts, te = 3, 9
	const n = 60000
	dst := make([]int32, te-ts+1)
	counts := make([]sparse.Vec, te-ts+1)
	for i := range counts {
		counts[i] = sparse.NewVec()
	}
	for i := 0; i < n; i++ {
		if !s.SampleWindowInto(&rng, ts, te, dst) {
			t.Fatal("window inside lifetime must sample")
		}
		for tt := ts; tt <= te; tt++ {
			counts[tt-ts].Add(int(dst[tt-ts]), 1.0/n)
		}
	}
	for tt := ts; tt <= te; tt++ {
		if !counts[tt-ts].Equal(s.Model().Posterior(tt), 0.01) {
			t.Errorf("t=%d: empirical %v vs posterior %v", tt, counts[tt-ts], s.Model().Posterior(tt))
		}
	}
}

// TestSampleWindowIntoDeterministic pins the kernel's reproducibility:
// the same seed yields byte-identical state columns.
func TestSampleWindowIntoDeterministic(t *testing.T) {
	s, _ := windowSampler(t)
	a, b := mcrand.New(23), mcrand.New(23)
	da, db := make([]int32, 9), make([]int32, 9)
	for i := 0; i < 100; i++ {
		s.SampleWindowInto(&a, 2, 10, da)
		s.SampleWindowInto(&b, 2, 10, db)
		for k := range da {
			if da[k] != db[k] {
				t.Fatalf("draw %d slot %d: %d vs %d", i, k, da[k], db[k])
			}
		}
	}
}

// TestSamplerSingleObservationModel pins the degenerate model whose
// lifetime is one instant: no transition matrices exist, so every
// sampling path must answer from the entry distribution alone.
func TestSamplerSingleObservationModel(t *testing.T) {
	o := lineObject(t, 5, 1, []uncertain.Observation{{T: 3, State: 2}})
	m, err := Adapt(o)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(m)
	rng := rand.New(rand.NewSource(1))
	if p := s.Sample(rng); p.Start != 3 || len(p.States) != 1 || p.States[0] != 2 {
		t.Errorf("Sample = %+v, want the single observed instant", p)
	}
	if p, ok := s.SampleWindow(rng, 0, 10); !ok || len(p.States) != 1 || p.States[0] != 2 {
		t.Errorf("SampleWindow = %+v, %v", p, ok)
	}
	mrng := mcrand.New(1)
	dst := []int32{99, 99, 99}
	if !s.SampleWindowInto(&mrng, 2, 4, dst) {
		t.Fatal("window covering the instant must sample")
	}
	if dst[0] != -1 || dst[1] != 2 || dst[2] != -1 {
		t.Errorf("dst = %v, want [-1 2 -1]", dst)
	}
}

// TestCumDistDrawClamp exercises the floating-point-overshoot clamp of
// the cumulative entry draw: a u at or beyond the final cumulative
// value — possible when fraction×total rounds up — must clamp to the
// last slot instead of indexing one past the end, mirroring the
// long-standing transition-step clamp.
func TestCumDistDrawClamp(t *testing.T) {
	cd := cumDist{
		states: []int32{4, 7, 9},
		rowOf:  []int32{0, 1, 2},
		cum:    []float64{0.25, 0.5, 0.999999999999}, // FP shortfall: mass ~1 but < 1
	}
	last := cd.cum[len(cd.cum)-1]
	for _, u := range []float64{
		last,                    // exactly the final cumulative value
		math.Nextafter(last, 2), // one ulp beyond it
		last * (1 + 1e-12),      // relative overshoot
		1.0,                     // the "true" total the row should have had
	} {
		if k := cd.drawAt(u); k != len(cd.cum)-1 {
			t.Errorf("drawAt(%v) = slot %d, want clamp to last slot %d", u, k, len(cd.cum)-1)
		}
	}
	// Sanity: interior draws are unaffected by the clamp.
	if k := cd.drawAt(0); k != 0 {
		t.Errorf("drawAt(0) = %d, want 0", k)
	}
	if k := cd.drawAt(0.3); k != 1 {
		t.Errorf("drawAt(0.3) = %d, want 1", k)
	}
	// And the rand.Rand entry path composes draw over drawAt without
	// ever leaving the support.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		if k := cd.draw(rng); k < 0 || k >= len(cd.states) {
			t.Fatalf("draw returned out-of-range slot %d", k)
		}
	}
}
