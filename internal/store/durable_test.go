package store

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"pnn/internal/uncertain"
)

func walRecords(n int) []WALRecord {
	recs := make([]WALRecord, n)
	for i := range recs {
		op := OpAdd
		if i%2 == 1 {
			op = OpObserve
		}
		recs[i] = WALRecord{
			Version: int64(2 + i),
			Op:      op,
			ID:      100 + i,
			Obs: []uncertain.Observation{
				{T: i * 8, State: 30 + i},
				{T: i*8 + 4, State: 31 + i},
			},
		}
	}
	return recs
}

func appendAll(t *testing.T, path string, recs []WALRecord) (frames []int) {
	t.Helper()
	w, err := OpenWAL(path, 4, 2, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		n, err := w.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, n)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return frames
}

func replayAll(t *testing.T, path string, truncate bool) ([]WALRecord, WALInfo) {
	t.Helper()
	var got []WALRecord
	info, err := ReplayWAL(path, truncate, func(off int64, rec WALRecord) error {
		got = append(got, rec)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, info
}

func TestWALRoundTrip(t *testing.T) {
	path := WALSegmentPath(t.TempDir(), 1)
	recs := walRecords(5)
	appendAll(t, path, recs)

	got, info := replayAll(t, path, false)
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("replay mismatch:\n got %+v\nwant %+v", got, recs)
	}
	if info.Shards != 4 || info.ShardIndex != 2 || info.Base != 1 {
		t.Fatalf("header round-trip = %+v", info)
	}
	if info.Records != 5 || info.TornBytes != 0 {
		t.Fatalf("info = %+v, want 5 clean records", info)
	}

	// Reopening with a mismatched topology must refuse.
	if _, err := OpenWAL(path, 2, 2, 1, false); err == nil {
		t.Fatal("OpenWAL accepted a segment from a different shard count")
	}
}

// TestWALTornTail is the crash-mid-append case: the final frame is cut
// short, replay keeps everything before it, counts the torn bytes,
// truncates them away, and the segment accepts appends again.
func TestWALTornTail(t *testing.T) {
	path := WALSegmentPath(t.TempDir(), 1)
	recs := walRecords(3)
	frames := appendAll(t, path, recs)

	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := int64(frames[2]/2 + 1)
	if err := os.Truncate(path, st.Size()-int64(frames[2])+cut); err != nil {
		t.Fatal(err)
	}

	got, info := replayAll(t, path, true)
	if len(got) != 2 || !reflect.DeepEqual(got, recs[:2]) {
		t.Fatalf("torn replay returned %d records, want the 2 intact ones", len(got))
	}
	if info.TornBytes != cut {
		t.Fatalf("TornBytes = %d, want %d", info.TornBytes, cut)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != st.Size()-int64(frames[2]) {
		t.Fatalf("truncate left %d bytes, want %d", after.Size(), st.Size()-int64(frames[2]))
	}

	// The segment is writable again and the new record replays.
	w, err := OpenWAL(path, 4, 2, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(recs[2]); err != nil {
		t.Fatal(err)
	}
	w.Close()
	got, info = replayAll(t, path, false)
	if !reflect.DeepEqual(got, recs) || info.TornBytes != 0 {
		t.Fatalf("post-repair replay = %d records, torn %d", len(got), info.TornBytes)
	}
}

// TestWALFlippedByte covers bit rot: a corrupted checksum stops the
// replay at the damaged record, keeping everything before it.
func TestWALFlippedByte(t *testing.T) {
	path := WALSegmentPath(t.TempDir(), 1)
	recs := walRecords(3)
	frames := appendAll(t, path, recs)

	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte in the last record.
	buf[len(buf)-frames[2]/2] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	got, info := replayAll(t, path, false)
	if len(got) != 2 || info.TornBytes != int64(frames[2]) {
		t.Fatalf("flipped-byte replay: %d records, torn %d; want 2 records, torn %d",
			len(got), info.TornBytes, frames[2])
	}

	// Corruption in the first record drops the whole segment's records.
	buf[walHeaderSize+walFrameSize+3] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	got, info = replayAll(t, path, false)
	if len(got) != 0 || info.TornBytes == 0 {
		t.Fatalf("head corruption replay: %d records, torn %d; want 0 records", len(got), info.TornBytes)
	}
}

func TestSpillRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sp, c, s := lineStore(t, 200)
	_ = sp
	if _, err := s.Observe(2, []uncertain.Observation{{T: 16, State: 56}}); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	path, err := WriteSpill(dir, 2, 1, snap)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := ReadSpill(path)
	if err != nil {
		t.Fatal(err)
	}
	if sd.Shards != 2 || sd.ShardIndex != 1 || sd.Version != snap.Version {
		t.Fatalf("spill header = %+v", sd)
	}
	if !reflect.DeepEqual(sd.IDs, snap.IDs) {
		t.Fatalf("spill IDs = %v, want %v", sd.IDs, snap.IDs)
	}
	objs := snap.Engine.Tree().Objects()
	for i, o := range objs {
		if !reflect.DeepEqual(sd.Obs[i], o.Obs) {
			t.Fatalf("object %d obs = %v, want %v", sd.IDs[i], sd.Obs[i], o.Obs)
		}
	}

	// The rebuilt store answers from the spilled version.
	rebuilt := make([]*uncertain.Object, len(sd.IDs))
	for i := range sd.IDs {
		rebuilt[i] = mkObj(t, sd.IDs[i], c, sd.Obs[i]...)
	}
	s2, err := NewAt(s.sp, rebuilt, 200, sd.Version)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Version(); got != snap.Version {
		t.Fatalf("recovered version = %d, want %d", got, snap.Version)
	}

	// No stray temp file remains.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp spill left behind: %v", err)
	}

	refs, err := ListSpills(dir)
	if err != nil || len(refs) != 1 || refs[0].Version != snap.Version {
		t.Fatalf("ListSpills = %v, %v", refs, err)
	}
}

func TestSpillRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	_, _, s := lineStore(t, 100)
	path, err := WriteSpill(dir, 1, 0, s.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, flip := range []int{9, len(buf) / 2, len(buf) - 2} {
		bad := append([]byte(nil), buf...)
		bad[flip] ^= 0x01
		badPath := filepath.Join(dir, "bad.snap")
		if err := os.WriteFile(badPath, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadSpill(badPath); err == nil {
			t.Fatalf("ReadSpill accepted a spill with byte %d flipped", flip)
		}
	}
	// Truncation is rejected too.
	if err := os.WriteFile(filepath.Join(dir, "short.snap"), buf[:len(buf)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSpill(filepath.Join(dir, "short.snap")); err == nil {
		t.Fatal("ReadSpill accepted a truncated spill")
	}
}

func TestNewAtRejectsBadVersion(t *testing.T) {
	sp, c, _ := lineStore(t, 100)
	objs := []*uncertain.Object{mkObj(t, 1, c, uncertain.Observation{T: 0, State: 3})}
	if _, err := NewAt(sp, objs, 100, 0); err == nil {
		t.Fatal("NewAt accepted version 0")
	}
}
