// Periodic snapshot spills bound WAL replay time: a spill captures one
// shard's complete object set at a version, so recovery loads the newest
// valid spill and replays only the records past it. The codec is the
// flat columnar layout the zero-alloc kernel (nn.WorldBatch) and the
// scatter wire format already use — parallel arrays joined by an offset
// column — rather than a per-object record encoding: one read fills four
// contiguous columns, and the whole payload is covered by a single
// trailing CRC so a torn or bit-rotted spill is rejected as a unit and
// recovery falls back to the previous one.
//
// File layout (all integers little-endian):
//
//	magic "PNNSPIL1" | u32 format | u32 shards | u32 shardIndex
//	u64 version | u32 nObjects | u32 totalObs
//	ids       nObjects x i64
//	obsOff    (nObjects+1) x u32   // object i owns obs [obsOff[i], obsOff[i+1])
//	obsT      totalObs x i64
//	obsState  totalObs x i32
//	crc32c over everything above
//
// Spills are written to a temp file, fsynced, and renamed into place, so
// a crash mid-spill leaves only an ignored *.tmp and never a half spill
// under the real name.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"pnn/internal/uncertain"
)

const (
	spillMagic  = "PNNSPIL1"
	spillFormat = 1
)

// SpillData is a decoded spill: the complete object set of one shard at
// one version, in engine-index order (which store.NewAt reproduces
// exactly — see the rebuild-determinism note there).
type SpillData struct {
	Shards     int
	ShardIndex int
	Version    int64
	IDs        []int
	Obs        [][]uncertain.Observation
}

// SpillPath names the spill for a given version inside dir.
func SpillPath(dir string, version int64) string {
	return filepath.Join(dir, fmt.Sprintf("spill-%016x.snap", version))
}

// WriteSpill encodes snap's full object set and atomically installs it
// as dir's spill for snap.Version. It returns the final path.
func WriteSpill(dir string, shards, shardIndex int, snap *Snapshot) (string, error) {
	objs := snap.Engine.Tree().Objects()
	totalObs := 0
	for _, o := range objs {
		totalObs += len(o.Obs)
	}
	buf := make([]byte, 0, 40+len(objs)*12+totalObs*12)
	buf = append(buf, spillMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, spillFormat)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(shards))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(shardIndex))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(snap.Version))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(objs)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(totalObs))
	for _, o := range objs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(o.ID))
	}
	off := uint32(0)
	for _, o := range objs {
		buf = binary.LittleEndian.AppendUint32(buf, off)
		off += uint32(len(o.Obs))
	}
	buf = binary.LittleEndian.AppendUint32(buf, off)
	for _, o := range objs {
		for _, ob := range o.Obs {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(ob.T))
		}
	}
	for _, o := range objs {
		for _, ob := range o.Obs {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(ob.State)))
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))

	final := SpillPath(dir, snap.Version)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return "", err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return "", err
	}
	syncDir(dir)
	return final, nil
}

// ReadSpill decodes and checksum-verifies the spill at path. Any
// structural or CRC failure is an error — the caller falls back to an
// older spill rather than trusting a damaged one.
func ReadSpill(path string) (*SpillData, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	const fixed = 8 + 4 + 4 + 4 + 8 + 4 + 4
	if len(buf) < fixed+4 {
		return nil, fmt.Errorf("spill %s: too short (%d bytes)", path, len(buf))
	}
	body, sum := buf[:len(buf)-4], binary.LittleEndian.Uint32(buf[len(buf)-4:])
	if crc32.Checksum(body, crcTable) != sum {
		return nil, fmt.Errorf("spill %s: checksum mismatch", path)
	}
	if string(body[:8]) != spillMagic {
		return nil, fmt.Errorf("spill %s: bad magic %q", path, body[:8])
	}
	if f := binary.LittleEndian.Uint32(body[8:12]); f != spillFormat {
		return nil, fmt.Errorf("spill %s: unsupported format %d", path, f)
	}
	sd := &SpillData{
		Shards:     int(binary.LittleEndian.Uint32(body[12:16])),
		ShardIndex: int(binary.LittleEndian.Uint32(body[16:20])),
		Version:    int64(binary.LittleEndian.Uint64(body[20:28])),
	}
	n := int(binary.LittleEndian.Uint32(body[28:32]))
	totalObs := int(binary.LittleEndian.Uint32(body[32:36]))
	want := fixed + n*8 + (n+1)*4 + totalObs*12
	if len(body) != want {
		return nil, fmt.Errorf("spill %s: size %d does not match %d objects / %d observations", path, len(body), n, totalObs)
	}
	idsAt := fixed
	offAt := idsAt + n*8
	tAt := offAt + (n+1)*4
	stateAt := tAt + totalObs*8
	offs := make([]int, n+1)
	for i := range offs {
		offs[i] = int(binary.LittleEndian.Uint32(body[offAt+i*4:]))
	}
	if offs[0] != 0 || offs[n] != totalObs || !sort.IntsAreSorted(offs) {
		return nil, fmt.Errorf("spill %s: corrupt observation offsets", path)
	}
	sd.IDs = make([]int, n)
	sd.Obs = make([][]uncertain.Observation, n)
	flat := make([]uncertain.Observation, totalObs)
	for i := range flat {
		flat[i] = uncertain.Observation{
			T:     int(int64(binary.LittleEndian.Uint64(body[tAt+i*8:]))),
			State: int(int32(binary.LittleEndian.Uint32(body[stateAt+i*4:]))),
		}
	}
	for i := 0; i < n; i++ {
		sd.IDs[i] = int(int64(binary.LittleEndian.Uint64(body[idsAt+i*8:])))
		sd.Obs[i] = flat[offs[i]:offs[i+1]:offs[i+1]]
	}
	return sd, nil
}

// SpillRef names one spill found on disk.
type SpillRef struct {
	Version int64
	Path    string
}

// ListSpills returns dir's spills ascending by version. *.tmp leftovers
// from a crashed spill are ignored (and never match the name pattern).
func ListSpills(dir string) ([]SpillRef, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var out []SpillRef
	for _, e := range ents {
		if v, ok := parseVersionName(e.Name(), "spill-", ".snap"); ok {
			out = append(out, SpillRef{Version: v, Path: filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Version < out[j].Version })
	return out, nil
}
