package store

import (
	"math/rand"
	"testing"

	"pnn/internal/markov"
	"pnn/internal/query"
	"pnn/internal/space"
	"pnn/internal/uncertain"
)

// lineWorld returns a 60-state line space and its uniform chain.
func lineWorld(t testing.TB) (*space.Space, markov.Chain) {
	t.Helper()
	sp, err := space.Line(60)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sp.BuildTransitionMatrix(func(i, j int) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	c, err := markov.NewHomogeneous(m)
	if err != nil {
		t.Fatal(err)
	}
	return sp, c
}

func mkObj(t testing.TB, id int, c markov.Chain, obs ...uncertain.Observation) *uncertain.Object {
	t.Helper()
	o, err := uncertain.NewObject(id, obs, c)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func lineStore(t testing.TB, samples int) (*space.Space, markov.Chain, *Store) {
	t.Helper()
	sp, c := lineWorld(t)
	objs := []*uncertain.Object{
		mkObj(t, 1, c, uncertain.Observation{T: 0, State: 30}, uncertain.Observation{T: 8, State: 32}),
		mkObj(t, 2, c, uncertain.Observation{T: 0, State: 50}, uncertain.Observation{T: 8, State: 52}),
	}
	s, err := New(sp, objs, samples)
	if err != nil {
		t.Fatal(err)
	}
	return sp, c, s
}

func forAll(t testing.TB, sp *space.Space, snap *Snapshot, state, ts, te int) []query.Result {
	t.Helper()
	res, _, err := snap.Engine.ForAllNN(query.StateQuery(sp.Point(state)), ts, te, 0.5, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestObserveSnapshotIsolation is the RCU contract for observation
// appends: a reader holding the pre-Observe snapshot keeps answering
// from it, a reader taking a fresh snapshot sees the update.
func TestObserveSnapshotIsolation(t *testing.T) {
	sp, _, s := lineStore(t, 400)
	before := s.Snapshot()
	if before.Version != 1 {
		t.Fatalf("initial version = %d, want 1", before.Version)
	}
	// Nobody is alive on [10, 14] in version 1.
	if res := forAll(t, sp, before, 52, 10, 14); len(res) != 0 {
		t.Fatalf("v1 query found %v in an empty window", res)
	}

	pub, err := s.Observe(2, []uncertain.Observation{{T: 16, State: 56}})
	if err != nil {
		t.Fatal(err)
	}
	if pub.Version != 2 {
		t.Fatalf("Observe version = %d, want 2", pub.Version)
	}

	// The old snapshot is untouched; the new one covers the window.
	if res := forAll(t, sp, before, 52, 10, 14); len(res) != 0 {
		t.Errorf("pre-Observe snapshot changed retroactively: %v", res)
	}
	after := s.Snapshot()
	res := forAll(t, sp, after, 52, 10, 14)
	if len(res) != 1 || after.IDs[res[0].Obj] != 2 {
		t.Fatalf("post-Observe snapshot: got %v, want object 2", res)
	}
}

// TestAddObjectSnapshotIsolation: a new object appears only in
// snapshots taken after the publish, and the answer probabilities of
// the old snapshot are byte-identical before and after.
func TestAddObjectSnapshotIsolation(t *testing.T) {
	sp, c, s := lineStore(t, 400)
	before := s.Snapshot()
	resBefore := forAll(t, sp, before, 45, 1, 7)
	if len(resBefore) != 1 || before.IDs[resBefore[0].Obj] != 2 {
		t.Fatalf("v1 NN at 45: %v, want object 2", resBefore)
	}

	// Park a third object directly on the query state, far from both
	// existing objects so it dominates every possible world.
	pub, err := s.AddObject(mkObj(t, 3, c,
		uncertain.Observation{T: 0, State: 45}, uncertain.Observation{T: 8, State: 45}))
	if err != nil {
		t.Fatal(err)
	}
	if pub.Version != 2 || len(pub.IDs) != 3 {
		t.Fatalf("AddObject snapshot: version %d with %d ids, want 2 with 3", pub.Version, len(pub.IDs))
	}
	if got := s.NumObjects(); got != 3 {
		t.Fatalf("NumObjects = %d, want 3", got)
	}

	resOld := forAll(t, sp, before, 45, 1, 7)
	if len(resOld) != len(resBefore) || resOld[0].Obj != resBefore[0].Obj || resOld[0].Prob != resBefore[0].Prob {
		t.Errorf("old snapshot drifted: %v vs %v", resOld, resBefore)
	}
	after := s.Snapshot()
	resNew := forAll(t, sp, after, 45, 1, 7)
	if len(resNew) != 1 || after.IDs[resNew[0].Obj] != 3 {
		t.Fatalf("post-AddObject NN at 45: %v, want object 3", resNew)
	}
}

// TestRejectedWritesLeaveVersionUntouched: every invalid write fails
// without publishing.
func TestRejectedWritesLeaveVersionUntouched(t *testing.T) {
	_, c, s := lineStore(t, 100)
	cases := []func() error{
		// Duplicate ID.
		func() error {
			_, err := s.AddObject(mkObj(t, 2, c, uncertain.Observation{T: 0, State: 10}))
			return err
		},
		// Contradicting insert: 40 states in 2 tics on a line.
		func() error {
			_, err := s.AddObject(mkObj(t, 9, c,
				uncertain.Observation{T: 0, State: 0}, uncertain.Observation{T: 2, State: 40}))
			return err
		},
		// Unknown object.
		func() error {
			_, err := s.Observe(99, []uncertain.Observation{{T: 20, State: 10}})
			return err
		},
		// Empty append.
		func() error { _, err := s.Observe(1, nil); return err },
		// Duplicate timestamp.
		func() error {
			_, err := s.Observe(1, []uncertain.Observation{{T: 8, State: 32}})
			return err
		},
		// Unreachable append: 20 states away 1 tic after the last fix.
		func() error {
			_, err := s.Observe(1, []uncertain.Observation{{T: 9, State: 52}})
			return err
		},
	}
	for i, w := range cases {
		if err := w(); err == nil {
			t.Errorf("invalid write %d succeeded", i)
		}
	}
	if v := s.Version(); v != 1 {
		t.Errorf("version advanced to %d by rejected writes", v)
	}
	if n := s.NumObjects(); n != 2 {
		t.Errorf("NumObjects = %d after rejected writes", n)
	}
}

// TestIngestCacheCarryOver: writes invalidate only what they touch. An
// AddObject keeps every adapted sampler; an Observe re-adapts exactly
// the updated object.
func TestIngestCacheCarryOver(t *testing.T) {
	_, c, s := lineStore(t, 100)
	if _, err := s.Snapshot().Engine.PrepareAll(); err != nil {
		t.Fatal(err)
	}
	if b := s.Snapshot().Engine.CacheStats().Builds; b != 2 {
		t.Fatalf("Builds after warm-up = %d, want 2", b)
	}

	if _, err := s.AddObject(mkObj(t, 3, c,
		uncertain.Observation{T: 0, State: 20}, uncertain.Observation{T: 8, State: 22})); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Snapshot().Engine.PrepareAll(); err != nil {
		t.Fatal(err)
	}
	if b := s.Snapshot().Engine.CacheStats().Builds; b != 3 {
		t.Errorf("Builds after AddObject warm-up = %d, want 3 (carry-over lost)", b)
	}

	if _, err := s.Observe(1, []uncertain.Observation{{T: 12, State: 30}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Snapshot().Engine.PrepareAll(); err != nil {
		t.Fatal(err)
	}
	if b := s.Snapshot().Engine.CacheStats().Builds; b != 4 {
		t.Errorf("Builds after Observe warm-up = %d, want 4 (exactly one re-adaptation)", b)
	}
}

func BenchmarkAddObject(b *testing.B) {
	sp, c := lineWorld(b)
	var objs []*uncertain.Object
	for id := 0; id < 100; id++ {
		st := id % 50
		objs = append(objs, mkObj(b, id, c,
			uncertain.Observation{T: 0, State: st}, uncertain.Observation{T: 8, State: st + 2}))
	}
	s, err := New(sp, objs, 100)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := i % 50
		if _, err := s.AddObject(mkObj(b, 100+i, c,
			uncertain.Observation{T: 0, State: st}, uncertain.Observation{T: 8, State: st + 2})); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObserve(b *testing.B) {
	sp, c := lineWorld(b)
	var objs []*uncertain.Object
	for id := 0; id < 100; id++ {
		st := id % 50
		objs = append(objs, mkObj(b, id, c,
			uncertain.Observation{T: 0, State: st}, uncertain.Observation{T: 8, State: st + 2}))
	}
	s, err := New(sp, objs, 100)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := i % 100
		st := id % 50
		if _, err := s.Observe(id, []uncertain.Observation{{T: 9 + i/100, State: st + 2}}); err != nil {
			b.Fatal(err)
		}
	}
}
