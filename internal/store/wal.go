// Write-ahead log for the store's two write operations. Durability rests
// on a simple contract: every acknowledged AddObject/Observe is appended
// to an on-disk segment before the composite version is published, so a
// warm start can rebuild the exact snapshot chain by replaying records
// over the newest spill (see spill.go). Records are length-prefixed and
// CRC-checksummed; a torn tail — the half-written frame a crash leaves
// behind — is detected, counted, and truncated away rather than refusing
// to start, while a checksum failure *before* intact records is the
// recovery layer's cue to fall back to an older segment or fail loudly.
//
// Segment layout (all integers little-endian):
//
//	header:  magic "PNNWAL01" | u32 shards | u32 shardIndex | u64 base
//	record:  u32 payloadLen | u32 crc32c(payload) | payload
//	payload: u64 version | u8 op | u64 objectID | u32 nObs | nObs x (i64 t, i32 state)
//
// `base` is the store version the segment starts after: every record in
// the segment has Version > base, ascending by exactly one. Segments are
// named wal-%016x.log by their base so a directory listing yields replay
// order.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"pnn/internal/uncertain"
)

// WAL op codes. The zero value is invalid on purpose: a zeroed torn
// frame can never decode into a valid record.
const (
	OpAdd     byte = 1 // payload observations are the new object's full history
	OpObserve byte = 2 // payload observations are the appended delta only
)

// WALHeaderSize is the fixed segment header length; bytes past it are
// record frames (useful to size "how much would a restart replay").
const WALHeaderSize = 8 + 4 + 4 + 8

const (
	walMagic      = "PNNWAL01"
	walHeaderSize = WALHeaderSize
	walFrameSize  = 4 + 4 // payloadLen + crc32c
	// maxWALPayload bounds a single record so a corrupt length prefix
	// cannot drive a multi-gigabyte allocation; anything larger is torn.
	maxWALPayload = 1 << 26
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// WALRecord is one logged write. For OpAdd, Obs is the object's complete
// (sorted) observation history; for OpObserve it is exactly the delta
// passed to Observe, so replay re-issues the original call.
type WALRecord struct {
	// Version is the per-shard store version the write published.
	Version int64
	Op      byte
	ID      int
	Obs     []uncertain.Observation
}

// WAL is an append-only segment writer. Not safe for concurrent use; the
// shard set serializes writers.
type WAL struct {
	f     *os.File
	path  string
	fsync bool
	buf   []byte
}

// WALSegmentPath names the segment for a given base version inside dir.
func WALSegmentPath(dir string, base int64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.log", base))
}

// OpenWAL opens (or creates) the segment at path for appending. A new or
// empty file gets the header; an existing one must carry a matching
// header — a mismatch means the directory belongs to a different
// topology and is a hard error.
func OpenWAL(path string, shards, shardIndex int, base int64, fsync bool) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		hdr := make([]byte, 0, walHeaderSize)
		hdr = append(hdr, walMagic...)
		hdr = binary.LittleEndian.AppendUint32(hdr, uint32(shards))
		hdr = binary.LittleEndian.AppendUint32(hdr, uint32(shardIndex))
		hdr = binary.LittleEndian.AppendUint64(hdr, uint64(base))
		if _, err := f.Write(hdr); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
		syncDir(filepath.Dir(path))
	} else {
		gotShards, gotIndex, gotBase, err := readWALHeader(f)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("wal %s: %w", path, err)
		}
		if gotShards != shards || gotIndex != shardIndex || gotBase != base {
			f.Close()
			return nil, fmt.Errorf("wal %s: header (shards %d, shard %d, base %d) does not match (shards %d, shard %d, base %d)",
				path, gotShards, gotIndex, gotBase, shards, shardIndex, base)
		}
		if _, err := f.Seek(0, io.SeekEnd); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &WAL{f: f, path: path, fsync: fsync}, nil
}

// Path returns the segment file path.
func (w *WAL) Path() string { return w.path }

// Append writes one record frame (and fsyncs it when the WAL was opened
// with fsync). It returns the number of bytes appended.
func (w *WAL) Append(rec WALRecord) (int, error) {
	payload := appendWALPayload(w.buf[:0], rec)
	w.buf = payload // keep the grown buffer for the next record
	frame := make([]byte, 0, walFrameSize+len(payload))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, crcTable))
	frame = append(frame, payload...)
	if _, err := w.f.Write(frame); err != nil {
		return 0, err
	}
	if w.fsync {
		if err := w.f.Sync(); err != nil {
			return 0, err
		}
	}
	return len(frame), nil
}

// Sync flushes the segment to stable storage regardless of the fsync
// policy (used at clean shutdown).
func (w *WAL) Sync() error { return w.f.Sync() }

// Close flushes and closes the segment.
func (w *WAL) Close() error {
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

func appendWALPayload(buf []byte, rec WALRecord) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(rec.Version))
	buf = append(buf, rec.Op)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(rec.ID))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.Obs)))
	for _, o := range rec.Obs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(o.T))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(o.State)))
	}
	return buf
}

func decodeWALPayload(p []byte) (WALRecord, error) {
	const fixed = 8 + 1 + 8 + 4
	if len(p) < fixed {
		return WALRecord{}, fmt.Errorf("payload too short (%d bytes)", len(p))
	}
	rec := WALRecord{
		Version: int64(binary.LittleEndian.Uint64(p[0:8])),
		Op:      p[8],
		ID:      int(int64(binary.LittleEndian.Uint64(p[9:17]))),
	}
	n := int(binary.LittleEndian.Uint32(p[17:21]))
	if len(p) != fixed+n*12 {
		return WALRecord{}, fmt.Errorf("payload length %d does not match %d observations", len(p), n)
	}
	rec.Obs = make([]uncertain.Observation, n)
	for i := 0; i < n; i++ {
		off := fixed + i*12
		rec.Obs[i] = uncertain.Observation{
			T:     int(int64(binary.LittleEndian.Uint64(p[off : off+8]))),
			State: int(int32(binary.LittleEndian.Uint32(p[off+8 : off+12]))),
		}
	}
	return rec, nil
}

func readWALHeader(r io.Reader) (shards, shardIndex int, base int64, err error) {
	hdr := make([]byte, walHeaderSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, 0, 0, fmt.Errorf("short header: %w", err)
	}
	if string(hdr[:8]) != walMagic {
		return 0, 0, 0, fmt.Errorf("bad magic %q", hdr[:8])
	}
	shards = int(binary.LittleEndian.Uint32(hdr[8:12]))
	shardIndex = int(binary.LittleEndian.Uint32(hdr[12:16]))
	base = int64(binary.LittleEndian.Uint64(hdr[16:24]))
	return shards, shardIndex, base, nil
}

// WALInfo summarizes one segment replay.
type WALInfo struct {
	Shards     int
	ShardIndex int
	// Base is the store version the segment starts after.
	Base int64
	// Records counts the intact records handed to apply.
	Records int
	// TornBytes counts trailing bytes dropped because they did not form
	// an intact record (crash mid-append). Zero for a clean segment.
	TornBytes int64
}

// ReplayWAL reads the segment at path, calling apply for every intact
// record in order. The first short or checksum-failing frame ends the
// replay: its bytes (and everything after) are counted as torn, and when
// truncate is true the file is truncated back to the last intact record
// so the segment can be appended to again. An apply error aborts the
// replay with a contextual error naming the record's file offset and
// object ID — a record that cannot be re-applied means the log and the
// spill disagree, which must never be papered over.
func ReplayWAL(path string, truncate bool, apply func(offset int64, rec WALRecord) error) (WALInfo, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return WALInfo{}, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return WALInfo{}, err
	}
	shards, shardIndex, base, err := readWALHeader(f)
	if err != nil {
		return WALInfo{}, fmt.Errorf("wal %s: %w", path, err)
	}
	info := WALInfo{Shards: shards, ShardIndex: shardIndex, Base: base}
	size := st.Size()
	off := int64(walHeaderSize)
	frame := make([]byte, walFrameSize)
	var payload []byte
	for off < size {
		if size-off < walFrameSize {
			break // torn: not even a frame header
		}
		if _, err := f.ReadAt(frame, off); err != nil {
			return info, err
		}
		n := int64(binary.LittleEndian.Uint32(frame[0:4]))
		sum := binary.LittleEndian.Uint32(frame[4:8])
		if n > maxWALPayload || size-off-walFrameSize < n {
			break // torn: impossible or short payload
		}
		if int64(cap(payload)) < n {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := f.ReadAt(payload, off+walFrameSize); err != nil {
			return info, err
		}
		if crc32.Checksum(payload, crcTable) != sum {
			break // torn: bit rot or a partially flushed frame
		}
		rec, err := decodeWALPayload(payload)
		if err != nil {
			break // framed but undecodable: treat as torn, same as a bad sum
		}
		if err := apply(off, rec); err != nil {
			return info, fmt.Errorf("wal %s: record at offset %d (version %d, object %d): %w",
				path, off, rec.Version, rec.ID, err)
		}
		info.Records++
		off += walFrameSize + n
	}
	if off < size {
		info.TornBytes = size - off
		if truncate {
			if err := f.Truncate(off); err != nil {
				return info, fmt.Errorf("wal %s: truncating torn tail: %w", path, err)
			}
			if err := f.Sync(); err != nil {
				return info, err
			}
		}
	}
	return info, nil
}

// WALRef names one segment found on disk.
type WALRef struct {
	Base int64
	Path string
}

// ListWALSegments returns dir's WAL segments ascending by base version —
// the replay order.
func ListWALSegments(dir string) ([]WALRef, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var out []WALRef
	for _, e := range ents {
		if base, ok := parseVersionName(e.Name(), "wal-", ".log"); ok {
			out = append(out, WALRef{Base: base, Path: filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Base < out[j].Base })
	return out, nil
}

// parseVersionName extracts the 16-hex-digit version from a
// prefix-version-suffix file name, rejecting anything else.
func parseVersionName(name, prefix, suffix string) (int64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hex := name[len(prefix) : len(name)-len(suffix)]
	if len(hex) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return int64(v), true
}

// syncDir fsyncs a directory so a just-created or just-renamed entry
// survives a machine crash. Failures are ignored: some filesystems
// reject directory fsync, and the data fsync already happened.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
