// Package store owns the mutable state of a live PNN service: a
// versioned, immutable (UST-tree, query.Engine) snapshot plus the write
// path that advances it. The paper's whole premise is *moving* objects —
// observations keep arriving — so a serving system cannot freeze its
// database at startup.
//
// Reads are lock-free RCU: queries load the current snapshot from an
// atomic pointer and run entirely against it, so a snapshot swap never
// disturbs an in-flight query — it simply keeps answering from the
// version it started on. Writes (AddObject, Observe) are serialized by a
// mutex, build a private copy-on-write successor (ustree.Clone + Insert
// for new objects, an incremental re-index recomputing only the updated
// object's diamonds for observation appends), freeze it, and publish it
// with one atomic store. The successor engine carries
// over the adapted sampler of every untouched object and invalidates
// only the updated ones, so ingestion does not cold-start the cache.
package store

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"pnn/internal/query"
	"pnn/internal/space"
	"pnn/internal/uncertain"
	"pnn/internal/ustree"
)

// Sentinel write-path errors, exposed so API layers can map rejection
// classes to stable machine-readable codes with errors.Is instead of
// matching message strings.
var (
	// ErrDuplicateID rejects an AddObject (or build) whose object ID is
	// already indexed.
	ErrDuplicateID = errors.New("duplicate object id")
	// ErrUnknownID rejects an Observe for an object ID the snapshot does
	// not index.
	ErrUnknownID = errors.New("unknown object id")
)

// Snapshot is one immutable version of the database. All fields are
// read-only: the engine's tree is frozen and IDs must not be modified.
// A query that captured a Snapshot may keep using it for its whole
// lifetime regardless of how many writes are published meanwhile.
type Snapshot struct {
	// Version increases by one with every published write, starting at 1
	// for the initial build.
	Version int64
	// Engine answers queries over this version's frozen UST-tree.
	Engine *query.Engine
	// IDs maps the engine's object index to the caller-chosen object ID.
	IDs []int
	// ChangedID tags the version with the write that produced it: the ID
	// of the single object whose state differs from the predecessor
	// snapshot (writes are one-object by construction). It is -1 for the
	// initial build, where every object is new. Change consumers —
	// standing-query invalidation above all — read it off the published
	// snapshot instead of threading the ID through a side channel, so the
	// notification can never disagree with the version it describes.
	ChangedID int
}

// Store is the single writer of a serving system. It is safe for
// concurrent use: any number of goroutines may Snapshot/query while
// others AddObject/Observe.
type Store struct {
	sp    *space.Space
	reach *uncertain.Reach // shared diamond/transpose cache for index builds

	mu   sync.Mutex  // serializes writers; never held by readers
	byID map[int]int // object ID -> engine index (writer-owned)
	cur  atomic.Pointer[Snapshot]
}

// New indexes objs and returns a store at version 1, with an engine
// drawing `samples` possible worlds per query. Object IDs must be
// unique; observations contradicting an object's chain fail the build.
func New(sp *space.Space, objs []*uncertain.Object, samples int) (*Store, error) {
	s := &Store{sp: sp, reach: uncertain.NewReach()}
	tree, err := ustree.Build(sp, objs, s.reach)
	if err != nil {
		return nil, err
	}
	if err := s.init(tree, samples); err != nil {
		return nil, err
	}
	return s, nil
}

// NewLenient is New for noisy data: objects whose observations
// contradict their chain are dropped rather than failing the build. It
// returns the positions (in objs) of the skipped objects.
func NewLenient(sp *space.Space, objs []*uncertain.Object, samples int) (*Store, []int, error) {
	s := &Store{sp: sp, reach: uncertain.NewReach()}
	tree, skipped, err := ustree.BuildLenient(sp, objs, s.reach)
	if err != nil {
		return nil, nil, err
	}
	if err := s.init(tree, samples); err != nil {
		return nil, nil, err
	}
	return s, skipped, nil
}

// NewAt is New with an explicit starting version: recovery rebuilds a
// store from a spilled object set and needs the snapshot chain to resume
// at the version the spill captured, not restart at 1. This is exact,
// not approximate: Build, Insert and WithUpdatedObject all register gaps
// in the same (object, gap)-ascending order, so bulk-rebuilding the
// final object set yields byte-for-byte the index (and pruning behavior)
// the original incremental write history produced.
func NewAt(sp *space.Space, objs []*uncertain.Object, samples int, version int64) (*Store, error) {
	if version < 1 {
		return nil, fmt.Errorf("store: NewAt version %d < 1", version)
	}
	s := &Store{sp: sp, reach: uncertain.NewReach()}
	tree, err := ustree.Build(sp, objs, s.reach)
	if err != nil {
		return nil, err
	}
	if err := s.initAt(tree, samples, version); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Store) init(tree *ustree.Tree, samples int) error {
	return s.initAt(tree, samples, 1)
}

func (s *Store) initAt(tree *ustree.Tree, samples int, version int64) error {
	ids := make([]int, tree.Len())
	s.byID = make(map[int]int, tree.Len())
	for i, o := range tree.Objects() {
		if _, dup := s.byID[o.ID]; dup {
			return fmt.Errorf("store: %w %d", ErrDuplicateID, o.ID)
		}
		ids[i] = o.ID
		s.byID[o.ID] = i
	}
	tree.Freeze()
	s.cur.Store(&Snapshot{Version: version, Engine: query.NewEngine(tree, samples), IDs: ids, ChangedID: -1})
	return nil
}

// Snapshot returns the current version. The result is immutable and
// stays valid forever; it just stops being current once a write lands.
func (s *Store) Snapshot() *Snapshot { return s.cur.Load() }

// Version returns the current snapshot version. Successive calls return
// non-decreasing values.
func (s *Store) Version() int64 { return s.cur.Load().Version }

// NumObjects returns the object count of the current snapshot.
func (s *Store) NumObjects() int { return len(s.cur.Load().IDs) }

// SetParallelism sets the per-query sampling parallelism on the current
// engine and every engine derived from it by later writes.
func (s *Store) SetParallelism(workers int) {
	// Under mu no swap can race us, so the setting cannot land on a
	// snapshot that is being replaced (derived engines copy it).
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cur.Load().Engine.SetParallelism(workers)
}

// AddObject indexes a new object and publishes the successor snapshot,
// which it returns. The object's ID must be unused and its observations
// consistent with its chain. Cost is one R*-tree clone plus the new
// object's diamonds; the sampler cache carries over completely.
func (s *Store) AddObject(o *uncertain.Object) (*Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.byID[o.ID]; dup {
		return nil, fmt.Errorf("store: %w %d", ErrDuplicateID, o.ID)
	}
	cur := s.cur.Load()
	tree := cur.Engine.Tree().Clone()
	oi, err := tree.Insert(o, s.reach)
	if err != nil {
		return nil, err
	}
	tree.Freeze()
	next := &Snapshot{
		Version:   cur.Version + 1,
		Engine:    query.NewEngineFrom(cur.Engine, tree, nil),
		IDs:       append(append(make([]int, 0, len(cur.IDs)+1), cur.IDs...), o.ID),
		ChangedID: o.ID,
	}
	s.byID[o.ID] = oi
	s.cur.Store(next)
	return next, nil
}

// Observe appends observations to an existing object and publishes the
// successor snapshot, which it returns. Late (out-of-order)
// observations are accepted as long as the merged sequence stays
// consistent: duplicate timestamps and motions the chain cannot realize
// are rejected, leaving the current snapshot untouched. The object
// keeps its engine index; only its sampler is invalidated, every other
// object's adapted model carries over.
func (s *Store) Observe(id int, obs []uncertain.Observation) (*Snapshot, error) {
	if len(obs) == 0 {
		return nil, fmt.Errorf("store: Observe(%d) with no observations", id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	oi, ok := s.byID[id]
	if !ok {
		return nil, fmt.Errorf("store: %w %d", ErrUnknownID, id)
	}
	cur := s.cur.Load()
	old := cur.Engine.Tree().Objects()[oi]
	merged := append(append(make([]uncertain.Observation, 0, len(old.Obs)+len(obs)), old.Obs...), obs...)
	upd, err := uncertain.NewObject(id, merged, old.Chain)
	if err != nil {
		return nil, err
	}
	// The incremental rebuild recomputes only upd's diamonds (rejecting
	// contradicting updates before anything is published) and reuses
	// every other object's precomputed approximation; see
	// Tree.WithUpdatedObject for the exact cost model.
	tree, err := cur.Engine.Tree().WithUpdatedObject(oi, upd, s.reach)
	if err != nil {
		return nil, err
	}
	tree.Freeze()
	next := &Snapshot{
		Version:   cur.Version + 1,
		Engine:    query.NewEngineFrom(cur.Engine, tree, []int{oi}),
		IDs:       cur.IDs,
		ChangedID: id,
	}
	s.cur.Store(next)
	return next, nil
}
