package pnn

import (
	"math"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	net, err := NewSyntheticNetwork(2000, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	if net.NumStates() != 2000 {
		t.Fatalf("NumStates = %d", net.NumStates())
	}
	// Place three objects around a query state.
	qs := net.NearestState(Point{X: 0.5, Y: 0.5})
	qp := net.StatePoint(qs)
	near := net.NearestState(Point{X: qp.X + 0.01, Y: qp.Y})
	far := net.NearestState(Point{X: qp.X + 0.3, Y: qp.Y + 0.3})

	db := NewDB(net)
	if err := db.Add(100, []Observation{{T: 0, State: near}, {T: 10, State: near}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Add(200, []Observation{{T: 0, State: far}, {T: 10, State: far}}); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 2 {
		t.Fatalf("Len = %d", db.Len())
	}
	proc, err := db.Build(4000)
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := proc.ForAllNN(AtState(net, qs), 2, 8, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Worlds != 4000 {
		t.Errorf("stats.Worlds = %d", stats.Worlds)
	}
	if len(res) != 1 || res[0].ObjectID != 100 {
		t.Fatalf("ForAllNN = %+v, want object 100", res)
	}
	if res[0].Prob < 0.9 {
		t.Errorf("near object probability = %v, expected ~1", res[0].Prob)
	}
	// Exists query must also find it, with probability >= the ∀ one.
	eres, _, err := proc.ExistsNN(AtState(net, qs), 2, 8, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range eres {
		if r.ObjectID == 100 && r.Prob >= res[0].Prob-0.02 {
			found = true
		}
	}
	if !found {
		t.Errorf("ExistsNN = %+v missing object 100", eres)
	}
}

func TestFacadeDuplicateID(t *testing.T) {
	net, err := NewGridNetwork(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDB(net)
	if err := db.Add(1, []Observation{{T: 0, State: 0}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Add(1, []Observation{{T: 0, State: 1}}); err == nil {
		t.Error("expected duplicate-id error")
	}
}

func TestFacadeContinuousNN(t *testing.T) {
	net, err := NewGridNetwork(12, 12)
	if err != nil {
		t.Fatal(err)
	}
	center := net.NearestState(Point{X: 0.4, Y: 0.4})
	db := NewDB(net)
	if err := db.Add(5, []Observation{{T: 0, State: center}, {T: 8, State: center}}); err != nil {
		t.Fatal(err)
	}
	proc, err := db.Build(2000)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := proc.ContinuousNN(AtState(net, center), 1, 7, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Single object: it is the NN whenever alive, so one maximal set
	// covering the whole window.
	if len(res) != 1 || res[0].ObjectID != 5 || len(res[0].Times) != 7 {
		t.Errorf("ContinuousNN = %+v", res)
	}
	if _, _, err := proc.ContinuousNN(AtState(net, center), 1, 7, 0, 3); err == nil {
		t.Error("tau=0 must be rejected")
	}
}

func TestFacadeSampleTrajectory(t *testing.T) {
	net, err := NewGridNetwork(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDB(net)
	a := net.NearestState(Point{X: 0.1, Y: 0.1})
	b := net.NearestState(Point{X: 0.4, Y: 0.4})
	if err := db.Add(9, []Observation{{T: 3, State: a}, {T: 12, State: b}}); err != nil {
		t.Fatal(err)
	}
	proc, err := db.Build(100)
	if err != nil {
		t.Fatal(err)
	}
	traj, err := proc.SampleTrajectory(9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(traj) != 10 {
		t.Fatalf("trajectory length = %d, want 10", len(traj))
	}
	if traj[0] != a || traj[len(traj)-1] != b {
		t.Errorf("trajectory endpoints %d, %d want %d, %d", traj[0], traj[len(traj)-1], a, b)
	}
	if _, err := proc.SampleTrajectory(999, 1); err == nil {
		t.Error("expected unknown-id error")
	}
}

func TestFacadeMovingQuery(t *testing.T) {
	q := Moving(5, []Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}})
	if got := q.At(5); got.X != 0 {
		t.Errorf("At(5) = %v", got)
	}
	if got := q.At(7); got.X != 2 {
		t.Errorf("At(7) = %v", got)
	}
	// Clamping.
	if got := q.At(0); got.X != 0 {
		t.Errorf("At(0) = %v", got)
	}
	if got := q.At(99); got.X != 2 {
		t.Errorf("At(99) = %v", got)
	}
}

func TestFacadeKNN(t *testing.T) {
	net, err := NewGridNetwork(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	qs := net.NearestState(Point{X: 0.5, Y: 0.5})
	db := NewDB(net)
	for i := 0; i < 3; i++ {
		s := net.NearestState(Point{X: 0.5 + 0.1*float64(i), Y: 0.5})
		if err := db.Add(i, []Observation{{T: 0, State: s}, {T: 6, State: s}}); err != nil {
			t.Fatal(err)
		}
	}
	proc, err := db.Build(1500)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := proc.ForAllKNN(AtState(net, qs), 1, 5, 3, 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("k=|D| should return all alive objects, got %+v", res)
	}
	eres, _, err := proc.ExistsKNN(AtState(net, qs), 1, 5, 2, 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(eres) < 2 {
		t.Errorf("ExistsKNN k=2 = %+v, want at least the two nearest", eres)
	}
}

func TestFacadeContinuousKNN(t *testing.T) {
	net, err := NewGridNetwork(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	qs := net.NearestState(Point{X: 0.5, Y: 0.5})
	db := NewDB(net)
	for i := 0; i < 3; i++ {
		s := net.NearestState(Point{X: 0.5 + 0.12*float64(i), Y: 0.5})
		if err := db.Add(i, []Observation{{T: 0, State: s}, {T: 6, State: s}}); err != nil {
			t.Fatal(err)
		}
	}
	proc, err := db.Build(1500)
	if err != nil {
		t.Fatal(err)
	}
	// k = |D|: every object covers the full window with probability 1.
	res, _, err := proc.ContinuousKNN(AtState(net, qs), 1, 5, 3, 0.9, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("ContinuousKNN k=3 = %+v, want one result per object", res)
	}
	for _, r := range res {
		if len(r.Times) != 5 || r.Prob < 0.99 {
			t.Errorf("object %d: %+v, want full window at p≈1", r.ObjectID, r)
		}
	}
	if _, _, err := proc.ContinuousKNN(AtState(net, qs), 1, 5, 0, 0.5, 4); err == nil {
		t.Error("k=0 must be rejected")
	}
}

func TestSampleBounds(t *testing.T) {
	eps := SampleBound(10000, 0.05)
	if eps <= 0 || eps > 0.02 {
		t.Errorf("SampleBound(10000, 0.05) = %v", eps)
	}
	n := SamplesFor(eps, 0.05)
	if n > 10000+1 {
		t.Errorf("SamplesFor round trip = %d", n)
	}
	if math.IsNaN(eps) {
		t.Error("NaN bound")
	}
}

func TestSyntheticDatasetFacade(t *testing.T) {
	net, db, err := SyntheticDataset(1500, 8, 50, 40, 200, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 50 {
		t.Fatalf("dataset has %d objects", db.Len())
	}
	proc, err := db.Build(500)
	if err != nil {
		t.Fatal(err)
	}
	qs := RandomQueryState(net, 3)
	if _, _, err := proc.ExistsNN(AtState(net, qs), 50, 59, 0.0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestTaxiDatasetFacade(t *testing.T) {
	net, db, err := TaxiDataset(1200, 30, 40, 200, 8, 13)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 30 {
		t.Fatalf("dataset has %d taxis", db.Len())
	}
	if _, err := db.Build(200); err != nil {
		t.Fatal(err)
	}
	_ = net
}

// RandomQueryState picks a deterministic pseudo-random state for tests.
func RandomQueryState(net *Network, seed int64) int {
	// Simple LCG keeps the facade test free of extra imports.
	x := uint64(seed)*6364136223846793005 + 1442695040888963407
	return int(x % uint64(net.NumStates()))
}
