package pnn

import (
	"encoding/json"
	"testing"
)

// TestAdaptiveSchedulingIndependence is the determinism contract of the
// confidence-adaptive executor, stated end-to-end: for a fixed (seed,
// confidence) the answer bytes AND the number of worlds drawn are a
// pure function of the snapshot — identical whatever the per-query
// worker count and however the database is sharded. Worker counts vary
// only the fill scheduling (each influencer row draws from its private
// (seed, object ID) stream), and shard counts vary only the pruning
// supersets (extra rows count zero worlds and are handled by the bound's
// virtual-zero-row rule), so neither may move the early-stop point.
func TestAdaptiveSchedulingIndependence(t *testing.T) {
	net, db, err := SyntheticDataset(500, 8, 60, 80, 100, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	q := AtState(net, RandomQueryState(net, 3))
	conf := Confidence{Eps: 0.02, MaxSamples: 20000}
	cases := []Request{
		{Semantics: ForAll, Query: q, Ts: 40, Te: 47, Tau: 0.3, Seed: 99, Confidence: conf},
		{Semantics: Exists, Query: q, Ts: 40, Te: 47, K: 2, Tau: 0.3, Seed: 99, Confidence: conf},
		{Semantics: Continuous, Query: q, Ts: 40, Te: 44, Tau: 0.3, Seed: 99, Confidence: conf},
	}

	type outcome struct {
		Answer       string
		Worlds       int
		ErrorBound   float64
		EarlyStopped bool
	}
	var baseline []outcome
	sampled := false
	for _, shards := range []int{1, 2, 4} {
		proc, err := db.BuildSharded(4000, shards)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			proc.SetParallelism(workers)
			got := make([]outcome, len(cases))
			for i, req := range cases {
				resp := proc.Run(req)
				if resp.Err != nil {
					t.Fatalf("shards=%d workers=%d case %d: %v", shards, workers, i, resp.Err)
				}
				raw, err := json.Marshal(struct {
					R []Result
					I []IntervalResult
				}{resp.Results, resp.Intervals})
				if err != nil {
					t.Fatal(err)
				}
				got[i] = outcome{
					Answer:       string(raw),
					Worlds:       resp.Stats.Worlds,
					ErrorBound:   resp.Stats.ErrorBound,
					EarlyStopped: resp.Stats.EarlyStopped,
				}
				if resp.Stats.Worlds > 0 {
					sampled = true
				}
			}
			if baseline == nil {
				baseline = got
				continue
			}
			for i := range cases {
				if got[i] != baseline[i] {
					t.Errorf("shards=%d workers=%d case %d diverged:\n got %+v\nwant %+v",
						shards, workers, i, got[i], baseline[i])
				}
			}
		}
	}
	if !sampled {
		t.Fatal("fixture drew no worlds anywhere: the property was tested vacuously")
	}
	// The property must hold while adaptivity is actually exercised:
	// at least one case has to stop before its escalation cap.
	early := false
	for _, o := range baseline {
		if o.EarlyStopped {
			early = true
		}
		if o.Worlds > conf.MaxSamples {
			t.Errorf("outcome drew %d worlds beyond the cap %d", o.Worlds, conf.MaxSamples)
		}
	}
	if !early {
		t.Error("no case stopped early; pick a tau the estimates separate from")
	}
}
