package pnn

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"time"

	"pnn/internal/shard"
	"pnn/internal/sub"
)

// Delivery configures how a subscription's events reach its consumer;
// see sub.Delivery for field semantics.
type Delivery = sub.Delivery

// SubEvent is one delivered subscription result. Payload, when the
// event is not a terminal Bye, is a Response evaluated at
// SubEvent.Version.
type SubEvent = sub.Event

// Subscription is one standing query; consume results from Events().
type Subscription = sub.Subscription

// SubscriptionInfo describes one registered subscription;
// Meta is the Request it was registered with.
type SubscriptionInfo = sub.Info

// SubscriptionStats are the registry's cumulative counters — most
// importantly Evaluations vs Notifies, the measure of how selective
// write-path invalidation is.
type SubscriptionStats = sub.Stats

// influenceRegion is a standing query's stored influence region: the
// query positions over the window plus the per-timestep pruning
// thresholds of its last evaluation. An updated object whose
// rectangles stay strictly outside bound[t-ts] at every window time
// cannot be among the k nearest at any t — and because it then cannot
// displace the threshold-defining objects either, the stored
// thresholds remain valid until the next evaluation refreshes them.
type influenceRegion struct {
	q      Query
	ts, te int
	bound  []float64
}

// Subscribe registers req as a standing query: it is evaluated once
// immediately (the first event on the returned subscription's channel,
// seq 1) and re-evaluated after every AddObject/Observe whose object
// touches the query's influence region. Every event carries a full
// Response plus the snapshot version it answers for, and the
// determinism contract of one-shot queries extends to standing ones: a
// delivered event at version V is byte-identical to Run(req) against
// the version-V snapshot.
//
// Evaluations run asynchronously on the registry's worker pool — the
// ingest path never samples — and per-subscription event queues are
// bounded (see Delivery.QueueCap): slow consumers lose oldest events,
// tracked by SubEvent.Dropped, and never block writers. The consumer
// must drain Events() until the terminal Bye event (sent by
// Unsubscribe and CloseSubscriptions), after which the channel closes.
func (p *Processor) Subscribe(req Request, d Delivery) (*Subscription, error) {
	if _, _, err := normalizeRequest(req); err != nil {
		return nil, err
	}
	return p.subs.Subscribe(func() sub.Eval { return p.evalStanding(req) }, d, req), nil
}

// Unsubscribe removes a standing query; its consumer receives a
// terminal Bye event and the channel closes. It reports whether the ID
// was registered.
func (p *Processor) Unsubscribe(id int64) bool { return p.subs.Unsubscribe(id) }

// Subscription returns the standing query with the given ID, if
// registered.
func (p *Processor) Subscription(id int64) (*Subscription, bool) { return p.subs.Get(id) }

// Subscriptions describes every registered standing query, ascending
// by ID.
func (p *Processor) Subscriptions() []SubscriptionInfo { return p.subs.List() }

// NumSubscriptions returns the number of registered standing queries.
func (p *Processor) NumSubscriptions() int { return p.subs.Len() }

// SubscriptionStats returns the registry's cumulative counters.
func (p *Processor) SubscriptionStats() SubscriptionStats { return p.subs.Stats() }

// WaitSubscriptionsIdle blocks until every pending re-evaluation has
// drained (or the timeout elapses), reporting whether quiescence was
// reached. After a successful wait, every subscription has evaluated
// the newest snapshot its latest relevant write published.
func (p *Processor) WaitSubscriptionsIdle(timeout time.Duration) bool {
	return p.subs.WaitIdle(timeout)
}

// CloseSubscriptions shuts the subscription subsystem down: every
// standing query receives a terminal Bye event and its channel closes.
// The processor keeps answering one-shot queries; new Subscribe calls
// return dead subscriptions. Safe to call more than once.
func (p *Processor) CloseSubscriptions() { p.subs.Close() }

// newProcessor wires a processor around a built shard set, including
// the standing-query registry (its workers are idle until the first
// Subscribe).
func newProcessor(net *Network, set *shard.Set) *Processor {
	return &Processor{net: net, set: set, subs: sub.NewRegistry(runtime.GOMAXPROCS(0))}
}

// evalStanding runs one standing-query evaluation against the current
// snapshot. It answers through the exact same path as Run — same spec,
// same single-item group — so the bytes match a fresh one-shot query
// at the same version and seed; it additionally exports the influence
// region for the write-path touch test.
func (p *Processor) evalStanding(req Request) sub.Eval {
	snap := p.set.Snapshot()
	resp, inf := runStanding(snap, req)
	ev := sub.Eval{
		Version:     snap.Version,
		Payload:     resp,
		Fingerprint: fingerprintResponse(resp),
	}
	if resp.Err == nil {
		ev.Influencers = inf.IDs
		ev.Region = &influenceRegion{q: req.Query, ts: req.Ts, te: req.Te, bound: inf.PruneDist}
	}
	return ev
}

// runStanding is runOne, additionally reporting the influence region.
// The answer goes through the identical RunShared group the one-shot
// path uses, preserving byte-identical results per (snapshot, seed).
func runStanding(snap *shard.Snap, req Request) (resp Response, inf shard.Influence) {
	defer func() {
		if r := recover(); r != nil {
			resp = Response{Version: versionOf(snap), Err: fmt.Errorf("pnn: standing query panicked: %v", r)}
			inf = shard.Influence{}
		}
	}()
	k, op, err := normalizeRequest(req)
	if err != nil {
		return Response{Version: versionOf(snap), Err: err}, shard.Influence{}
	}
	spec := shard.GroupSpec{
		Q: req.Query, Ts: req.Ts, Te: req.Te, K: k, Seed: req.Seed, Conf: req.Confidence,
	}
	answers, raw, inf, err := snap.RunSharedInfluence(spec, []shard.GroupItem{{Op: op, Tau: req.Tau}})
	if err != nil {
		return Response{Version: versionOf(snap), Err: err}, inf
	}
	a := answers[0]
	resp.Err = a.Err
	if a.Err == nil {
		switch op {
		case shard.OpCNN:
			ivs := make([]IntervalResult, len(a.Intervals))
			for i, r := range a.Intervals {
				ivs[i] = IntervalResult{ObjectID: r.ID, Times: r.Times, Prob: r.Prob}
			}
			resp.Intervals = ivs
		default:
			resp.Results = convertResults(a.Results)
		}
	}
	resp.Stats = convStats(raw)
	resp.Version = versionOf(snap)
	return resp, inf
}

// notifySubscriptions classifies one published write for the standing
// queries: the touch predicate resolves the written object against the
// snapshot that write produced (never a later one), so the test runs
// on exactly the rectangles the published version serves.
func (p *Processor) notifySubscriptions(snap *shard.Snap) {
	id := snap.ChangedID
	toucher := snap.Toucher(id)
	p.subs.NotifyWrite(id, func(region any) bool {
		r, ok := region.(*influenceRegion)
		if !ok {
			return true
		}
		return toucher(r.q, r.ts, r.te, r.bound)
	})
}

// fingerprintResponse condenses a Response's answer — results,
// intervals, error text — for Delivery.OnChangeOnly comparison.
// Sampling statistics are deliberately excluded: an answer is
// "unchanged" when the reported objects and probabilities are, even if
// an adaptive policy reached its verdict a round earlier.
func fingerprintResponse(resp Response) uint64 {
	h := fnv.New64a()
	var tmp [8]byte
	put := func(u uint64) {
		binary.LittleEndian.PutUint64(tmp[:], u)
		h.Write(tmp[:])
	}
	put(uint64(len(resp.Results)))
	for _, r := range resp.Results {
		put(uint64(r.ObjectID))
		put(math.Float64bits(r.Prob))
	}
	put(uint64(len(resp.Intervals)))
	for _, iv := range resp.Intervals {
		put(uint64(iv.ObjectID))
		put(uint64(len(iv.Times)))
		for _, t := range iv.Times {
			put(uint64(t))
		}
		put(math.Float64bits(iv.Prob))
	}
	if resp.Err != nil {
		h.Write([]byte(resp.Err.Error()))
	}
	return h.Sum64()
}
