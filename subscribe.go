package pnn

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"time"

	"pnn/internal/shard"
	"pnn/internal/sub"
)

// Delivery configures how a subscription's events reach its consumer;
// see sub.Delivery for field semantics.
type Delivery = sub.Delivery

// SubEvent is one delivered subscription result. Payload, when the
// event is not a terminal Bye, is a Response evaluated at
// SubEvent.Version.
type SubEvent = sub.Event

// Subscription is one standing query; consume results from Events().
type Subscription = sub.Subscription

// SubscriptionInfo describes one registered subscription;
// Meta is the Request it was registered with.
type SubscriptionInfo = sub.Info

// SubscriptionStats are the registry's cumulative counters — most
// importantly Evaluations vs Notifies, the measure of how selective
// write-path invalidation is.
type SubscriptionStats = sub.Stats

// influenceRegion is a standing query's stored influence region: the
// query positions over the window plus the per-timestep pruning
// thresholds of its last evaluation. An updated object whose
// rectangles stay strictly outside bound[t-ts] at every window time
// cannot be among the k nearest at any t — and because it then cannot
// displace the threshold-defining objects either, the stored
// thresholds remain valid until the next evaluation refreshes them.
type influenceRegion struct {
	q      Query
	ts, te int
	bound  []float64
}

// DefaultSweepInterval is the default bounded delay of the
// subscription sweep scheduler: writes accumulate invalidations for at
// most this long before one grouped re-evaluation sweep drains them.
// Tune per processor with SetSweepInterval (0 restores per-write
// sweeps).
const DefaultSweepInterval = 2 * time.Millisecond

// Subscribe registers req as a standing query: it is evaluated once
// immediately (the first event on the returned subscription's channel,
// seq 1) and re-evaluated after every AddObject/Observe whose object
// touches the query's influence region. Every event carries a full
// Response plus the snapshot version it answers for, and the
// determinism contract of one-shot queries extends to standing ones: a
// delivered event at version V is byte-identical to Run(req') against
// the version-V snapshot, where req' is req with MinWorlds raised to
// the event's Stats.WorldFloor (the floor differs from req.MinWorlds
// only when adaptive-budget reuse raised it; without a Confidence
// policy req' is simply req).
//
// Compatible standing queries share work: subscriptions whose world-
// sharing group key (query positions over the window, interval, k,
// confidence policy, floor and seed — plus tau and semantics under an
// adaptive policy, whose shared stop point depends on them) coincides
// are re-evaluated as ONE shared-world group per sweep, so
// re-evaluation cost scales with distinct query shapes touched, not
// subscription count. Grouping never changes answer bytes: members
// with equal keys draw identical worlds and identical (deterministic)
// stop points whether evaluated alone or together.
//
// Evaluations run asynchronously on the registry's worker pool — the
// ingest path never samples — and per-subscription event queues are
// bounded (see Delivery.QueueCap): slow consumers lose oldest events,
// tracked by SubEvent.Dropped, and never block writers. The consumer
// must drain Events() until the terminal Bye event (sent by
// Unsubscribe and CloseSubscriptions), after which the channel closes.
func (p *Processor) Subscribe(req Request, d Delivery) (*Subscription, error) {
	if _, _, err := normalizeRequest(req); err != nil {
		return nil, err
	}
	return p.subs.SubscribeKeyed(standingKey(req), func() sub.Eval { return p.evalStanding(req) }, d, req), nil
}

// standingKey is the compatibility-group key of a standing request: the
// world-sharing groupKey plus the seed (standing queries draw from
// their own request seed, so equal shapes with different seeds draw
// different worlds and must not group). Under an enabled Confidence
// policy the shared early-stop point additionally depends on every
// member's (semantics, tau) — the group stops only when all members'
// estimates separate — so adaptive requests group only with identical
// (semantics, tau): then the duplicate bounds are no-ops and the
// grouped stop point equals each member's solo stop point exactly.
// Invalid requests key to "" (never grouped).
func standingKey(req Request) string {
	k, op, err := normalizeRequest(req)
	if err != nil {
		return ""
	}
	buf := []byte(groupKey(req.Query, req.Ts, req.Te, k, req.Confidence, req.MinWorlds))
	var tmp [8]byte
	put := func(u uint64) {
		binary.LittleEndian.PutUint64(tmp[:], u)
		buf = append(buf, tmp[:]...)
	}
	put(uint64(req.Seed))
	if req.Confidence.Enabled() {
		put(uint64(op))
		put(math.Float64bits(req.Tau))
	}
	return string(buf)
}

// Unsubscribe removes a standing query; its consumer receives a
// terminal Bye event and the channel closes. It reports whether the ID
// was registered.
func (p *Processor) Unsubscribe(id int64) bool { return p.subs.Unsubscribe(id) }

// Subscription returns the standing query with the given ID, if
// registered.
func (p *Processor) Subscription(id int64) (*Subscription, bool) { return p.subs.Get(id) }

// Subscriptions describes every registered standing query, ascending
// by ID.
func (p *Processor) Subscriptions() []SubscriptionInfo { return p.subs.List() }

// NumSubscriptions returns the number of registered standing queries.
func (p *Processor) NumSubscriptions() int { return p.subs.Len() }

// SubscriptionStats returns the registry's cumulative counters.
func (p *Processor) SubscriptionStats() SubscriptionStats { return p.subs.Stats() }

// WaitSubscriptionsIdle blocks until every pending re-evaluation has
// drained (or the timeout elapses), reporting whether quiescence was
// reached. After a successful wait, every subscription has evaluated
// the newest snapshot its latest relevant write published.
func (p *Processor) WaitSubscriptionsIdle(timeout time.Duration) bool {
	return p.subs.WaitIdle(timeout)
}

// CloseSubscriptions shuts the subscription subsystem down: every
// standing query receives a terminal Bye event and its channel closes.
// The processor keeps answering one-shot queries; new Subscribe calls
// return dead subscriptions. Safe to call more than once.
func (p *Processor) CloseSubscriptions() { p.subs.Close() }

// SetSweepInterval tunes the bounded delay of the subscription sweep
// scheduler (default DefaultSweepInterval): longer intervals coalesce
// more writes per grouped re-evaluation sweep at the cost of event
// latency; 0 sweeps on every write.
func (p *Processor) SetSweepInterval(d time.Duration) { p.subs.SetSweepInterval(d) }

// SetSubscriptionGrouping toggles grouped re-evaluation of compatible
// standing queries (default on). Off, every sweep re-evaluates touched
// subscriptions one by one — the baseline the fanout benchmark
// measures grouping against. Answer bytes are identical either way.
func (p *Processor) SetSubscriptionGrouping(enabled bool) { p.subs.SetGrouping(enabled) }

// newProcessor wires a processor around a built shard set, including
// the standing-query registry (its workers are idle until the first
// Subscribe).
func newProcessor(net *Network, set *shard.Set) *Processor {
	p := &Processor{net: net, set: set}
	p.subs = sub.New(sub.Options{
		Workers:       runtime.GOMAXPROCS(0),
		GroupEval:     p.evalStandingGroup,
		SweepInterval: DefaultSweepInterval,
	})
	return p
}

// standingState is a compatibility group's carry-over between
// re-evaluations: the adaptive stop point (worlds drawn) its previous
// evaluation proved sufficient. The next evaluation starts its
// early-stop floor there — a query whose difficulty did not change
// decides in one round instead of re-escalating from the first.
type standingState struct {
	worlds int
}

// evalStanding runs one standing-query evaluation against the current
// snapshot without group-state reuse — the fallback path when the
// registry has no grouping hook.
func (p *Processor) evalStanding(req Request) sub.Eval {
	evals, _ := runStandingGroup(p.set.Snapshot(), []Request{req}, nil)
	return evals[0]
}

// evalStandingGroup is the registry's GroupEval hook: it re-evaluates
// every member of one compatibility group as a single shared-world
// group against the current snapshot, threading the group's adaptive
// state through.
func (p *Processor) evalStandingGroup(_ string, metas []any, state any) ([]sub.Eval, any) {
	reqs := make([]Request, len(metas))
	for i, m := range metas {
		reqs[i], _ = m.(Request)
	}
	return runStandingGroup(p.set.Snapshot(), reqs, state)
}

// runStandingGroup answers every member of one compatible standing
// group over ONE shared-world evaluation — same spec, same RunShared
// path as the one-shot — so each member's bytes match a fresh one-shot
// at the same version, seed and floor; it additionally exports the
// influence region for the write-path touch test and the adaptive stop
// point for budget reuse. All members share the spec (their
// compatibility key pins query, window, k, seed, policy and floor; tau
// and semantics too under an adaptive policy), so member i differs
// only in its GroupItem.
func runStandingGroup(snap *shard.Snap, reqs []Request, state any) (evals []sub.Eval, newState any) {
	newState = state
	evals = make([]sub.Eval, len(reqs))
	fail := func(err error) {
		for i := range evals {
			resp := Response{Version: versionOf(snap), Err: err}
			evals[i] = sub.Eval{Version: snap.Version, Payload: resp, Fingerprint: fingerprintResponse(resp)}
		}
	}
	defer func() {
		if r := recover(); r != nil {
			fail(fmt.Errorf("pnn: standing query panicked: %v", r))
		}
	}()
	k, _, err := normalizeRequest(reqs[0])
	if err != nil {
		fail(err)
		return evals, newState
	}
	spec := shard.GroupSpec{
		Q: reqs[0].Query, Ts: reqs[0].Ts, Te: reqs[0].Te, K: k,
		Seed: reqs[0].Seed, Conf: reqs[0].Confidence, MinWorlds: reqs[0].MinWorlds,
	}
	items := make([]shard.GroupItem, len(reqs))
	for i, req := range reqs {
		_, op, err := normalizeRequest(req)
		if err != nil {
			fail(err)
			return evals, newState
		}
		items[i] = shard.GroupItem{Op: op, Tau: req.Tau}
	}
	reused := false
	if st, ok := state.(*standingState); ok && spec.Conf.Enabled() && st.worlds > spec.MinWorlds {
		spec.MinWorlds = st.worlds
		reused = true
	}
	answers, raw, inf, err := snap.RunSharedInfluence(spec, items)
	if err != nil {
		fail(err)
		return evals, newState
	}
	if spec.Conf.Enabled() && raw.Worlds > 0 {
		newState = &standingState{worlds: raw.Worlds}
	}
	stats := convStats(raw)
	stats.GroupSize = len(reqs)
	stats.BudgetReused = reused
	if spec.Conf.Enabled() {
		stats.WorldFloor = spec.MinWorlds
	}
	region := &influenceRegion{q: spec.Q, ts: spec.Ts, te: spec.Te, bound: inf.PruneDist}
	vi := versionOf(snap)
	for i, a := range answers {
		resp := Response{Stats: stats, Version: vi, Err: a.Err}
		if a.Err == nil {
			switch items[i].Op {
			case shard.OpCNN:
				ivs := make([]IntervalResult, len(a.Intervals))
				for j, r := range a.Intervals {
					ivs[j] = IntervalResult{ObjectID: r.ID, Times: r.Times, Prob: r.Prob}
				}
				resp.Intervals = ivs
			default:
				resp.Results = convertResults(a.Results)
			}
		}
		ev := sub.Eval{
			Version:      snap.Version,
			Payload:      resp,
			Fingerprint:  fingerprintResponse(resp),
			BudgetReused: reused,
		}
		if a.Err == nil {
			ev.Influencers = inf.IDs
			ev.Region = region
		}
		evals[i] = ev
	}
	return evals, newState
}

// notifySubscriptions classifies one published write for the standing
// queries: the touch predicate resolves the written object against the
// snapshot that write produced (never a later one), so the test runs
// on exactly the rectangles the published version serves.
func (p *Processor) notifySubscriptions(snap *shard.Snap) {
	id := snap.ChangedID
	toucher := snap.Toucher(id)
	p.subs.NotifyWrite(id, func(region any) bool {
		r, ok := region.(*influenceRegion)
		if !ok {
			return true
		}
		return toucher(r.q, r.ts, r.te, r.bound)
	})
}

// fingerprintResponse condenses a Response's answer — results,
// intervals, error text — for Delivery.OnChangeOnly comparison.
// Sampling statistics are deliberately excluded: an answer is
// "unchanged" when the reported objects and probabilities are, even if
// an adaptive policy reached its verdict a round earlier.
func fingerprintResponse(resp Response) uint64 {
	h := fnv.New64a()
	var tmp [8]byte
	put := func(u uint64) {
		binary.LittleEndian.PutUint64(tmp[:], u)
		h.Write(tmp[:])
	}
	put(uint64(len(resp.Results)))
	for _, r := range resp.Results {
		put(uint64(r.ObjectID))
		put(math.Float64bits(r.Prob))
	}
	put(uint64(len(resp.Intervals)))
	for _, iv := range resp.Intervals {
		put(uint64(iv.ObjectID))
		put(uint64(len(iv.Times)))
		for _, t := range iv.Times {
			put(uint64(t))
		}
		put(math.Float64bits(iv.Prob))
	}
	if resp.Err != nil {
		h.Write([]byte(resp.Err.Error()))
	}
	return h.Sum64()
}
