package pnn

import (
	"hash/fnv"

	"pnn/internal/mcrand"
	"pnn/internal/query"
	"pnn/internal/shard"
	"pnn/internal/space"
	"pnn/internal/uncertain"
)

// VersionInfo identifies the snapshot state a response answered from.
// Vector holds one version per shard (ascending shard index; in cluster
// mode, the peers' vectors concatenated in peer order) and Max the
// composite version: 1 at build plus one per accepted write. Max is
// layout-independent — the same write sequence yields the same Max
// whatever the shard or peer count — while the vector's shape reveals
// the layout and lets a reader detect a torn gather (two sub-answers
// from different versions).
type VersionInfo struct {
	Vector []int64
	Max    int64
}

// versionOf snapshots the version identity every response carries.
func versionOf(snap *shard.Snap) VersionInfo {
	return VersionInfo{Vector: snap.ShardVersions(), Max: snap.Version}
}

// NormalizeRequest validates req exactly like the one-shot, batch and
// standing paths (same k defaulting, same error messages) and returns
// the shared-world group spec plus the request's member item. It is the
// entry point a cluster coordinator uses to turn an API request into
// the spec it scatters to peers; local paths keep their private helper.
func NormalizeRequest(req Request) (shard.GroupSpec, shard.GroupItem, error) {
	k, op, err := normalizeRequest(req)
	if err != nil {
		return shard.GroupSpec{}, shard.GroupItem{}, err
	}
	spec := shard.GroupSpec{
		Q: req.Query, Ts: req.Ts, Te: req.Te, K: k, Seed: req.Seed, Conf: req.Confidence,
		MinWorlds: req.MinWorlds,
	}
	return spec, shard.GroupItem{Op: op, Tau: req.Tau}, nil
}

// ShareGroup returns the world-sharing coalescing key of req and the
// group seed it draws under sharedSeed — byte-for-byte the key and seed
// RunBatchStats uses, so a coordinator batching over remote peers forms
// the same groups with the same worlds as a single process would.
func ShareGroup(sharedSeed int64, req Request) (key string, seed int64, err error) {
	k, _, err := normalizeRequest(req)
	if err != nil {
		return "", 0, err
	}
	key = groupKey(req.Query, req.Ts, req.Te, k, req.Confidence, req.MinWorlds)
	h := fnv.New64a()
	h.Write([]byte(key))
	return key, mcrand.SubSeed64(sharedSeed, h.Sum64()), nil
}

// ResponseFromAnswer converts one shard-level group answer plus its raw
// stats into a facade Response, mirroring the single-process conversion
// (including the per-response SamplerBuilds zeroing of grouped paths —
// the caller restores it for one-shot responses). Version is left for
// the caller, who knows the merged cluster view.
func ResponseFromAnswer(op shard.GroupOp, a shard.GroupAnswer, raw query.Stats) Response {
	resp := Response{Err: a.Err}
	if a.Err == nil {
		switch op {
		case shard.OpCNN:
			ivs := make([]IntervalResult, len(a.Intervals))
			for i, r := range a.Intervals {
				ivs[i] = IntervalResult{ObjectID: r.ID, Times: r.Times, Prob: r.Prob}
			}
			resp.Intervals = ivs
		default:
			resp.Results = convertResults(a.Results)
		}
	}
	resp.Stats = convStats(raw)
	resp.Stats.SamplerBuilds = 0
	return resp
}

// ShardSet exposes the processor's underlying shard set — the handle a
// peer's /internal RPC surface scatters from and a coordinator's ingest
// path writes through. It is an internal-package type: only code inside
// this module (the server and cluster layers) can do anything with it.
func (p *Processor) ShardSet() *shard.Set { return p.set }

// Space exposes the network's embedded state space, which the
// coordinator-side gather needs to compute distances without building
// an index of its own.
func (n *Network) Space() *space.Space { return n.sp }

// StandingKey exposes the compatibility-group key of a standing
// request (see Subscribe): requests with equal keys may be re-evaluated
// as one shared-world group with byte-identical per-member answers. A
// cluster coordinator uses it so its standing queries group exactly
// like a single process would. Invalid requests key to "".
func StandingKey(req Request) string { return standingKey(req) }

// DefaultSubscriptionSweepInterval re-exports the facade's default
// sweep-scheduler delay for the coordinator's configuration surface.
const DefaultSubscriptionSweepInterval = DefaultSweepInterval

// FingerprintResponse condenses a Response's answer — results,
// intervals, error text, excluding sampling statistics — for
// on-change-only subscription delivery. A cluster coordinator uses it
// so its standing queries suppress unchanged answers by exactly the
// same criterion a single process does.
func FingerprintResponse(resp Response) uint64 { return fingerprintResponse(resp) }

// Retain drops every registered object whose ID fails keep, in place.
// It is the peer-startup filter of cluster mode: each peer loads the
// shared dataset, then retains only the IDs it owns on the consistent-
// hash ring before building its index.
func (db *DB) Retain(keep func(id int) bool) {
	var ids []int
	var objs []*uncertain.Object
	byID := make(map[int]int)
	for i, o := range db.objs {
		if !keep(db.ids[i]) {
			continue
		}
		byID[o.ID] = len(objs)
		ids = append(ids, db.ids[i])
		objs = append(objs, o)
	}
	db.ids, db.objs, db.byID = ids, objs, byID
}
