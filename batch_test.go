package pnn

import (
	"math"
	"testing"
)

// batchDB builds a small grid database with a handful of objects moving
// through the center, plus the query used against it.
func batchDB(t *testing.T, samples int) (*Network, *Processor, Query) {
	t.Helper()
	net, err := NewGridNetwork(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDB(net)
	routes := [][2]Point{
		{{X: 0.1, Y: 0.1}, {X: 0.9, Y: 0.9}},
		{{X: 0.9, Y: 0.1}, {X: 0.1, Y: 0.9}},
		{{X: 0.1, Y: 0.5}, {X: 0.9, Y: 0.5}},
		{{X: 0.5, Y: 0.1}, {X: 0.5, Y: 0.9}},
	}
	for i, r := range routes {
		a, b := net.NearestState(r[0]), net.NearestState(r[1])
		obs := net.ObservationsAlong(a, b, 0, 2, 4)
		if obs == nil {
			t.Fatalf("no path for route %d", i)
		}
		if err := db.Add(100+i, obs); err != nil {
			t.Fatal(err)
		}
	}
	proc, err := db.Build(samples)
	if err != nil {
		t.Fatal(err)
	}
	return net, proc, AtPoint(Point{X: 0.5, Y: 0.5})
}

func sameResponses(t *testing.T, a, b []Response) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("response counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if (a[i].Err == nil) != (b[i].Err == nil) {
			t.Fatalf("response %d: error mismatch: %v vs %v", i, a[i].Err, b[i].Err)
		}
		if len(a[i].Results) != len(b[i].Results) || len(a[i].Intervals) != len(b[i].Intervals) {
			t.Fatalf("response %d: cardinality mismatch", i)
		}
		for j := range a[i].Results {
			x, y := a[i].Results[j], b[i].Results[j]
			if x.ObjectID != y.ObjectID || math.Abs(x.Prob-y.Prob) > 1e-12 {
				t.Errorf("response %d result %d: %+v vs %+v", i, j, x, y)
			}
		}
		for j := range a[i].Intervals {
			x, y := a[i].Intervals[j], b[i].Intervals[j]
			if x.ObjectID != y.ObjectID || math.Abs(x.Prob-y.Prob) > 1e-12 || len(x.Times) != len(y.Times) {
				t.Errorf("response %d interval %d: %+v vs %+v", i, j, x, y)
			}
		}
	}
}

// TestRunBatchDeterministicAcrossWorkers is the batch API's core promise:
// answers depend only on each request's seed, not on the worker count or
// scheduling.
func TestRunBatchDeterministicAcrossWorkers(t *testing.T) {
	_, proc1, q := batchDB(t, 400)
	_, proc4, _ := batchDB(t, 400)
	var reqs []Request
	for i := 0; i < 12; i++ {
		sem := []Semantics{ForAll, Exists, Continuous}[i%3]
		tau := 0.05
		if sem == Continuous {
			tau = 0.3 // keep the lattice small
		}
		reqs = append(reqs, Request{
			Semantics: sem, Query: q, Ts: 1, Te: 1 + i%5, Tau: tau, Seed: int64(i),
		})
	}
	serial := proc1.RunBatch(reqs, 1)
	parallel := proc4.RunBatch(reqs, 4)
	sameResponses(t, serial, parallel)
	for i, r := range serial {
		if r.Err != nil {
			t.Fatalf("request %d failed: %v", i, r.Err)
		}
	}
}

// TestRunBatchMatchesSingleQueries: a batch answer is exactly the answer
// the single-query facade gives for the same parameters and seed.
func TestRunBatchMatchesSingleQueries(t *testing.T) {
	_, proc, q := batchDB(t, 300)
	reqs := []Request{
		{Semantics: ForAll, Query: q, Ts: 1, Te: 6, Tau: 0.05, Seed: 42},
		{Semantics: Exists, Query: q, Ts: 1, Te: 6, K: 2, Tau: 0.05, Seed: 43},
		{Semantics: Continuous, Query: q, Ts: 1, Te: 4, Tau: 0.3, Seed: 44},
	}
	batch := proc.RunBatch(reqs, 2)

	_, single, _ := batchDB(t, 300)
	fa, _, err := single.ForAllNN(q, 1, 6, 0.05, 42)
	if err != nil {
		t.Fatal(err)
	}
	ex, _, err := single.ExistsKNN(q, 1, 6, 2, 0.05, 43)
	if err != nil {
		t.Fatal(err)
	}
	cn, _, err := single.ContinuousNN(q, 1, 4, 0.3, 44)
	if err != nil {
		t.Fatal(err)
	}
	want := []Response{{Results: fa}, {Results: ex}, {Intervals: cn}}
	sameResponses(t, batch, want)
}

// TestBatchWrappers checks the convenience wrappers seed request i with
// baseSeed+i.
func TestBatchWrappers(t *testing.T) {
	_, proc, q := batchDB(t, 200)
	qs := []Query{q, AtPoint(Point{X: 0.3, Y: 0.5}), AtPoint(Point{X: 0.7, Y: 0.3})}
	got := proc.BatchForAllNN(qs, 1, 5, 0.05, 7, 3)
	var reqs []Request
	for i, qq := range qs {
		reqs = append(reqs, Request{Semantics: ForAll, Query: qq, Ts: 1, Te: 5, Tau: 0.05, Seed: 7 + int64(i)})
	}
	sameResponses(t, got, proc.RunBatch(reqs, 1))

	gotEx := proc.BatchExistsNN(qs, 1, 5, 0.05, 7, 0)
	for i := range reqs {
		reqs[i].Semantics = Exists
	}
	sameResponses(t, gotEx, proc.RunBatch(reqs, 2))
}

// TestBatchWarmCache: the first batch adapts each influencer once; an
// identical batch on the warm processor adapts nothing.
func TestBatchWarmCache(t *testing.T) {
	_, proc, q := batchDB(t, 200)
	reqs := []Request{
		{Semantics: ForAll, Query: q, Ts: 1, Te: 6, Tau: 0, Seed: 1},
		{Semantics: ForAll, Query: q, Ts: 1, Te: 6, Tau: 0, Seed: 2},
		{Semantics: Exists, Query: q, Ts: 1, Te: 6, Tau: 0, Seed: 3},
	}
	cold, coldStats := proc.RunBatchStats(reqs, BatchOptions{Workers: 2})
	for _, r := range cold {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		// Build attribution to single requests is scheduling-dependent,
		// so the per-response field is always 0; the batch-level sum is
		// the deterministic account.
		if r.Stats.SamplerBuilds != 0 {
			t.Errorf("per-response SamplerBuilds = %d, want 0 (batch-level accounting)", r.Stats.SamplerBuilds)
		}
	}
	cs := proc.CacheStats()
	if int64(coldStats.SamplerBuilds) != cs.Builds {
		t.Errorf("batch reports %d builds, cache reports %d", coldStats.SamplerBuilds, cs.Builds)
	}
	if coldStats.SamplerBuilds == 0 {
		t.Fatal("cold batch should have adapted models")
	}
	if coldStats.Requests != len(reqs) {
		t.Errorf("BatchStats.Requests = %d, want %d", coldStats.Requests, len(reqs))
	}
	warm, warmStats := proc.RunBatchStats(reqs, BatchOptions{Workers: 2})
	if warmStats.SamplerBuilds != 0 {
		t.Errorf("warm batch rebuilt %d samplers", warmStats.SamplerBuilds)
	}
	if after := proc.CacheStats(); after.Builds != cs.Builds {
		t.Errorf("warm batch grew Builds from %d to %d", cs.Builds, after.Builds)
	}
	sameResponses(t, cold, warm)
}

// TestRunBatchValidation: malformed requests fail per-response without
// disturbing their neighbors.
func TestRunBatchValidation(t *testing.T) {
	_, proc, q := batchDB(t, 100)
	resps := proc.RunBatch([]Request{
		{Semantics: "nope", Query: q, Ts: 1, Te: 5},
		{Semantics: ForAll, Query: q, Ts: 1, Te: 5, K: -1},
		{Semantics: ForAll, Query: q, Ts: 5, Te: 1},
		{Semantics: Continuous, Query: q, Ts: 1, Te: 3}, // tau 0 invalid for PCNN
		{Semantics: Exists, Query: q, Ts: 1, Te: 5, Tau: 0.05, Seed: 8},
	}, 2)
	for i := 0; i < 4; i++ {
		if resps[i].Err == nil {
			t.Errorf("request %d should have failed", i)
		}
	}
	if resps[4].Err != nil {
		t.Errorf("valid request failed: %v", resps[4].Err)
	}
	if len(proc.RunBatch(nil, 4)) != 0 {
		t.Error("empty batch should return empty responses")
	}
}
