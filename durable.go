// Durable mode for the facade: BuildShardedDurable roots the shard
// set's write-ahead log and snapshot spills in a data directory, so a
// restarted process recovers the exact versioned snapshot — composite
// version vector included — the crashed one last acknowledged, and
// answers queries byte-identically at the same seed. See
// internal/shard/durable.go for the on-disk contract.
package pnn

import (
	"fmt"
	"time"

	"pnn/internal/shard"
	"pnn/internal/uncertain"
)

// Durability configures a durable build. The zero value is invalid: a
// data directory is required.
type Durability struct {
	// Dir is the data directory (created if missing). A fresh directory
	// seeds from the DB; a populated one recovers the persisted state
	// and ignores the seed objects — the log, not the generator, is the
	// source of truth after the first boot.
	Dir string
	// Fsync makes every write fsync its WAL record before being
	// acknowledged: durable across machine crashes and power loss, at
	// the price of one disk flush per write. Without it the OS page
	// cache absorbs appends — process crashes still lose nothing,
	// power loss may drop the last few acknowledged writes.
	Fsync bool
	// SpillInterval is how often a background loop snapshots dirty
	// shards so WAL replay (and so restart time) stays bounded. Zero
	// disables periodic spills; the WAL alone still recovers everything.
	SpillInterval time.Duration
}

// RecoveryInfo reports what a durable build found on disk.
type RecoveryInfo struct {
	// Recovered is false when the data directory was fresh and the
	// store was seeded from the DB.
	Recovered bool
	// Version is the composite snapshot version after recovery.
	Version int64
	// SpillVersions is the per-shard spill version recovery started
	// from.
	SpillVersions []int64
	// ReplayedRecords counts WAL records applied over the spills.
	ReplayedRecords int
	// TornSegments/TornBytes count truncated crash-damaged WAL tails
	// (writes that were never acknowledged).
	TornSegments int
	TornBytes    int64
	// SpillFallbacks counts corrupt spills skipped for an older one.
	SpillFallbacks int
}

// DurabilityStatus is the operator-facing durability health block.
type DurabilityStatus struct {
	Enabled bool
	Fsync   bool
	// SpillVersions is the newest on-disk spill per shard.
	SpillVersions []int64
	// WALBytesSinceSpill is how much log a restart right now would
	// replay, summed over shards.
	WALBytesSinceSpill int64
	ReplayedRecords    int
	TornBytes          int64
}

// Mode renders the status as the compact string /healthz and
// /v1/cluster report: "volatile", "wal", or "wal+fsync".
func (st DurabilityStatus) Mode() string {
	switch {
	case !st.Enabled:
		return "volatile"
	case st.Fsync:
		return "wal+fsync"
	default:
		return "wal"
	}
}

// BuildShardedDurable is BuildSharded rooted in a data directory: every
// accepted write is logged before it is acknowledged, and periodic
// spills bound replay time. On a fresh directory it indexes the DB's
// objects; on a populated one it recovers the persisted snapshot chain
// instead. Close the returned processor to stop the spill loop and
// flush the logs.
func (db *DB) BuildShardedDurable(samples, shards int, d Durability) (*Processor, *RecoveryInfo, error) {
	set, _, rec, err := shard.Open(db.net.sp, db.objs, samples, shards, false, db.durOpts(d))
	if err != nil {
		return nil, nil, err
	}
	return newProcessor(db.net, set), facadeRecovery(rec), nil
}

// BuildLenientShardedDurable is BuildShardedDurable with BuildLenient's
// tolerance for contradicting seed objects. The returned skipped IDs
// are only meaningful on a fresh data directory (recovery never reads
// the seed).
func (db *DB) BuildLenientShardedDurable(samples, shards int, d Durability) (*Processor, []int, *RecoveryInfo, error) {
	set, skippedIdx, rec, err := shard.Open(db.net.sp, db.objs, samples, shards, true, db.durOpts(d))
	if err != nil {
		return nil, nil, nil, err
	}
	var skippedIDs []int
	for _, i := range skippedIdx {
		skippedIDs = append(skippedIDs, db.ids[i])
	}
	return newProcessor(db.net, set), skippedIDs, facadeRecovery(rec), nil
}

// durOpts lowers the facade options to the shard layer, closing over
// the network's motion model so spilled and logged observation lists
// rebuild into the exact objects the original writes produced
// (uncertain.NewObject sorts and validates identically both times).
func (db *DB) durOpts(d Durability) shard.Durability {
	return shard.Durability{
		Dir:           d.Dir,
		Fsync:         d.Fsync,
		SpillInterval: d.SpillInterval,
		Rebuild: func(id int, obs []uncertain.Observation) (*uncertain.Object, error) {
			return uncertain.NewObject(id, obs, db.net.chain)
		},
	}
}

func facadeRecovery(rec *shard.RecoveryInfo) *RecoveryInfo {
	if rec == nil {
		return nil
	}
	return &RecoveryInfo{
		Recovered:       rec.Recovered,
		Version:         rec.Version,
		SpillVersions:   rec.SpillVersions,
		ReplayedRecords: rec.ReplayedRecords,
		TornSegments:    rec.TornSegments,
		TornBytes:       rec.TornBytes,
		SpillFallbacks:  rec.SpillFallbacks,
	}
}

// DurabilityStatus reports the current durability health block;
// Enabled is false for a volatile processor.
func (p *Processor) DurabilityStatus() DurabilityStatus {
	st := p.set.DurabilityStatus()
	return DurabilityStatus{
		Enabled:            st.Enabled,
		Fsync:              st.Fsync,
		SpillVersions:      st.SpillVersions,
		WALBytesSinceSpill: st.WALBytesSinceSpill,
		ReplayedRecords:    st.ReplayedRecords,
		TornBytes:          st.TornBytes,
	}
}

// SpillNow forces an immediate snapshot spill (and WAL rotation) of
// every shard with pending log bytes. It errors on a volatile
// processor.
func (p *Processor) SpillNow() error { return p.set.SpillNow() }

// Close stops the background spill loop and flushes and closes the WAL
// segments. Idempotent; closing a volatile processor is a no-op.
// Further writes on a closed durable processor are refused.
func (p *Processor) Close() error {
	if err := p.set.Close(); err != nil {
		return fmt.Errorf("pnn: closing durable store: %w", err)
	}
	return nil
}
