package pnn

import (
	"encoding/json"
	"testing"
	"time"
)

// TestSubscriptionGroupMatchesOneShot extends the subscription
// determinism contract to the grouped fanout path: compatible standing
// queries — same shape and seed, conf-disabled queries differing only
// in tau, and identical confidence-adaptive queries — are re-evaluated
// as ONE shared-world group per sweep, and every delivered event is
// still byte-identical (answers AND samples_drawn) to a fresh one-shot
// at the same version, seed and world floor, whatever the shard and
// worker counts.
func TestSubscriptionGroupMatchesOneShot(t *testing.T) {
	net, db, err := SyntheticDataset(500, 8, 60, 80, 100, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	qs := RandomQueryState(net, 3)
	q := AtState(net, qs)
	conf := Confidence{Eps: 0.02, MaxSamples: 8000}
	// Three compatibility groups: exists/tau-mix and forall/tau-mix
	// (conf disabled, so tau stays out of the key), plus four identical
	// confidence-adaptive members (conf stratifies the key by op+tau).
	cases := []Request{
		{Semantics: Exists, Query: q, Ts: 40, Te: 47, Tau: 0.1, Seed: 7},
		{Semantics: Exists, Query: q, Ts: 40, Te: 47, Tau: 0.3, Seed: 7},
		{Semantics: Exists, Query: q, Ts: 40, Te: 47, Tau: 0.5, Seed: 7},
		{Semantics: Exists, Query: q, Ts: 40, Te: 47, Tau: 0.7, Seed: 7},
		{Semantics: ForAll, Query: q, Ts: 40, Te: 47, Tau: 0.2, Seed: 7},
		{Semantics: ForAll, Query: q, Ts: 40, Te: 47, Tau: 0.4, Seed: 7},
		{Semantics: Exists, Query: q, Ts: 40, Te: 47, Tau: 0.3, Seed: 5, Confidence: conf},
		{Semantics: Exists, Query: q, Ts: 40, Te: 47, Tau: 0.3, Seed: 5, Confidence: conf},
		{Semantics: Exists, Query: q, Ts: 40, Te: 47, Tau: 0.3, Seed: 5, Confidence: conf},
		{Semantics: Exists, Query: q, Ts: 40, Te: 47, Tau: 0.3, Seed: 5, Confidence: conf},
	}
	nextID := 20000
	for _, shards := range []int{1, 2, 4} {
		for _, workers := range []int{1, 4} {
			proc, err := db.BuildSharded(2000, shards)
			if err != nil {
				t.Fatal(err)
			}
			proc.SetParallelism(workers)
			subs := make([]*Subscription, len(cases))
			for i, req := range cases {
				if subs[i], err = proc.Subscribe(req, Delivery{QueueCap: 64}); err != nil {
					t.Fatal(err)
				}
			}
			check := func(stage string, wantGrouped bool) {
				t.Helper()
				for i, s := range subs {
					e := drainLatest(t, s)
					got := e.Payload.(Response)
					if got.Err != nil {
						t.Fatalf("shards=%d workers=%d %s case %d: %v", shards, workers, stage, i, got.Err)
					}
					if wantGrouped && got.Stats.GroupSize < 2 {
						t.Errorf("shards=%d workers=%d %s case %d: group size %d, want >= 2 (compatible members must share one pass)",
							shards, workers, stage, i, got.Stats.GroupSize)
					}
					oneShot := cases[i]
					oneShot.MinWorlds = got.Stats.WorldFloor
					want := proc.Run(oneShot)
					if want.Err != nil {
						t.Fatalf("%s case %d one-shot: %v", stage, i, want.Err)
					}
					gb, _ := json.Marshal(struct {
						R []Result
						I []IntervalResult
					}{got.Results, got.Intervals})
					wb, _ := json.Marshal(struct {
						R []Result
						I []IntervalResult
					}{want.Results, want.Intervals})
					if string(gb) != string(wb) {
						t.Errorf("shards=%d workers=%d %s case %d answers diverged:\nevent    %s\none-shot %s",
							shards, workers, stage, i, gb, wb)
					}
					// Sampling stats are per-member exact for adaptive
					// members (the key stratifies by op+tau, so the
					// shared stop point is the solo stop point) and for
					// any member whose solo run samples at all. The one
					// exception mirrors batch shared-world semantics: a
					// degenerate member (zero candidates, conf off)
					// alone skips sampling, but grouped it reports the
					// group's shared draw.
					if cases[i].Confidence.Enabled() || want.Stats.Worlds > 0 {
						if got.Stats.Worlds != want.Stats.Worlds ||
							got.Stats.ErrorBound != want.Stats.ErrorBound ||
							got.Stats.EarlyStopped != want.Stats.EarlyStopped {
							t.Errorf("shards=%d workers=%d %s case %d sampling diverged: event %+v, one-shot %+v",
								shards, workers, stage, i, got.Stats, want.Stats)
						}
					}
				}
			}
			// Initial evaluations run per-subscription at registration:
			// no grouping yet, but the bytes must already match.
			check("initial", false)

			base := proc.SubscriptionStats()
			id := nextID
			nextID++
			if _, err := proc.AddObject(id, []Observation{{T: 42, State: qs}}); err != nil {
				t.Fatal(err)
			}
			if !proc.WaitSubscriptionsIdle(10 * time.Second) {
				t.Fatal("subscriptions did not quiesce after AddObject")
			}
			check("after-add", true)

			if _, err := proc.Observe(id, Observation{T: 43, State: qs}); err != nil {
				t.Fatal(err)
			}
			if !proc.WaitSubscriptionsIdle(10 * time.Second) {
				t.Fatal("subscriptions did not quiesce after Observe")
			}
			check("after-observe", true)

			st := proc.SubscriptionStats()
			if st.Sweeps <= base.Sweeps {
				t.Errorf("shards=%d workers=%d: no sweeps drained (%d -> %d)", shards, workers, base.Sweeps, st.Sweeps)
			}
			if st.Groups <= base.Groups {
				t.Errorf("shards=%d workers=%d: no grouped passes ran (%d -> %d)", shards, workers, base.Groups, st.Groups)
			}
			// 10 subscriptions over 3 compatibility groups: each sweep
			// runs 3 passes, not 10 evaluations.
			if evals, affected := st.Evaluations-base.Evaluations, st.Affected-base.Affected; evals*3 > affected {
				t.Errorf("shards=%d workers=%d: %d evaluation passes for %d affected subscriptions; grouping saved less than 3x",
					shards, workers, evals, affected)
			}
			proc.CloseSubscriptions()
		}
	}
}

// TestSubscriptionGroupingReducesEvaluations is the fanout perf
// contract at the unit level: with 200 standing queries over 10 shapes,
// a touching write costs ~10 grouped passes; with grouping disabled the
// same write costs 200. The grouped path must save at least 3x.
func TestSubscriptionGroupingReducesEvaluations(t *testing.T) {
	net, db, err := SyntheticDataset(400, 8, 60, 60, 100, 5, 13)
	if err != nil {
		t.Fatal(err)
	}
	qs := RandomQueryState(net, 3)
	q := AtState(net, qs)
	proc, err := db.Build(500)
	if err != nil {
		t.Fatal(err)
	}
	const shapes, perShape = 10, 20
	for s := 0; s < shapes; s++ {
		for m := 0; m < perShape; m++ {
			req := Request{
				Semantics: Exists, Query: q, Ts: 40, Te: 47,
				Tau: 0.04 * float64(m+1), Seed: int64(s + 1),
			}
			if _, err := proc.Subscribe(req, Delivery{QueueCap: 2}); err != nil {
				t.Fatal(err)
			}
		}
	}
	measure := func(id int) int64 {
		t.Helper()
		base := proc.SubscriptionStats()
		if _, err := proc.AddObject(id, []Observation{{T: 42, State: qs}}); err != nil {
			t.Fatal(err)
		}
		if !proc.WaitSubscriptionsIdle(30 * time.Second) {
			t.Fatal("subscriptions did not quiesce")
		}
		return proc.SubscriptionStats().Evaluations - base.Evaluations
	}
	grouped := measure(30000)
	proc.SetSubscriptionGrouping(false)
	ungrouped := measure(30001)
	if grouped*3 > ungrouped {
		t.Fatalf("grouped write cost %d evaluation passes, ungrouped %d; want >= 3x savings", grouped, ungrouped)
	}
	if ungrouped < shapes*perShape {
		t.Errorf("ungrouped write cost %d passes, want >= %d (every touched subscription evaluates alone)",
			ungrouped, shapes*perShape)
	}
	proc.CloseSubscriptions()
}
