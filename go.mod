module pnn

go 1.22
