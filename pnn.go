// Package pnn answers probabilistic nearest-neighbor queries over uncertain
// moving-object trajectories, implementing Niedermayer et al.,
// "Probabilistic Nearest Neighbor Queries on Uncertain Moving Object
// Trajectories", PVLDB 7(3), 2013.
//
// An uncertain trajectory is a moving object observed only at a few
// timestamps; in between, its position is a random variable governed by a
// Markov chain over a discrete state space (a road network, an indoor
// floor plan, a grid). The package offers three query semantics against a
// certain query point or trajectory q and a time interval T:
//
//   - ForAllNN  (P∀NNQ): objects likely to be the nearest neighbor of q at
//     EVERY time in T — e.g. taxis that watched an entire incident.
//   - ExistsNN  (P∃NNQ): objects likely to be the NN at SOME time in T —
//     e.g. anyone who may have passed closest at least once.
//   - ContinuousNN (PCNNQ): per object, the maximal timestamp sets during
//     which it stays the likely NN — e.g. to group witnesses by phase.
//
// Queries are answered by Bayesian trajectory sampling: each object's
// a-priori chain is conditioned on all of its observations with a
// forward-backward sweep, possible worlds are drawn from the adapted
// model (every sample provably passes through every observation), and
// UST-tree pruning keeps the candidate sets small. Estimates carry
// Hoeffding error bounds; see SampleBound.
//
// # Quick start
//
//	net, _ := pnn.NewSyntheticNetwork(10000, 8, 42)
//	db := pnn.NewDB(net)
//	db.Add(1, []pnn.Observation{{T: 0, State: 17}, {T: 20, State: 93}})
//	db.Add(2, []pnn.Observation{{T: 0, State: 55}, {T: 20, State: 60}})
//	proc, _ := db.Build(10000)
//	res, _, _ := proc.ForAllNN(pnn.AtState(net, 17), 5, 15, 0.3, 7)
//
// See examples/ for complete programs.
package pnn

import (
	"fmt"
	"io"
	"math/rand"

	"pnn/internal/datagen"
	"pnn/internal/geo"
	"pnn/internal/markov"
	"pnn/internal/query"
	"pnn/internal/shard"
	"pnn/internal/space"
	"pnn/internal/store"
	"pnn/internal/sub"
	"pnn/internal/uncertain"
)

// Write-rejection sentinels, re-exported from the store so API layers
// can classify ingest failures with errors.Is instead of matching
// message strings.
var (
	// ErrDuplicateID rejects an AddObject whose ID is already indexed.
	ErrDuplicateID = store.ErrDuplicateID
	// ErrUnknownID rejects an Observe for an unindexed object ID.
	ErrUnknownID = store.ErrUnknownID
)

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Observation is one certain (time, state) measurement of an object.
type Observation struct {
	T     int
	State int
}

// Network is a discrete state space plus the default a-priori Markov chain
// objects move by: states embedded in the plane, connected into a motion
// graph, with transition probabilities inversely proportional to edge
// length plus a self-loop for idling.
type Network struct {
	sp    *space.Space
	chain markov.Chain
}

// NewSyntheticNetwork builds the paper's artificial network: n uniform
// states in the unit square, edges between states within the radius that
// yields an average branching factor b.
func NewSyntheticNetwork(n int, b float64, seed int64) (*Network, error) {
	sp, err := space.Synthetic(n, b, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	return wrapSpace(sp)
}

// NewGridNetwork builds a w×h four-connected grid, a natural model for
// indoor tracking (rooms, RFID reader cells).
func NewGridNetwork(w, h int) (*Network, error) {
	sp, err := space.Grid(w, h)
	if err != nil {
		return nil, err
	}
	return wrapSpace(sp)
}

func wrapSpace(sp *space.Space) (*Network, error) {
	chain, err := markov.NewHomogeneous(sp.TransitionMatrix(0.5))
	if err != nil {
		return nil, err
	}
	return &Network{sp: sp, chain: chain}, nil
}

// NumStates returns the number of discrete locations.
func (n *Network) NumStates() int { return n.sp.Len() }

// StatePoint returns the planar location of a state.
func (n *Network) StatePoint(s int) Point {
	p := n.sp.Point(s)
	return Point{p.X, p.Y}
}

// NearestState returns the state closest to p.
func (n *Network) NearestState(p Point) int {
	return n.sp.NearestState(geo.Point{X: p.X, Y: p.Y})
}

// ShortestPath returns a minimum-length sequence of adjacent states from
// one state to another (inclusive), or nil if unreachable. It is the
// easiest way to fabricate observation sequences that are guaranteed
// consistent with the motion model: an object observed along a path every
// k tics can always have travelled it.
func (n *Network) ShortestPath(from, to int) []int {
	return n.sp.ShortestPath(from, to)
}

// ObservationsAlong fabricates a consistent observation sequence: the
// object follows the shortest path from one state to another, starting at
// tic start, advancing one hop every ticsPerHop tics (>= 1), observed every
// obsEvery hops. It returns nil when no path exists.
func (n *Network) ObservationsAlong(from, to, start, ticsPerHop, obsEvery int) []Observation {
	if ticsPerHop < 1 {
		ticsPerHop = 1
	}
	if obsEvery < 1 {
		obsEvery = 1
	}
	path := n.sp.ShortestPath(from, to)
	if path == nil {
		return nil
	}
	var obs []Observation
	for i := 0; i < len(path); i += obsEvery {
		obs = append(obs, Observation{T: start + i*ticsPerHop, State: path[i]})
	}
	if last := len(path) - 1; obs[len(obs)-1].State != path[last] || obs[len(obs)-1].T != start+last*ticsPerHop {
		if obs[len(obs)-1].T != start+last*ticsPerHop {
			obs = append(obs, Observation{T: start + last*ticsPerHop, State: path[last]})
		}
	}
	return obs
}

// DB collects uncertain objects before indexing. The zero value is not
// usable; create one with NewDB.
type DB struct {
	net  *Network
	ids  []int
	objs []*uncertain.Object
	byID map[int]int
}

// NewDB returns an empty database over the given network.
func NewDB(net *Network) *DB {
	return &DB{net: net, byID: make(map[int]int)}
}

// Add registers an object by caller-chosen ID with its observations, which
// must be non-contradicting under the network's motion model (checked at
// Build time). Duplicate IDs are rejected.
func (db *DB) Add(id int, obs []Observation) error {
	if _, dup := db.byID[id]; dup {
		return fmt.Errorf("pnn: duplicate object id %d", id)
	}
	conv := make([]uncertain.Observation, len(obs))
	for i, ob := range obs {
		conv[i] = uncertain.Observation{T: ob.T, State: ob.State}
	}
	o, err := uncertain.NewObject(id, conv, db.net.chain)
	if err != nil {
		return err
	}
	db.byID[id] = len(db.objs)
	db.ids = append(db.ids, id)
	db.objs = append(db.objs, o)
	return nil
}

// Len returns the number of registered objects.
func (db *DB) Len() int { return len(db.objs) }

// Build validates all objects, constructs the UST-tree index and returns a
// query processor drawing `samples` possible worlds per query (10 000 is
// the paper's default; see SampleBound for the accuracy this buys).
//
// Build requires the caller-chosen IDs passed to Add to match the object
// IDs, which Add guarantees; the returned processor answers queries and
// accepts live updates (AddObject, Observe). It is BuildSharded with a
// single shard.
func (db *DB) Build(samples int) (*Processor, error) {
	return db.BuildSharded(samples, 1)
}

// BuildSharded is Build with the index hash-partitioned by object ID
// across `shards` independent (UST-tree, engine) snapshot stores.
// Queries scatter across all shards and gather merged answers; writes
// route to exactly one shard, so the copy-on-write clone behind every
// published version touches only 1/shards of the index. Answers are
// deterministic in the request seed and independent of the shard count:
// every object's possible worlds are drawn from a sub-seed derived from
// the seed and the object's ID alone. shards < 1 is treated as 1.
func (db *DB) BuildSharded(samples, shards int) (*Processor, error) {
	set, err := shard.New(db.net.sp, db.objs, samples, shards)
	if err != nil {
		return nil, err
	}
	return newProcessor(db.net, set), nil
}

// BuildLenient is Build for noisy data: objects whose observations
// contradict the motion model (e.g. GPS glitches teleporting a vehicle)
// are dropped rather than failing the build. It returns the IDs of the
// skipped objects.
func (db *DB) BuildLenient(samples int) (*Processor, []int, error) {
	return db.BuildLenientSharded(samples, 1)
}

// BuildLenientSharded is BuildSharded with BuildLenient's tolerance for
// contradicting objects. It returns the IDs of the skipped objects.
func (db *DB) BuildLenientSharded(samples, shards int) (*Processor, []int, error) {
	set, skippedIdx, err := shard.NewLenient(db.net.sp, db.objs, samples, shards)
	if err != nil {
		return nil, nil, err
	}
	var skippedIDs []int
	for _, i := range skippedIdx {
		skippedIDs = append(skippedIDs, db.ids[i])
	}
	return newProcessor(db.net, set), skippedIDs, nil
}

// Processor answers probabilistic NN queries and ingests live updates.
// It is safe for concurrent use: every query runs against the immutable
// composite snapshot (one frozen engine per shard) current when it
// started, while AddObject and Observe publish successor snapshots
// without blocking readers (RCU). A query overlapping a write therefore
// answers from a consistent version — either entirely before or
// entirely after the update.
type Processor struct {
	net  *Network
	set  *shard.Set
	subs *sub.Registry // standing queries; see subscribe.go
}

// SetParallelism spreads the gather-phase world evaluation of ForAllNN /
// ExistsNN (and kNN variants) over p goroutines per query; the scatter
// phase additionally parallelizes across shards. Results stay
// deterministic for a fixed seed.
func (p *Processor) SetParallelism(workers int) { p.set.SetParallelism(workers) }

// NumShards returns the partition fan-out the processor was built with
// (1 unless BuildSharded was used).
func (p *Processor) NumShards() int { return p.set.NumShards() }

// SnapshotDetail returns the composite version, total object count and
// per-shard version vector of one and the same current snapshot — the
// view callers must use when the three values need to be mutually
// consistent under concurrent writes (each shard's version advances
// only with writes routed to it; the composite version advances with
// every write, so exactly one vector entry moves per version).
func (p *Processor) SnapshotDetail() (version int64, objects int, shardVersions []int64) {
	snap := p.set.Snapshot()
	return snap.Version, snap.NumObjects(), snap.ShardVersions()
}

// Ingest describes one published write: the snapshot version it created
// and the object count at exactly that version. The pair is consistent
// even under concurrent writes, unlike reading Version and NumObjects
// separately.
type Ingest struct {
	Version int64
	Objects int
}

// AddObject registers a new object with the given observations and makes
// it visible to all queries started afterwards, returning the published
// snapshot. The ID must be unused and the observations consistent with
// the network's motion model; invalid objects are rejected atomically,
// leaving the served database untouched.
func (p *Processor) AddObject(id int, obs []Observation) (Ingest, error) {
	conv := make([]uncertain.Observation, len(obs))
	for i, ob := range obs {
		conv[i] = uncertain.Observation{T: ob.T, State: ob.State}
	}
	o, err := uncertain.NewObject(id, conv, p.net.chain)
	if err != nil {
		return Ingest{}, err
	}
	snap, err := p.set.AddObject(o)
	if err != nil {
		return Ingest{}, err
	}
	p.notifySubscriptions(snap)
	return Ingest{Version: snap.Version, Objects: snap.NumObjects()}, nil
}

// Observe appends observations to an existing object — the live arrival
// of new measurements the paper's moving-object model is built around —
// and returns the published snapshot. Late (out-of-order) observations
// are accepted as long as the merged sequence stays non-contradicting;
// duplicates and impossible motions are rejected atomically. In-flight
// queries keep their pre-update snapshot, the object's adapted model is
// re-derived lazily, and every other object's cached model carries over.
func (p *Processor) Observe(id int, obs ...Observation) (Ingest, error) {
	conv := make([]uncertain.Observation, len(obs))
	for i, ob := range obs {
		conv[i] = uncertain.Observation{T: ob.T, State: ob.State}
	}
	snap, err := p.set.Observe(id, conv)
	if err != nil {
		return Ingest{}, err
	}
	p.notifySubscriptions(snap)
	return Ingest{Version: snap.Version, Objects: snap.NumObjects()}, nil
}

// Version returns the current composite snapshot version. It starts at
// 1 and increases by one with every successful AddObject or Observe;
// successive calls return non-decreasing values.
func (p *Processor) Version() int64 { return p.set.Version() }

// SnapshotInfo returns the version and object count of one and the same
// current composite snapshot — the pair callers should use when both
// values must be consistent under concurrent writes.
func (p *Processor) SnapshotInfo() (version int64, objects int) {
	snap := p.set.Snapshot()
	return snap.Version, snap.NumObjects()
}

// Query is a certain reference position per timestep.
type Query = query.Query

// AtPoint returns a query fixed at an arbitrary planar position.
func AtPoint(p Point) Query { return query.StateQuery(geo.Point{X: p.X, Y: p.Y}) }

// AtState returns a query fixed at a network state — e.g. the bank's
// location in the paper's running example.
func AtState(net *Network, state int) Query {
	return query.StateQuery(net.sp.Point(state))
}

// Moving returns a trajectory query: pts[i] is the position at time
// start+i (clamped outside). An empty pts yields a zero query that every
// engine call rejects with an error.
func Moving(start int, pts []Point) Query {
	conv := make([]geo.Point, len(pts))
	for i, p := range pts {
		conv[i] = geo.Point{X: p.X, Y: p.Y}
	}
	return query.TrajectoryQuery(start, conv)
}

// Confidence is the adaptive sample-budget policy of a query: instead
// of drawing the processor's fixed number of possible worlds, sampling
// stops as soon as every estimate separates from the threshold tau by
// more than the Hoeffding error bound (or the bound itself reaches
// Eps), escalating up to MaxSamples worlds while the answer is
// undecided. The stop point is deterministic — a pure function of
// (snapshot, seed, policy), never of worker count or scheduling. The
// zero value disables the policy and keeps the fixed budget. See
// query.Confidence for field semantics.
type Confidence = query.Confidence

// Result is one probabilistic query answer.
type Result struct {
	ObjectID int
	Prob     float64
}

// IntervalResult is one continuous-query answer: a maximal timestamp set
// (ascending, possibly with holes) on which the object remains the likely
// NN, with its probability.
type IntervalResult struct {
	ObjectID int
	Times    []int
	Prob     float64
}

// Stats summarizes the work done by one query.
type Stats struct {
	Candidates    int     // objects surviving the ∀ filter
	Influencers   int     // objects that may be NN at some time
	Worlds        int     // possible worlds actually drawn (samples_drawn)
	ErrorBound    float64 // Hoeffding ε those worlds guarantee; 0 when exact
	EarlyStopped  bool    // an adaptive query decided before its budget cap
	SamplerBuilds int     // models adapted by this query; 0 once the cache is warm
	// WorldFloor is the adaptive early-stop floor in effect (see
	// Request.MinWorlds): the query could not decide below this many
	// worlds. 0 when no floor applied. Standing queries raise it to
	// their group's previously proven budget, so events report the floor
	// a matching one-shot needs to reproduce their bytes.
	WorldFloor int
	// GroupSize is the number of compatible standing queries this answer
	// was evaluated together with (itself included); 0 for one-shot
	// answers, 1 for a standing query evaluated alone.
	GroupSize int
	// BudgetReused marks a standing re-evaluation whose WorldFloor was
	// raised to the group's previously proven adaptive budget instead of
	// escalating from the first round. Always false for one-shots.
	BudgetReused bool
}

// CacheStats reports the processor's cumulative sampler-cache traffic:
// Builds counts model adaptations — at most one per object per engine
// version, so on a static database it freezes at the number of distinct
// objects touched, while every Observe invalidates that object's
// sampler and costs one more build on next use. Hits counts lookups
// served from cache and keeps growing with repeat traffic.
type CacheStats = query.CacheStats

// ForAllNN returns every object whose probability of being the nearest
// neighbor of q at every t in [ts, te] is at least tau (P∀NNQ,
// Definition 2).
func (p *Processor) ForAllNN(q Query, ts, te int, tau float64, seed int64) ([]Result, Stats, error) {
	return snapForAllKNN(p.set.Snapshot(), q, ts, te, 1, tau, seed)
}

// ExistsNN returns every object whose probability of being the NN of q at
// at least one t in [ts, te] is at least tau (P∃NNQ, Definition 1).
func (p *Processor) ExistsNN(q Query, ts, te int, tau float64, seed int64) ([]Result, Stats, error) {
	return snapExistsKNN(p.set.Snapshot(), q, ts, te, 1, tau, seed)
}

// ForAllKNN generalizes ForAllNN to "among the k nearest" (Section 8).
func (p *Processor) ForAllKNN(q Query, ts, te, k int, tau float64, seed int64) ([]Result, Stats, error) {
	return snapForAllKNN(p.set.Snapshot(), q, ts, te, k, tau, seed)
}

// ExistsKNN generalizes ExistsNN to "among the k nearest".
func (p *Processor) ExistsKNN(q Query, ts, te, k int, tau float64, seed int64) ([]Result, Stats, error) {
	return snapExistsKNN(p.set.Snapshot(), q, ts, te, k, tau, seed)
}

// ContinuousNN answers PCNNQ (Definition 3): for each object the maximal
// timestamp sets within [ts, te] on which it is always the NN with
// probability at least tau. tau must be positive — the result lattice is
// exponential as tau approaches 0 (Section 4.3).
func (p *Processor) ContinuousNN(q Query, ts, te int, tau float64, seed int64) ([]IntervalResult, Stats, error) {
	return p.ContinuousKNN(q, ts, te, 1, tau, seed)
}

// ContinuousKNN generalizes ContinuousNN to "among the k nearest"
// (PCkNNQ, Section 8).
func (p *Processor) ContinuousKNN(q Query, ts, te, k int, tau float64, seed int64) ([]IntervalResult, Stats, error) {
	return snapContinuousKNN(p.set.Snapshot(), q, ts, te, k, tau, seed)
}

// Run answers one Request — any semantics, with the full knob set
// including the adaptive Confidence policy — against the current
// snapshot. It is the single-query form of RunBatch: the same
// validation, the same determinism contract (the answer depends only on
// the snapshot and the request's own fields), with Response.Stats
// reporting the worlds actually drawn and the error bound they
// guarantee. Unlike the batch path, SamplerBuilds is reported on the
// response itself.
func (p *Processor) Run(req Request) Response {
	resp, raw := runOne(p.set.Snapshot(), req)
	resp.Stats.SamplerBuilds = raw.SamplerBuilds
	return resp
}

// SampleBudget returns the fixed per-query sample budget the processor
// was built with — the world count every query draws unless a
// Confidence policy stops it earlier or escalates past it via
// MaxSamples.
func (p *Processor) SampleBudget() int {
	return p.set.Snapshot().Parts[0].Engine.SampleCount()
}

func snapForAllKNN(snap *shard.Snap, q Query, ts, te, k int, tau float64, seed int64) ([]Result, Stats, error) {
	res, st, err := rawForAllKNN(snap, shard.GroupSpec{Q: q, Ts: ts, Te: te, K: k, Seed: seed}, tau)
	return res, convStats(st), err
}

func snapExistsKNN(snap *shard.Snap, q Query, ts, te, k int, tau float64, seed int64) ([]Result, Stats, error) {
	res, st, err := rawExistsKNN(snap, shard.GroupSpec{Q: q, Ts: ts, Te: te, K: k, Seed: seed}, tau)
	return res, convStats(st), err
}

func snapContinuousKNN(snap *shard.Snap, q Query, ts, te, k int, tau float64, seed int64) ([]IntervalResult, Stats, error) {
	res, st, err := rawContinuousKNN(snap, shard.GroupSpec{Q: q, Ts: ts, Te: te, K: k, Seed: seed}, tau)
	return res, convStats(st), err
}

func convertResults(res []shard.Result) []Result {
	out := make([]Result, len(res))
	for i, r := range res {
		out[i] = Result{ObjectID: r.ID, Prob: r.Prob}
	}
	return out
}

func convStats(st query.Stats) Stats {
	return Stats{
		Candidates:    st.Candidates,
		Influencers:   st.Influencers,
		Worlds:        st.Worlds,
		ErrorBound:    st.ErrorBound,
		EarlyStopped:  st.EarlyStopped,
		SamplerBuilds: st.SamplerBuilds,
	}
}

// CacheStats returns the cumulative sampler-cache counters of this
// processor, summed across shards and carried across ingestion-induced
// engine versions.
func (p *Processor) CacheStats() CacheStats { return p.set.CacheStats() }

// PrepareAll adapts every object's model up front (the TS phase), so later
// queries pay only for sampling and evaluation. Shards warm in
// parallel; within each shard adaptation runs on the parallelism set by
// SetParallelism. It warms the snapshot current at the call; objects
// updated afterwards re-adapt lazily.
func (p *Processor) PrepareAll() error { return p.set.PrepareAll() }

// NumObjects returns the number of indexed objects in the current
// composite snapshot.
func (p *Processor) NumObjects() int { return p.set.NumObjects() }

// SampleTrajectory draws one possible trajectory of the object consistent
// with all of its observations (it passes through every one of them). The
// returned slice holds the state at each tic of the object's lifetime,
// starting at its first observation time.
func (p *Processor) SampleTrajectory(objectID int, seed int64) ([]int, error) {
	snap := p.set.Snapshot()
	si, oi, ok := snap.Locate(objectID)
	if !ok {
		return nil, fmt.Errorf("pnn: unknown object id %d", objectID)
	}
	s, err := snap.Parts[si].Engine.Sampler(oi)
	if err != nil {
		return nil, err
	}
	path := s.Sample(rand.New(rand.NewSource(seed)))
	out := make([]int, len(path.States))
	for i, st := range path.States {
		out[i] = int(st)
	}
	return out, nil
}

// SampleBound returns the worst-case estimation error ε such that a query
// probability estimated from n sampled worlds deviates from the truth by
// more than ε with probability at most delta (Hoeffding's inequality).
func SampleBound(n int, delta float64) float64 { return query.ErrorBound(n, delta) }

// SamplesFor returns the number of worlds needed to estimate any query
// probability within eps at confidence 1−delta.
func SamplesFor(eps, delta float64) int { return query.RequiredSamples(eps, delta) }

// SyntheticDataset generates a ready-made uncertain trajectory database:
// the paper's artificial workload with numObjects objects of the given
// lifetime, observed every obsInterval tics, scattered over [0, horizon).
// It returns the network and a populated DB.
func SyntheticDataset(states int, branching float64, numObjects, lifetime, horizon, obsInterval int, seed int64) (*Network, *DB, error) {
	cfg := datagen.SyntheticConfig{
		States:      states,
		Branching:   branching,
		Objects:     numObjects,
		Lifetime:    lifetime,
		Horizon:     horizon,
		ObsInterval: obsInterval,
		Lag:         0.5,
		SelfWeight:  0.5,
	}
	ds, err := datagen.Synthetic(cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, nil, err
	}
	return wrapDataset(ds)
}

// TaxiDataset generates the city-scale taxi workload (the T-Drive
// substitute): a center-skewed road network with a heterogeneous fleet.
func TaxiDataset(states, taxis, lifetime, horizon, obsInterval int, seed int64) (*Network, *DB, error) {
	cfg := datagen.DefaultTaxiConfig()
	cfg.States = states
	cfg.Taxis = taxis
	cfg.Lifetime = lifetime
	cfg.Horizon = horizon
	cfg.ObsInterval = obsInterval
	ds, err := datagen.Taxi(cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, nil, err
	}
	return wrapDataset(ds)
}

// LoadDataset reads a dataset previously persisted by `pnndata -out` (or
// datagen.Dataset.Save) and returns the reconstructed network and a
// populated DB ready to Build. It is how long-running services such as
// pnnserve load their workload at startup.
func LoadDataset(r io.Reader) (*Network, *DB, error) {
	ds, err := datagen.Load(r)
	if err != nil {
		return nil, nil, err
	}
	return wrapDataset(ds)
}

func wrapDataset(ds *datagen.Dataset) (*Network, *DB, error) {
	net := &Network{sp: ds.Space, chain: ds.Chain}
	db := NewDB(net)
	db.objs = ds.Objects
	for i, o := range ds.Objects {
		db.byID[o.ID] = i
		db.ids = append(db.ids, o.ID)
	}
	return net, db, nil
}
