package pnn

import "testing"

func TestBuildRejectsContradictingObservations(t *testing.T) {
	net, err := NewGridNetwork(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDB(net)
	// Opposite corners of a 10x10 grid are 18 hops apart; 3 tics cannot
	// connect them.
	a := net.NearestState(Point{X: 0, Y: 0})
	b := net.NearestState(Point{X: 1, Y: 1})
	if err := db.Add(1, []Observation{{T: 0, State: a}, {T: 3, State: b}}); err != nil {
		t.Fatal(err) // Add only validates locally; Build runs reachability
	}
	if _, err := db.Build(100); err == nil {
		t.Error("Build must reject contradicting observations")
	}
}

func TestAddValidation(t *testing.T) {
	net, err := NewGridNetwork(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDB(net)
	if err := db.Add(1, nil); err == nil {
		t.Error("expected error for empty observations")
	}
	if err := db.Add(1, []Observation{{T: 0, State: 99}}); err == nil {
		t.Error("expected error for out-of-range state")
	}
	if err := db.Add(1, []Observation{{T: 0, State: 0}, {T: 0, State: 1}}); err == nil {
		t.Error("expected error for same-time contradiction")
	}
}

func TestObservationsAlong(t *testing.T) {
	net, err := NewGridNetwork(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	a := net.NearestState(Point{X: 0.1, Y: 0.1})
	b := net.NearestState(Point{X: 0.7, Y: 0.7})
	obs := net.ObservationsAlong(a, b, 10, 2, 3)
	if len(obs) < 2 {
		t.Fatalf("obs = %+v", obs)
	}
	if obs[0].T != 10 || obs[0].State != a {
		t.Errorf("first obs = %+v", obs[0])
	}
	if obs[len(obs)-1].State != b {
		t.Errorf("last obs = %+v, want state %d", obs[len(obs)-1], b)
	}
	// Must be consistent: the DB builds without error.
	db := NewDB(net)
	if err := db.Add(1, obs); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Build(50); err != nil {
		t.Errorf("path observations should always be consistent: %v", err)
	}
	// Degenerate parameters clamp.
	obs = net.ObservationsAlong(a, a, 0, 0, 0)
	if len(obs) != 1 || obs[0].State != a {
		t.Errorf("self path obs = %+v", obs)
	}
	// Unreachable targets yield nil on a disconnected... grids are
	// connected, so exercise via identical from/to only.
	if got := net.ObservationsAlong(a, b, 0, 1, 100); len(got) != 2 {
		t.Errorf("sparse observation count = %d, want endpoints only", len(got))
	}
}

func TestShortestPathFacade(t *testing.T) {
	net, err := NewGridNetwork(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	p := net.ShortestPath(0, 24)
	if p == nil || p[0] != 0 || p[len(p)-1] != 24 {
		t.Fatalf("ShortestPath = %v", p)
	}
	if len(p) != 9 { // 8 hops corner to corner
		t.Errorf("path length = %d, want 9", len(p))
	}
}

// TestBatchZeroQueryRejected: a zero-value Query in a batch request is a
// per-request error, not a process-killing panic in a worker goroutine.
func TestBatchZeroQueryRejected(t *testing.T) {
	_, proc := ingestNet(t, 2)
	resps := proc.RunBatch([]Request{
		{Semantics: ForAll, Ts: 1, Te: 5, Tau: 0.1, Seed: 1},
		{Semantics: Continuous, Ts: 1, Te: 5, Tau: 0.1, Seed: 2},
		{Semantics: Exists, Query: Moving(0, nil), Ts: 1, Te: 5, Tau: 0.1, Seed: 3},
	}, 2)
	for i, resp := range resps {
		if resp.Err == nil {
			t.Errorf("request %d with zero Query succeeded", i)
		}
	}
}
