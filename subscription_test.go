package pnn

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// drainLatest empties a subscription's queue and returns the newest
// non-bye event, failing the test when none is queued.
func drainLatest(t *testing.T, s *Subscription) SubEvent {
	t.Helper()
	var last *SubEvent
	for {
		select {
		case e, ok := <-s.Events():
			if !ok {
				t.Fatal("subscription channel closed while draining")
			}
			if !e.Bye {
				last = &e
				continue
			}
			t.Fatal("unexpected bye while draining")
		default:
		}
		break
	}
	if last == nil {
		t.Fatal("no event queued")
	}
	return *last
}

// TestSubscriptionMatchesOneShot is the subscription determinism
// contract end-to-end: every delivered event at version V is
// byte-identical — answers AND samples_drawn — to a fresh one-shot
// query with the subscription's request at the version-V snapshot,
// whatever the shard and worker counts. Re-evaluation shares the
// one-shot execution path (same spec, same single-item group, per-row
// seeding by object ID), so no scheduling detail may leak into a
// standing answer.
func TestSubscriptionMatchesOneShot(t *testing.T) {
	net, db, err := SyntheticDataset(500, 8, 60, 80, 100, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	qs := RandomQueryState(net, 3)
	q := AtState(net, qs)
	conf := Confidence{Eps: 0.02, MaxSamples: 8000}
	cases := []Request{
		{Semantics: ForAll, Query: q, Ts: 40, Te: 47, Tau: 0.3, Seed: 99},
		{Semantics: Exists, Query: q, Ts: 40, Te: 47, K: 2, Tau: 0.3, Seed: 99, Confidence: conf},
		{Semantics: Continuous, Query: q, Ts: 40, Te: 44, Tau: 0.3, Seed: 99},
	}
	nextID := 10000
	for _, shards := range []int{1, 2, 4} {
		for _, workers := range []int{1, 4} {
			proc, err := db.BuildSharded(2000, shards)
			if err != nil {
				t.Fatal(err)
			}
			proc.SetParallelism(workers)
			subs := make([]*Subscription, len(cases))
			for i, req := range cases {
				if subs[i], err = proc.Subscribe(req, Delivery{QueueCap: 64}); err != nil {
					t.Fatal(err)
				}
			}
			check := func(stage string) {
				t.Helper()
				for i, s := range subs {
					e := drainLatest(t, s)
					if e.Version != proc.Version() {
						t.Fatalf("shards=%d workers=%d %s case %d: event version %d, snapshot %d",
							shards, workers, stage, i, e.Version, proc.Version())
					}
					got := e.Payload.(Response)
					if got.Err != nil {
						t.Fatalf("%s case %d: %v", stage, i, got.Err)
					}
					// Standing re-evaluations may start from the group's
					// previously proven adaptive budget; the event's
					// WorldFloor reports exactly the floor a one-shot
					// needs to reproduce the bytes.
					oneShot := cases[i]
					oneShot.MinWorlds = got.Stats.WorldFloor
					want := proc.Run(oneShot)
					if want.Err != nil {
						t.Fatalf("%s case %d one-shot: %v", stage, i, want.Err)
					}
					gb, _ := json.Marshal(struct {
						R []Result
						I []IntervalResult
					}{got.Results, got.Intervals})
					wb, _ := json.Marshal(struct {
						R []Result
						I []IntervalResult
					}{want.Results, want.Intervals})
					if string(gb) != string(wb) {
						t.Errorf("shards=%d workers=%d %s case %d answers diverged:\nevent    %s\none-shot %s",
							shards, workers, stage, i, gb, wb)
					}
					if got.Stats.Worlds != want.Stats.Worlds ||
						got.Stats.ErrorBound != want.Stats.ErrorBound ||
						got.Stats.EarlyStopped != want.Stats.EarlyStopped {
						t.Errorf("shards=%d workers=%d %s case %d sampling diverged: event %+v, one-shot %+v",
							shards, workers, stage, i, got.Stats, want.Stats)
					}
				}
			}
			check("initial")

			// A new object parked at the query state mid-window: inside
			// every influence region, so all three subscriptions re-run.
			id := nextID
			nextID++
			if _, err := proc.AddObject(id, []Observation{{T: 42, State: qs}}); err != nil {
				t.Fatal(err)
			}
			if !proc.WaitSubscriptionsIdle(10 * time.Second) {
				t.Fatal("subscriptions did not quiesce after AddObject")
			}
			check("after-add")

			// Extend the object's lifetime (it stays put — always
			// chain-consistent); again inside every region.
			if _, err := proc.Observe(id, Observation{T: 43, State: qs}); err != nil {
				t.Fatal(err)
			}
			if !proc.WaitSubscriptionsIdle(10 * time.Second) {
				t.Fatal("subscriptions did not quiesce after Observe")
			}
			check("after-observe")

			proc.CloseSubscriptions()
			for _, s := range subs {
				e, ok := <-s.Events()
				if !ok || !e.Bye {
					t.Fatalf("want terminal bye, got %+v (ok=%v)", e, ok)
				}
				if _, ok := <-s.Events(); ok {
					t.Fatal("channel open after bye")
				}
			}
		}
	}
}

// TestSubscriptionInvalidRequestRejected pins Subscribe to the same
// validation as one-shot queries: bad requests fail at registration,
// never at delivery time.
func TestSubscriptionInvalidRequestRejected(t *testing.T) {
	_, db, err := SyntheticDataset(200, 8, 20, 40, 60, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := db.Build(200)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proc.Subscribe(Request{Semantics: "nope"}, Delivery{}); err == nil {
		t.Error("unknown semantics accepted")
	}
	if _, err := proc.Subscribe(Request{Semantics: Continuous, Tau: 0}, Delivery{}); err == nil {
		t.Error("PCNN with tau=0 accepted")
	}
}

// TestSubscriptionIngestHammer is the -race stress: writers ingest
// while consumers stream, asserting per-subscription event versions
// and sequence numbers stay strictly monotone, drops are surfaced
// rather than blocking writers, and shutdown delivers bye everywhere.
func TestSubscriptionIngestHammer(t *testing.T) {
	net, db, err := SyntheticDataset(400, 8, 40, 60, 80, 5, 13)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := db.BuildSharded(300, 2)
	if err != nil {
		t.Fatal(err)
	}
	const nSubs = 12
	subs := make([]*Subscription, nSubs)
	for i := range subs {
		req := Request{
			Semantics: Exists, Query: AtState(net, RandomQueryState(net, int64(i))),
			Ts: 30, Te: 37, Tau: 0.2, Seed: int64(100 + i),
		}
		if subs[i], err = proc.Subscribe(req, Delivery{QueueCap: 4}); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for _, s := range subs {
		wg.Add(1)
		go func(s *Subscription) {
			defer wg.Done()
			lastSeq, lastVer := int64(0), int64(0)
			sawBye := false
			for e := range s.Events() {
				if e.Seq <= lastSeq {
					t.Errorf("sub %d: seq %d after %d", s.ID(), e.Seq, lastSeq)
				}
				lastSeq = e.Seq
				if e.Bye {
					sawBye = true
					continue
				}
				if e.Version <= lastVer {
					t.Errorf("sub %d: version %d after %d", s.ID(), e.Version, lastVer)
				}
				lastVer = e.Version
			}
			if !sawBye {
				t.Errorf("sub %d: channel closed without bye", s.ID())
			}
		}(s)
	}

	const writers, writesEach = 3, 15
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			base := 5000 + w*1000
			for i := 0; i < writesEach; i++ {
				id := base + i
				st := RandomQueryState(net, int64(w*writesEach+i))
				if _, err := proc.AddObject(id, []Observation{{T: 32, State: st}}); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				if _, err := proc.Observe(id, Observation{T: 33, State: st}); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	ww.Wait()
	if !proc.WaitSubscriptionsIdle(30 * time.Second) {
		t.Fatal("subscriptions did not quiesce after the write storm")
	}
	proc.CloseSubscriptions()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("consumers did not drain after CloseSubscriptions")
	}
	st := proc.SubscriptionStats()
	if st.Notifies != writers*writesEach*2 {
		t.Errorf("Notifies = %d, want %d", st.Notifies, writers*writesEach*2)
	}
	if st.Emitted == 0 {
		t.Error("no events emitted; the hammer tested nothing")
	}
}

// TestSubscriptionSelectiveInvalidation is the acceptance criterion of
// the inverted-index design: with many standing queries spread over
// the space, one write re-evaluates only the subscriptions whose
// influence region the written object touches — a small fraction of
// the registry — while full fan-out would re-run all of them.
func TestSubscriptionSelectiveInvalidation(t *testing.T) {
	nSubs := 1000
	if testing.Short() {
		nSubs = 250
	}
	net, db, err := SyntheticDataset(2500, 8, 600, 100, 100, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := db.Build(150)
	if err != nil {
		t.Fatal(err)
	}
	// Warm every model up front so the registration sweep below pays
	// only for pruning and sampling.
	if err := proc.PrepareAll(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nSubs; i++ {
		req := Request{
			Semantics: Exists, Query: AtState(net, RandomQueryState(net, int64(i))),
			Ts: 40, Te: 47, Tau: 0.3, Seed: int64(i),
		}
		if _, err := proc.Subscribe(req, Delivery{QueueCap: 2}); err != nil {
			t.Fatal(err)
		}
	}
	if !proc.WaitSubscriptionsIdle(60 * time.Second) {
		t.Fatal("initial evaluations did not quiesce")
	}
	base := proc.SubscriptionStats()
	if base.Evaluations < int64(nSubs) {
		t.Fatalf("initial Evaluations = %d, want >= %d", base.Evaluations, nSubs)
	}

	// The write lands exactly on subscription #5's query state, so at
	// least that one subscription must be touched — the lower bound
	// below is structural, not statistical.
	wst := RandomQueryState(net, 5)
	if _, err := proc.AddObject(777777, []Observation{{T: 44, State: wst}}); err != nil {
		t.Fatal(err)
	}
	if !proc.WaitSubscriptionsIdle(60 * time.Second) {
		t.Fatal("post-AddObject evaluations did not quiesce")
	}
	afterAdd := proc.SubscriptionStats()

	if _, err := proc.Observe(777777, Observation{T: 45, State: wst}); err != nil {
		t.Fatal(err)
	}
	if !proc.WaitSubscriptionsIdle(60 * time.Second) {
		t.Fatal("post-Observe evaluations did not quiesce")
	}
	afterObs := proc.SubscriptionStats()

	addTouched := afterAdd.Evaluations - base.Evaluations
	obsTouched := afterObs.Evaluations - afterAdd.Evaluations
	t.Logf("registered %d subscriptions; AddObject touched %d, Observe touched %d",
		nSubs, addTouched, obsTouched)
	for name, touched := range map[string]int64{"AddObject": addTouched, "Observe": obsTouched} {
		if touched == 0 {
			t.Errorf("%s re-evaluated nothing — the write was invisible, the test is vacuous", name)
		}
		if touched > int64(nSubs)/5 {
			t.Errorf("%s re-evaluated %d of %d subscriptions; invalidation is not selective", name, touched, nSubs)
		}
	}
	proc.CloseSubscriptions()
}
