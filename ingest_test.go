package pnn

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// ingestNet builds a grid world with `n` objects parked on distinct
// states, observed at t=0 and t=8.
func ingestNet(t testing.TB, n int) (*Network, *Processor) {
	t.Helper()
	net, err := NewGridNetwork(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDB(net)
	for id := 0; id < n; id++ {
		st := (id * 7) % net.NumStates()
		if err := db.Add(id, []Observation{{T: 0, State: st}, {T: 8, State: st}}); err != nil {
			t.Fatal(err)
		}
	}
	proc, err := db.Build(100)
	if err != nil {
		t.Fatal(err)
	}
	return net, proc
}

// TestIngestFacade is the sequential before/after contract of the
// facade: a query issued before a write answers from the old database,
// a query issued after a write sees it, and Version advances once per
// successful write only.
func TestIngestFacade(t *testing.T) {
	net, proc := ingestNet(t, 3)
	if v := proc.Version(); v != 1 {
		t.Fatalf("fresh Version = %d, want 1", v)
	}

	// Nobody covers [10, 14] yet.
	q := AtState(net, 55)
	if res, _, err := proc.ForAllNN(q, 10, 14, 0.3, 1); err != nil || len(res) != 0 {
		t.Fatalf("pre-write query: res=%v err=%v, want empty", res, err)
	}

	ing, err := proc.AddObject(50, []Observation{{T: 10, State: 55}, {T: 14, State: 55}})
	if err != nil {
		t.Fatal(err)
	}
	if ing.Version != 2 || ing.Objects != 4 || proc.Version() != 2 || proc.NumObjects() != 4 {
		t.Fatalf("after AddObject: ing=%+v Version=%d NumObjects=%d", ing, proc.Version(), proc.NumObjects())
	}
	res, _, err := proc.ForAllNN(q, 10, 14, 0.3, 1)
	if err != nil || len(res) != 1 || res[0].ObjectID != 50 {
		t.Fatalf("post-AddObject query: res=%v err=%v, want object 50", res, err)
	}

	// Observe extends object 50's lifetime; the extension is queryable.
	ing, err = proc.Observe(50, Observation{T: 20, State: 55})
	if err != nil || ing.Version != 3 || ing.Objects != 4 {
		t.Fatalf("Observe: ing=%+v err=%v", ing, err)
	}
	res, _, err = proc.ForAllNN(q, 15, 19, 0.3, 1)
	if err != nil || len(res) != 1 || res[0].ObjectID != 50 {
		t.Fatalf("post-Observe query: res=%v err=%v, want object 50", res, err)
	}

	// Failed writes advance nothing.
	if _, err := proc.AddObject(50, []Observation{{T: 0, State: 0}}); err == nil {
		t.Error("duplicate AddObject succeeded")
	}
	if _, err := proc.Observe(99, Observation{T: 0, State: 0}); err == nil {
		t.Error("Observe on unknown object succeeded")
	}
	if v := proc.Version(); v != 3 {
		t.Errorf("Version after failed writes = %d, want 3", v)
	}

	// The sampler of an updated object reflects the update.
	path, err := proc.SampleTrajectory(50, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 11 { // t = 10 .. 20
		t.Errorf("sampled trajectory spans %d tics, want 11", len(path))
	}
}

// TestIngestWhileQuerying hammers Observe/AddObject against single and
// batch queries under the race detector: every answer must come from a
// consistent snapshot (only IDs that exist, never an error), Version
// must be monotone from every goroutine's point of view, and in-flight
// queries must survive any number of snapshot swaps.
func TestIngestWhileQuerying(t *testing.T) {
	const (
		initial = 8
		writes  = 40
		readers = 4
	)
	net, proc := ingestNet(t, initial)
	proc.SetParallelism(2)

	// The full ID universe: initial objects plus everything the writer
	// will ever add. Any result outside it proves a torn snapshot.
	valid := make(map[int]bool)
	for id := 0; id < initial; id++ {
		valid[id] = true
	}
	for w := 0; w < writes; w++ {
		valid[1000+w] = true
	}

	var wg sync.WaitGroup
	var writerDone atomic.Bool
	var lastVersion atomic.Int64

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer writerDone.Store(true)
		nextT := make(map[int]int) // next free timestamp per observed object
		for w := 0; w < writes; w++ {
			var ing Ingest
			var err error
			if w%2 == 0 {
				st := (w * 11) % net.NumStates()
				ing, err = proc.AddObject(1000+w, []Observation{{T: 0, State: st}, {T: 8, State: st}})
			} else {
				id := w % initial
				tt, ok := nextT[id]
				if !ok {
					tt = 9
				}
				nextT[id] = tt + 1
				ing, err = proc.Observe(id, Observation{T: tt, State: (id * 7) % net.NumStates()})
			}
			if err != nil {
				t.Errorf("write %d: %v", w, err)
				return
			}
			if prev := lastVersion.Swap(ing.Version); ing.Version <= prev {
				t.Errorf("write %d published version %d after %d", w, ing.Version, prev)
				return
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			check := func(res []Result, err error) {
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				for _, rr := range res {
					if !valid[rr.ObjectID] {
						t.Errorf("reader %d: result names unknown object %d", r, rr.ObjectID)
					}
					if rr.Prob <= 0 || rr.Prob > 1 {
						t.Errorf("reader %d: probability %v out of range", r, rr.Prob)
					}
				}
			}
			seen := int64(0)
			for i := 0; !writerDone.Load(); i++ {
				v := proc.Version()
				if v < seen {
					t.Errorf("reader %d: Version went backwards %d -> %d", r, seen, v)
					return
				}
				seen = v
				q := AtState(net, (r*13+i*29)%net.NumStates())
				switch i % 3 {
				case 0:
					res, _, err := proc.ForAllNN(q, 1, 7, 0.05, int64(i))
					check(res, err)
				case 1:
					res, _, err := proc.ExistsNN(q, 1, 7, 0.05, int64(i))
					check(res, err)
				default:
					for _, resp := range proc.RunBatch([]Request{
						{Semantics: ForAll, Query: q, Ts: 1, Te: 7, Tau: 0.05, Seed: int64(i)},
						{Semantics: Exists, Query: q, Ts: 2, Te: 9, Tau: 0.05, Seed: int64(i + 1)},
					}, 2) {
						check(resp.Results, resp.Err)
					}
				}
			}
		}(r)
	}
	wg.Wait()

	if v := proc.Version(); v != int64(1+writes) {
		t.Errorf("final Version = %d, want %d", v, 1+writes)
	}
	if n := proc.NumObjects(); n != initial+writes/2 {
		t.Errorf("final NumObjects = %d, want %d", n, initial+writes/2)
	}
	// Determinism across snapshots: the same seed against the final
	// quiescent database answers identically twice.
	q := AtState(net, 55)
	a, _, err := proc.ExistsNN(q, 1, 7, 0.01, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := proc.ExistsNN(q, 1, 7, 0.01, 42)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("quiescent queries diverged: %v vs %v", a, b)
	}
}
