package pnn

// One benchmark per reproduced table/figure (the paper's evaluation has no
// numbered tables; Figures 6-14 carry all quantitative results), plus the
// ablation benchmarks called out in DESIGN.md §6. Figure benchmarks run
// the full experiment pipeline at the Tiny scale — dataset generation,
// indexing, model adaptation and querying — so one iteration corresponds
// to one complete regeneration of the figure's data.

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"pnn/internal/datagen"
	"pnn/internal/exp"
	"pnn/internal/inference"
	"pnn/internal/markov"
	"pnn/internal/query"
	"pnn/internal/space"
	"pnn/internal/sparse"
	"pnn/internal/store"
	"pnn/internal/uncertain"
	"pnn/internal/ustree"
)

func benchFigure(b *testing.B, run func(exp.Config) (*exp.Table, error)) {
	b.Helper()
	cfg := exp.TinyConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExample1(b *testing.B) { benchFigure(b, exp.Example1) }
func BenchmarkFig6(b *testing.B)     { benchFigure(b, exp.Fig6) }
func BenchmarkFig7(b *testing.B)     { benchFigure(b, exp.Fig7) }
func BenchmarkFig8(b *testing.B)     { benchFigure(b, exp.Fig8) }
func BenchmarkFig9(b *testing.B)     { benchFigure(b, exp.Fig9) }
func BenchmarkFig10(b *testing.B)    { benchFigure(b, exp.Fig10) }
func BenchmarkFig11(b *testing.B)    { benchFigure(b, exp.Fig11) }
func BenchmarkFig12(b *testing.B)    { benchFigure(b, exp.Fig12) }
func BenchmarkFig13(b *testing.B)    { benchFigure(b, exp.Fig13) }
func BenchmarkFig14(b *testing.B)    { benchFigure(b, exp.Fig14) }

// benchDB builds one reusable dataset+tree for the query-path ablations.
func benchDB(b *testing.B) (*datagen.Dataset, *ustree.Tree) {
	b.Helper()
	cfg := datagen.DefaultSyntheticConfig()
	cfg.States = 3000
	cfg.Objects = 300
	ds, err := datagen.Synthetic(cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	tree, err := ustree.Build(ds.Space, ds.Objects, nil)
	if err != nil {
		b.Fatal(err)
	}
	return ds, tree
}

func runQueries(b *testing.B, ds *datagen.Dataset, eng *query.Engine) {
	b.Helper()
	rng := rand.New(rand.NewSource(2))
	if _, err := eng.PrepareAll(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := ds.Objects[rng.Intn(len(ds.Objects))]
		q := query.StateQuery(ds.Space.Point(datagen.RandomQueryState(ds.Space, rng)))
		ts := o.First().T + 1
		if _, _, err := eng.ForAllNN(q, ts, ts+9, 0, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPruning quantifies the UST-tree filter step: identical
// queries with the spatial filter on vs. lifetime-only filtering.
func BenchmarkAblationPruning(b *testing.B) {
	ds, tree := benchDB(b)
	b.Run("ust-filter", func(b *testing.B) {
		runQueries(b, ds, query.NewEngine(tree, 1000))
	})
	b.Run("no-filter", func(b *testing.B) {
		eng := query.NewEngine(tree, 1000)
		eng.DisablePruning()
		runQueries(b, ds, eng)
	})
}

// BenchmarkAblationSamples compares a fixed paper-style sample count with
// Hoeffding-derived counts at two accuracy targets.
func BenchmarkAblationSamples(b *testing.B) {
	ds, tree := benchDB(b)
	for _, tc := range []struct {
		name string
		n    int
	}{
		{"fixed-10000", 10000},
		{"hoeffding-eps0.02", query.RequiredSamples(0.02, 0.05)},
		{"hoeffding-eps0.05", query.RequiredSamples(0.05, 0.05)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			runQueries(b, ds, query.NewEngine(tree, tc.n))
		})
	}
}

// BenchmarkAblationDenseVsSparse compares the sparse forward kernel of
// Algorithm 2 with a dense |S|² matrix-vector product, the representation
// the paper's complexity analysis assumes.
func BenchmarkAblationDenseVsSparse(b *testing.B) {
	const n = 500
	rng := rand.New(rand.NewSource(3))
	sp, err := space.Synthetic(n, 8, rng)
	if err != nil {
		b.Fatal(err)
	}
	m := sp.TransitionMatrix(0.5)
	dense := make([][]float64, n)
	for i := range dense {
		dense[i] = make([]float64, n)
		cols, vals := m.Row(i)
		for k, c := range cols {
			dense[i][c] = vals[k]
		}
	}
	start := sparse.UnitVec(0)

	b.Run("sparse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v := start.Clone()
			for t := 0; t < 20; t++ {
				v = m.MulVecLeft(v)
			}
		}
	})
	b.Run("dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v := make([]float64, n)
			v[0] = 1
			for t := 0; t < 20; t++ {
				nv := make([]float64, n)
				for row := 0; row < n; row++ {
					x := v[row]
					if x == 0 {
						continue
					}
					for col := 0; col < n; col++ {
						nv[col] += x * dense[row][col]
					}
				}
				v = nv
			}
		}
	})
}

// BenchmarkAblationApriori shows the PCNN lattice growth as τ shrinks
// (Section 4.3: result sets explode for small τ).
func BenchmarkAblationApriori(b *testing.B) {
	ds, tree := benchDB(b)
	rng := rand.New(rand.NewSource(4))
	for _, tau := range []float64{0.9, 0.5, 0.1} {
		b.Run(map[float64]string{0.9: "tau-0.9", 0.5: "tau-0.5", 0.1: "tau-0.1"}[tau], func(b *testing.B) {
			eng := query.NewEngine(tree, 1000)
			if _, err := eng.PrepareAll(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				o := ds.Objects[rng.Intn(len(ds.Objects))]
				q := query.StateQuery(ds.Space.Point(datagen.RandomQueryState(ds.Space, rng)))
				ts := o.First().T + 1
				if _, _, err := eng.CNN(q, ts, ts+9, tau, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBatchService measures the concurrent service path: RunBatch
// over a warm sampler cache at several worker counts, the configuration
// pnnserve runs in steady state.
func BenchmarkBatchService(b *testing.B) {
	net, db, err := SyntheticDataset(3000, 8, 300, 100, 1000, 10, 1)
	if err != nil {
		b.Fatal(err)
	}
	proc, err := db.Build(1000)
	if err != nil {
		b.Fatal(err)
	}
	if err := proc.PrepareAll(); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	reqs := make([]Request, 64)
	for i := range reqs {
		sem := ForAll
		if i%2 == 1 {
			sem = Exists
		}
		ts := 450 + rng.Intn(100)
		reqs[i] = Request{
			Semantics: sem,
			Query:     AtState(net, rng.Intn(net.NumStates())),
			Ts:        ts, Te: ts + 9,
			Tau:  0.05,
			Seed: int64(i),
		}
	}
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, resp := range proc.RunBatch(reqs, workers) {
					if resp.Err != nil {
						b.Fatal(resp.Err)
					}
				}
			}
		})
	}
}

// BenchmarkBatchSharedWorlds measures what shared-world coalescing buys
// on the workload it targets: 8 requests against the same query point
// and window (mixed ∀/∃ semantics, distinct thresholds), answered
// independently vs. from one shared world set. The shared side prunes,
// adapts and samples once for the whole group, so it should run several
// times faster than the 8 independent sampling passes.
func BenchmarkBatchSharedWorlds(b *testing.B) {
	net, db, err := SyntheticDataset(3000, 8, 300, 100, 1000, 10, 1)
	if err != nil {
		b.Fatal(err)
	}
	proc, err := db.Build(1000)
	if err != nil {
		b.Fatal(err)
	}
	if err := proc.PrepareAll(); err != nil {
		b.Fatal(err)
	}
	q := AtState(net, 17)
	reqs := make([]Request, 8)
	for i := range reqs {
		sem := ForAll
		if i%2 == 1 {
			sem = Exists
		}
		reqs[i] = Request{
			Semantics: sem, Query: q, Ts: 450, Te: 459,
			Tau:  0.01 * float64(i+1),
			Seed: int64(i),
		}
	}
	for _, tc := range []struct {
		name string
		opts BatchOptions
	}{
		{"independent", BatchOptions{Workers: 4}},
		{"shared", BatchOptions{Workers: 4, ShareWorlds: true, SharedSeed: 42}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				resps, _ := proc.RunBatchStats(reqs, tc.opts)
				for _, resp := range resps {
					if resp.Err != nil {
						b.Fatal(resp.Err)
					}
				}
			}
		})
	}
}

// BenchmarkAdaptiveBudget measures what confidence-adaptive sampling
// buys against the fixed 20000-world budget, on the two workloads that
// bracket it. The "easy" query's estimates sit far from tau (min margin
// ≈ 0.43), so the Hoeffding bound separates every row at the first
// poll: the confidence run should finish several times faster than the
// fixed one. The "hard" query's tau is planted on the top candidate's
// estimate, so separation never happens and eps=0.005 needs more worlds
// than the budget holds: the confidence run draws all 20000 worlds and
// shows the polling overhead of the adaptive executor, which should be
// in the noise.
func BenchmarkAdaptiveBudget(b *testing.B) {
	net, db, err := SyntheticDataset(3000, 8, 300, 100, 1000, 10, 1)
	if err != nil {
		b.Fatal(err)
	}
	proc, err := db.Build(20000)
	if err != nil {
		b.Fatal(err)
	}
	if err := proc.PrepareAll(); err != nil {
		b.Fatal(err)
	}
	q := AtState(net, 17)
	base := Request{Semantics: ForAll, Query: q, Ts: 450, Te: 459, Seed: 7}
	easy, hard := base, base
	easy.Tau = 0.5
	hard.Tau = 0.9267 // the top candidate's estimate at 20000 worlds
	for _, tc := range []struct {
		name string
		req  Request
		conf Confidence
	}{
		{"easy/fixed-20000", easy, Confidence{}},
		{"easy/confidence-eps0.05", easy, Confidence{Eps: 0.05}},
		{"hard/fixed-20000", hard, Confidence{}},
		{"hard/confidence-eps0.005", hard, Confidence{Eps: 0.005}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			req := tc.req
			req.Confidence = tc.conf
			worlds := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp := proc.Run(req)
				if resp.Err != nil {
					b.Fatal(resp.Err)
				}
				worlds = resp.Stats.Worlds
			}
			b.ReportMetric(float64(worlds), "worlds/op")
		})
	}
}

// BenchmarkAblationWindowSampling compares whole-lifetime sampling with
// the window-restricted sampler used by the engine.
func BenchmarkAblationWindowSampling(b *testing.B) {
	sp, err := space.Line(200)
	if err != nil {
		b.Fatal(err)
	}
	mat, err := sp.BuildTransitionMatrix(func(i, j int) float64 { return 1 })
	if err != nil {
		b.Fatal(err)
	}
	chain, err := markov.NewHomogeneous(mat)
	if err != nil {
		b.Fatal(err)
	}
	o, err := uncertain.NewObject(1, []uncertain.Observation{
		{T: 0, State: 100}, {T: 50, State: 120}, {T: 100, State: 80},
	}, chain)
	if err != nil {
		b.Fatal(err)
	}
	model, err := inference.Adapt(o)
	if err != nil {
		b.Fatal(err)
	}
	s := inference.NewSampler(model)
	rng := rand.New(rand.NewSource(5))
	b.Run("full-lifetime", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Sample(rng)
		}
	})
	b.Run("window-10", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := s.SampleWindow(rng, 45, 54); !ok {
				b.Fatal("window must intersect lifetime")
			}
		}
	})
}

// BenchmarkSubscriptionFanout measures the write path under a large
// standing-query registry: 1000 subscriptions, one object moving
// through the space. Each op is one Observe plus the full drain of the
// re-evaluations it triggers, so ns/op is the end-to-end per-update
// cost, evals/write counts evaluation passes (the fanout scoreboard —
// full per-sub fan-out would be 1000 per op) and ms/write restates
// ns/op in milliseconds for the benchdiff gate. Three populations:
//
//   - spread: 1000 distinct query shapes — every touched subscription
//     pays its own pass, grouping cannot help.
//   - mix: the same 1000 subscriptions folded onto 10 shapes (100
//     members each, differing only in tau) with grouping on — each
//     touched shape pays ONE shared-world pass.
//   - mix-ungrouped: the mix population with grouping disabled — the
//     per-sub baseline the mix savings are measured against.
func BenchmarkSubscriptionFanout(b *testing.B) {
	const nShapes = 10
	b.Run("spread", func(b *testing.B) {
		fanoutBench(b, true, func(net *Network, i int) Request {
			return Request{
				Semantics: Exists, Query: AtState(net, RandomQueryState(net, int64(i))),
				Ts: 40, Te: 47, Tau: 0.3, Seed: int64(i),
			}
		})
	})
	mixReq := func(net *Network, i int) Request {
		shape := i % nShapes
		return Request{
			Semantics: Exists, Query: AtState(net, RandomQueryState(net, int64(shape))),
			Ts: 40, Te: 47, Tau: 0.1 + float64(i/nShapes)*0.008, Seed: int64(shape),
		}
	}
	b.Run("mix", func(b *testing.B) { fanoutBench(b, true, mixReq) })
	b.Run("mix-ungrouped", func(b *testing.B) { fanoutBench(b, false, mixReq) })
}

// fanoutBench is the shared harness of BenchmarkSubscriptionFanout:
// build, subscribe 1000 standing queries from reqAt, then measure
// Observe + drain per op. The sweep interval is zero so ms/write
// measures evaluation cost, not the configurable batching delay —
// grouping still applies because each write dirties all its touched
// subscriptions before the immediate sweep drains them.
func fanoutBench(b *testing.B, grouping bool, reqAt func(net *Network, i int) Request) {
	net, db, err := SyntheticDataset(2500, 8, 600, 100, 100, 5, 7)
	if err != nil {
		b.Fatal(err)
	}
	proc, err := db.Build(150)
	if err != nil {
		b.Fatal(err)
	}
	if err := proc.PrepareAll(); err != nil {
		b.Fatal(err)
	}
	proc.SetSweepInterval(0)
	proc.SetSubscriptionGrouping(grouping)
	const nSubs = 1000
	for i := 0; i < nSubs; i++ {
		if _, err := proc.Subscribe(reqAt(net, i), Delivery{QueueCap: 2}); err != nil {
			b.Fatal(err)
		}
	}
	if !proc.WaitSubscriptionsIdle(120 * time.Second) {
		b.Fatal("initial evaluations did not quiesce")
	}
	// The moving object parks at the first query state — every op lands
	// inside some influence regions.
	const moverID = 900001
	if _, err := proc.AddObject(moverID, []Observation{{T: 40, State: RandomQueryState(net, 0)}}); err != nil {
		b.Fatal(err)
	}
	if !proc.WaitSubscriptionsIdle(120 * time.Second) {
		b.Fatal("mover registration did not quiesce")
	}
	base := proc.SubscriptionStats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Staying put is always chain-consistent; the influence sweep
		// still runs against every registered subscription.
		if _, err := proc.Observe(moverID, Observation{T: 41 + i, State: RandomQueryState(net, 0)}); err != nil {
			b.Fatal(err)
		}
		if !proc.WaitSubscriptionsIdle(120 * time.Second) {
			b.Fatal("re-evaluations did not quiesce")
		}
	}
	b.StopTimer()
	st := proc.SubscriptionStats()
	ops := float64(b.N)
	b.ReportMetric(float64(st.Evaluations-base.Evaluations)/ops, "evals/write")
	b.ReportMetric(b.Elapsed().Seconds()*1000/ops, "ms/write")
	b.ReportMetric(nSubs, "subs")
	proc.CloseSubscriptions()
}

// BenchmarkWALAppend measures the write-path durability tax without the
// disk: one framed, checksummed WAL record per op (a 3-observation
// observe, the common live-ingest shape), fsync off so the cost is the
// encoding and buffered write alone. With -fsync the same path adds one
// fdatasync per acknowledged write, which is device-bound and therefore
// not pinned by this benchmark.
func BenchmarkWALAppend(b *testing.B) {
	w, err := store.OpenWAL(filepath.Join(b.TempDir(), "wal-0000000000000001.log"), 1, 0, 1, false)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	obs := []uncertain.Observation{{T: 10, State: 17}, {T: 20, State: 23}, {T: 30, State: 23}}
	b.ReportAllocs()
	b.ResetTimer()
	var bytes int64
	for i := 0; i < b.N; i++ {
		n, err := w.Append(store.WALRecord{Version: int64(i) + 2, Op: store.OpObserve, ID: 42, Obs: obs})
		if err != nil {
			b.Fatal(err)
		}
		bytes += int64(n)
	}
	b.SetBytes(bytes / int64(b.N))
}

// BenchmarkRecovery measures a warm restart: rebuild the exact
// versioned two-shard snapshot from a boot spill plus a 100-record WAL
// tail (spill cadence off, so every live write replays). One op is a
// full BuildShardedDurable + Close cycle over the same directory.
func BenchmarkRecovery(b *testing.B) {
	net, db, err := SyntheticDataset(400, 8, 40, 60, 120, 10, 1)
	if err != nil {
		b.Fatal(err)
	}
	_ = net
	dir := b.TempDir()
	proc, _, err := db.BuildShardedDurable(200, 2, Durability{Dir: dir})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := proc.AddObject(9000+i, []Observation{{T: i % 100, State: (i * 13) % 400}}); err != nil {
			b.Fatal(err)
		}
	}
	if err := proc.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, rec, err := db.BuildShardedDurable(200, 2, Durability{Dir: dir})
		if err != nil {
			b.Fatal(err)
		}
		if !rec.Recovered || rec.ReplayedRecords != 100 {
			b.Fatalf("recovery = %+v, want 100 replayed records", rec)
		}
		if err := p.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
