package pnn

import (
	"math"
	"testing"
)

// probsOf flattens a response's results into an ID → probability map.
func probsOf(t *testing.T, r Response) map[int]float64 {
	t.Helper()
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	out := make(map[int]float64, len(r.Results))
	for _, res := range r.Results {
		out[res.ObjectID] = res.Prob
	}
	return out
}

// TestSharedMatchesIndependentWithinTolerance is the accuracy half of
// the sharing contract: an 8-request same-window batch answered from
// one shared world set agrees with independent per-request evaluation
// within Monte-Carlo tolerance (both sides are estimates from finite
// samples; they are not bit-identical).
func TestSharedMatchesIndependentWithinTolerance(t *testing.T) {
	const samples = 2000
	_, proc, q := batchDB(t, samples)
	var reqs []Request
	for i := 0; i < 8; i++ {
		sem := ForAll
		if i%2 == 1 {
			sem = Exists
		}
		reqs = append(reqs, Request{Semantics: sem, Query: q, Ts: 1, Te: 6, Tau: 0, Seed: int64(100 + i)})
	}
	indep, _ := proc.RunBatchStats(reqs, BatchOptions{Workers: 2})
	shared, st := proc.RunBatchStats(reqs, BatchOptions{Workers: 2, ShareWorlds: true, SharedSeed: 7})
	if st.Groups != 1 {
		t.Fatalf("8 identical-window requests formed %d groups, want 1", st.Groups)
	}
	// Two independent estimates of the same probability from n worlds
	// each differ by more than ~3*sqrt(2*p(1-p)/n) only with vanishing
	// probability; 0.08 gives ample slack at n=2000 (and the seeds are
	// fixed, so this cannot flake).
	const eps = 0.08
	for i := range reqs {
		pi := probsOf(t, indep[i])
		ps := probsOf(t, shared[i])
		ids := make(map[int]bool)
		for id := range pi {
			ids[id] = true
		}
		for id := range ps {
			ids[id] = true
		}
		if len(ids) == 0 {
			t.Fatalf("request %d: both evaluations returned no results", i)
		}
		for id := range ids {
			if d := math.Abs(pi[id] - ps[id]); d > eps {
				t.Errorf("request %d object %d: independent %.4f vs shared %.4f (Δ=%.4f > %v)",
					i, id, pi[id], ps[id], d, eps)
			}
		}
	}
}

// TestSharedBatchDeterminism pins the group-seed contract: under
// sharing, a response depends only on (snapshot, SharedSeed, its own
// request parameters) — not on batch order, on which other requests
// were batched with it, or on the worker count.
func TestSharedBatchDeterminism(t *testing.T) {
	_, proc, q := batchDB(t, 400)
	q2 := AtPoint(Point{X: 0.3, Y: 0.7})
	reqs := []Request{
		{Semantics: ForAll, Query: q, Ts: 1, Te: 6, Tau: 0, Seed: 1},
		{Semantics: Exists, Query: q, Ts: 1, Te: 6, Tau: 0, Seed: 2},
		{Semantics: Continuous, Query: q, Ts: 1, Te: 4, Tau: 0.3, Seed: 3},
	}
	opts := BatchOptions{Workers: 2, ShareWorlds: true, SharedSeed: 99}
	base, _ := proc.RunBatchStats(reqs, opts)

	// Same batch again: identical.
	again, _ := proc.RunBatchStats(reqs, opts)
	sameResponses(t, base, again)

	// Single worker: identical.
	serial, _ := proc.RunBatchStats(reqs, BatchOptions{Workers: 1, ShareWorlds: true, SharedSeed: 99})
	sameResponses(t, base, serial)

	// Reordered, with unrelated requests interleaved (different query →
	// different group, different window → different group): each
	// original request still gets byte-identical answers.
	mixed := []Request{
		{Semantics: ForAll, Query: q2, Ts: 1, Te: 6, Tau: 0, Seed: 50},
		reqs[2],
		{Semantics: Exists, Query: q, Ts: 2, Te: 5, Tau: 0, Seed: 51},
		reqs[0],
		reqs[1],
	}
	got, st := proc.RunBatchStats(mixed, BatchOptions{Workers: 3, ShareWorlds: true, SharedSeed: 99})
	// Four distinct (query, window) combinations: {q2, 1-6}, {q, 1-4},
	// {q, 2-5}, {q, 1-6}.
	if st.Groups != 4 {
		t.Errorf("mixed batch formed %d groups, want 4", st.Groups)
	}
	sameResponses(t, base, []Response{got[3], got[4], got[1]})

	// A different SharedSeed draws different worlds: at least one
	// probability should move (samples are modest, so estimates differ).
	other, _ := proc.RunBatchStats(reqs, BatchOptions{Workers: 2, ShareWorlds: true, SharedSeed: 100})
	same := true
	for i := range base {
		a, b := base[i], other[i]
		if len(a.Results) != len(b.Results) {
			same = false
			break
		}
		for j := range a.Results {
			if a.Results[j] != b.Results[j] {
				same = false
			}
		}
	}
	if same {
		t.Error("changing SharedSeed left every count-query response identical; group seed appears unused")
	}
}

// TestSharedBatchValidation: under sharing, malformed requests still
// fail per-response without disturbing the valid members of any group.
func TestSharedBatchValidation(t *testing.T) {
	_, proc, q := batchDB(t, 100)
	resps, st := proc.RunBatchStats([]Request{
		{Semantics: "nope", Query: q, Ts: 1, Te: 5},
		{Semantics: ForAll, Query: q, Ts: 1, Te: 5, K: -1},
		{Semantics: ForAll, Query: q, Ts: 5, Te: 1},
		{Semantics: Continuous, Query: q, Ts: 1, Te: 3}, // tau 0 invalid for PCNN
		{Semantics: ForAll, Query: Query{}, Ts: 1, Te: 5},
		{Semantics: Exists, Query: q, Ts: 1, Te: 5, Tau: 0.05},
	}, BatchOptions{Workers: 2, ShareWorlds: true, SharedSeed: 3})
	for i := 0; i < 5; i++ {
		if resps[i].Err == nil {
			t.Errorf("request %d should have failed", i)
		}
	}
	if resps[5].Err != nil {
		t.Errorf("valid request failed: %v", resps[5].Err)
	}
	if st.Groups != 1 {
		t.Errorf("one valid request formed %d groups, want 1", st.Groups)
	}
	out, bst := proc.RunBatchStats(nil, BatchOptions{ShareWorlds: true})
	if len(out) != 0 || bst.Groups != 0 {
		t.Error("empty shared batch should return empty responses and no groups")
	}
}

// TestSharedBatchMixedSemantics: one group serves ∀, ∃ and PCNN members
// from the same worlds, and the per-semantics invariants hold between
// them — P∀ ≤ P∃ per object on the SAME world set (exactly, not just in
// expectation), and singleton PCNN probabilities are consistent with
// the masks.
func TestSharedBatchMixedSemantics(t *testing.T) {
	_, proc, q := batchDB(t, 500)
	reqs := []Request{
		{Semantics: ForAll, Query: q, Ts: 1, Te: 4, Tau: 0},
		{Semantics: Exists, Query: q, Ts: 1, Te: 4, Tau: 0},
		{Semantics: Continuous, Query: q, Ts: 1, Te: 4, Tau: 0.2},
	}
	resps, st := proc.RunBatchStats(reqs, BatchOptions{Workers: 2, ShareWorlds: true, SharedSeed: 11})
	if st.Groups != 1 {
		t.Fatalf("mixed-semantics same-window batch formed %d groups, want 1", st.Groups)
	}
	fa := probsOf(t, resps[0])
	ex := probsOf(t, resps[1])
	if resps[2].Err != nil {
		t.Fatal(resps[2].Err)
	}
	if len(ex) == 0 {
		t.Fatal("exists member returned no results")
	}
	for id, p := range fa {
		if ex[id] < p {
			t.Errorf("object %d: P∀=%.4f exceeds P∃=%.4f on the shared world set", id, p, ex[id])
		}
	}
	for _, iv := range resps[2].Intervals {
		if iv.Prob < 0.2 {
			t.Errorf("PCNN interval for object %d reports prob %.4f below tau", iv.ObjectID, iv.Prob)
		}
	}
}

// TestSharedBatchDuplicateCNNNoAliasing: duplicate-tau PCNN members of
// one group are answered from one memoized lattice walk but must not
// share result backing arrays — editing one response in place may not
// corrupt its twin.
func TestSharedBatchDuplicateCNNNoAliasing(t *testing.T) {
	_, proc, q := batchDB(t, 300)
	reqs := []Request{
		{Semantics: Continuous, Query: q, Ts: 1, Te: 4, Tau: 0.3},
		{Semantics: Continuous, Query: q, Ts: 1, Te: 4, Tau: 0.3},
	}
	resps, st := proc.RunBatchStats(reqs, BatchOptions{Workers: 2, ShareWorlds: true, SharedSeed: 4})
	if st.Groups != 1 {
		t.Fatalf("groups = %d, want 1", st.Groups)
	}
	a, b := resps[0], resps[1]
	if a.Err != nil || b.Err != nil {
		t.Fatal(a.Err, b.Err)
	}
	if len(a.Intervals) == 0 || len(a.Intervals) != len(b.Intervals) {
		t.Fatalf("interval cardinality: %d vs %d", len(a.Intervals), len(b.Intervals))
	}
	for i := range a.Intervals {
		if len(a.Intervals[i].Times) == 0 {
			t.Fatal("empty Times")
		}
		a.Intervals[i].Times[0] = -999
		if b.Intervals[i].Times[0] == -999 {
			t.Fatalf("interval %d: responses share Times backing arrays", i)
		}
		a.Intervals[i].Times[0] = b.Intervals[i].Times[0]
	}
	sameResponses(t, []Response{a}, []Response{b})
}
